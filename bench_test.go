package coda_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its experiment and reports the headline measured
// values as custom metrics, so `go test -bench=. -benchmem` doubles as the
// reproduction harness. The three-scheduler comparison is memoized inside
// internal/experiments, so benchmarks sharing it pay its cost once.

import (
	"context"
	"testing"

	"github.com/coda-repro/coda/internal/experiments"
	"github.com/coda-repro/coda/internal/runner"
)

// benchScale keeps the full suite tractable: one day at the paper's load
// on the full 80-node cluster. cmd/coda-bench -scale full runs the
// month-long operating point.
func benchScale() experiments.Scale {
	return experiments.Scale{Seed: 1, Days: 1, CPUJobs: 2500, GPUJobs: 833, Nodes: 80}
}

func comparison(b *testing.B) *experiments.Comparison {
	b.Helper()
	c, err := experiments.RunComparison(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkFig1WeeklyUtilization(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.DiurnalRatio
	}
	b.ReportMetric(ratio, "diurnal_peak_over_trough")
}

func BenchmarkFig2JobCharacteristics(b *testing.B) {
	var req12 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		req12 = res.Stats.ReqCores12
	}
	b.ReportMetric(req12*100, "pct_jobs_requesting_1to2_cores")
}

func BenchmarkFig3UtilVsCores(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		points = len(pts)
	}
	b.ReportMetric(float64(points), "curve_points")
}

func BenchmarkFig5OptimalCores(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(r)
	}
	b.ReportMetric(float64(rows), "table_cells")
}

func BenchmarkFig6BandwidthDemand(b *testing.B) {
	var max float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		max = 0
		for _, r := range rows {
			if r.BandwidthGBs > max {
				max = r.BandwidthGBs
			}
		}
	}
	b.ReportMetric(max, "max_demand_gbs")
}

func BenchmarkFig7ContentionSensitivity(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		worst = 1
		for _, p := range pts {
			if p.Pressure == "bw" && p.NormalizedPerf < worst {
				worst = p.NormalizedPerf
			}
		}
	}
	b.ReportMetric(worst*100, "worst_case_pct_of_solo_perf")
}

func BenchmarkFig10Utilization(b *testing.B) {
	var fifoUtil, codaUtil, codaFrag float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig10(comparison(b))
		for _, r := range rows {
			switch r.Scheduler {
			case "fifo":
				fifoUtil = r.Util
			case "coda":
				codaUtil = r.Util
				codaFrag = r.FragRate
			}
		}
	}
	b.ReportMetric(fifoUtil*100, "fifo_gpu_util_pct")
	b.ReportMetric(codaUtil*100, "coda_gpu_util_pct")
	b.ReportMetric(codaFrag*100, "coda_frag_pct")
	b.ReportMetric((codaUtil-fifoUtil)*100, "util_improvement_pts")
}

func BenchmarkFig11QueueingCDF(b *testing.B) {
	var codaImmediate, fifoOver10 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig11(comparison(b))
		for _, r := range rows {
			switch r.Scheduler {
			case "coda":
				codaImmediate = r.GPUImmediate
			case "fifo":
				fifoOver10 = r.GPUOver10Min
			}
		}
	}
	b.ReportMetric(codaImmediate*100, "coda_pct_gpu_jobs_immediate")
	b.ReportMetric(fifoOver10*100, "fifo_pct_gpu_jobs_over_10min")
}

func BenchmarkFig12PerUserP99(b *testing.B) {
	var betterUsers int
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(comparison(b))
		betterUsers = 0
		for _, r := range rows {
			if r.CODA <= r.FIFO {
				betterUsers++
			}
		}
	}
	b.ReportMetric(float64(betterUsers), "users_with_coda_p99_le_fifo")
}

func BenchmarkFig13EndToEnd(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13(comparison(b))
		faster := 0
		for _, r := range rows {
			if r.CODAQueue+r.CODARun < r.FIFOQueue+r.FIFORun {
				faster++
			}
		}
		if len(rows) > 0 {
			speedup = float64(faster) / float64(len(rows))
		}
	}
	b.ReportMetric(speedup*100, "pct_representatives_faster_under_coda")
}

func BenchmarkFig14TuningHistogram(b *testing.B) {
	var more, fewer float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(comparison(b))
		if err != nil {
			b.Fatal(err)
		}
		more, fewer = res.More1to5, res.Fewer1to20
	}
	b.ReportMetric(more*100, "pct_granted_1to5_more")
	b.ReportMetric(fewer*100, "pct_granted_1to20_fewer")
}

func BenchmarkSec6EEliminatorAblation(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec6E(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		drop = res.UtilWithEliminator - res.UtilWithout
	}
	b.ReportMetric(drop*100, "util_pts_saved_by_eliminator")
}

func BenchmarkTable2TuningOverhead(b *testing.B) {
	var maxSteps int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(7)
		if err != nil {
			b.Fatal(err)
		}
		maxSteps = 0
		for _, r := range rows {
			if r.ProfilingSteps > maxSteps {
				maxSteps = r.ProfilingSteps
			}
		}
	}
	b.ReportMetric(float64(maxSteps), "max_profiling_steps")
}

func BenchmarkAblationAdaptiveAllocation(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationAdaptiveAllocation(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		delta = res.FullUtil - res.AblatedUtil
	}
	b.ReportMetric(delta*100, "util_pts_from_adaptive_allocation")
}

func BenchmarkAblationMultiArrayRebalance(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRebalance(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		delta = res.FullImmediate - res.AblatedImmediate
	}
	b.ReportMetric(delta*100, "immediate_pct_from_rebalance")
}

func BenchmarkSec6GGenerality(b *testing.B) {
	var codaUtil, fifoUtil float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Generality(benchScale(), 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Scheduler {
			case "coda":
				codaUtil = r.GPUUtil
			case "fifo":
				fifoUtil = r.GPUUtil
			}
		}
	}
	b.ReportMetric(codaUtil*100, "coda_gpu_util_pct_hetero")
	b.ReportMetric(fifoUtil*100, "fifo_gpu_util_pct_hetero")
}

func BenchmarkAblationPreemption(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPreemption(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		delta = res.FullImmediate - res.AblatedImmediate
	}
	b.ReportMetric(delta*100, "immediate_pct_from_preemption")
}

func BenchmarkAblationEliminatorThreshold(b *testing.B) {
	var at75 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationEliminatorThreshold(benchScale(), []float64{0.6, 0.75, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Threshold == 0.75 {
				at75 = p.GPUUtil
			}
		}
	}
	b.ReportMetric(at75*100, "gpu_util_pct_at_default_threshold")
}

func BenchmarkAblationNstartSeeding(b *testing.B) {
	var res experiments.NstartAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AblationNstartSeeding(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SeededSteps, "seeded_profiling_steps")
	b.ReportMetric(res.FixedSteps, "cold_profiling_steps")
}

// BenchmarkComparisonMatrix measures the engine/runner split's payoff: the
// same three-scheduler comparison matrix executed sequentially and on a
// four-worker pool. It calls runner.Run directly (bypassing the experiments
// memo cache) so every iteration pays the full simulation cost. The three
// cells are independent runs, so on a multi-core machine the parallel
// variant approaches a 3x speedup; on a single core the two variants tie.
func BenchmarkComparisonMatrix(b *testing.B) {
	sc := experiments.Scale{Seed: 2, Days: 0.2, CPUJobs: 500, GPUJobs: 166, Nodes: 80}
	for _, bc := range []struct {
		name     string
		parallel int
	}{
		{"sequential", 1},
		{"parallel-4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := experiments.ComparisonMatrix(sc)
				if err != nil {
					b.Fatal(err)
				}
				results, err := runner.Run(context.Background(), m, runner.Options{Parallel: bc.parallel})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 3 {
					b.Fatalf("got %d results, want 3", len(results))
				}
			}
		})
	}
}

func BenchmarkStaticPartitionBaseline(b *testing.B) {
	var staticUtil, codaUtil float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.StaticBaseline(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		staticUtil, codaUtil = res.GPUUtil, res.CODAUtil
	}
	b.ReportMetric(staticUtil*100, "static_gpu_util_pct")
	b.ReportMetric(codaUtil*100, "coda_gpu_util_pct")
}
