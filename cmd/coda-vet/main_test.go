package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runVet invokes the command body and captures its streams.
func runVet(t *testing.T, args []string, dir string, jsonOut bool) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, dir, jsonOut, &out, &errw)
	return code, out.String(), errw.String()
}

// writeTree materializes path->content files under root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for path, content := range files {
		full := filepath.Join(root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExitZeroOnCleanTree: vetting this repository itself must be clean —
// the whole-program proofs are self-enforced — and a clean run exits 0 with
// no findings printed.
func TestExitZeroOnCleanTree(t *testing.T) {
	code, stdout, stderr := runVet(t, []string{"./..."}, ".", false)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings:\n%s", stdout)
	}
}

// dirtyModule is a minimal module violating the default layer spec: a
// package named internal/sim (the engine layer) importing os, which the
// engine deny-list forbids, and reading the wall clock through a helper it
// is allowed to import — so both the layering and the purity pass fire.
var dirtyModule = map[string]string{
	"go.mod": "module example.com/tmpvet\n\ngo 1.21\n",
	"internal/sim/sim.go": `package sim

import (
	"os"
	"time"
)

// Run leaks the host into the engine twice over.
func Run() int { return len(os.Args) + tick() }

func tick() int { return int(time.Now().UnixNano()) }
`,
	"internal/job/job.go": `package job

// N keeps the base layer non-empty.
func N() int { return 1 }
`,
}

// TestExitOneOnFindings: a module with whole-program violations exits 1,
// reports them as file:line: rule: message, and the purity finding embeds
// the witness chain.
func TestExitOneOnFindings(t *testing.T) {
	tmp := t.TempDir()
	writeTree(t, tmp, dirtyModule)
	code, stdout, stderr := runVet(t, nil, tmp, false)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "import-layering") {
		t.Errorf("missing layering finding:\n%s", stdout)
	}
	if !strings.Contains(stdout, "transitive-purity") || !strings.Contains(stdout, "reached via") {
		t.Errorf("missing purity finding with witness chain:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing summary: %q", stderr)
	}
}

// TestJSONOutput: -json renders a parseable array with module-relative paths
// and the purity chain serialized, with stdout kept pure JSON.
func TestJSONOutput(t *testing.T) {
	tmp := t.TempDir()
	writeTree(t, tmp, dirtyModule)
	code, stdout, _ := runVet(t, nil, tmp, true)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var got []struct {
		File  string   `json:"file"`
		Line  int      `json:"line"`
		Rule  string   `json:"rule"`
		Chain []string `json:"chain"`
	}
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	var sawChain bool
	for _, f := range got {
		if f.File != "internal/sim/sim.go" {
			t.Errorf("path not module-relative: %q", f.File)
		}
		if f.Rule == "transitive-purity" && len(f.Chain) > 0 {
			sawChain = true
		}
	}
	if !sawChain {
		t.Error("no purity finding carried a witness chain in JSON")
	}
}

// TestArgumentFilterScopesFindings: naming a clean subtree hides the dirty
// one's findings; a bad path is an operational error, not a clean run.
func TestArgumentFilterScopesFindings(t *testing.T) {
	tmp := t.TempDir()
	writeTree(t, tmp, dirtyModule)
	if code, stdout, stderr := runVet(t, []string{"./internal/job"}, tmp, false); code != 0 {
		t.Errorf("clean subtree exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if code, _, _ := runVet(t, []string{"./internal/sim/..."}, tmp, false); code != 1 {
		t.Errorf("dirty subtree exit = %d, want 1", code)
	}
	if code, _, stderr := runVet(t, []string{"./no-such-dir"}, tmp, false); code != 2 {
		t.Errorf("bad path exit = %d, want 2; stderr: %s", code, stderr)
	}
}

// TestExitTwoOutsideModule: running outside any Go module is an operational
// error.
func TestExitTwoOutsideModule(t *testing.T) {
	code, _, stderr := runVet(t, nil, t.TempDir(), false)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, stderr)
	}
}
