// Command coda-vet runs the whole-program determinism proofs over the
// enclosing module: transitive purity of everything reachable from the
// engine (with witness call chains), the declarative import-layering DAG,
// and checkpoint encode/decode completeness.
//
// Usage:
//
//	go run ./cmd/coda-vet ./...
//	go run ./cmd/coda-vet -json ./internal/sim
//
// Exit codes: 0 when every proof holds, 1 when findings survive, 2 when the
// run itself fails (no module root, unreadable source, bad arguments).
//
// Unlike coda-lint, vet findings carry no //coda:ordered-ok escape hatch:
// the fixes are structural, or a reviewed change to the spec in
// internal/lint/vet.go. See DESIGN.md "Static analysis & layering".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/coda-repro/coda/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (stable order, module-relative paths)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: coda-vet [-json] [./... | package-dirs]\n\n"+
				"Runs the CODA whole-program passes (%s)\nover internal/... and cmd/... of the enclosing module.\n",
			strings.Join([]string{lint.RulePurity, lint.RuleLayering, lint.RuleCkptComplete}, ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "coda-vet:", err)
		os.Exit(2)
	}
	os.Exit(run(flag.Args(), cwd, *jsonOut, os.Stdout, os.Stderr))
}

// run is the testable body of the command: vet the module enclosing dir,
// restricted to the argument patterns, writing findings to stdout and
// diagnostics to stderr. Returns the process exit code — 0 clean, 1 with
// findings, 2 on operational errors.
func run(args []string, dir string, jsonOut bool, stdout, stderr io.Writer) int {
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "coda-vet:", err)
		return 2
	}
	findings, err := lint.VetTrees(root, []string{"internal", "cmd"}, lint.DefaultVetConfig())
	if err != nil {
		fmt.Fprintln(stderr, "coda-vet:", err)
		return 2
	}
	findings, err = lint.FilterToDirs(findings, args, dir)
	if err != nil {
		fmt.Fprintln(stderr, "coda-vet:", err)
		return 2
	}

	if jsonOut {
		data, err := lint.MarshalFindings(findings, root)
		if err != nil {
			fmt.Fprintln(stderr, "coda-vet:", err)
			return 2
		}
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintln(stderr, "coda-vet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n", lint.RelPath(dir, f.Pos.Filename), f.Pos.Line, f.Rule, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "coda-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
