package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer lets the test poll output while run() is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestFlagErrorsExitTwo: malformed invocations are tool errors (exit 2)
// and never reach the listener.
func TestFlagErrorsExitTwo(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-tick", "0s"},
		{"-tick", "-1s"},
		{"-queue-depth", "0"},
		{"-checkpoint-every", "-1"},
		{"-sched", "bogus", "-data", filepath.Join(dir, "a")},
		{"-nodes", "0", "-data", filepath.Join(dir, "b")},
		{"-not-a-flag"},
		{"stray", "args"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("coda-serve %s: exit %d, want 2 (stderr: %s)",
				strings.Join(args, " "), code, errb.String())
		}
	}
}

// waitForOutput polls the buffer until the marker appears.
func waitForOutput(t *testing.T, buf *syncBuffer, marker string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := buf.String(); strings.Contains(s, marker) {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %q in output:\n%s", marker, buf.String())
	return ""
}

// listenAddr extracts the bound address from the startup banner.
func listenAddr(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "coda-serve: listening on "); ok {
			return strings.Fields(rest)[0]
		}
	}
	t.Fatalf("no listen banner in output:\n%s", out)
	return ""
}

// interrupt delivers SIGINT to this process; run()'s signal.Notify
// swallows it, so the test binary survives.
func interrupt(t *testing.T) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("self-SIGINT: %v", err)
	}
}

// TestServeKillRecover drives the real binary path twice over one data
// directory: serve a few jobs, shut down, then restart and confirm the
// machine recovered every applied request from checkpoint + WAL replay.
func TestServeKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a live HTTP server")
	}
	dir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data", dir,
		"-tick", "10ms",
		"-nodes", "4",
		"-checkpoint-every", "2",
	}

	// First life: fresh start, three submits, one cancel.
	out := &syncBuffer{}
	done := make(chan int, 1)
	go func() { done <- run(args, out, io.Discard) }()
	banner := waitForOutput(t, out, "listening on ")
	if !strings.Contains(banner, "fresh start") {
		t.Fatalf("first life did not report a fresh start:\n%s", banner)
	}
	base := "http://" + listenAddr(t, banner)

	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"kind":"cpu","tenant":1,"cpuCores":2,"workSeconds":%d}`, 600+i)
		resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		var r struct {
			JobID int64 `json:"jobId"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatalf("submit %d: decode: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || r.JobID != int64(i+1) {
			t.Fatalf("submit %d: status %d job %d", i, resp.StatusCode, r.JobID)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/3", nil)
	resp, err := client.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %v status %v", err, resp)
	}
	resp.Body.Close()

	interrupt(t)
	if code := <-done; code != 0 {
		t.Fatalf("first life exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "after 4 requests") {
		t.Fatalf("first life did not apply 4 requests:\n%s", out.String())
	}

	// Second life: same data directory must recover all four requests.
	out2 := &syncBuffer{}
	go func() { done <- run(args, out2, io.Discard) }()
	banner2 := waitForOutput(t, out2, "listening on ")
	if !strings.Contains(banner2, "recovered 4 applied requests") {
		t.Fatalf("second life did not recover the log:\n%s", banner2)
	}
	base2 := "http://" + listenAddr(t, banner2)

	// The recovered machine answers queries about pre-crash jobs.
	st, err := client.Get(base2 + "/v1/jobs/1")
	if err != nil {
		t.Fatalf("status after recovery: %v", err)
	}
	var js struct {
		Phase string `json:"phase"`
	}
	if err := json.NewDecoder(st.Body).Decode(&js); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	st.Body.Close()
	if st.StatusCode != http.StatusOK || js.Phase == "" {
		t.Fatalf("job 1 after recovery: status %d phase %q", st.StatusCode, js.Phase)
	}

	interrupt(t)
	if code := <-done; code != 0 {
		t.Fatalf("second life exited %d:\n%s", code, out2.String())
	}
}
