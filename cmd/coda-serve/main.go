// Command coda-serve runs the deterministic control plane as an HTTP
// service: job submit/status/cancel, node lifecycle, placement queries,
// /metrics and /healthz. Every mutating request is fsync'd into a
// write-ahead log before it is acknowledged and applied in batch order by
// a single-threaded machine once per tick, so parallel clients yield one
// canonical event order. On startup the server recovers its exact
// pre-crash state from the latest checkpoint plus a WAL suffix replay.
//
// Usage:
//
//	coda-serve -addr :8080 -data /var/lib/coda
//	kill -9 <pid>; coda-serve -addr :8080 -data /var/lib/coda   # recovers
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/ctl"
	"github.com/coda-repro/coda/internal/ctl/wal"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// serveFlags is everything run parses out of the command line.
type serveFlags struct {
	addr            string
	dataDir         string
	tick            time.Duration
	nodes           int
	coresPerNode    int
	gpusPerNode     int
	scheduler       string
	seed            int64
	queueDepth      int
	checkpointEvery int
}

func parseFlags(args []string, stderr io.Writer) (*serveFlags, error) {
	fs := flag.NewFlagSet("coda-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	f := &serveFlags{}
	fs.StringVar(&f.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.StringVar(&f.dataDir, "data", "coda-serve-data", "durable state directory (WAL + checkpoints)")
	fs.DurationVar(&f.tick, "tick", time.Second, "admission batch cadence; each tick advances virtual time by the same amount")
	fs.IntVar(&f.nodes, "nodes", 16, "cluster node count")
	fs.IntVar(&f.coresPerNode, "cores-per-node", 28, "CPU cores per node")
	fs.IntVar(&f.gpusPerNode, "gpus-per-node", 4, "GPUs per node")
	fs.StringVar(&f.scheduler, "sched", "coda", "scheduling policy: fifo, drf or coda")
	fs.Int64Var(&f.seed, "seed", 1, "engine measurement-noise seed")
	fs.IntVar(&f.queueDepth, "queue-depth", ctl.DefaultQueueDepth, "admission queue bound; a full queue sheds with 429")
	fs.IntVar(&f.checkpointEvery, "checkpoint-every", 64, "take a machine checkpoint every N applied requests (0 = WAL-only recovery)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if f.tick <= 0 {
		return nil, fmt.Errorf("-tick must be positive, got %v", f.tick)
	}
	if f.queueDepth < 1 {
		return nil, fmt.Errorf("-queue-depth must be at least 1, got %d", f.queueDepth)
	}
	if f.checkpointEvery < 0 {
		return nil, fmt.Errorf("-checkpoint-every must be non-negative, got %d", f.checkpointEvery)
	}
	return f, nil
}

// buildConfig assembles the machine config from flags: durable stores in
// the data directory and a scheduler factory for the chosen policy.
func buildConfig(f *serveFlags) (ctl.Config, *wal.FileLog, error) {
	opts := sim.DefaultOptions()
	opts.Cluster = cluster.DefaultConfig()
	opts.Cluster.Nodes = f.nodes
	opts.Cluster.CoresPerNode = f.coresPerNode
	opts.Cluster.GPUsPerNode = f.gpusPerNode
	opts.Seed = f.seed
	opts.Invariants = true
	if err := opts.Validate(); err != nil {
		return ctl.Config{}, nil, err
	}

	cc := opts.Cluster
	var factory func() (sched.Scheduler, error)
	switch f.scheduler {
	case "fifo":
		factory = func() (sched.Scheduler, error) { return sched.NewFIFO(), nil }
	case "drf":
		factory = func() (sched.Scheduler, error) {
			return sched.NewDRF(cc.TotalNodes()*cc.CoresPerNode, cc.TotalNodes()*cc.GPUsPerNode)
		}
	case "coda":
		factory = func() (sched.Scheduler, error) {
			return core.New(core.DefaultConfig(), cc.Nodes, cc.CoresPerNode, cc.GPUsPerNode)
		}
	default:
		return ctl.Config{}, nil, fmt.Errorf("unknown scheduler %q (want fifo, drf or coda)", f.scheduler)
	}

	if err := os.MkdirAll(f.dataDir, 0o755); err != nil {
		return ctl.Config{}, nil, err
	}
	log, err := wal.OpenFileLog(filepath.Join(f.dataDir, "requests.wal"))
	if err != nil {
		return ctl.Config{}, nil, err
	}
	store, err := wal.NewFileStore(filepath.Join(f.dataDir, "checkpoints"))
	if err != nil {
		_ = log.Close()
		return ctl.Config{}, nil, err
	}
	return ctl.Config{
		Options:         opts,
		NewScheduler:    factory,
		Log:             log,
		Store:           store,
		CheckpointEvery: f.checkpointEvery,
	}, log, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	f, err := parseFlags(args, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "coda-serve: %v\n", err)
		return 2
	}
	cfg, log, err := buildConfig(f)
	if err != nil {
		fmt.Fprintf(stderr, "coda-serve: %v\n", err)
		return 2
	}
	defer func() { _ = log.Close() }()

	m, recovered, err := ctl.Resume(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "coda-serve: recovery: %v\n", err)
		return 2
	}
	if recovered {
		c := m.Counters()
		fmt.Fprintf(stdout, "coda-serve: recovered %d applied requests (%d replayed from the WAL), virtual time %v\n",
			m.Applied(), c.ServeReplayed, m.Now())
	} else {
		fmt.Fprintf(stdout, "coda-serve: fresh start\n")
	}

	server := ctl.NewServer(m, ctl.ServerConfig{QueueDepth: f.queueDepth})
	ln, err := net.Listen("tcp", f.addr)
	if err != nil {
		fmt.Fprintf(stderr, "coda-serve: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "coda-serve: listening on %s (tick %v, data %s)\n", ln.Addr(), f.tick, f.dataDir)

	// The ticker goroutine is the machine's only writer: it drains the
	// admission queue as one WAL batch per tick and advances virtual time
	// in lockstep with the wall clock. It owns shutdown: on SIGINT or a
	// poisoned engine it stops the server and closes the listener, which
	// unblocks http.Serve below.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	defer signal.Stop(stop)
	var tickErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(f.tick)
		defer ticker.Stop()
		at := m.Now()
		for {
			select {
			case <-ticker.C:
				at += f.tick
				if err := server.Tick(at); err != nil {
					tickErr = err
					server.Stop()
					ln.Close()
					return
				}
			case <-stop:
				server.Stop()
				ln.Close()
				return
			}
		}
	}()

	_ = http.Serve(ln, server) // returns once the ticker goroutine closes the listener
	<-done
	if tickErr != nil {
		fmt.Fprintf(stderr, "coda-serve: tick: %v\n", tickErr)
		return 1
	}
	fmt.Fprintf(stdout, "coda-serve: shut down at virtual time %v after %d requests\n", m.Now(), m.Applied())
	return 0
}
