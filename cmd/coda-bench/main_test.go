package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFastSections(t *testing.T) {
	// Sections that need no simulation run instantly at any scale.
	for _, section := range []string{"table1", "fig3", "fig5", "fig6", "fig7"} {
		if err := run([]string{"-only", section}); err != nil {
			t.Errorf("%s: %v", section, err)
		}
	}
}

func TestRunSimulatedSections(t *testing.T) {
	// The three-scheduler comparison is memoized inside the experiments
	// package, so after fig10 pays its cost the rest are cheap.
	sections := []string{"fig10", "fig11", "fig12", "fig13", "fig14", "fig2", "sec6e", "sec6g", "table2"}
	for _, section := range sections {
		if err := run([]string{"-scale", "tiny", "-only", section}); err != nil {
			t.Errorf("%s: %v", section, err)
		}
	}
}

func TestRunMultiSeedSection(t *testing.T) {
	// The multiseed section sweeps seeds across the worker pool; -parallel 2
	// exercises the parallel path, -parallel 1 the sequential one.
	if err := run([]string{"-scale", "tiny", "-only", "multiseed", "-runs", "2", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "tiny", "-only", "multiseed", "-runs", "2", "-parallel", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestMemGateSection(t *testing.T) {
	// The tiny gate runs three streamed FIFO sims (1x, 4x, 8x jobs) in about
	// a second and must pass with the default threshold.
	out := filepath.Join(t.TempDir(), "memgate.json")
	if err := run([]string{"-scale", "tiny", "-only", "memgate", "-bench-json", out}); err != nil {
		t.Fatalf("memgate: %v", err)
	}
	info, err := os.Stat(out)
	if err != nil || info.Size() == 0 {
		t.Errorf("memgate json: %v (size %d)", err, info.Size())
	}
	// A negative threshold is unsatisfiable (the slope is clamped at zero),
	// so this exercises the failure path deterministically.
	if err := run([]string{"-scale", "tiny", "-only", "memgate", "-memgate-bytes-per-job", "-1"}); err == nil {
		t.Error("unsatisfiable memgate threshold should fail")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
	if err := run([]string{"-runs", "0"}); err == nil {
		t.Error("zero runs should fail")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-scale", "tiny", "-only", "table1", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig3_util_vs_cores.csv",
		"fig1_weekly_trend.csv",
		"fig11_gpu_queue_cdf.csv",
		"fig11_cpu_queue_cdf.csv",
		"fig12_per_user_p99.csv",
		"fig14_core_deltas.csv",
	} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil || info.Size() == 0 {
			t.Errorf("%s: %v (size %d)", name, err, info.Size())
		}
	}
}
