// Command coda-bench regenerates every table and figure of the paper's
// evaluation and prints measured values next to the published ones.
//
// Usage:
//
//	coda-bench               # all experiments at the small scale
//	coda-bench -scale full   # the paper's full one-month operating point
//	coda-bench -only fig10   # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/coda-repro/coda/internal/experiments"
	"github.com/coda-repro/coda/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coda-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coda-bench", flag.ContinueOnError)
	scaleName := fs.String("scale", "small", "trace scale: tiny, small, full or warehouse")
	only := fs.String("only", "", "run one experiment: fig1,fig2,fig3,fig5,fig6,fig7,table1,fig10,fig11,fig12,fig13,fig14,sec6e,sec6g,static,table2,ablations,multiseed,macro,memgate,scalecurve,placement")
	seed := fs.Int64("seed", 1, "random seed")
	csvDir := fs.String("csv", "", "also export plottable figure data as CSV files into this directory")
	parallel := fs.Int("parallel", 0, "worker-pool width for experiment matrices (0 = GOMAXPROCS)")
	runs := fs.Int("runs", 3, "seed count for the multiseed section")
	benchJSON := fs.String("bench-json", "", "write macro-benchmark measurements to this JSON file (BENCH_<name>.json)")
	benchBaseline := fs.String("bench-baseline", "", "compare macro-benchmark events/sec against this baseline JSON and fail on regression")
	benchTolerance := fs.Float64("bench-tolerance", 0.20, "allowed fractional events/sec drop vs -bench-baseline before failing")
	memGateBytes := fs.Float64("memgate-bytes-per-job", 256, "memgate: allowed peak-heap growth per extra job before failing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be at least 1, got %d", *runs)
	}
	experiments.SetParallelism(*parallel)
	defer experiments.SetParallelism(0)

	var sc experiments.Scale
	switch *scaleName {
	case "tiny":
		sc = experiments.TinyScale()
	case "small":
		sc = experiments.SmallScale()
	case "full":
		sc = experiments.FullScale()
	case "warehouse":
		sc = experiments.WarehouseScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	sc.Seed = *seed

	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}

	type section struct {
		name string
		run  func() error
	}
	sections := []section{
		{"table1", printTable1},
		{"fig3", printFig3},
		{"fig5", printFig5},
		{"fig6", printFig6},
		{"fig7", printFig7},
		{"fig1", func() error { return printFig1(sc) }},
		{"fig2", func() error { return printFig2(sc) }},
		{"fig10", func() error { return printFig10(sc) }},
		{"fig11", func() error { return printFig11(sc) }},
		{"fig12", func() error { return printFig12(sc) }},
		{"fig13", func() error { return printFig13(sc) }},
		{"fig14", func() error { return printFig14(sc) }},
		{"sec6e", func() error { return printSec6E(sc) }},
		{"sec6g", func() error { return printSec6G(sc) }},
		{"static", func() error { return printStatic(sc) }},
		{"table2", func() error { return printTable2(*seed) }},
		{"ablations", func() error { return printAblations(sc, *seed) }},
		{"multiseed", func() error { return printMultiSeed(sc, *seed, *runs) }},
		{"macro", func() error { return printMacro(sc, *scaleName, *benchJSON, *benchBaseline, *benchTolerance) }},
		{"memgate", func() error { return printMemGate(sc, *scaleName, *benchJSON, *memGateBytes) }},
		{"scalecurve", func() error { return printScaleCurveBench(*seed, *benchJSON) }},
		{"placement", func() error { return printPlacement() }},
	}
	timedOnly := map[string]bool{"macro": true, "memgate": true, "scalecurve": true}
	for _, s := range sections {
		if !want(s.name) {
			continue
		}
		if timedOnly[s.name] && *only == "" {
			continue // timed full runs: only on an explicit -only request
		}
		if err := s.run(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	if *csvDir != "" {
		if err := writeCSVs(*csvDir, sc); err != nil {
			return fmt.Errorf("csv export: %w", err)
		}
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func printTable1() error {
	header("Table I — benchmark catalog")
	for _, r := range experiments.Table1() {
		fmt.Printf("  %-12s %-7s %s\n", r.Model, r.Scenario, r.Type)
	}
	return nil
}

func printFig3() error {
	header("Fig. 3 — GPU utilization vs allocated cores (1N1G / 1N4G)")
	pts, err := experiments.Fig3()
	if err != nil {
		return err
	}
	// Print each curve on one line, cores 1..14.
	curves := map[string][]float64{}
	var order []string
	for _, p := range pts {
		key := fmt.Sprintf("%-12s %s", p.Model, p.Config)
		if _, ok := curves[key]; !ok {
			order = append(order, key)
		}
		curves[key] = append(curves[key], p.GPUUtil)
	}
	fmt.Printf("  %-18s %s\n", "model config", "util at cores 1..14")
	for _, key := range order {
		var b strings.Builder
		for _, u := range curves[key] {
			fmt.Fprintf(&b, "%4.2f ", u)
		}
		fmt.Printf("  %-18s %s\n", key, b.String())
	}
	return nil
}

func printFig5() error {
	header("Fig. 5 — optimal CPU cores per model, configuration and batch")
	rows, err := experiments.Fig5()
	if err != nil {
		return err
	}
	fmt.Printf("  %-12s %-6s %-8s %s\n", "model", "config", "batch", "optimal cores")
	for _, r := range rows {
		fmt.Printf("  %-12s %-6s %-8s %d\n", r.Model, r.Config, r.Batch, r.OptimalCores)
	}
	return nil
}

func printFig6() error {
	header("Fig. 6 — memory-bandwidth demand at the optimal core count")
	rows, err := experiments.Fig6()
	if err != nil {
		return err
	}
	fmt.Printf("  %-12s %-6s %-8s %s\n", "model", "config", "batch", "GB/s")
	for _, r := range rows {
		fmt.Printf("  %-12s %-6s %-8s %.1f\n", r.Model, r.Config, r.Batch, r.BandwidthGBs)
	}
	return nil
}

func printFig7() error {
	header("Fig. 7 — normalized performance under HEAT contention (1N1G)")
	pts, err := experiments.Fig7()
	if err != nil {
		return err
	}
	perf := map[string]map[int]float64{}
	llcMin := map[string]float64{}
	var order []string
	for _, p := range pts {
		switch p.Pressure {
		case "bw":
			if _, ok := perf[p.Model]; !ok {
				perf[p.Model] = map[int]float64{}
				order = append(order, p.Model)
				llcMin[p.Model] = 1
			}
			perf[p.Model][p.HeatThreads] = p.NormalizedPerf
		case "llc":
			if p.NormalizedPerf < llcMin[p.Model] {
				llcMin[p.Model] = p.NormalizedPerf
			}
		}
	}
	fmt.Printf("  %-12s %-42s %s\n", "model", "bw pressure @ 0/4/8/16/24/32 HEAT threads", "llc worst")
	for _, m := range order {
		fmt.Printf("  %-12s %4.2f %4.2f %4.2f %4.2f %4.2f %4.2f          %4.2f\n",
			m, perf[m][0], perf[m][4], perf[m][8], perf[m][16], perf[m][24], perf[m][32], llcMin[m])
	}
	return nil
}

func printFig1(sc experiments.Scale) error {
	header("Fig. 1 — week-long CPU/GPU usage trend under FIFO")
	res, err := experiments.Fig1(sc)
	if err != nil {
		return err
	}
	fmt.Printf("  mean cpu active %.1f%%  mean cpu util %.1f%%\n",
		res.CPUActive.Mean()*100, res.CPUUtil.Mean()*100)
	fmt.Printf("  mean gpu active %.1f%%  mean gpu util %.1f%%\n",
		res.GPUActive.Mean()*100, res.GPUUtil.Mean()*100)
	fmt.Printf("  cpu diurnal peak/trough ratio %.2f (paper: pronounced diurnal pattern)\n", res.DiurnalRatio)
	fmt.Printf("  gpu util above cpu util: %v (paper: consistently higher)\n", res.GPUAboveCPU)
	return nil
}

func printFig2(sc experiments.Scale) error {
	header("Fig. 2 — job characteristics")
	res, err := experiments.Fig2(sc)
	if err != nil {
		return err
	}
	s := res.Stats
	fmt.Printf("  jobs: %d total, %d cpu (%.1f%%), %d gpu\n",
		s.Jobs, s.CPUJobs, 100*float64(s.CPUJobs)/float64(s.Jobs), s.GPUJobs)
	fmt.Printf("  gpu jobs requesting 1-2 cores   %5.1f%%   paper %.1f%%\n", s.ReqCores12*100, res.PaperReq12*100)
	fmt.Printf("  gpu jobs requesting >10 cores   %5.1f%%   paper %.1f%%\n", s.ReqCoresOver10*100, res.PaperReqOver10*100)
	fmt.Printf("  gpu queueing >3min under FIFO   %5.1f%%   paper %.1f%%\n", res.GPUOver3Min*100, res.PaperGPUOver3Min*100)
	fmt.Printf("  gpu queueing >10min under FIFO  %5.1f%%   paper %.1f%%\n", res.GPUOver10Min*100, res.PaperGPUOver10Min*100)
	fmt.Printf("  gpu jobs running >1h %.1f%% (paper 68.5%%), >2h %.1f%% (paper 39.6%%)\n",
		s.GPUJobsOverHour*100, s.GPUJobsOverTwoHours*100)
	return nil
}

func printFig10(sc experiments.Scale) error {
	header("Fig. 10 / §VI-C — GPU active rate, utilization, fragmentation")
	c, err := experiments.RunComparison(sc)
	if err != nil {
		return err
	}
	fmt.Printf("  %-6s %-22s %-22s %s\n", "", "active while queueing", "gpu utilization", "fragmentation while queueing")
	for _, r := range experiments.Fig10(c) {
		fmt.Printf("  %-6s %5.1f%% (paper %5.1f%%)   %5.1f%% (paper %5.1f%%)   %5.2f%% (paper %5.1f%%)\n",
			r.Scheduler, r.ActiveRate*100, r.PaperActive*100,
			r.Util*100, r.PaperUtil*100, r.FragRate*100, r.PaperFrag*100)
	}
	return nil
}

func printFig11(sc experiments.Scale) error {
	header("Fig. 11 — queueing-time distribution")
	c, err := experiments.RunComparison(sc)
	if err != nil {
		return err
	}
	p := func(v, paper float64) string {
		if paper < 0 {
			return fmt.Sprintf("%5.1f%%          ", v*100)
		}
		return fmt.Sprintf("%5.1f%% (p %4.1f%%)", v*100, paper*100)
	}
	fmt.Printf("  %-6s %-17s %-17s %-17s %-17s %s\n",
		"", "gpu >10min", "gpu >1h", "gpu immediate", "cpu <=10s", "cpu <=3min")
	for _, r := range experiments.Fig11(c) {
		fmt.Printf("  %-6s %s %s %s %s %s\n", r.Scheduler,
			p(r.GPUOver10Min, r.PaperGPUOver10Min),
			p(r.GPUOver1Hour, r.PaperGPUOver1Hour),
			p(r.GPUImmediate, r.PaperGPUImmediate),
			p(r.CPUWithin10s, r.PaperCPUWithin10s),
			p(r.CPUWithin3Min, r.PaperCPUWithin3Min))
	}
	return nil
}

func printFig12(sc experiments.Scale) error {
	header("Fig. 12 — per-user 99%-ile queueing time")
	c, err := experiments.RunComparison(sc)
	if err != nil {
		return err
	}
	fmt.Printf("  %-5s %-12s %-12s %s\n", "user", "fifo", "drf", "coda")
	for _, r := range experiments.Fig12(c) {
		fmt.Printf("  %-5d %-12s %-12s %s\n", r.User,
			experiments.FormatDuration(r.FIFO),
			experiments.FormatDuration(r.DRF),
			experiments.FormatDuration(r.CODA))
	}
	return nil
}

func printFig13(sc experiments.Scale) error {
	header("Fig. 13 — end-to-end latency of representative GPU jobs")
	c, err := experiments.RunComparison(sc)
	if err != nil {
		return err
	}
	fmt.Printf("  %-12s %-24s %s\n", "model", "fifo queue+run", "coda queue+run")
	for _, r := range experiments.Fig13(c) {
		fmt.Printf("  %-12s %-10s + %-11s %-10s + %s\n", r.Model,
			experiments.FormatDuration(r.FIFOQueue), experiments.FormatDuration(r.FIFORun),
			experiments.FormatDuration(r.CODAQueue), experiments.FormatDuration(r.CODARun))
	}
	return nil
}

func printFig14(sc experiments.Scale) error {
	header("Fig. 14 — tuning of the core count vs owner requests")
	c, err := experiments.RunComparison(sc)
	if err != nil {
		return err
	}
	res, err := experiments.Fig14(c)
	if err != nil {
		return err
	}
	fmt.Printf("  granted 1-5 more cores    %5.1f%%   paper %.1f%%\n", res.More1to5*100, res.PaperMore1to5*100)
	fmt.Printf("  granted 1-20 fewer cores  %5.1f%%   paper %.1f%%\n", res.Fewer1to20*100, res.PaperFewer1to20*100)
	fmt.Printf("  more total %.1f%%, fewer total %.1f%%, unchanged %.1f%%\n",
		res.MoreTotal*100, res.FewerTotal*100, res.Unchanged*100)
	return nil
}

func printSec6E(sc experiments.Scale) error {
	header("§VI-E — contention eliminator ablation")
	res, err := experiments.Sec6E(sc)
	if err != nil {
		return err
	}
	drop := res.UtilWithEliminator - res.UtilWithout
	factor := 0.0
	if res.QueuedWith > 0 {
		factor = res.QueuedWithout / res.QueuedWith
	}
	fmt.Printf("  0.5%% hogs (paper's density): util with %5.1f%%, without %5.1f%% (drop %.1f pts; paper 2.3 pts)\n",
		res.UtilWithEliminator*100, res.UtilWithout*100, drop*100)
	fmt.Printf("  mean queued jobs: with %.1f, without %.1f (factor %.2fx; paper ~2x)\n",
		res.QueuedWith, res.QueuedWithout, factor)
	fmt.Printf("  eliminator interventions: %d\n", res.Throttles)
	stressDrop := res.StressUtilWith - res.StressUtilWithout
	fmt.Printf("  5%% hogs (stress): util with %5.1f%%, without %5.1f%% (drop %.1f pts), %d interventions\n",
		res.StressUtilWith*100, res.StressUtilWithout*100, stressDrop*100, res.StressThrottles)
	return nil
}

func printSec6G(sc experiments.Scale) error {
	header("§VI-G — generality: heterogeneous cluster (80 GPU + 20 CPU nodes)")
	rows, err := experiments.Generality(sc, 20)
	if err != nil {
		return err
	}
	fmt.Printf("  %-6s %-12s %-16s %s\n", "", "gpu util", "gpu immediate", "cpu <=3min")
	for _, r := range rows {
		fmt.Printf("  %-6s %5.1f%%       %5.1f%%           %5.1f%%\n",
			r.Scheduler, r.GPUUtil*100, r.GPUImmediate*100, r.CPUWithin3Min*100)
	}
	return nil
}

func printStatic(sc experiments.Scale) error {
	header("§I — static-partition baseline (split all cores across GPUs)")
	res, err := experiments.StaticBaseline(sc)
	if err != nil {
		return err
	}
	fmt.Printf("  static: gpu util %5.1f%%, cpu active %5.1f%%, gpu immediate %5.1f%%, cpu <=3min %5.1f%%\n",
		res.GPUUtil*100, res.CPUActiveRate*100, res.GPUImmediate*100, res.CPUWithin3Min*100)
	fmt.Printf("  context: coda util %5.1f%%, fifo util %5.1f%%\n", res.CODAUtil*100, res.FIFOUtil*100)
	return nil
}

// printMultiSeed replays the three-scheduler comparison under runs
// consecutive seeds on the worker pool and reports seed-averaged headline
// rates with pooled queueing distributions — the variance check behind the
// single-seed figures.
func printMultiSeed(sc experiments.Scale, seed int64, runs int) error {
	header(fmt.Sprintf("Multi-seed comparison — %d seeds, merged", runs))
	seeds := make([]int64, runs)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	msc, err := experiments.RunMultiSeedComparison(sc, seeds)
	if err != nil {
		return err
	}
	fmt.Printf("  %-6s %-10s %-12s %-15s %-12s %s\n",
		"", "gpu util", "gpu active", "gpu immediate", "gpu >10min", "cpu <=3min")
	for _, m := range []*sim.Merged{msc.FIFO, msc.DRF, msc.CODA} {
		fmt.Printf("  %-6s %5.1f%%     %5.1f%%       %5.1f%%          %5.1f%%       %5.1f%%\n",
			m.Scheduler, m.GPUUtil*100, m.GPUActiveRate*100,
			m.GPUQueue.FractionAtMost(0)*100,
			m.GPUQueue.FractionAbove(10*time.Minute)*100,
			m.CPUQueue.FractionAtMost(3*time.Minute)*100)
	}
	fmt.Printf("  (each row merges %d runs; distributions pooled, rates seed-averaged)\n", msc.CODA.Runs)
	return nil
}

func printTable2(seed int64) error {
	header("Table II — overhead of identifying the optimal core number")
	rows, err := experiments.Table2(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %-12s %-24s %s\n", "model", "profiling steps (paper)", "iterations (paper)")
	for _, r := range rows {
		fmt.Printf("  %-12s %d (%d)%20s %d (~%d)\n",
			r.Model, r.ProfilingSteps, r.PaperSteps, "", r.TrainingIterations, r.PaperIterations)
	}
	return nil
}

func printAblations(sc experiments.Scale, seed int64) error {
	header("Ablations — design choices beyond the paper's headline results")
	start := time.Now()
	a, err := experiments.AblationAdaptiveAllocation(sc)
	if err != nil {
		return err
	}
	fmt.Printf("  %-26s full util %5.1f%% -> ablated %5.1f%%; immediate %5.1f%% -> %5.1f%%\n",
		a.Name, a.FullUtil*100, a.AblatedUtil*100, a.FullImmediate*100, a.AblatedImmediate*100)
	b, err := experiments.AblationRebalance(sc)
	if err != nil {
		return err
	}
	fmt.Printf("  %-26s full util %5.1f%% -> ablated %5.1f%%; immediate %5.1f%% -> %5.1f%%\n",
		b.Name, b.FullUtil*100, b.AblatedUtil*100, b.FullImmediate*100, b.AblatedImmediate*100)
	p, err := experiments.AblationPreemption(sc)
	if err != nil {
		return err
	}
	fmt.Printf("  %-26s full util %5.1f%% -> ablated %5.1f%%; immediate %5.1f%% -> %5.1f%%\n",
		p.Name, p.FullUtil*100, p.AblatedUtil*100, p.FullImmediate*100, p.AblatedImmediate*100)
	n, err := experiments.AblationNstartSeeding(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  nstart-seeding             seeded %.2f profiling steps vs cold %.2f\n",
		n.SeededSteps, n.FixedSteps)
	th, err := experiments.AblationEliminatorThreshold(sc, []float64{0.6, 0.75, 0.9})
	if err != nil {
		return err
	}
	for _, pt := range th {
		fmt.Printf("  eliminator threshold %.2f   gpu util %5.1f%%, %d interventions (5%% hog trace)\n",
			pt.Threshold, pt.GPUUtil*100, pt.Interventions)
	}
	fmt.Printf("  (ablation wall time %v)\n", time.Since(start).Truncate(time.Millisecond))
	return nil
}
