package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/coda-repro/coda/internal/experiments"
)

// benchEntry is one machine-readable macro-benchmark measurement. The JSON
// files these serialize into (BENCH_<name>.json) are the perf trajectory
// every optimization PR diffs against; CI replays the short-mode variant
// and fails on events/sec regressions.
type benchEntry struct {
	Name             string  `json:"name"`
	Scale            string  `json:"scale"`
	Scheduler        string  `json:"scheduler"`
	Invariants       bool    `json:"invariants"`
	Seed             int64   `json:"seed"`
	Events           int64   `json:"events"`
	PlacementQueries int64   `json:"placement_queries"`
	WallNs           int64   `json:"wall_ns"`
	NsPerEvent       float64 `json:"ns_per_event"`
	EventsPerSec     float64 `json:"events_per_sec"`
	QueriesPerSec    float64 `json:"placement_queries_per_sec"`
	Allocs           uint64  `json:"allocs"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
}

// macroVariants are the engine configurations the macro benchmark times:
// the lightest scheduler (placement-dominated), the full CODA stack, and
// CODA with the per-event invariant checker on (the O(Δ) target).
var macroVariants = []struct {
	scheduler  string
	invariants bool
}{
	{"fifo", false},
	{"coda", false},
	{"coda", true},
}

// printMacro runs the macro-benchmark at the chosen scale, prints the
// measurements, optionally writes them as JSON, and — when a baseline file
// is given — fails on a >tolerance events/sec regression against it.
func printMacro(sc experiments.Scale, scaleName, jsonPath, baselinePath string, tolerance float64) error {
	header(fmt.Sprintf("Macro-benchmark — %s scale, seed %d", scaleName, sc.Seed))
	entries := make([]benchEntry, 0, len(macroVariants))
	for _, v := range macroVariants {
		e, err := runMacroVariant(sc, scaleName, v.scheduler, v.invariants)
		if err != nil {
			return err
		}
		entries = append(entries, e)
		fmt.Printf("  %-16s %9d events  %8.0f events/sec  %8.0f queries/sec  %6.1f allocs/event  (%v)\n",
			e.Name, e.Events, e.EventsPerSec, e.QueriesPerSec, e.AllocsPerEvent,
			time.Duration(e.WallNs).Truncate(time.Millisecond))
	}
	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, entries); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	if baselinePath != "" {
		return compareBenchBaseline(baselinePath, entries, tolerance)
	}
	return nil
}

// runMacroVariant times one full simulation run and derives the throughput
// measurements from the run's own event and placement-query counters.
func runMacroVariant(sc experiments.Scale, scaleName, scheduler string, invariants bool) (benchEntry, error) {
	spec, err := experiments.BenchSpec(sc, scheduler, invariants)
	if err != nil {
		return benchEntry{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := spec.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", spec.Name, err)
	}
	e := benchEntry{
		Name:             spec.Name,
		Scale:            scaleName,
		Scheduler:        scheduler,
		Invariants:       invariants,
		Seed:             sc.Seed,
		Events:           res.Events,
		PlacementQueries: res.PlacementQueries,
		WallNs:           wall.Nanoseconds(),
		Allocs:           after.Mallocs - before.Mallocs,
	}
	if e.Events > 0 {
		e.NsPerEvent = float64(e.WallNs) / float64(e.Events)
		e.AllocsPerEvent = float64(e.Allocs) / float64(e.Events)
	}
	if secs := wall.Seconds(); secs > 0 {
		e.EventsPerSec = float64(e.Events) / secs
		e.QueriesPerSec = float64(e.PlacementQueries) / secs
	}
	return e, nil
}

func writeBenchJSON(path string, entries []benchEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareBenchBaseline fails when any variant's events/sec or placement
// queries/sec fell more than tolerance below the committed baseline — the
// CI regression gate. Gating query throughput separately catches a
// placement-path regression even when event processing elsewhere masks it.
func compareBenchBaseline(path string, entries []benchEntry, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var baseline []benchEntry
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("bench baseline %s: %w", path, err)
	}
	byName := make(map[string]benchEntry, len(baseline))
	for _, b := range baseline {
		byName[b.Name] = b
	}
	var regressed []string
	for _, e := range entries {
		b, ok := byName[e.Name]
		if !ok || b.EventsPerSec <= 0 {
			continue
		}
		ratio := e.EventsPerSec / b.EventsPerSec
		fmt.Printf("  %-16s %8.0f events/sec vs baseline %8.0f (%.2fx)\n",
			e.Name, e.EventsPerSec, b.EventsPerSec, ratio)
		if ratio < 1-tolerance {
			regressed = append(regressed, fmt.Sprintf("%s: %.0f -> %.0f events/sec (%.0f%% drop)",
				e.Name, b.EventsPerSec, e.EventsPerSec, (1-ratio)*100))
		}
		if b.QueriesPerSec <= 0 {
			continue
		}
		qratio := e.QueriesPerSec / b.QueriesPerSec
		fmt.Printf("  %-16s %8.0f queries/sec vs baseline %8.0f (%.2fx)\n",
			e.Name, e.QueriesPerSec, b.QueriesPerSec, qratio)
		if qratio < 1-tolerance {
			regressed = append(regressed, fmt.Sprintf("%s: %.0f -> %.0f queries/sec (%.0f%% drop)",
				e.Name, b.QueriesPerSec, e.QueriesPerSec, (1-qratio)*100))
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("throughput regression beyond %.0f%%: %v", tolerance*100, regressed)
	}
	return nil
}
