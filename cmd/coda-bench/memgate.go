package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/coda-repro/coda/internal/experiments"
	"github.com/coda-repro/coda/internal/sim"
)

// memGateEntry is one machine-readable memory/scale measurement. The
// memgate section emits one per job-count multiplier; the scalecurve
// section emits one per preset (BENCH_scale_curve.json).
type memGateEntry struct {
	Name             string  `json:"name"`
	Scale            string  `json:"scale"`
	Jobs             int     `json:"jobs"`
	Nodes            int     `json:"nodes"`
	Days             float64 `json:"days"`
	Events           int64   `json:"events"`
	PlacementQueries int64   `json:"placement_queries"`
	WallNs           int64   `json:"wall_ns"`
	EventsPerSec     float64 `json:"events_per_sec"`
	QueriesPerSec    float64 `json:"placement_queries_per_sec"`
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	LiveHeapBytes    uint64  `json:"live_heap_bytes"`
	// BytesPerJob is this point's peak heap growth over the process baseline
	// divided by its job count — an upper bound on intake cost per job.
	BytesPerJob float64 `json:"bytes_per_job"`
}

// heapWatcher samples the live heap in the background and remembers the
// peak. Peak live heap — not retained heap after the run — is what decides
// whether a warehouse run fits in memory, and Go exposes no direct peak
// counter, so we poll.
type heapWatcher struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > w.peak {
					w.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return w
}

// Peak stops the watcher and returns the highest live heap it saw.
func (w *heapWatcher) Peak() uint64 {
	close(w.stop)
	<-w.done
	return w.peak
}

// runInstrumented executes one spec while watching the heap. It returns the
// run result plus wall time, peak live heap above the pre-run baseline, and
// the retained heap with the result still reachable.
func runInstrumented(spec sim.RunSpec) (res *sim.Result, wall time.Duration, peakAbove, live uint64, err error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	w := watchHeap()
	start := time.Now()
	res, err = spec.Run()
	wall = time.Since(start)
	peak := w.Peak()
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(res)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("%s: %w", spec.Name, err)
	}
	if peak > before.HeapAlloc {
		peakAbove = peak - before.HeapAlloc
	}
	if after.HeapAlloc > before.HeapAlloc {
		live = after.HeapAlloc - before.HeapAlloc
	}
	return res, wall, peakAbove, live, nil
}

// memGateMultipliers are the job-count factors the gate compares. Duration
// scales with the job count so the arrival rate — and hence the in-flight
// population, the one legitimate O(load) consumer — stays fixed; only the
// trace length grows.
var memGateMultipliers = []int{1, 4, 8}

// printMemGate is the CI memory gate: it runs MemGateSpec at growing
// multiples of the chosen scale's job count and fails when peak heap grows
// faster than maxBytesPerJob per extra job. With streaming intake the slope
// is near zero; a rematerialized trace (~500+ bytes/job) trips the gate
// immediately.
func printMemGate(sc experiments.Scale, scaleName, jsonPath string, maxBytesPerJob float64) error {
	header(fmt.Sprintf("Memory gate — %s scale x%v, seed %d", scaleName, memGateMultipliers, sc.Seed))
	entries := make([]memGateEntry, 0, len(memGateMultipliers))
	for _, mult := range memGateMultipliers {
		pt := sc
		pt.Days = sc.Days * float64(mult)
		pt.CPUJobs = sc.CPUJobs * mult
		pt.GPUJobs = sc.GPUJobs * mult
		spec, err := experiments.MemGateSpec(pt)
		if err != nil {
			return err
		}
		res, wall, peak, live, err := runInstrumented(spec)
		if err != nil {
			return err
		}
		e := memGateEntry{
			Name:             spec.Name,
			Scale:            scaleName,
			Jobs:             pt.CPUJobs + pt.GPUJobs,
			Nodes:            pt.Nodes,
			Days:             pt.Days,
			Events:           res.Events,
			PlacementQueries: res.PlacementQueries,
			WallNs:           wall.Nanoseconds(),
			PeakHeapBytes:    peak,
			LiveHeapBytes:    live,
			BytesPerJob:      float64(peak) / float64(pt.CPUJobs+pt.GPUJobs),
		}
		if secs := wall.Seconds(); secs > 0 {
			e.EventsPerSec = float64(e.Events) / secs
			e.QueriesPerSec = float64(e.PlacementQueries) / secs
		}
		entries = append(entries, e)
		fmt.Printf("  %-18s %8d jobs  peak heap %7.1f MiB  live %6.1f MiB  %6.1f B/job  (%v)\n",
			e.Name, e.Jobs, float64(e.PeakHeapBytes)/(1<<20), float64(e.LiveHeapBytes)/(1<<20),
			e.BytesPerJob, wall.Truncate(time.Millisecond))
	}
	if jsonPath != "" {
		if err := writeMemGateJSON(jsonPath, entries); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	first, last := entries[0], entries[len(entries)-1]
	slope := 0.0
	if dj := last.Jobs - first.Jobs; dj > 0 && last.PeakHeapBytes > first.PeakHeapBytes {
		slope = float64(last.PeakHeapBytes-first.PeakHeapBytes) / float64(dj)
	}
	fmt.Printf("  peak-heap slope %.1f bytes/job across %dx job growth (gate: %.0f)\n",
		slope, memGateMultipliers[len(memGateMultipliers)-1], maxBytesPerJob)
	if slope > maxBytesPerJob {
		return fmt.Errorf("intake memory is not flat: peak heap grew %.1f bytes per extra job (gate %.0f) — %d jobs: %.1f MiB, %d jobs: %.1f MiB",
			slope, maxBytesPerJob, first.Jobs, float64(first.PeakHeapBytes)/(1<<20),
			last.Jobs, float64(last.PeakHeapBytes)/(1<<20))
	}
	return nil
}

// scaleCurvePresets are the committed BENCH_scale_curve.json rows: one FIFO
// streaming run per preset, tiny through warehouse.
var scaleCurvePresets = []struct {
	name  string
	scale func() experiments.Scale
}{
	{"tiny", experiments.TinyScale},
	{"small", experiments.SmallScale},
	{"full", experiments.FullScale},
	{"warehouse", experiments.WarehouseScale},
}

// printScaleCurveBench measures events/sec and peak heap at every preset.
// It backs EXPERIMENTS.md's scale-curve table; the warehouse row is the
// million-job / 5,000-node run the streaming refactor exists for.
func printScaleCurveBench(seed int64, jsonPath string) error {
	header(fmt.Sprintf("Scale curve — streaming FIFO at every preset, seed %d", seed))
	entries := make([]memGateEntry, 0, len(scaleCurvePresets))
	for _, p := range scaleCurvePresets {
		sc := p.scale()
		sc.Seed = seed
		spec, err := experiments.MemGateSpec(sc)
		if err != nil {
			return err
		}
		spec.Name = "curve-" + p.name
		res, wall, peak, live, err := runInstrumented(spec)
		if err != nil {
			return err
		}
		e := memGateEntry{
			Name:             spec.Name,
			Scale:            p.name,
			Jobs:             sc.CPUJobs + sc.GPUJobs,
			Nodes:            sc.Nodes,
			Days:             sc.Days,
			Events:           res.Events,
			PlacementQueries: res.PlacementQueries,
			WallNs:           wall.Nanoseconds(),
			PeakHeapBytes:    peak,
			LiveHeapBytes:    live,
			BytesPerJob:      float64(peak) / float64(sc.CPUJobs+sc.GPUJobs),
		}
		if secs := wall.Seconds(); secs > 0 {
			e.EventsPerSec = float64(e.Events) / secs
			e.QueriesPerSec = float64(e.PlacementQueries) / secs
		}
		entries = append(entries, e)
		fmt.Printf("  %-16s %8d jobs  %5d nodes  %9d events  %8.0f events/sec  %8.0f queries/sec  peak heap %7.1f MiB  (%v)\n",
			e.Name, e.Jobs, e.Nodes, e.Events, e.EventsPerSec, e.QueriesPerSec,
			float64(e.PeakHeapBytes)/(1<<20), wall.Truncate(time.Millisecond))
	}
	if jsonPath != "" {
		if err := writeMemGateJSON(jsonPath, entries); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	return nil
}

func writeMemGateJSON(path string, entries []memGateEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
