package main

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
)

// placementNodeCounts are the cluster sizes the placement microbenchmark
// compares: the paper's 80-node cluster and the 5,000-node warehouse, with
// a midpoint. Sub-linear growth from 80 to 5,000 is the acceptance bar for
// the hierarchical index — the flat scan grew ~60x over that span.
var placementNodeCounts = []int{80, 1000, 5000}

// placementQueryIters is how many times each query shape runs per
// measurement; at tens to hundreds of ns per query this keeps every cell
// around 10-100 ms.
const placementQueryIters = 200000

// printPlacement microbenchmarks the placement query shapes in isolation —
// no event loop, just the index — on clusters loaded so that a first-fit
// probe must skip a long occupied prefix (the worst case for any scan).
func printPlacement() error {
	header("Placement microbenchmark — hierarchical index query cost vs cluster size")
	fmt.Printf("  %-12s %14s %14s %14s %14s\n",
		"nodes", "first-fit hit", "first-fit miss", "best-fit hit", "count")
	firstFitNs := make(map[int]float64, len(placementNodeCounts))
	for _, nodes := range placementNodeCounts {
		c, err := loadedBenchCluster(nodes)
		if err != nil {
			return err
		}
		hit := timeQuery(func() {
			c.ScanPlaceable(4, 1, false, func(*cluster.Node) bool { return false })
		})
		miss := timeQuery(func() {
			// Nothing in the loaded cluster has 27 free cores and 5 free
			// GPUs: the flat scan visited every node to learn that.
			c.ScanPlaceable(27, 5, false, func(*cluster.Node) bool { return false })
		})
		best := timeQuery(func() {
			c.ScanPlaceable(4, 1, true, func(*cluster.Node) bool { return false })
		})
		count := timeQuery(func() {
			c.CountPlaceable(4, 1)
		})
		firstFitNs[nodes] = hit
		fmt.Printf("  %-12d %11.0f ns %11.0f ns %11.0f ns %11.0f ns\n",
			nodes, hit, miss, best, count)
	}
	small, large := placementNodeCounts[0], placementNodeCounts[len(placementNodeCounts)-1]
	ratio := firstFitNs[large] / firstFitNs[small]
	fmt.Printf("  first-fit cost %d -> %d nodes: %.2fx (linear scan: ~%.0fx)\n",
		small, large, ratio, float64(large)/float64(small))
	return nil
}

// timeQuery measures one query's mean wall time in nanoseconds.
func timeQuery(fn func()) float64 {
	start := time.Now()
	for i := 0; i < placementQueryIters; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(placementQueryIters)
}

// loadedBenchCluster builds a paper-shaped cluster (28 cores, 5 GPUs per
// node) filled front to back to ~95% so first-fit probes skip a long run of
// full nodes, with a deterministic ~5% of nodes left lightly loaded.
func loadedBenchCluster(nodes int) (*cluster.Cluster, error) {
	c, err := cluster.New(cluster.Config{
		Nodes: nodes, CoresPerNode: 28, GPUsPerNode: 5,
		BandwidthGBs: 120, PCIeGBs: 16,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(1))
	id := job.ID(1)
	for nid := 0; nid < nodes; nid++ {
		if rng.Intn(20) == 0 {
			continue
		}
		alloc := job.Allocation{NodeIDs: []int{nid}, CPUCores: 26, GPUs: 5}
		if err := c.Allocate(id, alloc); err != nil {
			return nil, err
		}
		id++
	}
	return c, nil
}
