package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/coda-repro/coda/internal/experiments"
	"github.com/coda-repro/coda/internal/sim"
)

// writeCSVs exports the plottable experiment data (figure series and
// CDFs) into dir, one file per figure, for external plotting tools.
func writeCSVs(dir string, sc experiments.Scale) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c, err := experiments.RunComparison(sc)
	if err != nil {
		return err
	}

	if err := writeFig3CSV(filepath.Join(dir, "fig3_util_vs_cores.csv")); err != nil {
		return err
	}
	if err := writeFig1CSV(filepath.Join(dir, "fig1_weekly_trend.csv"), sc); err != nil {
		return err
	}
	if err := writeCDFCSV(filepath.Join(dir, "fig11_gpu_queue_cdf.csv"), c, "gpu"); err != nil {
		return err
	}
	if err := writeCDFCSV(filepath.Join(dir, "fig11_cpu_queue_cdf.csv"), c, "cpu"); err != nil {
		return err
	}
	if err := writeFig12CSV(filepath.Join(dir, "fig12_per_user_p99.csv"), c); err != nil {
		return err
	}
	if err := writeFig14CSV(filepath.Join(dir, "fig14_core_deltas.csv"), c); err != nil {
		return err
	}
	fmt.Printf("wrote CSV exports to %s\n", dir)
	return nil
}

func writeRows(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func writeFig3CSV(path string) error {
	pts, err := experiments.Fig3()
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			p.Model, p.Config, strconv.Itoa(p.Cores),
			strconv.FormatFloat(p.GPUUtil, 'f', 4, 64),
			strconv.FormatFloat(p.Speed, 'f', 4, 64),
		})
	}
	return writeRows(path, []string{"model", "config", "cores", "gpu_util", "speed"}, rows)
}

func writeFig1CSV(path string, sc experiments.Scale) error {
	res, err := experiments.Fig1(sc)
	if err != nil {
		return err
	}
	series := []*struct {
		s interface {
			Len() int
			At(int) (time.Duration, float64)
		}
	}{{res.CPUActive}, {res.CPUUtil}, {res.GPUActive}, {res.GPUUtil}}
	n := series[0].s.Len()
	for _, sp := range series[1:] {
		if sp.s.Len() < n {
			n = sp.s.Len()
		}
	}
	rows := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		tm, _ := series[0].s.At(i)
		row := []string{strconv.Itoa(int(tm / time.Hour))}
		for _, sp := range series {
			_, v := sp.s.At(i)
			row = append(row, strconv.FormatFloat(v, 'f', 4, 64))
		}
		rows = append(rows, row)
	}
	return writeRows(path, []string{"hour", "cpu_active", "cpu_util", "gpu_active", "gpu_util"}, rows)
}

func writeCDFCSV(path string, c *experiments.Comparison, class string) error {
	var rows [][]string
	schedulers := []struct {
		name string
		res  *sim.Result
	}{{"fifo", c.FIFO}, {"drf", c.DRF}, {"coda", c.CODA}}
	for _, s := range schedulers {
		for _, p := range experiments.CDFPoints(s.res, class) {
			rows = append(rows, []string{
				s.name,
				strconv.FormatFloat(p.Value.Seconds(), 'f', 1, 64),
				strconv.FormatFloat(p.Fraction, 'f', 5, 64),
			})
		}
	}
	return writeRows(path, []string{"scheduler", "queue_seconds", "cdf"}, rows)
}

func writeFig12CSV(path string, c *experiments.Comparison) error {
	var rows [][]string
	for _, r := range experiments.Fig12(c) {
		rows = append(rows, []string{
			strconv.Itoa(r.User),
			strconv.FormatFloat(r.FIFO.Seconds(), 'f', 1, 64),
			strconv.FormatFloat(r.DRF.Seconds(), 'f', 1, 64),
			strconv.FormatFloat(r.CODA.Seconds(), 'f', 1, 64),
		})
	}
	return writeRows(path, []string{"user", "fifo_p99_s", "drf_p99_s", "coda_p99_s"}, rows)
}

func writeFig14CSV(path string, c *experiments.Comparison) error {
	res, err := experiments.Fig14(c)
	if err != nil {
		return err
	}
	edges := []int{-20, -10, -5, -1, 0, 1, 2, 6, 11, 21}
	var rows [][]string
	for i := 0; i+1 < len(edges); i++ {
		count, frac, err := res.Histogram.Bucket(i)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("[%d,%d)", edges[i], edges[i+1]),
			strconv.Itoa(count),
			strconv.FormatFloat(frac, 'f', 5, 64),
		})
	}
	return writeRows(path, []string{"delta_bucket", "count", "fraction"}, rows)
}
