package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/coda-repro/coda/internal/trace"
)

func tinyArgs(sched string) []string {
	return []string{"-sched", sched, "-days", "0.05", "-cpu-jobs", "30", "-gpu-jobs", "10", "-nodes", "4"}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, s := range []string{"fifo", "drf", "coda"} {
		if err := run(tinyArgs(s)); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}

func TestRunNoEliminatorAndSeries(t *testing.T) {
	args := append(tinyArgs("coda"), "-no-eliminator", "-series")
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 20, 8
	cfg.Duration = cfg.Duration / 100
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, jobs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sched", "coda", "-trace", path, "-nodes", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-sched", "quantum"}); err == nil {
		t.Error("unknown scheduler should fail")
	}
	if err := run([]string{"-days", "0"}); err == nil {
		t.Error("zero duration should fail")
	}
	if err := run([]string{"-trace", "/nonexistent"}); err == nil {
		t.Error("missing trace should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestHistoryWarmStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.json")
	// First run saves history...
	if err := run(append(tinyArgs("coda"), "-history-out", path)); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(path); err != nil || info.Size() == 0 {
		t.Fatalf("history file: %v", err)
	}
	// ...the second run warm-starts from it.
	if err := run(append(tinyArgs("coda"), "-history-in", path)); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryFlagsRequireCODA(t *testing.T) {
	if err := run(append(tinyArgs("fifo"), "-history-in", "x")); err == nil {
		t.Error("-history-in with fifo should fail")
	}
	if err := run(append(tinyArgs("fifo"), "-history-out", "x")); err == nil {
		t.Error("-history-out with fifo should fail")
	}
	if err := run(append(tinyArgs("coda"), "-history-in", "/nonexistent")); err == nil {
		t.Error("missing history file should fail")
	}
}
