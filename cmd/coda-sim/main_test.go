package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

func tinyArgs(sched string) []string {
	return []string{"-sched", sched, "-days", "0.05", "-cpu-jobs", "30", "-gpu-jobs", "10", "-nodes", "4"}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, s := range []string{"fifo", "drf", "coda"} {
		if err := run(tinyArgs(s)); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}

func TestRunNoEliminatorAndSeries(t *testing.T) {
	args := append(tinyArgs("coda"), "-no-eliminator", "-series")
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 20, 8
	cfg.Duration = cfg.Duration / 100
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, jobs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sched", "coda", "-trace", path, "-nodes", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestScalePresets(t *testing.T) {
	// The preset must parse and stream; tiny is the only one cheap enough to
	// actually run here.
	if err := run([]string{"-sched", "fifo", "-scale", "tiny"}); err != nil {
		t.Fatalf("-scale tiny: %v", err)
	}
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Error("unknown scale preset should fail")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-sched", "quantum"}); err == nil {
		t.Error("unknown scheduler should fail")
	}
	if err := run([]string{"-days", "0"}); err == nil {
		t.Error("zero duration should fail")
	}
	if err := run([]string{"-trace", "/nonexistent"}); err == nil {
		t.Error("missing trace should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestHistoryWarmStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.json")
	// First run saves history...
	if err := run(append(tinyArgs("coda"), "-history-out", path)); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(path); err != nil || info.Size() == 0 {
		t.Fatalf("history file: %v", err)
	}
	// ...the second run warm-starts from it.
	if err := run(append(tinyArgs("coda"), "-history-in", path)); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryFlagsRequireCODA(t *testing.T) {
	if err := run(append(tinyArgs("fifo"), "-history-in", "x")); err == nil {
		t.Error("-history-in with fifo should fail")
	}
	if err := run(append(tinyArgs("fifo"), "-history-out", "x")); err == nil {
		t.Error("-history-out with fifo should fail")
	}
	if err := run(append(tinyArgs("coda"), "-history-in", "/nonexistent")); err == nil {
		t.Error("missing history file should fail")
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// chaosArgs is a small run with rates high enough that the compiled
// schedule deterministically contains crashes and membw dropouts.
func chaosArgs() []string {
	return append(tinyArgs("coda"),
		"-invariants",
		"-fault-seed", "9",
		"-crashes-per-day", "200",
		"-crash-downtime", "15m",
		"-membw-drops-per-day", "200",
		"-membw-drop-duration", "10m",
		"-stragglers-per-day", "20",
		"-job-fail-prob", "0.2",
		"-max-retries", "2",
	)
}

// TestRunChaosWithInvariants is the CLI-level acceptance check: a run with a
// non-empty fault plan and the invariant checker hot completes without a
// violation and reports its fault activity.
func TestRunChaosWithInvariants(t *testing.T) {
	out, err := captureStdout(t, func() error { return run(chaosArgs()) })
	if err != nil {
		t.Fatalf("chaotic run failed (invariant violation?): %v", err)
	}
	if !strings.Contains(out, "faults") || !strings.Contains(out, "fault impact") {
		t.Fatalf("summary missing fault lines:\n%s", out)
	}
	for _, absent := range []string{"0 crashes,", " 0 membw dropouts"} {
		if strings.Contains(out, absent) {
			t.Errorf("plan was supposed to inject crashes and dropouts; got:\n%s", out)
		}
	}
}

// TestRunChaosIsReproducible: the same CLI invocation prints byte-identical
// output both times (modulo the wall-clock timing line).
func TestRunChaosIsReproducible(t *testing.T) {
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "virtual time") {
				continue // contains wall-clock elapsed time
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	a, err := captureStdout(t, func() error { return run(chaosArgs()) })
	if err != nil {
		t.Fatal(err)
	}
	b, err := captureStdout(t, func() error { return run(chaosArgs()) })
	if err != nil {
		t.Fatal(err)
	}
	if strip(a) != strip(b) {
		t.Errorf("same-seed CLI runs diverged:\n--- A ---\n%s\n--- B ---\n%s", a, b)
	}
}

// stripVolatile drops the wall-clock line and the resume banner, leaving the
// deterministic summary for byte comparison.
func stripVolatile(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "virtual time") || strings.HasPrefix(line, "resumed from") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// killArgs is a small chaotic run whose compiled schedule deterministically
// contains controller kills.
func killArgs() []string {
	return append(tinyArgs("coda"),
		"-invariants",
		"-fault-seed", "6",
		"-job-fail-prob", "0.1",
		"-controller-kills-per-day", "100",
	)
}

// TestCheckpointResumeCLI is the end-to-end crash-recovery drill: a run that
// dies on injected controller kills is restarted from its latest checkpoint
// until it completes, and the final summary must match an uninterrupted
// baseline byte for byte.
func TestCheckpointResumeCLI(t *testing.T) {
	dir := t.TempDir()

	want, err := captureStdout(t, func() error { return run(killArgs()) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(want, "controller kills") || strings.Contains(want, " 0 controller kills") {
		t.Fatalf("baseline plan injected no controller kills:\n%s", want)
	}

	ckptFlags := []string{"-checkpoint-every", "10m", "-checkpoint-dir", dir, "-exit-on-controller-kill"}
	deaths := 0
	var got string
	for {
		if deaths > 30 {
			t.Fatal("CLI crash-recovery did not converge")
		}
		args := append(killArgs(), ckptFlags...)
		args = append(args, "-survived-kills", strconv.Itoa(deaths))
		if _, statErr := os.Stat(dir); statErr == nil {
			if entries, _ := os.ReadDir(dir); len(entries) > 0 {
				args = append(args, "-resume", dir)
			}
		}
		out, err := captureStdout(t, func() error { return run(args) })
		if errors.Is(err, sim.ErrControllerKilled) {
			deaths++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got = out
		break
	}
	if deaths == 0 {
		t.Fatal("controller never died; the drill tested nothing")
	}
	if stripVolatile(got) != stripVolatile(want) {
		t.Errorf("recovered run (after %d deaths) diverged from baseline:\n--- baseline ---\n%s\n--- recovered ---\n%s",
			deaths, want, got)
	}
}

// multiRunArgs is a small chaotic multi-run invocation: the fault plan makes
// each seed's schedule genuinely different, so identical output across
// -parallel settings is not vacuous.
func multiRunArgs(parallel int) []string {
	return append(tinyArgs("coda"),
		"-runs", "3",
		"-parallel", strconv.Itoa(parallel),
		"-fault-seed", "9",
		"-job-fail-prob", "0.2",
		"-crashes-per-day", "50",
		"-invariants",
	)
}

// TestMultiRunParallelMatchesSequential is the CLI face of the runner's
// determinism guarantee: -parallel only changes wall-clock interleaving,
// never a byte of the per-run or merged report.
func TestMultiRunParallelMatchesSequential(t *testing.T) {
	seq, err := captureStdout(t, func() error { return run(multiRunArgs(1)) })
	if err != nil {
		t.Fatal(err)
	}
	par, err := captureStdout(t, func() error { return run(multiRunArgs(4)) })
	if err != nil {
		t.Fatal(err)
	}
	if stripVolatile(seq) != stripVolatile(par) {
		t.Errorf("-parallel changed the report:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	// The seeds must actually diverge, or the comparison proves nothing.
	lines := strings.Split(seq, "\n")
	var runLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "run-") {
			runLines = append(runLines, l)
		}
	}
	if len(runLines) != 3 {
		t.Fatalf("expected 3 per-run lines, got %d:\n%s", len(runLines), seq)
	}
	distinct := false
	for _, l := range runLines[1:] {
		if metricFields(l) != metricFields(runLines[0]) {
			distinct = true
		}
	}
	if !distinct {
		t.Error("all seeds produced identical metrics; the multi-run sweep is not seed-sensitive")
	}
	if !strings.Contains(seq, "=== merged across 3 runs ===") {
		t.Errorf("missing merged section:\n%s", seq)
	}
}

// metricFields drops a per-run line's first three columns (run name, seed,
// fault seed) so only the metrics are compared across runs.
func metricFields(line string) string {
	f := strings.Fields(line)
	if len(f) <= 3 {
		return ""
	}
	return strings.Join(f[3:], " ")
}

// TestMultiRunCheckpointSubdirs: with -runs > 1 every run checkpoints into
// its own run-<i>/ subdirectory, and a single run can later resume from one.
func TestMultiRunCheckpointSubdirs(t *testing.T) {
	dir := t.TempDir()
	args := append(tinyArgs("coda"), "-runs", "2", "-parallel", "2",
		"-checkpoint-every", "10m", "-checkpoint-dir", dir)
	if _, err := captureStdout(t, func() error { return run(args) }); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"run-0", "run-1"} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		ckpts := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".ckpt") {
				ckpts++
			}
		}
		if ckpts == 0 {
			t.Errorf("%s holds no checkpoints", sub)
		}
	}
	// run-0 used the base seeds, so a plain single run can resume from it.
	resume := append(tinyArgs("coda"), "-resume", filepath.Join(dir, "run-0"))
	if _, err := captureStdout(t, func() error { return run(resume) }); err != nil {
		t.Errorf("resuming run-0 from its subdirectory: %v", err)
	}
}

// TestMultiRunFlagValidation: the multi-run path rejects everything tied to
// a single resumable process.
func TestMultiRunFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-runs", "0"},
		{"-runs", "-2"},
		{"-runs", "2", "-resume", "somewhere"},
		{"-runs", "2", "-history-in", "x"},
		{"-runs", "2", "-history-out", "x"},
		{"-runs", "2", "-exit-on-controller-kill"},
		{"-runs", "2", "-survived-kills", "1"},
		{"-runs", "2", "-series"},
	}
	for _, extra := range bad {
		if err := run(append(tinyArgs("coda"), extra...)); err == nil {
			t.Errorf("%v should fail", extra)
		}
	}
}

// TestResumeRejectsCorruptCheckpoints: damaged checkpoint files must fail
// loudly before any simulation starts.
func TestResumeRejectsCorruptCheckpoints(t *testing.T) {
	dir := t.TempDir()
	// Produce at least one real checkpoint.
	args := append(tinyArgs("coda"), "-checkpoint-every", "10m", "-checkpoint-dir", dir)
	if _, err := captureStdout(t, func() error { return run(args) }); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoints written: %v", err)
	}
	real := filepath.Join(dir, entries[len(entries)-1].Name())
	data, err := os.ReadFile(real)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := filepath.Join(t.TempDir(), "corrupt.ckpt")
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x01
	if err := os.WriteFile(corrupt, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(t.TempDir(), "truncated.ckpt")
	if err := os.WriteFile(truncated, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(t.TempDir(), "garbage.ckpt")
	if err := os.WriteFile(garbage, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	for name, path := range map[string]string{
		"corrupt": corrupt, "truncated": truncated, "garbage": garbage,
		"missing": filepath.Join(dir, "checkpoint-99999999999999999999.ckpt"),
	} {
		if err := run(append(tinyArgs("coda"), "-resume", path)); err == nil {
			t.Errorf("%s checkpoint should fail to resume", name)
		}
	}
	// An empty directory has no checkpoint to resume from.
	if err := run(append(tinyArgs("coda"), "-resume", t.TempDir())); err == nil {
		t.Error("resuming from an empty directory should fail")
	}
}

// TestCheckpointFlagValidation covers the flag plumbing errors.
func TestCheckpointFlagValidation(t *testing.T) {
	if err := run(append(tinyArgs("coda"), "-checkpoint-every", "10m")); err == nil {
		t.Error("-checkpoint-every without -checkpoint-dir should fail")
	}
	dir := t.TempDir()
	hist := filepath.Join(dir, "history.json")
	if err := run(append(tinyArgs("coda"), "-history-out", hist, "-checkpoint-every", "10m", "-checkpoint-dir", dir)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) < 2 {
		t.Fatalf("expected checkpoints next to history: %v, %d entries", err, len(entries))
	}
	latest := ""
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			latest = filepath.Join(dir, e.Name())
		}
	}
	if latest == "" {
		t.Fatal("no checkpoint file written")
	}
	if err := run(append(tinyArgs("coda"), "-resume", latest, "-history-in", hist)); err == nil {
		t.Error("-history-in with -resume should fail")
	}
	if err := run(append(tinyArgs("fifo"), "-resume", latest)); err == nil {
		t.Error("resuming a coda checkpoint under fifo should fail")
	}
}
