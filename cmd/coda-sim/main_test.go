package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/coda-repro/coda/internal/trace"
)

func tinyArgs(sched string) []string {
	return []string{"-sched", sched, "-days", "0.05", "-cpu-jobs", "30", "-gpu-jobs", "10", "-nodes", "4"}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, s := range []string{"fifo", "drf", "coda"} {
		if err := run(tinyArgs(s)); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}

func TestRunNoEliminatorAndSeries(t *testing.T) {
	args := append(tinyArgs("coda"), "-no-eliminator", "-series")
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 20, 8
	cfg.Duration = cfg.Duration / 100
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, jobs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sched", "coda", "-trace", path, "-nodes", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-sched", "quantum"}); err == nil {
		t.Error("unknown scheduler should fail")
	}
	if err := run([]string{"-days", "0"}); err == nil {
		t.Error("zero duration should fail")
	}
	if err := run([]string{"-trace", "/nonexistent"}); err == nil {
		t.Error("missing trace should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestHistoryWarmStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.json")
	// First run saves history...
	if err := run(append(tinyArgs("coda"), "-history-out", path)); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(path); err != nil || info.Size() == 0 {
		t.Fatalf("history file: %v", err)
	}
	// ...the second run warm-starts from it.
	if err := run(append(tinyArgs("coda"), "-history-in", path)); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryFlagsRequireCODA(t *testing.T) {
	if err := run(append(tinyArgs("fifo"), "-history-in", "x")); err == nil {
		t.Error("-history-in with fifo should fail")
	}
	if err := run(append(tinyArgs("fifo"), "-history-out", "x")); err == nil {
		t.Error("-history-out with fifo should fail")
	}
	if err := run(append(tinyArgs("coda"), "-history-in", "/nonexistent")); err == nil {
		t.Error("missing history file should fail")
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// chaosArgs is a small run with rates high enough that the compiled
// schedule deterministically contains crashes and membw dropouts.
func chaosArgs() []string {
	return append(tinyArgs("coda"),
		"-invariants",
		"-fault-seed", "9",
		"-crashes-per-day", "200",
		"-crash-downtime", "15m",
		"-membw-drops-per-day", "200",
		"-membw-drop-duration", "10m",
		"-stragglers-per-day", "20",
		"-job-fail-prob", "0.2",
		"-max-retries", "2",
	)
}

// TestRunChaosWithInvariants is the CLI-level acceptance check: a run with a
// non-empty fault plan and the invariant checker hot completes without a
// violation and reports its fault activity.
func TestRunChaosWithInvariants(t *testing.T) {
	out, err := captureStdout(t, func() error { return run(chaosArgs()) })
	if err != nil {
		t.Fatalf("chaotic run failed (invariant violation?): %v", err)
	}
	if !strings.Contains(out, "faults") || !strings.Contains(out, "fault impact") {
		t.Fatalf("summary missing fault lines:\n%s", out)
	}
	for _, absent := range []string{"0 crashes,", " 0 membw dropouts"} {
		if strings.Contains(out, absent) {
			t.Errorf("plan was supposed to inject crashes and dropouts; got:\n%s", out)
		}
	}
}

// TestRunChaosIsReproducible: the same CLI invocation prints byte-identical
// output both times (modulo the wall-clock timing line).
func TestRunChaosIsReproducible(t *testing.T) {
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "virtual time") {
				continue // contains wall-clock elapsed time
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	a, err := captureStdout(t, func() error { return run(chaosArgs()) })
	if err != nil {
		t.Fatal(err)
	}
	b, err := captureStdout(t, func() error { return run(chaosArgs()) })
	if err != nil {
		t.Fatal(err)
	}
	if strip(a) != strip(b) {
		t.Errorf("same-seed CLI runs diverged:\n--- A ---\n%s\n--- B ---\n%s", a, b)
	}
}
