// Command coda-sim replays a synthetic cluster trace under one scheduling
// policy (fifo, drf, static or coda) and prints the headline metrics the paper
// reports: GPU/CPU active and utilization rates, fragmentation, queueing
// percentiles and completion counts.
//
// Usage:
//
//	coda-sim -sched coda -days 3 -cpu-jobs 7500 -gpu-jobs 2500 -nodes 80
//	coda-sim -sched coda -scale warehouse     # preset: 5,000 nodes, 1M jobs, streamed
//	coda-sim -sched fifo -trace trace.jsonl
//	coda-sim -sched coda -runs 5 -parallel 4   # 5-seed sweep on 4 workers
//	coda-sim -sched coda -checkpoint-every 1h -checkpoint-dir ckpts
//	coda-sim -sched coda -checkpoint-every 1h -checkpoint-dir ckpts -resume ckpts
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/checkpoint"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/experiments"
	"github.com/coda-repro/coda/internal/history"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/runner"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coda-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coda-sim", flag.ContinueOnError)
	schedName := fs.String("sched", "coda", "scheduling policy: fifo, drf, static or coda")
	scaleName := fs.String("scale", "", "scale preset overriding -days/-cpu-jobs/-gpu-jobs/-nodes: tiny, small, full or warehouse")
	days := fs.Float64("days", 3, "trace duration in days")
	cpuJobs := fs.Int("cpu-jobs", 7500, "CPU job count")
	gpuJobs := fs.Int("gpu-jobs", 2500, "GPU (DNN training) job count")
	nodes := fs.Int("nodes", 80, "cluster node count")
	seed := fs.Int64("seed", 1, "random seed")
	tracePath := fs.String("trace", "", "replay a JSON-lines trace file instead of generating one")
	noEliminator := fs.Bool("no-eliminator", false, "disable CODA's contention eliminator (§VI-E ablation)")
	series := fs.Bool("series", false, "also print the hourly utilization time series as CSV")
	historyIn := fs.String("history-in", "", "warm-start CODA from a saved history log")
	historyOut := fs.String("history-out", "", "save CODA's history log after the run")
	invariants := fs.Bool("invariants", false, "validate simulator invariants after every event (slow; aborts on first violation)")
	invariantsEvery := fs.Int("invariants-every", 0, "with -invariants: run the O(Δ) delta check per event and the full audit every N events (0 = full audit every event)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file when the run finishes")
	pprofHTTP := fs.String("pprof-http", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the run executes")
	faultSeed := fs.Int64("fault-seed", 0, "fault-schedule seed (defaults to -seed; independent of the noise stream)")
	crashRate := fs.Float64("crashes-per-day", 0, "expected node crashes per simulated day across the cluster")
	crashDowntime := fs.Duration("crash-downtime", chaos.DefaultCrashDowntime, "how long a crashed node stays down")
	membwRate := fs.Float64("membw-drops-per-day", 0, "expected membw-telemetry dropouts per simulated day")
	membwDuration := fs.Duration("membw-drop-duration", chaos.DefaultMembwDropDuration, "how long each telemetry dropout lasts")
	stragglerRate := fs.Float64("stragglers-per-day", 0, "expected straggler slowdown windows per simulated day")
	stragglerFactor := fs.Float64("straggler-factor", chaos.DefaultStragglerFactor, "straggler speed multiplier in (0,1)")
	stragglerDuration := fs.Duration("straggler-duration", chaos.DefaultStragglerDuration, "how long each straggler window lasts")
	jobFailProb := fs.Float64("job-fail-prob", 0, "probability each job suffers one injected mid-run failure")
	maxRetries := fs.Int("max-retries", 0, "per-job retry budget after fault kills (0 = default)")
	ckptEvery := fs.Duration("checkpoint-every", 0, "take a crash-consistent checkpoint every this much sim time (0 = off; needs -checkpoint-dir)")
	ckptDir := fs.String("checkpoint-dir", "", "directory for checkpoint files")
	resumePath := fs.String("resume", "", "resume from a checkpoint file (or the latest checkpoint in a directory); pass the same flags as the original run")
	killRate := fs.Float64("controller-kills-per-day", 0, "expected scheduler-process kills per simulated day")
	exitOnKill := fs.Bool("exit-on-controller-kill", false, "die on an injected controller kill instead of only counting it (restart with -resume)")
	survivedKills := fs.Int("survived-kills", 0, "controller kills already survived by earlier processes of this run (advanced; -resume sets this automatically)")
	maxJobStats := fs.Int("max-job-stats", -1, "per-job history cap (-1 = auto: cap at 10000 and sketch CDFs above 200000 jobs; 0 = unbounded)")
	compactCDFs := fs.Bool("compact-cdfs", false, "bound queue-time CDFs with a log-bucketed sketch instead of exact samples")
	runs := fs.Int("runs", 1, "replay the trace under this many consecutive seeds and print per-run plus merged metrics")
	parallel := fs.Int("parallel", 0, "worker-pool width for -runs > 1 (0 = GOMAXPROCS)")
	dumpPath := fs.String("dump", "", "write the run's bit-exact result dump (sim.DumpResult) to this file; two engines agree iff the dumps are byte-identical")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, perr := os.Create(*cpuProfile)
		if perr != nil {
			return perr
		}
		defer f.Close()
		if perr := pprof.StartCPUProfile(f); perr != nil {
			return perr
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeMemProfile(*memProfile)
	}
	if *pprofHTTP != "" {
		addr := *pprofHTTP
		go func() {
			if herr := http.ListenAndServe(addr, nil); herr != nil {
				fmt.Fprintln(os.Stderr, "coda-sim: pprof-http:", herr)
			}
		}()
	}

	if *runs < 1 {
		return fmt.Errorf("-runs must be at least 1, got %d", *runs)
	}
	if *runs > 1 {
		// The multi-run path executes runs concurrently; everything tied to
		// one resumable single process is a different workflow.
		switch {
		case *resumePath != "":
			return fmt.Errorf("-runs > 1 conflicts with -resume (resume one run at a time from its run-<i> checkpoint directory)")
		case *historyIn != "" || *historyOut != "":
			return fmt.Errorf("-runs > 1 conflicts with -history-in/-history-out")
		case *exitOnKill:
			return fmt.Errorf("-runs > 1 conflicts with -exit-on-controller-kill")
		case *survivedKills > 0:
			return fmt.Errorf("-runs > 1 conflicts with -survived-kills")
		case *series:
			return fmt.Errorf("-series prints one run's time series; it requires -runs=1")
		case *dumpPath != "":
			return fmt.Errorf("-dump writes one run's result; it requires -runs=1")
		}
	}

	sc := experiments.Scale{Seed: *seed, Days: *days, CPUJobs: *cpuJobs, GPUJobs: *gpuJobs, Nodes: *nodes}
	if *scaleName != "" {
		switch *scaleName {
		case "tiny":
			sc = experiments.TinyScale()
		case "small":
			sc = experiments.SmallScale()
		case "full":
			sc = experiments.FullScale()
		case "warehouse":
			sc = experiments.WarehouseScale()
		default:
			return fmt.Errorf("unknown scale %q (want tiny, small, full or warehouse)", *scaleName)
		}
		sc.Seed = *seed
	}
	if err := sc.Validate(); err != nil {
		return err
	}

	// Intake: a trace file replays as a materialized slice; a generated
	// trace streams from a seeded source, so even the warehouse preset never
	// holds more than the in-flight jobs in memory.
	var jobs []*job.Job
	var traceCfg *trace.Config
	if *tracePath != "" {
		f, ferr := os.Open(*tracePath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		var rerr error
		if jobs, rerr = trace.Read(f); rerr != nil {
			return rerr
		}
	} else {
		cfg := trace.DefaultConfig()
		cfg.Seed = sc.Seed
		cfg.Duration = sc.Duration()
		cfg.CPUJobs = sc.CPUJobs
		cfg.GPUJobs = sc.GPUJobs
		if cerr := cfg.Validate(); cerr != nil {
			return cerr
		}
		traceCfg = &cfg
	}
	jobCount := len(jobs)
	if traceCfg != nil {
		jobCount = traceCfg.CPUJobs + traceCfg.GPUJobs
	}

	opts := sim.DefaultOptions()
	opts.Cluster.Nodes = sc.Nodes
	opts.Seed = sc.Seed + 1000
	opts.SampleInterval = 10 * time.Minute
	opts.MaxVirtualTime = sc.Duration() + 4*24*time.Hour
	opts.Invariants = *invariants
	opts.InvariantsEvery = *invariantsEvery
	opts.CompactCDFs = *compactCDFs
	switch {
	case *maxJobStats > 0:
		opts.MaxJobStats = *maxJobStats
	case *maxJobStats < 0 && jobCount > 200_000:
		// Auto-bound: an exact result is itself O(jobs) memory, which would
		// defeat the streaming intake at warehouse scale.
		opts.MaxJobStats = 10_000
		opts.CompactCDFs = true
		fmt.Fprintf(os.Stderr, "coda-sim: %d jobs: bounding per-job history to %d and sketching queue CDFs (override with -max-job-stats 0)\n",
			jobCount, opts.MaxJobStats)
	}

	if *faultSeed == 0 {
		*faultSeed = sc.Seed
	}
	opts.Faults = chaos.Plan{
		Seed:              *faultSeed,
		Horizon:           sc.Duration(),
		NodeCrashesPerDay: *crashRate,
		CrashDowntime:     *crashDowntime,
		MembwDropsPerDay:  *membwRate,
		MembwDropDuration: *membwDuration,
		StragglersPerDay:  *stragglerRate,
		StragglerFactor:   *stragglerFactor,
		StragglerDuration: *stragglerDuration,
		JobFailureProb:    *jobFailProb,
		MaxRetries:        *maxRetries,

		ControllerKillsPerDay: *killRate,
	}
	opts.ExitOnControllerKill = *exitOnKill

	if *ckptEvery > 0 {
		if *ckptDir == "" {
			return fmt.Errorf("-checkpoint-every needs -checkpoint-dir")
		}
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
		dir := *ckptDir
		opts.CheckpointEvery = *ckptEvery
		if *runs == 1 {
			opts.CheckpointSink = func(ck *sim.Checkpoint) error {
				return checkpoint.WriteFile(filepath.Join(dir, checkpoint.FileName(ck.Now)), ck)
			}
		}
		// With -runs > 1, runMany gives each run its own sink writing into a
		// run-<i>/ subdirectory so the checkpoint streams never interleave.
	}

	newPolicy, err := policyFactory(*schedName, opts, *noEliminator)
	if err != nil {
		return err
	}

	if *runs > 1 {
		return runMany(*runs, *parallel, opts, jobs, traceCfg, newPolicy, *ckptDir)
	}

	policy, err := newPolicy()
	if err != nil {
		return err
	}
	coda, _ := policy.(*core.Scheduler)
	if *historyIn != "" {
		if coda == nil {
			return fmt.Errorf("-history-in only applies to the coda scheduler")
		}
		if *resumePath != "" {
			return fmt.Errorf("-history-in conflicts with -resume (the checkpoint carries the history log)")
		}
		f, ferr := os.Open(*historyIn)
		if ferr != nil {
			return ferr
		}
		log, lerr := history.Load(f)
		f.Close()
		if lerr != nil {
			return lerr
		}
		coda.SetHistory(log)
	}

	start := time.Now()
	var simulator *sim.Simulator
	if *resumePath != "" {
		path := *resumePath
		if st, serr := os.Stat(path); serr == nil && st.IsDir() {
			if path, err = checkpoint.Latest(path); err != nil {
				return err
			}
		}
		var ck sim.Checkpoint
		if err := checkpoint.ReadFile(path, &ck); err != nil {
			return err
		}
		if simulator, err = sim.Resume(&ck, policy, opts.CheckpointSink); err != nil {
			return err
		}
		fmt.Printf("resumed from    %s (t=%v)\n", path, ck.Now.Truncate(time.Second))
	} else if traceCfg != nil {
		src, serr := trace.NewSource(*traceCfg)
		if serr != nil {
			return serr
		}
		if simulator, err = sim.NewStreaming(opts, policy, src); err != nil {
			return err
		}
	} else if simulator, err = sim.New(opts, policy, jobs); err != nil {
		return err
	}
	if *survivedKills > 0 {
		simulator.SetSurvivedKills(*survivedKills)
	}
	res, err := simulator.Run()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	printSummary(res, jobCount, elapsed)
	if *series {
		printSeries(res)
	}
	if *dumpPath != "" {
		if err := os.WriteFile(*dumpPath, []byte(sim.DumpResult(res)), 0o644); err != nil {
			return err
		}
	}
	if *historyOut != "" {
		if coda == nil {
			return fmt.Errorf("-history-out only applies to the coda scheduler")
		}
		if err := coda.History().SaveFile(*historyOut); err != nil {
			return err
		}
	}
	return nil
}

// writeMemProfile snapshots the heap after a final GC. Runs in a defer, so
// failures are reported rather than returned.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coda-sim: memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "coda-sim: memprofile:", err)
	}
}

// policyFactory returns a factory that builds a fresh scheduler per call.
// Multi-run matrices need a factory rather than an instance: schedulers are
// stateful, so concurrent runs must never share one.
func policyFactory(name string, opts sim.Options, noEliminator bool) (func() (sched.Scheduler, error), error) {
	cc := opts.Cluster
	switch name {
	case "fifo":
		return func() (sched.Scheduler, error) { return sched.NewFIFO(), nil }, nil
	case "drf":
		return func() (sched.Scheduler, error) {
			return sched.NewDRF(cc.Nodes*cc.CoresPerNode, cc.Nodes*cc.GPUsPerNode)
		}, nil
	case "static":
		return func() (sched.Scheduler, error) {
			return sched.NewStatic(cc.CoresPerNode, cc.GPUsPerNode), nil
		}, nil
	case "coda":
		return func() (sched.Scheduler, error) {
			cfg := core.DefaultConfig()
			cfg.DisableEliminator = noEliminator
			return core.New(cfg, cc.Nodes, cc.CoresPerNode, cc.GPUsPerNode)
		}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q (want fifo, drf, static or coda)", name)
	}
}

// runMany replays the trace under runs consecutive seeds (noise and fault
// streams both advance) on a bounded worker pool, then prints one line per
// run and the merged aggregate. Results come back in matrix order, so the
// output is deterministic regardless of -parallel. A generated trace
// (traceCfg non-nil) is streamed: every run builds its own source from the
// shared config, so the sweep never materializes the jobs.
func runMany(runs, parallel int, opts sim.Options, jobs []*job.Job, traceCfg *trace.Config, newPolicy func() (sched.Scheduler, error), ckptDir string) error {
	var m runner.Matrix
	for i := 0; i < runs; i++ {
		o := opts.Clone()
		o.Seed = opts.Seed + int64(i)
		o.Faults.Seed = opts.Faults.Seed + int64(i)
		if o.CheckpointEvery > 0 {
			sub := filepath.Join(ckptDir, fmt.Sprintf("run-%d", i))
			if err := os.MkdirAll(sub, 0o755); err != nil {
				return err
			}
			o.CheckpointSink = func(ck *sim.Checkpoint) error {
				return checkpoint.WriteFile(filepath.Join(sub, checkpoint.FileName(ck.Now)), ck)
			}
		}
		m.Add(sim.RunSpec{
			Name:         fmt.Sprintf("run-%d", i),
			Options:      o,
			Jobs:         jobs,
			Trace:        traceCfg,
			NewScheduler: newPolicy,
		})
	}

	start := time.Now()
	results, err := runner.Run(context.Background(), &m, runner.Options{Parallel: parallel})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("%-8s %-10s %-12s %-10s %-10s %-10s %s\n",
		"run", "seed", "fault-seed", "gpu-util", "gpu-done", "cpu-done", "virtual")
	for i, res := range results {
		sm := res.Summarize()
		fmt.Printf("%-8s %-10d %-12d %-10s %-10d %-10d %v\n",
			m.Names()[i], opts.Seed+int64(i), opts.Faults.Seed+int64(i),
			fmt.Sprintf("%.1f%%", sm.GPUUtil*100), sm.GPUJobsDone, sm.CPUJobsDone,
			res.EndTime.Truncate(time.Second))
	}

	merged, err := sim.MergeResults(results)
	if err != nil {
		return err
	}
	jobsPerRun := len(jobs)
	if traceCfg != nil {
		jobsPerRun = traceCfg.CPUJobs + traceCfg.GPUJobs
	}
	printMerged(merged, jobsPerRun, elapsed)
	return nil
}

func printMerged(m *sim.Merged, jobsPerRun int, elapsed time.Duration) {
	fmt.Printf("\n=== merged across %d runs ===\n", m.Runs)
	fmt.Printf("scheduler        %s\n", m.Scheduler)
	fmt.Printf("jobs per run     %d (%d gpu done, %d cpu done across runs)\n", jobsPerRun, m.GPUJobsDone, m.CPUJobsDone)
	fmt.Printf("virtual time     mean %v (wall %v)\n", m.MeanMakeSpan.Truncate(time.Second), elapsed.Truncate(time.Millisecond))
	fmt.Printf("gpu active rate  %.1f%%\n", m.GPUActiveRate*100)
	fmt.Printf("gpu utilization  %.1f%%\n", m.GPUUtil*100)
	fmt.Printf("cpu active rate  %.1f%%\n", m.CPUActiveRate*100)
	fmt.Printf("cpu utilization  %.1f%%\n", m.CPUUtil*100)
	fmt.Printf("fragmentation    %.2f%%\n", m.FragRate*100)
	fmt.Printf("preemptions      %d, throttles %d\n", m.Preemptions, m.Throttles)
	if f := m.Faults; f.Any() {
		fmt.Printf("faults           %d crashes, %d recoveries, %d membw dropouts, %d stragglers\n",
			f.NodeCrashes, f.NodeRecoveries, f.MembwDropouts, f.Stragglers)
		fmt.Printf("fault impact     %d kills (%d injected), %d requeues, %d terminal, %v goodput lost, %d degraded samples, %d controller kills\n",
			f.JobKills, f.JobFailures, f.Requeues, f.TerminalFailures,
			f.GoodputLost.Truncate(time.Second), f.DegradedSamples, f.ControllerKills)
	}
	fmt.Printf("gpu queue        p50 %v  p99 %v  >10min %.1f%%  >1h %.1f%%  =0 %.1f%% (pooled)\n",
		m.GPUQueue.Percentile(50).Truncate(time.Second),
		m.GPUQueue.Percentile(99).Truncate(time.Second),
		m.GPUQueue.FractionAbove(10*time.Minute)*100,
		m.GPUQueue.FractionAbove(time.Hour)*100,
		m.GPUQueue.FractionAtMost(0)*100)
	fmt.Printf("cpu queue        p50 %v  p99 %v  <=10s %.1f%%  <=3min %.1f%% (pooled)\n",
		m.CPUQueue.Percentile(50).Truncate(time.Second),
		m.CPUQueue.Percentile(99).Truncate(time.Second),
		m.CPUQueue.FractionAtMost(10*time.Second)*100,
		m.CPUQueue.FractionAtMost(3*time.Minute)*100)
}

func printSummary(res *sim.Result, totalJobs int, elapsed time.Duration) {
	sm := res.Summarize()
	fmt.Printf("scheduler        %s\n", sm.Scheduler)
	fmt.Printf("jobs             %d (%d gpu done, %d cpu done)\n", totalJobs, sm.GPUJobsDone, sm.CPUJobsDone)
	fmt.Printf("virtual time     %v (wall %v)\n", res.EndTime.Truncate(time.Second), elapsed.Truncate(time.Millisecond))
	fmt.Printf("gpu active rate  %.1f%%\n", sm.GPUActiveRate*100)
	fmt.Printf("gpu utilization  %.1f%%\n", sm.GPUUtil*100)
	fmt.Printf("cpu active rate  %.1f%%\n", sm.CPUActiveRate*100)
	fmt.Printf("cpu utilization  %.1f%%\n", sm.CPUUtil*100)
	fmt.Printf("fragmentation    %.2f%%\n", sm.FragRate*100)
	fmt.Printf("preemptions      %d, throttles %d\n", res.Preemptions, res.Throttles)

	if f := res.Faults; f.Any() {
		fmt.Printf("faults           %d crashes, %d recoveries, %d membw dropouts, %d stragglers\n",
			f.NodeCrashes, f.NodeRecoveries, f.MembwDropouts, f.Stragglers)
		fmt.Printf("fault impact     %d kills (%d injected), %d requeues, %d terminal, %v goodput lost, %d degraded samples, %d controller kills\n",
			f.JobKills, f.JobFailures, f.Requeues, f.TerminalFailures,
			f.GoodputLost.Truncate(time.Second), f.DegradedSamples, f.ControllerKills)
	}

	fmt.Printf("gpu queue        p50 %v  p99 %v  >10min %.1f%%  >1h %.1f%%  =0 %.1f%%\n",
		res.GPUQueue.Percentile(50).Truncate(time.Second),
		res.GPUQueue.Percentile(99).Truncate(time.Second),
		res.GPUQueue.FractionAbove(10*time.Minute)*100,
		res.GPUQueue.FractionAbove(time.Hour)*100,
		res.GPUQueue.FractionAtMost(0)*100)
	fmt.Printf("cpu queue        p50 %v  p99 %v  <=10s %.1f%%  <=3min %.1f%%\n",
		res.CPUQueue.Percentile(50).Truncate(time.Second),
		res.CPUQueue.Percentile(99).Truncate(time.Second),
		res.CPUQueue.FractionAtMost(10*time.Second)*100,
		res.CPUQueue.FractionAtMost(3*time.Minute)*100)
}

func printSeries(res *sim.Result) {
	hourly, err := res.GPUActive.Downsample(time.Hour)
	if err != nil {
		return
	}
	util, err := res.GPUUtilSeries.Downsample(time.Hour)
	if err != nil {
		return
	}
	fmt.Println("\nhour,gpu_active,gpu_util")
	for i := 0; i < hourly.Len() && i < util.Len(); i++ {
		tm, a := hourly.At(i)
		_, u := util.At(i)
		fmt.Printf("%d,%.4f,%.4f\n", int(tm/time.Hour), a, u)
	}
}
