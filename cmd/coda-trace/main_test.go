package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndStats(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.jsonl")
	if err := run([]string{"-gen", "-days", "1", "-cpu-jobs", "50", "-gpu-jobs", "20", "-o", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	info, err := os.Stat(out)
	if err != nil || info.Size() == 0 {
		t.Fatalf("trace file: %v, size %d", err, info.Size())
	}
	if err := run([]string{"-stats", out}); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestStreamMatchesMaterialized(t *testing.T) {
	// -gen -stream spools jobs through the incremental encoder; the file it
	// writes must be byte-identical to the materialized path's.
	dir := t.TempDir()
	slice := filepath.Join(dir, "slice.jsonl")
	streamed := filepath.Join(dir, "stream.jsonl")
	args := []string{"-gen", "-days", "1", "-cpu-jobs", "50", "-gpu-jobs", "20", "-seed", "7"}
	if err := run(append(args, "-o", slice)); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := run(append(args, "-stream", "-o", streamed)); err != nil {
		t.Fatalf("gen -stream: %v", err)
	}
	a, err := os.ReadFile(slice)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("streamed trace differs from materialized trace (%d vs %d bytes)", len(b), len(a))
	}
}

func TestCountOnly(t *testing.T) {
	if err := run([]string{"-count-only", "-days", "1", "-cpu-jobs", "50", "-gpu-jobs", "20"}); err != nil {
		t.Fatalf("count-only: %v", err)
	}
	if err := run([]string{"-count-only", "-days", "0"}); err == nil {
		t.Error("count-only with zero duration should fail")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no mode should fail")
	}
	if err := run([]string{"-stats", "/nonexistent/file"}); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"-gen", "-days", "0"}); err == nil {
		t.Error("zero duration should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}
