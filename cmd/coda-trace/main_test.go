package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndStats(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.jsonl")
	if err := run([]string{"-gen", "-days", "1", "-cpu-jobs", "50", "-gpu-jobs", "20", "-o", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	info, err := os.Stat(out)
	if err != nil || info.Size() == 0 {
		t.Fatalf("trace file: %v, size %d", err, info.Size())
	}
	if err := run([]string{"-stats", out}); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no mode should fail")
	}
	if err := run([]string{"-stats", "/nonexistent/file"}); err == nil {
		t.Error("missing file should fail")
	}
	if err := run([]string{"-gen", "-days", "0"}); err == nil {
		t.Error("zero duration should fail")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should fail")
	}
}
