// Command coda-trace generates synthetic cluster traces matching the
// paper's published workload statistics, writes them as JSON lines, and
// summarizes existing traces.
//
// Usage:
//
//	coda-trace -gen -days 30 -cpu-jobs 75000 -gpu-jobs 25000 -o trace.jsonl
//	coda-trace -stats trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coda-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coda-trace", flag.ContinueOnError)
	gen := fs.Bool("gen", false, "generate a trace")
	statsPath := fs.String("stats", "", "summarize an existing trace file")
	out := fs.String("o", "", "output path for -gen (default stdout)")
	days := fs.Float64("days", 30, "trace duration in days")
	cpuJobs := fs.Int("cpu-jobs", 75000, "CPU job count")
	gpuJobs := fs.Int("gpu-jobs", 25000, "GPU job count")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *gen:
		cfg := trace.DefaultConfig()
		cfg.Seed = *seed
		cfg.Duration = time.Duration(*days * 24 * float64(time.Hour))
		cfg.CPUJobs = *cpuJobs
		cfg.GPUJobs = *gpuJobs
		jobs, err := trace.Generate(cfg)
		if err != nil {
			return err
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := trace.Write(w, jobs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d jobs\n", len(jobs))
		printStats(os.Stderr, jobs, cfg.Duration)
		return nil
	case *statsPath != "":
		f, err := os.Open(*statsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jobs, err := trace.Read(f)
		if err != nil {
			return err
		}
		var last time.Duration
		for _, j := range jobs {
			if j.Arrival > last {
				last = j.Arrival
			}
		}
		printStats(os.Stdout, jobs, last)
		return nil
	default:
		return fmt.Errorf("pass -gen or -stats <file>")
	}
}

func printStats(w *os.File, jobs []*job.Job, duration time.Duration) {
	s := trace.Summarize(jobs)
	fmt.Fprintf(w, "jobs            %d (%d cpu, %d gpu, %d bandwidth hogs)\n",
		s.Jobs, s.CPUJobs, s.GPUJobs, s.HogJobs)
	fmt.Fprintf(w, "gpu job cores   1-2: %.1f%%  3-10: %.1f%%  >10: %.1f%%  (paper: 76.1 / 8.6 / 15.3)\n",
		s.ReqCores12*100, s.ReqCores310*100, s.ReqCoresOver10*100)
	fmt.Fprintf(w, "gpu runtimes    >1h: %.1f%%  >2h: %.1f%%  (paper: 68.5 / 39.6)\n",
		s.GPUJobsOverHour*100, s.GPUJobsOverTwoHours*100)
	fmt.Fprintf(w, "multi-node      %.1f%% of gpu jobs\n", s.MultiNodeFraction*100)

	// Hour-of-day histogram of CPU arrivals (Fig. 1's diurnal pattern).
	bins := trace.HourlyArrivals(jobs, duration, func(j *job.Job) bool { return !j.IsGPU() })
	var byHour [24]int
	for i, n := range bins {
		byHour[i%24] += n
	}
	max := 0
	for _, n := range byHour {
		if n > max {
			max = n
		}
	}
	fmt.Fprintln(w, "cpu arrivals by hour of day:")
	for h, n := range byHour {
		bar := ""
		if max > 0 {
			bar = fmt.Sprintf("%-*s", 40, stars(40*n/max))
		}
		fmt.Fprintf(w, "  %02d:00 %s %d\n", h, bar, n)
	}
}

func stars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
