// Command coda-trace generates synthetic cluster traces matching the
// paper's published workload statistics, writes them as JSON lines, and
// summarizes existing traces.
//
// Usage:
//
//	coda-trace -gen -days 30 -cpu-jobs 75000 -gpu-jobs 25000 -o trace.jsonl
//	coda-trace -gen -stream -days 30 -cpu-jobs 18750000 -gpu-jobs 6250000 -o month.jsonl
//	coda-trace -count-only -days 30 -cpu-jobs 18750000 -gpu-jobs 6250000
//	coda-trace -stats trace.jsonl
//
// -stream spools jobs to the output one at a time instead of materializing
// the slice, and -count-only summarizes the configured trace in a single
// streaming pass without writing anything — both stay flat in memory at any
// job count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coda-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coda-trace", flag.ContinueOnError)
	gen := fs.Bool("gen", false, "generate a trace")
	stream := fs.Bool("stream", false, "with -gen: stream jobs to the output instead of materializing the trace")
	countOnly := fs.Bool("count-only", false, "summarize the configured trace in one streaming pass, writing nothing")
	statsPath := fs.String("stats", "", "summarize an existing trace file")
	out := fs.String("o", "", "output path for -gen (default stdout)")
	days := fs.Float64("days", 30, "trace duration in days")
	cpuJobs := fs.Int("cpu-jobs", 75000, "CPU job count")
	gpuJobs := fs.Int("gpu-jobs", 25000, "GPU job count")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := trace.DefaultConfig()
	cfg.Seed = *seed
	cfg.Duration = time.Duration(*days * 24 * float64(time.Hour))
	cfg.CPUJobs = *cpuJobs
	cfg.GPUJobs = *gpuJobs

	switch {
	case *countOnly:
		src, err := trace.NewSource(cfg)
		if err != nil {
			return err
		}
		return drainStats(os.Stdout, src, nil)
	case *gen:
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if *stream {
			src, err := trace.NewSource(cfg)
			if err != nil {
				return err
			}
			enc := trace.NewEncoder(w)
			if err := drainStats(os.Stderr, src, enc.Encode); err != nil {
				return err
			}
			return enc.Flush()
		}
		jobs, err := trace.Generate(cfg)
		if err != nil {
			return err
		}
		if err := trace.Write(w, jobs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d jobs\n", len(jobs))
		printStats(os.Stderr, trace.Summarize(jobs),
			trace.HourlyArrivals(jobs, cfg.Duration, isCPU))
		return nil
	case *statsPath != "":
		f, err := os.Open(*statsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jobs, err := trace.Read(f)
		if err != nil {
			return err
		}
		var last time.Duration
		for _, j := range jobs {
			if j.Arrival > last {
				last = j.Arrival
			}
		}
		printStats(os.Stdout, trace.Summarize(jobs),
			trace.HourlyArrivals(jobs, last, isCPU))
		return nil
	default:
		return fmt.Errorf("pass -gen, -count-only or -stats <file>")
	}
}

func isCPU(j *job.Job) bool { return !j.IsGPU() }

// drainStats pulls every job out of src exactly once, feeding the summary
// and histogram accumulators (and, when sink is non-nil, the trace writer)
// from the same pass, then prints the summary. Memory stays flat in the job
// count: nothing downstream of the source holds more than one job.
func drainStats(w *os.File, src *trace.Source, sink func(*job.Job) error) error {
	var acc trace.StatsAccum
	bins := trace.NewHourlyBins(src.Config().Duration)
	n := 0
	for {
		j, err := src.Next()
		if err != nil {
			return err
		}
		if j == nil {
			break
		}
		acc.Observe(j)
		bins.Observe(j, isCPU)
		if sink != nil {
			if err := sink(j); err != nil {
				return err
			}
		}
		n++
	}
	if sink != nil {
		fmt.Fprintf(w, "wrote %d jobs (streamed)\n", n)
	}
	printStats(w, acc.Stats(), bins.Bins())
	return nil
}

func printStats(w *os.File, s trace.Stats, bins []int) {
	fmt.Fprintf(w, "jobs            %d (%d cpu, %d gpu, %d bandwidth hogs)\n",
		s.Jobs, s.CPUJobs, s.GPUJobs, s.HogJobs)
	fmt.Fprintf(w, "gpu job cores   1-2: %.1f%%  3-10: %.1f%%  >10: %.1f%%  (paper: 76.1 / 8.6 / 15.3)\n",
		s.ReqCores12*100, s.ReqCores310*100, s.ReqCoresOver10*100)
	fmt.Fprintf(w, "gpu runtimes    >1h: %.1f%%  >2h: %.1f%%  (paper: 68.5 / 39.6)\n",
		s.GPUJobsOverHour*100, s.GPUJobsOverTwoHours*100)
	fmt.Fprintf(w, "multi-node      %.1f%% of gpu jobs\n", s.MultiNodeFraction*100)

	// Hour-of-day histogram of CPU arrivals (Fig. 1's diurnal pattern).
	var byHour [24]int
	for i, n := range bins {
		byHour[i%24] += n
	}
	max := 0
	for _, n := range byHour {
		if n > max {
			max = n
		}
	}
	fmt.Fprintln(w, "cpu arrivals by hour of day:")
	for h, n := range byHour {
		bar := ""
		if max > 0 {
			bar = fmt.Sprintf("%-*s", 40, stars(40*n/max))
		}
		fmt.Fprintf(w, "  %02d:00 %s %d\n", h, bar, n)
	}
}

func stars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
