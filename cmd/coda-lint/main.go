// Command coda-lint runs the repository's determinism and concurrency
// static analysis over internal/... and cmd/... and reports violations as
// "file:line: rule: message" lines, exiting non-zero when any survive.
//
// Usage:
//
//	go run ./cmd/coda-lint ./...
//	go run ./cmd/coda-lint ./internal/core ./internal/sched
//
// The rule set and the //coda:ordered-ok escape hatch are documented in
// DESIGN.md ("Determinism invariants") and internal/lint.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/coda-repro/coda/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: coda-lint [./... | package-dirs]\n\n"+
				"Runs the CODA determinism rules (%s)\nover internal/... and cmd/... of the enclosing module.\n",
			strings.Join([]string{
				lint.RuleOrderedMap, lint.RuleWallClock, lint.RuleGoroutines,
				lint.RuleFloatEq, lint.RuleUncheckedErr,
			}, ", "))
	}
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	findings, err := lint.LintTrees(root, []string{"internal", "cmd"}, lint.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	findings, err = filterArgs(findings, flag.Args())
	if err != nil {
		fatal(err)
	}

	for _, f := range findings {
		rel, err := filepath.Rel(cwd, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = f.Pos.Filename
		}
		fmt.Printf("%s:%d: %s: %s\n", rel, f.Pos.Line, f.Rule, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "coda-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// filterArgs restricts findings to the requested package patterns. With no
// arguments or a bare "./..." everything stays. A pattern naming a
// directory that does not exist is an error — a typo'd path must not look
// like a clean run.
func filterArgs(findings []lint.Finding, args []string) ([]lint.Finding, error) {
	var prefixes []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return findings, nil
		}
		dir, _ := strings.CutSuffix(a, "/...") // a dir prefix covers both the exact and recursive case
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		if st, err := os.Stat(abs); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", a)
		}
		prefixes = append(prefixes, abs+string(filepath.Separator))
	}
	if len(prefixes) == 0 {
		return findings, nil
	}
	var out []lint.Finding
	for _, f := range findings {
		for _, p := range prefixes {
			if strings.HasPrefix(f.Pos.Filename, p) {
				out = append(out, f)
				break
			}
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coda-lint:", err)
	os.Exit(2)
}
