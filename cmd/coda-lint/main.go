// Command coda-lint runs the repository's determinism and concurrency
// static analysis over internal/... and cmd/... and reports violations as
// "file:line: rule: message" lines.
//
// Usage:
//
//	go run ./cmd/coda-lint ./...
//	go run ./cmd/coda-lint ./internal/core ./internal/sched
//
// Exit codes: 0 when the tree is clean, 1 when findings survive, 2 when the
// run itself fails (no module root, unreadable source, bad arguments).
//
// The rule set and the //coda:ordered-ok escape hatch are documented in
// DESIGN.md ("Determinism invariants") and internal/lint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/coda-repro/coda/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: coda-lint [./... | package-dirs]\n\n"+
				"Runs the CODA determinism rules (%s)\nover internal/... and cmd/... of the enclosing module.\n",
			strings.Join([]string{
				lint.RuleOrderedMap, lint.RuleWallClock, lint.RuleGoroutines,
				lint.RuleFloatEq, lint.RuleUncheckedErr,
			}, ", "))
	}
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "coda-lint:", err)
		os.Exit(2)
	}
	os.Exit(run(flag.Args(), cwd, os.Stdout, os.Stderr))
}

// run is the testable body of the command: lint the module enclosing dir,
// restricted to the argument patterns, writing findings to stdout and
// diagnostics to stderr. Returns the process exit code — 0 clean, 1 with
// findings, 2 on operational errors.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "coda-lint:", err)
		return 2
	}
	findings, err := lint.LintTrees(root, []string{"internal", "cmd"}, lint.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, "coda-lint:", err)
		return 2
	}
	findings, err = filterArgs(findings, args, dir)
	if err != nil {
		fmt.Fprintln(stderr, "coda-lint:", err)
		return 2
	}

	for _, f := range findings {
		rel, err := filepath.Rel(dir, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = f.Pos.Filename
		}
		fmt.Fprintf(stdout, "%s:%d: %s: %s\n", rel, f.Pos.Line, f.Rule, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "coda-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// filterArgs restricts findings to the requested package patterns, resolved
// relative to dir. With no arguments or a bare "./..." everything stays. A
// pattern naming a directory that does not exist is an error — a typo'd
// path must not look like a clean run.
func filterArgs(findings []lint.Finding, args []string, dir string) ([]lint.Finding, error) {
	var prefixes []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return findings, nil
		}
		pat, _ := strings.CutSuffix(a, "/...") // a dir prefix covers both the exact and recursive case
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(dir, pat)
		}
		if st, err := os.Stat(abs); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", a)
		}
		prefixes = append(prefixes, abs+string(filepath.Separator))
	}
	if len(prefixes) == 0 {
		return findings, nil
	}
	var out []lint.Finding
	for _, f := range findings {
		for _, p := range prefixes {
			if strings.HasPrefix(f.Pos.Filename, p) {
				out = append(out, f)
				break
			}
		}
	}
	return out, nil
}
