package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLint invokes the command body and captures its streams.
func runLint(t *testing.T, args []string, dir string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, dir, false, &out, &errw)
	return code, out.String(), errw.String()
}

// runLintJSON invokes the command body in -json mode.
func runLintJSON(t *testing.T, args []string, dir string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, dir, true, &out, &errw)
	return code, out.String(), errw.String()
}

// writeTree materializes path->content files under root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for path, content := range files {
		full := filepath.Join(root, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExitZeroOnCleanTree: linting this repository itself must be clean —
// the determinism rules are self-enforced — and a clean run exits 0 with no
// findings printed.
func TestExitZeroOnCleanTree(t *testing.T) {
	code, stdout, stderr := runLint(t, []string{"./..."}, ".")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings:\n%s", stdout)
	}
}

// TestExitOneOnFindings: a module with determinism violations exits 1 and
// reports each finding as file:line: rule: message.
func TestExitOneOnFindings(t *testing.T) {
	tmp := t.TempDir()
	writeTree(t, tmp, map[string]string{
		"go.mod": "module example.com/tmplint\n\ngo 1.21\n",
		"internal/dirty/dirty.go": `package dirty

// Keys leaks map iteration order into a slice.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Eq compares floats for exact equality.
func Eq(a, b float64) bool { return a == b }
`,
	})
	code, stdout, stderr := runLint(t, nil, tmp)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout == "" {
		t.Fatal("findings exit code without printed findings")
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing summary: %q", stderr)
	}
}

// TestExitTwoOnBadPath: a pattern naming a directory that does not exist is
// an operational error (exit 2), never a silently clean run.
func TestExitTwoOnBadPath(t *testing.T) {
	code, _, stderr := runLint(t, []string{"./no-such-dir/..."}, ".")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "not a directory") {
		t.Errorf("stderr missing diagnosis: %q", stderr)
	}
}

// TestExitTwoOutsideModule: running outside any Go module is an operational
// error.
func TestExitTwoOutsideModule(t *testing.T) {
	code, _, stderr := runLint(t, nil, t.TempDir())
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, stderr)
	}
}

// TestArgumentFilterScopesFindings: restricting the run to a clean subtree
// of a dirty module hides the findings elsewhere; naming the dirty subtree
// surfaces them.
func TestArgumentFilterScopesFindings(t *testing.T) {
	tmp := t.TempDir()
	writeTree(t, tmp, map[string]string{
		"go.mod": "module example.com/tmplint\n\ngo 1.21\n",
		"internal/dirty/dirty.go": `package dirty

func Eq(a, b float64) bool { return a == b }
`,
		"internal/clean/clean.go": `package clean

func Add(a, b int) int { return a + b }
`,
	})
	if code, stdout, stderr := runLint(t, []string{"./internal/clean"}, tmp); code != 0 {
		t.Errorf("clean subtree exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if code, _, _ := runLint(t, []string{"./internal/dirty/..."}, tmp); code != 1 {
		t.Errorf("dirty subtree exit = %d, want 1", code)
	}
}

// TestJSONOutput: -json renders the findings as a parseable array with
// module-relative paths, keeps the exit-1 contract, and keeps stdout pure
// JSON (the human summary stays on stderr).
func TestJSONOutput(t *testing.T) {
	tmp := t.TempDir()
	writeTree(t, tmp, map[string]string{
		"go.mod": "module example.com/tmplint\n\ngo 1.21\n",
		"internal/dirty/dirty.go": `package dirty

// Eq compares floats for exact equality.
func Eq(a, b float64) bool { return a == b }
`,
	})
	code, stdout, stderr := runLintJSON(t, nil, tmp)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	var got []struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Rule string `json:"rule"`
	}
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(got) != 1 || got[0].Rule != "float-eq" || got[0].File != "internal/dirty/dirty.go" {
		t.Fatalf("unexpected JSON findings: %+v", got)
	}
	if strings.Contains(stdout, "finding(s)") {
		t.Error("summary leaked into JSON stdout")
	}
}

// TestJSONCleanRunIsEmptyArray: a clean module serializes as [] with exit 0.
func TestJSONCleanRunIsEmptyArray(t *testing.T) {
	tmp := t.TempDir()
	writeTree(t, tmp, map[string]string{
		"go.mod": "module example.com/tmplint\n\ngo 1.21\n",
		"internal/clean/clean.go": `package clean

// Add is trivially clean.
func Add(a, b int) int { return a + b }
`,
	})
	code, stdout, _ := runLintJSON(t, nil, tmp)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Fatalf("clean run must print [], got %q", stdout)
	}
}
