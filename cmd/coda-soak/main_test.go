package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/coda-repro/coda/internal/soak"
)

// runCLI captures one invocation.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestListNamesEveryRecipe: -list prints the whole registry and exits 0.
func TestListNamesEveryRecipe(t *testing.T) {
	code, out, _ := runCLI("-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	names := soak.Names()
	if len(names) < 6 {
		t.Fatalf("registry shrank to %d recipes", len(names))
	}
	for _, name := range names {
		if !strings.Contains(out, name) {
			t.Errorf("-list output does not name %q", name)
		}
	}
}

// TestOperationalErrorsExitTwo: unknown recipes, scales and conditions are
// tool failures (exit 2), matching the coda-lint convention — they must
// never masquerade as verdict failures (exit 1).
func TestOperationalErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-recipe", "no-such-recipe"},
		{"-scale", "galactic"},
		{"-seeds", "0"},
		{"-seeds", "-3"},
		{"-seed-base", "-1"},
		{"-seed-base", "-9000"},
		{"-conditions", "completion-floor=NaN"},
		{"-conditions", "bogus-check=1"},
		{"-conditions", "completion-floor"},
		{"-not-a-flag"},
		{"stray", "args"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(args...)
		if code != 2 {
			t.Errorf("coda-soak %s: exit %d, want 2 (stderr: %s)", strings.Join(args, " "), code, stderr)
		}
	}
}

// TestTinyRunEmitsStableJSON: a single tiny cell passes, exits 0, and the
// JSON report round-trips with the expected shape.
func TestTinyRunEmitsStableJSON(t *testing.T) {
	code, out, stderr := runCLI("-recipe", "quiet-baseline", "-seeds", "1", "-scale", "tiny", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var rep soak.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if !rep.Pass || len(rep.Cells) != 1 {
		t.Fatalf("report pass=%v cells=%d, want pass with 1 cell", rep.Pass, len(rep.Cells))
	}
	if rep.Cells[0].Name != "quiet-baseline/seed=1" {
		t.Errorf("cell name %q", rep.Cells[0].Name)
	}

	// Two invocations emit identical bytes — the CI diffing contract.
	_, again, _ := runCLI("-recipe", "quiet-baseline", "-seeds", "1", "-scale", "tiny", "-json")
	if out != again {
		t.Error("the same grid emitted different report bytes across invocations")
	}
}

// TestVerdictFailureExitsOne: an impossible extra condition turns a
// passing cell into a verdict failure — exit 1, with the failing check
// named in the human output.
func TestVerdictFailureExitsOne(t *testing.T) {
	code, out, _ := runCLI("-recipe", "quiet-baseline", "-seeds", "1", "-scale", "tiny",
		"-conditions", "node-crashes-floor=1")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "node-crashes-floor") || !strings.Contains(out, "FAIL") {
		t.Errorf("failure output does not name the failing condition:\n%s", out)
	}
}
