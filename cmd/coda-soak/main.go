// Command coda-soak runs named chaos recipes — month-shaped soak
// scenarios with declarative pass/fail conditions — across a recipe × seed
// matrix and reports machine-checked verdicts.
//
// Usage:
//
//	coda-soak -list
//	coda-soak -recipe crash-heavy-diurnal-month -seeds 3
//	coda-soak -scale tiny -seeds 2 -json > report.json
//
// Exit codes follow the coda-lint convention: 0 every cell passed, 1 at
// least one verdict failed, 2 the tool itself could not run (unknown
// recipe or scale, malformed condition, bad flags).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/coda-repro/coda/internal/soak"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("coda-soak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the named recipes and their conditions, then exit")
		recipe   = fs.String("recipe", "", "comma-separated recipe names (default: every recipe)")
		seeds    = fs.Int("seeds", 2, "seeds per recipe: runs seed-base .. seed-base+seeds-1")
		seedBase = fs.Int64("seed-base", 1, "first seed of the sweep")
		scale    = fs.String("scale", "tiny", "matrix scale: tiny, small, full or warehouse")
		parallel = fs.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS)")
		jsonOut  = fs.Bool("json", false, "emit the verdict report as stable-ordered JSON on stdout")
		conds    = fs.String("conditions", "", "extra check=threshold conditions for every selected recipe, comma-separated")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "coda-soak: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		return 2
	}

	if *list {
		listRecipes(stdout)
		return 0
	}

	sc, err := soak.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(stderr, "coda-soak: %v\n", err)
		return 2
	}
	if *seeds < 1 {
		fmt.Fprintf(stderr, "coda-soak: -seeds must be at least 1, got %d\n", *seeds)
		return 2
	}
	if *seedBase < 0 {
		fmt.Fprintf(stderr, "coda-soak: -seed-base must be non-negative, got %d\n", *seedBase)
		return 2
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = *seedBase + int64(i)
	}

	var names []string
	if *recipe != "" {
		for _, name := range strings.Split(*recipe, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			names = append(names, name)
		}
	}

	var extra []soak.Condition
	if *conds != "" {
		for _, s := range strings.Split(*conds, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			c, err := soak.ParseCondition(s)
			if err != nil {
				fmt.Fprintf(stderr, "coda-soak: %v\n", err)
				return 2
			}
			extra = append(extra, c)
		}
	}

	rep, err := soak.Grid(context.Background(), names, seedList, sc, *parallel, extra)
	if err != nil {
		fmt.Fprintf(stderr, "coda-soak: %v\n", err)
		return 2
	}

	if *jsonOut {
		data, err := rep.Encode()
		if err != nil {
			fmt.Fprintf(stderr, "coda-soak: %v\n", err)
			return 2
		}
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintf(stderr, "coda-soak: %v\n", err)
			return 2
		}
	} else {
		printReport(stdout, rep)
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

// listRecipes renders the registry with each recipe's conditions.
func listRecipes(w io.Writer) {
	for _, r := range soak.Recipes() {
		fmt.Fprintf(w, "%s\n    %s\n", r.Name, r.Description)
		for _, c := range r.Conditions {
			fmt.Fprintf(w, "    - %s\n", c)
		}
	}
}

// printReport renders the human-facing verdict table.
func printReport(w io.Writer, rep *soak.Report) {
	fmt.Fprintf(w, "scale=%s seeds=%d recipes=%d\n", rep.Scale.Name, len(rep.Seeds), len(rep.Recipes))
	for _, c := range rep.Cells {
		passed := 0
		for _, v := range c.Conditions {
			if v.Pass {
				passed++
			}
		}
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "%-4s %-42s %d/%d conditions\n", status, c.Name, passed, len(c.Conditions))
		if c.Error != "" {
			fmt.Fprintf(w, "     run error: %s\n", c.Error)
		}
		for _, v := range c.Conditions {
			if !v.Pass {
				fmt.Fprintf(w, "     FAIL %s=%g measured=%g %s\n", v.Check, v.Threshold, v.Measured, v.Detail)
			}
		}
	}
	if rep.Pass {
		fmt.Fprintf(w, "PASS: all %d cells\n", len(rep.Cells))
	} else {
		fmt.Fprintf(w, "FAIL: %d of %d cells\n", rep.Failed, len(rep.Cells))
	}
}
