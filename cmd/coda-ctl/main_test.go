package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestUsageErrorsExitTwo: malformed invocations never touch the network.
func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"submit"},
		{"submit", "a", "b"},
		{"cancel", "not-a-number"},
		{"cancel", "0"},
		{"status"},
		{"drain", "minus-one"},
		{"drain", "-1"},
		{"-retries", "0", "health"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(args...)
		if code != 2 {
			t.Errorf("coda-ctl %s: exit %d, want 2 (stderr: %s)",
				strings.Join(args, " "), code, stderr)
		}
	}
}

// TestCommandsHitExpectedRoutes: each subcommand maps to the documented
// method + path and prints the response body on success.
func TestCommandsHitExpectedRoutes(t *testing.T) {
	var gotMethod, gotPath atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotMethod.Store(r.Method)
		gotPath.Store(r.URL.Path)
		fmt.Fprint(w, `{"seq":7,"jobId":3}`)
	}))
	defer srv.Close()

	cases := []struct {
		args   []string
		method string
		path   string
	}{
		{[]string{"submit", `{"kind":"cpu","tenant":1,"cpuCores":1,"workSeconds":1}`}, "POST", "/v1/jobs"},
		{[]string{"cancel", "3"}, "DELETE", "/v1/jobs/3"},
		{[]string{"status", "3"}, "GET", "/v1/jobs/3"},
		{[]string{"nodes"}, "GET", "/v1/nodes"},
		{[]string{"drain", "2"}, "POST", "/v1/nodes/2/drain"},
		{[]string{"undrain", "2"}, "POST", "/v1/nodes/2/undrain"},
		{[]string{"leave", "2"}, "POST", "/v1/nodes/2/leave"},
		{[]string{"join", "2"}, "POST", "/v1/nodes/2/join"},
		{[]string{"metrics"}, "GET", "/metrics"},
		{[]string{"health"}, "GET", "/healthz"},
	}
	for _, tc := range cases {
		args := append([]string{"-server", srv.URL}, tc.args...)
		code, out, stderr := runCLI(args...)
		if code != 0 {
			t.Errorf("%v: exit %d, stderr: %s", tc.args, code, stderr)
			continue
		}
		if gotMethod.Load() != tc.method || gotPath.Load() != tc.path {
			t.Errorf("%v: hit %s %s, want %s %s",
				tc.args, gotMethod.Load(), gotPath.Load(), tc.method, tc.path)
		}
		if !strings.Contains(out, `"seq":7`) {
			t.Errorf("%v: response body not printed: %q", tc.args, out)
		}
	}
}

// TestBackpressureRetry: a shedding server answers 429 + Retry-After
// twice, then admits. The client must wait it out and succeed.
func TestBackpressureRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{"seq":1,"jobId":1}`)
	}))
	defer srv.Close()

	code, out, stderr := runCLI("-server", srv.URL, "-retry-base", "1ms",
		"submit", `{"kind":"cpu","tenant":1,"cpuCores":1,"workSeconds":1}`)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if !strings.Contains(out, `"jobId":1`) {
		t.Errorf("final response not printed: %q", out)
	}
	if !strings.Contains(stderr, "retrying in") {
		t.Errorf("retry attempts not narrated: %q", stderr)
	}
}

// TestRetriesExhaustedExitOne: a permanently shedding server exhausts the
// retry budget — exit 1, with the final 429 reported.
func TestRetriesExhaustedExitOne(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer srv.Close()

	code, _, stderr := runCLI("-server", srv.URL, "-retry-base", "1ms", "-retries", "3",
		"cancel", "1")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want exactly the retry budget of 3", calls.Load())
	}
	if !strings.Contains(stderr, "429") {
		t.Errorf("final status not reported: %q", stderr)
	}
}

// TestSemanticRejectionExitOne: a 200 whose body carries a deterministic
// rejection (cancel of an unknown job) is a failure to the caller.
func TestSemanticRejectionExitOne(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"seq":4,"error":"ctl: cancel job 9: sim: unknown job"}`)
	}))
	defer srv.Close()

	code, _, stderr := runCLI("-server", srv.URL, "cancel", "9")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown job") {
		t.Errorf("rejection not surfaced: %q", stderr)
	}
}

// TestServerErrorStatusExitOne: a non-retryable HTTP error (404) is
// reported once, with no retries.
func TestServerErrorStatusExitOne(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such node action", http.StatusNotFound)
	}))
	defer srv.Close()

	code, _, _ := runCLI("-server", srv.URL, "drain", "5")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (404 must not retry)", calls.Load())
	}
}
