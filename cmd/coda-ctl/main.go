// Command coda-ctl is the control-plane client: it talks to a running
// coda-serve over HTTP/JSON and honors the server's admission backpressure
// — a 429 carries Retry-After, and the client waits it out under a
// seeded-jitter exponential backoff (internal/ctl/retry) instead of
// hammering a shedding server.
//
// Usage:
//
//	coda-ctl submit '{"kind":"cpu","tenant":1,"cpuCores":4,"workSeconds":600}'
//	coda-ctl status 1
//	coda-ctl cancel 1
//	coda-ctl nodes
//	coda-ctl drain 3
//	coda-ctl metrics
//	coda-ctl health
//
// Exit codes: 0 success, 1 the server rejected the operation (semantic
// error or exhausted retries), 2 the tool itself could not run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/coda-repro/coda/internal/ctl/retry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const usage = `usage: coda-ctl [flags] <command> [args]

commands:
  submit <job-spec-json>          admit a job; prints the assigned ID
  cancel <job-id>                 cancel a pending/running job
  status <job-id>                 show a job's phase and placement
  nodes                           list node states and utilization
  drain|undrain|join|leave <node> node lifecycle operations
  metrics                         dump the server's /metrics text
  health                          check /healthz
`

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("coda-ctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server  = fs.String("server", "http://127.0.0.1:8080", "coda-serve base URL")
		retries = fs.Int("retries", 5, "attempts against a shedding server before giving up")
		base    = fs.Duration("retry-base", 100*time.Millisecond, "first backoff delay")
		seed    = fs.Int64("retry-seed", 1, "backoff jitter seed")
		timeout = fs.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	fs.Usage = func() {
		fmt.Fprint(stderr, usage)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *retries < 1 {
		fmt.Fprintf(stderr, "coda-ctl: -retries must be at least 1, got %d\n", *retries)
		return 2
	}

	backoff, err := retry.New(retry.Policy{Base: *base, Seed: *seed})
	if err != nil {
		fmt.Fprintf(stderr, "coda-ctl: %v\n", err)
		return 2
	}
	c := &client{
		base:    strings.TrimRight(*server, "/"),
		http:    &http.Client{Timeout: *timeout},
		backoff: backoff,
		retries: *retries,
		stderr:  stderr,
	}

	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "submit":
		return c.submit(rest, stdout, stderr)
	case "cancel":
		return c.jobOp(http.MethodDelete, "cancel", rest, stdout, stderr)
	case "status":
		return c.jobOp(http.MethodGet, "status", rest, stdout, stderr)
	case "nodes":
		return c.get("/v1/nodes", stdout, stderr)
	case "drain", "undrain", "join", "leave":
		return c.nodeOp(cmd, rest, stdout, stderr)
	case "metrics":
		return c.get("/metrics", stdout, stderr)
	case "health":
		return c.get("/healthz", stdout, stderr)
	default:
		fmt.Fprintf(stderr, "coda-ctl: unknown command %q\n%s", cmd, usage)
		return 2
	}
}

type client struct {
	base    string
	http    *http.Client
	backoff *retry.Backoff
	retries int
	stderr  io.Writer
}

// do issues the request, retrying shed (429) and unavailable (503)
// answers under backoff. The server's Retry-After floor is respected.
// Bodies are rebuilt per attempt from the body string.
func (c *client) do(method, path, body string) (*http.Response, error) {
	var last *http.Response
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			retryAfter := time.Duration(0)
			if last != nil {
				if s := last.Header.Get("Retry-After"); s != "" {
					if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
						retryAfter = time.Duration(secs) * time.Second
					}
				}
				last.Body.Close()
			}
			wait := c.backoff.Next(retryAfter)
			fmt.Fprintf(c.stderr, "coda-ctl: server busy, retrying in %v (attempt %d/%d)\n",
				wait.Round(time.Millisecond), attempt+1, c.retries)
			time.Sleep(wait)
		}
		var rdr io.Reader
		if body != "" {
			rdr = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rdr)
		if err != nil {
			return nil, err
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
			return resp, nil
		}
		last = resp
	}
	return last, nil
}

// report prints one response: the body verbatim on success, a labeled
// error line otherwise. Returns the process exit code.
func report(resp *http.Response, stdout, stderr io.Writer) int {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(stderr, "coda-ctl: read response: %v\n", err)
		return 1
	}
	body := strings.TrimRight(string(data), "\n")
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "coda-ctl: server answered %s: %s\n", resp.Status, body)
		return 1
	}
	// A 200 can still carry a deterministic semantic rejection.
	var sem struct {
		Err string `json:"error"`
	}
	if json.Unmarshal(data, &sem) == nil && sem.Err != "" {
		fmt.Fprintf(stderr, "coda-ctl: rejected: %s\n", sem.Err)
		return 1
	}
	fmt.Fprintln(stdout, body)
	return 0
}

func (c *client) submit(rest []string, stdout, stderr io.Writer) int {
	if len(rest) != 1 {
		fmt.Fprintf(stderr, "coda-ctl: submit takes exactly one job-spec JSON argument\n")
		return 2
	}
	resp, err := c.do(http.MethodPost, "/v1/jobs", rest[0])
	if err != nil {
		fmt.Fprintf(stderr, "coda-ctl: %v\n", err)
		return 1
	}
	return report(resp, stdout, stderr)
}

func (c *client) jobOp(method, name string, rest []string, stdout, stderr io.Writer) int {
	if len(rest) != 1 {
		fmt.Fprintf(stderr, "coda-ctl: %s takes exactly one job ID\n", name)
		return 2
	}
	id, err := strconv.ParseInt(rest[0], 10, 64)
	if err != nil || id <= 0 {
		fmt.Fprintf(stderr, "coda-ctl: %s: %q is not a positive job ID\n", name, rest[0])
		return 2
	}
	resp, err := c.do(method, "/v1/jobs/"+rest[0], "")
	if err != nil {
		fmt.Fprintf(stderr, "coda-ctl: %v\n", err)
		return 1
	}
	return report(resp, stdout, stderr)
}

func (c *client) nodeOp(action string, rest []string, stdout, stderr io.Writer) int {
	if len(rest) != 1 {
		fmt.Fprintf(stderr, "coda-ctl: %s takes exactly one node ID\n", action)
		return 2
	}
	id, err := strconv.Atoi(rest[0])
	if err != nil || id < 0 {
		fmt.Fprintf(stderr, "coda-ctl: %s: %q is not a node ID\n", action, rest[0])
		return 2
	}
	resp, err := c.do(http.MethodPost, fmt.Sprintf("/v1/nodes/%d/%s", id, action), "")
	if err != nil {
		fmt.Fprintf(stderr, "coda-ctl: %v\n", err)
		return 1
	}
	return report(resp, stdout, stderr)
}

func (c *client) get(path string, stdout, stderr io.Writer) int {
	resp, err := c.do(http.MethodGet, path, "")
	if err != nil {
		fmt.Fprintf(stderr, "coda-ctl: %v\n", err)
		return 1
	}
	return report(resp, stdout, stderr)
}
