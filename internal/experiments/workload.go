package experiments

import (
	"time"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/metrics"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

// Fig1Result is the week-long cluster-usage trend of Fig. 1.
type Fig1Result struct {
	// Hourly series of the four Fig. 1 curves (one sample per hour).
	CPUActive, CPUUtil, GPUActive, GPUUtil *metrics.Series
	// DiurnalRatio is peak-hour over trough-hour CPU active rate — the
	// diurnal pattern the paper highlights.
	DiurnalRatio float64
	// GPUAboveCPU reports whether GPU utilization stayed above CPU
	// utilization on average, as Fig. 1 shows.
	GPUAboveCPU bool
}

// Fig1 replays one week of the trace under FIFO (the production policy
// when Fig. 1 was captured) and reports the hourly utilization trends.
func Fig1(sc Scale) (*Fig1Result, error) {
	week := sc
	week.Days = 7
	week.CPUJobs = int(float64(sc.CPUJobs) * 7 / sc.Days)
	week.GPUJobs = int(float64(sc.GPUJobs) * 7 / sc.Days)
	jobs, err := week.generate()
	if err != nil {
		return nil, err
	}
	opts := week.simOptions()
	simulator, err := sim.New(opts, sched.NewFIFO(), jobs)
	if err != nil {
		return nil, err
	}
	res, err := simulator.Run()
	if err != nil {
		return nil, err
	}
	out := &Fig1Result{}
	if out.CPUActive, err = res.CPUActive.Downsample(time.Hour); err != nil {
		return nil, err
	}
	if out.CPUUtil, err = res.CPUUtilSeries.Downsample(time.Hour); err != nil {
		return nil, err
	}
	if out.GPUActive, err = res.GPUActive.Downsample(time.Hour); err != nil {
		return nil, err
	}
	if out.GPUUtil, err = res.GPUUtilSeries.Downsample(time.Hour); err != nil {
		return nil, err
	}

	// Fold CPU active rate by hour of day to expose the diurnal swing.
	var byHour [24]struct {
		sum float64
		n   int
	}
	for i := 0; i < out.CPUActive.Len(); i++ {
		tm, v := out.CPUActive.At(i)
		h := int(tm/time.Hour) % 24
		byHour[h].sum += v
		byHour[h].n++
	}
	peak, trough := 0.0, 1.0
	for _, b := range byHour {
		if b.n == 0 {
			continue
		}
		mean := b.sum / float64(b.n)
		if mean > peak {
			peak = mean
		}
		if mean < trough {
			trough = mean
		}
	}
	if trough > 0 {
		out.DiurnalRatio = peak / trough
	}
	out.GPUAboveCPU = out.GPUUtil.Mean() > out.CPUUtil.Mean()
	return out, nil
}

// Fig2Result is the job-characteristics breakdown of Fig. 2.
type Fig2Result struct {
	// Stats carries the trace-level breakdown (type mix, request bands,
	// per-tenant counts, runtimes).
	Stats trace.Stats
	// GPUOver10Min / GPUOver3Min are the FIFO queueing-delay fractions of
	// Fig. 2c.
	GPUOver3Min, GPUOver10Min float64
	// PaperGPUOver3Min / PaperGPUOver10Min are §III-A3's 48.1% and 41.3%.
	PaperGPUOver3Min, PaperGPUOver10Min float64
	// PaperReq12 / PaperReqOver10 are Fig. 2d's 76.1% and 15.3%.
	PaperReq12, PaperReqOver10 float64
}

// Fig2 reproduces Fig. 2: the trace's job-type and request statistics plus
// the production (FIFO) queueing-delay distribution.
func Fig2(sc Scale) (*Fig2Result, error) {
	jobs, err := sc.generate()
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{
		Stats:             trace.Summarize(jobs),
		PaperGPUOver3Min:  0.481,
		PaperGPUOver10Min: 0.413,
		PaperReq12:        0.761,
		PaperReqOver10:    0.153,
	}
	c, err := RunComparison(sc)
	if err != nil {
		return nil, err
	}
	out.GPUOver3Min = c.FIFO.GPUQueue.FractionAbove(3 * time.Minute)
	out.GPUOver10Min = c.FIFO.GPUQueue.FractionAbove(10 * time.Minute)
	return out, nil
}

// HourlyCPUArrivals exposes Fig. 1's arrival pattern straight from the
// trace (used by cmd/coda-trace).
func HourlyCPUArrivals(sc Scale) ([]int, error) {
	jobs, err := sc.generate()
	if err != nil {
		return nil, err
	}
	return trace.HourlyArrivals(jobs, sc.Duration(), func(j *job.Job) bool {
		return !j.IsGPU()
	}), nil
}
