package experiments

import (
	"fmt"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
)

// BenchInvariantsEvery is the full-audit cadence the invariants bench
// variant runs with: the O(Δ) delta check fires after every event and the
// full audit every this many events — the production-shaped configuration
// the delta checker was built for (tests still audit fully per event).
const BenchInvariantsEvery = 1000

// benchBoundedAbove is the job count past which BenchSpec bounds its result
// containers: per-job history capped and queue CDFs sketched. Below it the
// macro numbers stay byte-compatible with the historical exact-result runs;
// above it an unbounded result would itself be O(jobs) memory and defeat
// the streaming intake (a warehouse run's 1M JobStats records dwarf the
// engine's working set).
const benchBoundedAbove = 200_000

// benchMaxJobStats is the per-job history cap for bounded macro runs.
const benchMaxJobStats = 10_000

// BenchSpec declares one macro-benchmark run: the scale's trace streamed
// under one scheduler ("fifo", "drf" or "coda"), optionally with the
// invariant checker on in its delta-plus-cadence configuration.
// cmd/coda-bench times spec.Run() around this to report events/sec and
// placement-queries/sec. The trace is never materialized — the spec
// carries the trace config and each run builds its own lazy source.
func BenchSpec(sc Scale, scheduler string, invariants bool) (sim.RunSpec, error) {
	if err := sc.Validate(); err != nil {
		return sim.RunSpec{}, err
	}
	cfg := sc.traceConfig()
	opts := sc.simOptions()
	opts.Invariants = invariants
	if invariants {
		opts.InvariantsEvery = BenchInvariantsEvery
	}
	if sc.CPUJobs+sc.GPUJobs > benchBoundedAbove {
		opts.MaxJobStats = benchMaxJobStats
		opts.CompactCDFs = true
	}
	var newScheduler func() (sched.Scheduler, error)
	switch scheduler {
	case "fifo":
		newScheduler = newFIFO()
	case "drf":
		newScheduler = newDRF(opts.Cluster)
	case "coda":
		newScheduler = newCODA(core.DefaultConfig(), opts.Cluster)
	default:
		return sim.RunSpec{}, fmt.Errorf("experiments: unknown bench scheduler %q", scheduler)
	}
	name := "macro-" + scheduler
	if invariants {
		name += "-inv"
	}
	return sim.RunSpec{Name: name, Options: opts, Trace: &cfg, NewScheduler: newScheduler}, nil
}

// MemGateSpec builds the run the intake memory gate times: the scale's
// trace streamed under FIFO with per-job history capped and queue CDFs
// sketched, so every deliberately-O(jobs) consumer is off. What remains —
// intake, event queue, in-flight population, sampled series — must be flat
// in the job count; cmd/coda-bench's memgate section asserts that by
// running this spec at growing job counts with a fixed arrival rate and
// comparing retained heap per job.
func MemGateSpec(sc Scale) (sim.RunSpec, error) {
	if err := sc.Validate(); err != nil {
		return sim.RunSpec{}, err
	}
	cfg := sc.traceConfig()
	opts := sc.simOptions()
	opts.MaxJobStats = 2000
	opts.CompactCDFs = true
	// Hold the sampled-series length constant across scale points so the
	// gate measures intake, not sampling cadence.
	opts.SampleInterval = sc.Duration() / 256
	return sim.RunSpec{
		Name:         fmt.Sprintf("memgate-%dj", sc.CPUJobs+sc.GPUJobs),
		Options:      opts,
		Trace:        &cfg,
		NewScheduler: newFIFO(),
	}, nil
}
