package experiments

import (
	"fmt"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
)

// BenchInvariantsEvery is the full-audit cadence the invariants bench
// variant runs with: the O(Δ) delta check fires after every event and the
// full audit every this many events — the production-shaped configuration
// the delta checker was built for (tests still audit fully per event).
const BenchInvariantsEvery = 1000

// BenchSpec declares one macro-benchmark run: the scale's trace replayed
// under one scheduler ("fifo", "drf" or "coda"), optionally with the
// invariant checker on in its delta-plus-cadence configuration.
// cmd/coda-bench times spec.Run() around this to report events/sec and
// placement-queries/sec.
func BenchSpec(sc Scale, scheduler string, invariants bool) (sim.RunSpec, error) {
	jobs, err := sc.generate()
	if err != nil {
		return sim.RunSpec{}, err
	}
	opts := sc.simOptions()
	opts.Invariants = invariants
	if invariants {
		opts.InvariantsEvery = BenchInvariantsEvery
	}
	var newScheduler func() (sched.Scheduler, error)
	switch scheduler {
	case "fifo":
		newScheduler = newFIFO()
	case "drf":
		newScheduler = newDRF(opts.Cluster)
	case "coda":
		newScheduler = newCODA(core.DefaultConfig(), opts.Cluster)
	default:
		return sim.RunSpec{}, fmt.Errorf("experiments: unknown bench scheduler %q", scheduler)
	}
	name := "macro-" + scheduler
	if invariants {
		name += "-inv"
	}
	return sim.RunSpec{Name: name, Options: opts, Jobs: jobs, NewScheduler: newScheduler}, nil
}
