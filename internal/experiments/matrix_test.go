package experiments

import (
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/sim"
)

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(90*time.Second + 400*time.Millisecond); got != "1m30s" {
		t.Errorf("FormatDuration = %q, want 1m30s", got)
	}
}

// matrixScale is an even smaller operating point than testScale for the
// tests that execute several extra full matrices.
func matrixScale() Scale {
	return Scale{Seed: 2, Days: 0.2, CPUJobs: 500, GPUJobs: 166, Nodes: 80}
}

func TestComparisonMatrixShape(t *testing.T) {
	m, err := ComparisonMatrix(testScale())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fifo", "drf", "coda"}
	names := m.Names()
	if len(names) != len(want) {
		t.Fatalf("matrix has %d cells, want %d", len(names), len(want))
	}
	for i, n := range names {
		if n != want[i] {
			t.Errorf("cell %d named %q, want %q", i, n, want[i])
		}
	}
	for i := range want {
		if err := m.Spec(i).Validate(); err != nil {
			t.Errorf("cell %d invalid: %v", i, err)
		}
	}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d, want 3", Parallelism())
	}
	SetParallelism(-5)
	if Parallelism() != 0 {
		t.Fatalf("negative parallelism should clamp to 0, got %d", Parallelism())
	}
}

func TestRunMultiSeedComparison(t *testing.T) {
	sc := matrixScale()
	seeds := []int64{101, 102}
	msc, err := RunMultiSeedComparison(sc, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []*sim.Merged{msc.FIFO, msc.DRF, msc.CODA} {
		if agg.Runs != len(seeds) {
			t.Errorf("%s merged %d runs, want %d", agg.Scheduler, agg.Runs, len(seeds))
		}
		if agg.GPUQueue.Len() == 0 || agg.CPUQueue.Len() == 0 {
			t.Errorf("%s has empty pooled queue CDFs", agg.Scheduler)
		}
		if agg.GPUUtil <= 0 || agg.GPUUtil > 1 {
			t.Errorf("%s mean GPU util %g out of (0, 1]", agg.Scheduler, agg.GPUUtil)
		}
	}
	if msc.CODA.Scheduler != "coda" || msc.FIFO.Scheduler != "fifo" || msc.DRF.Scheduler != "drf" {
		t.Errorf("scheduler labels scrambled: %q %q %q", msc.FIFO.Scheduler, msc.DRF.Scheduler, msc.CODA.Scheduler)
	}
	if _, err := RunMultiSeedComparison(sc, nil); err == nil {
		t.Error("empty seed list should fail")
	}
}

func TestScaleCurve(t *testing.T) {
	nodeCounts := []int{40, 80}
	pts, err := ScaleCurve(matrixScale(), nodeCounts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(nodeCounts) {
		t.Fatalf("got %d points, want %d", len(pts), len(nodeCounts))
	}
	for i, pt := range pts {
		if pt.Nodes != nodeCounts[i] {
			t.Errorf("point %d at %d nodes, want %d", i, pt.Nodes, nodeCounts[i])
		}
		if pt.GPUUtil <= 0 || pt.MakeSpan <= 0 {
			t.Errorf("point %d degenerate: util=%g makespan=%v", i, pt.GPUUtil, pt.MakeSpan)
		}
	}
	// Fixed load on half the cluster cannot queue less: the fraction of GPU
	// jobs starting immediately must not exceed the big cluster's.
	if pts[0].GPUImmediate > pts[1].GPUImmediate {
		t.Errorf("40-node immediate-start %g above 80-node %g under fixed load", pts[0].GPUImmediate, pts[1].GPUImmediate)
	}
	if _, err := ScaleCurve(matrixScale(), nil); err == nil {
		t.Error("empty node list should fail")
	}
	if _, err := ScaleCurve(matrixScale(), []int{0}); err == nil {
		t.Error("zero node count should fail")
	}
}

func TestGeneralityMatrixShape(t *testing.T) {
	m, err := GeneralityMatrix(testScale(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("generality matrix has %d cells, want 3", m.Len())
	}
	if _, err := GeneralityMatrix(testScale(), -1); err == nil {
		t.Error("negative cpu-only nodes should fail")
	}
}

func TestSec6EMatrixShape(t *testing.T) {
	m, err := Sec6EMatrix(testScale())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"eliminator-off", "stress-on", "stress-off"}
	for i, n := range m.Names() {
		if n != want[i] {
			t.Errorf("cell %d named %q, want %q", i, n, want[i])
		}
	}
}
