package experiments

import "testing"

// TestFig5Golden pins the calibrated optimal-core table (1N1G / 1N4G,
// default batch). Any perfmodel change that shifts these values must be a
// deliberate recalibration: EXPERIMENTS.md quotes them.
func TestFig5Golden(t *testing.T) {
	want := map[string]map[string]int{
		"alexnet":     {"1N1G": 6, "1N4G": 16},
		"vgg16":       {"1N1G": 4, "1N4G": 10},
		"inception3":  {"1N1G": 3, "1N4G": 8},
		"resnet50":    {"1N1G": 3, "1N4G": 8},
		"bat":         {"1N1G": 5, "1N4G": 11},
		"transformer": {"1N1G": 2, "1N4G": 4},
		"wavenet":     {"1N1G": 6, "1N4G": 15},
		"deepspeech":  {"1N1G": 4, "1N4G": 10},
	}
	rows, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Batch != "default" {
			continue
		}
		expect, ok := want[r.Model][r.Config]
		if !ok {
			continue
		}
		if r.OptimalCores != expect {
			t.Errorf("%s %s: optimal = %d, want %d (recalibrate EXPERIMENTS.md if intentional)",
				r.Model, r.Config, r.OptimalCores, expect)
		}
	}
}

// TestTable2Golden pins the per-model profiling-step counts quoted in
// EXPERIMENTS.md.
func TestTable2Golden(t *testing.T) {
	want := map[string]int{
		"alexnet":     4,
		"vgg16":       4,
		"inception3":  3,
		"resnet50":    3,
		"bat":         3,
		"transformer": 4,
		"wavenet":     4,
		"deepspeech":  4,
	}
	rows, err := Table2(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if got, expect := r.ProfilingSteps, want[r.Model]; got != expect {
			t.Errorf("%s: %d profiling steps, want %d (recalibrate EXPERIMENTS.md if intentional)",
				r.Model, got, expect)
		}
	}
}
