package experiments

import (
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/runner"
	"github.com/coda-repro/coda/internal/sim"
)

// ScalePoint is one cluster size of the scale curve.
type ScalePoint struct {
	// Nodes is the cluster size of this point.
	Nodes int
	// GPUUtil is the mean GPU utilization; GPUImmediate and CPUWithin3Min
	// are the queueing milestones; MakeSpan is the total simulated time.
	GPUUtil, GPUImmediate, CPUWithin3Min float64
	MakeSpan                             time.Duration
}

// ScaleCurveMatrix declares the what-if cluster-size sweep: the base
// scale's trace (fixed load) replayed under CODA at each node count, one
// cell per entry of nodeCounts. Shrinking the cluster under fixed load
// raises utilization and queueing; growing it does the opposite.
func ScaleCurveMatrix(base Scale, nodeCounts []int) (*runner.Matrix, error) {
	if len(nodeCounts) == 0 {
		return nil, fmt.Errorf("experiments: scale curve needs at least one node count")
	}
	// The trace does not depend on the cluster shape: every cell streams
	// the same seeded config, so the sweep never materializes the jobs
	// even once.
	if err := base.Validate(); err != nil {
		return nil, err
	}
	cfg := base.traceConfig()
	m := &runner.Matrix{}
	for _, nodes := range nodeCounts {
		if nodes <= 0 {
			return nil, fmt.Errorf("experiments: scale curve node count %d must be positive", nodes)
		}
		sc := base
		sc.Nodes = nodes
		opts := sc.simOptions()
		m.Add(sim.RunSpec{
			Name:         fmt.Sprintf("nodes=%d", nodes),
			Options:      opts,
			Trace:        &cfg,
			NewScheduler: newCODA(core.DefaultConfig(), opts.Cluster),
		})
	}
	return m, nil
}

// ScaleCurve executes the cluster-size sweep and reduces each run to its
// headline numbers, in nodeCounts order.
func ScaleCurve(base Scale, nodeCounts []int) ([]ScalePoint, error) {
	m, err := ScaleCurveMatrix(base, nodeCounts)
	if err != nil {
		return nil, err
	}
	results, err := runMatrix(m)
	if err != nil {
		return nil, err
	}
	pts := make([]ScalePoint, 0, len(results))
	for i, res := range results {
		pts = append(pts, ScalePoint{
			Nodes:         nodeCounts[i],
			GPUUtil:       sim.WindowMean(&res.GPUUtilSeries, res.LastArrival),
			GPUImmediate:  res.GPUQueue.FractionAtMost(0),
			CPUWithin3Min: res.CPUQueue.FractionAtMost(3 * time.Minute),
			MakeSpan:      res.EndTime,
		})
	}
	return pts, nil
}
