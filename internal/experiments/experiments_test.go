package experiments

import (
	"math"
	"testing"
	"time"
)

// testScale keeps experiment tests fast: a third of a day at paper load.
func testScale() Scale {
	return Scale{Seed: 1, Days: 0.34, CPUJobs: 850, GPUJobs: 283, Nodes: 80}
}

func comparison(t *testing.T) *Comparison {
	t.Helper()
	c, err := RunComparison(testScale())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScaleValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Scale)
		wantErr bool
	}{
		{"full ok", func(s *Scale) {}, false},
		{"zero days", func(s *Scale) { s.Days = 0 }, true},
		{"no gpu jobs", func(s *Scale) { s.GPUJobs = 0 }, true},
		{"negative cpu jobs", func(s *Scale) { s.CPUJobs = -1 }, true},
		{"zero nodes", func(s *Scale) { s.Nodes = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sc := FullScale()
			tt.mutate(&sc)
			err := sc.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	if FullScale().Duration() != 30*24*time.Hour {
		t.Error("FullScale duration wrong")
	}
	if SmallScale().Validate() != nil || TinyScale().Validate() != nil {
		t.Error("preset scales must validate")
	}
}

func TestRunComparisonCached(t *testing.T) {
	a := comparison(t)
	b := comparison(t)
	if a != b {
		t.Error("RunComparison must memoize per scale")
	}
	if a.FIFO.Scheduler != "fifo" || a.DRF.Scheduler != "drf" || a.CODA.Scheduler != "coda" {
		t.Errorf("schedulers = %s/%s/%s", a.FIFO.Scheduler, a.DRF.Scheduler, a.CODA.Scheduler)
	}
}

func TestFig10Shape(t *testing.T) {
	rows := Fig10(comparison(t))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig10Row{}
	for _, r := range rows {
		byName[r.Scheduler] = r
		if r.Util <= 0 || r.Util > 1 {
			t.Errorf("%s util = %g", r.Scheduler, r.Util)
		}
	}
	// The paper's headline ordering: CODA clearly beats both baselines on
	// GPU utilization and fragmentation.
	if byName["coda"].Util <= byName["fifo"].Util+0.05 {
		t.Errorf("coda util %g not clearly above fifo %g", byName["coda"].Util, byName["fifo"].Util)
	}
	if byName["coda"].Util <= byName["drf"].Util+0.05 {
		t.Errorf("coda util %g not clearly above drf %g", byName["coda"].Util, byName["drf"].Util)
	}
	if byName["coda"].FragRate >= byName["fifo"].FragRate {
		t.Errorf("coda frag %g not below fifo %g", byName["coda"].FragRate, byName["fifo"].FragRate)
	}
	if byName["fifo"].PaperUtil != 0.454 || byName["coda"].PaperActive != 0.912 {
		t.Error("paper reference values wrong")
	}
}

func TestFig11Shape(t *testing.T) {
	rows := Fig11(comparison(t))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig11Row{}
	for _, r := range rows {
		byName[r.Scheduler] = r
	}
	// CODA schedules the vast majority of GPU jobs immediately; FIFO does
	// not.
	if byName["coda"].GPUImmediate <= byName["fifo"].GPUImmediate {
		t.Errorf("coda immediate %g <= fifo %g",
			byName["coda"].GPUImmediate, byName["fifo"].GPUImmediate)
	}
	if byName["coda"].GPUOver10Min >= byName["fifo"].GPUOver10Min {
		t.Errorf("coda >10min %g >= fifo %g",
			byName["coda"].GPUOver10Min, byName["fifo"].GPUOver10Min)
	}
	// CPU jobs stay fast under every policy (within the paper's bands).
	for name, r := range byName {
		if r.CPUWithin3Min < 0.8 {
			t.Errorf("%s CPU within 3min = %g", name, r.CPUWithin3Min)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := comparison(t)
	if pts := CDFPoints(c.FIFO, "gpu"); len(pts) == 0 {
		t.Error("no GPU CDF points")
	}
	if pts := CDFPoints(c.FIFO, "cpu"); len(pts) == 0 {
		t.Error("no CPU CDF points")
	}
}

func TestFig12Shape(t *testing.T) {
	rows := Fig12(comparison(t))
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20 users", len(rows))
	}
	// CODA's P99 must beat FIFO's for a clear majority of users who
	// actually queue.
	better, worse := 0, 0
	for _, r := range rows {
		if r.FIFO == 0 && r.CODA == 0 {
			continue
		}
		if r.CODA <= r.FIFO {
			better++
		} else {
			worse++
		}
	}
	if better <= worse {
		t.Errorf("CODA better for %d users, worse for %d", better, worse)
	}
}

func TestFig13Shape(t *testing.T) {
	rows := Fig13(comparison(t))
	if len(rows) < 4 {
		t.Fatalf("rows = %d, want one per model (most of 8)", len(rows))
	}
	fasterRuns := 0
	for _, r := range rows {
		if r.FIFORun <= 0 || r.CODARun <= 0 {
			t.Errorf("%s: non-positive run times %v/%v", r.Model, r.FIFORun, r.CODARun)
		}
		if r.CODARun < r.FIFORun {
			fasterRuns++
		}
	}
	// "CODA reduces the queuing time and processing time of most jobs."
	if fasterRuns*2 < len(rows) {
		t.Errorf("CODA processing faster for only %d/%d representatives", fasterRuns, len(rows))
	}
}

func TestFig14Shape(t *testing.T) {
	res, err := Fig14(comparison(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram.Total() == 0 {
		t.Fatal("empty histogram")
	}
	// Most jobs under-request (76.1% ask 1-2 cores): the bulk must be
	// granted more cores; a solid minority (the >10-core requesters) fewer.
	if res.MoreTotal < 0.4 {
		t.Errorf("MoreTotal = %g, want the under-requesters adjusted up", res.MoreTotal)
	}
	if res.FewerTotal < 0.08 {
		t.Errorf("FewerTotal = %g, want the over-requesters slimmed", res.FewerTotal)
	}
	sum := res.MoreTotal + res.FewerTotal + res.Unchanged
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %g", sum)
	}
}

func TestSec6EShape(t *testing.T) {
	res, err := Sec6E(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Throttles == 0 {
		t.Log("no throttles at this scale (hogs are 0.5% of CPU jobs); queue comparison still valid")
	}
	if res.UtilWithEliminator <= 0 {
		t.Errorf("UtilWithEliminator = %g", res.UtilWithEliminator)
	}
	// At the paper's 0.5% density the effect sits inside noise; disabling
	// the eliminator must still never clearly help utilization.
	if res.UtilWithout > res.UtilWithEliminator+0.02 {
		t.Errorf("eliminator hurt: with=%g without=%g", res.UtilWithEliminator, res.UtilWithout)
	}
	// At the 5% stress density the eliminator's benefit must be visible
	// ("If more CPU jobs ... have higher memory bandwidth requirements,
	// the performance is worse without the contention eliminator", §VI-E).
	if res.StressThrottles == 0 {
		t.Error("stress run never throttled")
	}
	if res.StressUtilWith <= res.StressUtilWithout {
		t.Errorf("stress: eliminator did not help: with=%g without=%g",
			res.StressUtilWith, res.StressUtilWithout)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 models", len(rows))
	}
	for _, r := range rows {
		if r.ProfilingSteps < 1 || r.ProfilingSteps > 4 {
			t.Errorf("%s: %d profiling steps, want 1-4", r.Model, r.ProfilingSteps)
		}
		if r.TrainingIterations <= 0 {
			t.Errorf("%s: %d iterations", r.Model, r.TrainingIterations)
		}
		if r.PaperSteps == 0 || r.PaperIterations == 0 {
			t.Errorf("%s: missing paper reference", r.Model)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	pts, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// 8 models x 2 configs x 14 core counts.
	if len(pts) != 8*2*14 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.GPUUtil < 0 || p.GPUUtil > 1 || p.Speed <= 0 || p.Speed > 1 {
			t.Errorf("%+v out of range", p)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	rows, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8*4*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OptimalCores < 1 {
			t.Errorf("%+v", r)
		}
		if r.Config == "2N8G" && r.OptimalCores > 2 {
			t.Errorf("multi-node optimum = %d for %s", r.OptimalCores, r.Model)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8*3*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BandwidthGBs < 0 {
			t.Errorf("%+v", r)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	pts, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string]map[string]map[int]float64{}
	for _, p := range pts {
		if perf[p.Model] == nil {
			perf[p.Model] = map[string]map[int]float64{"bw": {}, "llc": {}}
		}
		perf[p.Model][p.Pressure][p.HeatThreads] = p.NormalizedPerf
	}
	// NLP models lose >= 50% at the heaviest bandwidth pressure.
	for _, m := range []string{"bat", "transformer"} {
		if got := perf[m]["bw"][32]; got > 0.5 {
			t.Errorf("%s at full pressure = %g, want <= 0.5", m, got)
		}
	}
	// Non-Alexnet CV models stay near 1.
	for _, m := range []string{"vgg16", "inception3", "resnet50"} {
		if got := perf[m]["bw"][32]; got < 0.9 {
			t.Errorf("%s at full pressure = %g, want insensitive", m, got)
		}
	}
	// Deepspeech more sensitive than Wavenet.
	if perf["deepspeech"]["bw"][32] >= perf["wavenet"]["bw"][32] {
		t.Error("deepspeech should degrade more than wavenet")
	}
	// LLC pressure is harmless for everyone.
	for m := range perf {
		if got := perf[m]["llc"][32]; got < 0.95 {
			t.Errorf("%s under LLC pressure = %g", m, got)
		}
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Scenario == "" || r.Model == "" {
			t.Errorf("%+v incomplete", r)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUActive.Len() < 24 {
		t.Fatalf("hourly samples = %d", res.CPUActive.Len())
	}
	if res.DiurnalRatio < 1.2 {
		t.Errorf("DiurnalRatio = %g, want a visible diurnal swing", res.DiurnalRatio)
	}
	if !res.GPUAboveCPU {
		t.Error("GPU utilization should exceed CPU utilization (Fig. 1)")
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Stats.ReqCores12-0.761) > 0.07 {
		t.Errorf("ReqCores12 = %g", res.Stats.ReqCores12)
	}
	if res.GPUOver10Min <= 0 {
		t.Errorf("GPUOver10Min = %g, want queueing under FIFO", res.GPUOver10Min)
	}
}

func TestHourlyCPUArrivals(t *testing.T) {
	bins, err := HourlyCPUArrivals(testScale())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b
	}
	if total != testScale().CPUJobs {
		t.Errorf("binned %d arrivals, want %d", total, testScale().CPUJobs)
	}
}

func TestAblations(t *testing.T) {
	res, err := AblationAdaptiveAllocation(testScale())
	if err != nil {
		t.Fatal(err)
	}
	// Without adaptive allocation, utilization must drop toward baseline.
	if res.AblatedUtil >= res.FullUtil {
		t.Errorf("adaptive allocation off: util %g >= full %g", res.AblatedUtil, res.FullUtil)
	}
	reb, err := AblationRebalance(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if reb.FullUtil <= 0 || reb.AblatedUtil <= 0 {
		t.Errorf("rebalance ablation = %+v", reb)
	}
}

func TestAblationNstartSeeding(t *testing.T) {
	res, err := AblationNstartSeeding(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.SeededSteps <= 0 || res.FixedSteps <= 0 {
		t.Fatalf("steps = %+v", res)
	}
	// History seeding must not be slower than cold starts.
	if res.SeededSteps > res.FixedSteps+0.5 {
		t.Errorf("seeded %g steps vs fixed %g", res.SeededSteps, res.FixedSteps)
	}
}
