package experiments

import (
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/perfmodel"
	"github.com/coda-repro/coda/internal/runner"
	"github.com/coda-repro/coda/internal/sim"
)

// AblationResult compares full CODA against one disabled design choice.
type AblationResult struct {
	// Name identifies the ablation.
	Name string
	// FullUtil / AblatedUtil are mean GPU utilizations; FullImmediate /
	// AblatedImmediate are the fractions of GPU jobs starting instantly.
	FullUtil, AblatedUtil           float64
	FullImmediate, AblatedImmediate float64
}

// ablate runs one CODA variant against the cached full-CODA run.
func ablate(sc Scale, name string, cfg core.Config) (AblationResult, error) {
	c, err := RunComparison(sc)
	if err != nil {
		return AblationResult{}, err
	}
	variant, err := RunCODAVariant(sc, cfg)
	if err != nil {
		return AblationResult{}, err
	}
	full := c.CODA
	return AblationResult{
		Name:             name,
		FullUtil:         sim.WindowMean(&full.GPUUtilSeries, full.LastArrival),
		AblatedUtil:      sim.WindowMean(&variant.GPUUtilSeries, variant.LastArrival),
		FullImmediate:    full.GPUQueue.FractionAtMost(0),
		AblatedImmediate: variant.GPUQueue.FractionAtMost(0),
	}, nil
}

// AblationAdaptiveAllocation disables the adaptive CPU allocator (jobs run
// with the cores their owners requested), isolating its contribution to
// GPU utilization (DESIGN.md ablation index).
func AblationAdaptiveAllocation(sc Scale) (AblationResult, error) {
	cfg := core.DefaultConfig()
	cfg.DisableAdaptiveAllocation = true
	return ablate(sc, "adaptive-allocation-off", cfg)
}

// AblationRebalance freezes the multi-array resource split at its initial
// configuration, isolating the history-driven rebalance.
func AblationRebalance(sc Scale) (AblationResult, error) {
	cfg := core.DefaultConfig()
	cfg.RebalanceEvery = 0
	return ablate(sc, "rebalance-off", cfg)
}

// AblationPreemption disables cross-array preemption: CPU jobs that
// borrowed reserve cores keep them until completion, so arriving GPU jobs
// must wait (isolates §V-C's reclaim mechanism).
func AblationPreemption(sc Scale) (AblationResult, error) {
	cfg := core.DefaultConfig()
	cfg.DisablePreemption = true
	return ablate(sc, "preemption-off", cfg)
}

// ThresholdPoint is one setting of the eliminator-threshold sweep.
type ThresholdPoint struct {
	// Threshold is the node bandwidth-utilization trigger.
	Threshold float64
	// GPUUtil is the mean GPU utilization; Interventions counts throttles.
	GPUUtil       float64
	Interventions int
}

// EliminatorThresholdMatrix declares the threshold sweep: one cell per
// threshold, all replaying the same hog-heavy trace.
func EliminatorThresholdMatrix(sc Scale, thresholds []float64) (*runner.Matrix, error) {
	jobs, err := hogHeavyTrace(sc)
	if err != nil {
		return nil, err
	}
	opts := sc.simOptions()
	m := &runner.Matrix{}
	for _, th := range thresholds {
		cfg := core.DefaultConfig()
		cfg.Eliminator.Threshold = th
		cfg.Eliminator.Release = th * 0.8
		m.Add(sim.RunSpec{
			Name:         fmt.Sprintf("threshold=%g", th),
			Options:      opts,
			Jobs:         jobs,
			NewScheduler: newCODA(cfg, opts.Cluster),
		})
	}
	return m, nil
}

// AblationEliminatorThreshold sweeps the eliminator's bandwidth threshold
// around the paper's 75% default (§V-D), with an elevated hog fraction so
// the eliminator matters. Lower thresholds throttle CPU jobs more
// aggressively; higher ones let contention through.
func AblationEliminatorThreshold(sc Scale, thresholds []float64) ([]ThresholdPoint, error) {
	m, err := EliminatorThresholdMatrix(sc, thresholds)
	if err != nil {
		return nil, err
	}
	results, err := runMatrix(m)
	if err != nil {
		return nil, err
	}
	pts := make([]ThresholdPoint, 0, len(results))
	for i, res := range results {
		pts = append(pts, ThresholdPoint{
			Threshold:     thresholds[i],
			GPUUtil:       sim.WindowMean(&res.GPUUtilSeries, res.LastArrival),
			Interventions: res.Throttles,
		})
	}
	return pts, nil
}

// hogHeavyTrace generates the scale's trace with 5% bandwidth hogs (10x
// the paper's density) so contention effects are measurable at any scale.
func hogHeavyTrace(sc Scale) ([]*job.Job, error) {
	cfg := sc.traceConfig()
	cfg.HogFraction = 0.05
	return traceGenerate(cfg)
}

// NstartAblationResult compares history-seeded against fixed-seed Nstart.
type NstartAblationResult struct {
	// SeededSteps and FixedSteps are the mean profiling-step counts with
	// history seeding on and off.
	SeededSteps, FixedSteps float64
}

// AblationNstartSeeding measures how much the owner-history seed shortens
// the allocator's search: a tenant submits the same model repeatedly; the
// second and later jobs should settle in fewer profiling steps than a
// fresh allocator would need.
func AblationNstartSeeding(seed int64) (NstartAblationResult, error) {
	model, err := perfmodel.Lookup("alexnet")
	if err != nil {
		return NstartAblationResult{}, err
	}
	opts := sim.DefaultOptions()
	opts.Cluster.Nodes = 2
	opts.Seed = seed

	// Five sequential jobs from the same tenant, spaced far apart so each
	// finishes before the next arrives.
	makeJobs := func() []*job.Job {
		jobs := make([]*job.Job, 5)
		for i := range jobs {
			jobs[i] = &job.Job{
				ID: job.ID(i + 1), Kind: job.KindGPUTraining, Tenant: 1,
				Category: model.Category, Model: model.Name,
				Request: job.Request{CPUCores: 2, GPUs: 1, Nodes: 1},
				Arrival: time.Duration(i) * 3 * time.Hour,
				Work:    time.Hour,
			}
		}
		return jobs
	}

	run := func(cfg core.Config) (float64, error) {
		coda, err := core.New(cfg, opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
		if err != nil {
			return 0, err
		}
		simulator, err := sim.New(opts, coda, makeJobs())
		if err != nil {
			return 0, err
		}
		if _, err := simulator.Run(); err != nil {
			return 0, err
		}
		// Average the later jobs' step counts (job 1 has no history either
		// way).
		sum, n := 0, 0
		for id := job.ID(2); id <= 5; id++ {
			if steps, ok := coda.Allocator().ProfileSteps(id); ok {
				sum += steps
				n++
			}
		}
		if n == 0 {
			return 0, nil
		}
		return float64(sum) / float64(n), nil
	}

	seeded, err := run(core.DefaultConfig())
	if err != nil {
		return NstartAblationResult{}, err
	}
	// Fixed seeding: simulate "no history" by running each job in its own
	// scheduler instance (fresh log every time).
	fixedSum, fixedN := 0.0, 0
	for i := 0; i < 4; i++ {
		coda, err := core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
		if err != nil {
			return NstartAblationResult{}, err
		}
		j := &job.Job{
			ID: 1, Kind: job.KindGPUTraining, Tenant: 1,
			Category: model.Category, Model: model.Name,
			Request: job.Request{CPUCores: 2, GPUs: 1, Nodes: 1},
			Work:    time.Hour,
		}
		o := opts
		o.Seed = seed + int64(i)
		simulator, err := sim.New(o, coda, []*job.Job{j})
		if err != nil {
			return NstartAblationResult{}, err
		}
		if _, err := simulator.Run(); err != nil {
			return NstartAblationResult{}, err
		}
		if steps, ok := coda.Allocator().ProfileSteps(1); ok {
			fixedSum += float64(steps)
			fixedN++
		}
	}
	res := NstartAblationResult{SeededSteps: seeded}
	if fixedN > 0 {
		res.FixedSteps = fixedSum / float64(fixedN)
	}
	return res, nil
}
