package experiments

import (
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/metrics"
	"github.com/coda-repro/coda/internal/perfmodel"
	"github.com/coda-repro/coda/internal/runner"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

// peakWindow is the daily demand peak: the diurnal arrival pattern tops
// out around midday, so these are the hours "when the jobs queue up for
// the resource allocation" (Fig. 10's framing). Using identical wall-clock
// windows for every scheduler keeps the comparison apples-to-apples even
// though CODA rarely has a queue at all.
const (
	peakStartHour = 10
	peakEndHour   = 17
)

// peakMean averages a series over daily peak-hour samples.
func peakMean(s *metrics.Series, cutoff time.Duration) float64 {
	sum, n := 0.0, 0
	for i := 0; i < s.Len(); i++ {
		t, v := s.At(i)
		if t > cutoff {
			break
		}
		hour := int(t/time.Hour) % 24
		if hour >= peakStartHour && hour < peakEndHour {
			sum += v
			n++
		}
	}
	if n == 0 {
		return sim.WindowMean(s, cutoff)
	}
	return sum / float64(n)
}

// Fig10Row compares one scheduler's headline rates against the paper.
type Fig10Row struct {
	// Scheduler is the policy.
	Scheduler string
	// ActiveRate is the mean GPU active rate while GPU jobs queue (the
	// paper's framing); Util is the unconditional mean GPU utilization;
	// FragRate is the mean fragmentation rate while GPU jobs queue.
	ActiveRate, Util, FragRate float64
	// PaperActive, PaperUtil and PaperFrag are the published values
	// (§VI-B, §VI-C).
	PaperActive, PaperUtil, PaperFrag float64
}

// Fig10 reproduces Fig. 10 and §VI-C's fragmentation comparison.
func Fig10(c *Comparison) []Fig10Row {
	row := func(r *sim.Result, pa, pu, pf float64) Fig10Row {
		return Fig10Row{
			Scheduler:   r.Scheduler,
			ActiveRate:  peakMean(&r.GPUActive, r.LastArrival),
			Util:        sim.WindowMean(&r.GPUUtilSeries, r.LastArrival),
			FragRate:    peakMean(&r.FragSeries, r.LastArrival),
			PaperActive: pa, PaperUtil: pu, PaperFrag: pf,
		}
	}
	return []Fig10Row{
		row(c.FIFO, 0.835, 0.454, 0.143),
		row(c.DRF, 0.833, 0.447, 0.146),
		row(c.CODA, 0.912, 0.621, 0.01),
	}
}

// Fig11Row is one scheduler's queueing-time distribution.
type Fig11Row struct {
	// Scheduler is the policy.
	Scheduler string
	// GPUOver10Min / GPUOver1Hour are fractions of GPU jobs queueing past
	// those marks; GPUImmediate is the fraction starting without queueing;
	// CPUWithin10s / CPUWithin3Min are the CPU-job fractions.
	GPUOver10Min, GPUOver1Hour, GPUImmediate float64
	CPUWithin10s, CPUWithin3Min              float64
	// Paper columns where §VI-C reports them (negative = not reported).
	PaperGPUOver10Min, PaperGPUOver1Hour, PaperGPUImmediate float64
	PaperCPUWithin10s, PaperCPUWithin3Min                   float64
}

// Fig11 reproduces the queueing-time CDF milestones of Fig. 11 / §VI-C.
func Fig11(c *Comparison) []Fig11Row {
	row := func(r *sim.Result) Fig11Row {
		return Fig11Row{
			Scheduler:     r.Scheduler,
			GPUOver10Min:  r.GPUQueue.FractionAbove(10 * time.Minute),
			GPUOver1Hour:  r.GPUQueue.FractionAbove(time.Hour),
			GPUImmediate:  r.GPUQueue.FractionAtMost(0),
			CPUWithin10s:  r.CPUQueue.FractionAtMost(10 * time.Second),
			CPUWithin3Min: r.CPUQueue.FractionAtMost(3 * time.Minute),
		}
	}
	fifo := row(c.FIFO)
	fifo.PaperGPUOver10Min, fifo.PaperGPUOver1Hour = 0.431, 0.278
	fifo.PaperCPUWithin10s = 0.874
	fifo.PaperGPUImmediate, fifo.PaperCPUWithin3Min = -1, -1
	drf := row(c.DRF)
	drf.PaperGPUOver10Min, drf.PaperGPUOver1Hour = 0.289, 0.143
	drf.PaperCPUWithin10s = 0.878
	drf.PaperGPUImmediate, drf.PaperCPUWithin3Min = -1, -1
	coda := row(c.CODA)
	coda.PaperGPUImmediate = 0.921
	coda.PaperCPUWithin3Min = 0.945
	coda.PaperGPUOver10Min, coda.PaperGPUOver1Hour, coda.PaperCPUWithin10s = -1, -1, -1
	return []Fig11Row{fifo, drf, coda}
}

// CDFPoints exposes a scheduler's full queueing-time CDF for plotting
// (Fig. 11's curves). class is "gpu" or "cpu".
func CDFPoints(r *sim.Result, class string) []metrics.CDFPoint {
	if class == "cpu" {
		return r.CPUQueue.Points()
	}
	return r.GPUQueue.Points()
}

// Fig12Row is one tenant's 99th-percentile queueing time per scheduler.
type Fig12Row struct {
	// User is the tenant ID (1-20).
	User int
	// FIFO, DRF and CODA are the P99 queueing times.
	FIFO, DRF, CODA time.Duration
}

// Fig12 reproduces the per-user 99%-ile queueing times of Fig. 12.
func Fig12(c *Comparison) []Fig12Row {
	rows := make([]Fig12Row, 0, trace.NumTenants)
	for user := 1; user <= trace.NumTenants; user++ {
		rows = append(rows, Fig12Row{
			User: user,
			FIFO: c.FIFO.PerTenant.Percentile(user, 99),
			DRF:  c.DRF.PerTenant.Percentile(user, 99),
			CODA: c.CODA.PerTenant.Percentile(user, 99),
		})
	}
	return rows
}

// Fig13Row is one representative GPU job's end-to-end latency split.
type Fig13Row struct {
	// Model identifies the representative job (largest completed job of
	// each model in the trace).
	Model string
	// FIFOQueue/FIFORun and CODAQueue/CODARun split the end-to-end latency.
	FIFOQueue, FIFORun time.Duration
	CODAQueue, CODARun time.Duration
}

// Fig13 reproduces Fig. 13: per-representative-job queueing and processing
// time under FIFO vs CODA. The representative for each model is the
// longest-work 1N1G job that completed under both schedulers.
func Fig13(c *Comparison) []Fig13Row {
	best := make(map[string]job.ID)
	for id, js := range c.FIFO.Jobs {
		j := js.Job
		if !j.IsGPU() || j.Request.Nodes != 1 || j.Request.GPUs != 1 {
			continue
		}
		if !js.Completed {
			continue
		}
		codaJS, ok := c.CODA.Jobs[id]
		if !ok || !codaJS.Completed {
			continue
		}
		if cur, ok := best[j.Model]; !ok || j.Work > c.FIFO.Jobs[cur].Job.Work {
			best[j.Model] = id
		}
	}
	var rows []Fig13Row
	for _, model := range perfmodel.Names() {
		id, ok := best[model]
		if !ok {
			continue
		}
		f, d := c.FIFO.Jobs[id], c.CODA.Jobs[id]
		rows = append(rows, Fig13Row{
			Model:     model,
			FIFOQueue: f.QueueTime(),
			FIFORun:   f.EndToEnd() - f.QueueTime(),
			CODAQueue: d.QueueTime(),
			CODARun:   d.EndToEnd() - d.QueueTime(),
		})
	}
	return rows
}

// Fig14Result is the core-adjustment histogram of Fig. 14.
type Fig14Result struct {
	// More1to5 is the fraction of GPU jobs granted 1-5 more cores than
	// requested; Fewer1to20 the fraction granted 1-20 fewer; Unchanged the
	// rest near zero.
	More1to5, Fewer1to20, Unchanged float64
	// MoreTotal / FewerTotal are the full more/fewer fractions.
	MoreTotal, FewerTotal float64
	// PaperMore1to5 and PaperFewer1to20 are §VI-D's values.
	PaperMore1to5, PaperFewer1to20 float64
	// Histogram buckets the per-job delta (final - requested cores).
	Histogram *metrics.IntHistogram
}

// Fig14 reproduces Fig. 14: the distribution of CODA's core adjustments
// relative to the owners' requests.
func Fig14(c *Comparison) (Fig14Result, error) {
	hist, err := metrics.NewIntHistogram([]int{-20, -10, -5, -1, 0, 1, 2, 6, 11, 21})
	if err != nil {
		return Fig14Result{}, err
	}
	res := Fig14Result{PaperMore1to5: 0.571, PaperFewer1to20: 0.336, Histogram: hist}
	total := 0
	for _, js := range c.CODA.Jobs {
		if !js.Job.IsGPU() || !js.Started {
			continue
		}
		delta := js.FinalCores - js.Job.Request.CPUCores
		hist.Add(delta)
		total++
		switch {
		case delta >= 1 && delta <= 5:
			res.More1to5++
		case delta <= -1 && delta >= -20:
			res.Fewer1to20++
		}
		if delta > 0 {
			res.MoreTotal++
		}
		if delta < 0 {
			res.FewerTotal++
		}
	}
	if total > 0 {
		n := float64(total)
		res.More1to5 /= n
		res.Fewer1to20 /= n
		res.MoreTotal /= n
		res.FewerTotal /= n
		res.Unchanged = 1 - res.MoreTotal - res.FewerTotal
	}
	return res, nil
}

// Sec6EResult is the eliminator ablation of §VI-E.
type Sec6EResult struct {
	// UtilWithEliminator and UtilWithout are GPU utilizations while jobs
	// queue at the paper's 0.5% hog density; QueuedWith and QueuedWithout
	// are mean queued-job counts.
	UtilWithEliminator, UtilWithout float64
	QueuedWith, QueuedWithout       float64
	// Throttles counts eliminator interventions in the enabled run.
	Throttles int
	// StressUtilWith / StressUtilWithout and StressThrottles repeat the
	// ablation at a 5% hog density — §VI-E: "If more CPU jobs on the
	// cluster have higher memory bandwidth requirements, the performance
	// is worse without the contention eliminator."
	StressUtilWith, StressUtilWithout float64
	StressThrottles                   int
	// PaperUtilDrop is §VI-E's 2.3% utilization loss; PaperQueueFactor is
	// the reported doubling of queued tasks.
	PaperUtilDrop, PaperQueueFactor float64
}

// Sec6EMatrix declares the eliminator ablation's three extra runs (the
// eliminator-on baseline comes from the cached comparison): eliminator off
// on the scale's trace, then eliminator on and off on the 5% hog-density
// stress trace, in that cell order.
func Sec6EMatrix(sc Scale) (*runner.Matrix, error) {
	offCfg := core.DefaultConfig()
	offCfg.DisableEliminator = true
	jobs, err := sc.generate()
	if err != nil {
		return nil, err
	}
	stressJobs, err := hogHeavyTrace(sc)
	if err != nil {
		return nil, err
	}
	opts := sc.simOptions()
	m := &runner.Matrix{}
	m.Add(sim.RunSpec{Name: "eliminator-off", Options: opts, Jobs: jobs, NewScheduler: newCODA(offCfg, opts.Cluster)})
	m.Add(sim.RunSpec{Name: "stress-on", Options: opts, Jobs: stressJobs, NewScheduler: newCODA(core.DefaultConfig(), opts.Cluster)})
	m.Add(sim.RunSpec{Name: "stress-off", Options: opts, Jobs: stressJobs, NewScheduler: newCODA(offCfg, opts.Cluster)})
	return m, nil
}

// Sec6E reproduces §VI-E: disabling the contention eliminator costs GPU
// utilization and inflates the queue, at the paper's 0.5% hog density and
// at a 5% stress density.
func Sec6E(sc Scale) (Sec6EResult, error) {
	c, err := RunComparison(sc)
	if err != nil {
		return Sec6EResult{}, err
	}
	on := c.CODA

	m, err := Sec6EMatrix(sc)
	if err != nil {
		return Sec6EResult{}, err
	}
	results, err := runMatrix(m)
	if err != nil {
		return Sec6EResult{}, err
	}
	off, stressOn, stressOff := results[0], results[1], results[2]

	return Sec6EResult{
		UtilWithEliminator: peakMean(&on.GPUUtilSeries, on.LastArrival),
		UtilWithout:        peakMean(&off.GPUUtilSeries, off.LastArrival),
		QueuedWith:         sim.WindowMean(&on.QueuedGPU, on.LastArrival) + sim.WindowMean(&on.QueuedCPU, on.LastArrival),
		QueuedWithout:      sim.WindowMean(&off.QueuedGPU, off.LastArrival) + sim.WindowMean(&off.QueuedCPU, off.LastArrival),
		Throttles:          on.Throttles,
		StressUtilWith:     peakMean(&stressOn.GPUUtilSeries, stressOn.LastArrival),
		StressUtilWithout:  peakMean(&stressOff.GPUUtilSeries, stressOff.LastArrival),
		StressThrottles:    stressOn.Throttles,
		PaperUtilDrop:      0.023,
		PaperQueueFactor:   2.0,
	}, nil
}

// Table2Row is one model's tuning-overhead record (Table II).
type Table2Row struct {
	// Model identifies the benchmark.
	Model string
	// ProfilingSteps is the number of 90 s profiling steps used.
	ProfilingSteps int
	// TrainingIterations is how many iterations ran during profiling.
	TrainingIterations int
	// PaperSteps and PaperIterations are Table II's values.
	PaperSteps, PaperIterations int
}

// table2Paper holds Table II's published numbers.
var table2Paper = map[string]struct{ steps, iters int }{
	"alexnet":     {4, 260},
	"vgg16":       {4, 70},
	"inception3":  {3, 180},
	"resnet50":    {3, 150},
	"bat":         {4, 35},
	"transformer": {3, 260},
	"wavenet":     {3, 28},
	"deepspeech":  {3, 45},
}

// Table2 reproduces Table II: for each model, run a single 1N1G training
// job under CODA on an idle cluster and report the profiling-step count
// and the training iterations completed during profiling.
func Table2(seed int64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range perfmodel.Names() {
		model, err := perfmodel.Lookup(name)
		if err != nil {
			return nil, err
		}
		opts := sim.DefaultOptions()
		opts.Cluster.Nodes = 1
		opts.Seed = seed
		coda, err := core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
		if err != nil {
			return nil, err
		}
		j := &job.Job{
			ID: 1, Kind: job.KindGPUTraining, Tenant: 1,
			Category: model.Category, Model: name,
			Request: job.Request{CPUCores: 2, GPUs: 1, Nodes: 1},
			Work:    2 * time.Hour,
		}
		simulator, err := sim.New(opts, coda, []*job.Job{j})
		if err != nil {
			return nil, err
		}
		if _, err := simulator.Run(); err != nil {
			return nil, err
		}
		steps, ok := coda.Allocator().ProfileSteps(1)
		if !ok {
			return nil, fmt.Errorf("experiments: %s never settled", name)
		}
		iterTime, err := model.IterTime(perfmodel.Config{Nodes: 1, GPUs: 1}, 0)
		if err != nil {
			return nil, err
		}
		profiling := time.Duration(steps) * core.DefaultAllocatorConfig().ProfileStep
		paper := table2Paper[name]
		rows = append(rows, Table2Row{
			Model:              name,
			ProfilingSteps:     steps,
			TrainingIterations: int(profiling / iterTime),
			PaperSteps:         paper.steps,
			PaperIterations:    paper.iters,
		})
	}
	return rows, nil
}
