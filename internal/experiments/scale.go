// Package experiments regenerates every table and figure of the paper's
// evaluation (§III characterization and §VI evaluation). Each experiment
// returns typed rows carrying both the measured value and the paper's
// reported value so reports can print paper-vs-measured side by side.
//
// The headline comparison (Figs. 10-14, §VI-C, §VI-E) replays one
// synthetic trace under FIFO, DRF and CODA on the same simulated cluster.
// Experiments accept a Scale so tests and benchmarks can run shrunken
// traces while cmd/coda-bench reproduces the full month.
package experiments

import (
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

// Scale sizes an experiment's trace and cluster. The paper's operating
// point is 30 days, 75,000 CPU jobs and 25,000 GPU jobs on 80 nodes; the
// job-to-day ratio must stay near the paper's for load realism.
type Scale struct {
	// Seed drives trace generation and simulation noise.
	Seed int64
	// Days is the trace duration.
	Days float64
	// CPUJobs and GPUJobs are the job counts.
	CPUJobs, GPUJobs int
	// Nodes is the cluster size (cores/GPUs per node stay at the paper's).
	Nodes int
}

// FullScale is the paper's one-month operating point.
func FullScale() Scale {
	return Scale{Seed: 1, Days: 30, CPUJobs: 75000, GPUJobs: 25000, Nodes: 80}
}

// SmallScale is a 3-day replay at the same load (for local runs).
func SmallScale() Scale {
	return Scale{Seed: 1, Days: 3, CPUJobs: 7500, GPUJobs: 2500, Nodes: 80}
}

// TinyScale is a 1-day replay (for tests and benchmarks).
func TinyScale() Scale {
	return Scale{Seed: 1, Days: 1, CPUJobs: 2500, GPUJobs: 833, Nodes: 80}
}

// WarehouseScale is the operating point the streaming intake exists for: a
// 5,000-node warehouse serving a million jobs in a simulated week, the
// same arrival rate as the paper's month scaled ~40x. Only the streaming
// specs (BenchSpec, MemGateSpec) are viable here — materializing the trace
// or keeping per-job history is exactly the O(jobs) memory the refactor
// removed. The documented ceiling of the same shape is the 25M-job month:
// Days 30, CPUJobs 18,750,000, GPUJobs 6,250,000.
func WarehouseScale() Scale {
	return Scale{Seed: 1, Days: 7, CPUJobs: 750_000, GPUJobs: 250_000, Nodes: 5000}
}

// Validate checks the scale.
func (s Scale) Validate() error {
	if s.Days <= 0 {
		return fmt.Errorf("experiments: days must be positive, got %g", s.Days)
	}
	if s.CPUJobs < 0 || s.GPUJobs <= 0 {
		return fmt.Errorf("experiments: bad job counts (%d cpu, %d gpu)", s.CPUJobs, s.GPUJobs)
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("experiments: nodes must be positive, got %d", s.Nodes)
	}
	return nil
}

// Duration returns the trace span.
func (s Scale) Duration() time.Duration {
	return time.Duration(s.Days * float64(24) * float64(time.Hour))
}

// traceConfig builds the generator configuration.
func (s Scale) traceConfig() trace.Config {
	cfg := trace.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.Duration = s.Duration()
	cfg.CPUJobs = s.CPUJobs
	cfg.GPUJobs = s.GPUJobs
	return cfg
}

// clusterConfig builds the cluster shape.
func (s Scale) clusterConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = s.Nodes
	return cfg
}

// simOptions builds the simulation options.
func (s Scale) simOptions() sim.Options {
	opts := sim.DefaultOptions()
	opts.Cluster = s.clusterConfig()
	opts.Seed = s.Seed + 1000
	opts.SampleInterval = 10 * time.Minute
	// Bound the drain tail: four extra days covers the longest jobs even
	// under heavy slowdown.
	opts.MaxVirtualTime = s.Duration() + 4*24*time.Hour
	return opts
}

// generate builds the trace for this scale.
func (s Scale) generate() ([]*job.Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return trace.Generate(s.traceConfig())
}

// traceGenerate is a seam for experiments that tweak the trace config.
func traceGenerate(cfg trace.Config) ([]*job.Job, error) {
	return trace.Generate(cfg)
}
