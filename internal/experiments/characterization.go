package experiments

import (
	"time"

	"github.com/coda-repro/coda/internal/perfmodel"
)

// Fig3Point is one operating point of Fig. 3's sweep: GPU utilization and
// normalized training speed for a model × configuration × core count.
type Fig3Point struct {
	// Model and Config identify the curve; Cores is the x-axis.
	Model  string
	Config string
	Cores  int
	// GPUUtil and Speed are the y-axes.
	GPUUtil, Speed float64
}

// Fig3 sweeps GPU utilization and training speed against the allocated
// core count for every Table I model under 1N1G and 1N4G, reproducing
// Fig. 3's curves.
func Fig3() ([]Fig3Point, error) {
	configs := []perfmodel.Config{
		{Nodes: 1, GPUs: 1},
		{Nodes: 1, GPUs: 4},
	}
	var pts []Fig3Point
	for _, name := range perfmodel.Names() {
		m, err := perfmodel.Lookup(name)
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			for cores := 1; cores <= 14; cores++ {
				util, err := m.GPUUtil(cfg, 0, cores, perfmodel.Contention{})
				if err != nil {
					return nil, err
				}
				speed, err := m.Speed(cfg, 0, cores, perfmodel.Contention{})
				if err != nil {
					return nil, err
				}
				pts = append(pts, Fig3Point{
					Model: name, Config: cfg.String(), Cores: cores,
					GPUUtil: util, Speed: speed,
				})
			}
		}
	}
	return pts, nil
}

// Fig5Row is one cell of Fig. 5's optimal-core-count table.
type Fig5Row struct {
	// Model and Config identify the cell; Batch distinguishes the default
	// and maximum batch sizes.
	Model  string
	Config string
	Batch  string // "default" or "max"
	// OptimalCores is the measured optimum.
	OptimalCores int
}

// Fig5 tabulates the optimal CPU core count per model × configuration ×
// batch size, reproducing Fig. 5.
func Fig5() ([]Fig5Row, error) {
	configs := []perfmodel.Config{
		{Nodes: 1, GPUs: 1},
		{Nodes: 1, GPUs: 2},
		{Nodes: 1, GPUs: 4},
		{Nodes: 2, GPUs: 8},
	}
	var rows []Fig5Row
	for _, name := range perfmodel.Names() {
		m, err := perfmodel.Lookup(name)
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			for _, batch := range []struct {
				label string
				size  int
			}{{"default", m.DefaultBatch}, {"max", m.MaxBatch}} {
				opt, err := m.OptimalCores(cfg, batch.size)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig5Row{
					Model: name, Config: cfg.String(), Batch: batch.label,
					OptimalCores: opt,
				})
			}
		}
	}
	return rows, nil
}

// Fig6Row is one cell of Fig. 6's memory-bandwidth-demand table.
type Fig6Row struct {
	// Model, Config and Batch identify the cell.
	Model  string
	Config string
	Batch  string
	// BandwidthGBs is the per-node demand at the optimal core count.
	BandwidthGBs float64
}

// Fig6 tabulates per-node memory-bandwidth demand at the optimal core
// count, reproducing Fig. 6.
func Fig6() ([]Fig6Row, error) {
	configs := []perfmodel.Config{
		{Nodes: 1, GPUs: 1},
		{Nodes: 1, GPUs: 2},
		{Nodes: 1, GPUs: 4},
	}
	var rows []Fig6Row
	for _, name := range perfmodel.Names() {
		m, err := perfmodel.Lookup(name)
		if err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			for _, batch := range []struct {
				label string
				size  int
			}{{"default", m.DefaultBatch}, {"max", m.MaxBatch}} {
				opt, err := m.OptimalCores(cfg, batch.size)
				if err != nil {
					return nil, err
				}
				bw, err := m.BandwidthDemand(cfg, batch.size, opt)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig6Row{
					Model: name, Config: cfg.String(), Batch: batch.label,
					BandwidthGBs: bw,
				})
			}
		}
	}
	return rows, nil
}

// Fig7Point is one operating point of Fig. 7's contention sweep.
type Fig7Point struct {
	// Model identifies the curve; HeatThreads is the pressure level;
	// Pressure is "bw" or "llc".
	Model       string
	Pressure    string
	HeatThreads int
	// NormalizedPerf is speed under contention / speed alone.
	NormalizedPerf float64
}

// heatThreadBandwidthGBs is the per-thread memory bandwidth the HEAT
// stand-in drives (a STREAM-like kernel saturates a DDR4 channel with a
// handful of threads).
const heatThreadBandwidthGBs = 5.0

// nodeBandwidthGBs mirrors the default node capacity.
const nodeBandwidthGBs = 120.0

// Fig7 sweeps every 1N1G model against rising HEAT pressure on memory
// bandwidth and on the LLC, reproducing Fig. 7: NLP models collapse by
// >=50%, Alexnet degrades, other CV models barely move, Deepspeech is more
// sensitive than Wavenet, and LLC pressure is harmless for all.
func Fig7() ([]Fig7Point, error) {
	cfg := perfmodel.Config{Nodes: 1, GPUs: 1}
	threadLevels := []int{0, 4, 8, 16, 24, 32}
	var pts []Fig7Point
	for _, name := range perfmodel.Names() {
		m, err := perfmodel.Lookup(name)
		if err != nil {
			return nil, err
		}
		opt, err := m.OptimalCores(cfg, 0)
		if err != nil {
			return nil, err
		}
		base, err := m.Speed(cfg, 0, opt, perfmodel.Contention{})
		if err != nil {
			return nil, err
		}
		selfBW, err := m.BandwidthDemand(cfg, 0, opt)
		if err != nil {
			return nil, err
		}
		for _, threads := range threadLevels {
			heat := float64(threads) * heatThreadBandwidthGBs
			c := perfmodel.Contention{BandwidthUtil: (selfBW + heat) / nodeBandwidthGBs}
			s, err := m.Speed(cfg, 0, opt, c)
			if err != nil {
				return nil, err
			}
			pts = append(pts, Fig7Point{
				Model: name, Pressure: "bw", HeatThreads: threads,
				NormalizedPerf: s / base,
			})
			// LLC pressure scales with thread count up to full occupancy.
			llc := perfmodel.Contention{LLCPressure: float64(threads) / 32}
			s, err = m.Speed(cfg, 0, opt, llc)
			if err != nil {
				return nil, err
			}
			pts = append(pts, Fig7Point{
				Model: name, Pressure: "llc", HeatThreads: threads,
				NormalizedPerf: s / base,
			})
		}
	}
	return pts, nil
}

// Table1Row is one model of Table I.
type Table1Row struct {
	// Model, Scenario and Type mirror the paper's columns.
	Model, Scenario, Type string
}

// Table1 reproduces Table I's benchmark catalog.
func Table1() []Table1Row {
	kind := map[string]Table1Row{
		"alexnet":     {Scenario: "CV", Type: "CNN"},
		"vgg16":       {Scenario: "CV", Type: "CNN"},
		"inception3":  {Scenario: "CV", Type: "CNN"},
		"resnet50":    {Scenario: "CV", Type: "CNN"},
		"bat":         {Scenario: "NLP", Type: "RNN"},
		"transformer": {Scenario: "NLP", Type: "-"},
		"wavenet":     {Scenario: "Speech", Type: "CNN"},
		"deepspeech":  {Scenario: "Speech", Type: "RNN"},
	}
	var rows []Table1Row
	for _, name := range perfmodel.Names() {
		r := kind[name]
		r.Model = name
		rows = append(rows, r)
	}
	return rows
}

// FormatDuration renders durations the way reports print them.
func FormatDuration(d time.Duration) string {
	return d.Truncate(time.Second).String()
}
