package experiments

import (
	"time"

	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
)

// StaticResult compares the static-partition policy of the paper's
// introduction (split all cores evenly across GPUs, §I citing Jeon et
// al.) against the cached FIFO and CODA runs.
type StaticResult struct {
	// GPUUtil and CPUActiveRate are the static policy's means; the paper's
	// complaint is CPU underutilization under static splits.
	GPUUtil, CPUActiveRate float64
	// GPUImmediate and CPUWithin3Min are its queueing milestones.
	GPUImmediate, CPUWithin3Min float64
	// CODAUtil and FIFOUtil come from the shared comparison for context.
	CODAUtil, FIFOUtil float64
}

// StaticBaseline replays the scale's trace under the static-partition
// policy.
func StaticBaseline(sc Scale) (StaticResult, error) {
	c, err := RunComparison(sc)
	if err != nil {
		return StaticResult{}, err
	}
	jobs, err := sc.generate()
	if err != nil {
		return StaticResult{}, err
	}
	opts := sc.simOptions()
	s := sched.NewStatic(opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	simulator, err := sim.New(opts, s, jobs)
	if err != nil {
		return StaticResult{}, err
	}
	res, err := simulator.Run()
	if err != nil {
		return StaticResult{}, err
	}
	return StaticResult{
		GPUUtil:       sim.WindowMean(&res.GPUUtilSeries, res.LastArrival),
		CPUActiveRate: sim.WindowMean(&res.CPUActive, res.LastArrival),
		GPUImmediate:  res.GPUQueue.FractionAtMost(0),
		CPUWithin3Min: res.CPUQueue.FractionAtMost(3 * time.Minute),
		CODAUtil:      sim.WindowMean(&c.CODA.GPUUtilSeries, c.CODA.LastArrival),
		FIFOUtil:      sim.WindowMean(&c.FIFO.GPUUtilSeries, c.FIFO.LastArrival),
	}, nil
}
