package experiments

import (
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/runner"
	"github.com/coda-repro/coda/internal/sim"
)

// GeneralityRow is one scheduler's outcome on the heterogeneous cluster
// of §VI-G (GPU nodes plus dedicated CPU nodes).
type GeneralityRow struct {
	// Scheduler is the policy.
	Scheduler string
	// GPUUtil is the mean GPU utilization; GPUImmediate and CPUWithin3Min
	// are the queueing milestones.
	GPUUtil, GPUImmediate, CPUWithin3Min float64
}

// GeneralityMatrix declares §VI-G's replay: the scale's trace on a
// cluster extended by cpuOnlyNodes pure-CPU nodes, under FIFO, DRF and
// CODA in that cell order.
func GeneralityMatrix(sc Scale, cpuOnlyNodes int) (*runner.Matrix, error) {
	if cpuOnlyNodes < 0 {
		return nil, fmt.Errorf("experiments: negative cpu-only nodes %d", cpuOnlyNodes)
	}
	jobs, err := sc.generate()
	if err != nil {
		return nil, err
	}
	opts := sc.simOptions()
	opts.Cluster.CPUOnlyNodes = cpuOnlyNodes
	m := &runner.Matrix{}
	m.Add(sim.RunSpec{Name: "fifo", Options: opts, Jobs: jobs, NewScheduler: newFIFO()})
	m.Add(sim.RunSpec{Name: "drf", Options: opts, Jobs: jobs, NewScheduler: newDRF(opts.Cluster)})
	m.Add(sim.RunSpec{Name: "coda", Options: opts, Jobs: jobs, NewScheduler: newCODA(core.DefaultConfig(), opts.Cluster)})
	return m, nil
}

// Generality reproduces §VI-G: on a cluster of GPU nodes plus dedicated
// CPU-only nodes, CODA's multi-array scheduling keeps GPU and CPU jobs
// from disturbing each other while the baselines keep their §VI-B
// weaknesses. The cluster keeps the paper's 400 GPUs (the GPU-node count
// is unchanged) and adds cpuOnlyNodes pure-CPU nodes.
func Generality(sc Scale, cpuOnlyNodes int) ([]GeneralityRow, error) {
	m, err := GeneralityMatrix(sc, cpuOnlyNodes)
	if err != nil {
		return nil, err
	}
	results, err := runMatrix(m)
	if err != nil {
		return nil, err
	}
	rows := make([]GeneralityRow, 0, len(results))
	for _, res := range results {
		rows = append(rows, GeneralityRow{
			Scheduler:     res.Scheduler,
			GPUUtil:       sim.WindowMean(&res.GPUUtilSeries, res.LastArrival),
			GPUImmediate:  res.GPUQueue.FractionAtMost(0),
			CPUWithin3Min: res.CPUQueue.FractionAtMost(3 * time.Minute),
		})
	}
	return rows, nil
}
