package experiments

import (
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
)

// GeneralityRow is one scheduler's outcome on the heterogeneous cluster
// of §VI-G (GPU nodes plus dedicated CPU nodes).
type GeneralityRow struct {
	// Scheduler is the policy.
	Scheduler string
	// GPUUtil is the mean GPU utilization; GPUImmediate and CPUWithin3Min
	// are the queueing milestones.
	GPUUtil, GPUImmediate, CPUWithin3Min float64
}

// Generality reproduces §VI-G: on a cluster of GPU nodes plus dedicated
// CPU-only nodes, CODA's multi-array scheduling keeps GPU and CPU jobs
// from disturbing each other while the baselines keep their §VI-B
// weaknesses. The cluster keeps the paper's 400 GPUs (the GPU-node count
// is unchanged) and adds cpuOnlyNodes pure-CPU nodes.
func Generality(sc Scale, cpuOnlyNodes int) ([]GeneralityRow, error) {
	if cpuOnlyNodes < 0 {
		return nil, fmt.Errorf("experiments: negative cpu-only nodes %d", cpuOnlyNodes)
	}
	jobs, err := sc.generate()
	if err != nil {
		return nil, err
	}
	opts := sc.simOptions()
	opts.Cluster.CPUOnlyNodes = cpuOnlyNodes
	cc := opts.Cluster

	builders := []struct {
		name  string
		build func() (sched.Scheduler, error)
	}{
		{"fifo", func() (sched.Scheduler, error) { return sched.NewFIFO(), nil }},
		{"drf", func() (sched.Scheduler, error) {
			return sched.NewDRF(cc.TotalNodes()*cc.CoresPerNode, cc.Nodes*cc.GPUsPerNode)
		}},
		{"coda", func() (sched.Scheduler, error) {
			return core.NewForCluster(core.DefaultConfig(), cc)
		}},
	}

	var rows []GeneralityRow
	for _, b := range builders {
		s, err := b.build()
		if err != nil {
			return nil, err
		}
		simulator, err := sim.New(opts, s, cloneJobs(jobs))
		if err != nil {
			return nil, err
		}
		res, err := simulator.Run()
		if err != nil {
			return nil, err
		}
		rows = append(rows, GeneralityRow{
			Scheduler:     b.name,
			GPUUtil:       sim.WindowMean(&res.GPUUtilSeries, res.LastArrival),
			GPUImmediate:  res.GPUQueue.FractionAtMost(0),
			CPUWithin3Min: res.CPUQueue.FractionAtMost(3 * time.Minute),
		})
	}
	return rows, nil
}
