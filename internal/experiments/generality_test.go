package experiments

import "testing"

func TestGenerality(t *testing.T) {
	rows, err := Generality(testScale(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]GeneralityRow{}
	for _, r := range rows {
		byName[r.Scheduler] = r
	}
	// §VI-G: CODA's advantages persist on heterogeneous clusters.
	if byName["coda"].GPUUtil <= byName["fifo"].GPUUtil+0.05 {
		t.Errorf("coda util %g not clearly above fifo %g on the heterogeneous cluster",
			byName["coda"].GPUUtil, byName["fifo"].GPUUtil)
	}
	if byName["coda"].GPUImmediate <= byName["fifo"].GPUImmediate {
		t.Errorf("coda immediate %g <= fifo %g",
			byName["coda"].GPUImmediate, byName["fifo"].GPUImmediate)
	}
	// CPU jobs stay fast for everyone: the CPU nodes absorb them.
	for name, r := range byName {
		if r.CPUWithin3Min < 0.9 {
			t.Errorf("%s CPU within 3min = %g on the heterogeneous cluster", name, r.CPUWithin3Min)
		}
	}
}

func TestGeneralityValidation(t *testing.T) {
	if _, err := Generality(testScale(), -1); err == nil {
		t.Error("negative cpu-only nodes should fail")
	}
}

func TestAblationPreemption(t *testing.T) {
	res, err := AblationPreemption(testScale())
	if err != nil {
		t.Fatal(err)
	}
	// Disabling reclaims must not make GPU placement better.
	if res.AblatedImmediate > res.FullImmediate+0.02 {
		t.Errorf("preemption off improved immediacy: %g vs %g",
			res.AblatedImmediate, res.FullImmediate)
	}
}

func TestAblationEliminatorThreshold(t *testing.T) {
	pts, err := AblationEliminatorThreshold(testScale(), []float64{0.6, 0.75, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.GPUUtil <= 0 {
			t.Errorf("threshold %g: util %g", p.Threshold, p.GPUUtil)
		}
	}
	// A lower threshold can only throttle at least as often as a higher one.
	if pts[0].Interventions < pts[2].Interventions {
		t.Errorf("interventions not monotone: %d at 0.6 vs %d at 0.9",
			pts[0].Interventions, pts[2].Interventions)
	}
}

func TestStaticBaseline(t *testing.T) {
	res, err := StaticBaseline(testScale())
	if err != nil {
		t.Fatal(err)
	}
	// The static split wastes cores inside oversized GPU slices: CODA must
	// clearly beat it on utilization (§I's motivation).
	if res.CODAUtil <= res.GPUUtil+0.05 {
		t.Errorf("coda util %g not clearly above static %g", res.CODAUtil, res.GPUUtil)
	}
	if res.GPUUtil <= 0 {
		t.Errorf("static util = %g", res.GPUUtil)
	}
}
