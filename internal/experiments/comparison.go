package experiments

import (
	"fmt"
	"sync"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
)

// Comparison holds one trace replayed under all three schedulers.
type Comparison struct {
	// Scale is the operating point.
	Scale Scale
	// FIFO, DRF and CODA are the per-scheduler results.
	FIFO, DRF, CODA *sim.Result
}

// comparison runs are memoized per scale: Figs. 10-14 and §VI-C all read
// the same three runs.
var (
	compMu    sync.Mutex
	compCache = make(map[Scale]*Comparison)
)

// RunComparison replays the scale's trace under FIFO, DRF and CODA.
// Results are cached per scale for the life of the process.
func RunComparison(sc Scale) (*Comparison, error) {
	compMu.Lock()
	defer compMu.Unlock()
	if c, ok := compCache[sc]; ok {
		return c, nil
	}
	c, err := runComparison(sc)
	if err != nil {
		return nil, err
	}
	compCache[sc] = c
	return c, nil
}

func runComparison(sc Scale) (*Comparison, error) {
	jobs, err := sc.generate()
	if err != nil {
		return nil, err
	}
	opts := sc.simOptions()

	newCODA := func() (sched.Scheduler, error) {
		return core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	}
	newDRF := func() (sched.Scheduler, error) {
		return sched.NewDRF(opts.Cluster.Nodes*opts.Cluster.CoresPerNode, opts.Cluster.Nodes*opts.Cluster.GPUsPerNode)
	}
	newFIFO := func() (sched.Scheduler, error) { return sched.NewFIFO(), nil }

	// The three replays are independent (each gets its own cluster,
	// simulator and job clones), so they run concurrently. Results stay
	// deterministic: concurrency only overlaps wall-clock time.
	type outcome struct {
		res *sim.Result
		err error
	}
	run := func(build func() (sched.Scheduler, error), name string, out *outcome, done func()) {
		defer done()
		s, err := build()
		if err != nil {
			out.err = fmt.Errorf("%s run: %w", name, err)
			return
		}
		simulator, err := sim.New(opts, s, cloneJobs(jobs))
		if err != nil {
			out.err = fmt.Errorf("%s run: %w", name, err)
			return
		}
		out.res, out.err = simulator.Run()
		if out.err != nil {
			out.err = fmt.Errorf("%s run: %w", name, out.err)
		}
	}

	var fifo, drf, coda outcome
	var wg sync.WaitGroup
	wg.Add(3)
	go run(newFIFO, "fifo", &fifo, wg.Done)
	go run(newDRF, "drf", &drf, wg.Done)
	go run(newCODA, "coda", &coda, wg.Done)
	wg.Wait()

	for _, out := range []*outcome{&fifo, &drf, &coda} {
		if out.err != nil {
			return nil, out.err
		}
	}
	return &Comparison{Scale: sc, FIFO: fifo.res, DRF: drf.res, CODA: coda.res}, nil
}

// RunCODAVariant replays the scale's trace under a custom CODA
// configuration (used by the §VI-E ablation and the design-choice
// ablations). Not cached.
func RunCODAVariant(sc Scale, cfg core.Config) (*sim.Result, error) {
	jobs, err := sc.generate()
	if err != nil {
		return nil, err
	}
	opts := sc.simOptions()
	s, err := core.New(cfg, opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		return nil, err
	}
	simulator, err := sim.New(opts, s, jobs)
	if err != nil {
		return nil, err
	}
	return simulator.Run()
}
