package experiments

import (
	"context"
	"fmt"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/runner"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
)

// parallelism is the worker-pool width experiments hand to the runner when
// they execute a matrix; 0 means GOMAXPROCS. It is a plain variable read
// on the caller's goroutine (this package holds no locks): set it once at
// startup, before running experiments.
var parallelism int

// SetParallelism sets the worker-pool width for every experiment matrix;
// n <= 0 restores the GOMAXPROCS default. Call before experiments run.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism = n
}

// Parallelism returns the configured worker-pool width (0 = GOMAXPROCS).
func Parallelism() int { return parallelism }

// runMatrix executes a matrix with the package-wide parallelism.
func runMatrix(m *runner.Matrix) ([]*sim.Result, error) {
	return runner.Run(context.Background(), m, runner.Options{Parallel: parallelism})
}

// newFIFO, newDRF and newCODA are the scheduler recipes every comparison
// cell is built from. Each returns a factory suitable for sim.RunSpec.
func newFIFO() func() (sched.Scheduler, error) {
	return func() (sched.Scheduler, error) { return sched.NewFIFO(), nil }
}

func newDRF(cc cluster.Config) func() (sched.Scheduler, error) {
	return func() (sched.Scheduler, error) {
		return sched.NewDRF(cc.TotalNodes()*cc.CoresPerNode, cc.Nodes*cc.GPUsPerNode)
	}
}

func newCODA(cfg core.Config, cc cluster.Config) func() (sched.Scheduler, error) {
	return func() (sched.Scheduler, error) { return core.NewForCluster(cfg, cc) }
}

// Comparison holds one trace replayed under all three schedulers.
type Comparison struct {
	// Scale is the operating point.
	Scale Scale
	// FIFO, DRF and CODA are the per-scheduler results.
	FIFO, DRF, CODA *sim.Result
}

// ComparisonMatrix declares the headline three-scheduler replay for one
// scale: the same trace and simulation options under FIFO, DRF and CODA,
// in that cell order. Each cell deep-copies the trace on Add, so the runs
// share nothing.
func ComparisonMatrix(sc Scale) (*runner.Matrix, error) {
	jobs, err := sc.generate()
	if err != nil {
		return nil, err
	}
	opts := sc.simOptions()
	m := &runner.Matrix{}
	m.Add(sim.RunSpec{Name: "fifo", Options: opts, Jobs: jobs, NewScheduler: newFIFO()})
	m.Add(sim.RunSpec{Name: "drf", Options: opts, Jobs: jobs, NewScheduler: newDRF(opts.Cluster)})
	m.Add(sim.RunSpec{Name: "coda", Options: opts, Jobs: jobs, NewScheduler: newCODA(core.DefaultConfig(), opts.Cluster)})
	return m, nil
}

// comparison runs are memoized per scale: Figs. 10-14 and §VI-C all read
// the same three runs. The cache lives in a runner.Memo so this package
// stays free of sync primitives.
var comparisons runner.Memo[Scale, *Comparison]

// RunComparison replays the scale's trace under FIFO, DRF and CODA.
// Results are cached per scale for the life of the process.
func RunComparison(sc Scale) (*Comparison, error) {
	return comparisons.Do(sc, func() (*Comparison, error) {
		m, err := ComparisonMatrix(sc)
		if err != nil {
			return nil, err
		}
		results, err := runMatrix(m)
		if err != nil {
			return nil, err
		}
		return &Comparison{Scale: sc, FIFO: results[0], DRF: results[1], CODA: results[2]}, nil
	})
}

// MultiSeedComparison is the seed-sweep variant of the comparison: the
// same trace replayed under every scheduler at several simulation-noise
// seeds, aggregated per scheduler.
type MultiSeedComparison struct {
	// Scale is the operating point; Seeds are the simulation seeds run.
	Scale Scale
	Seeds []int64
	// FIFO, DRF and CODA aggregate each scheduler's runs across seeds.
	FIFO, DRF, CODA *sim.Merged
}

// MultiSeedComparisonMatrix declares the seed sweep: for each scheduler
// (FIFO, DRF, CODA — cell-major), one cell per seed. With R seeds, cells
// [0,R) are FIFO, [R,2R) DRF, [2R,3R) CODA.
func MultiSeedComparisonMatrix(sc Scale, seeds []int64) (*runner.Matrix, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: multi-seed comparison needs at least one seed")
	}
	jobs, err := sc.generate()
	if err != nil {
		return nil, err
	}
	opts := sc.simOptions()
	m := &runner.Matrix{}
	m.AddSeeds(sim.RunSpec{Name: "fifo", Options: opts, Jobs: jobs, NewScheduler: newFIFO()}, seeds...)
	m.AddSeeds(sim.RunSpec{Name: "drf", Options: opts, Jobs: jobs, NewScheduler: newDRF(opts.Cluster)}, seeds...)
	m.AddSeeds(sim.RunSpec{Name: "coda", Options: opts, Jobs: jobs, NewScheduler: newCODA(core.DefaultConfig(), opts.Cluster)}, seeds...)
	return m, nil
}

// RunMultiSeedComparison executes the seed sweep and merges each
// scheduler's runs. Not cached.
func RunMultiSeedComparison(sc Scale, seeds []int64) (*MultiSeedComparison, error) {
	m, err := MultiSeedComparisonMatrix(sc, seeds)
	if err != nil {
		return nil, err
	}
	results, err := runMatrix(m)
	if err != nil {
		return nil, err
	}
	r := len(seeds)
	fifo, err := sim.MergeResults(results[0:r])
	if err != nil {
		return nil, err
	}
	drf, err := sim.MergeResults(results[r : 2*r])
	if err != nil {
		return nil, err
	}
	coda, err := sim.MergeResults(results[2*r : 3*r])
	if err != nil {
		return nil, err
	}
	return &MultiSeedComparison{Scale: sc, Seeds: seeds, FIFO: fifo, DRF: drf, CODA: coda}, nil
}

// RunCODAVariant replays the scale's trace under a custom CODA
// configuration (used by the §VI-E ablation and the design-choice
// ablations). Not cached. The run executes on the calling goroutine — a
// single cell needs no pool.
func RunCODAVariant(sc Scale, cfg core.Config) (*sim.Result, error) {
	jobs, err := sc.generate()
	if err != nil {
		return nil, err
	}
	opts := sc.simOptions()
	spec := sim.RunSpec{Name: "coda-variant", Options: opts, Jobs: jobs, NewScheduler: newCODA(cfg, opts.Cluster)}
	return spec.Run()
}
