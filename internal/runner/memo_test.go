package runner_test

import (
	"errors"
	"sync"
	"testing"

	"github.com/coda-repro/coda/internal/runner"
)

func TestMemoBuildsOncePerKey(t *testing.T) {
	var m runner.Memo[string, int]
	builds := 0
	build := func() (int, error) { builds++; return builds * 10, nil }
	for i := 0; i < 3; i++ {
		v, err := m.Do("a", build)
		if err != nil || v != 10 {
			t.Fatalf("Do(a) = %d, %v; want 10, nil", v, err)
		}
	}
	if v, _ := m.Do("b", build); v != 20 {
		t.Fatalf("Do(b) = %d; want 20", v)
	}
	if builds != 2 {
		t.Fatalf("build ran %d times, want 2", builds)
	}
}

func TestMemoDoesNotCacheFailures(t *testing.T) {
	var m runner.Memo[int, string]
	calls := 0
	_, err := m.Do(1, func() (string, error) { calls++; return "", errors.New("nope") })
	if err == nil {
		t.Fatal("expected error")
	}
	v, err := m.Do(1, func() (string, error) { calls++; return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after failure: %q, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2", calls)
	}
}

// TestMemoConcurrent exercises the cache from many goroutines so the race
// detector can vet the locking; every caller must observe the one built
// value.
func TestMemoConcurrent(t *testing.T) {
	var m runner.Memo[int, int]
	builds := 0
	var wg sync.WaitGroup
	errs := make([]error, 16)
	vals := make([]int, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals[g], errs[g] = m.Do(7, func() (int, error) { builds++; return 77, nil })
		}(g)
	}
	wg.Wait()
	for g := 0; g < 16; g++ {
		if errs[g] != nil || vals[g] != 77 {
			t.Fatalf("goroutine %d: %d, %v", g, vals[g], errs[g])
		}
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
}
