package runner

import "sync"

// Memo is a mutex-guarded build-once cache. It exists so deterministic
// packages (internal/experiments memoizes its comparison runs) can keep
// process-wide caches that are safe to hit from concurrent tests without
// themselves importing sync — synchronization, like goroutines, stays
// confined to this package.
//
// The zero value is ready to use. Do holds the lock across build, so
// concurrent callers of the same key block until the first build finishes
// and then share its value; a failed build caches nothing.
type Memo[K comparable, V any] struct {
	mu   sync.Mutex
	vals map[K]V
}

// Do returns the cached value for key, building and caching it on first
// use.
func (m *Memo[K, V]) Do(key K, build func() (V, error)) (V, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.vals[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		var zero V
		return zero, err
	}
	if m.vals == nil {
		m.vals = make(map[K]V)
	}
	m.vals[key] = v
	return v, nil
}
