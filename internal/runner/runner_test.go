package runner_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/runner"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

// codaSpec builds a small but non-trivial CODA run spec: a 12-hour trace
// with enough jobs that scheduling decisions, preemptions and noise draws
// all happen.
func codaSpec(t *testing.T) sim.RunSpec {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 60, 20
	cfg.Duration = 12 * time.Hour
	cfg.Seed = 42
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.DefaultOptions()
	opts.Invariants = true
	// Make the runs seed-sensitive: AddSeeds re-seeds both the measurement
	// noise and the fault plan, and a rate-based plan compiles to a
	// different fault schedule per seed. Without this, different seeds can
	// legitimately produce identical schedules and the golden test could
	// not tell a real pass from a degenerate constant dump.
	opts.UtilNoise = 0.1
	opts.Faults = chaos.Plan{
		Seed:              1,
		Horizon:           cfg.Duration,
		NodeCrashesPerDay: 4,
		JobFailureProb:    0.05,
	}
	return sim.RunSpec{
		Name:    "coda",
		Options: opts,
		Jobs:    jobs,
		NewScheduler: func() (sched.Scheduler, error) {
			return core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
		},
	}
}

// seedMatrix fans one spec out across the golden-test seeds.
func seedMatrix(t *testing.T, seeds []int64) *runner.Matrix {
	t.Helper()
	m := &runner.Matrix{}
	m.AddSeeds(codaSpec(t), seeds...)
	return m
}

var goldenSeeds = []int64{3, 11, 27}

// TestParallelMatchesSequential is the determinism-under-concurrency
// golden test: the same three-seed matrix executed on a single worker and
// on eight workers must produce byte-identical per-run results — every
// series sample, CDF point and job lifecycle, bit for bit. It also checks
// the dump stays seed-sensitive, so a pass cannot come from a degenerate
// constant dump.
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := runner.Run(context.Background(), seedMatrix(t, goldenSeeds), runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := runner.Run(context.Background(), seedMatrix(t, goldenSeeds), runner.Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(goldenSeeds) || len(par) != len(goldenSeeds) {
		t.Fatalf("expected %d results, got %d sequential / %d parallel", len(goldenSeeds), len(seq), len(par))
	}
	dumps := make([]string, len(seq))
	for i := range seq {
		a, b := sim.DumpResult(seq[i]), sim.DumpResult(par[i])
		if a != b {
			t.Fatalf("seed %d: parallel run diverged from sequential at %s", goldenSeeds[i], sim.FirstDiff(a, b))
		}
		dumps[i] = a
	}
	if dumps[0] == dumps[1] {
		t.Error("different seeds produced identical runs; the dump is not sensitive enough")
	}
}

// TestRunResultsInMatrixOrder: results land at their matrix index
// regardless of completion order, and names follow the AddSeeds scheme.
func TestRunResultsInMatrixOrder(t *testing.T) {
	m := seedMatrix(t, goldenSeeds)
	wantNames := []string{"coda/seed=3", "coda/seed=11", "coda/seed=27"}
	for i, name := range m.Names() {
		if name != wantNames[i] {
			t.Errorf("cell %d named %q, want %q", i, name, wantNames[i])
		}
	}
	results, err := runner.Run(context.Background(), m, runner.Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("cell %d has no result", i)
		}
		// Each cell got its own seed, so each run is distinct.
		for j := i + 1; j < len(results); j++ {
			if sim.DumpResult(res) == sim.DumpResult(results[j]) {
				t.Errorf("cells %d and %d produced identical results despite different seeds", i, j)
			}
		}
	}
}

// failingSpec is a cell whose scheduler factory fails.
func failingSpec(t *testing.T, name string) sim.RunSpec {
	t.Helper()
	sp := codaSpec(t)
	sp.Name = name
	sp.NewScheduler = func() (sched.Scheduler, error) {
		return nil, errors.New("boom: " + name)
	}
	return sp
}

// TestRunFailFast: with one worker, a failing first cell stops the rest of
// the matrix from executing, and the error names the failed cell.
func TestRunFailFast(t *testing.T) {
	m := &runner.Matrix{}
	m.Add(failingSpec(t, "bad"))
	m.Add(codaSpec(t))
	m.Add(codaSpec(t))
	results, err := runner.Run(context.Background(), m, runner.Options{Parallel: 1})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), `run "bad"`) || !strings.Contains(err.Error(), "boom: bad") {
		t.Errorf("error does not identify the failed cell: %v", err)
	}
	for i, res := range results {
		if res != nil {
			t.Errorf("cell %d ran to completion after the matrix failed fast", i)
		}
	}
}

// TestRunErrorAggregation: cells that fail while already in flight all
// surface in the joined error, each wrapped with its cell name.
func TestRunErrorAggregation(t *testing.T) {
	m := &runner.Matrix{}
	m.Add(failingSpec(t, "bad-a"))
	m.Add(failingSpec(t, "bad-b"))
	_, err := runner.Run(context.Background(), m, runner.Options{Parallel: 1})
	if err == nil {
		t.Fatal("expected an error")
	}
	// With one worker, fail-fast guarantees at least the first failure is
	// reported; the second cell is drained, not run.
	if !strings.Contains(err.Error(), "bad-a") {
		t.Errorf("first failure missing from joined error: %v", err)
	}
}

// TestRunCancelledContext: a cancelled context stops the matrix before any
// cell runs and surfaces context.Canceled.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := runner.Run(ctx, seedMatrix(t, goldenSeeds), runner.Options{Parallel: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for i, res := range results {
		if res != nil {
			t.Errorf("cell %d ran despite pre-cancelled context", i)
		}
	}
}

// TestRunAllKeepsGoing: a failing cell in the middle of the matrix does not
// stop the surrounding cells — every cell gets either a result or an error,
// never both, and failures stay at their matrix index.
func TestRunAllKeepsGoing(t *testing.T) {
	m := &runner.Matrix{}
	m.Add(codaSpec(t))
	m.Add(failingSpec(t, "bad"))
	m.Add(codaSpec(t))
	results, errs := runner.RunAll(context.Background(), m, runner.Options{Parallel: 1})
	if len(results) != 3 || len(errs) != 3 {
		t.Fatalf("got %d results / %d errors, want 3 / 3", len(results), len(errs))
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Errorf("cell %d unexpectedly failed: %v", i, errs[i])
		}
		if results[i] == nil {
			t.Errorf("cell %d has no result despite the matrix continuing past the failure", i)
		}
	}
	if errs[1] == nil || results[1] != nil {
		t.Fatalf("failing cell: result=%v err=%v, want nil result and an error", results[1], errs[1])
	}
	if !strings.Contains(errs[1].Error(), `run "bad"`) || !strings.Contains(errs[1].Error(), "boom: bad") {
		t.Errorf("error does not identify the failed cell: %v", errs[1])
	}
}

// TestRunAllMatchesRun: on an all-healthy matrix, RunAll produces the same
// byte-identical results as Run.
func TestRunAllMatchesRun(t *testing.T) {
	seq, err := runner.Run(context.Background(), seedMatrix(t, goldenSeeds), runner.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	all, errs := runner.RunAll(context.Background(), seedMatrix(t, goldenSeeds), runner.Options{Parallel: 8})
	for i, e := range errs {
		if e != nil {
			t.Fatalf("cell %d failed: %v", i, e)
		}
	}
	for i := range seq {
		a, b := sim.DumpResult(seq[i]), sim.DumpResult(all[i])
		if a != b {
			t.Fatalf("seed %d: RunAll diverged from Run at %s", goldenSeeds[i], sim.FirstDiff(a, b))
		}
	}
}

// TestRunAllCancelledContext: a pre-cancelled context marks every cell with
// the context's error instead of leaving silent nil/nil holes.
func TestRunAllCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, errs := runner.RunAll(ctx, seedMatrix(t, goldenSeeds), runner.Options{Parallel: 2})
	for i := range results {
		if results[i] != nil {
			t.Errorf("cell %d ran despite pre-cancelled context", i)
		}
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("cell %d error = %v, want context.Canceled", i, errs[i])
		}
	}
}

// TestRunEmptyMatrix: an empty matrix succeeds with no results.
func TestRunEmptyMatrix(t *testing.T) {
	results, err := runner.Run(context.Background(), &runner.Matrix{}, runner.Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty matrix: results=%v err=%v", results, err)
	}
}

// TestMatrixAddIsolates: Add deep-copies the spec, so mutating the
// template after Add (options, fault plan, jobs) cannot perturb the cell.
func TestMatrixAddIsolates(t *testing.T) {
	template := codaSpec(t)
	m := &runner.Matrix{}
	m.Add(template)

	template.Options.Seed = 999
	template.Jobs[0].Work = 72 * time.Hour
	got := m.Spec(0)
	if got.Options.Seed == 999 {
		t.Error("cell shares Options with the template")
	}
	if got.Jobs[0].Work == 72*time.Hour {
		t.Error("cell shares job structs with the template")
	}
}
