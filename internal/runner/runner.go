// Package runner executes a Matrix of independent simulation runs across a
// bounded worker pool. It is the only deterministic-adjacent package in
// this repository allowed to use goroutines (coda-lint's
// no-stray-goroutines allowlist admits exactly internal/runner and the
// wall-clock-exempt internal/history): the simulator stays a sealed,
// single-threaded world, and parallelism exists purely between runs, never
// inside one.
//
// The determinism argument: every RunSpec is deep-copied when it is added
// to a Matrix, so each run owns its options, fault plan and job structs
// outright; each sim.Simulator then builds its own RNG, cluster, scheduler
// and metrics from that sealed spec. No memory is shared between in-flight
// runs, and results are delivered by matrix index rather than completion
// order. Scheduling runs across more workers therefore changes wall-clock
// interleaving only — per-run results are byte-identical to sequential
// execution, which TestParallelMatchesSequential proves with bit-exact
// dumps.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/coda-repro/coda/internal/sim"
)

// Matrix is an ordered list of runs to execute. The zero value is ready to
// use. Add deep-copies every spec, so a caller can build many matrix cells
// from one template spec and mutate the template between Adds.
type Matrix struct {
	specs []sim.RunSpec
}

// Add appends a deep copy of the spec as the next cell.
func (m *Matrix) Add(sp sim.RunSpec) {
	m.specs = append(m.specs, sp.Clone())
}

// AddSeeds appends one cell per seed: each is a deep copy of the template
// with the simulator noise seed and fault-plan seed replaced, named
// "<name>/seed=<seed>". One template spec fans out into a whole seed
// sweep.
func (m *Matrix) AddSeeds(sp sim.RunSpec, seeds ...int64) {
	for _, seed := range seeds {
		cell := sp.Clone()
		cell.Name = fmt.Sprintf("%s/seed=%d", sp.Name, seed)
		cell.Options.Seed = seed
		if !cell.Options.Faults.Empty() {
			cell.Options.Faults.Seed = seed
		}
		m.specs = append(m.specs, cell)
	}
}

// Len returns the cell count.
func (m *Matrix) Len() int { return len(m.specs) }

// Names returns the cell names in matrix order.
func (m *Matrix) Names() []string {
	names := make([]string, len(m.specs))
	for i, sp := range m.specs {
		names[i] = sp.Name
	}
	return names
}

// Spec returns a deep copy of cell i, for callers that want to run or
// inspect a single cell outside the pool.
func (m *Matrix) Spec(i int) sim.RunSpec { return m.specs[i].Clone() }

// Options configures matrix execution.
type Options struct {
	// Parallel is the worker-pool width. Zero or negative means
	// runtime.GOMAXPROCS(0); 1 executes the matrix strictly sequentially
	// on a single worker.
	Parallel int
}

// workers returns the effective pool width for n cells.
func (o Options) workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes every cell of the matrix and returns the results in matrix
// order, regardless of completion order. Execution is fail-fast: the first
// run error (or a context cancellation) stops workers from starting
// further cells, already-running cells finish, and the error return joins
// every failure — each wrapped with its cell name — plus the context's
// error if it was cancelled. On error the result slice is still returned,
// with a nil entry for every cell that failed or never started.
func Run(ctx context.Context, m *Matrix, opts Options) ([]*sim.Result, error) {
	results, errs, ctxErr := execute(ctx, m, opts, true)

	// Aggregate in matrix order so the joined error is deterministic.
	var failures []error
	for _, err := range errs {
		if err != nil {
			failures = append(failures, err)
		}
	}
	if len(failures) > 0 {
		return results, errors.Join(failures...)
	}
	// No run failed, yet the context is done: the caller cancelled us.
	return results, ctxErr
}

// RunAll executes every cell like Run but never fails fast: one cell's
// error does not stop the others, and per-cell outcomes come back as
// parallel slices — results[i] and errs[i] are mutually exclusive for each
// cell i. Only a caller-side context cancellation stops the matrix early; a
// cell that never started because of it carries the context's error. The
// soak harness uses this so one broken recipe still yields verdicts for the
// rest of the grid.
func RunAll(ctx context.Context, m *Matrix, opts Options) ([]*sim.Result, []error) {
	results, errs, ctxErr := execute(ctx, m, opts, false)
	if ctxErr != nil {
		for i := range errs {
			if results[i] == nil && errs[i] == nil {
				errs[i] = fmt.Errorf("run %q: %w", m.specs[i].Name, ctxErr)
			}
		}
	}
	return results, errs
}

// execute is the shared worker pool behind Run and RunAll. It returns
// per-cell results and errors in matrix order plus the context's final
// error. With failFast set, the first cell error cancels the feed (matching
// Run's contract); otherwise every cell is attempted.
func execute(ctx context.Context, m *Matrix, opts Options, failFast bool) ([]*sim.Result, []error, error) {
	n := m.Len()
	results := make([]*sim.Result, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs, ctx.Err()
	}

	// Workers pull cell indices from a channel. A dedicated cancel lets a
	// fail-fast failure stop the feed without affecting the caller's context.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				// An index may already be in flight from the feeder when the
				// run is cancelled; drain it without executing.
				if ctx.Err() != nil {
					continue
				}
				res, err := m.specs[i].Run()
				if err != nil {
					errs[i] = fmt.Errorf("run %q: %w", m.specs[i].Name, err)
					if failFast {
						cancel()
					}
					continue
				}
				results[i] = res
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case indices <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()
	return results, errs, ctx.Err()
}
