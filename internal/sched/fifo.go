package sched

import (
	"sort"

	"github.com/coda-repro/coda/internal/job"
)

// FIFO is the first-in-first-out policy of the paper's production cluster
// (SLURM, §III-A). A single queue serves both CPU and GPU jobs in arrival
// order; jobs that do not fit are skipped so later arrivals that do fit can
// start — the observed production behaviour (87.4% of CPU jobs start
// within 10 s under FIFO, §VI-C, which strict head-of-line blocking could
// never deliver). Jobs still start in arrival order whenever resources
// allow, and nothing reorders the queue.
//
// The queue is stored as per-request-shape sub-queues merged by a
// min-heap on arrival sequence number. A drain pass over a deep backlog
// then costs O(shapes + probes·log shapes) instead of O(queue): the
// dominance filter (failedSet) only grows within a pass, so the moment a
// shape fails or is covered, every later entry of that shape is doomed
// for the rest of the pass and the whole sub-queue drops out of the merge
// in one step. The pass probes exactly the entries the flat walk would
// probe, in exactly its arrival order — the heap's next pop is always the
// globally earliest entry of any still-viable shape.
type FIFO struct {
	env Env
	// seq numbers arrivals; entries within a shape are appended in seq
	// order and removals preserve it, so each sub-queue head is its
	// earliest entry.
	seq       uint64
	shapes    map[job.Request]*shapeQueue
	shapeList []*shapeQueue // live (non-empty) shapes, order irrelevant
	size      int
	// Window bounds how deep each pass scans (SLURM's default backfill
	// depth is similarly bounded); 0 means the whole queue.
	Window int
	// ReserveDepth is how many unplaceable GPU jobs get node reservations
	// per pass, modeling SLURM backfill's future-slot holds: the held
	// nodes' free resources sit idle — the fragmentation §VI-C measures.
	ReserveDepth int

	// reserved, failed and heap are per-pass scratch reused across drains
	// so a pass over a long queue allocates nothing.
	reserved ExcludeSet
	failed   failedSet
	heap     []shapeRef
}

// fifoEntry is one queued job, tagged with its global arrival order.
type fifoEntry struct {
	seq uint64
	j   *job.Job
}

// shapeQueue holds the pending jobs of one request shape in arrival
// order. head indexes the earliest live entry; popped slots are zeroed
// and reclaimed by periodic compaction.
type shapeQueue struct {
	key     job.Request
	listIdx int // position in FIFO.shapeList, for O(1) detach
	head    int
	entries []fifoEntry
}

func (s *shapeQueue) length() int        { return len(s.entries) - s.head }
func (s *shapeQueue) at(i int) fifoEntry { return s.entries[s.head+i] }

// shapeRef is a heap element: a shape whose next candidate entry (at
// offset skip past the head) has the given arrival seq. skip counts the
// entries at the front of the shape already visited this pass whose
// StartJob failed — the flat walk would move past them exactly once.
type shapeRef struct {
	seq  uint64
	skip int
	sq   *shapeQueue
}

// DefaultReserveDepth mirrors a bounded backfill test depth.
const DefaultReserveDepth = 16

var _ Scheduler = (*FIFO)(nil)

// NewFIFO builds the FIFO baseline.
func NewFIFO() *FIFO {
	return &FIFO{shapes: make(map[job.Request]*shapeQueue)}
}

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Bind implements Scheduler.
func (f *FIFO) Bind(env Env) { f.env = env }

// Submit implements Scheduler.
func (f *FIFO) Submit(j *job.Job) {
	f.enqueue(j)
	f.drain()
}

// OnJobCompleted implements Scheduler.
func (f *FIFO) OnJobCompleted(*job.Job) { f.drain() }

// OnJobKilled implements Scheduler. FIFO keeps no per-running-job state;
// the freed resources may start queued work.
func (f *FIFO) OnJobKilled(*job.Job) { f.drain() }

// Tick implements Scheduler.
func (f *FIFO) Tick() { f.drain() }

// OnJobCancelled implements Canceller: the queued job is removed and the
// freed scan slot may let later arrivals start.
func (f *FIFO) OnJobCancelled(j *job.Job) {
	if sq, ok := f.shapes[j.Request]; ok {
		for i := 0; i < sq.length(); i++ {
			if sq.at(i).j.ID == j.ID {
				f.removeEntry(sq, i)
				break
			}
		}
	}
	f.drain()
}

// enqueue appends j to its shape's sub-queue, creating the shape on
// first use.
func (f *FIFO) enqueue(j *job.Job) {
	sq, ok := f.shapes[j.Request]
	if !ok {
		sq = &shapeQueue{key: j.Request, listIdx: len(f.shapeList)}
		f.shapes[j.Request] = sq
		f.shapeList = append(f.shapeList, sq)
	}
	f.seq++
	sq.entries = append(sq.entries, fifoEntry{seq: f.seq, j: j})
	f.size++
}

// removeEntry deletes the i-th live entry of sq (0 = head), detaching the
// shape when it empties. Head removal is O(1) with periodic compaction;
// mid-queue removal (cancellations, StartJob-error leftovers) splices.
func (f *FIFO) removeEntry(sq *shapeQueue, i int) {
	if i == 0 {
		sq.entries[sq.head] = fifoEntry{}
		sq.head++
		if sq.head > 64 && sq.head*2 > len(sq.entries) {
			n := copy(sq.entries, sq.entries[sq.head:])
			for k := n; k < len(sq.entries); k++ {
				sq.entries[k] = fifoEntry{}
			}
			sq.entries = sq.entries[:n]
			sq.head = 0
		}
	} else {
		pos := sq.head + i
		copy(sq.entries[pos:], sq.entries[pos+1:])
		sq.entries[len(sq.entries)-1] = fifoEntry{}
		sq.entries = sq.entries[:len(sq.entries)-1]
	}
	f.size--
	if sq.length() == 0 {
		f.detach(sq)
	}
}

// detach removes an emptied shape from the live list and the lookup map.
func (f *FIFO) detach(sq *shapeQueue) {
	last := len(f.shapeList) - 1
	f.shapeList[sq.listIdx] = f.shapeList[last]
	f.shapeList[sq.listIdx].listIdx = sq.listIdx
	f.shapeList[last] = nil
	f.shapeList = f.shapeList[:last]
	delete(f.shapes, sq.key)
}

// entriesInOrder snapshots the whole queue in arrival order (checkpointing
// and the Window-bounded scan; not on the hot path).
func (f *FIFO) entriesInOrder() []fifoEntry {
	all := make([]fifoEntry, 0, f.size)
	for _, sq := range f.shapeList {
		for i := 0; i < sq.length(); i++ {
			all = append(all, sq.at(i))
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].seq < all[b].seq })
	return all
}

// removeBySeq deletes the entry with the given arrival seq from its
// shape's sub-queue (entries are seq-sorted within a shape).
func (f *FIFO) removeBySeq(key job.Request, seq uint64) {
	sq, ok := f.shapes[key]
	if !ok {
		return
	}
	i := sort.Search(sq.length(), func(k int) bool { return sq.at(k).seq >= seq })
	if i < sq.length() && sq.at(i).seq == seq {
		f.removeEntry(sq, i)
	}
}

// drain walks the queue in arrival order, starting every job that fits.
// Unplaceable GPU jobs near the front get node reservations (up to
// ReserveDepth) that later jobs must not touch, like SLURM's backfill
// holding future slots for waiting jobs.
//
// The pass pops the earliest entry of any still-viable shape off the
// seq-heap. Popping an entry whose shape the failedSet covers retires the
// whole shape: coverage only grows within a pass (failedSet.add keeps
// minimal elements), so every later entry of that shape would be skipped
// too. A placement failure likewise retires the shape — the failed
// request covers itself. Only a successful start (or a StartJob error,
// which the flat walk stepped past once) re-queues the shape with its
// next entry's seq, so probe order matches the flat walk exactly.
func (f *FIFO) drain() {
	if f.Window > 0 {
		f.drainWindowed()
		return
	}
	f.reserved.Reset()
	f.failed.reset()
	reservations := 0
	h := f.heap[:0]
	for _, sq := range f.shapeList {
		h = append(h, shapeRef{seq: sq.at(0).seq, sq: sq})
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		heapSiftDown(h, i)
	}
	for len(h) > 0 {
		ref := h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		if len(h) > 0 {
			heapSiftDown(h, 0)
		}
		sq := ref.sq
		if f.failed.covered(sq.key) {
			// A smaller request already failed this pass; placements only
			// shrink within a pass, so no entry of this shape can fit.
			continue
		}
		j := sq.at(ref.skip).j
		if alloc, found := PlaceRequestExcluding(f.env.Cluster(), sq.key, false, &f.reserved); found {
			if err := f.env.StartJob(j.ID, alloc); err == nil {
				f.removeEntry(sq, ref.skip)
				if sq.length() > ref.skip {
					h = heapPush(h, shapeRef{seq: sq.at(ref.skip).seq, skip: ref.skip, sq: sq})
				}
			} else if sq.length() > ref.skip+1 {
				// The job stays queued; the pass moves past it once, like
				// the flat walk, and resumes at the shape's next entry.
				h = heapPush(h, shapeRef{seq: sq.at(ref.skip + 1).seq, skip: ref.skip + 1, sq: sq})
			}
		} else {
			f.failed.add(sq.key)
			if j.IsGPU() && reservations < f.ReserveDepth {
				for _, nid := range ReserveNodes(f.env.Cluster(), sq.key, &f.reserved) {
					f.reserved.Add(nid)
				}
				reservations++
			}
		}
	}
	f.heap = h[:0]
}

// drainWindowed is the Window-bounded pass: the bound counts scanned
// entries including dominance-skipped ones, so it runs the flat walk over
// an arrival-order snapshot. Only test configurations set Window.
func (f *FIFO) drainWindowed() {
	f.reserved.Reset()
	f.failed.reset()
	reservations := 0
	for scanned, e := range f.entriesInOrder() {
		if scanned >= f.Window {
			return
		}
		j := e.j
		if f.failed.covered(j.Request) {
			continue
		}
		if alloc, found := PlaceRequestExcluding(f.env.Cluster(), j.Request, false, &f.reserved); found {
			if err := f.env.StartJob(j.ID, alloc); err == nil {
				f.removeBySeq(j.Request, e.seq)
			}
		} else {
			f.failed.add(j.Request)
			if j.IsGPU() && reservations < f.ReserveDepth {
				for _, nid := range ReserveNodes(f.env.Cluster(), j.Request, &f.reserved) {
					f.reserved.Add(nid)
				}
				reservations++
			}
		}
	}
}

// heapPush appends r and restores the min-heap-on-seq property.
func heapPush(h []shapeRef, r shapeRef) []shapeRef {
	h = append(h, r)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].seq <= h[i].seq {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// heapSiftDown restores the min-heap property below index i.
func heapSiftDown(h []shapeRef, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r].seq < h[l].seq {
			m = r
		}
		if h[i].seq <= h[m].seq {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// QueueLen reports the pending job count (for tests and metrics).
func (f *FIFO) QueueLen() int { return f.size }
