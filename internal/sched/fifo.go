package sched

import (
	"container/list"

	"github.com/coda-repro/coda/internal/job"
)

// FIFO is the first-in-first-out policy of the paper's production cluster
// (SLURM, §III-A). A single queue serves both CPU and GPU jobs in arrival
// order; jobs that do not fit are skipped so later arrivals that do fit can
// start — the observed production behaviour (87.4% of CPU jobs start
// within 10 s under FIFO, §VI-C, which strict head-of-line blocking could
// never deliver). Jobs still start in arrival order whenever resources
// allow, and nothing reorders the queue.
type FIFO struct {
	env   Env
	queue *list.List // of *job.Job
	// Window bounds how deep each pass scans (SLURM's default backfill
	// depth is similarly bounded); 0 means the whole queue.
	Window int
	// ReserveDepth is how many unplaceable GPU jobs get node reservations
	// per pass, modeling SLURM backfill's future-slot holds: the held
	// nodes' free resources sit idle — the fragmentation §VI-C measures.
	ReserveDepth int

	// reserved and failed are per-pass scratch reused across drains so a
	// pass over a long queue allocates nothing.
	reserved ExcludeSet
	failed   failedSet
}

// DefaultReserveDepth mirrors a bounded backfill test depth.
const DefaultReserveDepth = 16

var _ Scheduler = (*FIFO)(nil)

// NewFIFO builds the FIFO baseline.
func NewFIFO() *FIFO {
	return &FIFO{queue: list.New()}
}

// Name implements Scheduler.
func (f *FIFO) Name() string { return "fifo" }

// Bind implements Scheduler.
func (f *FIFO) Bind(env Env) { f.env = env }

// Submit implements Scheduler.
func (f *FIFO) Submit(j *job.Job) {
	f.queue.PushBack(j)
	f.drain()
}

// OnJobCompleted implements Scheduler.
func (f *FIFO) OnJobCompleted(*job.Job) { f.drain() }

// OnJobKilled implements Scheduler. FIFO keeps no per-running-job state;
// the freed resources may start queued work.
func (f *FIFO) OnJobKilled(*job.Job) { f.drain() }

// Tick implements Scheduler.
func (f *FIFO) Tick() { f.drain() }

// OnJobCancelled implements Canceller: the queued job is removed and the
// freed scan slot may let later arrivals start.
func (f *FIFO) OnJobCancelled(j *job.Job) {
	for elem := f.queue.Front(); elem != nil; elem = elem.Next() {
		if q, ok := elem.Value.(*job.Job); ok && q.ID == j.ID {
			f.queue.Remove(elem)
			break
		}
	}
	f.drain()
}

// drain walks the queue in arrival order, starting every job that fits.
// Unplaceable GPU jobs near the front get node reservations (up to
// ReserveDepth) that later jobs must not touch, like SLURM's backfill
// holding future slots for waiting jobs.
func (f *FIFO) drain() {
	f.reserved.Reset()
	f.failed.reset()
	reservations := 0
	scanned := 0
	for elem := f.queue.Front(); elem != nil; {
		if f.Window > 0 && scanned >= f.Window {
			return
		}
		scanned++
		next := elem.Next()
		j, ok := elem.Value.(*job.Job)
		if !ok {
			// Impossible by construction; drop the corrupt entry.
			f.queue.Remove(elem)
			elem = next
			continue
		}
		if f.failed.covered(j.Request) {
			// A smaller request already failed this pass; placements only
			// shrink within a pass, so this one cannot fit either.
			elem = next
			continue
		}
		if alloc, found := PlaceRequestExcluding(f.env.Cluster(), j.Request, false, &f.reserved); found {
			if err := f.env.StartJob(j.ID, alloc); err == nil {
				f.queue.Remove(elem)
			}
		} else {
			f.failed.add(j.Request)
			if j.IsGPU() && reservations < f.ReserveDepth {
				for _, nid := range ReserveNodes(f.env.Cluster(), j.Request, &f.reserved) {
					f.reserved.Add(nid)
				}
				reservations++
			}
		}
		elem = next
	}
}

// QueueLen reports the pending job count (for tests and metrics).
func (f *FIFO) QueueLen() int { return f.queue.Len() }
