package sched

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
)

// This file pins the index-backed placement fast path to the pre-index
// engine: referencePlace and referenceReserve are verbatim ports of the
// linear-scan implementations the index replaced. Across a thousand
// randomized seeded cluster states, every query must return exactly the
// nodes the linear scan returned — bit-identical placement sequences are
// what keep same-seed runs reproducible across engine versions.

// referencePlace is the pre-index PlaceRequestExcluding: collect candidates
// in ID order, stable-sort on (FreeGPUs, FreeCores) for best-fit, take the
// first req.Nodes.
func referencePlace(c *cluster.Cluster, req job.Request, bestFit bool, excluded *ExcludeSet) (job.Allocation, bool) {
	gpus := req.GPUsPerNode()
	var candidates []*cluster.Node
	for _, n := range c.Nodes() {
		if excluded.Contains(n.ID) || !n.Fits(req.CPUCores, gpus) {
			continue
		}
		candidates = append(candidates, n)
	}
	if len(candidates) < req.Nodes {
		return job.Allocation{}, false
	}
	if bestFit {
		sort.SliceStable(candidates, func(i, j int) bool {
			a, b := candidates[i], candidates[j]
			if a.FreeGPUs() != b.FreeGPUs() {
				return a.FreeGPUs() < b.FreeGPUs()
			}
			return a.FreeCores() < b.FreeCores()
		})
	}
	nodes := make([]int, 0, req.Nodes)
	for _, n := range candidates[:req.Nodes] {
		nodes = append(nodes, n.ID)
	}
	return job.Allocation{NodeIDs: nodes, CPUCores: req.CPUCores, GPUs: gpus}, true
}

// referenceReserve is the pre-index ReserveNodes: filter by total node
// shape, sort by (free GPUs desc, free cores desc, ID asc).
func referenceReserve(c *cluster.Cluster, req job.Request, excluded *ExcludeSet) []int {
	type cand struct{ nid, freeGPUs, freeCores int }
	var cands []cand
	for _, n := range c.Nodes() {
		if excluded.Contains(n.ID) {
			continue
		}
		if n.GPUs < req.GPUsPerNode() || n.Cores < req.CPUCores {
			continue
		}
		cands = append(cands, cand{nid: n.ID, freeGPUs: n.FreeGPUs(), freeCores: n.FreeCores()})
	}
	if len(cands) < req.Nodes {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].freeGPUs != cands[j].freeGPUs {
			return cands[i].freeGPUs > cands[j].freeGPUs
		}
		if cands[i].freeCores != cands[j].freeCores {
			return cands[i].freeCores > cands[j].freeCores
		}
		return cands[i].nid < cands[j].nid
	})
	nodes := make([]int, 0, req.Nodes)
	for _, c := range cands[:req.Nodes] {
		nodes = append(nodes, c.nid)
	}
	return nodes
}

// randomClusterState builds a cluster and fills it with a random load:
// random allocations, a few down/draining nodes.
func randomClusterState(t *testing.T, rng *rand.Rand) *cluster.Cluster {
	t.Helper()
	cfg := cluster.Config{
		Nodes:        8 + rng.Intn(12),
		CoresPerNode: 4 + rng.Intn(12),
		GPUsPerNode:  rng.Intn(6),
		BandwidthGBs: 100,
		PCIeGBs:      16,
		CPUOnlyNodes: rng.Intn(4),
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := job.ID(1)
	for i := 0; i < 30; i++ {
		want := rng.Intn(3) + 1
		cores := rng.Intn(cfg.CoresPerNode) + 1
		gpus := 0
		if cfg.GPUsPerNode > 0 && rng.Intn(2) == 0 {
			gpus = rng.Intn(cfg.GPUsPerNode) + 1
		}
		nodes := c.FindNodes(want, cores, gpus, rng.Intn(2) == 0)
		if nodes == nil {
			continue
		}
		err := c.Allocate(id, job.Allocation{NodeIDs: nodes, CPUCores: cores, GPUs: gpus})
		if err != nil {
			t.Fatal(err)
		}
		id++
	}
	for nid := 0; nid < cfg.TotalNodes(); nid++ {
		switch rng.Intn(10) {
		case 0:
			// A crash releases resident jobs first (as the simulator does).
			n, err := c.Node(nid)
			if err != nil {
				t.Fatal(err)
			}
			for _, jid := range n.Jobs() {
				if err := c.Release(jid); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.SetNodeState(nid, cluster.NodeDown); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := c.SetNodeState(nid, cluster.NodeDraining); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

// TestPlacementMatchesLinearScanGolden compares the index-backed
// PlaceRequestExcluding and ReserveNodes against the linear-scan reference
// over 1000 randomized cluster states x several queries each.
func TestPlacementMatchesLinearScanGolden(t *testing.T) {
	for seed := int64(0); seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomClusterState(t, rng)
		for q := 0; q < 8; q++ {
			req := job.Request{
				Nodes:    rng.Intn(4) + 1,
				CPUCores: rng.Intn(16) + 1,
				GPUs:     rng.Intn(8),
			}
			var excluded ExcludeSet
			for e := 0; e < rng.Intn(4); e++ {
				excluded.Add(rng.Intn(c.Size()))
			}
			bestFit := rng.Intn(2) == 0

			wantAlloc, wantOK := referencePlace(c, req, bestFit, &excluded)
			gotAlloc, gotOK := PlaceRequestExcluding(c, req, bestFit, &excluded)
			if wantOK != gotOK {
				t.Fatalf("seed %d query %d: place ok=%v, reference ok=%v (req %+v)", seed, q, gotOK, wantOK, req)
			}
			if wantOK && !equalInts(gotAlloc.NodeIDs, wantAlloc.NodeIDs) {
				t.Fatalf("seed %d query %d: place picked %v, reference %v (req %+v, bestFit %v)",
					seed, q, gotAlloc.NodeIDs, wantAlloc.NodeIDs, req, bestFit)
			}

			wantRes := referenceReserve(c, req, &excluded)
			gotRes := ReserveNodes(c, req, &excluded)
			if !equalInts(gotRes, wantRes) {
				t.Fatalf("seed %d query %d: reserve picked %v, reference %v (req %+v)",
					seed, q, gotRes, wantRes, req)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
