package sched

import (
	"testing"

	"github.com/coda-repro/coda/internal/job"
)

func req(cores, gpus, nodes int) job.Request {
	return job.Request{CPUCores: cores, GPUs: gpus * nodes, Nodes: nodes}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		name string
		a, b job.Request
		want bool
	}{
		{"equal", req(4, 1, 1), req(4, 1, 1), true},
		{"strictly bigger", req(8, 2, 2), req(4, 1, 1), true},
		{"bigger cores only", req(8, 1, 1), req(4, 1, 1), true},
		{"fewer cores", req(2, 1, 1), req(4, 1, 1), false},
		{"fewer gpus", req(8, 0, 1), req(4, 1, 1), false},
		{"fewer nodes", req(8, 2, 1), req(4, 1, 2), false},
		{"incomparable", req(8, 0, 1), req(2, 1, 1), false},
	}
	for _, tc := range cases {
		if got := dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: dominates(%+v, %+v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestFailedSetCoversDominatingRequests(t *testing.T) {
	var f failedSet
	failed := req(4, 1, 1)
	f.add(failed)

	// Anything needing at least as much of every dimension is doomed too.
	for _, r := range []job.Request{
		req(4, 1, 1), // identical
		req(6, 1, 1), // more cores
		req(4, 2, 1), // more gpus
		req(4, 1, 3), // more nodes
		req(9, 3, 2), // strictly bigger everywhere
	} {
		if !f.covered(r) {
			t.Errorf("request %+v dominates a failed request but was not pruned", r)
		}
	}

	// A request smaller or incomparable in any dimension might still fit and
	// must NOT be pruned.
	for _, r := range []job.Request{
		req(2, 1, 1),  // fewer cores
		req(4, 0, 1),  // fewer gpus
		req(12, 0, 1), // more cores, fewer gpus: incomparable
		req(1, 4, 1),  // fewer cores, more gpus: incomparable
	} {
		if f.covered(r) {
			t.Errorf("request %+v does not dominate any failed request but was pruned", r)
		}
	}
}

func TestFailedSetKeepsOnlyMinimalElements(t *testing.T) {
	var f failedSet
	f.add(req(8, 2, 2))
	f.add(req(4, 1, 1)) // smaller in every dimension: first entry is redundant
	if n := len(f.entries); n != 1 {
		t.Fatalf("set kept %d entries after adding a dominated-by element, want 1", n)
	}
	if f.entries[0] != req(4, 1, 1) {
		t.Fatalf("set kept %+v, want the minimal request", f.entries[0])
	}

	// Incomparable failures must both be kept: neither covers the other.
	f.add(req(1, 3, 1))
	if n := len(f.entries); n != 2 {
		t.Fatalf("set kept %d entries for incomparable failures, want 2", n)
	}
	if !f.covered(req(4, 3, 1)) || !f.covered(req(5, 1, 1)) {
		t.Fatal("requests dominating either incomparable entry must be covered")
	}
}

func TestFailedSetReset(t *testing.T) {
	var f failedSet
	f.add(req(4, 1, 1))
	if !f.covered(req(4, 1, 1)) {
		t.Fatal("sanity: failed request not covered before reset")
	}
	f.reset()
	if f.covered(req(9, 9, 9)) {
		t.Fatal("reset set still covers requests")
	}
	if cap(f.entries) == 0 {
		t.Fatal("reset dropped the backing array instead of keeping capacity")
	}
}

// TestFIFODominancePruningSkipsCluster proves the behavioral contract end
// to end: once a request fails a FIFO pass, a queued request dominating it
// is skipped without issuing any placement query, while a non-dominated
// request is still probed (and placed). The set must reset between passes
// so freed capacity is rediscovered.
func TestFIFODominancePruningSkipsCluster(t *testing.T) {
	env := newFakeEnv(smallCluster()) // 2 nodes x 8 cores, 2 GPUs
	f := NewFIFO()
	f.ReserveDepth = 0
	f.Bind(env)

	// Fill both nodes, then queue a 6-core request that cannot place.
	f.Submit(cpuJob(1, 1, 8))
	f.Submit(cpuJob(2, 1, 8))
	f.Submit(cpuJob(3, 1, 6))
	f.Tick()
	if got := len(env.started); got != 2 {
		t.Fatalf("setup: %d jobs started, want 2", got)
	}

	// The set must reset between passes: after releasing job 1, the next
	// pass re-probes job 3's previously failed request and places it.
	env.release(t, 1)
	f.Tick()
	if got := len(env.started); got != 3 {
		t.Fatalf("after release: %d jobs started, want 3 (reset must re-probe)", got)
	}

	// Node 0 now has 2 free cores, node 1 is full. Queue a failing request
	// followed by one dominating it: the pass must issue exactly one
	// placement query — the dominated request never touches the cluster.
	f.Submit(cpuJob(4, 1, 5)) // fails: max free is 2 cores
	f.Submit(cpuJob(5, 1, 6)) // dominates job 4's request: pruned
	before := env.c.PlacementQueries()
	f.Tick()
	if got := env.c.PlacementQueries() - before; got != 1 {
		t.Fatalf("pass issued %d placement queries, want 1 (dominated request must not touch the cluster)", got)
	}

	// A non-dominated request in the same pass is still probed: Submit
	// drains immediately, and that drain re-probes job 4 (1 query), prunes
	// job 5 again (0), then probes job 6 — smaller than the recorded
	// failure — and places it (1 query).
	before = env.c.PlacementQueries()
	f.Submit(cpuJob(6, 1, 2))
	if got := env.c.PlacementQueries() - before; got != 2 {
		t.Fatalf("pass issued %d placement queries, want 2 (non-dominated request must be probed)", got)
	}
	if got := len(env.started); got != 4 {
		t.Fatalf("end: %d jobs started, want 4", got)
	}
}
