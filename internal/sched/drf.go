package sched

import (
	"container/list"
	"sort"

	"github.com/coda-repro/coda/internal/fair"
	"github.com/coda-repro/coda/internal/job"
)

// DRF is the dominant-resource-fairness baseline: per-tenant FIFO queues
// served in ascending dominant-share order. Following the paper's
// evaluation setup, GPU is treated as the dominant resource ("With DRF, we
// consider GPU as the dominant resource and enforce that the tenants fairly
// share the dominant resource", §VI-A). Each tenant's queue has
// head-of-line blocking, but a blocked tenant does not block others.
type DRF struct {
	env        Env
	accountant *fair.Accountant
	queues     map[job.TenantID]*list.List
	// ReserveDepth mirrors FIFO's backfill-style reservations: each
	// blocked tenant's earliest unplaceable GPU job holds nodes.
	ReserveDepth int

	// Per-pass scratch reused across drains so a pass allocates nothing:
	// reserved/failed mirror FIFO's, blocked marks tenants set aside this
	// pass, and the two slices back pendingTenants and the candidate list.
	reserved   ExcludeSet
	failed     failedSet
	blocked    map[job.TenantID]bool
	tenants    []job.TenantID
	candidates []job.TenantID
}

var _ Scheduler = (*DRF)(nil)

// NewDRF builds the DRF baseline for a cluster with the given totals.
func NewDRF(totalCPU, totalGPU int) (*DRF, error) {
	acc, err := fair.NewAccountant(
		fair.Resources{CPU: float64(totalCPU), GPU: float64(totalGPU)},
		fair.DominantGPU,
	)
	if err != nil {
		return nil, err
	}
	return &DRF{
		accountant:   acc,
		queues:       make(map[job.TenantID]*list.List),
		ReserveDepth: 0,
		blocked:      make(map[job.TenantID]bool),
	}, nil
}

// Name implements Scheduler.
func (d *DRF) Name() string { return "drf" }

// Bind implements Scheduler.
func (d *DRF) Bind(env Env) { d.env = env }

// Submit implements Scheduler.
func (d *DRF) Submit(j *job.Job) {
	q, ok := d.queues[j.Tenant]
	if !ok {
		q = list.New()
		d.queues[j.Tenant] = q
	}
	q.PushBack(j)
	d.drain()
}

// OnJobCompleted implements Scheduler.
func (d *DRF) OnJobCompleted(j *job.Job) {
	// Refund ignores jobs the accountant never charged (e.g. requeues).
	_ = d.accountant.Refund(j.ID)
	d.drain()
}

// OnJobKilled implements Scheduler: a fault-killed job stops consuming its
// tenant's dominant share exactly like a completion.
func (d *DRF) OnJobKilled(j *job.Job) {
	_ = d.accountant.Refund(j.ID)
	d.drain()
}

// Tick implements Scheduler.
func (d *DRF) Tick() { d.drain() }

// pendingTenants returns tenants with non-empty queues, sorted by tenant ID
// so the candidate order handed to PoorestTenant is seed-stable rather than
// Go's randomized map order (same determinism contract as CODA's
// multi-array pendingTenants).
func (d *DRF) pendingTenants() []job.TenantID {
	tenants := d.tenants[:0]
	//coda:ordered-ok collected tenant IDs are sorted before return
	for t, q := range d.queues {
		if q.Len() > 0 {
			tenants = append(tenants, t)
		}
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i] < tenants[j] })
	d.tenants = tenants
	return tenants
}

// drain performs progressive filling: repeatedly give the poorest tenant a
// chance to start its earliest job that fits; a tenant with nothing
// placeable is set aside for this pass. Like the production SLURM setup,
// an unplaceable job does not block later arrivals of the same tenant
// (§VI-C shows CPU jobs starting within seconds under both baselines).
func (d *DRF) drain() {
	if d.blocked == nil {
		d.blocked = make(map[job.TenantID]bool)
	}
	clear(d.blocked)
	d.reserved.Reset()
	reservations := 0
	for {
		d.candidates = d.candidates[:0]
		for _, t := range d.pendingTenants() {
			if !d.blocked[t] {
				d.candidates = append(d.candidates, t)
			}
		}
		tenant, ok := d.accountant.PoorestTenant(d.candidates)
		if !ok {
			return
		}
		if !d.startFirstFitting(tenant, &d.reserved) {
			d.blocked[tenant] = true
			// Backfill-style hold for the blocked tenant's earliest GPU job.
			if reservations < d.ReserveDepth {
				if head := d.firstGPUJob(tenant); head != nil {
					for _, nid := range ReserveNodes(d.env.Cluster(), head.Request, &d.reserved) {
						d.reserved.Add(nid)
					}
					reservations++
				}
			}
		}
	}
}

// firstGPUJob returns the tenant's earliest pending GPU job, nil if none.
func (d *DRF) firstGPUJob(tenant job.TenantID) *job.Job {
	for elem := d.queues[tenant].Front(); elem != nil; elem = elem.Next() {
		if j, ok := elem.Value.(*job.Job); ok && j.IsGPU() {
			return j
		}
	}
	return nil
}

// startFirstFitting starts tenant's earliest placeable job; false if none.
func (d *DRF) startFirstFitting(tenant job.TenantID, reserved *ExcludeSet) bool {
	q := d.queues[tenant]
	d.failed.reset()
	for elem := q.Front(); elem != nil; elem = elem.Next() {
		j, okJob := elem.Value.(*job.Job)
		if !okJob {
			q.Remove(elem)
			return true // retry the tenant with a clean queue
		}
		if d.failed.covered(j.Request) {
			continue
		}
		alloc, found := PlaceRequestExcluding(d.env.Cluster(), j.Request, false, reserved)
		if !found {
			d.failed.add(j.Request)
			continue
		}
		if err := d.env.StartJob(j.ID, alloc); err != nil {
			continue
		}
		// Accounting failure must not wedge the queue; the job runs.
		_ = d.accountant.Charge(j.ID, j.Tenant, fair.Resources{
			CPU: float64(alloc.TotalCPUCores()),
			GPU: float64(alloc.TotalGPUs()),
		})
		q.Remove(elem)
		return true
	}
	return false
}

// QueueLen reports the total pending job count.
func (d *DRF) QueueLen() int {
	total := 0
	for _, q := range d.queues {
		total += q.Len()
	}
	return total
}
