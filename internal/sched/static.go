package sched

import (
	"container/list"

	"github.com/coda-repro/coda/internal/job"
)

// Static is the static-partition policy the paper's introduction
// criticizes (§I, citing Jeon et al.'s production setup): every GPU is
// statically granted an equal slice of its node's cores — "The work
// directly splits all the CPUs and memory to all GPUs, and lead[s] to
// underutilization of CPU resources." GPU jobs always run with
// coresPerNode/gpusPerNode cores per GPU regardless of what the model
// needs; CPU jobs only use cores on nodes whose GPUs are idle (their
// slices are bound to the GPUs).
type Static struct {
	env          Env
	coresPerGPU  int
	queue        *list.List // of *job.Job, arrival order
	reserveDepth int
	// failed is per-pass scratch reused across drains.
	failed failedSet
}

var _ Scheduler = (*Static)(nil)

// NewStatic builds the static-partition baseline for a node shape.
func NewStatic(coresPerNode, gpusPerNode int) *Static {
	coresPerGPU := 1
	if gpusPerNode > 0 {
		coresPerGPU = coresPerNode / gpusPerNode
		if coresPerGPU < 1 {
			coresPerGPU = 1
		}
	}
	return &Static{coresPerGPU: coresPerGPU, queue: list.New()}
}

// Name implements Scheduler.
func (s *Static) Name() string { return "static" }

// Bind implements Scheduler.
func (s *Static) Bind(env Env) { s.env = env }

// Submit implements Scheduler.
func (s *Static) Submit(j *job.Job) {
	s.queue.PushBack(j)
	s.drain()
}

// OnJobCompleted implements Scheduler.
func (s *Static) OnJobCompleted(*job.Job) { s.drain() }

// OnJobKilled implements Scheduler. The static split keeps no
// per-running-job state; freed partition slices may start queued work.
func (s *Static) OnJobKilled(*job.Job) { s.drain() }

// Tick implements Scheduler.
func (s *Static) Tick() { s.drain() }

// effectiveRequest rewrites a job's request under the static split: GPU
// jobs get exactly coresPerGPU cores per GPU; CPU jobs keep their request
// (they live off whatever slices idle GPUs leave behind).
func (s *Static) effectiveRequest(j *job.Job) job.Request {
	req := j.Request
	if j.IsGPU() {
		req.CPUCores = s.coresPerGPU * req.GPUsPerNode()
	}
	return req
}

// drain starts jobs first-fit in arrival order under the static split.
func (s *Static) drain() {
	s.failed.reset()
	for elem := s.queue.Front(); elem != nil; {
		next := elem.Next()
		j, ok := elem.Value.(*job.Job)
		if !ok {
			s.queue.Remove(elem)
			elem = next
			continue
		}
		req := s.effectiveRequest(j)
		if s.failed.covered(req) {
			elem = next
			continue
		}
		if alloc, found := PlaceRequest(s.env.Cluster(), req, false); found {
			if err := s.env.StartJob(j.ID, alloc); err == nil {
				s.queue.Remove(elem)
			}
		} else {
			s.failed.add(req)
		}
		elem = next
	}
}

// QueueLen reports the pending job count.
func (s *Static) QueueLen() int { return s.queue.Len() }
