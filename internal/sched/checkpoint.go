package sched

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/coda-repro/coda/internal/fair"
	"github.com/coda-repro/coda/internal/job"
)

// Checkpointer is the optional interface a scheduler implements to survive
// controller death: CheckpointState serializes everything the scheduler
// would need to continue bit-identically, and RestoreCheckpoint fills a
// freshly constructed scheduler (same construction parameters) with that
// state before Bind. Every scheduler in this repo implements it.
type Checkpointer interface {
	// CheckpointState returns an opaque serialized form of the scheduler's
	// mutable state.
	CheckpointState() ([]byte, error)
	// RestoreCheckpoint fills a freshly built scheduler with previously
	// checkpointed state. It must be called before Bind.
	RestoreCheckpoint(data []byte) error
}

var (
	_ Checkpointer = (*FIFO)(nil)
	_ Checkpointer = (*DRF)(nil)
	_ Checkpointer = (*Static)(nil)
)

// queueJobs copies a queue's jobs in order.
func queueJobs(q *list.List) []job.Job {
	out := make([]job.Job, 0, q.Len())
	for elem := q.Front(); elem != nil; elem = elem.Next() {
		if j, ok := elem.Value.(*job.Job); ok {
			out = append(out, *j)
		}
	}
	return out
}

// fillQueue rebuilds a queue from serialized jobs.
func fillQueue(q *list.List, jobs []job.Job) {
	for i := range jobs {
		j := jobs[i]
		q.PushBack(&j)
	}
}

type fifoState struct {
	Jobs         []job.Job
	Window       int
	ReserveDepth int
}

// CheckpointState implements Checkpointer. Jobs serialize in arrival
// order regardless of the shape-queue layout, so the bytes match the
// former flat-list representation; seq numbers are reassigned on restore
// (only their relative order matters).
func (f *FIFO) CheckpointState() ([]byte, error) {
	jobs := make([]job.Job, 0, f.size)
	for _, e := range f.entriesInOrder() {
		jobs = append(jobs, *e.j)
	}
	return json.Marshal(fifoState{Jobs: jobs, Window: f.Window, ReserveDepth: f.ReserveDepth})
}

// RestoreCheckpoint implements Checkpointer.
func (f *FIFO) RestoreCheckpoint(data []byte) error {
	var st fifoState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("fifo: restore: %w", err)
	}
	if f.size != 0 {
		return fmt.Errorf("fifo: restore into a non-empty scheduler")
	}
	for i := range st.Jobs {
		j := st.Jobs[i]
		f.enqueue(&j)
	}
	f.Window = st.Window
	f.ReserveDepth = st.ReserveDepth
	return nil
}

type drfTenantQueue struct {
	Tenant job.TenantID
	Jobs   []job.Job
}

type drfState struct {
	Queues       []drfTenantQueue
	Accountant   fair.State
	ReserveDepth int
}

// CheckpointState implements Checkpointer.
func (d *DRF) CheckpointState() ([]byte, error) {
	st := drfState{Accountant: d.accountant.CheckpointState(), ReserveDepth: d.ReserveDepth}
	//coda:ordered-ok entries are sorted below before serialization
	for t, q := range d.queues {
		st.Queues = append(st.Queues, drfTenantQueue{Tenant: t, Jobs: queueJobs(q)})
	}
	sort.Slice(st.Queues, func(i, j int) bool { return st.Queues[i].Tenant < st.Queues[j].Tenant })
	return json.Marshal(st)
}

// RestoreCheckpoint implements Checkpointer.
func (d *DRF) RestoreCheckpoint(data []byte) error {
	var st drfState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("drf: restore: %w", err)
	}
	if len(d.queues) != 0 {
		return fmt.Errorf("drf: restore into a non-empty scheduler")
	}
	for _, tq := range st.Queues {
		if _, dup := d.queues[tq.Tenant]; dup {
			return fmt.Errorf("drf: duplicate tenant %d in checkpoint", tq.Tenant)
		}
		q := list.New()
		fillQueue(q, tq.Jobs)
		d.queues[tq.Tenant] = q
	}
	if err := d.accountant.RestoreCheckpointState(st.Accountant); err != nil {
		return fmt.Errorf("drf: restore: %w", err)
	}
	d.ReserveDepth = st.ReserveDepth
	return nil
}

type staticState struct {
	Jobs []job.Job
}

// CheckpointState implements Checkpointer. coresPerGPU is derived from the
// construction parameters and is not serialized.
func (s *Static) CheckpointState() ([]byte, error) {
	return json.Marshal(staticState{Jobs: queueJobs(s.queue)})
}

// RestoreCheckpoint implements Checkpointer.
func (s *Static) RestoreCheckpoint(data []byte) error {
	var st staticState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("static: restore: %w", err)
	}
	if s.queue.Len() != 0 {
		return fmt.Errorf("static: restore into a non-empty scheduler")
	}
	fillQueue(s.queue, st.Jobs)
	return nil
}
