package sched

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
)

// flatFIFO is the pre-optimization reference implementation: the flat
// arrival-order walk over a single queue, kept verbatim so the shape-heap
// FIFO can be differentially tested against it. Any divergence in start
// order, placement-query count, or queue contents is a scheduling change.
type flatFIFO struct {
	env          Env
	queue        []*job.Job
	Window       int
	ReserveDepth int
	reserved     ExcludeSet
	failed       failedSet
}

func (r *flatFIFO) Bind(env Env)            { r.env = env }
func (r *flatFIFO) Submit(j *job.Job)       { r.queue = append(r.queue, j); r.drain() }
func (r *flatFIFO) OnJobCompleted(*job.Job) { r.drain() }
func (r *flatFIFO) OnJobKilled(*job.Job)    { r.drain() }
func (r *flatFIFO) Tick()                   { r.drain() }

func (r *flatFIFO) OnJobCancelled(j *job.Job) {
	for i, q := range r.queue {
		if q.ID == j.ID {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			break
		}
	}
	r.drain()
}

func (r *flatFIFO) drain() {
	r.reserved.Reset()
	r.failed.reset()
	reservations := 0
	scanned := 0
	for i := 0; i < len(r.queue); {
		if r.Window > 0 && scanned >= r.Window {
			return
		}
		scanned++
		j := r.queue[i]
		if r.failed.covered(j.Request) {
			i++
			continue
		}
		if alloc, found := PlaceRequestExcluding(r.env.Cluster(), j.Request, false, &r.reserved); found {
			if err := r.env.StartJob(j.ID, alloc); err == nil {
				r.queue = append(r.queue[:i], r.queue[i+1:]...)
				continue
			}
		} else {
			r.failed.add(j.Request)
			if j.IsGPU() && reservations < r.ReserveDepth {
				for _, nid := range ReserveNodes(r.env.Cluster(), j.Request, &r.reserved) {
					r.reserved.Add(nid)
				}
				reservations++
			}
		}
		i++
	}
}

// diffJob builds a random job: CPU-only or GPU training, single- or
// multi-node, from a small pool of shapes so sub-queues grow deep.
func diffJob(rng *rand.Rand, id job.ID) *job.Job {
	nodes := 1
	if rng.Intn(4) == 0 {
		nodes = 2
	}
	if rng.Intn(3) == 0 { // GPU training job
		gpus := (rng.Intn(2) + 1) * nodes
		return &job.Job{
			ID: id, Kind: job.KindGPUTraining, Tenant: 1,
			Category: job.CategoryCV, Model: "resnet50",
			Request: job.Request{CPUCores: rng.Intn(4) + 1, GPUs: gpus, Nodes: nodes},
			Work:    time.Hour,
		}
	}
	return &job.Job{
		ID: id, Kind: job.KindCPU, Tenant: 1,
		Request: job.Request{CPUCores: rng.Intn(8) + 1, Nodes: nodes},
		Work:    time.Minute,
	}
}

// TestFIFOShapeHeapMatchesFlatWalk drives the shape-heap FIFO and the flat
// reference walk through identical randomized histories — submissions,
// completions, cancellations, ticks, and transient StartJob failures —
// and demands identical observable behaviour after every step: the same
// jobs started in the same order, the same number of placement queries
// issued, the same queue length, and byte-identical checkpoints.
func TestFIFOShapeHeapMatchesFlatWalk(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 4, CoresPerNode: 8, GPUsPerNode: 2,
		BandwidthGBs: 100, PCIeGBs: 16, CPUOnlyNodes: 2,
	}
	for seed := int64(1); seed <= 60; seed++ {
		rng := rand.New(rand.NewSource(seed))

		envA := newFakeEnv(cfg)
		envB := newFakeEnv(cfg)
		fast := NewFIFO()
		fast.Bind(envA)
		flat := &flatFIFO{}
		flat.Bind(envB)
		// Exercise reservations on most seeds, the Window-bounded scan on
		// every fourth (it counts covered skips, so it takes the flat path
		// in both implementations — still worth diffing).
		switch seed % 4 {
		case 0:
			fast.Window, flat.Window = 3, 3
		case 1:
			fast.ReserveDepth, flat.ReserveDepth = 1, 1
		default:
			fast.ReserveDepth, flat.ReserveDepth = DefaultReserveDepth, DefaultReserveDepth
		}

		jobs := map[job.ID]*job.Job{} // the copy submitted to fast
		var queued, running []job.ID
		nextID := job.ID(1)

		check := func(step int) {
			t.Helper()
			if len(envA.started) != len(envB.started) {
				t.Fatalf("seed %d step %d: started %v vs flat %v", seed, step, envA.started, envB.started)
			}
			for i := range envA.started {
				if envA.started[i] != envB.started[i] {
					t.Fatalf("seed %d step %d: start order diverged: %v vs flat %v", seed, step, envA.started, envB.started)
				}
			}
			if qa, qb := envA.c.PlacementQueries(), envB.c.PlacementQueries(); qa != qb {
				t.Fatalf("seed %d step %d: %d placement queries vs flat %d", seed, step, qa, qb)
			}
			if fast.QueueLen() != len(flat.queue) {
				t.Fatalf("seed %d step %d: queue len %d vs flat %d", seed, step, fast.QueueLen(), len(flat.queue))
			}
			ck, err := fast.CheckpointState()
			if err != nil {
				t.Fatalf("seed %d step %d: checkpoint: %v", seed, step, err)
			}
			flatJobs := make([]job.Job, 0, len(flat.queue))
			for _, j := range flat.queue {
				flatJobs = append(flatJobs, *j)
			}
			want, err := json.Marshal(fifoState{Jobs: flatJobs, Window: flat.Window, ReserveDepth: flat.ReserveDepth})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ck, want) {
				t.Fatalf("seed %d step %d: checkpoint %s vs flat %s", seed, step, ck, want)
			}
		}

		// syncStarted moves newly started jobs from queued to running.
		syncStarted := func(from int) {
			for _, id := range envA.started[from:] {
				running = append(running, id)
				for i, q := range queued {
					if q == id {
						queued = append(queued[:i], queued[i+1:]...)
						break
					}
				}
			}
		}

		for step := 0; step < 300; step++ {
			mark := len(envA.started)
			switch op := rng.Intn(10); {
			case op < 5: // submit (each scheduler gets its own copy)
				ja := diffJob(rng, nextID)
				jb := *ja
				if rng.Intn(8) == 0 { // transient start failure
					envA.failIDs[nextID] = true
					envB.failIDs[nextID] = true
				}
				jobs[nextID] = ja
				queued = append(queued, nextID)
				nextID++
				fast.Submit(ja)
				flat.Submit(&jb)
			case op < 7: // complete a random running job
				if len(running) == 0 {
					continue
				}
				i := rng.Intn(len(running))
				id := running[i]
				running = append(running[:i], running[i+1:]...)
				if err := envA.c.Release(id); err != nil {
					t.Fatalf("seed %d step %d: release: %v", seed, step, err)
				}
				if err := envB.c.Release(id); err != nil {
					t.Fatalf("seed %d step %d: flat release: %v", seed, step, err)
				}
				fast.OnJobCompleted(jobs[id])
				flat.OnJobCompleted(jobs[id])
			case op < 8: // cancel a random queued job
				if len(queued) == 0 {
					continue
				}
				i := rng.Intn(len(queued))
				id := queued[i]
				queued = append(queued[:i], queued[i+1:]...)
				fast.OnJobCancelled(jobs[id])
				flat.OnJobCancelled(jobs[id])
			case op < 9: // a transient failure heals
				//coda:ordered-ok both envs heal the whole set; the next drain re-probes deterministically
				for id := range envA.failIDs {
					delete(envA.failIDs, id)
					delete(envB.failIDs, id)
				}
				fast.Tick()
				flat.Tick()
			default:
				fast.Tick()
				flat.Tick()
			}
			syncStarted(mark)
			check(step)
		}

		// Checkpoint round-trip: a restored scheduler must serialize to the
		// same bytes and behave identically on a subsequent tick.
		ck, err := fast.CheckpointState()
		if err != nil {
			t.Fatal(err)
		}
		restored := NewFIFO()
		if err := restored.RestoreCheckpoint(ck); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		ck2, err := restored.CheckpointState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ck, ck2) {
			t.Fatalf("seed %d: checkpoint changed across restore:\n%s\nvs\n%s", seed, ck, ck2)
		}
	}
}
