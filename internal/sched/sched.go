// Package sched defines the scheduler interface the simulator drives, the
// environment handle schedulers act through, and the two baseline policies
// the paper compares CODA against: FIFO (SLURM's default on the studied
// cluster, §III-A) and DRF with GPU as the dominant resource (§VI-A).
package sched

import (
	"sort"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/membw"
)

// Env is the cluster-control surface a scheduler acts through. The
// simulator implements it; every mutation flows through Env so the
// simulator can keep job progress, bandwidth accounting and metrics
// consistent.
type Env interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Cluster exposes resource occupancy for placement queries. Schedulers
	// must mutate it only through StartJob/ResizeJob/PreemptJob.
	Cluster() *cluster.Cluster
	// Meter returns the MBM meter of one node for contention monitoring.
	Meter(nodeID int) (*membw.Meter, error)
	// StartJob places a pending job onto the cluster and starts it.
	StartJob(id job.ID, alloc job.Allocation) error
	// ResizeJob changes a running job's per-node core count.
	ResizeJob(id job.ID, coresPerNode int) error
	// PreemptJob aborts a running CPU job, releasing its resources, and
	// returns a clone carrying the remaining work. The scheduler decides
	// where to requeue it (CODA puts it at the array head, §V-C).
	PreemptJob(id job.ID) (*job.Job, error)
	// ThrottleJob applies an MBA bandwidth cap to a running CPU job.
	ThrottleJob(id job.ID, capGBs float64) error
	// UnthrottleJob removes a job's bandwidth cap.
	UnthrottleJob(id job.ID) error
	// GPUUtil returns the currently observed GPU utilization of a running
	// training job, including measurement noise — the only performance
	// signal CODA's allocator gets (§V-B).
	GPUUtil(id job.ID) (float64, error)
}

// Scheduler is a cluster scheduling policy.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Bind attaches the environment; called once before any other method.
	Bind(env Env)
	// Submit enqueues a newly arrived (or requeued preempted) job.
	Submit(j *job.Job)
	// OnJobCompleted notifies that a job finished and its resources were
	// already released.
	OnJobCompleted(j *job.Job)
	// OnJobKilled notifies that a running job was killed by a fault (node
	// crash or injected failure) and its resources were already released.
	// The scheduler must drop every bookkeeping entry for the job; if the
	// job has retry budget left, the simulator re-Submits a fresh clone
	// after its backoff expires.
	OnJobKilled(j *job.Job)
	// Tick runs periodic policy work (scheduling passes, profiling steps,
	// contention checks). The simulator calls it after every arrival and
	// completion batch and on a fixed cadence.
	Tick()
}

// Canceller is the optional interface a scheduler implements to support
// cancelling a job that is still queued (the control plane's DELETE
// /v1/jobs). The job was never started, so no resources need releasing —
// the scheduler must only drop the job from its queue bookkeeping. Running
// jobs are cancelled through the ordinary OnJobKilled path instead.
type Canceller interface {
	// OnJobCancelled removes a still-queued job from the scheduler's queue.
	OnJobCancelled(j *job.Job)
}

// PlaceRequest finds nodes for a resource request: req.Nodes nodes that
// each fit req.CPUCores cores (per node) and the per-node GPU share.
// bestFit packs loaded nodes first to limit fragmentation. The returned
// allocation is not yet applied.
func PlaceRequest(c *cluster.Cluster, req job.Request, bestFit bool) (job.Allocation, bool) {
	return PlaceRequestExcluding(c, req, bestFit, nil)
}

// ExcludeSet is a reusable sorted set of node IDs excluded from placement
// (nodes reserved for other queued jobs). The zero value and nil are empty
// sets; Reset keeps the backing array so a scheduler reuses one set across
// passes without allocating.
type ExcludeSet struct {
	ids []int
}

// Reset empties the set, keeping its capacity for the next pass.
func (s *ExcludeSet) Reset() { s.ids = s.ids[:0] }

// Add inserts a node ID, keeping the set sorted; duplicates are ignored.
func (s *ExcludeSet) Add(id int) {
	i := sort.SearchInts(s.ids, id)
	if i < len(s.ids) && s.ids[i] == id {
		return
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
}

// Contains reports whether id is in the set; a nil set is empty.
func (s *ExcludeSet) Contains(id int) bool {
	if s == nil {
		return false
	}
	i := sort.SearchInts(s.ids, id)
	return i < len(s.ids) && s.ids[i] == id
}

// Len returns the number of excluded IDs; a nil set is empty.
func (s *ExcludeSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.ids)
}

// IDs returns the sorted excluded IDs; callers must not mutate them.
func (s *ExcludeSet) IDs() []int {
	if s == nil {
		return nil
	}
	return s.ids
}

// PlaceRequestExcluding is PlaceRequest with a set of excluded node IDs
// (nodes reserved for other queued jobs). It answers through the cluster's
// free-capacity index: a failed probe allocates nothing, and a successful
// one allocates only the returned NodeIDs slice. Best-fit candidates come
// from the index in packing order — the same order the old linear scan
// produced by stable-sorting ID-ordered candidates on (FreeGPUs,
// FreeCores) — so placement sequences are bit-identical to the
// pre-index engine.
func PlaceRequestExcluding(c *cluster.Cluster, req job.Request, bestFit bool, excluded *ExcludeSet) (job.Allocation, bool) {
	c.NotePlacementQuery()
	gpus := req.GPUsPerNode()
	count := c.CountPlaceable(req.CPUCores, gpus)
	for _, id := range excluded.IDs() {
		if n, err := c.Node(id); err == nil && n.Fits(req.CPUCores, gpus) {
			count--
		}
	}
	if count < req.Nodes {
		return job.Allocation{}, false
	}
	nodes := make([]int, 0, req.Nodes)
	if req.Nodes > 0 {
		c.ScanPlaceable(req.CPUCores, gpus, bestFit, func(n *cluster.Node) bool {
			if excluded.Contains(n.ID) {
				return true
			}
			nodes = append(nodes, n.ID)
			return len(nodes) < req.Nodes
		})
	}
	return job.Allocation{
		NodeIDs:  nodes,
		CPUCores: req.CPUCores,
		GPUs:     gpus,
	}, true
}

// failedSet prunes placement scans: once a request fails to place in a
// pass, any request that dominates it (needs at least as many per-node
// cores, per-node GPUs and nodes) cannot place either and is skipped
// without touching the cluster. Keeps long queues scannable at month
// scale.
type failedSet struct {
	entries []job.Request
}

// dominates reports whether request a needs at least as much of every
// dimension as b.
func dominates(a, b job.Request) bool {
	return a.CPUCores >= b.CPUCores &&
		a.GPUsPerNode() >= b.GPUsPerNode() &&
		a.Nodes >= b.Nodes
}

// covered reports whether req is doomed given the recorded failures.
func (f *failedSet) covered(req job.Request) bool {
	for _, e := range f.entries {
		if dominates(req, e) {
			return true
		}
	}
	return false
}

// reset empties the set for a new pass, keeping its capacity.
func (f *failedSet) reset() { f.entries = f.entries[:0] }

// add records a failed request, keeping only minimal elements.
func (f *failedSet) add(req job.Request) {
	kept := f.entries[:0]
	for _, e := range f.entries {
		if dominates(e, req) {
			continue // req is smaller: e is now redundant
		}
		kept = append(kept, e)
	}
	f.entries = append(kept, req)
}

// ReserveNodes picks nodes to hold for an unplaceable job, SLURM-backfill
// style: the job's per-node share will soonest fit on the nodes with the
// most free GPUs (and enough total GPUs), so those are held idle until the
// job starts. Already-excluded nodes are skipped. Returns nil when no node
// is a sensible hold (e.g. the request exceeds every node's shape).
func ReserveNodes(c *cluster.Cluster, req job.Request, excluded *ExcludeSet) []int {
	c.NotePlacementQuery()
	gpus := req.GPUsPerNode()
	qualifies := func(n *cluster.Node) bool {
		// The hold is about total node shape, not current occupancy: a
		// node that can never host the share is no hold at all.
		return !excluded.Contains(n.ID) && n.GPUs >= gpus && n.Cores >= req.CPUCores
	}
	// The cluster's static shape table answers "how many nodes could ever
	// host this share" in O(1); only the (small, bounded) exclusion set
	// needs individual re-checks.
	count := c.CountShaped(req.CPUCores, gpus)
	for _, id := range excluded.IDs() {
		if n, err := c.Node(id); err == nil && n.GPUs >= gpus && n.Cores >= req.CPUCores {
			count--
		}
	}
	if count < req.Nodes {
		return nil
	}
	// ScanFreeDesc yields (FreeGPUs desc, FreeCores desc, ID asc) — the
	// exact order the old implementation sorted its candidates into.
	nodes := make([]int, 0, req.Nodes)
	if req.Nodes > 0 {
		c.ScanFreeDesc(func(n *cluster.Node) bool {
			if !qualifies(n) {
				return true
			}
			nodes = append(nodes, n.ID)
			return len(nodes) < req.Nodes
		})
	}
	return nodes
}
