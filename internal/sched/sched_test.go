package sched

import (
	"fmt"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/membw"
)

// fakeEnv is a minimal Env for unit-testing policies without the simulator.
// StartJob allocates on the cluster directly.
type fakeEnv struct {
	c       *cluster.Cluster
	now     time.Duration
	started []job.ID
	failIDs map[job.ID]bool // StartJob returns an error for these
}

var _ Env = (*fakeEnv)(nil)

func newFakeEnv(cfg cluster.Config) *fakeEnv {
	return &fakeEnv{c: cluster.MustNew(cfg), failIDs: make(map[job.ID]bool)}
}

func (f *fakeEnv) Now() time.Duration        { return f.now }
func (f *fakeEnv) Cluster() *cluster.Cluster { return f.c }
func (f *fakeEnv) Meter(int) (*membw.Meter, error) {
	return membw.NewMeter(100, true)
}
func (f *fakeEnv) StartJob(id job.ID, alloc job.Allocation) error {
	if f.failIDs[id] {
		return fmt.Errorf("fake: refusing job %d", id)
	}
	if err := f.c.Allocate(id, alloc); err != nil {
		return err
	}
	f.started = append(f.started, id)
	return nil
}
func (f *fakeEnv) ResizeJob(id job.ID, cores int) error { return f.c.Resize(id, cores) }
func (f *fakeEnv) PreemptJob(id job.ID) (*job.Job, error) {
	return nil, fmt.Errorf("fake: preempt unsupported")
}
func (f *fakeEnv) ThrottleJob(job.ID, float64) error { return nil }
func (f *fakeEnv) UnthrottleJob(job.ID) error        { return nil }
func (f *fakeEnv) GPUUtil(job.ID) (float64, error)   { return 0.5, nil }

func (f *fakeEnv) release(t *testing.T, id job.ID) {
	t.Helper()
	if err := f.c.Release(id); err != nil {
		t.Fatal(err)
	}
}

func smallCluster() cluster.Config {
	return cluster.Config{Nodes: 2, CoresPerNode: 8, GPUsPerNode: 2, BandwidthGBs: 100, PCIeGBs: 16}
}

func gpuJob(id job.ID, tenant job.TenantID, cores, gpus int) *job.Job {
	return &job.Job{
		ID: id, Kind: job.KindGPUTraining, Tenant: tenant,
		Category: job.CategoryCV, Model: "resnet50",
		Request: job.Request{CPUCores: cores, GPUs: gpus, Nodes: 1},
		Work:    time.Hour,
	}
}

func cpuJob(id job.ID, tenant job.TenantID, cores int) *job.Job {
	return &job.Job{
		ID: id, Kind: job.KindCPU, Tenant: tenant,
		Request: job.Request{CPUCores: cores, Nodes: 1},
		Work:    time.Minute,
	}
}

func TestPlaceRequest(t *testing.T) {
	c := cluster.MustNew(smallCluster())
	alloc, ok := PlaceRequest(c, job.Request{CPUCores: 4, GPUs: 1, Nodes: 1}, false)
	if !ok {
		t.Fatal("expected placement")
	}
	if len(alloc.NodeIDs) != 1 || alloc.CPUCores != 4 || alloc.GPUs != 1 {
		t.Errorf("alloc = %+v", alloc)
	}
	// Multi-node placement splits GPUs per node.
	alloc, ok = PlaceRequest(c, job.Request{CPUCores: 2, GPUs: 4, Nodes: 2}, false)
	if !ok {
		t.Fatal("expected multi-node placement")
	}
	if len(alloc.NodeIDs) != 2 || alloc.GPUs != 2 {
		t.Errorf("alloc = %+v", alloc)
	}
	// Impossible request.
	if _, ok := PlaceRequest(c, job.Request{CPUCores: 99, GPUs: 1, Nodes: 1}, false); ok {
		t.Error("oversized request should not place")
	}
}

func TestFIFOOrdering(t *testing.T) {
	env := newFakeEnv(smallCluster())
	f := NewFIFO()
	f.Bind(env)

	// Job 1 fills node 0's GPUs+cores; job 2 fills node 1; job 3 must wait.
	f.Submit(gpuJob(1, 1, 8, 2))
	f.Submit(gpuJob(2, 1, 8, 2))
	f.Submit(gpuJob(3, 1, 1, 1))
	if len(env.started) != 2 {
		t.Fatalf("started = %v, want jobs 1,2", env.started)
	}
	if f.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1", f.QueueLen())
	}
	// Completion frees node 0; job 3 starts.
	env.release(t, 1)
	f.OnJobCompleted(&job.Job{ID: 1})
	if len(env.started) != 3 || env.started[2] != 3 {
		t.Errorf("started = %v, want [1 2 3]", env.started)
	}
	if f.QueueLen() != 0 {
		t.Errorf("QueueLen = %d, want 0", f.QueueLen())
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	env := newFakeEnv(smallCluster())
	f := NewFIFO()
	f.Bind(env)

	f.Submit(gpuJob(1, 1, 8, 2))  // fills node 0
	f.Submit(gpuJob(2, 1, 8, 2))  // fills node 1
	f.Submit(gpuJob(3, 1, 16, 2)) // can never fit: blocks
	f.Submit(cpuJob(4, 2, 1))     // would fit, but FIFO blocks it
	if len(env.started) != 2 {
		t.Fatalf("started = %v", env.started)
	}
	f.Tick()
	if len(env.started) != 2 {
		t.Errorf("HOL blocking violated: started = %v", env.started)
	}
}

func TestFIFOStartFailureKeepsJobQueued(t *testing.T) {
	env := newFakeEnv(smallCluster())
	env.failIDs[1] = true
	f := NewFIFO()
	f.Bind(env)
	f.Submit(cpuJob(1, 1, 1))
	if f.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1 (failed start must not drop job)", f.QueueLen())
	}
}

func TestFIFOName(t *testing.T) {
	if got := NewFIFO().Name(); got != "fifo" {
		t.Errorf("Name = %q", got)
	}
}

func TestDRFFairnessOrdering(t *testing.T) {
	env := newFakeEnv(smallCluster()) // 4 GPUs, 16 cores total
	d, err := NewDRF(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	d.Bind(env)

	// Tenant 1 holds node 0; a filler job holds node 1. Tenant 1 and
	// tenant 2 then queue one 1-GPU job each. When the filler completes,
	// tenant 2 (poorer in GPU share) must start first.
	d.Submit(gpuJob(1, 1, 8, 2))
	d.Submit(gpuJob(9, 4, 8, 2)) // filler
	d.Submit(gpuJob(2, 1, 2, 1))
	d.Submit(gpuJob(3, 2, 2, 1))
	if len(env.started) != 2 {
		t.Fatalf("started = %v, want only jobs 1 and 9", env.started)
	}
	env.release(t, 9)
	d.OnJobCompleted(gpuJob(9, 4, 8, 2))
	if len(env.started) != 4 {
		t.Fatalf("started = %v, want 4 jobs started", env.started)
	}
	if env.started[2] != 3 || env.started[3] != 2 {
		t.Errorf("start order = %v, want tenant 2's job (id 3) before job 2", env.started)
	}
}

func TestDRFBlockedTenantDoesNotBlockOthers(t *testing.T) {
	env := newFakeEnv(smallCluster())
	d, err := NewDRF(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	d.Bind(env)

	d.Submit(gpuJob(1, 1, 8, 2)) // node 0 full
	d.Submit(gpuJob(2, 1, 8, 2)) // node 1 full
	d.Submit(gpuJob(3, 2, 8, 2)) // tenant 2 blocked
	d.Submit(cpuJob(4, 3, 4))    // tenant 3's CPU job: still fits? no cores left
	if len(env.started) != 2 {
		t.Fatalf("started = %v", env.started)
	}
	env.release(t, 1)
	d.OnJobCompleted(gpuJob(1, 1, 8, 2))
	// Tenant 2's blocked GPU job fits now; tenant 3's CPU job also fits
	// afterwards on remaining cores? Node 0 freed: 8 cores, 2 GPUs. Job 3
	// takes all 8 cores. Job 4 has nowhere to go.
	if len(env.started) != 3 || env.started[2] != 3 {
		t.Errorf("started = %v, want job 3 next", env.started)
	}
	if d.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1", d.QueueLen())
	}
}

func TestDRFRefundOnCompletion(t *testing.T) {
	env := newFakeEnv(smallCluster())
	d, err := NewDRF(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	d.Bind(env)
	j := gpuJob(1, 1, 2, 1)
	d.Submit(j)
	env.release(t, 1)
	d.OnJobCompleted(j)
	// After refund tenant 1 is as poor as tenant 2: FIFO within ties by ID.
	d.Submit(gpuJob(2, 2, 2, 1))
	d.Submit(gpuJob(3, 1, 2, 1))
	if len(env.started) != 3 {
		t.Fatalf("started = %v", env.started)
	}
}

func TestDRFName(t *testing.T) {
	d, err := NewDRF(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Name(); got != "drf" {
		t.Errorf("Name = %q", got)
	}
}

func TestNewDRFValidation(t *testing.T) {
	if _, err := NewDRF(0, 4); err == nil {
		t.Error("NewDRF(0 cpu) should fail")
	}
	if _, err := NewDRF(10, 0); err == nil {
		t.Error("NewDRF(0 gpu) should fail with DominantGPU")
	}
}
