package sched

import (
	"testing"

	"github.com/coda-repro/coda/internal/job"
)

func TestStaticName(t *testing.T) {
	if got := NewStatic(28, 5).Name(); got != "static" {
		t.Errorf("Name = %q", got)
	}
}

func TestStaticCoresPerGPU(t *testing.T) {
	tests := []struct {
		cores, gpus, want int
	}{
		{28, 5, 5}, // 28/5 = 5 (integer)
		{28, 4, 7}, // clean split
		{8, 2, 4},  // small node
		{4, 8, 1},  // floor at 1
		{28, 0, 1}, // cpu-only shape degenerates to 1
	}
	for _, tt := range tests {
		s := NewStatic(tt.cores, tt.gpus)
		if s.coresPerGPU != tt.want {
			t.Errorf("NewStatic(%d,%d).coresPerGPU = %d, want %d", tt.cores, tt.gpus, s.coresPerGPU, tt.want)
		}
	}
}

func TestStaticGPURequestRewritten(t *testing.T) {
	env := newFakeEnv(smallCluster()) // 8 cores, 2 GPUs/node -> 4 cores/GPU
	s := NewStatic(8, 2)
	s.Bind(env)

	// The owner asked for 1 core; the static split grants 4 per GPU.
	s.Submit(gpuJob(1, 1, 1, 1))
	if len(env.started) != 1 {
		t.Fatalf("started = %v", env.started)
	}
	n, _ := env.c.Node(0)
	cores, gpus, _ := n.JobShare(1)
	if cores != 4 || gpus != 1 {
		t.Errorf("share = %d cores %d gpus, want 4, 1", cores, gpus)
	}

	// A 2-GPU job takes the whole node's cores: nothing else fits there.
	s.Submit(gpuJob(2, 1, 1, 2))
	n1, _ := env.c.Node(1)
	if n1.FreeCores() != 0 {
		t.Errorf("node 1 free cores = %d, want 0 (statically split)", n1.FreeCores())
	}
}

func TestStaticCPUJobsStarved(t *testing.T) {
	env := newFakeEnv(smallCluster())
	s := NewStatic(8, 2)
	s.Bind(env)
	// Two 2-GPU jobs consume every core of both nodes.
	s.Submit(gpuJob(1, 1, 1, 2))
	s.Submit(gpuJob(2, 1, 1, 2))
	// The CPU job has nowhere to run: the paper's CPU-underutilization
	// complaint inverted — here CPU jobs starve while GPU-side cores idle
	// inside over-sized slices.
	s.Submit(cpuJob(3, 2, 1))
	if len(env.started) != 2 {
		t.Fatalf("started = %v", env.started)
	}
	if s.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1", s.QueueLen())
	}
	env.release(t, 1)
	s.OnJobCompleted(&job.Job{ID: 1})
	if len(env.started) != 3 {
		t.Errorf("CPU job did not start after a GPU job freed its slice: %v", env.started)
	}
}
