package sched

import (
	"testing"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
)

// exclude builds an ExcludeSet from node IDs (test helper).
func exclude(ids ...int) *ExcludeSet {
	var s ExcludeSet
	for _, id := range ids {
		s.Add(id)
	}
	return &s
}

func TestPlaceRequestExcluding(t *testing.T) {
	c := cluster.MustNew(smallCluster()) // 2 nodes, 8 cores, 2 GPUs each
	req := job.Request{CPUCores: 2, GPUs: 1, Nodes: 1}

	alloc, ok := PlaceRequestExcluding(c, req, false, exclude(0))
	if !ok || alloc.NodeIDs[0] != 1 {
		t.Errorf("excluded node used: %+v, %v", alloc, ok)
	}
	if _, ok := PlaceRequestExcluding(c, req, false, exclude(0, 1)); ok {
		t.Error("all nodes excluded should fail")
	}
	// nil exclusion behaves like PlaceRequest.
	alloc, ok = PlaceRequestExcluding(c, req, false, nil)
	if !ok || alloc.NodeIDs[0] != 0 {
		t.Errorf("first fit = %+v, %v", alloc, ok)
	}
}

func TestPlaceRequestExcludingBestFit(t *testing.T) {
	c := cluster.MustNew(smallCluster())
	// Load node 1 so it has fewer free GPUs.
	if err := c.Allocate(1, job.Allocation{NodeIDs: []int{1}, CPUCores: 2, GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	alloc, ok := PlaceRequestExcluding(c, job.Request{CPUCores: 1, GPUs: 1, Nodes: 1}, true, nil)
	if !ok || alloc.NodeIDs[0] != 1 {
		t.Errorf("best fit should pack node 1: %+v, %v", alloc, ok)
	}
}

func TestReserveNodes(t *testing.T) {
	c := cluster.MustNew(smallCluster())
	// Node 0 busier than node 1: the hold goes to the node with the most
	// free GPUs (soonest to fit).
	if err := c.Allocate(1, job.Allocation{NodeIDs: []int{0}, CPUCores: 2, GPUs: 1}); err != nil {
		t.Fatal(err)
	}
	nodes := ReserveNodes(c, job.Request{CPUCores: 4, GPUs: 2, Nodes: 1}, nil)
	if len(nodes) != 1 || nodes[0] != 1 {
		t.Errorf("ReserveNodes = %v, want [1]", nodes)
	}
	// Excluded nodes are skipped.
	nodes = ReserveNodes(c, job.Request{CPUCores: 4, GPUs: 2, Nodes: 1}, exclude(1))
	if len(nodes) != 1 || nodes[0] != 0 {
		t.Errorf("ReserveNodes = %v, want [0]", nodes)
	}
	// Requests that no node shape can ever host return nil.
	if nodes := ReserveNodes(c, job.Request{CPUCores: 99, GPUs: 1, Nodes: 1}, nil); nodes != nil {
		t.Errorf("impossible request reserved %v", nodes)
	}
	if nodes := ReserveNodes(c, job.Request{CPUCores: 1, GPUs: 3, Nodes: 1}, nil); nodes != nil {
		t.Errorf("oversized GPU request reserved %v", nodes)
	}
}

func TestFIFOReservationHoldsNodes(t *testing.T) {
	env := newFakeEnv(smallCluster())
	f := NewFIFO()
	f.ReserveDepth = 1
	f.Bind(env)

	// Job 1 occupies 1 GPU on node 0. Job 2 wants 2 GPUs on one node:
	// only node 1 qualifies... it fits, so make it bigger: both nodes
	// partially busy first.
	f.Submit(gpuJob(1, 1, 2, 1)) // lands on node 0
	f.Submit(gpuJob(2, 1, 2, 1)) // first-fit: node 0 (1 GPU left)
	f.Submit(gpuJob(3, 1, 2, 1)) // node 1
	if len(env.started) != 3 {
		t.Fatalf("started = %v", env.started)
	}
	// Job 4 wants 2 GPUs on one node: nowhere fits -> reserves node 1
	// (most free GPUs). Job 5 (1 GPU) would fit node 1, but the hold
	// blocks it.
	f.Submit(gpuJob(4, 1, 2, 2))
	f.Submit(gpuJob(5, 1, 1, 1))
	if len(env.started) != 3 {
		t.Errorf("reservation violated: started = %v", env.started)
	}
	// Freeing node 1 lets the held job start there.
	env.release(t, 3)
	f.OnJobCompleted(gpuJob(3, 1, 2, 1))
	if len(env.started) < 4 || env.started[3] != 4 {
		t.Errorf("held job did not start first: %v", env.started)
	}
}

func TestFIFOWindowLimit(t *testing.T) {
	env := newFakeEnv(smallCluster())
	f := NewFIFO()
	f.Window = 1
	f.Bind(env)
	f.Submit(gpuJob(1, 1, 16, 2)) // never fits: 16 cores > node
	f.Submit(cpuJob(2, 1, 1))     // fits, but beyond the scan window
	if len(env.started) != 0 {
		t.Errorf("window ignored: started = %v", env.started)
	}
	f.Window = 0
	f.Tick()
	if len(env.started) != 1 || env.started[0] != 2 {
		t.Errorf("unbounded scan should start job 2: %v", env.started)
	}
}

func TestDRFReservationHoldsNodes(t *testing.T) {
	env := newFakeEnv(smallCluster())
	d, err := NewDRF(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	d.ReserveDepth = 1
	d.Bind(env)

	d.Submit(gpuJob(1, 1, 2, 1)) // node 0
	d.Submit(gpuJob(2, 1, 2, 1)) // node 0
	d.Submit(gpuJob(3, 1, 2, 1)) // node 1
	// Tenant 2's 2-GPU job blocks and reserves node 1; tenant 3's 1-GPU
	// job must not take the held node.
	d.Submit(gpuJob(4, 2, 2, 2))
	d.Submit(gpuJob(5, 3, 1, 1))
	if len(env.started) != 3 {
		t.Errorf("reservation violated: started = %v", env.started)
	}
}
