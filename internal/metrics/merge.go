package metrics

import (
	"fmt"
	"time"
)

// Merge folds every sample of o into c. Merging is how multi-run
// experiments build one distribution out of per-run CDFs; o is unchanged.
// Merging a sketch into an exact CDF upgrades the receiver to a sketch
// (exact samples can be bucketed; buckets cannot be un-bucketed).
func (c *CDF) Merge(o *CDF) {
	if o == nil || o.Len() == 0 {
		return
	}
	if o.sketch && !c.sketch {
		c.UseSketch()
	}
	if c.sketch {
		if o.sketch {
			if len(o.buckets) > len(c.buckets) {
				grown := make([]int64, len(o.buckets))
				copy(grown, c.buckets)
				c.buckets = grown
			}
			for i, n := range o.buckets {
				c.buckets[i] += n
			}
			c.count += o.count
			c.sumNs += o.sumNs
			return
		}
		for _, d := range o.samples {
			c.addSketch(d)
		}
		return
	}
	c.samples = append(c.samples, o.samples...)
	c.sorted = false
}

// Merge folds every key of o into p, merging CDFs key by key.
func (p *PerKeyCDF) Merge(o *PerKeyCDF) {
	if o == nil {
		return
	}
	for _, k := range o.Keys() {
		c, ok := p.cdfs[k]
		if !ok {
			c = &CDF{}
			p.cdfs[k] = c
		}
		c.Merge(o.cdfs[k])
	}
}

// MeanSeries returns the pointwise mean of the series: sample i of the
// output averages sample i of every input. The inputs must be non-empty,
// equal-length and share identical timestamps — the shape produced by
// same-trace runs that only differ in seed. Accumulation iterates inputs
// in slice order so the result is deterministic for a fixed argument
// order.
func MeanSeries(series []*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("metrics: mean of no series")
	}
	n := series[0].Len()
	for i, s := range series {
		if s.Len() != n {
			return nil, fmt.Errorf("metrics: series %d has %d samples, series 0 has %d", i, s.Len(), n)
		}
	}
	out := &Series{
		times:  make([]time.Duration, n),
		values: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		t0 := series[0].times[i]
		sum := 0.0
		for j, s := range series {
			if s.times[i] != t0 {
				return nil, fmt.Errorf("metrics: series %d sample %d at %v, series 0 at %v", j, i, s.times[i], t0)
			}
			sum += s.values[i]
		}
		out.times[i] = t0
		out.values[i] = sum / float64(len(series))
	}
	return out, nil
}
