package metrics

import (
	"math/bits"
	"time"
)

// Log-bucketed CDF sketch: the O(1)-memory alternative to the raw-sample
// CDF for runs whose job count makes per-sample storage O(jobs). Durations
// hash to one of ~500 fixed buckets — exact below 16ns, then 8 sub-buckets
// per power of two — so any stored value is at most 12.5% below the true
// one (a bucket's representative is its lower bound). That resolution is
// far finer than the paper's queueing-time comparisons need, and the bucket
// function is pure arithmetic: same samples, same sketch, bit for bit.

const (
	// sketchSubBits sub-divides each octave into 2^sketchSubBits buckets.
	sketchSubBits = 3
	sketchSub     = 1 << sketchSubBits
	// sketchMaxBuckets bounds the index space: positive durations occupy
	// exponents up to 62, each contributing sketchSub buckets past the
	// 2*sketchSub exact ones.
	sketchMaxBuckets = 2*sketchSub + (62-sketchSubBits)*sketchSub
)

// sketchBucket maps a duration to its bucket index. Non-positive durations
// share bucket 0; values below 2*sketchSub ns are exact.
func sketchBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	v := uint64(d)
	exp := bits.Len64(v) - 1
	if exp <= sketchSubBits {
		return int(v)
	}
	sub := int((v >> uint(exp-sketchSubBits)) & (sketchSub - 1))
	return 2*sketchSub + (exp-sketchSubBits-1)*sketchSub + sub
}

// sketchValue returns the bucket's representative duration: its lower
// bound, so sketched statistics never overstate a queueing time.
func sketchValue(idx int) time.Duration {
	if idx < 2*sketchSub {
		return time.Duration(idx)
	}
	idx -= 2 * sketchSub
	exp := uint(idx/sketchSub + sketchSubBits + 1)
	sub := uint64(idx % sketchSub)
	return time.Duration(uint64(1)<<exp | sub<<(exp-sketchSubBits))
}

// UseSketch switches the CDF to sketch mode, folding any already-collected
// samples into buckets. Queries keep working (Percentile, FractionAtMost,
// Mean, Points) at bucket resolution; per-sample order is forgotten, so a
// sketched CDF is not byte-comparable to an exact one.
func (c *CDF) UseSketch() {
	if c.sketch {
		return
	}
	c.sketch = true
	for _, d := range c.samples {
		c.addSketch(d)
	}
	c.samples = nil
	c.sorted = false
}

// Sketch reports whether the CDF stores buckets instead of raw samples.
func (c *CDF) Sketch() bool { return c.sketch }

func (c *CDF) addSketch(d time.Duration) {
	idx := sketchBucket(d)
	if idx >= len(c.buckets) {
		grown := make([]int64, idx+1)
		copy(grown, c.buckets)
		c.buckets = grown
	}
	c.buckets[idx]++
	c.count++
	// float64 accumulation: int64 nanosecond sums overflow at ~292 years of
	// queueing time, which 25M jobs × hours of queueing can reach.
	c.sumNs += float64(d)
}

func (c *CDF) sketchFractionAtMost(d time.Duration) float64 {
	if c.count == 0 {
		return 0
	}
	hi := sketchBucket(d)
	var n int64
	for i, cnt := range c.buckets {
		if i > hi {
			break
		}
		n += cnt
	}
	return float64(n) / float64(c.count)
}

func (c *CDF) sketchPercentile(rank int64) time.Duration {
	var cum int64
	for i, cnt := range c.buckets {
		cum += cnt
		if cum >= rank {
			return sketchValue(i)
		}
	}
	if n := len(c.buckets); n > 0 {
		return sketchValue(n - 1)
	}
	return 0
}

func (c *CDF) sketchPoints() []CDFPoint {
	if c.count == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum int64
	for i, cnt := range c.buckets {
		if cnt == 0 {
			continue
		}
		cum += cnt
		pts = append(pts, CDFPoint{Value: sketchValue(i), Fraction: float64(cum) / float64(c.count)})
	}
	return pts
}

// NewPerKeyCDFSketch builds a per-key collection whose CDFs are sketches
// from birth (see CDF.UseSketch).
func NewPerKeyCDFSketch() *PerKeyCDF {
	p := NewPerKeyCDF()
	p.sketch = true
	return p
}
