package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := &Series{}
	for i := 0; i < 5; i++ {
		if err := s.Add(time.Duration(i)*time.Minute, float64(i)*0.3); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Series
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		t1, v1 := s.At(i)
		t2, v2 := got.At(i)
		if t1 != t2 || v1 != v2 {
			t.Fatalf("sample %d: (%v,%v) != (%v,%v)", i, t2, v2, t1, v1)
		}
	}
}

func TestSeriesJSONRejectsLengthMismatch(t *testing.T) {
	var s Series
	err := json.Unmarshal([]byte(`{"times":[1,2],"values":[0.5]}`), &s)
	if err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestCDFJSONPreservesRawOrderAndFlag(t *testing.T) {
	c := &CDF{}
	// Out-of-order samples: the encoding must keep them raw.
	for _, d := range []time.Duration{3 * time.Second, time.Second, 2 * time.Second} {
		c.Add(d)
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sorted":false`) {
		t.Fatalf("sorted flag missing: %s", data)
	}
	var got CDF
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.samples[0] != 3*time.Second {
		t.Fatalf("raw order not preserved: %v", got.samples)
	}
	// Marshaling must not have sorted the original.
	if c.sorted || c.samples[0] != 3*time.Second {
		t.Fatalf("marshal mutated the CDF: sorted=%v samples=%v", c.sorted, c.samples)
	}
	// A sorted CDF round-trips its flag too.
	_ = c.Percentile(50)
	data, err = json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var got2 CDF
	if err := json.Unmarshal(data, &got2); err != nil {
		t.Fatal(err)
	}
	if !got2.sorted {
		t.Fatal("sorted flag lost")
	}
}

func TestPerKeyCDFJSONRoundTrip(t *testing.T) {
	p := NewPerKeyCDF()
	p.Add(7, time.Second)
	p.Add(2, 2*time.Second)
	p.Add(7, 3*time.Second)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got PerKeyCDF
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Keys()) != 2 || got.Get(7).Len() != 2 || got.Get(2).Len() != 1 {
		t.Fatalf("round trip mismatch: keys=%v", got.Keys())
	}
	// Adding after restore must not panic (map must be initialized).
	got.Add(9, time.Second)
	if got.Get(9) == nil {
		t.Fatal("post-restore Add failed")
	}
}

func TestPerKeyCDFJSONRejectsBadPayloads(t *testing.T) {
	cases := []string{
		`[{"key":1,"cdf":null}]`,
		`[{"key":1,"cdf":{"samples":[],"sorted":false}},{"key":1,"cdf":{"samples":[],"sorted":false}}]`,
		`[{"key":2,"cdf":{"samples":[],"sorted":false}},{"key":1,"cdf":{"samples":[],"sorted":false}}]`,
	}
	for _, c := range cases {
		var p PerKeyCDF
		if err := json.Unmarshal([]byte(c), &p); err == nil {
			t.Errorf("payload %s should be rejected", c)
		}
	}
}
