package metrics

import (
	"testing"
	"time"
)

func TestCDFMerge(t *testing.T) {
	var a, b CDF
	a.Add(time.Second)
	a.Add(3 * time.Second)
	b.Add(2 * time.Second)
	a.Merge(&b)
	if a.Len() != 3 {
		t.Fatalf("merged len = %d, want 3", a.Len())
	}
	if got := a.Percentile(50); got != 2*time.Second {
		t.Errorf("median after merge = %v, want 2s", got)
	}
	// Merging nil and empty is a no-op; the source is unchanged.
	a.Merge(nil)
	a.Merge(&CDF{})
	if a.Len() != 3 || b.Len() != 1 {
		t.Errorf("no-op merges changed lengths: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestPerKeyCDFMerge(t *testing.T) {
	p, q := NewPerKeyCDF(), NewPerKeyCDF()
	p.Add(1, time.Second)
	q.Add(1, 3*time.Second)
	q.Add(2, time.Minute)
	p.Merge(q)
	if keys := p.Keys(); len(keys) != 2 || keys[0] != 1 || keys[1] != 2 {
		t.Fatalf("merged keys = %v, want [1 2]", keys)
	}
	if got := p.Get(1).Len(); got != 2 {
		t.Errorf("key 1 has %d samples, want 2", got)
	}
	if got := p.Percentile(2, 99); got != time.Minute {
		t.Errorf("key 2 p99 = %v, want 1m", got)
	}
	p.Merge(nil) // no-op
}

func TestMeanSeries(t *testing.T) {
	var a, b Series
	for i, v := range []float64{1, 2, 3} {
		if err := a.Add(time.Duration(i)*time.Minute, v); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(time.Duration(i)*time.Minute, v+1); err != nil {
			t.Fatal(err)
		}
	}
	mean, err := MeanSeries([]*Series{&a, &b})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2.5, 3.5}
	for i := 0; i < mean.Len(); i++ {
		tm, v := mean.At(i)
		if tm != time.Duration(i)*time.Minute || v != want[i] {
			t.Errorf("sample %d = (%v, %g), want (%v, %g)", i, tm, v, time.Duration(i)*time.Minute, want[i])
		}
	}
}

func TestMeanSeriesErrors(t *testing.T) {
	if _, err := MeanSeries(nil); err == nil {
		t.Error("mean of no series should fail")
	}
	var a, b Series
	_ = a.Add(0, 1)
	if _, err := MeanSeries([]*Series{&a, &b}); err == nil {
		t.Error("length mismatch should fail")
	}
	var c Series
	_ = c.Add(time.Second, 1)
	if _, err := MeanSeries([]*Series{&a, &c}); err == nil {
		t.Error("timestamp mismatch should fail")
	}
}
