package metrics

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

// sketchTestSamples returns a deterministic spread of durations covering the
// exact range, several octaves and the sub-bucket boundaries.
func sketchTestSamples() []time.Duration {
	rng := rand.New(rand.NewSource(7))
	out := []time.Duration{0, 1, 5, 15, 16, 17, 1000, time.Microsecond, time.Millisecond, time.Second, time.Minute, time.Hour, 24 * time.Hour}
	for i := 0; i < 500; i++ {
		out = append(out, time.Duration(rng.Int63n(int64(48*time.Hour))))
	}
	return out
}

func TestSketchBucketValueRoundTrip(t *testing.T) {
	for _, d := range sketchTestSamples() {
		idx := sketchBucket(d)
		if idx < 0 || idx >= sketchMaxBuckets {
			t.Fatalf("bucket(%v) = %d, outside [0, %d)", d, idx, sketchMaxBuckets)
		}
		v := sketchValue(idx)
		if v > d {
			t.Errorf("representative %v overstates sample %v", v, d)
		}
		// A bucket spans at most 1/2^sketchSubBits of its octave, so the
		// lower bound is within 12.5% of any value it holds.
		if float64(v) < float64(d)*0.875-1 {
			t.Errorf("representative %v more than 12.5%% below sample %v", v, d)
		}
		if back := sketchBucket(v); back != idx {
			t.Errorf("bucket(value(%d)) = %d, want a fixed point", idx, back)
		}
	}
	// Exact below 2*sketchSub nanoseconds, and bucket 0 absorbs non-positives.
	for d := time.Duration(0); d < 2*sketchSub; d++ {
		if got := sketchValue(sketchBucket(d)); got != d {
			t.Errorf("small duration %v round-tripped to %v, want exact", d, got)
		}
	}
	if sketchBucket(-time.Second) != 0 {
		t.Error("negative duration did not map to bucket 0")
	}
}

func TestSketchBucketMonotone(t *testing.T) {
	prev := -1
	for d := time.Duration(1); d < 1<<40; d = d*9/8 + 1 {
		idx := sketchBucket(d)
		if idx < prev {
			t.Fatalf("bucket(%v) = %d below an earlier bucket %d", d, idx, prev)
		}
		prev = idx
	}
}

func TestSketchQueriesTrackExact(t *testing.T) {
	var exact, sk CDF
	sk.UseSketch()
	for _, d := range sketchTestSamples() {
		exact.Add(d)
		sk.Add(d)
	}
	if sk.Len() != exact.Len() {
		t.Fatalf("sketch holds %d samples, exact %d", sk.Len(), exact.Len())
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 100} {
		e, s := exact.Percentile(p), sk.Percentile(p)
		if s > e {
			t.Errorf("p%g: sketch %v above exact %v", p, s, e)
		}
		if float64(s) < float64(e)*0.875-1 {
			t.Errorf("p%g: sketch %v more than 12.5%% below exact %v", p, s, e)
		}
	}
	if em, sm := exact.Mean(), sk.Mean(); sm != em {
		// The sketch sums true values, not representatives: means agree to
		// float64 accumulation order, i.e. exactly here.
		t.Errorf("mean: sketch %v, exact %v", sm, em)
	}
	for _, d := range []time.Duration{0, time.Millisecond, time.Second, time.Hour} {
		ef, sf := exact.FractionAtMost(d), sk.FractionAtMost(d)
		if sf < ef {
			t.Errorf("FractionAtMost(%v): sketch %g below exact %g", d, sf, ef)
		}
	}
}

func TestUseSketchFoldsExistingSamples(t *testing.T) {
	var folded, born CDF
	born.UseSketch()
	for _, d := range sketchTestSamples() {
		folded.Add(d)
		born.Add(d)
	}
	folded.UseSketch()
	if !folded.Sketch() {
		t.Fatal("UseSketch did not switch modes")
	}
	if folded.Len() != born.Len() {
		t.Fatalf("folded sketch holds %d samples, from-birth %d", folded.Len(), born.Len())
	}
	for _, p := range []float64{50, 90, 99} {
		if f, b := folded.Percentile(p), born.Percentile(p); f != b {
			t.Errorf("p%g: folded %v, from-birth %v", p, f, b)
		}
	}
}

func TestSketchMergeUpgrades(t *testing.T) {
	mk := func(sketch bool, ds ...time.Duration) *CDF {
		c := &CDF{}
		if sketch {
			c.UseSketch()
		}
		for _, d := range ds {
			c.Add(d)
		}
		return c
	}

	// exact.Merge(sketch) upgrades the receiver.
	a := mk(false, time.Second, time.Minute)
	a.Merge(mk(true, time.Hour))
	if !a.Sketch() || a.Len() != 3 {
		t.Fatalf("exact+sketch merge: sketch=%v len=%d, want sketch len 3", a.Sketch(), a.Len())
	}

	// sketch.Merge(exact) buckets the samples.
	b := mk(true, time.Second)
	b.Merge(mk(false, time.Minute, time.Hour))
	if !b.Sketch() || b.Len() != 3 {
		t.Fatalf("sketch+exact merge: sketch=%v len=%d, want sketch len 3", b.Sketch(), b.Len())
	}

	// sketch.Merge(sketch) adds buckets; order of merging must not matter.
	c := mk(true, time.Second, time.Minute)
	c.Merge(mk(true, time.Hour, 0))
	if c.Len() != 4 {
		t.Fatalf("sketch+sketch merge holds %d samples, want 4", c.Len())
	}
	if a.Merge(b); a.Len() != 6 {
		t.Fatalf("chained merge holds %d samples, want 6", a.Len())
	}

	// exact.Merge(exact) must stay exact.
	d := mk(false, time.Second)
	d.Merge(mk(false, time.Minute))
	if d.Sketch() {
		t.Fatal("exact+exact merge produced a sketch")
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	var c CDF
	c.UseSketch()
	for _, d := range sketchTestSamples() {
		c.Add(d)
	}
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	var back CDF
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Sketch() || back.Len() != c.Len() {
		t.Fatalf("round trip: sketch=%v len=%d, want sketch len %d", back.Sketch(), back.Len(), c.Len())
	}
	for _, p := range []float64{50, 99} {
		if b, w := back.Percentile(p), c.Percentile(p); b != w {
			t.Errorf("p%g changed across round trip: %v vs %v", p, b, w)
		}
	}
	if b, w := back.Mean(), c.Mean(); b != w {
		t.Errorf("mean changed across round trip: %v vs %v", b, w)
	}
}

func TestSketchJSONRejectsCorruptPayloads(t *testing.T) {
	cases := map[string]string{
		"sketch state without flag": `{"samples":[],"sorted":false,"buckets":[{"i":1,"n":2}],"count":2}`,
		"raw samples in sketch":     `{"samples":[5],"sorted":false,"sketch":true,"count":1,"buckets":[{"i":5,"n":1}]}`,
		"unsorted buckets":          `{"samples":[],"sorted":false,"sketch":true,"count":2,"buckets":[{"i":5,"n":1},{"i":3,"n":1}]}`,
		"count mismatch":            `{"samples":[],"sorted":false,"sketch":true,"count":5,"buckets":[{"i":3,"n":1}]}`,
		"bucket out of range":       `{"samples":[],"sorted":false,"sketch":true,"count":1,"buckets":[{"i":99999,"n":1}]}`,
		"non-positive bucket count": `{"samples":[],"sorted":false,"sketch":true,"count":0,"buckets":[{"i":3,"n":0}]}`,
	}
	for name, payload := range cases {
		var c CDF
		if err := json.Unmarshal([]byte(payload), &c); err == nil {
			t.Errorf("%s: corrupt payload accepted", name)
		}
	}
}
