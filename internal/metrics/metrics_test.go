package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesAddOrdering(t *testing.T) {
	var s Series
	if err := s.Add(time.Second, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(time.Second, 2); err != nil {
		t.Fatal(err) // equal timestamps are allowed
	}
	if err := s.Add(time.Millisecond, 3); err == nil {
		t.Error("out-of-order Add should fail")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	gotT, gotV := s.At(1)
	if gotT != time.Second || gotV != 2 {
		t.Errorf("At(1) = %v, %g", gotT, gotV)
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Error("empty series stats should be 0")
	}
	for i, v := range []float64{2, 8, 5} {
		if err := s.Add(time.Duration(i)*time.Second, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := s.Max(); got != 8 {
		t.Errorf("Max = %g, want 8", got)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %g, want 2", got)
	}
}

func TestSeriesCopies(t *testing.T) {
	var s Series
	if err := s.Add(time.Second, 1); err != nil {
		t.Fatal(err)
	}
	vals := s.Values()
	vals[0] = 99
	if got := s.Mean(); got != 1 {
		t.Error("Values() must return a copy")
	}
	times := s.Times()
	times[0] = 0
	if gotT, _ := s.At(0); gotT != time.Second {
		t.Error("Times() must return a copy")
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	// Two samples in [0,1m), one in [1m,2m), gap, one in [3m,4m).
	samples := []struct {
		t time.Duration
		v float64
	}{
		{0, 2}, {30 * time.Second, 4},
		{time.Minute, 10},
		{3 * time.Minute, 6},
	}
	for _, smp := range samples {
		if err := s.Add(smp.t, smp.v); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := s.Downsample(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 {
		t.Fatalf("downsampled Len = %d, want 3", ds.Len())
	}
	wantVals := []float64{3, 10, 6}
	wantTimes := []time.Duration{0, time.Minute, 3 * time.Minute}
	for i := range wantVals {
		gotT, gotV := ds.At(i)
		if gotT != wantTimes[i] || gotV != wantVals[i] {
			t.Errorf("At(%d) = %v, %g; want %v, %g", i, gotT, gotV, wantTimes[i], wantVals[i])
		}
	}
	if _, err := s.Downsample(0); err == nil {
		t.Error("Downsample(0) should fail")
	}
	var empty Series
	ds, err = empty.Downsample(time.Minute)
	if err != nil || ds.Len() != 0 {
		t.Errorf("empty Downsample = %d samples, err %v", ds.Len(), err)
	}
}

func TestCDFQueries(t *testing.T) {
	var c CDF
	if c.FractionAtMost(time.Second) != 0 || c.FractionAbove(time.Second) != 0 {
		t.Error("empty CDF fractions should be 0")
	}
	if c.Percentile(99) != 0 || c.Mean() != 0 {
		t.Error("empty CDF percentile/mean should be 0")
	}
	for _, d := range []time.Duration{4 * time.Second, time.Second, 2 * time.Second, 3 * time.Second} {
		c.Add(d)
	}
	if got := c.FractionAtMost(2 * time.Second); got != 0.5 {
		t.Errorf("FractionAtMost(2s) = %g, want 0.5", got)
	}
	if got := c.FractionAbove(3 * time.Second); got != 0.25 {
		t.Errorf("FractionAbove(3s) = %g, want 0.25", got)
	}
	if got := c.FractionAtMost(10 * time.Second); got != 1 {
		t.Errorf("FractionAtMost(10s) = %g, want 1", got)
	}
	if got := c.Percentile(50); got != 2*time.Second {
		t.Errorf("Percentile(50) = %v, want 2s", got)
	}
	if got := c.Percentile(100); got != 4*time.Second {
		t.Errorf("Percentile(100) = %v, want 4s", got)
	}
	if got := c.Percentile(-5); got != time.Second {
		t.Errorf("Percentile(-5) = %v, want 1s", got)
	}
	if got := c.Percentile(200); got != 4*time.Second {
		t.Errorf("Percentile(200) = %v, want 4s", got)
	}
	if got := c.Mean(); got != 2500*time.Millisecond {
		t.Errorf("Mean = %v, want 2.5s", got)
	}
}

func TestCDFPoints(t *testing.T) {
	var c CDF
	if pts := c.Points(); pts != nil {
		t.Errorf("empty Points = %v", pts)
	}
	for _, d := range []time.Duration{time.Second, time.Second, 2 * time.Second} {
		c.Add(d)
	}
	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("Points len = %d, want 2 (duplicates merged)", len(pts))
	}
	if pts[0].Value != time.Second || math.Abs(pts[0].Fraction-2.0/3) > 1e-12 {
		t.Errorf("Points[0] = %+v", pts[0])
	}
	if pts[1].Value != 2*time.Second || pts[1].Fraction != 1 {
		t.Errorf("Points[1] = %+v", pts[1])
	}
}

func TestCDFAddAfterQuery(t *testing.T) {
	var c CDF
	c.Add(3 * time.Second)
	_ = c.Percentile(50) // forces sort
	c.Add(time.Second)   // must re-sort on next query
	if got := c.Percentile(50); got != time.Second {
		t.Errorf("Percentile(50) = %v, want 1s", got)
	}
}

func TestIntHistogram(t *testing.T) {
	if _, err := NewIntHistogram([]int{1}); err == nil {
		t.Error("single edge should fail")
	}
	if _, err := NewIntHistogram([]int{3, 3}); err == nil {
		t.Error("non-increasing edges should fail")
	}
	h, err := NewIntHistogram([]int{0, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{-2, 0, 3, 4, 5, 9, 10, 20} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if h.Underflow() != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow())
	}
	count, frac, err := h.Bucket(0) // [0,5): 0,3,4
	if err != nil || count != 3 || math.Abs(frac-3.0/8) > 1e-12 {
		t.Errorf("Bucket(0) = %d, %g, %v", count, frac, err)
	}
	count, _, err = h.Bucket(1) // [5,10): 5,9
	if err != nil || count != 2 {
		t.Errorf("Bucket(1) = %d, %v", count, err)
	}
	if _, _, err := h.Bucket(2); err == nil {
		t.Error("Bucket(2) should fail")
	}
	if got := h.FractionIn(0, 9); math.Abs(got-5.0/8) > 1e-12 {
		t.Errorf("FractionIn(0,9) = %g, want 5/8", got)
	}
	if got := h.FractionIn(0, 4); math.Abs(got-3.0/8) > 1e-12 {
		t.Errorf("FractionIn(0,4) = %g, want 3/8", got)
	}
}

func TestIntHistogramEmpty(t *testing.T) {
	h, err := NewIntHistogram([]int{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.FractionIn(0, 9); got != 0 {
		t.Errorf("empty FractionIn = %g, want 0", got)
	}
	_, frac, err := h.Bucket(0)
	if err != nil || frac != 0 {
		t.Errorf("empty Bucket = %g, %v", frac, err)
	}
}

func TestPerKeyCDF(t *testing.T) {
	p := NewPerKeyCDF()
	if got := p.Percentile(1, 99); got != 0 {
		t.Errorf("absent key Percentile = %v, want 0", got)
	}
	if got := p.Get(1); got != nil {
		t.Errorf("absent key Get = %v, want nil", got)
	}
	p.Add(2, time.Second)
	p.Add(2, 3*time.Second)
	p.Add(1, 10*time.Second)
	keys := p.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 2 {
		t.Errorf("Keys = %v, want [1 2]", keys)
	}
	if got := p.Percentile(2, 100); got != 3*time.Second {
		t.Errorf("Percentile(2, 100) = %v, want 3s", got)
	}
	if got := p.Get(1).Len(); got != 1 {
		t.Errorf("Get(1).Len = %d, want 1", got)
	}
}

// TestCDFPercentileProperty: the percentile is always one of the samples
// and FractionAtMost(Percentile(p)) >= p/100.
func TestCDFPercentileProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var c CDF
		for _, r := range raw {
			c.Add(time.Duration(r) * time.Millisecond)
		}
		p := float64(pRaw % 101) // 0..100
		got := c.Percentile(p)
		found := false
		for _, r := range raw {
			if time.Duration(r)*time.Millisecond == got {
				found = true
			}
		}
		return found && c.FractionAtMost(got) >= p/100-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCDFFractionMonotoneProperty: FractionAtMost is monotone in d.
func TestCDFFractionMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, a, b uint16) bool {
		var c CDF
		for _, r := range raw {
			c.Add(time.Duration(r) * time.Millisecond)
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.FractionAtMost(time.Duration(lo)*time.Millisecond) <=
			c.FractionAtMost(time.Duration(hi)*time.Millisecond)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDownsampleMeanProperty: downsampling preserves the set of values'
// global bounds — every bucket mean lies within [Min, Max] of the source.
func TestDownsampleMeanProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var s Series
		for i, r := range raw {
			if err := s.Add(time.Duration(i)*time.Second, float64(r)); err != nil {
				return false
			}
		}
		ds, err := s.Downsample(5 * time.Second)
		if err != nil {
			return false
		}
		vals := ds.Values()
		sort.Float64s(vals)
		if len(vals) == 0 {
			return len(raw) == 0
		}
		return vals[0] >= s.Min()-1e-9 && vals[len(vals)-1] <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFaultCounters(t *testing.T) {
	var c FaultCounters
	if c.Any() {
		t.Error("zero counters report activity")
	}
	c.Add(FaultCounters{NodeCrashes: 1, JobKills: 2, GoodputLost: time.Minute})
	c.Add(FaultCounters{NodeCrashes: 1, Requeues: 2, DegradedSamples: 5})
	if !c.Any() {
		t.Error("non-zero counters report no activity")
	}
	want := FaultCounters{NodeCrashes: 2, JobKills: 2, Requeues: 2, DegradedSamples: 5, GoodputLost: time.Minute}
	if c != want {
		t.Errorf("accumulated counters = %+v, want %+v", c, want)
	}
}
