// Package metrics provides the measurement primitives every experiment in
// the paper reports on: time series of active/utilization rates (Figs. 1
// and 10), queueing-time CDFs (Fig. 11), per-user 99th-percentile queueing
// times (Fig. 12), and histograms of allocator core adjustments (Fig. 14).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series is a time-ordered sequence of (time, value) samples.
type Series struct {
	times  []time.Duration
	values []float64
}

// Add appends a sample. Samples must arrive in non-decreasing time order.
func (s *Series) Add(t time.Duration, v float64) error {
	if n := len(s.times); n > 0 && t < s.times[n-1] {
		return fmt.Errorf("metrics: sample at %v arrives after %v", t, s.times[n-1])
	}
	s.times = append(s.times, t)
	s.values = append(s.values, v)
	return nil
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.values) }

// Grow pre-allocates capacity for n additional samples so callers that
// know their sample budget up front never reallocate mid-run.
func (s *Series) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(s.times) - len(s.times); free < n {
		times := make([]time.Duration, len(s.times), len(s.times)+n)
		copy(times, s.times)
		s.times = times
	}
	if free := cap(s.values) - len(s.values); free < n {
		values := make([]float64, len(s.values), len(s.values)+n)
		copy(values, s.values)
		s.values = values
	}
}

// At returns the i-th sample.
func (s *Series) At(i int) (time.Duration, float64) { return s.times[i], s.values[i] }

// Mean returns the arithmetic mean of the values (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Max returns the maximum value (0 for an empty series).
func (s *Series) Max() float64 {
	max := 0.0
	for i, v := range s.values {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Min returns the minimum value (0 for an empty series).
func (s *Series) Min() float64 {
	min := 0.0
	for i, v := range s.values {
		if i == 0 || v < min {
			min = v
		}
	}
	return min
}

// Values returns a copy of the values.
func (s *Series) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// Times returns a copy of the sample times.
func (s *Series) Times() []time.Duration {
	return append([]time.Duration(nil), s.times...)
}

// Downsample returns a series with one mean-aggregated sample per bucket of
// width. Used to turn fine-grained simulation samples into the hourly
// points Figs. 1 and 10 plot.
func (s *Series) Downsample(width time.Duration) (*Series, error) {
	if width <= 0 {
		return nil, fmt.Errorf("metrics: downsample width must be positive, got %v", width)
	}
	out := &Series{}
	if len(s.times) == 0 {
		return out, nil
	}
	bucketStart := s.times[0] - s.times[0]%width
	sum, count := 0.0, 0
	flush := func() {
		if count > 0 {
			out.times = append(out.times, bucketStart)
			out.values = append(out.values, sum/float64(count))
		}
	}
	for i, t := range s.times {
		for t >= bucketStart+width {
			flush()
			bucketStart += width
			sum, count = 0, 0
		}
		sum += s.values[i]
		count++
	}
	flush()
	return out, nil
}

// CDF accumulates duration samples and answers distribution queries. It has
// two storage modes: exact (every sample retained, the default) and sketch
// (log-bucketed counts, O(1) memory in the sample count — see UseSketch).
type CDF struct {
	samples []time.Duration
	sorted  bool
	// Sketch mode (see sketch.go): fixed log-spaced buckets plus count and
	// a float64 nanosecond sum for the mean.
	sketch  bool
	buckets []int64
	count   int64
	sumNs   float64
}

// Add appends a sample.
func (c *CDF) Add(d time.Duration) {
	if c.sketch {
		c.addSketch(d)
		return
	}
	c.samples = append(c.samples, d)
	c.sorted = false
}

// Len returns the sample count.
func (c *CDF) Len() int {
	if c.sketch {
		return int(c.count)
	}
	return len(c.samples)
}

// Grow pre-allocates capacity for n additional samples (see Series.Grow).
// Sketch-mode CDFs have fixed storage and ignore it.
func (c *CDF) Grow(n int) {
	if n <= 0 || c.sketch {
		return
	}
	if free := cap(c.samples) - len(c.samples); free < n {
		samples := make([]time.Duration, len(c.samples), len(c.samples)+n)
		copy(samples, c.samples)
		c.samples = samples
	}
}

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Slice(c.samples, func(i, j int) bool { return c.samples[i] < c.samples[j] })
		c.sorted = true
	}
}

// FractionAtMost returns the fraction of samples <= d, in [0, 1]. In
// sketch mode d is resolved at bucket granularity.
func (c *CDF) FractionAtMost(d time.Duration) float64 {
	if c.sketch {
		return c.sketchFractionAtMost(d)
	}
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	idx := sort.Search(len(c.samples), func(i int) bool { return c.samples[i] > d })
	return float64(idx) / float64(len(c.samples))
}

// FractionAbove returns the fraction of samples > d.
func (c *CDF) FractionAbove(d time.Duration) float64 {
	if c.Len() == 0 {
		return 0
	}
	return 1 - c.FractionAtMost(d)
}

// Percentile returns the p-th percentile (p in [0, 100]) using the
// nearest-rank method; 0 for an empty CDF. In sketch mode the answer is the
// containing bucket's lower bound (at most 12.5% below the exact value).
func (c *CDF) Percentile(p float64) time.Duration {
	if c.Len() == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	if c.sketch {
		rank := int64(math.Ceil(p / 100 * float64(c.count)))
		if rank < 1 {
			rank = 1
		}
		return c.sketchPercentile(rank)
	}
	c.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(c.samples))))
	if rank < 1 {
		rank = 1
	}
	return c.samples[rank-1]
}

// Mean returns the arithmetic mean sample.
func (c *CDF) Mean() time.Duration {
	if c.sketch {
		if c.count == 0 {
			return 0
		}
		return time.Duration(c.sumNs / float64(c.count))
	}
	if len(c.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range c.samples {
		sum += d
	}
	return sum / time.Duration(len(c.samples))
}

// Points returns (duration, cumulative fraction) pairs suitable for
// plotting the CDF at each distinct sample value (each non-empty bucket in
// sketch mode).
func (c *CDF) Points() []CDFPoint {
	if c.sketch {
		return c.sketchPoints()
	}
	if len(c.samples) == 0 {
		return nil
	}
	c.ensureSorted()
	var pts []CDFPoint
	n := float64(len(c.samples))
	for i, d := range c.samples {
		if i+1 < len(c.samples) && c.samples[i+1] == d {
			continue // emit only the last occurrence of each value
		}
		pts = append(pts, CDFPoint{Value: d, Fraction: float64(i+1) / n})
	}
	return pts
}

// CDFPoint is one step of a plotted CDF.
type CDFPoint struct {
	// Value is the sample value.
	Value time.Duration
	// Fraction is the cumulative fraction of samples <= Value.
	Fraction float64
}

// IntHistogram counts integer-valued observations into caller-defined
// bucket edges. A value v falls into bucket i when edges[i] <= v < edges[i+1];
// values below edges[0] or at/above edges[len-1] fall into the open-ended
// underflow/overflow buckets.
type IntHistogram struct {
	edges     []int
	counts    []int // len(edges)-1 interior buckets
	underflow int
	overflow  int
	total     int
}

// NewIntHistogram builds a histogram with strictly increasing edges.
func NewIntHistogram(edges []int) (*IntHistogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("metrics: need at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("metrics: edges must strictly increase (%d then %d)", edges[i-1], edges[i])
		}
	}
	return &IntHistogram{
		edges:  append([]int(nil), edges...),
		counts: make([]int, len(edges)-1),
	}, nil
}

// Add records one observation.
func (h *IntHistogram) Add(v int) {
	h.total++
	if v < h.edges[0] {
		h.underflow++
		return
	}
	if v >= h.edges[len(h.edges)-1] {
		h.overflow++
		return
	}
	idx := sort.SearchInts(h.edges, v+1) - 1
	h.counts[idx]++
}

// Total returns the observation count.
func (h *IntHistogram) Total() int { return h.total }

// Bucket returns the count and fraction of bucket i (interior buckets only).
func (h *IntHistogram) Bucket(i int) (count int, fraction float64, err error) {
	if i < 0 || i >= len(h.counts) {
		return 0, 0, fmt.Errorf("metrics: bucket %d out of range [0,%d)", i, len(h.counts))
	}
	count = h.counts[i]
	if h.total > 0 {
		fraction = float64(count) / float64(h.total)
	}
	return count, fraction, nil
}

// FractionIn returns the fraction of observations v with lo <= v <= hi,
// computed from raw bucket counts when [lo,hi] aligns with bucket edges; it
// falls back to scanning interior buckets fully contained in [lo, hi].
func (h *IntHistogram) FractionIn(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	count := 0
	for i := range h.counts {
		if h.edges[i] >= lo && h.edges[i+1]-1 <= hi {
			count += h.counts[i]
		}
	}
	return float64(count) / float64(h.total)
}

// Underflow and Overflow return the open-ended bucket counts.
func (h *IntHistogram) Underflow() int { return h.underflow }

// Overflow returns the count of observations at/above the last edge.
func (h *IntHistogram) Overflow() int { return h.overflow }

// PerKeyCDF maintains one CDF per key (per-tenant queueing times, Fig. 12).
type PerKeyCDF struct {
	cdfs map[int]*CDF
	// sketch makes every newly created per-key CDF a sketch (see
	// NewPerKeyCDFSketch).
	sketch bool
}

// NewPerKeyCDF builds an empty per-key CDF collection.
func NewPerKeyCDF() *PerKeyCDF {
	return &PerKeyCDF{cdfs: make(map[int]*CDF)}
}

// Add records a sample under key.
func (p *PerKeyCDF) Add(key int, d time.Duration) {
	c, ok := p.cdfs[key]
	if !ok {
		c = &CDF{}
		if p.sketch {
			c.UseSketch()
		}
		p.cdfs[key] = c
	}
	c.Add(d)
}

// Keys returns the keys in ascending order.
func (p *PerKeyCDF) Keys() []int {
	keys := make([]int, 0, len(p.cdfs))
	for k := range p.cdfs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Get returns the CDF for key (nil if absent).
func (p *PerKeyCDF) Get(key int) *CDF { return p.cdfs[key] }

// Percentile returns the p-th percentile for key, 0 if the key is absent.
func (p *PerKeyCDF) Percentile(key int, pct float64) time.Duration {
	c, ok := p.cdfs[key]
	if !ok {
		return 0
	}
	return c.Percentile(pct)
}
