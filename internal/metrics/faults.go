package metrics

import "time"

// FaultCounters aggregates what the chaos layer did to a run and how the
// system absorbed it. The zero value (all counters zero) is what every
// fault-free run reports, so comparisons against pre-chaos baselines stay
// trivial.
type FaultCounters struct {
	// NodeCrashes / NodeRecoveries count node-down and node-up transitions.
	NodeCrashes, NodeRecoveries int
	// MembwDropouts counts memory-bandwidth telemetry dark windows.
	MembwDropouts int
	// Stragglers counts injected slowdown windows.
	Stragglers int
	// JobKills counts fault-induced job aborts (crash or injected failure);
	// JobFailures is the injected-failure subset.
	JobKills, JobFailures int
	// Requeues counts killed jobs put back in queue after backoff;
	// TerminalFailures counts jobs that exhausted their retry budget.
	Requeues, TerminalFailures int
	// DegradedSamples counts node-samples taken while bandwidth telemetry
	// was dark — the eliminator's degraded-mode exposure.
	DegradedSamples int
	// ControllerKills counts injected scheduler/controller deaths. The
	// counter survives checkpoint/restore, so a resumed run that replays a
	// kill it already survived can tell it apart from a fresh one.
	ControllerKills int
	// GoodputLost is attempt progress destroyed by kills: work a job had
	// completed in an attempt that then had to restart from scratch.
	GoodputLost time.Duration
}

// Any reports whether any fault activity was recorded.
func (c FaultCounters) Any() bool { return c != (FaultCounters{}) }

// Add accumulates another run's counters (for sweep aggregation).
func (c *FaultCounters) Add(o FaultCounters) {
	c.NodeCrashes += o.NodeCrashes
	c.NodeRecoveries += o.NodeRecoveries
	c.MembwDropouts += o.MembwDropouts
	c.Stragglers += o.Stragglers
	c.JobKills += o.JobKills
	c.JobFailures += o.JobFailures
	c.Requeues += o.Requeues
	c.TerminalFailures += o.TerminalFailures
	c.DegradedSamples += o.DegradedSamples
	c.ControllerKills += o.ControllerKills
	c.GoodputLost += o.GoodputLost
}
