package metrics

import (
	"fmt"
	"time"
)

// FaultCounters aggregates what the chaos layer did to a run and how the
// system absorbed it. The zero value (all counters zero) is what every
// fault-free run reports, so comparisons against pre-chaos baselines stay
// trivial.
type FaultCounters struct {
	// NodeCrashes / NodeRecoveries count node-down and node-up transitions.
	NodeCrashes, NodeRecoveries int
	// MembwDropouts counts memory-bandwidth telemetry dark windows.
	MembwDropouts int
	// Stragglers counts injected slowdown windows.
	Stragglers int
	// JobKills counts fault-induced job aborts (crash or injected failure);
	// JobFailures is the injected-failure subset.
	JobKills, JobFailures int
	// Requeues counts killed jobs put back in queue after backoff;
	// TerminalFailures counts jobs that exhausted their retry budget.
	Requeues, TerminalFailures int
	// DegradedSamples counts node-samples taken while bandwidth telemetry
	// was dark — the eliminator's degraded-mode exposure.
	DegradedSamples int
	// ControllerKills counts injected scheduler/controller deaths. The
	// counter survives checkpoint/restore, so a resumed run that replays a
	// kill it already survived can tell it apart from a fresh one.
	ControllerKills int
	// ServeKills counts injected deaths of the serving process wrapping the
	// scheduler (the control plane's kill-and-recover drill surface).
	ServeKills int
	// ServeAccepted counts control-plane requests made durable in the WAL
	// and applied; ServeShed counts requests bounced with backpressure
	// before touching the WAL; ServeReplayed counts WAL records re-applied
	// during recovery (a subset of the accepted records, replayed again).
	ServeAccepted, ServeShed, ServeReplayed int
	// WALFsyncs counts durability syncs of the control plane's write-ahead
	// request log; batch admission amortizes one sync over many requests.
	WALFsyncs int
	// ServeRecoveries counts control-plane restarts that rebuilt state from
	// the latest checkpoint plus a WAL suffix replay.
	ServeRecoveries int
	// GoodputLost is attempt progress destroyed by kills: work a job had
	// completed in an attempt that then had to restart from scratch.
	GoodputLost time.Duration
}

// Any reports whether any fault activity was recorded.
func (c FaultCounters) Any() bool { return c != (FaultCounters{}) }

// Sane checks the cross-counter invariants every well-formed run satisfies,
// regardless of seed or fault mix. A violation means the chaos layer and the
// engine disagree about what happened — the soak harness treats that as a
// failed verdict even when every performance condition passes.
func (c FaultCounters) Sane() error {
	for _, f := range []struct {
		name  string
		value int
	}{
		{"NodeCrashes", c.NodeCrashes},
		{"NodeRecoveries", c.NodeRecoveries},
		{"MembwDropouts", c.MembwDropouts},
		{"Stragglers", c.Stragglers},
		{"JobKills", c.JobKills},
		{"JobFailures", c.JobFailures},
		{"Requeues", c.Requeues},
		{"TerminalFailures", c.TerminalFailures},
		{"DegradedSamples", c.DegradedSamples},
		{"ControllerKills", c.ControllerKills},
		{"ServeKills", c.ServeKills},
		{"ServeAccepted", c.ServeAccepted},
		{"ServeShed", c.ServeShed},
		{"ServeReplayed", c.ServeReplayed},
		{"WALFsyncs", c.WALFsyncs},
		{"ServeRecoveries", c.ServeRecoveries},
	} {
		if f.value < 0 {
			return fmt.Errorf("fault counters: %s is negative (%d)", f.name, f.value)
		}
	}
	if c.GoodputLost < 0 {
		return fmt.Errorf("fault counters: GoodputLost is negative (%s)", c.GoodputLost)
	}
	// Every recovery closes a crash window; a node cannot come back up more
	// often than it went down.
	if c.NodeRecoveries > c.NodeCrashes {
		return fmt.Errorf("fault counters: %d recoveries exceed %d crashes", c.NodeRecoveries, c.NodeCrashes)
	}
	// Injected failures are the subset of kills flagged by JobFailureProb.
	if c.JobFailures > c.JobKills {
		return fmt.Errorf("fault counters: %d injected failures exceed %d kills", c.JobFailures, c.JobKills)
	}
	// Every killed attempt is either requeued or terminally failed (never
	// both, never neither).
	if c.Requeues+c.TerminalFailures > c.JobKills {
		return fmt.Errorf("fault counters: %d requeues + %d terminal failures exceed %d kills",
			c.Requeues, c.TerminalFailures, c.JobKills)
	}
	// Degraded samples only accrue inside telemetry dark windows.
	if c.DegradedSamples > 0 && c.MembwDropouts == 0 {
		return fmt.Errorf("fault counters: %d degraded samples with no dark windows", c.DegradedSamples)
	}
	// Lost goodput is attempt progress destroyed by a kill; it cannot appear
	// without one.
	if c.GoodputLost > 0 && c.JobKills == 0 {
		return fmt.Errorf("fault counters: %s goodput lost with no job kills", c.GoodputLost)
	}
	// WAL records only replay during a checkpoint+suffix recovery.
	if c.ServeReplayed > 0 && c.ServeRecoveries == 0 {
		return fmt.Errorf("fault counters: %d replayed WAL records with no recoveries", c.ServeReplayed)
	}
	// Every accepted request was made durable first, and batch admission
	// syncs at most once per accepted record.
	if c.WALFsyncs > c.ServeAccepted {
		return fmt.Errorf("fault counters: %d WAL fsyncs exceed %d accepted requests", c.WALFsyncs, c.ServeAccepted)
	}
	// Accepted requests imply durability: a control plane cannot apply
	// records it never synced.
	if c.ServeAccepted > 0 && c.WALFsyncs == 0 {
		return fmt.Errorf("fault counters: %d accepted requests with no WAL fsyncs", c.ServeAccepted)
	}
	return nil
}

// Add accumulates another run's counters (for sweep aggregation).
func (c *FaultCounters) Add(o FaultCounters) {
	c.NodeCrashes += o.NodeCrashes
	c.NodeRecoveries += o.NodeRecoveries
	c.MembwDropouts += o.MembwDropouts
	c.Stragglers += o.Stragglers
	c.JobKills += o.JobKills
	c.JobFailures += o.JobFailures
	c.Requeues += o.Requeues
	c.TerminalFailures += o.TerminalFailures
	c.DegradedSamples += o.DegradedSamples
	c.ControllerKills += o.ControllerKills
	c.ServeKills += o.ServeKills
	c.ServeAccepted += o.ServeAccepted
	c.ServeShed += o.ServeShed
	c.ServeReplayed += o.ServeReplayed
	c.WALFsyncs += o.WALFsyncs
	c.ServeRecoveries += o.ServeRecoveries
	c.GoodputLost += o.GoodputLost
}
