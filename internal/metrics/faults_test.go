package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestFaultCountersSane(t *testing.T) {
	// A representative healthy counter set: crashes with recoveries still
	// pending, kills split across requeues and terminal failures, degraded
	// samples inside dark windows, goodput lost to kills.
	good := FaultCounters{
		NodeCrashes:      5,
		NodeRecoveries:   4,
		MembwDropouts:    2,
		Stragglers:       3,
		JobKills:         10,
		JobFailures:      4,
		Requeues:         8,
		TerminalFailures: 2,
		DegradedSamples:  120,
		ControllerKills:  1,
		GoodputLost:      3 * time.Hour,
	}
	if err := good.Sane(); err != nil {
		t.Fatalf("Sane rejected healthy counters: %v", err)
	}
	if err := (FaultCounters{}).Sane(); err != nil {
		t.Fatalf("Sane rejected the zero value: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*FaultCounters)
		want string
	}{
		{"negative counter", func(c *FaultCounters) { c.Stragglers = -1 }, "negative"},
		{"negative goodput", func(c *FaultCounters) { c.GoodputLost = -time.Second }, "negative"},
		{"recoveries exceed crashes", func(c *FaultCounters) { c.NodeRecoveries = 6 }, "recoveries exceed"},
		{"failures exceed kills", func(c *FaultCounters) { c.JobFailures = 11 }, "failures exceed"},
		{"dispositions exceed kills", func(c *FaultCounters) { c.Requeues = 9 }, "exceed 10 kills"},
		{"degraded without dark", func(c *FaultCounters) { c.MembwDropouts = 0 }, "no dark windows"},
		{"goodput lost without kills", func(c *FaultCounters) {
			c.JobKills, c.JobFailures, c.Requeues, c.TerminalFailures = 0, 0, 0, 0
		}, "no job kills"},
	}
	for _, tc := range cases {
		c := good
		tc.mut(&c)
		err := c.Sane()
		if err == nil {
			t.Errorf("%s: Sane accepted %+v", tc.name, c)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
