package perfmodel_test

import (
	"fmt"

	"github.com/coda-repro/coda/internal/perfmodel"
)

// ExampleModel_OptimalCores shows the per-model optimal core counts the
// adaptive allocator searches for (Fig. 5).
func ExampleModel_OptimalCores() {
	m, err := perfmodel.Lookup("alexnet")
	if err != nil {
		panic(err)
	}
	oneGPU, _ := m.OptimalCores(perfmodel.Config{Nodes: 1, GPUs: 1}, 0)
	fourGPU, _ := m.OptimalCores(perfmodel.Config{Nodes: 1, GPUs: 4}, 0)
	multiNode, _ := m.OptimalCores(perfmodel.Config{Nodes: 2, GPUs: 8}, 0)
	fmt.Printf("alexnet optimal cores: 1N1G=%d 1N4G=%d 2N8G=%d\n", oneGPU, fourGPU, multiNode)
	// Output:
	// alexnet optimal cores: 1N1G=6 1N4G=16 2N8G=2
}

// ExampleModel_Speed shows the core-starvation penalty Fig. 3 plots: a
// 2-core alexnet run is over 5x slower than its optimum.
func ExampleModel_Speed() {
	m, err := perfmodel.Lookup("alexnet")
	if err != nil {
		panic(err)
	}
	cfg := perfmodel.Config{Nodes: 1, GPUs: 1}
	starved, _ := m.Speed(cfg, 0, 2, perfmodel.Contention{})
	optimal, _ := m.Speed(cfg, 0, 6, perfmodel.Contention{})
	fmt.Printf("starved/optimal speed ratio: %.2f\n", starved/optimal)
	// Output:
	// starved/optimal speed ratio: 0.17
}

// ExampleModel_BandwidthDemand shows Fig. 6's anti-correlation between CV
// model complexity and memory-bandwidth demand.
func ExampleModel_BandwidthDemand() {
	cfg := perfmodel.Config{Nodes: 1, GPUs: 1}
	for _, name := range []string{"alexnet", "vgg16", "inception3"} {
		m, err := perfmodel.Lookup(name)
		if err != nil {
			panic(err)
		}
		opt, _ := m.OptimalCores(cfg, 0)
		bw, _ := m.BandwidthDemand(cfg, 0, opt)
		fmt.Printf("%s: %.0f GB/s\n", name, bw)
	}
	// Output:
	// alexnet: 12 GB/s
	// vgg16: 6 GB/s
	// inception3: 4 GB/s
}
