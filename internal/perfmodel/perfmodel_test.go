package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/coda-repro/coda/internal/job"
)

func mustLookup(t *testing.T, name string) *Model {
	t.Helper()
	m, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cfg1N1G() Config { return Config{Nodes: 1, GPUs: 1} }
func cfg1N4G() Config { return Config{Nodes: 1, GPUs: 4} }
func cfg2N8G() Config { return Config{Nodes: 2, GPUs: 8} }

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		cfg     Config
		wantErr bool
	}{
		{Config{Nodes: 1, GPUs: 1}, false},
		{Config{Nodes: 2, GPUs: 8}, false},
		{Config{Nodes: 0, GPUs: 1}, true},
		{Config{Nodes: 2, GPUs: 1}, true},
		{Config{Nodes: 2, GPUs: 3}, true},
	}
	for _, tt := range tests {
		err := tt.cfg.Validate()
		if (err != nil) != tt.wantErr {
			t.Errorf("%v.Validate() error = %v, wantErr %v", tt.cfg, err, tt.wantErr)
		}
	}
}

func TestConfigString(t *testing.T) {
	if got := cfg1N4G().String(); got != "1N4G" {
		t.Errorf("String = %q, want 1N4G", got)
	}
	if got := cfg2N8G().GPUsPerNode(); got != 4 {
		t.Errorf("GPUsPerNode = %d, want 4", got)
	}
}

func TestCatalogComplete(t *testing.T) {
	// The full Table I benchmark set must be present.
	want := []string{"alexnet", "vgg16", "inception3", "resnet50", "bat", "transformer", "wavenet", "deepspeech"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("Names() has %d entries, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
	if _, err := Lookup("gpt"); err == nil {
		t.Error("Lookup(unknown) should fail")
	}
}

func TestByCategory(t *testing.T) {
	cv := ByCategory(job.CategoryCV)
	if len(cv) != 4 {
		t.Errorf("CV models = %d, want 4", len(cv))
	}
	nlp := ByCategory(job.CategoryNLP)
	if len(nlp) != 2 {
		t.Errorf("NLP models = %d, want 2", len(nlp))
	}
	speech := ByCategory(job.CategorySpeech)
	if len(speech) != 2 {
		t.Errorf("Speech models = %d, want 2", len(speech))
	}
	if got := ByCategory(job.CategoryNone); got != nil {
		t.Errorf("CategoryNone models = %v, want nil", got)
	}
}

// TestOptimalCoresCVComplexityOrder checks §IV-B1: "For CV jobs, the
// simpler the network, the more CPUs are required."
func TestOptimalCoresCVComplexityOrder(t *testing.T) {
	opt := func(name string) int {
		m := mustLookup(t, name)
		n, err := m.OptimalCores(cfg1N1G(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	alexnet, vgg, inception, resnet := opt("alexnet"), opt("vgg16"), opt("inception3"), opt("resnet50")
	if !(alexnet > vgg && vgg > inception) {
		t.Errorf("CV complexity order violated: alexnet=%d vgg=%d inception=%d", alexnet, vgg, inception)
	}
	if resnet > vgg {
		t.Errorf("resnet50=%d should not need more cores than vgg16=%d", resnet, vgg)
	}
}

// TestTransformerOptimalAtTwoCores checks §III-B: "most of the models do
// not gain the best performance with 2-CPU configuration except Transformer
// with 1N1G configuration."
func TestTransformerOptimalAtTwoCores(t *testing.T) {
	for _, name := range Names() {
		m := mustLookup(t, name)
		opt, err := m.OptimalCores(cfg1N1G(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if name == "transformer" {
			if opt != 2 {
				t.Errorf("transformer optimal = %d, want 2", opt)
			}
		} else if opt <= 2 {
			t.Errorf("%s optimal = %d, want > 2", name, opt)
		}
	}
}

// TestWavenetNeedsMoreThanDeepspeech checks §IV-B1: "Wavenet needs more CPU
// cores than Deepspeech" (audio re-cut).
func TestWavenetNeedsMoreThanDeepspeech(t *testing.T) {
	w := mustLookup(t, "wavenet")
	d := mustLookup(t, "deepspeech")
	wOpt, _ := w.OptimalCores(cfg1N1G(), 0)
	dOpt, _ := d.OptimalCores(cfg1N1G(), 0)
	if wOpt <= dOpt {
		t.Errorf("wavenet=%d should exceed deepspeech=%d", wOpt, dOpt)
	}
}

// TestOptimalCoresBatchIndependence checks §IV-B1: all models except
// Alexnet have the same demand at default and max batch size.
func TestOptimalCoresBatchIndependence(t *testing.T) {
	for _, name := range Names() {
		m := mustLookup(t, name)
		def, err := m.OptimalCores(cfg1N1G(), m.DefaultBatch)
		if err != nil {
			t.Fatal(err)
		}
		max, err := m.OptimalCores(cfg1N1G(), m.MaxBatch)
		if err != nil {
			t.Fatal(err)
		}
		if name == "alexnet" {
			if max <= def {
				t.Errorf("alexnet: max-batch optimal %d should exceed default %d", max, def)
			}
		} else if max != def {
			t.Errorf("%s: optimal changed with batch (%d -> %d)", name, def, max)
		}
	}
}

// TestOptimalCoresLinearInGPUs checks §IV-B2: single-node multi-GPU demand
// grows with the GPU count.
func TestOptimalCoresLinearInGPUs(t *testing.T) {
	for _, name := range Names() {
		m := mustLookup(t, name)
		prev := 0
		for _, gpus := range []int{1, 2, 4} {
			opt, err := m.OptimalCores(Config{Nodes: 1, GPUs: gpus}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if opt < prev {
				t.Errorf("%s: optimal cores decreased from %d to %d at %d GPUs", name, prev, opt, gpus)
			}
			prev = opt
		}
	}
}

// TestMultiNodeCappedAtTwoCores checks §IV-B2: multi-node jobs need no more
// than two cores per node.
func TestMultiNodeCappedAtTwoCores(t *testing.T) {
	for _, name := range Names() {
		m := mustLookup(t, name)
		opt, err := m.OptimalCores(cfg2N8G(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if opt > 2 {
			t.Errorf("%s multi-node optimal = %d, want <= 2", name, opt)
		}
	}
}

// TestMultiNodeDegradation checks §IV-B2: 25-30% degradation vs 1N4G peak.
func TestMultiNodeDegradation(t *testing.T) {
	for _, name := range Names() {
		m := mustLookup(t, name)
		opt, _ := m.OptimalCores(cfg2N8G(), 0)
		speed, err := m.Speed(cfg2N8G(), 0, opt, Contention{})
		if err != nil {
			t.Fatal(err)
		}
		if speed < 0.70 || speed > 0.75 {
			t.Errorf("%s multi-node peak speed = %g, want in [0.70, 0.75]", name, speed)
		}
	}
}

// TestSpeedPeaksAtOptimal checks Fig. 3's shape: speed rises to the optimal
// core count and declines slightly beyond it.
func TestSpeedPeaksAtOptimal(t *testing.T) {
	for _, name := range Names() {
		m := mustLookup(t, name)
		opt, _ := m.OptimalCores(cfg1N1G(), 0)
		peak, err := m.Speed(cfg1N1G(), 0, opt, Contention{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(peak-1.0) > 1e-9 {
			t.Errorf("%s speed at optimal = %g, want 1.0", name, peak)
		}
		for c := 1; c <= 14; c++ {
			s, err := m.Speed(cfg1N1G(), 0, c, Contention{})
			if err != nil {
				t.Fatal(err)
			}
			if s > peak+1e-9 {
				t.Errorf("%s speed(%d) = %g exceeds peak", name, c, s)
			}
			if c < opt {
				next, _ := m.Speed(cfg1N1G(), 0, c+1, Contention{})
				if next <= s {
					t.Errorf("%s speed must rise below optimal: speed(%d)=%g >= speed(%d)=%g", name, c, s, c+1, next)
				}
			}
			if c > opt {
				prevSpeed, _ := m.Speed(cfg1N1G(), 0, c-1, Contention{})
				if s > prevSpeed {
					t.Errorf("%s speed must not rise past optimal", name)
				}
			}
		}
	}
}

// TestPerformanceGapRange checks §III-B: "The performance gap is in the
// range of 10% to over 5X" between a 2-core allocation and the optimum.
func TestPerformanceGapRange(t *testing.T) {
	worst, best := 1.0, math.Inf(1)
	for _, name := range Names() {
		m := mustLookup(t, name)
		s2, err := m.Speed(cfg1N1G(), 0, 2, Contention{})
		if err != nil {
			t.Fatal(err)
		}
		gap := 1 / s2
		if gap > worst {
			worst = gap
		}
		if gap < best {
			best = gap
		}
	}
	if worst < 4.5 {
		t.Errorf("worst 2-core gap = %.2fx, want > 4.5x (paper: over 5X)", worst)
	}
	if best > 1.2 {
		t.Errorf("best 2-core gap = %.2fx, want close to 1x (paper: 10%%)", best)
	}
}

func TestSpeedValidation(t *testing.T) {
	m := mustLookup(t, "resnet50")
	if _, err := m.Speed(cfg1N1G(), 0, 0, Contention{}); err == nil {
		t.Error("Speed(0 cores) should fail")
	}
	if _, err := m.Speed(Config{}, 0, 1, Contention{}); err == nil {
		t.Error("Speed(bad config) should fail")
	}
	if _, err := m.OptimalCores(Config{}, 0); err == nil {
		t.Error("OptimalCores(bad config) should fail")
	}
	if _, err := m.BandwidthDemand(Config{}, 0, 1); err == nil {
		t.Error("BandwidthDemand(bad config) should fail")
	}
	if _, err := m.BandwidthDemand(cfg1N1G(), 0, 0); err == nil {
		t.Error("BandwidthDemand(0 cores) should fail")
	}
	if _, err := m.PCIeDemand(Config{}); err == nil {
		t.Error("PCIeDemand(bad config) should fail")
	}
	if _, err := m.IterTime(Config{}, 0); err == nil {
		t.Error("IterTime(bad config) should fail")
	}
}

// TestGPUUtilTracksSpeed checks §V-B finding 1: utilization and speed peak
// together.
func TestGPUUtilTracksSpeed(t *testing.T) {
	for _, name := range Names() {
		m := mustLookup(t, name)
		opt, _ := m.OptimalCores(cfg1N1G(), 0)
		bestCores, bestUtil := 0, 0.0
		for c := 1; c <= 14; c++ {
			u, err := m.GPUUtil(cfg1N1G(), 0, c, Contention{})
			if err != nil {
				t.Fatal(err)
			}
			if u < 0 || u > 1 {
				t.Errorf("%s GPUUtil(%d) = %g out of [0,1]", name, c, u)
			}
			if u > bestUtil {
				bestUtil, bestCores = u, c
			}
		}
		if bestCores != opt {
			t.Errorf("%s utilization peaks at %d cores, optimal is %d", name, bestCores, opt)
		}
	}
}

// TestBandwidthDemandAntiCorrelation checks §IV-C1: CV bandwidth demand
// anti-correlates with model complexity.
func TestBandwidthDemandAntiCorrelation(t *testing.T) {
	demand := func(name string) float64 {
		m := mustLookup(t, name)
		opt, _ := m.OptimalCores(cfg1N1G(), 0)
		d, err := m.BandwidthDemand(cfg1N1G(), 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if !(demand("alexnet") > demand("vgg16") && demand("vgg16") > demand("inception3")) {
		t.Error("CV bandwidth demand must anti-correlate with complexity")
	}
	// NLP demands are "very small" (§IV-C1).
	for _, name := range []string{"bat", "transformer"} {
		if d := demand(name); d > 1.5 {
			t.Errorf("%s bandwidth demand = %g GB/s, want small", name, d)
		}
	}
}

// TestBandwidthDemandBatchBehaviour checks §IV-C1: Wavenet's demand grows
// with batch size, Deepspeech's does not.
func TestBandwidthDemandBatchBehaviour(t *testing.T) {
	w := mustLookup(t, "wavenet")
	wOpt, _ := w.OptimalCores(cfg1N1G(), 0)
	def, _ := w.BandwidthDemand(cfg1N1G(), w.DefaultBatch, wOpt)
	max, _ := w.BandwidthDemand(cfg1N1G(), w.MaxBatch, wOpt)
	if max <= def {
		t.Errorf("wavenet demand should grow with batch: %g -> %g", def, max)
	}
	d := mustLookup(t, "deepspeech")
	dOpt, _ := d.OptimalCores(cfg1N1G(), 0)
	def, _ = d.BandwidthDemand(cfg1N1G(), d.DefaultBatch, dOpt)
	max, _ = d.BandwidthDemand(cfg1N1G(), d.MaxBatch, dOpt)
	if max != def {
		t.Errorf("deepspeech demand should be batch-flat: %g -> %g", def, max)
	}
}

// TestBandwidthDemandLinearInGPUs checks §IV-C1: demand grows linearly with
// the GPU count.
func TestBandwidthDemandLinearInGPUs(t *testing.T) {
	m := mustLookup(t, "resnet50")
	opt1, _ := m.OptimalCores(cfg1N1G(), 0)
	opt4, _ := m.OptimalCores(cfg1N4G(), 0)
	d1, _ := m.BandwidthDemand(cfg1N1G(), 0, opt1)
	d4, _ := m.BandwidthDemand(cfg1N4G(), 0, opt4)
	if math.Abs(d4-4*d1) > 1e-9 {
		t.Errorf("demand not linear: 1G=%g 4G=%g", d1, d4)
	}
}

// TestContentionSensitivityOrdering checks Fig. 7: NLP most sensitive
// (>= 50% drop), CV insensitive except Alexnet, Deepspeech more sensitive
// than Wavenet, and LLC pressure irrelevant for everyone.
func TestContentionSensitivityOrdering(t *testing.T) {
	saturated := Contention{BandwidthUtil: 1.3}
	speedUnder := func(name string) float64 {
		m := mustLookup(t, name)
		opt, _ := m.OptimalCores(cfg1N1G(), 0)
		s, err := m.Speed(cfg1N1G(), 0, opt, saturated)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for _, name := range []string{"bat", "transformer"} {
		if s := speedUnder(name); s > 0.5 {
			t.Errorf("%s under saturation = %g, want >= 50%% drop", name, s)
		}
	}
	for _, name := range []string{"vgg16", "inception3", "resnet50"} {
		if s := speedUnder(name); s < 0.9 {
			t.Errorf("%s under saturation = %g, want insensitive", name, s)
		}
	}
	if s := speedUnder("alexnet"); s > 0.85 {
		t.Errorf("alexnet under saturation = %g, want sensitive", s)
	}
	if speedUnder("deepspeech") >= speedUnder("wavenet") {
		t.Error("deepspeech should be more bandwidth-sensitive than wavenet")
	}
	// LLC insensitivity for all models.
	for _, name := range Names() {
		m := mustLookup(t, name)
		opt, _ := m.OptimalCores(cfg1N1G(), 0)
		s, err := m.Speed(cfg1N1G(), 0, opt, Contention{LLCPressure: 1})
		if err != nil {
			t.Fatal(err)
		}
		if s < 0.95 {
			t.Errorf("%s under LLC pressure = %g, want insensitive", name, s)
		}
	}
}

// TestContentionBelowKneeIsFree checks the 75% knee: below it bandwidth
// pressure costs nothing, matching the eliminator's trigger (§V-D).
func TestContentionBelowKneeIsFree(t *testing.T) {
	m := mustLookup(t, "bat")
	opt, _ := m.OptimalCores(cfg1N1G(), 0)
	clean, _ := m.Speed(cfg1N1G(), 0, opt, Contention{})
	loaded, _ := m.Speed(cfg1N1G(), 0, opt, Contention{BandwidthUtil: 0.74})
	if clean != loaded {
		t.Errorf("below-knee contention changed speed: %g -> %g", clean, loaded)
	}
}

// TestPCIeDemand checks §IV-C3: CV-heavy models up to 12 GB/s, NLP/Speech
// under 1 GB/s, and over-capacity co-location costs 5-10%.
func TestPCIeDemand(t *testing.T) {
	for _, name := range []string{"alexnet", "resnet50"} {
		m := mustLookup(t, name)
		d, err := m.PCIeDemand(cfg1N1G())
		if err != nil {
			t.Fatal(err)
		}
		if d != 12 {
			t.Errorf("%s PCIe = %g, want 12", name, d)
		}
	}
	for _, name := range []string{"bat", "transformer", "wavenet", "deepspeech"} {
		m := mustLookup(t, name)
		d, _ := m.PCIeDemand(cfg1N1G())
		if d >= 1 {
			t.Errorf("%s PCIe = %g, want < 1", name, d)
		}
	}
	m := mustLookup(t, "resnet50")
	opt, _ := m.OptimalCores(cfg1N1G(), 0)
	clean, _ := m.Speed(cfg1N1G(), 0, opt, Contention{})
	over, _ := m.Speed(cfg1N1G(), 0, opt, Contention{PCIeUtil: 1.5})
	drop := 1 - over/clean
	if drop < 0.04 || drop > 0.11 {
		t.Errorf("PCIe over-capacity drop = %g, want 5-10%%", drop)
	}
}

func TestIterTime(t *testing.T) {
	m := mustLookup(t, "alexnet")
	def, err := m.IterTime(cfg1N1G(), 0)
	if err != nil {
		t.Fatal(err)
	}
	max, err := m.IterTime(cfg1N1G(), m.MaxBatch)
	if err != nil {
		t.Fatal(err)
	}
	if max <= def {
		t.Errorf("larger batch should take longer per iteration: %v -> %v", def, max)
	}
}

func TestDefaultStartCores(t *testing.T) {
	tests := []struct {
		cat  job.Category
		want int
	}{
		{job.CategoryCV, 3},
		{job.CategoryNLP, 5},
		{job.CategorySpeech, 5},
		{job.CategoryNone, 4},
	}
	for _, tt := range tests {
		if got := DefaultStartCores(tt.cat); got != tt.want {
			t.Errorf("DefaultStartCores(%v) = %d, want %d", tt.cat, got, tt.want)
		}
	}
}

func TestSortedByOptimalCores(t *testing.T) {
	names := SortedByOptimalCores()
	if len(names) != len(Names()) {
		t.Fatalf("len = %d", len(names))
	}
	prev := math.MaxInt
	for _, n := range names {
		m := mustLookup(t, n)
		opt, _ := m.OptimalCores(cfg1N1G(), 0)
		if opt > prev {
			t.Errorf("order violated at %s", n)
		}
		prev = opt
	}
}

func TestModelsReturnsCopy(t *testing.T) {
	ms := Models()
	ms[0].Name = "corrupted"
	if Names()[0] == "corrupted" {
		t.Error("Models() must return a copy")
	}
}

// TestSpeedBoundsProperty: speed is always in (0, 1] for any model, valid
// config, core count and contention.
func TestSpeedBoundsProperty(t *testing.T) {
	names := Names()
	f := func(modelIdx, gpuRaw, coreRaw uint8, bwUtil, llc float64) bool {
		m := mustLookup(t, names[int(modelIdx)%len(names)])
		gpus := int(gpuRaw)%4 + 1
		cores := int(coreRaw)%28 + 1
		c := Contention{
			BandwidthUtil: math.Abs(bwUtil),
			LLCPressure:   clamp01(math.Abs(llc)),
		}
		if math.IsNaN(c.BandwidthUtil) || math.IsInf(c.BandwidthUtil, 0) {
			return true
		}
		s, err := m.Speed(Config{Nodes: 1, GPUs: gpus}, 0, cores, c)
		if err != nil {
			return false
		}
		return s > 0 && s <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBandwidthDemandNonNegativeProperty: demand is never negative and
// never exceeds the unstarved demand.
func TestBandwidthDemandNonNegativeProperty(t *testing.T) {
	names := Names()
	f := func(modelIdx, coreRaw uint8) bool {
		m := mustLookup(t, names[int(modelIdx)%len(names)])
		cores := int(coreRaw)%28 + 1
		opt, err := m.OptimalCores(cfg1N1G(), 0)
		if err != nil {
			return false
		}
		d, err := m.BandwidthDemand(cfg1N1G(), 0, cores)
		if err != nil {
			return false
		}
		dOpt, err := m.BandwidthDemand(cfg1N1G(), 0, opt)
		if err != nil {
			return false
		}
		return d >= 0 && d <= dOpt+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
