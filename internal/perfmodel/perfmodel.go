// Package perfmodel is the analytic stand-in for running real DNN training
// jobs on GPUs. It encodes the paper's characterization study (§III-B,
// §IV): how training speed and GPU utilization respond to the number of
// allocated CPU cores (Fig. 3), the optimal core count per configuration
// and batch size (Fig. 5), memory-bandwidth demand (Fig. 6), sensitivity to
// memory-bandwidth and LLC contention (Fig. 7), and PCIe bandwidth demand
// (§IV-C3). The scheduler treats this package as ground truth the same way
// the paper's system treats the physical cluster: it can only observe the
// resulting GPU utilization, never the curves themselves.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

// Config is the paper's aNbG training configuration: a nodes, b GPUs total.
type Config struct {
	// Nodes is the node count the job spans.
	Nodes int
	// GPUs is the total GPU count.
	GPUs int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("perfmodel: nodes must be positive, got %d", c.Nodes)
	}
	if c.GPUs < c.Nodes {
		return fmt.Errorf("perfmodel: %d gpus cannot span %d nodes", c.GPUs, c.Nodes)
	}
	if c.GPUs%c.Nodes != 0 {
		return fmt.Errorf("perfmodel: %d gpus not divisible across %d nodes", c.GPUs, c.Nodes)
	}
	return nil
}

// GPUsPerNode returns the per-node GPU count.
func (c Config) GPUsPerNode() int { return c.GPUs / c.Nodes }

// String formats the configuration as the paper does, e.g. "1N4G".
func (c Config) String() string { return fmt.Sprintf("%dN%dG", c.Nodes, c.GPUs) }

// Model is one benchmark from Table I plus its calibrated response curves.
// All curve parameters are normalized to the 1N1G default-batch operating
// point.
type Model struct {
	// Name is the lower-case benchmark name ("alexnet", "vgg16", ...).
	Name string
	// Category is the DNN domain.
	Category job.Category
	// DefaultBatch and MaxBatch are the batch sizes Fig. 5 sweeps.
	DefaultBatch, MaxBatch int

	// optCores1G is the optimal core count at 1N1G with the default batch.
	optCores1G int
	// optSlope is the per-extra-GPU growth of the optimal core count on a
	// single node (§IV-B2: linear in GPU count; slope set by the model's
	// data-preprocessing demand).
	optSlope float64
	// batchGrowsOpt marks models whose optimal core count rises with batch
	// size (only Alexnet in Fig. 5).
	batchGrowsOpt bool

	// rampFloor is the normalized speed at 1 core (Fig. 3 shows gaps from
	// 10% to >5x between starved and optimal allocations).
	rampFloor float64
	// rampExp shapes the ramp (>1 makes starvation more punishing).
	rampExp float64
	// overPenalty is the normalized speed lost per core beyond the optimal
	// ("the corresponding GPU utilization drops slightly", §V-B).
	overPenalty float64
	// peakUtil is the GPU utilization at the optimal core count.
	peakUtil float64

	// bwAtOpt is the memory-bandwidth demand in GB/s at the 1N1G
	// default-batch optimal point (Fig. 6).
	bwAtOpt float64
	// bwBatchFactor scales demand at the max batch (1.0 = flat).
	bwBatchFactor float64
	// bwSensitivity is the fraction of speed lost under full memory-
	// bandwidth contention pressure (Fig. 7).
	bwSensitivity float64
	// llcSensitivity is the analogous LLC fraction (≈0 for all models).
	llcSensitivity float64

	// pcieGBs is the peak PCIe demand in GB/s (§IV-C3).
	pcieGBs float64

	// iterTime is the wall-clock time of one training iteration at the
	// optimal operating point (calibrated to Table II's iteration counts).
	iterTime time.Duration
}

// multiNodePeak is the normalized peak speed of multi-node configurations:
// "all models have 25%-30% performance degradation compared to 1N4G"
// (§IV-B2). We use the midpoint.
const multiNodePeak = 0.725

// multiNodeOptCores caps the per-node optimal core count of multi-node
// jobs: "the CPU requirements of all models are no more than two cores"
// (§IV-B2).
const multiNodeOptCores = 2

// catalog is the full benchmark set of Table I with parameters calibrated
// to the paper's reported shapes. See DESIGN.md for the calibration notes.
var catalog = []Model{
	{
		Name: "alexnet", Category: job.CategoryCV, DefaultBatch: 256, MaxBatch: 512,
		optCores1G: 6, optSlope: 0.55, batchGrowsOpt: true,
		rampFloor: 0.10, rampExp: 1.6, overPenalty: 0.030, peakUtil: 0.92,
		bwAtOpt: 12.0, bwBatchFactor: 1.25, bwSensitivity: 0.40, llcSensitivity: 0.03,
		pcieGBs: 12.0, iterTime: 1400 * time.Millisecond,
	},
	{
		Name: "vgg16", Category: job.CategoryCV, DefaultBatch: 64, MaxBatch: 128,
		optCores1G: 4, optSlope: 0.50, batchGrowsOpt: false,
		rampFloor: 0.40, rampExp: 1.3, overPenalty: 0.025, peakUtil: 0.97,
		bwAtOpt: 6.0, bwBatchFactor: 1.10, bwSensitivity: 0.08, llcSensitivity: 0.02,
		pcieGBs: 8.0, iterTime: 5100 * time.Millisecond,
	},
	{
		Name: "inception3", Category: job.CategoryCV, DefaultBatch: 64, MaxBatch: 128,
		optCores1G: 3, optSlope: 0.50, batchGrowsOpt: false,
		rampFloor: 0.55, rampExp: 1.2, overPenalty: 0.025, peakUtil: 0.96,
		bwAtOpt: 4.0, bwBatchFactor: 1.10, bwSensitivity: 0.06, llcSensitivity: 0.02,
		pcieGBs: 6.0, iterTime: 1500 * time.Millisecond,
	},
	{
		Name: "resnet50", Category: job.CategoryCV, DefaultBatch: 64, MaxBatch: 128,
		optCores1G: 3, optSlope: 0.50, batchGrowsOpt: false,
		rampFloor: 0.50, rampExp: 1.2, overPenalty: 0.025, peakUtil: 0.97,
		bwAtOpt: 5.0, bwBatchFactor: 1.10, bwSensitivity: 0.07, llcSensitivity: 0.02,
		pcieGBs: 12.0, iterTime: 1800 * time.Millisecond,
	},
	{
		Name: "bat", Category: job.CategoryNLP, DefaultBatch: 32, MaxBatch: 64,
		optCores1G: 5, optSlope: 0.40, batchGrowsOpt: false,
		rampFloor: 0.35, rampExp: 1.3, overPenalty: 0.025, peakUtil: 0.90,
		bwAtOpt: 1.0, bwBatchFactor: 1.00, bwSensitivity: 0.60, llcSensitivity: 0.03,
		pcieGBs: 0.8, iterTime: 10300 * time.Millisecond,
	},
	{
		Name: "transformer", Category: job.CategoryNLP, DefaultBatch: 64, MaxBatch: 128,
		optCores1G: 2, optSlope: 0.40, batchGrowsOpt: false,
		rampFloor: 0.75, rampExp: 1.1, overPenalty: 0.025, peakUtil: 0.93,
		bwAtOpt: 0.8, bwBatchFactor: 1.00, bwSensitivity: 0.55, llcSensitivity: 0.03,
		pcieGBs: 0.6, iterTime: 1040 * time.Millisecond,
	},
	{
		Name: "wavenet", Category: job.CategorySpeech, DefaultBatch: 16, MaxBatch: 32,
		optCores1G: 6, optSlope: 0.50, batchGrowsOpt: false,
		rampFloor: 0.35, rampExp: 1.3, overPenalty: 0.025, peakUtil: 0.91,
		bwAtOpt: 7.0, bwBatchFactor: 1.35, bwSensitivity: 0.22, llcSensitivity: 0.02,
		pcieGBs: 0.9, iterTime: 9600 * time.Millisecond,
	},
	{
		Name: "deepspeech", Category: job.CategorySpeech, DefaultBatch: 32, MaxBatch: 64,
		optCores1G: 4, optSlope: 0.50, batchGrowsOpt: false,
		rampFloor: 0.45, rampExp: 1.2, overPenalty: 0.025, peakUtil: 0.92,
		bwAtOpt: 5.0, bwBatchFactor: 1.00, bwSensitivity: 0.35, llcSensitivity: 0.02,
		pcieGBs: 0.8, iterTime: 6000 * time.Millisecond,
	},
}

// index maps name → catalog position.
var index = buildIndex()

func buildIndex() map[string]int {
	m := make(map[string]int, len(catalog))
	for i, model := range catalog {
		m[model.Name] = i
	}
	return m
}

// Names returns all benchmark names in catalog order.
func Names() []string {
	names := make([]string, len(catalog))
	for i, m := range catalog {
		names[i] = m.Name
	}
	return names
}

// Models returns a copy of the full catalog.
func Models() []Model {
	return append([]Model(nil), catalog...)
}

// Lookup returns the model by name.
func Lookup(name string) (*Model, error) {
	i, ok := index[name]
	if !ok {
		return nil, fmt.Errorf("perfmodel: unknown model %q", name)
	}
	m := catalog[i]
	return &m, nil
}

// ByCategory returns the models of one category in catalog order.
func ByCategory(c job.Category) []Model {
	var out []Model
	for _, m := range catalog {
		if m.Category == c {
			out = append(out, m)
		}
	}
	return out
}

// batch resolves a possibly-zero batch size to the default.
func (m *Model) batch(b int) int {
	if b <= 0 {
		return m.DefaultBatch
	}
	return b
}

// OptimalCores returns the per-node optimal core count for the
// configuration and batch size (Fig. 5):
//   - single-node: linear in the per-node GPU count with a model-specific
//     slope; independent of batch size except Alexnet;
//   - multi-node: capped at two cores (network-bound, §IV-B2).
func (m *Model) OptimalCores(cfg Config, batchSize int) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if cfg.Nodes > 1 {
		return multiNodeOptCores, nil
	}
	g := float64(cfg.GPUsPerNode())
	opt := float64(m.optCores1G) * (1 + m.optSlope*(g-1))
	if m.batchGrowsOpt && m.batch(batchSize) > m.DefaultBatch {
		opt *= 1.0 + 0.3*math.Log2(float64(m.batch(batchSize))/float64(m.DefaultBatch))
	}
	n := int(math.Round(opt))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// Contention describes the CPU-side shared-resource pressure a node exerts
// on a training job. BandwidthUtil is the node's total unthrottled memory-
// bandwidth demand divided by capacity (may exceed 1 under overload);
// LLCPressure is in [0, 1]; PCIeUtil is total PCIe demand over capacity.
type Contention struct {
	// BandwidthUtil is demand/capacity of node memory bandwidth.
	BandwidthUtil float64
	// LLCPressure is the normalized last-level-cache pressure.
	LLCPressure float64
	// PCIeUtil is demand/capacity of node PCIe bandwidth.
	PCIeUtil float64
}

// bwPressureKnee is where bandwidth contention starts to bite; the paper's
// eliminator threshold (75%) sits exactly at this knee (§V-D).
const bwPressureKnee = 0.75

// bwPressureSpan maps utilization bwPressureKnee..bwPressureKnee+span onto
// pressure 0..1.
const bwPressureSpan = 0.45

// contentionFactor converts contention into a multiplicative speed factor.
func (m *Model) contentionFactor(c Contention) float64 {
	factor := 1.0
	if p := clamp01((c.BandwidthUtil - bwPressureKnee) / bwPressureSpan); p > 0 {
		factor *= 1 - m.bwSensitivity*p
	}
	if c.LLCPressure > 0 {
		factor *= 1 - m.llcSensitivity*clamp01(c.LLCPressure)
	}
	if c.PCIeUtil > 1 {
		// Co-running past PCIe capacity costs 5-10% (§IV-C3).
		factor *= 1 - 0.10*clamp01(c.PCIeUtil-1)
	}
	if factor < 0.05 {
		factor = 0.05
	}
	return factor
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Speed returns the normalized training speed in (0, 1] for the model
// running under cfg with the given per-node core allocation and contention.
// 1.0 is the speed at the 1N1G optimal core count without contention;
// multi-node configurations peak at multiNodePeak (§IV-B2).
func (m *Model) Speed(cfg Config, batchSize, coresPerNode int, c Contention) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if coresPerNode < 1 {
		return 0, fmt.Errorf("perfmodel: cores per node must be >= 1, got %d", coresPerNode)
	}
	opt, err := m.OptimalCores(cfg, batchSize)
	if err != nil {
		return 0, err
	}
	var ramp float64
	switch {
	case coresPerNode >= opt:
		ramp = 1 - m.overPenalty*float64(coresPerNode-opt)
		if ramp < 0.5 {
			ramp = 0.5
		}
	case opt == 1:
		ramp = 1
	default:
		x := float64(coresPerNode-1) / float64(opt-1)
		ramp = m.rampFloor + (1-m.rampFloor)*math.Pow(x, m.rampExp)
	}
	peak := 1.0
	if cfg.Nodes > 1 {
		peak = multiNodePeak
	}
	return peak * ramp * m.contentionFactor(c), nil
}

// GPUUtil returns the GPU utilization in [0, 1] at the given operating
// point. Utilization and speed move together (§V-B: "a DNN training job's
// GPU utilization rate and running speed change in a similar trend, and
// they reach the optimal value at the same CPU number").
func (m *Model) GPUUtil(cfg Config, batchSize, coresPerNode int, c Contention) (float64, error) {
	speed, err := m.Speed(cfg, batchSize, coresPerNode, c)
	if err != nil {
		return 0, err
	}
	return m.peakUtil * speed, nil
}

// BandwidthDemand returns the per-node memory-bandwidth demand in GB/s at
// the given operating point (Fig. 6): linear in the per-node GPU count,
// batch-sensitive only for the models the paper flags (Alexnet slightly,
// Wavenet strongly), and proportional to the achieved data-preparation
// speed when the job is core-starved.
func (m *Model) BandwidthDemand(cfg Config, batchSize, coresPerNode int) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if coresPerNode < 1 {
		return 0, fmt.Errorf("perfmodel: cores per node must be >= 1, got %d", coresPerNode)
	}
	demand := m.bwAtOpt * float64(cfg.GPUsPerNode())
	if m.batch(batchSize) > m.DefaultBatch {
		demand *= m.bwBatchFactor
	}
	if cfg.Nodes > 1 {
		demand *= multiNodePeak // network-bound jobs prepare data slower
	}
	// Core starvation slows data preparation, shrinking bandwidth use.
	speed, err := m.Speed(cfg, batchSize, coresPerNode, Contention{})
	if err != nil {
		return 0, err
	}
	peak := 1.0
	if cfg.Nodes > 1 {
		peak = multiNodePeak
	}
	return demand * speed / peak, nil
}

// PCIeDemand returns the job's per-node PCIe bandwidth demand in GB/s.
func (m *Model) PCIeDemand(cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	return m.pcieGBs * float64(cfg.GPUsPerNode()), nil
}

// IterTime returns the wall-clock duration of one training iteration at
// full speed; dividing a profiling step's length by it gives Table II's
// "training iterations" column.
func (m *Model) IterTime(cfg Config, batchSize int) (time.Duration, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	d := m.iterTime
	if m.batch(batchSize) > m.DefaultBatch {
		d = time.Duration(float64(d) * float64(m.batch(batchSize)) / float64(m.DefaultBatch))
	}
	return d, nil
}

// DefaultStartCores is the allocator's empirical Nstart per category for
// first-time tenants: "we choose 3 for CV models, 5 for NLP models, and 5
// for SPEECH models" (§V-B1).
func DefaultStartCores(c job.Category) int {
	switch c {
	case job.CategoryCV:
		return 3
	case job.CategoryNLP:
		return 5
	case job.CategorySpeech:
		return 5
	default:
		return 4 // no category disclosed: a middle-of-the-road seed
	}
}

// SortedByOptimalCores returns model names ordered by descending 1N1G
// optimal core count (useful for reports).
func SortedByOptimalCores() []string {
	names := Names()
	sort.SliceStable(names, func(i, j int) bool {
		a := catalog[index[names[i]]]
		b := catalog[index[names[j]]]
		if a.optCores1G != b.optCores1G {
			return a.optCores1G > b.optCores1G
		}
		return a.Name < b.Name
	})
	return names
}
