package fair

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/coda-repro/coda/internal/job"
)

func newTestAccountant(t *testing.T, mode Dominant) *Accountant {
	t.Helper()
	a, err := NewAccountant(Resources{CPU: 100, GPU: 10}, mode)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{CPU: 3, GPU: 1}
	b := Resources{CPU: 1, GPU: 2}
	if got := a.Add(b); got != (Resources{CPU: 4, GPU: 3}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (Resources{CPU: 2, GPU: -1}) {
		t.Errorf("Sub = %+v", got)
	}
	if !(Resources{}).IsZero() {
		t.Error("zero value should be zero")
	}
	if (Resources{CPU: 1}).IsZero() {
		t.Error("non-zero CPU should not be zero")
	}
}

func TestDominantString(t *testing.T) {
	tests := map[Dominant]string{
		DominantAuto: "auto",
		DominantCPU:  "cpu",
		DominantGPU:  "gpu",
		Dominant(9):  "dominant(9)",
	}
	for d, want := range tests {
		if got := d.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestNewAccountantValidation(t *testing.T) {
	tests := []struct {
		name    string
		total   Resources
		mode    Dominant
		wantErr bool
	}{
		{"ok auto", Resources{CPU: 10, GPU: 2}, DominantAuto, false},
		{"ok cpu-only cluster", Resources{CPU: 10}, DominantCPU, false},
		{"zero cpu", Resources{GPU: 2}, DominantAuto, true},
		{"negative gpu", Resources{CPU: 10, GPU: -1}, DominantAuto, true},
		{"bad mode", Resources{CPU: 10}, Dominant(0), true},
		{"gpu mode without gpus", Resources{CPU: 10}, DominantGPU, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewAccountant(tt.total, tt.mode)
			if (err != nil) != tt.wantErr {
				t.Errorf("error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestChargeRefund(t *testing.T) {
	a := newTestAccountant(t, DominantAuto)
	if err := a.Charge(1, 7, Resources{CPU: 20, GPU: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge(1, 7, Resources{CPU: 1}); err == nil {
		t.Error("double charge should fail")
	}
	if err := a.Charge(2, 7, Resources{CPU: -1}); err == nil {
		t.Error("negative charge should fail")
	}
	if got := a.Usage(7); got != (Resources{CPU: 20, GPU: 1}) {
		t.Errorf("Usage = %+v", got)
	}
	if err := a.Refund(1); err != nil {
		t.Fatal(err)
	}
	if err := a.Refund(1); err == nil {
		t.Error("double refund should fail")
	}
	if got := a.Usage(7); !got.IsZero() {
		t.Errorf("Usage after refund = %+v", got)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDominantShareModes(t *testing.T) {
	// Tenant uses 20/100 CPU and 1/10 GPU: cpu share 0.2, gpu share 0.1.
	charge := Resources{CPU: 20, GPU: 1}

	tests := []struct {
		mode Dominant
		want float64
	}{
		{DominantAuto, 0.2},
		{DominantCPU, 0.2},
		{DominantGPU, 0.1},
	}
	for _, tt := range tests {
		a := newTestAccountant(t, tt.mode)
		if err := a.Charge(1, 3, charge); err != nil {
			t.Fatal(err)
		}
		if got := a.DominantShare(3); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("mode %v: DominantShare = %g, want %g", tt.mode, got, tt.want)
		}
	}
}

func TestDominantShareAutoPicksMax(t *testing.T) {
	a := newTestAccountant(t, DominantAuto)
	// gpu share 0.5 > cpu share 0.05
	if err := a.Charge(1, 2, Resources{CPU: 5, GPU: 5}); err != nil {
		t.Fatal(err)
	}
	if got := a.DominantShare(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("DominantShare = %g, want 0.5", got)
	}
}

func TestWeights(t *testing.T) {
	a := newTestAccountant(t, DominantCPU)
	if err := a.SetWeight(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.SetWeight(1, 0); err == nil {
		t.Error("zero weight should fail")
	}
	if err := a.Charge(1, 1, Resources{CPU: 40}); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge(2, 2, Resources{CPU: 30}); err != nil {
		t.Fatal(err)
	}
	// Tenant 1: 0.4/2 = 0.2 weighted; tenant 2: 0.3. Tenant 1 is poorer.
	got, ok := a.PoorestTenant([]job.TenantID{1, 2})
	if !ok || got != 1 {
		t.Errorf("PoorestTenant = %d, %v; want 1, true", got, ok)
	}
}

func TestRankDeterministicTies(t *testing.T) {
	a := newTestAccountant(t, DominantCPU)
	ranked := a.Rank([]job.TenantID{5, 3, 9, 1})
	want := []job.TenantID{1, 3, 5, 9}
	for i := range want {
		if ranked[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", ranked, want)
		}
	}
}

func TestRankDoesNotMutateInput(t *testing.T) {
	a := newTestAccountant(t, DominantCPU)
	if err := a.Charge(1, 9, Resources{CPU: 50}); err != nil {
		t.Fatal(err)
	}
	in := []job.TenantID{9, 1}
	_ = a.Rank(in)
	if in[0] != 9 || in[1] != 1 {
		t.Errorf("Rank mutated input: %v", in)
	}
}

func TestPoorestTenantEmpty(t *testing.T) {
	a := newTestAccountant(t, DominantAuto)
	if _, ok := a.PoorestTenant(nil); ok {
		t.Error("PoorestTenant(nil) should report !ok")
	}
}

func TestAdjust(t *testing.T) {
	a := newTestAccountant(t, DominantAuto)
	if err := a.Adjust(1, Resources{CPU: 5}); err == nil {
		t.Error("Adjust before charge should fail")
	}
	if err := a.Charge(1, 4, Resources{CPU: 10, GPU: 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.Adjust(1, Resources{CPU: 4, GPU: 2}); err != nil {
		t.Fatal(err)
	}
	if got := a.Usage(4); got != (Resources{CPU: 4, GPU: 2}) {
		t.Errorf("Usage after adjust = %+v", got)
	}
	if err := a.Adjust(1, Resources{CPU: -1}); err == nil {
		t.Error("negative adjust should fail")
	}
	if err := a.Refund(1); err != nil {
		t.Fatal(err)
	}
	if got := a.Usage(4); !got.IsZero() {
		t.Errorf("Usage after refund = %+v (adjust must update ledger)", got)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestDRFProgressiveFilling reproduces the canonical DRF example from the
// paper's citation [4]: tenants with asymmetric demands converge so that
// dominant shares equalize.
func TestDRFProgressiveFilling(t *testing.T) {
	a, err := NewAccountant(Resources{CPU: 90, GPU: 18}, DominantAuto)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant A wants {1 CPU, 0.4 GPU} per task; tenant B wants {3 CPU, 0.1 GPU}.
	demA := Resources{CPU: 1, GPU: 0.4}
	demB := Resources{CPU: 3, GPU: 0.1}
	id := job.ID(1)
	free := Resources{CPU: 90, GPU: 18}
	for {
		tenant, _ := a.PoorestTenant([]job.TenantID{1, 2})
		dem := demA
		if tenant == 2 {
			dem = demB
		}
		if free.CPU < dem.CPU || free.GPU < dem.GPU {
			break
		}
		if err := a.Charge(id, tenant, dem); err != nil {
			t.Fatal(err)
		}
		free = free.Sub(dem)
		id++
	}
	sa, sb := a.DominantShare(1), a.DominantShare(2)
	if math.Abs(sa-sb) > 0.06 {
		t.Errorf("dominant shares diverged: A=%g B=%g", sa, sb)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestChargeRefundProperty: any sequence of charges followed by refunds of
// the same jobs leaves every tenant at zero usage.
func TestChargeRefundProperty(t *testing.T) {
	f := func(cpus []uint8) bool {
		a, err := NewAccountant(Resources{CPU: 1000, GPU: 100}, DominantAuto)
		if err != nil {
			return false
		}
		for i, c := range cpus {
			tenant := job.TenantID(i % 3)
			if err := a.Charge(job.ID(i+1), tenant, Resources{CPU: float64(c), GPU: float64(c % 4)}); err != nil {
				return false
			}
		}
		if err := a.CheckInvariants(); err != nil {
			return false
		}
		for i := range cpus {
			if err := a.Refund(job.ID(i + 1)); err != nil {
				return false
			}
		}
		for tenant := job.TenantID(0); tenant < 3; tenant++ {
			if !a.Usage(tenant).IsZero() {
				return false
			}
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
