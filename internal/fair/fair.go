// Package fair implements Dominant Resource Fairness (DRF) accounting
// (Ghodsi et al., NSDI'11), used both by the DRF baseline scheduler and by
// CODA's intra-array scheduling (§V-C: "DRF scheduling is used to schedule
// the CPU jobs based on the usage of CPU" and "GPU jobs ... according to
// the usage of GPU").
package fair

import (
	"fmt"
	"math"
	"sort"

	"github.com/coda-repro/coda/internal/job"
)

// Resources is a two-dimensional resource vector (CPU cores, GPUs).
type Resources struct {
	// CPU is the core count.
	CPU float64
	// GPU is the GPU count.
	GPU float64
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{CPU: r.CPU + o.CPU, GPU: r.GPU + o.GPU}
}

// Sub returns r - o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{CPU: r.CPU - o.CPU, GPU: r.GPU - o.GPU}
}

// IsZero reports whether both dimensions are exactly zero. Exact equality
// is intentional: it only gates dropping a tenant's ledger entry, and a
// residual epsilon keeps the entry alive harmlessly (CheckInvariants
// compares with a tolerance).
//coda:ordered-ok exact zero test by design; a float residue only delays map cleanup
func (r Resources) IsZero() bool { return r.CPU == 0 && r.GPU == 0 }

// Dominant selects which resource dimension dominates a tenant's share.
type Dominant int

const (
	// DominantAuto uses classic DRF: whichever dimension has the larger
	// share of the cluster total.
	DominantAuto Dominant = iota + 1
	// DominantCPU always uses the CPU share (CODA's CPU job array).
	DominantCPU
	// DominantGPU always uses the GPU share (the paper's DRF baseline and
	// CODA's GPU job arrays consider GPU the dominant resource, §VI-A).
	DominantGPU
)

// String implements fmt.Stringer.
func (d Dominant) String() string {
	switch d {
	case DominantAuto:
		return "auto"
	case DominantCPU:
		return "cpu"
	case DominantGPU:
		return "gpu"
	default:
		return fmt.Sprintf("dominant(%d)", int(d))
	}
}

// Accountant tracks per-tenant resource usage and answers dominant-share
// queries. The zero value is unusable; build with NewAccountant.
type Accountant struct {
	total   Resources
	mode    Dominant
	used    map[job.TenantID]Resources
	perJob  map[job.ID]charge
	weights map[job.TenantID]float64 // share weights; default 1
}

// charge remembers what a job was billed so Refund is exact.
type charge struct {
	tenant job.TenantID
	res    Resources
}

// NewAccountant builds an accountant for a cluster with the given totals.
func NewAccountant(total Resources, mode Dominant) (*Accountant, error) {
	if total.CPU <= 0 {
		return nil, fmt.Errorf("fair: total CPU must be positive, got %g", total.CPU)
	}
	if total.GPU < 0 {
		return nil, fmt.Errorf("fair: total GPU must be non-negative, got %g", total.GPU)
	}
	switch mode {
	case DominantAuto, DominantCPU, DominantGPU:
	default:
		return nil, fmt.Errorf("fair: unknown dominant mode %d", int(mode))
	}
	//coda:ordered-ok construction-time validation of an int-derived total; exact zero intended
	if mode == DominantGPU && total.GPU == 0 {
		return nil, fmt.Errorf("fair: dominant GPU mode needs GPUs in the total")
	}
	return &Accountant{
		total:   total,
		mode:    mode,
		used:    make(map[job.TenantID]Resources),
		perJob:  make(map[job.ID]charge),
		weights: make(map[job.TenantID]float64),
	}, nil
}

// SetWeight sets a tenant's fair-share weight (default 1). A tenant with
// weight 2 may hold twice the dominant share before being deprioritized.
func (a *Accountant) SetWeight(t job.TenantID, w float64) error {
	if w <= 0 {
		return fmt.Errorf("fair: weight must be positive, got %g", w)
	}
	a.weights[t] = w
	return nil
}

func (a *Accountant) weight(t job.TenantID) float64 {
	if w, ok := a.weights[t]; ok {
		return w
	}
	return 1
}

// Charge bills res used by job id to tenant t.
func (a *Accountant) Charge(id job.ID, t job.TenantID, res Resources) error {
	if _, ok := a.perJob[id]; ok {
		return fmt.Errorf("fair: job %d already charged", id)
	}
	if res.CPU < 0 || res.GPU < 0 {
		return fmt.Errorf("fair: negative charge %+v for job %d", res, id)
	}
	a.used[t] = a.used[t].Add(res)
	a.perJob[id] = charge{tenant: t, res: res}
	return nil
}

// Refund releases whatever job id was charged.
func (a *Accountant) Refund(id job.ID) error {
	c, ok := a.perJob[id]
	if !ok {
		return fmt.Errorf("fair: job %d was never charged", id)
	}
	a.used[c.tenant] = a.used[c.tenant].Sub(c.res)
	if a.used[c.tenant].IsZero() {
		delete(a.used, c.tenant)
	}
	delete(a.perJob, id)
	return nil
}

// Adjust re-bills job id with newRes (used when CODA resizes a running
// job's cores).
func (a *Accountant) Adjust(id job.ID, newRes Resources) error {
	c, ok := a.perJob[id]
	if !ok {
		return fmt.Errorf("fair: job %d was never charged", id)
	}
	if newRes.CPU < 0 || newRes.GPU < 0 {
		return fmt.Errorf("fair: negative adjust %+v for job %d", newRes, id)
	}
	a.used[c.tenant] = a.used[c.tenant].Sub(c.res).Add(newRes)
	c.res = newRes
	a.perJob[id] = c
	return nil
}

// Usage returns tenant t's current usage vector.
func (a *Accountant) Usage(t job.TenantID) Resources { return a.used[t] }

// DominantShare returns tenant t's weighted dominant share in [0, 1].
func (a *Accountant) DominantShare(t job.TenantID) float64 {
	u := a.used[t]
	cpuShare := u.CPU / a.total.CPU
	gpuShare := 0.0
	if a.total.GPU > 0 {
		gpuShare = u.GPU / a.total.GPU
	}
	var share float64
	switch a.mode {
	case DominantCPU:
		share = cpuShare
	case DominantGPU:
		share = gpuShare
	default:
		share = math.Max(cpuShare, gpuShare)
	}
	return share / a.weight(t)
}

// Rank orders the given tenants by ascending dominant share (classic DRF
// progressive filling order); ties break by tenant ID for determinism.
func (a *Accountant) Rank(tenants []job.TenantID) []job.TenantID {
	out := append([]job.TenantID(nil), tenants...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := a.DominantShare(out[i]), a.DominantShare(out[j])
		//coda:ordered-ok comparator tie-break; both shares come from the same deterministic computation
		if si != sj {
			return si < sj
		}
		return out[i] < out[j]
	})
	return out
}

// PoorestTenant returns the tenant with the lowest dominant share among the
// candidates; false if candidates is empty.
func (a *Accountant) PoorestTenant(candidates []job.TenantID) (job.TenantID, bool) {
	if len(candidates) == 0 {
		return 0, false
	}
	return a.Rank(candidates)[0], true
}

// CheckInvariants verifies the per-job ledger sums to the per-tenant usage.
func (a *Accountant) CheckInvariants() error {
	sums := make(map[job.TenantID]Resources, len(a.used))
	//coda:ordered-ok per-tenant sums are compared with a 1e-9 tolerance below
	for _, c := range a.perJob {
		sums[c.tenant] = sums[c.tenant].Add(c.res)
	}
	//coda:ordered-ok error reporting on already-broken invariants; any witness will do
	for t, want := range sums {
		got := a.used[t]
		if math.Abs(got.CPU-want.CPU) > 1e-9 || math.Abs(got.GPU-want.GPU) > 1e-9 {
			return fmt.Errorf("fair: tenant %d usage %+v, ledger sums to %+v", t, got, want)
		}
	}
	//coda:ordered-ok error reporting on already-broken invariants; any witness will do
	for t, got := range a.used {
		if _, ok := sums[t]; !ok && !got.IsZero() {
			return fmt.Errorf("fair: tenant %d has usage %+v but no charged jobs", t, got)
		}
	}
	return nil
}
