package fair

import (
	"fmt"
	"sort"

	"github.com/coda-repro/coda/internal/job"
)

// Checkpoint/restore support. The accountant's float accumulations are
// order-sensitive, so the serialized form carries the accumulated values
// verbatim (per-tenant usage as it stands after every Charge/Refund/Adjust,
// not recomputed from the per-job ledger) — a restored accountant continues
// bit-identically.

// TenantUsage is one tenant's accumulated usage vector.
type TenantUsage struct {
	Tenant job.TenantID
	Res    Resources
}

// JobCharge is one job's remembered charge.
type JobCharge struct {
	Job    job.ID
	Tenant job.TenantID
	Res    Resources
}

// TenantWeight is one tenant's fair-share weight.
type TenantWeight struct {
	Tenant job.TenantID
	Weight float64
}

// State is the serializable accountant state. Totals and mode are
// construction parameters and are re-supplied by the caller on restore.
type State struct {
	Used    []TenantUsage
	PerJob  []JobCharge
	Weights []TenantWeight
}

// CheckpointState captures the accountant's mutable state, sorted for
// deterministic output.
func (a *Accountant) CheckpointState() State {
	st := State{
		Used:    make([]TenantUsage, 0, len(a.used)),
		PerJob:  make([]JobCharge, 0, len(a.perJob)),
		Weights: make([]TenantWeight, 0, len(a.weights)),
	}
	//coda:ordered-ok entries are sorted below before serialization
	for t, r := range a.used {
		st.Used = append(st.Used, TenantUsage{Tenant: t, Res: r})
	}
	sort.Slice(st.Used, func(i, j int) bool { return st.Used[i].Tenant < st.Used[j].Tenant })
	//coda:ordered-ok entries are sorted below before serialization
	for id, c := range a.perJob {
		st.PerJob = append(st.PerJob, JobCharge{Job: id, Tenant: c.tenant, Res: c.res})
	}
	sort.Slice(st.PerJob, func(i, j int) bool { return st.PerJob[i].Job < st.PerJob[j].Job })
	//coda:ordered-ok entries are sorted below before serialization
	for t, w := range a.weights {
		st.Weights = append(st.Weights, TenantWeight{Tenant: t, Weight: w})
	}
	sort.Slice(st.Weights, func(i, j int) bool { return st.Weights[i].Tenant < st.Weights[j].Tenant })
	return st
}

// RestoreCheckpointState replaces the accountant's mutable state with st.
// The accountant must have been freshly built with the same totals and mode
// as the checkpointed one.
func (a *Accountant) RestoreCheckpointState(st State) error {
	if len(a.used) != 0 || len(a.perJob) != 0 {
		return fmt.Errorf("fair: restore into a non-empty accountant")
	}
	used := make(map[job.TenantID]Resources, len(st.Used))
	for _, u := range st.Used {
		if _, dup := used[u.Tenant]; dup {
			return fmt.Errorf("fair: duplicate tenant %d in checkpoint", u.Tenant)
		}
		used[u.Tenant] = u.Res
	}
	perJob := make(map[job.ID]charge, len(st.PerJob))
	for _, c := range st.PerJob {
		if _, dup := perJob[c.Job]; dup {
			return fmt.Errorf("fair: duplicate job %d in checkpoint", c.Job)
		}
		if _, ok := used[c.Tenant]; !ok && !c.Res.IsZero() {
			return fmt.Errorf("fair: job %d charged to tenant %d with no usage entry", c.Job, c.Tenant)
		}
		perJob[c.Job] = charge{tenant: c.Tenant, res: c.Res}
	}
	weights := make(map[job.TenantID]float64, len(st.Weights))
	for _, w := range st.Weights {
		if w.Weight <= 0 {
			return fmt.Errorf("fair: tenant %d has non-positive weight %g in checkpoint", w.Tenant, w.Weight)
		}
		weights[w.Tenant] = w.Weight
	}
	a.used = used
	a.perJob = perJob
	a.weights = weights
	return a.CheckInvariants()
}
