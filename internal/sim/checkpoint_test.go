package sim

import (
	"errors"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/checkpoint"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
)

// ckptWorkload builds a fresh job list per call (runs mutate job state, so
// baseline and resumed runs must never share pointers). The mix covers GPU
// training across model categories, CPU jobs and a bandwidth hog, spread
// over ~6 hours so mid-run kill points land in dense scheduling activity.
func ckptWorkload() []*job.Job {
	models := []string{"resnet50", "transformer", "deepspeech", "vgg16"}
	var jobs []*job.Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, gpuJob(job.ID(1000+i), time.Duration(i)*22*time.Minute,
			models[i%len(models)], 3+i%4, 1+i%2, time.Duration(90+13*(i%5))*time.Minute))
	}
	for i := 0; i < 30; i++ {
		jobs = append(jobs, cpuJob(job.ID(2000+i), time.Duration(i)*11*time.Minute,
			3+i%5, time.Duration(60+9*(i%7))*time.Minute))
	}
	jobs = append(jobs, hogJob(3000, 80*time.Minute, 6, 70, 2*time.Hour))
	return jobs
}

func codaScheduler(t *testing.T, opts Options) sched.Scheduler {
	t.Helper()
	s, err := core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// encodeCheckpoint is the sink contract in miniature: the *Checkpoint shares
// memory with the live run, so serialize inside the sink call.
func encodeCheckpoint(ck *Checkpoint) ([]byte, error) { return checkpoint.Encode(ck) }

// TestResumeEquivalence is the headline metamorphic property: a run
// checkpointed every K events and resumed from ANY of those checkpoints must
// finish with a byte-identical Result dump. It covers the CODA scheduler
// (history log, multi-array ledgers, allocator search, eliminator) under an
// active chaos plan, so every serialized subsystem is exercised.
func TestResumeEquivalence(t *testing.T) {
	opts := testOptions()
	opts.Seed = 11
	opts.MaxVirtualTime = 2 * 24 * time.Hour
	opts.Faults = chaos.Plan{
		Seed:              5,
		Horizon:           12 * time.Hour,
		NodeCrashesPerDay: 3,
		StragglersPerDay:  4,
		JobFailureProb:    0.12,
	}
	opts.CheckpointEveryEvents = 400

	var snaps [][]byte
	opts.CheckpointSink = func(ck *Checkpoint) error {
		data, err := encodeCheckpoint(ck)
		if err != nil {
			return err
		}
		snaps = append(snaps, data)
		return nil
	}

	s, err := New(opts, codaScheduler(t, opts), ckptWorkload())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := dumpResult(res)
	if len(snaps) < 3 {
		t.Fatalf("only %d checkpoints taken; workload too small for the property", len(snaps))
	}

	// Resume from a spread of checkpoints: the first, the last, and a few in
	// between. Each must reach the same final state bit for bit.
	picks := []int{0, len(snaps) / 4, len(snaps) / 2, 3 * len(snaps) / 4, len(snaps) - 1}
	seen := map[int]bool{}
	for _, idx := range picks {
		if seen[idx] {
			continue
		}
		seen[idx] = true
		var ck Checkpoint
		if err := checkpoint.Decode(snaps[idx], &ck); err != nil {
			t.Fatalf("checkpoint %d: %v", idx, err)
		}
		resumed, err := Resume(&ck, codaScheduler(t, opts), nil)
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", idx, err)
		}
		got, err := resumed.Run()
		if err != nil {
			t.Fatalf("resumed run %d: %v", idx, err)
		}
		if d := dumpResult(got); d != want {
			t.Fatalf("resume from checkpoint %d/%d diverged at %s", idx, len(snaps), firstDiff(want, d))
		}
	}
}

// TestResumeEquivalenceFIFO covers the non-CODA Checkpointer path and the
// time-based cadence.
func TestResumeEquivalenceFIFO(t *testing.T) {
	opts := testOptions()
	opts.Seed = 3
	opts.MaxVirtualTime = 2 * 24 * time.Hour
	opts.CheckpointEvery = 45 * time.Minute

	var snaps [][]byte
	opts.CheckpointSink = func(ck *Checkpoint) error {
		data, err := encodeCheckpoint(ck)
		if err != nil {
			return err
		}
		snaps = append(snaps, data)
		return nil
	}
	s, err := New(opts, sched.NewFIFO(), ckptWorkload())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := dumpResult(res)
	if len(snaps) == 0 {
		t.Fatal("no checkpoints taken")
	}
	var ck Checkpoint
	if err := checkpoint.Decode(snaps[len(snaps)/2], &ck); err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(&ck, sched.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := dumpResult(got); d != want {
		t.Fatalf("FIFO resume diverged at %s", firstDiff(want, d))
	}
}

// runWithRecovery is the crash-recovery harness: it runs until completion,
// restarting from the latest checkpoint (or from scratch, if the controller
// died before the first checkpoint) every time fault injection kills the
// scheduler. survived counts total deaths so each restarted instance shrugs
// off exactly the kills its predecessors already died to — the kill events
// replay deterministically from the checkpoint.
func runWithRecovery(t *testing.T, opts Options, mkSched func() sched.Scheduler) (*Result, int) {
	t.Helper()
	var latest []byte
	sink := func(ck *Checkpoint) error {
		data, err := encodeCheckpoint(ck)
		if err != nil {
			return err
		}
		latest = data
		return nil
	}
	opts.CheckpointSink = sink
	survived := 0
	for restarts := 0; ; restarts++ {
		if restarts > 25 {
			t.Fatal("crash-recovery harness did not converge")
		}
		var s *Simulator
		var err error
		if latest == nil {
			if s, err = New(opts, mkSched(), ckptWorkload()); err != nil {
				t.Fatal(err)
			}
		} else {
			var ck Checkpoint
			if err := checkpoint.Decode(latest, &ck); err != nil {
				t.Fatal(err)
			}
			if s, err = Resume(&ck, mkSched(), sink); err != nil {
				t.Fatal(err)
			}
		}
		s.SetSurvivedKills(survived)
		res, err := s.Run()
		if errors.Is(err, ErrControllerKilled) {
			survived++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		return res, survived
	}
}

// TestKillAndResumeMatrix is the acceptance matrix: for 3 seeds x 2 fault
// plans x 3 kill points, a run whose controller is killed and restarted from
// the latest checkpoint must produce a Result byte-identical to the same run
// left uninterrupted (the baseline counts the same kills without dying, so
// the two observe identical fault streams).
func TestKillAndResumeMatrix(t *testing.T) {
	seeds := []int64{1, 2, 3}
	// Kill points: before the first 30-minute checkpoint (fresh-restart
	// path), mid-run, and deep into the run.
	killPoints := []time.Duration{25 * time.Minute, 150 * time.Minute, 5 * time.Hour}
	plans := []struct {
		name string
		plan chaos.Plan
	}{
		{"job-failures", chaos.Plan{Seed: 9, Horizon: 12 * time.Hour, JobFailureProb: 0.15}},
		{"crashes-and-stragglers", chaos.Plan{
			Seed: 17, Horizon: 12 * time.Hour,
			NodeCrashesPerDay: 4, StragglersPerDay: 5, JobFailureProb: 0.05,
		}},
	}

	for _, seed := range seeds {
		for _, pl := range plans {
			for _, kp := range killPoints {
				plan := pl.plan
				plan.Faults = append(append([]chaos.Fault(nil), pl.plan.Faults...),
					chaos.Fault{At: kp, Kind: chaos.KindControllerKill})

				opts := testOptions()
				opts.Seed = seed
				opts.MaxVirtualTime = 2 * 24 * time.Hour
				opts.Faults = plan
				opts.CheckpointEvery = 30 * time.Minute

				// Baseline: same plan, kill only counted, never fatal.
				base := opts
				base.ExitOnControllerKill = false
				want := dumpResult(mustRun(t, base, codaScheduler(t, base), ckptWorkload()))

				hard := opts
				hard.ExitOnControllerKill = true
				got, deaths := runWithRecovery(t, hard, func() sched.Scheduler { return codaScheduler(t, hard) })
				if deaths == 0 {
					t.Errorf("seed %d plan %s kill@%v: controller never died; kill point outside the run",
						seed, pl.name, kp)
				}
				if d := dumpResult(got); d != want {
					t.Errorf("seed %d plan %s kill@%v: recovered run diverged at %s",
						seed, pl.name, kp, firstDiff(want, d))
				}
			}
		}
	}
}

// TestResumeRejectsBadCheckpoints covers the directed failure modes: a
// checkpoint resumed under the wrong policy, with an unknown event kind, or
// with mis-sized state must fail loudly before the run starts.
func TestResumeRejectsBadCheckpoints(t *testing.T) {
	opts := testOptions()
	opts.Seed = 4
	opts.CheckpointEveryEvents = 200
	var snap []byte
	opts.CheckpointSink = func(ck *Checkpoint) error {
		if snap == nil {
			data, err := encodeCheckpoint(ck)
			if err != nil {
				return err
			}
			snap = data
		}
		return nil
	}
	s, err := New(opts, sched.NewFIFO(), ckptWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint captured")
	}
	decode := func(t *testing.T) *Checkpoint {
		t.Helper()
		var ck Checkpoint
		if err := checkpoint.Decode(snap, &ck); err != nil {
			t.Fatal(err)
		}
		return &ck
	}

	t.Run("wrong scheduler", func(t *testing.T) {
		ck := decode(t)
		if _, err := Resume(ck, codaScheduler(t, opts), nil); err == nil {
			t.Error("resume under a different policy should fail")
		}
	})
	t.Run("nil scheduler", func(t *testing.T) {
		if _, err := Resume(decode(t), nil, nil); err == nil {
			t.Error("nil scheduler should fail")
		}
	})
	t.Run("unknown event kind", func(t *testing.T) {
		ck := decode(t)
		if len(ck.Events) == 0 {
			t.Skip("checkpoint has no events")
		}
		ck.Events[0].Kind = 99
		if _, err := Resume(ck, sched.NewFIFO(), nil); err == nil {
			t.Error("unknown event kind should fail")
		}
	})
	t.Run("mis-sized pcie state", func(t *testing.T) {
		ck := decode(t)
		ck.PcieLoad = ck.PcieLoad[:1]
		if _, err := Resume(ck, sched.NewFIFO(), nil); err == nil {
			t.Error("mis-sized pcie load should fail")
		}
	})
	t.Run("missing results", func(t *testing.T) {
		ck := decode(t)
		ck.Results = nil
		if _, err := Resume(ck, sched.NewFIFO(), nil); err == nil {
			t.Error("missing results should fail")
		}
	})
}

// TestCheckpointCadenceValidation pins the Options.Validate additions.
func TestCheckpointCadenceValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.CheckpointEvery = -time.Second
	if err := opts.Validate(); err == nil {
		t.Error("negative checkpoint cadence should fail validation")
	}
	opts = DefaultOptions()
	opts.CheckpointEveryEvents = -1
	if err := opts.Validate(); err == nil {
		t.Error("negative event cadence should fail validation")
	}
}
