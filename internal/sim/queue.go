package sim

import (
	"container/heap"
	"time"
)

// The pending-event priority queue behind the event loop. Two
// implementations share one deterministic contract: events come out in
// strictly ascending (at, seq) order, regardless of insertion order. The
// binary heap is the default; the calendar queue trades the heap's O(log n)
// per operation for O(1) bucket inserts at warehouse scale, where the queue
// holds completions for hundreds of thousands of running jobs at once.
//
// Both implementations are storage only — no wall clock, no goroutines —
// so swapping one for the other cannot change a run's event order, only
// the constant factor of maintaining it. Checkpoints never record queue
// internals: the snapshot is canonicalized to sorted (at, seq) order, so a
// run checkpointed under one implementation resumes under any other.

// Options.EventQueue values.
const (
	// EventQueueHeap selects the binary min-heap (the default).
	EventQueueHeap = "heap"
	// EventQueueCalendar selects the calendar queue: per-time-bucket
	// min-heaps with a monotone cursor, sized for multi-million-event runs.
	EventQueueCalendar = "calendar"
)

// eventQueue is the pending-event priority queue: pop yields the minimum
// (at, seq) event.
type eventQueue interface {
	push(e *event)
	// pop removes and returns the minimum event, nil when empty.
	pop() *event
	// peek returns the minimum event without removing it, nil when empty.
	peek() *event
	len() int
	// appendAll appends every queued event to dst in no particular order;
	// callers canonicalize by (at, seq) before relying on the order.
	appendAll(dst []*event) []*event
}

// newEventQueue builds the queue Options.EventQueue selects. Options must
// already be validated.
func newEventQueue(opts Options) eventQueue {
	if opts.EventQueue == EventQueueCalendar {
		return newCalendarQueue(calendarWidth(opts.TickInterval))
	}
	return &binaryQueue{}
}

// binaryQueue is the eventHeap behind the eventQueue interface.
type binaryQueue struct {
	h eventHeap
}

func (q *binaryQueue) push(e *event) { heap.Push(&q.h, e) }

func (q *binaryQueue) pop() *event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}

func (q *binaryQueue) peek() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *binaryQueue) len() int { return len(q.h) }

func (q *binaryQueue) appendAll(dst []*event) []*event { return append(dst, q.h...) }

// calendarWidth clamps the bucket width: the tick interval keeps the front
// bucket small (ticks land in every bucket of a live run), while the floor
// and ceiling bound the cursor's forward scan to at most one step per
// simulated second and the bucket population to at most an hour of events.
func calendarWidth(tick time.Duration) time.Duration {
	switch {
	case tick < time.Second:
		return time.Second
	case tick > time.Hour:
		return time.Hour
	default:
		return tick
	}
}

// calendarQueue buckets events by at/width into per-bucket min-heaps and
// pops from the lowest non-empty bucket. Simulated time only moves forward,
// so the cursor's forward scan is monotone and its total cost over a run is
// bounded by duration/width, not by the event count. Within a bucket the
// per-bucket heap enforces exact (at, seq) order; across buckets the bucket
// index enforces it, so pop order is identical to the binary heap's.
type calendarQueue struct {
	width time.Duration
	slots map[int64]*eventHeap
	// cur is the lowest bucket index that may hold events; size is the
	// total queued event count.
	cur  int64
	size int
}

func newCalendarQueue(width time.Duration) *calendarQueue {
	return &calendarQueue{width: width, slots: make(map[int64]*eventHeap)}
}

func (q *calendarQueue) bucket(at time.Duration) int64 { return int64(at / q.width) }

func (q *calendarQueue) push(e *event) {
	b := q.bucket(e.at)
	if q.size == 0 || b < q.cur {
		q.cur = b
	}
	slot := q.slots[b]
	if slot == nil {
		slot = &eventHeap{}
		q.slots[b] = slot
	}
	heap.Push(slot, e)
	q.size++
}

// front advances the cursor to the lowest non-empty bucket and returns its
// heap, nil when the queue is empty.
func (q *calendarQueue) front() *eventHeap {
	if q.size == 0 {
		return nil
	}
	for {
		if slot, ok := q.slots[q.cur]; ok && slot.Len() > 0 {
			return slot
		}
		q.cur++
	}
}

func (q *calendarQueue) pop() *event {
	slot := q.front()
	if slot == nil {
		return nil
	}
	e := heap.Pop(slot).(*event)
	q.size--
	if slot.Len() == 0 {
		delete(q.slots, q.cur)
	}
	return e
}

func (q *calendarQueue) peek() *event {
	slot := q.front()
	if slot == nil {
		return nil
	}
	return (*slot)[0]
}

func (q *calendarQueue) len() int { return q.size }

func (q *calendarQueue) appendAll(dst []*event) []*event {
	//coda:ordered-ok map order; callers canonicalize by (at, seq)
	for _, slot := range q.slots {
		dst = append(dst, *slot...)
	}
	return dst
}
