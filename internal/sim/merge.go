package sim

import (
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/metrics"
)

// Merged aggregates the results of several runs of the same experiment —
// typically one trace replayed under several seeds. Distributions are
// pooled (every per-run queueing sample lands in one CDF); counters are
// summed; headline rates are means of the per-run window means, so every
// run weighs equally regardless of how long its drain tail ran.
type Merged struct {
	// Scheduler is the shared policy name of the merged runs.
	Scheduler string
	// Runs is how many results were merged.
	Runs int

	// GPUQueue, CPUQueue and PerTenant pool the per-run queueing samples.
	GPUQueue, CPUQueue metrics.CDF
	PerTenant          *metrics.PerKeyCDF

	// GPUActiveRate, GPUUtil, CPUActiveRate, CPUUtil and FragRate are means
	// across runs of each run's [0, LastArrival] window mean.
	GPUActiveRate, GPUUtil float64
	CPUActiveRate, CPUUtil float64
	FragRate               float64

	// GPUJobsDone and CPUJobsDone sum completions; Throttles and
	// Preemptions sum interventions; Faults sums chaos activity.
	GPUJobsDone, CPUJobsDone int
	Throttles, Preemptions   int
	Faults                   metrics.FaultCounters

	// MeanMakeSpan averages the per-run total simulated time.
	MeanMakeSpan time.Duration
}

// MergeResults folds per-run results into one Merged aggregate. All
// results must come from the same scheduler: merging FIFO into CODA is a
// matrix-bookkeeping bug, not an aggregate. The fold iterates rs in slice
// order, so the output is deterministic for a fixed argument order.
func MergeResults(rs []*Result) (*Merged, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("sim: merge of no results")
	}
	m := &Merged{
		Scheduler: rs[0].Scheduler,
		Runs:      len(rs),
		PerTenant: metrics.NewPerKeyCDF(),
	}
	var makeSpan time.Duration
	for i, r := range rs {
		if r == nil {
			return nil, fmt.Errorf("sim: merge result %d is nil", i)
		}
		if r.Scheduler != m.Scheduler {
			return nil, fmt.Errorf("sim: merge mixes schedulers %q and %q", m.Scheduler, r.Scheduler)
		}
		m.GPUQueue.Merge(&r.GPUQueue)
		m.CPUQueue.Merge(&r.CPUQueue)
		m.PerTenant.Merge(r.PerTenant)
		sm := r.Summarize()
		m.GPUActiveRate += sm.GPUActiveRate
		m.GPUUtil += sm.GPUUtil
		m.CPUActiveRate += sm.CPUActiveRate
		m.CPUUtil += sm.CPUUtil
		m.FragRate += sm.FragRate
		m.GPUJobsDone += sm.GPUJobsDone
		m.CPUJobsDone += sm.CPUJobsDone
		m.Throttles += r.Throttles
		m.Preemptions += r.Preemptions
		m.Faults.Add(r.Faults)
		makeSpan += r.EndTime
	}
	n := float64(len(rs))
	m.GPUActiveRate /= n
	m.GPUUtil /= n
	m.CPUActiveRate /= n
	m.CPUUtil /= n
	m.FragRate /= n
	m.MeanMakeSpan = makeSpan / time.Duration(len(rs))
	return m, nil
}
