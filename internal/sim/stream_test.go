package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/checkpoint"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/trace"
)

// streamTraceConfig is a small diurnal trace whose load keeps the 4-node
// test cluster busy enough that arrivals, faults and dynamic events
// interleave at identical timestamps — the order-sensitivity the streaming
// intake must reproduce exactly.
func streamTraceConfig(seed int64) trace.Config {
	cfg := trace.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = 18 * time.Hour
	cfg.CPUJobs = 120
	cfg.GPUJobs = 40
	return cfg
}

func streamTestOptions(seed int64) Options {
	opts := testOptions()
	opts.Seed = seed + 1000
	opts.MaxVirtualTime = 3 * 24 * time.Hour
	opts.Faults = chaos.Plan{
		Seed:              seed,
		Horizon:           18 * time.Hour,
		NodeCrashesPerDay: 2,
		StragglersPerDay:  3,
		JobFailureProb:    0.1,
	}
	return opts
}

// runMaterialized executes the slice-intake path.
func runMaterialized(t *testing.T, opts Options, mk func() sched.Scheduler, cfg trace.Config) *Result {
	t.Helper()
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(opts, mk(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runStreaming executes the lazy-source intake path.
func runStreaming(t *testing.T, opts Options, mk func() sched.Scheduler, cfg trace.Config) *Result {
	t.Helper()
	src, err := trace.NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreaming(opts, mk(), src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamingMatchesMaterialized is the tentpole's safety net: for both a
// stateless scheduler (FIFO) and the full CODA stack, a streaming run must
// produce a byte-identical result dump to a materialized run of the same
// trace config under an active chaos plan.
func TestStreamingMatchesMaterialized(t *testing.T) {
	cfg := streamTraceConfig(17)
	opts := streamTestOptions(17)
	schedulers := map[string]func() sched.Scheduler{
		"fifo": func() sched.Scheduler { return sched.NewFIFO() },
		"coda": func() sched.Scheduler { return codaScheduler(t, opts) },
	}
	for name, mk := range schedulers {
		t.Run(name, func(t *testing.T) {
			want := DumpResult(runMaterialized(t, opts, mk, cfg))
			got := DumpResult(runStreaming(t, opts, mk, cfg))
			if got != want {
				t.Fatalf("streaming diverged from materialized at %s", FirstDiff(want, got))
			}
		})
	}
}

// TestEventQueueImplsIdentical pins the queue-interface contract: binary
// heap and calendar queue must pop the identical event order, so runs under
// either produce byte-identical dumps — on both intake paths.
func TestEventQueueImplsIdentical(t *testing.T) {
	cfg := streamTraceConfig(29)
	base := streamTestOptions(29)

	heapOpts := base
	heapOpts.EventQueue = EventQueueHeap
	calOpts := base
	calOpts.EventQueue = EventQueueCalendar

	mk := func() sched.Scheduler { return codaScheduler(t, base) }
	wantSlice := DumpResult(runMaterialized(t, heapOpts, mk, cfg))
	if got := DumpResult(runMaterialized(t, calOpts, mk, cfg)); got != wantSlice {
		t.Fatalf("calendar queue diverged from heap (materialized) at %s", FirstDiff(wantSlice, got))
	}
	if got := DumpResult(runStreaming(t, calOpts, mk, cfg)); got != wantSlice {
		t.Fatalf("calendar queue diverged from heap (streaming) at %s", FirstDiff(wantSlice, got))
	}
}

// TestStreamingKillAndResume checkpoints a streaming run mid-stream (with
// most arrivals still inside the Source) and verifies resuming from a spread
// of checkpoints reaches a byte-identical final dump. This is the Source
// cursor protocol end to end: config + draw counts + next-arrival state.
func TestStreamingKillAndResume(t *testing.T) {
	cfg := streamTraceConfig(43)
	opts := streamTestOptions(43)
	opts.CheckpointEveryEvents = 300

	var snaps [][]byte
	opts.CheckpointSink = func(ck *Checkpoint) error {
		data, err := encodeCheckpoint(ck)
		if err != nil {
			return err
		}
		snaps = append(snaps, data)
		return nil
	}

	mk := func() sched.Scheduler { return codaScheduler(t, opts) }
	want := DumpResult(runStreaming(t, opts, mk, cfg))
	if len(snaps) < 3 {
		t.Fatalf("only %d checkpoints taken; workload too small for the property", len(snaps))
	}

	picks := []int{0, len(snaps) / 2, len(snaps) - 1}
	seen := map[int]bool{}
	for _, idx := range picks {
		if seen[idx] {
			continue
		}
		seen[idx] = true
		var ck Checkpoint
		if err := checkpoint.Decode(snaps[idx], &ck); err != nil {
			t.Fatalf("checkpoint %d: %v", idx, err)
		}
		if ck.Trace == nil {
			t.Fatalf("checkpoint %d from a streaming run carries no trace cursor", idx)
		}
		resumed, err := Resume(&ck, mk(), nil)
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", idx, err)
		}
		got, err := resumed.Run()
		if err != nil {
			t.Fatalf("resumed run %d: %v", idx, err)
		}
		if d := DumpResult(got); d != want {
			t.Fatalf("resume from checkpoint %d/%d diverged at %s", idx, len(snaps), FirstDiff(want, d))
		}
	}
}

// TestNewStreamingRejectsDrainedSource guards the freshness contract.
func TestNewStreamingRejectsDrainedSource(t *testing.T) {
	cfg := streamTraceConfig(7)
	src, err := trace.NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	if _, err := NewStreaming(opts, codaScheduler(t, opts), src); err == nil {
		t.Error("NewStreaming accepted a partially drained source")
	}
	if _, err := NewStreaming(opts, codaScheduler(t, opts), nil); err == nil {
		t.Error("NewStreaming accepted a nil source")
	}
}

// TestMaxJobStatsBoundsHistory verifies the keep-first-N bound: per-job
// history stays capped while every aggregate (completions, queue CDFs,
// summary) still observes the full population.
func TestMaxJobStatsBoundsHistory(t *testing.T) {
	cfg := streamTraceConfig(31)
	opts := streamTestOptions(31)
	mk := func() sched.Scheduler { return codaScheduler(t, opts) }

	full := runStreaming(t, opts, mk, cfg)

	bounded := opts
	bounded.MaxJobStats = 10
	capped := runStreaming(t, bounded, mk, cfg)

	if len(capped.Jobs) > 10 {
		t.Errorf("bounded run kept %d job records, want <= 10", len(capped.Jobs))
	}
	if capped.GPUJobsDone != full.GPUJobsDone || capped.CPUJobsDone != full.CPUJobsDone {
		t.Errorf("bounded completions %d/%d, full %d/%d",
			capped.GPUJobsDone, capped.CPUJobsDone, full.GPUJobsDone, full.CPUJobsDone)
	}
	if capped.GPUQueue.Len() != full.GPUQueue.Len() || capped.CPUQueue.Len() != full.CPUQueue.Len() {
		t.Errorf("bounded queue CDFs saw %d/%d samples, full %d/%d",
			capped.GPUQueue.Len(), capped.CPUQueue.Len(), full.GPUQueue.Len(), full.CPUQueue.Len())
	}
	cs, fs := capped.Summarize(), full.Summarize()
	if cs.GPUJobsDone != fs.GPUJobsDone || cs.CPUJobsDone != fs.CPUJobsDone {
		t.Errorf("bounded summary %+v differs from full %+v", cs, fs)
	}
}

// TestCompactCDFs verifies sketch-mode distributions stay within the
// documented bucket resolution of the exact run and survive checkpointing.
func TestCompactCDFs(t *testing.T) {
	cfg := streamTraceConfig(53)
	opts := streamTestOptions(53)
	mk := func() sched.Scheduler { return codaScheduler(t, opts) }

	exact := runStreaming(t, opts, mk, cfg)

	compact := opts
	compact.CompactCDFs = true
	sketched := runStreaming(t, compact, mk, cfg)

	if !sketched.GPUQueue.Sketch() || !sketched.CPUQueue.Sketch() {
		t.Fatal("compact run's queue CDFs are not sketches")
	}
	if sketched.GPUQueue.Len() != exact.GPUQueue.Len() {
		t.Errorf("sketch saw %d samples, exact %d", sketched.GPUQueue.Len(), exact.GPUQueue.Len())
	}
	for _, p := range []float64{50, 90, 99} {
		e, s := exact.GPUQueue.Percentile(p), sketched.GPUQueue.Percentile(p)
		if s > e {
			t.Errorf("p%.0f: sketch %v above exact %v (representatives are lower bounds)", p, s, e)
		}
		// A bucket's lower bound is at most 12.5% below any value it holds.
		if float64(s) < float64(e)*0.875-1 {
			t.Errorf("p%.0f: sketch %v more than 12.5%% below exact %v", p, s, e)
		}
	}
}

// TestCheckpointJobBound pins the sortedJobs serialization guard: a
// checkpoint whose pending+retrying population exceeds the bound must fail
// loudly on capture, and an oversized checkpoint must fail on resume. The
// workload is a deterministic overload — every job wants a full node's GPUs,
// so on the 4-node test cluster at most 4 run while the rest pile up
// pending, far past the lowered bound by the first checkpoint.
func TestCheckpointJobBound(t *testing.T) {
	overload := func() []*job.Job {
		jobs := make([]*job.Job, 0, 40)
		for i := 0; i < 40; i++ {
			jobs = append(jobs, gpuJob(job.ID(i+1), time.Duration(i)*time.Second, "resnet50", 8, 4, 2*time.Hour))
		}
		return jobs
	}
	baseOpts := func() Options {
		opts := testOptions()
		opts.MaxVirtualTime = 24 * time.Hour
		opts.CheckpointEveryEvents = 60
		return opts
	}

	t.Run("capture", func(t *testing.T) {
		old := maxCheckpointJobs
		maxCheckpointJobs = 8
		defer func() { maxCheckpointJobs = old }()

		opts := baseOpts()
		opts.CheckpointSink = func(ck *Checkpoint) error { return nil }
		s, err := New(opts, codaScheduler(t, opts), overload())
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Run()
		if err == nil {
			t.Fatal("run checkpointed more pending jobs than the bound without erroring")
		}
		if !strings.Contains(err.Error(), "serialization bound") {
			t.Fatalf("unexpected error: %v", err)
		}
	})

	t.Run("resume", func(t *testing.T) {
		// Capture one legitimate oversized checkpoint under the default
		// bound, then lower the bound and try to resume from it.
		sentinel := errors.New("stop after first checkpoint")
		var snap []byte
		opts := baseOpts()
		opts.CheckpointSink = func(ck *Checkpoint) error {
			data, err := encodeCheckpoint(ck)
			if err != nil {
				return err
			}
			snap = data
			return sentinel
		}
		s, err := New(opts, codaScheduler(t, opts), overload())
		if err != nil {
			t.Fatal(err)
		}
		if _, err = s.Run(); err == nil || !strings.Contains(err.Error(), sentinel.Error()) {
			t.Fatalf("run did not stop on the sink sentinel: %v", err)
		}
		var ck Checkpoint
		if err := checkpoint.Decode(snap, &ck); err != nil {
			t.Fatal(err)
		}
		if n := len(ck.Pending) + len(ck.Retrying); n <= 8 {
			t.Fatalf("captured checkpoint has only %d pending+retrying jobs; overload too small", n)
		}

		old := maxCheckpointJobs
		maxCheckpointJobs = 8
		defer func() { maxCheckpointJobs = old }()
		if _, err := Resume(&ck, codaScheduler(t, opts), nil); err == nil {
			t.Fatal("Resume accepted a checkpoint past the job bound")
		} else if !strings.Contains(err.Error(), "checkpoint bound") {
			t.Fatalf("unexpected error: %v", err)
		}
	})
}
