package sim

import (
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/trace"
)

// dumpResult and firstDiff moved to dump.go as the exported DumpResult and
// FirstDiff: the parallel-runner golden tests need the same bit-exact
// serialization. The aliases keep this file's call sites unchanged.
var (
	dumpResult = DumpResult
	firstDiff  = FirstDiff
)

func codaRun(t *testing.T, simSeed, traceSeed int64) *Result {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 120, 40
	cfg.Duration = 24 * time.Hour
	cfg.Seed = traceSeed
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Seed = simSeed
	s, err := core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return mustRun(t, opts, s, jobs)
}

// TestSameSeedRunsAreByteIdentical is the end-to-end determinism golden
// test: two full CODA simulations with the same trace and noise seeds must
// measure bit-identical results — every series sample, queue-time CDF and
// per-job lifecycle. A different trace seed must visibly change the run
// (guarding against the dump degenerating into a constant).
func TestSameSeedRunsAreByteIdentical(t *testing.T) {
	a := dumpResult(codaRun(t, 7, 42))
	b := dumpResult(codaRun(t, 7, 42))
	if a != b {
		t.Fatalf("same-seed runs diverged at %s", firstDiff(a, b))
	}
	c := dumpResult(codaRun(t, 7, 43))
	if c == a {
		t.Error("different trace seed produced an identical run; the dump is not sensitive enough")
	}
}
