package sim

import (
	"errors"
	"fmt"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
)

// Clone returns a deep copy of the options. Options is a value type except
// for the fault plan's fixed-fault slice; CheckpointSink is a function
// value and is shared by the copy — give each run its own sink explicitly
// when runs must not write into the same checkpoint stream.
func (o Options) Clone() Options {
	o.Faults = o.Faults.Clone()
	return o
}

// RunSpec is a self-contained description of one simulation run: options,
// trace and scheduler recipe. A spec is a plain value that can be cloned,
// so one spec can seed many runs (a seed sweep, a matrix cell) without the
// runs sharing any mutable state.
//
// Schedulers are stateful and cannot be copied, so the spec carries a
// factory instead of an instance: NewScheduler must build a fresh scheduler
// on every call and must not capture mutable state shared with other specs.
type RunSpec struct {
	// Name labels the run in results, errors and reports.
	Name string
	// Options configures the simulator.
	Options Options
	// Jobs is the trace. Run hands these to the simulator without copying;
	// clone the spec (or the jobs) before reusing it.
	Jobs []*job.Job
	// NewScheduler builds the run's scheduler.
	NewScheduler func() (sched.Scheduler, error)
}

// Clone returns a deep copy of the spec: options (including the fault
// plan) and every job are copied; the scheduler factory is shared, which
// is safe exactly because it constructs a fresh scheduler per call.
func (sp RunSpec) Clone() RunSpec {
	sp.Options = sp.Options.Clone()
	jobs := make([]*job.Job, len(sp.Jobs))
	for i, j := range sp.Jobs {
		jobs[i] = j.Clone()
	}
	sp.Jobs = jobs
	return sp
}

// Validate checks the spec without building anything.
func (sp RunSpec) Validate() error {
	if sp.NewScheduler == nil {
		return fmt.Errorf("sim: run spec %q has no scheduler factory", sp.Name)
	}
	if err := sp.Options.Validate(); err != nil {
		return fmt.Errorf("sim: run spec %q: %w", sp.Name, err)
	}
	return nil
}

// Run executes the spec on the calling goroutine: build the scheduler,
// build the simulator, run to completion. It is the single-threaded unit
// of work the runner package parallelizes across specs.
func (sp RunSpec) Run() (*Result, error) {
	if sp.NewScheduler == nil {
		return nil, errors.New("sim: run spec has no scheduler factory")
	}
	scheduler, err := sp.NewScheduler()
	if err != nil {
		return nil, fmt.Errorf("sim: run %q: %w", sp.Name, err)
	}
	simulator, err := New(sp.Options, scheduler, sp.Jobs)
	if err != nil {
		return nil, fmt.Errorf("sim: run %q: %w", sp.Name, err)
	}
	res, err := simulator.Run()
	if err != nil {
		return nil, fmt.Errorf("sim: run %q: %w", sp.Name, err)
	}
	return res, nil
}
