package sim

import (
	"errors"
	"fmt"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/trace"
)

// Clone returns a deep copy of the options. Options is a value type except
// for the fault plan's fixed-fault slice; CheckpointSink is a function
// value and is shared by the copy — give each run its own sink explicitly
// when runs must not write into the same checkpoint stream.
func (o Options) Clone() Options {
	o.Faults = o.Faults.Clone()
	return o
}

// RunSpec is a self-contained description of one simulation run: options,
// trace and scheduler recipe. A spec is a plain value that can be cloned,
// so one spec can seed many runs (a seed sweep, a matrix cell) without the
// runs sharing any mutable state.
//
// Schedulers are stateful and cannot be copied, so the spec carries a
// factory instead of an instance: NewScheduler must build a fresh scheduler
// on every call and must not capture mutable state shared with other specs.
type RunSpec struct {
	// Name labels the run in results, errors and reports.
	Name string
	// Options configures the simulator.
	Options Options
	// Jobs is the materialized trace. Run hands these to the simulator
	// without copying; clone the spec (or the jobs) before reusing it.
	// Mutually exclusive with Trace.
	Jobs []*job.Job
	// Trace, when set, streams the trace lazily from a seeded source
	// instead of materializing Jobs: each run (and each clone) constructs
	// its own trace.Source from this config, so intake memory stays O(1)
	// in the job count. Mutually exclusive with Jobs.
	Trace *trace.Config
	// NewScheduler builds the run's scheduler.
	NewScheduler func() (sched.Scheduler, error)
}

// Clone returns a deep copy of the spec: options (including the fault
// plan) and every job are copied; the scheduler factory is shared, which
// is safe exactly because it constructs a fresh scheduler per call.
func (sp RunSpec) Clone() RunSpec {
	sp.Options = sp.Options.Clone()
	jobs := make([]*job.Job, len(sp.Jobs))
	for i, j := range sp.Jobs {
		jobs[i] = j.Clone()
	}
	sp.Jobs = jobs
	if sp.Trace != nil {
		cfg := *sp.Trace
		sp.Trace = &cfg
	}
	return sp
}

// JobCount returns how many jobs the spec will submit, whichever intake
// path it uses. For streaming specs this is arithmetic on the trace config,
// not a walk of materialized jobs.
func (sp RunSpec) JobCount() int {
	if sp.Trace != nil {
		return sp.Trace.CPUJobs + sp.Trace.GPUJobs
	}
	return len(sp.Jobs)
}

// Validate checks the spec without building anything.
func (sp RunSpec) Validate() error {
	if sp.NewScheduler == nil {
		return fmt.Errorf("sim: run spec %q has no scheduler factory", sp.Name)
	}
	if sp.Trace != nil {
		if len(sp.Jobs) > 0 {
			return fmt.Errorf("sim: run spec %q sets both Jobs and Trace", sp.Name)
		}
		if err := sp.Trace.Validate(); err != nil {
			return fmt.Errorf("sim: run spec %q: %w", sp.Name, err)
		}
	}
	if err := sp.Options.Validate(); err != nil {
		return fmt.Errorf("sim: run spec %q: %w", sp.Name, err)
	}
	return nil
}

// Run executes the spec on the calling goroutine: build the scheduler,
// build the simulator, run to completion. It is the single-threaded unit
// of work the runner package parallelizes across specs.
func (sp RunSpec) Run() (*Result, error) {
	if sp.NewScheduler == nil {
		return nil, errors.New("sim: run spec has no scheduler factory")
	}
	scheduler, err := sp.NewScheduler()
	if err != nil {
		return nil, fmt.Errorf("sim: run %q: %w", sp.Name, err)
	}
	var simulator *Simulator
	if sp.Trace != nil {
		if len(sp.Jobs) > 0 {
			return nil, fmt.Errorf("sim: run %q sets both Jobs and Trace", sp.Name)
		}
		src, err := trace.NewSource(*sp.Trace)
		if err != nil {
			return nil, fmt.Errorf("sim: run %q: %w", sp.Name, err)
		}
		simulator, err = NewStreaming(sp.Options, scheduler, src)
		if err != nil {
			return nil, fmt.Errorf("sim: run %q: %w", sp.Name, err)
		}
	} else {
		simulator, err = New(sp.Options, scheduler, sp.Jobs)
		if err != nil {
			return nil, fmt.Errorf("sim: run %q: %w", sp.Name, err)
		}
	}
	res, err := simulator.Run()
	if err != nil {
		return nil, fmt.Errorf("sim: run %q: %w", sp.Name, err)
	}
	return res, nil
}
