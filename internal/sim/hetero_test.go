package sim

import (
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
)

func TestHeterogeneousClusterShape(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 2
	opts.Cluster.CPUOnlyNodes = 3
	simulator, err := New(opts, sched.NewFIFO(), []*job.Job{cpuJob(1, 0, 2, time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	c := simulator.Cluster()
	if c.Size() != 5 {
		t.Fatalf("Size = %d, want 5", c.Size())
	}
	for i := 0; i < 2; i++ {
		n, _ := c.Node(i)
		if n.GPUs != 4 {
			t.Errorf("GPU node %d has %d GPUs", i, n.GPUs)
		}
	}
	for i := 2; i < 5; i++ {
		n, _ := c.Node(i)
		if n.GPUs != 0 {
			t.Errorf("CPU-only node %d has %d GPUs", i, n.GPUs)
		}
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousGPUJobNeverOnCPUNode(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	opts.Cluster.CPUOnlyNodes = 3
	jobs := []*job.Job{
		gpuJob(1, 0, "resnet50", 3, 1, time.Hour),
		cpuJob(2, 0, 4, time.Hour),
	}
	// Track placements via a scheduler that records them.
	rec := &placementRecorder{}
	simulator, err := New(opts, rec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
	if got := rec.placed[1]; len(got) != 1 || got[0] != 0 {
		t.Errorf("GPU job placed on %v, want the GPU node [0]", got)
	}
}

// placementRecorder is a first-fit scheduler that records placements.
type placementRecorder struct {
	envScheduler
	placed map[job.ID][]int
}

func (p *placementRecorder) Bind(env sched.Env) {
	p.envScheduler.Bind(env)
	p.placed = make(map[job.ID][]int)
}

func (p *placementRecorder) Submit(j *job.Job) {
	alloc, ok := sched.PlaceRequest(p.env.Cluster(), j.Request, false)
	if !ok {
		return
	}
	if err := p.env.StartJob(j.ID, alloc); err == nil {
		p.placed[j.ID] = alloc.NodeIDs
	}
}

// TestLLCPressureHarmless checks Fig. 7's LLC claim end to end: filling a
// node's cores with CPU jobs (maximum cache pressure) barely slows a
// co-located training job.
func TestLLCPressureHarmless(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	alone := mustRun(t, opts, sched.NewFIFO(),
		[]*job.Job{gpuJob(1, 0, "resnet50", 3, 1, time.Hour)})
	// 25 CPU-job cores on the 28-core node: heavy LLC pressure, light
	// bandwidth (0.3 GB/s per core).
	crowded := mustRun(t, opts, sched.NewFIFO(), []*job.Job{
		gpuJob(1, 0, "resnet50", 3, 1, time.Hour),
		cpuJob(2, 0, 13, 3*time.Hour),
		cpuJob(3, 0, 12, 3*time.Hour),
	})
	slowdown := float64(crowded.Jobs[1].EndToEnd()) / float64(alone.Jobs[1].EndToEnd())
	if slowdown > 1.05 {
		t.Errorf("LLC pressure slowed training %.1f%%, want < 5%%", (slowdown-1)*100)
	}
}
