package sim

import (
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

// fakeResult builds a minimal hand-made Result for merge tests.
func fakeResult(sched string, gpuQueue time.Duration, util float64, throttles int) *Result {
	r := newResult(sched, false)
	r.LastArrival = time.Hour
	r.EndTime = 2 * time.Hour
	r.GPUQueue.Add(gpuQueue)
	r.CPUQueue.Add(gpuQueue / 2)
	r.PerTenant.Add(1, gpuQueue)
	_ = r.GPUUtilSeries.Add(0, util)
	_ = r.GPUActive.Add(0, util)
	_ = r.CPUActive.Add(0, util/2)
	_ = r.CPUUtilSeries.Add(0, util/2)
	_ = r.FragSeries.Add(0, 0.1)
	r.Throttles = throttles
	r.Preemptions = 1
	r.Faults.JobKills = 2
	r.Jobs[1] = &JobStats{
		Job:       &job.Job{ID: 1, Kind: job.KindGPUTraining},
		Completed: true,
	}
	r.GPUJobsDone = 1
	return r
}

func TestMergeResults(t *testing.T) {
	a := fakeResult("coda", time.Minute, 0.8, 3)
	b := fakeResult("coda", 3*time.Minute, 0.6, 1)
	m, err := MergeResults([]*Result{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduler != "coda" || m.Runs != 2 {
		t.Fatalf("header: %q runs=%d", m.Scheduler, m.Runs)
	}
	if m.GPUQueue.Len() != 2 || m.CPUQueue.Len() != 2 {
		t.Errorf("pooled CDFs have %d/%d samples, want 2/2", m.GPUQueue.Len(), m.CPUQueue.Len())
	}
	if got := m.PerTenant.Get(1).Len(); got != 2 {
		t.Errorf("tenant CDF has %d samples, want 2", got)
	}
	if m.GPUUtil != 0.7 {
		t.Errorf("mean GPU util = %g, want 0.7", m.GPUUtil)
	}
	if m.Throttles != 4 || m.Preemptions != 2 || m.Faults.JobKills != 4 {
		t.Errorf("summed counters: throttles=%d preemptions=%d kills=%d", m.Throttles, m.Preemptions, m.Faults.JobKills)
	}
	if m.GPUJobsDone != 2 {
		t.Errorf("GPU completions = %d, want 2", m.GPUJobsDone)
	}
	if m.MeanMakeSpan != 2*time.Hour {
		t.Errorf("mean makespan = %v, want 2h", m.MeanMakeSpan)
	}
}

func TestMergeResultsErrors(t *testing.T) {
	if _, err := MergeResults(nil); err == nil {
		t.Error("merging no results should fail")
	}
	if _, err := MergeResults([]*Result{fakeResult("coda", 0, 0, 0), nil}); err == nil {
		t.Error("merging a nil result should fail")
	}
	mixed := []*Result{fakeResult("coda", 0, 0, 0), fakeResult("fifo", 0, 0, 0)}
	if _, err := MergeResults(mixed); err == nil {
		t.Error("merging different schedulers should fail")
	}
}
