package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/membw"
	"github.com/coda-repro/coda/internal/perfmodel"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/trace"
)

// maxCheckpointJobs bounds the pending + retrying job sets a checkpoint
// will serialize (and Resume will accept). At warehouse scale a scheduler
// bug that stops placing jobs would otherwise accumulate millions of
// pending jobs and turn every checkpoint into an OOM; the bound converts
// that into a loud, attributable error long before the allocator dies. It
// is a var so tests can tighten it.
var maxCheckpointJobs = 2_000_000

// This file is the simulator side of crash-consistent checkpoint/restore:
// Checkpoint captures every piece of mutable state a run accumulates — the
// event heap, RNG stream position, running-attempt progress, chaos windows,
// retry ledgers, metrics and the scheduler's own serialized state — and
// Resume rebuilds a simulator that continues bit-identically from that
// point. The envelope (versioning, checksums, atomic writes) lives in
// internal/checkpoint; this file only deals in state.

// ErrControllerKilled is returned by Run when fault injection kills the
// scheduler process (chaos.KindControllerKill with ExitOnControllerKill
// set). The run did not finalize: restart from the latest checkpoint with
// Resume, or from scratch with SetSurvivedKills.
var ErrControllerKilled = errors.New("sim: controller killed by fault injection")

// CheckpointSink consumes checkpoints as the run takes them. The pointed-to
// Checkpoint shares memory with the live simulator, so a sink must fully
// serialize it before returning and must not retain the pointer.
type CheckpointSink func(*Checkpoint) error

// EventState is one serialized pending event, stored canonically sorted by
// (At, Seq): the order is independent of which eventQueue implementation
// the run used, so a checkpoint taken under the binary heap resumes under
// the calendar queue and vice versa.
type EventState struct {
	At      time.Duration
	Seq     int64
	Kind    int
	Job     *job.Job `json:",omitempty"` // arrivals
	JobID   job.ID
	Version int64
	Fault   chaos.Fault
	// RunAttempt re-pins an evJobFail event to the attempt it was armed
	// against (see runningJob.attempt); 0 means no pinned attempt.
	RunAttempt int64
}

// RunningState is one serialized running attempt. The perfmodel handle is
// not stored — it is re-derived from the job's model name on restore.
type RunningState struct {
	Job        job.Job
	Alloc      job.Allocation
	Remaining  time.Duration
	Speed      float64
	LastUpdate time.Duration
	Version    int64
	StartedAt  time.Duration
	BwDemand   float64
	Attempt    int64
}

// RetryCount is one job's fault-kill tally.
type RetryCount struct {
	Job   job.ID
	Count int
}

// Checkpoint is the full serializable state of a run in flight. All slices
// that mirror maps are sorted by job ID so the encoding is deterministic;
// accumulated floats are stored verbatim, never recomputed, which is what
// makes a resumed run bit-identical rather than merely close.
type Checkpoint struct {
	// Options reproduces the run configuration (the sink itself is not
	// serializable and is supplied anew to Resume).
	Options Options
	Now     time.Duration
	Seq     int64
	// RNGDraws is the measurement-noise stream position: Resume re-seeds
	// from Options.Seed and discards exactly this many draws.
	RNGDraws uint64
	Attempts int64

	Events   []EventState
	Pending  []job.Job
	Retrying []job.Job
	Running  []RunningState
	PcieLoad []float64

	// StartedOnce lists the in-flight jobs whose first start (and hence
	// queue-time CDF sample) already happened: the running jobs plus any
	// killed, preempted or resubmitted ones back in pending/retrying. Resume
	// rebuilds the set so a restarted attempt is not sampled twice.
	StartedOnce []job.ID `json:",omitempty"`

	ArrivalsLeft int
	LastArrival  time.Duration
	StallCount   int

	// Trace is the streaming-intake cursor (nil for materialized-slice
	// runs): trace config, per-stream RNG draw counts and order-statistic
	// state — everything trace.Resume needs to regenerate the one in-queue
	// arrival (which Events deliberately omits) and the rest of the stream.
	Trace *trace.Cursor `json:",omitempty"`

	ChaosOn     bool
	FaultsLeft  int
	DownDepth   []int       `json:",omitempty"`
	DarkDepth   []int       `json:",omitempty"`
	SlowFactors [][]float64 `json:",omitempty"`
	Retries     []RetryCount
	FailedOnce  []job.ID

	Admitted      int
	CompletedJobs int
	TerminalJobs  int
	CancelledJobs int

	NextCheckpointAt      time.Duration
	EventsSinceCheckpoint int

	Cluster cluster.State
	Monitor membw.MonitorState
	Results *Result

	// SchedulerName guards against resuming under a different policy;
	// Scheduler is the policy's own opaque state (sched.Checkpointer).
	SchedulerName string
	Scheduler     json.RawMessage
}

// SetSurvivedKills tells a fresh (non-resumed) simulator how many controller
// kills its predecessor processes already died to: the chaos schedule
// replays identically on restart, so the first n kills are survived history,
// not new deaths. Resume sets this automatically from the checkpoint.
func (s *Simulator) SetSurvivedKills(n int) { s.killsSurvived = n }

// Checkpoint captures the run's current state. The result shares memory
// with the live simulator — serialize it before the simulation advances.
func (s *Simulator) Checkpoint() (*Checkpoint, error) {
	ckp, ok := s.scheduler.(sched.Checkpointer)
	if !ok {
		return nil, fmt.Errorf("sim: scheduler %q does not support checkpointing", s.scheduler.Name())
	}
	schedState, err := ckp.CheckpointState()
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint scheduler: %w", err)
	}
	if n := len(s.pending) + len(s.retrying); n > maxCheckpointJobs {
		return nil, fmt.Errorf(
			"sim: checkpoint at t=%v: %d pending+retrying jobs exceed the %d-job serialization bound (scheduler not draining the queue?)",
			s.now, n, maxCheckpointJobs)
	}

	ck := &Checkpoint{
		Options:  s.opts,
		Now:      s.now,
		Seq:      s.seq,
		RNGDraws: s.rngDraws,
		Attempts: s.attempts,

		Pending:  sortedJobs(s.pending),
		Retrying: sortedJobs(s.retrying),
		PcieLoad: s.pcieLoad,

		ArrivalsLeft: s.arrivalsLeft,
		LastArrival:  s.lastArrival,
		StallCount:   s.stallCount,

		ChaosOn:     s.chaosOn,
		FaultsLeft:  s.faultsLeft,
		DownDepth:   s.downDepth,
		DarkDepth:   s.darkDepth,
		SlowFactors: s.slowFactors,

		Admitted:      s.admitted,
		CompletedJobs: s.completedJobs,
		TerminalJobs:  s.terminalJobs,
		CancelledJobs: s.cancelledJobs,

		NextCheckpointAt:      s.nextCheckpointAt,
		EventsSinceCheckpoint: s.eventsSinceCheckpoint,

		Cluster: s.cluster.CheckpointState(),
		Monitor: s.monitor.CheckpointState(),
		Results: s.results,

		SchedulerName: s.scheduler.Name(),
		Scheduler:     schedState,
	}
	ck.Options.CheckpointSink = nil
	if s.source != nil {
		// Copy the cursor: the checkpoint must not alias the live field,
		// which queueNextArrival overwrites at the next arrival.
		cur := s.sourceCursor
		ck.Trace = &cur
	}

	// Canonicalize the pending events to sorted (at, seq) order — the queue
	// implementation's internal layout must not leak into the encoding. A
	// streamed run's single in-queue arrival is skipped: Resume regenerates
	// it (job and sequence number both) from the Trace cursor.
	evs := s.events.appendAll(make([]*event, 0, s.events.len()))
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
	ck.Events = make([]EventState, 0, len(evs))
	for _, e := range evs {
		if s.source != nil && e.kind == evArrival {
			continue
		}
		es := EventState{
			At: e.at, Seq: e.seq, Kind: int(e.kind),
			Job: e.job, JobID: e.jobID, Version: e.version, Fault: e.fault,
		}
		if e.run != nil {
			es.RunAttempt = e.run.attempt
		}
		ck.Events = append(ck.Events, es)
	}
	//coda:ordered-ok entries are sorted below before serialization
	for _, r := range s.running {
		ck.Running = append(ck.Running, RunningState{
			Job: *r.job, Alloc: r.alloc.Clone(), Remaining: r.remaining,
			Speed: r.speed, LastUpdate: r.lastUpdate, Version: r.version,
			StartedAt: r.startedAt, BwDemand: r.bwDemand, Attempt: r.attempt,
		})
	}
	sort.Slice(ck.Running, func(i, j int) bool { return ck.Running[i].Job.ID < ck.Running[j].Job.ID })
	//coda:ordered-ok entries are sorted below before serialization
	for id, n := range s.retries {
		ck.Retries = append(ck.Retries, RetryCount{Job: id, Count: n})
	}
	sort.Slice(ck.Retries, func(i, j int) bool { return ck.Retries[i].Job < ck.Retries[j].Job })
	//coda:ordered-ok entries are sorted below before serialization
	for id := range s.failedOnce {
		ck.FailedOnce = append(ck.FailedOnce, id)
	}
	sort.Slice(ck.FailedOnce, func(i, j int) bool { return ck.FailedOnce[i] < ck.FailedOnce[j] })
	//coda:ordered-ok entries are sorted below before serialization
	for id := range s.startedOnce {
		ck.StartedOnce = append(ck.StartedOnce, id)
	}
	sort.Slice(ck.StartedOnce, func(i, j int) bool { return ck.StartedOnce[i] < ck.StartedOnce[j] })
	return ck, nil
}

func sortedJobs(m map[job.ID]*job.Job) []job.Job {
	out := make([]job.Job, 0, len(m))
	//coda:ordered-ok entries are sorted below before serialization
	for _, j := range m {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Resume rebuilds a simulator from a checkpoint so that Run continues
// bit-identically with the uninterrupted run. The scheduler must be freshly
// constructed with the same policy and parameters as the checkpointed one
// (its state is restored before Bind); sink replaces the unserializable
// CheckpointSink from the original options and may be nil to stop
// checkpointing. Resume takes ownership of ck, which must come from a
// decoded checkpoint file, not from a live simulator.
func Resume(ck *Checkpoint, scheduler sched.Scheduler, sink CheckpointSink) (*Simulator, error) {
	if scheduler == nil {
		return nil, errors.New("sim: resume: scheduler is nil")
	}
	if scheduler.Name() != ck.SchedulerName {
		return nil, fmt.Errorf("sim: resume: checkpoint was taken under scheduler %q, got %q",
			ck.SchedulerName, scheduler.Name())
	}
	ckp, ok := scheduler.(sched.Checkpointer)
	if !ok {
		return nil, fmt.Errorf("sim: resume: scheduler %q does not support checkpointing", scheduler.Name())
	}
	if ck.Results == nil {
		return nil, errors.New("sim: resume: checkpoint carries no results")
	}
	opts := ck.Options
	opts.CheckpointSink = sink
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("sim: resume: %w", err)
	}
	nodes := opts.Cluster.TotalNodes()
	if len(ck.PcieLoad) != nodes {
		return nil, fmt.Errorf("sim: resume: %d pcie loads for %d nodes", len(ck.PcieLoad), nodes)
	}
	if n := len(ck.Pending) + len(ck.Retrying); n > maxCheckpointJobs {
		return nil, fmt.Errorf(
			"sim: resume: %d pending+retrying jobs exceed the %d-job checkpoint bound (corrupt or runaway checkpoint)",
			n, maxCheckpointJobs)
	}

	c, err := cluster.New(opts.Cluster)
	if err != nil {
		return nil, fmt.Errorf("sim: resume: %w", err)
	}
	if err := c.RestoreCheckpointState(ck.Cluster); err != nil {
		return nil, fmt.Errorf("sim: resume cluster: %w", err)
	}
	mon, err := membw.NewMonitor(nodes, opts.Cluster.BandwidthGBs, opts.MBASupported)
	if err != nil {
		return nil, fmt.Errorf("sim: resume: %w", err)
	}
	if err := mon.RestoreCheckpointState(ck.Monitor); err != nil {
		return nil, fmt.Errorf("sim: resume monitor: %w", err)
	}

	s := &Simulator{
		opts:        opts,
		cluster:     c,
		monitor:     mon,
		scheduler:   scheduler,
		rng:         rand.New(rand.NewSource(opts.Seed)),
		events:      newEventQueue(opts),
		pending:     make(map[job.ID]*job.Job, len(ck.Pending)),
		running:     make(map[job.ID]*runningJob, len(ck.Running)),
		pcieLoad:    append([]float64(nil), ck.PcieLoad...),
		cpuCoresOn:  make([]int, nodes),
		refreshSeen: make(map[job.ID]bool),

		now:      ck.Now,
		seq:      ck.Seq,
		rngDraws: ck.RNGDraws,
		attempts: ck.Attempts,

		arrivalsLeft: ck.ArrivalsLeft,
		lastArrival:  ck.LastArrival,
		stallCount:   ck.StallCount,

		admitted:      ck.Admitted,
		completedJobs: ck.CompletedJobs,
		terminalJobs:  ck.TerminalJobs,
		cancelledJobs: ck.CancelledJobs,

		killsSurvived: ck.Results.Faults.ControllerKills,
		resumed:       true,

		nextCheckpointAt:      ck.NextCheckpointAt,
		eventsSinceCheckpoint: ck.EventsSinceCheckpoint,

		results: ck.Results,
	}
	// Fast-forward the noise generator to the checkpointed stream position.
	for i := uint64(0); i < ck.RNGDraws; i++ {
		_ = s.rng.Float64()
	}

	for i := range ck.Pending {
		j := ck.Pending[i]
		if _, dup := s.pending[j.ID]; dup {
			return nil, fmt.Errorf("sim: resume: duplicate pending job %d", j.ID)
		}
		s.pending[j.ID] = &j
	}
	for i := range ck.Running {
		rs := ck.Running[i]
		if _, dup := s.running[rs.Job.ID]; dup {
			return nil, fmt.Errorf("sim: resume: duplicate running job %d", rs.Job.ID)
		}
		j := rs.Job
		r := &runningJob{
			job: &j, alloc: rs.Alloc.Clone(), remaining: rs.Remaining,
			speed: rs.Speed, lastUpdate: rs.LastUpdate, version: rs.Version,
			startedAt: rs.StartedAt, bwDemand: rs.BwDemand, attempt: rs.Attempt,
		}
		if j.IsGPU() {
			model, err := perfmodel.Lookup(j.Model)
			if err != nil {
				return nil, fmt.Errorf("sim: resume job %d: %w", j.ID, err)
			}
			r.model = model
		}
		s.running[j.ID] = r
		// cpuCoresOn is derived state: rebuild it from the restored
		// allocations instead of serializing it.
		if !j.IsGPU() {
			for _, nid := range r.alloc.NodeIDs {
				s.cpuCoresOn[nid] += r.alloc.CPUCores
			}
		}
	}

	s.startedOnce = make(map[job.ID]bool, len(ck.StartedOnce))
	if len(ck.StartedOnce) > 0 {
		for _, id := range ck.StartedOnce {
			s.startedOnce[id] = true
		}
	} else {
		// Checkpoints written before StartedOnce existed omit the field;
		// those predate MaxJobStats too, so the per-job records are complete
		// and the set can be rebuilt from them.
		for id, js := range ck.Results.Jobs {
			if js.Started && !js.Completed && !js.TerminallyFailed && !js.Cancelled {
				s.startedOnce[id] = true
			}
		}
	}
	//coda:ordered-ok error reporting on a corrupt checkpoint; any witness will do
	for id := range s.running {
		if !s.startedOnce[id] {
			return nil, fmt.Errorf("sim: resume: running job %d not marked as started", id)
		}
	}

	if ck.ChaosOn {
		s.chaosOn = true
		s.faultsLeft = ck.FaultsLeft
		if len(ck.DownDepth) != nodes || len(ck.DarkDepth) != nodes || len(ck.SlowFactors) != nodes {
			return nil, fmt.Errorf("sim: resume: chaos state sized %d/%d/%d for %d nodes",
				len(ck.DownDepth), len(ck.DarkDepth), len(ck.SlowFactors), nodes)
		}
		s.downDepth = append([]int(nil), ck.DownDepth...)
		s.darkDepth = append([]int(nil), ck.DarkDepth...)
		s.slowFactors = make([][]float64, nodes)
		for i, fs := range ck.SlowFactors {
			s.slowFactors[i] = append([]float64(nil), fs...)
		}
		s.retries = make(map[job.ID]int, len(ck.Retries))
		for _, rc := range ck.Retries {
			s.retries[rc.Job] = rc.Count
		}
		s.retrying = make(map[job.ID]*job.Job, len(ck.Retrying))
		for i := range ck.Retrying {
			j := ck.Retrying[i]
			if _, dup := s.retrying[j.ID]; dup {
				return nil, fmt.Errorf("sim: resume: duplicate retrying job %d", j.ID)
			}
			s.retrying[j.ID] = &j
		}
		s.failedOnce = make(map[job.ID]bool, len(ck.FailedOnce))
		for _, id := range ck.FailedOnce {
			s.failedOnce[id] = true
		}
	} else if ck.FaultsLeft != 0 || len(ck.Retrying) != 0 {
		return nil, errors.New("sim: resume: chaos state present but chaos is off")
	}

	for i, es := range ck.Events {
		kind := eventKind(es.Kind)
		switch kind {
		case evArrival:
			if ck.Trace != nil {
				return nil, fmt.Errorf("sim: resume: streamed checkpoint carries materialized arrival event %d", i)
			}
			if es.Job == nil {
				return nil, fmt.Errorf("sim: resume: arrival event %d carries no job", i)
			}
		case evCompletion, evTick, evSample, evFault, evResubmit, evJobFail:
		default:
			return nil, fmt.Errorf("sim: resume: event %d has unknown kind %d", i, es.Kind)
		}
		e := &event{
			at: es.At, seq: es.Seq, kind: kind,
			job: es.Job, jobID: es.JobID, version: es.Version, fault: es.Fault,
		}
		if kind == evJobFail && es.RunAttempt != 0 {
			// Re-pin the injected failure to its attempt. A mismatch (or a
			// no-longer-running job) means the event was already stale at
			// checkpoint time; leaving run nil keeps it stale after resume.
			if r, ok := s.running[es.JobID]; ok && r.attempt == es.RunAttempt {
				e.run = r
			}
		}
		s.events.push(e)
	}

	if ck.Trace != nil {
		src, err := trace.Resume(*ck.Trace)
		if err != nil {
			return nil, fmt.Errorf("sim: resume trace source: %w", err)
		}
		s.source = src
		s.totalJobs = src.Total()
		// Regenerate the arrival the checkpoint skipped: the cursor was
		// captured immediately before that job was drawn, so the first
		// draw of the resumed source is exactly it.
		s.queueNextArrival()
		if s.intakeErr != nil {
			return nil, fmt.Errorf("sim: resume: %w", s.intakeErr)
		}
	}

	if err := ckp.RestoreCheckpoint(ck.Scheduler); err != nil {
		return nil, fmt.Errorf("sim: resume scheduler: %w", err)
	}
	scheduler.Bind(s)

	// A checkpoint is taken after the invariant gate, so a restored state
	// must pass it too — unconditionally, even when the run itself has
	// Options.Invariants off. A failure here means the checkpoint (or the
	// restore path) is corrupt and the run must not start.
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("sim: resumed state fails invariants: %w", err)
	}
	return s, nil
}

// maybeCheckpoint takes a checkpoint when either cadence has come due. Both
// cadences can be armed at once; one checkpoint satisfies both.
func (s *Simulator) maybeCheckpoint() error {
	if s.opts.CheckpointSink == nil {
		return nil
	}
	due := false
	if n := s.opts.CheckpointEveryEvents; n > 0 {
		s.eventsSinceCheckpoint++
		if s.eventsSinceCheckpoint >= n {
			due = true
			s.eventsSinceCheckpoint = 0
		}
	}
	if every := s.opts.CheckpointEvery; every > 0 {
		// Catch up past idle stretches: arm exactly one checkpoint, advance
		// the deadline past now.
		for s.now >= s.nextCheckpointAt {
			due = true
			s.nextCheckpointAt += every
		}
	}
	if !due {
		return nil
	}
	ck, err := s.Checkpoint()
	if err != nil {
		return err
	}
	return s.opts.CheckpointSink(ck)
}
