package sim

import (
	"errors"
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/membw"
	"github.com/coda-repro/coda/internal/perfmodel"
	"github.com/coda-repro/coda/internal/sched"
)

// The simulator is the environment schedulers act through.
var _ sched.Env = (*Simulator)(nil)

// Now implements sched.Env.
func (s *Simulator) Now() time.Duration { return s.now }

// Cluster implements sched.Env.
func (s *Simulator) Cluster() *cluster.Cluster { return s.cluster }

// ErrTelemetryDark marks a node whose memory-bandwidth telemetry is
// currently unavailable (a fault-injected dropout). The underlying physics
// keep running — only the scheduler's view goes dark.
var ErrTelemetryDark = errors.New("sim: membw telemetry unavailable")

// Meter implements sched.Env. During an injected telemetry dropout the
// node's meter readings fail with ErrTelemetryDark; consumers like the
// contention eliminator must degrade gracefully (hold their last decision)
// rather than act on stale data.
func (s *Simulator) Meter(nodeID int) (*membw.Meter, error) {
	if s.chaosOn && nodeID >= 0 && nodeID < len(s.darkDepth) && s.darkDepth[nodeID] > 0 {
		return nil, fmt.Errorf("%w: node %d", ErrTelemetryDark, nodeID)
	}
	return s.monitor.Node(nodeID)
}

// StartJob implements sched.Env: it places a pending job, registers its
// bandwidth and PCIe demand, computes its speed, and queues its completion.
func (s *Simulator) StartJob(id job.ID, alloc job.Allocation) error {
	j, ok := s.pending[id]
	if !ok {
		return fmt.Errorf("sim: job %d is not pending", id)
	}
	if len(alloc.NodeIDs) != j.Request.Nodes {
		return fmt.Errorf("sim: job %d wants %d nodes, allocation has %d",
			id, j.Request.Nodes, len(alloc.NodeIDs))
	}
	if j.IsGPU() && alloc.GPUs != j.Request.GPUsPerNode() {
		return fmt.Errorf("sim: job %d wants %d gpus per node, allocation has %d",
			id, j.Request.GPUsPerNode(), alloc.GPUs)
	}
	if !j.IsGPU() && alloc.GPUs != 0 {
		return fmt.Errorf("sim: cpu job %d cannot hold gpus", id)
	}
	if err := s.cluster.Allocate(id, alloc); err != nil {
		return err
	}

	s.attempts++
	r := &runningJob{
		job:        j,
		alloc:      alloc.Clone(),
		remaining:  j.Work,
		lastUpdate: s.now,
		startedAt:  s.now,
		attempt:    s.attempts,
	}
	var bwDemand float64
	if j.IsGPU() {
		model, err := perfmodel.Lookup(j.Model)
		if err != nil {
			_ = s.cluster.Release(id)
			return fmt.Errorf("sim: job %d: %w", id, err)
		}
		r.model = model
		bwDemand, err = model.BandwidthDemand(r.cfg(), j.BatchSize, alloc.CPUCores)
		if err != nil {
			_ = s.cluster.Release(id)
			return fmt.Errorf("sim: job %d: %w", id, err)
		}
	} else {
		bwDemand = j.Bandwidth
	}
	r.bwDemand = bwDemand

	for i, nid := range alloc.NodeIDs {
		meter, err := s.monitor.Node(nid)
		if err == nil {
			err = meter.Register(id, bwDemand, !j.IsGPU())
		}
		if err != nil {
			// Roll back everything registered so far.
			for _, prev := range alloc.NodeIDs[:i] {
				if m, merr := s.monitor.Node(prev); merr == nil {
					_ = m.Deregister(id)
				}
			}
			_ = s.cluster.Release(id)
			return fmt.Errorf("sim: job %d: %w", id, err)
		}
		if r.model != nil {
			if pcie, perr := r.model.PCIeDemand(r.cfg()); perr == nil {
				s.pcieLoad[nid] += pcie
			}
		}
	}

	delete(s.pending, id)
	s.running[id] = r
	s.touchJob(id)
	if !j.IsGPU() {
		for _, nid := range alloc.NodeIDs {
			s.cpuCoresOn[nid] += alloc.CPUCores
		}
	}
	first := !s.startedOnce[id]
	if first {
		s.startedOnce[id] = true
	}
	s.results.noteStart(j, s.now, first)

	// New load may slow neighbours; refresh the whole neighbourhood
	// (including this job, whose speed is set by the same pass).
	r.speed = s.computeSpeed(r)
	s.scheduleCompletion(r)
	s.refreshNodes(alloc.NodeIDs)
	s.armJobFailure(r)
	return nil
}

// ResizeJob implements sched.Env: it changes a running job's per-node core
// count, updating bandwidth demand and progress speed.
func (s *Simulator) ResizeJob(id job.ID, coresPerNode int) error {
	r, ok := s.running[id]
	if !ok {
		return fmt.Errorf("sim: job %d is not running", id)
	}
	if coresPerNode == r.alloc.CPUCores {
		return nil
	}
	if err := s.cluster.Resize(id, coresPerNode); err != nil {
		return err
	}
	s.advance(r)
	s.touchJob(id)
	if !r.job.IsGPU() {
		for _, nid := range r.alloc.NodeIDs {
			s.cpuCoresOn[nid] += coresPerNode - r.alloc.CPUCores
		}
	}
	r.alloc.CPUCores = coresPerNode

	var newDemand float64
	if r.model != nil {
		d, err := r.model.BandwidthDemand(r.cfg(), r.job.BatchSize, coresPerNode)
		if err != nil {
			return fmt.Errorf("sim: job %d: %w", id, err)
		}
		newDemand = d
	} else {
		// CPU-job bandwidth scales with the cores it keeps.
		req := r.job.Request.CPUCores
		newDemand = r.job.Bandwidth
		if req > 0 && coresPerNode < req {
			newDemand = r.job.Bandwidth * float64(coresPerNode) / float64(req)
		}
	}
	r.bwDemand = newDemand
	for _, nid := range r.alloc.NodeIDs {
		if meter, err := s.monitor.Node(nid); err == nil {
			_ = meter.SetDemand(id, newDemand)
		}
	}
	s.results.noteResize(r.job, coresPerNode)
	s.refreshNodes(r.alloc.NodeIDs)
	return nil
}

// PreemptJob implements sched.Env: it aborts a running CPU job, releasing
// its resources, and returns a clone carrying the remaining work for the
// scheduler to requeue (§V-C: "the suspended CPU job re-enters the array
// head").
func (s *Simulator) PreemptJob(id job.ID) (*job.Job, error) {
	r, ok := s.running[id]
	if !ok {
		return nil, fmt.Errorf("sim: job %d is not running", id)
	}
	if r.job.IsGPU() {
		return nil, fmt.Errorf("sim: job %d is a training job; CODA never preempts GPU jobs", id)
	}
	s.advance(r)
	s.stopJob(r)

	clone := r.job.Clone()
	clone.Work = r.remaining
	if clone.Work < time.Second {
		clone.Work = time.Second // a preempted job always re-runs briefly
	}
	s.pending[id] = clone
	s.touchJob(id)
	s.results.notePreemption(id)
	return clone, nil
}

// ThrottleJob implements sched.Env: MBA-style bandwidth capping of a CPU
// job on every node it occupies.
func (s *Simulator) ThrottleJob(id job.ID, capGBs float64) error {
	r, ok := s.running[id]
	if !ok {
		return fmt.Errorf("sim: job %d is not running", id)
	}
	for _, nid := range r.alloc.NodeIDs {
		meter, err := s.monitor.Node(nid)
		if err != nil {
			return err
		}
		if err := meter.Throttle(id, capGBs); err != nil {
			return err
		}
	}
	s.results.noteThrottle(id)
	s.refreshNodes(r.alloc.NodeIDs)
	return nil
}

// UnthrottleJob implements sched.Env.
func (s *Simulator) UnthrottleJob(id job.ID) error {
	r, ok := s.running[id]
	if !ok {
		return fmt.Errorf("sim: job %d is not running", id)
	}
	for _, nid := range r.alloc.NodeIDs {
		meter, err := s.monitor.Node(nid)
		if err != nil {
			return err
		}
		if err := meter.Unthrottle(id); err != nil {
			return err
		}
	}
	s.refreshNodes(r.alloc.NodeIDs)
	return nil
}

// GPUUtil implements sched.Env: the noisy utilization reading CODA's
// allocator profiles (§V-B2, §VI-F).
func (s *Simulator) GPUUtil(id job.ID) (float64, error) {
	r, ok := s.running[id]
	if !ok {
		return 0, fmt.Errorf("sim: job %d is not running", id)
	}
	if r.model == nil {
		return 0, fmt.Errorf("sim: job %d is not a training job", id)
	}
	util, err := r.model.GPUUtil(r.cfg(), r.job.BatchSize, r.alloc.CPUCores, s.worstContention(r.alloc.NodeIDs))
	if err != nil {
		return 0, err
	}
	if s.opts.UtilNoise > 0 {
		util *= 1 + s.opts.UtilNoise*(2*s.noise()-1)
	}
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return util, nil
}

// noise is the only gate to the measurement-noise generator: it counts every
// draw so Resume can re-seed the generator and discard exactly this many
// values, landing the resumed run on the same stream position. Drawing from
// s.rng directly would silently break bit-identical resume.
func (s *Simulator) noise() float64 {
	s.rngDraws++
	return s.rng.Float64()
}
