// Package sim is the deterministic discrete-event simulator that stands in
// for the paper's physical 80-node GPU cluster. It owns virtual time, job
// arrival/completion events, job progress integration (work advances at
// the speed the perfmodel package dictates for the current allocation and
// contention), memory-bandwidth and PCIe accounting, and metric sampling.
// Schedulers act on the cluster exclusively through the sched.Env interface
// this package implements, so FIFO, DRF and CODA run under identical
// physics.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/membw"
	"github.com/coda-repro/coda/internal/perfmodel"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	// Cluster describes the hardware.
	Cluster cluster.Config
	// MBASupported controls whether nodes offer MBA throttling (§V-D's
	// fallback path halves CPU-job cores when false).
	MBASupported bool
	// TickInterval is the scheduler's periodic invocation cadence.
	TickInterval time.Duration
	// SampleInterval is the metrics sampling cadence.
	SampleInterval time.Duration
	// UtilNoise is the relative amplitude of GPU-utilization measurement
	// noise (the allocator must tolerate it, §V-B2).
	UtilNoise float64
	// Seed drives the measurement-noise generator.
	Seed int64
	// MaxVirtualTime aborts runaway simulations; 0 means no cap.
	MaxVirtualTime time.Duration
	// Faults is the deterministic fault-injection plan; the zero value
	// injects nothing and leaves every code path of a fault-free run
	// untouched (bit-identical to a build without chaos).
	Faults chaos.Plan
	// Invariants enables the always-on invariant checker: after every
	// event the simulator validates cluster accounting, queue/running
	// disjointness and job conservation, and Run fails fast on the first
	// violation. Tests enable it everywhere; cmd/coda-sim exposes it as
	// the -invariants flag.
	Invariants bool
	// InvariantsEvery is the full-audit cadence when Invariants is on: a
	// positive N runs the O(Δ) delta check — only the nodes and jobs the
	// event touched — after every event and the full audit every N events.
	// 0 runs the full audit after every event (tests use that everywhere;
	// the delta path is for month-scale runs that still want checking).
	// Ignored while Invariants is off.
	InvariantsEvery int

	// CheckpointEvery takes a crash-consistent checkpoint each time virtual
	// time advances past another multiple of this cadence; 0 disables
	// time-based checkpointing. CheckpointEveryEvents checkpoints every N
	// processed events; 0 disables event-based checkpointing. Both feed
	// CheckpointSink and are no-ops without one.
	CheckpointEvery       time.Duration
	CheckpointEveryEvents int
	// CheckpointSink receives each checkpoint. The *Checkpoint shares memory
	// with the live simulator: a sink must serialize (checkpoint.Encode or
	// equivalent) before returning and must not retain the pointer.
	CheckpointSink CheckpointSink `json:"-"`
	// ExitOnControllerKill makes an injected chaos.KindControllerKill abort
	// Run with ErrControllerKilled, simulating scheduler-process death. When
	// false the kill is only counted — that is the baseline an interrupted-
	// and-resumed run must reproduce bit-for-bit.
	ExitOnControllerKill bool
	// EventQueue selects the pending-event queue implementation: "" or
	// EventQueueHeap for the binary min-heap, EventQueueCalendar for the
	// bucketed calendar queue. The choice cannot affect event order (both
	// pop in exact (at, seq) order), only the cost of maintaining it;
	// warehouse-scale presets pick the calendar queue.
	EventQueue string
	// MaxJobStats bounds the per-job history kept in Result.Jobs: only the
	// first N admitted jobs get a JobStats record (aggregate counters and
	// distributions still observe every job). 0 keeps every job, which is
	// O(jobs) memory — fine at paper scale, not at 25M jobs.
	MaxJobStats int
	// CompactCDFs stores the queueing-time distributions (GPUQueue,
	// CPUQueue, PerTenant) as log-bucketed sketches of ~500 fixed buckets
	// instead of raw per-job samples, making result size independent of job
	// count at ≤12.5% value resolution. Dumps of compact runs are not
	// byte-comparable to dumps of exact runs.
	CompactCDFs bool
	// Service switches the simulator into control-plane mode: the run is
	// driven incrementally with RunUntil instead of Run, jobs and faults are
	// injected at the current virtual time (InjectArrival/InjectFault), jobs
	// can be cancelled, tick and sample events re-arm unconditionally (an
	// online service idles between requests instead of finishing), and the
	// stall detector is off. Chaos state is always initialized so node
	// drain/leave/join operations can flow through the fault machinery.
	Service bool
}

// DefaultOptions returns the standard run configuration.
func DefaultOptions() Options {
	return Options{
		Cluster:        cluster.DefaultConfig(),
		MBASupported:   true,
		TickInterval:   30 * time.Second,
		SampleInterval: 5 * time.Minute,
		UtilNoise:      0.005,
		Seed:           7,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if err := o.Cluster.Validate(); err != nil {
		return err
	}
	if o.TickInterval <= 0 {
		return fmt.Errorf("sim options: tick interval must be positive, got %v", o.TickInterval)
	}
	if o.SampleInterval <= 0 {
		return fmt.Errorf("sim options: sample interval must be positive, got %v", o.SampleInterval)
	}
	if o.UtilNoise < 0 || o.UtilNoise >= 0.5 {
		return fmt.Errorf("sim options: util noise %g out of [0, 0.5)", o.UtilNoise)
	}
	if o.MaxVirtualTime < 0 {
		return fmt.Errorf("sim options: negative max virtual time %v", o.MaxVirtualTime)
	}
	if o.InvariantsEvery < 0 {
		return fmt.Errorf("sim options: negative invariant audit cadence %d", o.InvariantsEvery)
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("sim options: negative checkpoint cadence %v", o.CheckpointEvery)
	}
	if o.CheckpointEveryEvents < 0 {
		return fmt.Errorf("sim options: negative checkpoint event cadence %d", o.CheckpointEveryEvents)
	}
	switch o.EventQueue {
	case "", EventQueueHeap, EventQueueCalendar:
	default:
		return fmt.Errorf("sim options: unknown event queue %q (want %q or %q)",
			o.EventQueue, EventQueueHeap, EventQueueCalendar)
	}
	if o.MaxJobStats < 0 {
		return fmt.Errorf("sim options: negative per-job stats bound %d", o.MaxJobStats)
	}
	if !o.Faults.Empty() {
		if err := o.Faults.Validate(o.Cluster.TotalNodes()); err != nil {
			return err
		}
	}
	return nil
}

// eventKind enumerates simulator events.
type eventKind int

const (
	evArrival eventKind = iota + 1
	evCompletion
	evTick
	evSample
	// evFault delivers one pre-compiled chaos fault.
	evFault
	// evResubmit requeues a fault-killed job after its retry backoff.
	evResubmit
	// evJobFail is an injected mid-run failure of one running attempt.
	evJobFail
)

// String implements fmt.Stringer (for invariant-violation reports).
func (k eventKind) String() string {
	switch k {
	case evArrival:
		return "arrival"
	case evCompletion:
		return "completion"
	case evTick:
		return "tick"
	case evSample:
		return "sample"
	case evFault:
		return "fault"
	case evResubmit:
		return "resubmit"
	case evJobFail:
		return "job-failure"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// event is one heap entry. seq breaks time ties deterministically in
// insertion order.
type event struct {
	at      time.Duration
	seq     int64
	kind    eventKind
	job     *job.Job // arrivals
	jobID   job.ID   // completions, resubmits
	version int64    // completions: must match the running job's version
	// fault is the chaos fault to apply (evFault).
	fault chaos.Fault
	// run pins an injected failure (evJobFail) to one specific attempt: if
	// the attempt completed, was preempted or was crash-killed first, the
	// pointer no longer matches s.running and the event is stale.
	run *runningJob
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// runningJob is the live state of a started job.
type runningJob struct {
	job   *job.Job
	model *perfmodel.Model // nil for CPU jobs
	alloc job.Allocation
	// remaining is work left, measured in time-at-full-speed.
	remaining time.Duration
	// speed is the current progress rate in (0, 1].
	speed float64
	// lastUpdate is when remaining was last integrated.
	lastUpdate time.Duration
	// version invalidates stale completion events after speed changes.
	version int64
	// startedAt is when this (possibly re-queued) run began.
	startedAt time.Duration
	// bwDemand is the job's current per-node unthrottled bandwidth demand.
	bwDemand float64
	// attempt is a simulator-wide monotonic serial for this started attempt.
	// Checkpoints use it to re-pin evJobFail events to the attempt they were
	// armed against: a pointer cannot survive serialization, a serial can.
	attempt int64
}

// cfg returns the job's training configuration.
func (r *runningJob) cfg() perfmodel.Config {
	return perfmodel.Config{
		Nodes: len(r.alloc.NodeIDs),
		GPUs:  r.alloc.GPUs * len(r.alloc.NodeIDs),
	}
}

// minSpeed floors progress so completion events always exist.
const minSpeed = 0.01

// Simulator drives one scheduler over one trace.
type Simulator struct {
	opts      Options
	cluster   *cluster.Cluster
	monitor   *membw.Monitor
	scheduler sched.Scheduler
	rng       *rand.Rand

	now    time.Duration
	events eventQueue
	seq    int64

	// Streaming intake (nil source means the materialized-slice path).
	// Exactly one arrival event sits in the queue at a time; handleArrival
	// pulls the next one from the source on demand. sourceCursor is the
	// source state captured immediately before drawing the queued arrival,
	// so a checkpoint can regenerate it; totalJobs anchors the arrival
	// sequence numbers; intakeErr latches a mid-run generation failure.
	source       *trace.Source
	sourceCursor trace.Cursor
	totalJobs    int
	intakeErr    error

	// rngDraws counts measurement-noise draws so a resumed run can re-seed
	// the generator and fast-forward to the same stream position.
	rngDraws uint64
	// attempts is the monotonic serial handed to each started attempt.
	attempts int64

	pending map[job.ID]*job.Job
	running map[job.ID]*runningJob
	// startedOnce marks jobs that started at least once and have not yet
	// reached a terminal state. A job's queue-time sample fires exactly on
	// its first start, and the aggregate CDFs must see every job even when
	// Options.MaxJobStats bounds the per-job Jobs map — so first-start
	// detection cannot live in the result records. Entries are deleted on
	// completion, terminal failure and cancellation, keeping the set sized
	// by the in-flight population, not the trace length.
	startedOnce map[job.ID]bool
	// pcieLoad is the per-node sum of GPU-job PCIe demands.
	pcieLoad []float64

	arrivalsLeft int
	lastArrival  time.Duration
	stallCount   int

	// Chaos state. chaosOn gates every fault code path so a fault-free run
	// never consults any of it.
	chaosOn bool
	// faultsLeft counts undelivered evFault events: while positive, the
	// stall detector must not declare a wedge (a recovery may still come).
	faultsLeft int
	// downDepth / darkDepth count overlapping crash / telemetry-dark
	// windows per node; slowFactors holds each node's active straggler
	// multipliers. Slices, indexed by node ID, for deterministic scans.
	downDepth   []int
	darkDepth   []int
	slowFactors [][]float64
	// retries counts fault kills per job; retrying holds killed jobs
	// waiting out their backoff; failedOnce marks jobs whose injected
	// failure already fired.
	retries    map[job.ID]int
	retrying   map[job.ID]*job.Job
	failedOnce map[job.ID]bool
	// admitted / completedJobs / terminalJobs / cancelledJobs feed the
	// job-conservation invariant: admitted = arrivalsLeft + pending +
	// running + retrying + completed + terminal + cancelled at every event
	// boundary.
	admitted      int
	completedJobs int
	terminalJobs  int
	cancelledJobs int

	// Checkpoint/restore state. killsSurvived is how many controller kills
	// this process has already lived through (kills recorded before the
	// checkpoint it resumed from, or set by the harness for fresh restarts);
	// only a kill beyond that count aborts the run. killed latches the abort;
	// resumed suppresses the bootstrap events Run would otherwise re-push.
	killsSurvived         int
	killed                bool
	resumed               bool
	bootstrapped          bool
	nextCheckpointAt      time.Duration
	eventsSinceCheckpoint int

	// freeEvents is a deterministic free-list of recycled heap events: the
	// event loop allocates an *event only when the list is empty. (A
	// sync.Pool would tie recycling to the runtime scheduler and GC — this
	// stays bit-identical run to run.)
	freeEvents []*event
	// cpuCoresOn[nid] is the per-node sum of CPU-job cores, maintained
	// incrementally so the contention hot path never walks node job maps.
	cpuCoresOn []int
	// Reusable scratch: refreshSeen/refreshIDs back refreshNodes,
	// sampleIDs backs sample, fragMinCores backs fragRate, invIDs backs
	// the invariant checkers, touchedJobs journals the job IDs events
	// touched for the delta invariant check.
	refreshSeen  map[job.ID]bool
	refreshIDs   []job.ID
	sampleIDs    []job.ID
	fragMinCores map[int]int
	invIDs       []job.ID
	invUsages    []membw.JobUsage
	touchedJobs  []job.ID
	// eventsSinceAudit counts events since the last full invariant audit.
	eventsSinceAudit int

	results *Result
}

// newSimulator builds the trace-independent core shared by New (materialized
// slice) and NewStreaming (lazy source): cluster, monitor, queue, result
// containers. The caller seeds the intake path, arms chaos and binds the
// scheduler.
func newSimulator(opts Options, scheduler sched.Scheduler) (*Simulator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if scheduler == nil {
		return nil, errors.New("sim: scheduler is nil")
	}
	c, err := cluster.New(opts.Cluster)
	if err != nil {
		return nil, err
	}
	mon, err := membw.NewMonitor(opts.Cluster.TotalNodes(), opts.Cluster.BandwidthGBs, opts.MBASupported)
	if err != nil {
		return nil, err
	}
	// Seal the simulator's copy of the options: the fault plan's slice must
	// not alias the caller's, or editing a reused spec would rewrite this
	// run's schedule.
	opts = opts.Clone()
	s := &Simulator{
		opts:        opts,
		cluster:     c,
		monitor:     mon,
		scheduler:   scheduler,
		rng:         rand.New(rand.NewSource(opts.Seed)),
		events:      newEventQueue(opts),
		pending:     make(map[job.ID]*job.Job),
		running:     make(map[job.ID]*runningJob),
		startedOnce: make(map[job.ID]bool),
		pcieLoad:    make([]float64, opts.Cluster.TotalNodes()),
		cpuCoresOn:  make([]int, opts.Cluster.TotalNodes()),
		refreshSeen: make(map[job.ID]bool),
		results:     newResult(scheduler.Name(), opts.CompactCDFs),
	}
	if opts.CheckpointEvery > 0 {
		s.nextCheckpointAt = opts.CheckpointEvery
	}
	if opts.MaxVirtualTime > 0 && opts.SampleInterval > 0 {
		samples := int(opts.MaxVirtualTime/opts.SampleInterval) + 2
		s.results.growSeries(samples)
	}
	return s, nil
}

// armChaos initializes fault-injection state and queues the compiled fault
// schedule. It must run after the intake path has been seeded so fault
// events sort after coincident arrivals in both intake modes.
func (s *Simulator) armChaos() error {
	opts := s.opts
	// Service mode always initializes chaos state even with an empty plan:
	// node drain/leave/join operations are delivered through the fault
	// machinery at runtime.
	if !opts.Faults.Empty() || opts.Service {
		s.chaosOn = true
		s.downDepth = make([]int, opts.Cluster.TotalNodes())
		s.darkDepth = make([]int, opts.Cluster.TotalNodes())
		s.slowFactors = make([][]float64, opts.Cluster.TotalNodes())
		s.retries = make(map[job.ID]int)
		s.retrying = make(map[job.ID]*job.Job)
		s.failedOnce = make(map[job.ID]bool)
	}
	if !opts.Faults.Empty() {
		faults, err := opts.Faults.Compile(opts.Cluster.TotalNodes())
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		for _, f := range faults {
			s.pushEvent(event{at: f.At, kind: evFault, fault: f})
			s.faultsLeft++
		}
	}
	return nil
}

// New builds a simulator for the scheduler and a fully materialized trace.
func New(opts Options, scheduler sched.Scheduler, jobs []*job.Job) (*Simulator, error) {
	s, err := newSimulator(opts, scheduler)
	if err != nil {
		return nil, err
	}
	s.totalJobs = len(jobs)
	gpuJobs, cpuJobs := 0, 0
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		s.pushEvent(event{at: j.Arrival, kind: evArrival, job: j})
		if j.Arrival > s.lastArrival {
			s.lastArrival = j.Arrival
		}
		s.arrivalsLeft++
		if j.IsGPU() {
			gpuJobs++
		} else {
			cpuJobs++
		}
	}
	// Pre-size the trace-proportional metric storage so month-scale runs
	// never grow it mid-flight.
	s.results.GPUQueue.Grow(gpuJobs)
	s.results.CPUQueue.Grow(cpuJobs)
	s.admitted = s.arrivalsLeft
	if err := s.armChaos(); err != nil {
		return nil, err
	}
	s.results.LastArrival = s.lastArrival
	scheduler.Bind(s)
	return s, nil
}

// NewStreaming builds a simulator that pulls its trace lazily from src:
// exactly one pending arrival event exists at any moment, so intake memory
// is O(1) in the job count. The source must be freshly constructed (nothing
// drained); the simulator takes ownership and drains it as the run advances.
//
// At identical Options and trace config, a streaming run's results are
// byte-identical (per DumpResult) to a materialized New run over
// trace.Generate of the same config.
func NewStreaming(opts Options, scheduler sched.Scheduler, src *trace.Source) (*Simulator, error) {
	if src == nil {
		return nil, errors.New("sim: streaming trace source is nil")
	}
	if src.Remaining() != src.Total() {
		return nil, fmt.Errorf("sim: streaming trace source already drained %d of %d jobs",
			src.Total()-src.Remaining(), src.Total())
	}
	s, err := newSimulator(opts, scheduler)
	if err != nil {
		return nil, err
	}
	s.source = src
	s.totalJobs = src.Total()
	s.arrivalsLeft = s.totalJobs
	s.admitted = s.totalJobs
	cfg := src.Config()
	s.results.GPUQueue.Grow(cfg.GPUJobs)
	s.results.CPUQueue.Grow(cfg.CPUJobs)
	s.queueNextArrival()
	if s.intakeErr != nil {
		return nil, fmt.Errorf("sim: %w", s.intakeErr)
	}
	if err := s.armChaos(); err != nil {
		return nil, err
	}
	scheduler.Bind(s)
	return s, nil
}

func (s *Simulator) push(e *event) {
	e.seq = s.seq
	s.seq++
	s.events.push(e)
}

// takeEvent returns a recycled queue entry when one is free so the
// steady-state event loop allocates nothing per event.
func (s *Simulator) takeEvent() *event {
	if n := len(s.freeEvents); n > 0 {
		e := s.freeEvents[n-1]
		s.freeEvents[n-1] = nil
		s.freeEvents = s.freeEvents[:n-1]
		return e
	}
	return new(event)
}

// pushEvent queues ev with the next auto-assigned sequence number.
func (s *Simulator) pushEvent(ev event) {
	e := s.takeEvent()
	*e = ev
	s.push(e)
}

// pushArrival queues one streamed arrival. Its sequence number is not drawn
// from s.seq but fixed by the job's position in the trace, negative so the
// relative order against every other event kind reproduces the materialized
// path exactly: there, arrival k gets seq k-1 and everything else starts at
// totalJobs, so arrivals sort first at equal timestamps and among
// themselves by ID; here, arrival k gets seq k-1-totalJobs (< 0) and
// everything else starts at 0 — the same relative order, stream or slice.
func (s *Simulator) pushArrival(j *job.Job) {
	e := s.takeEvent()
	*e = event{at: j.Arrival, seq: int64(j.ID) - 1 - int64(s.totalJobs), kind: evArrival, job: j}
	s.events.push(e)
}

// queueNextArrival captures the source cursor, draws the next job and
// queues its arrival event. Capturing the cursor before the draw is what
// makes mid-stream checkpoints complete: a resumed source regenerates the
// very job whose arrival event the checkpoint skipped. A generation error
// latches intakeErr and aborts the run at the next event boundary.
func (s *Simulator) queueNextArrival() {
	s.sourceCursor = s.source.CheckpointState()
	j, err := s.source.Next()
	if err != nil {
		s.intakeErr = fmt.Errorf("streaming intake: %w", err)
		return
	}
	if j == nil {
		return // source drained
	}
	if j.ID < 1 || int64(j.ID) > int64(s.totalJobs) {
		s.intakeErr = fmt.Errorf("streaming intake: job ID %d outside trace range [1, %d]", j.ID, s.totalJobs)
		return
	}
	s.pushArrival(j)
}

// recycleEvent returns a dispatched event to the free list. Only events
// popped from the heap may be recycled, and never while any reference to
// them is still live.
func (s *Simulator) recycleEvent(e *event) {
	*e = event{}
	s.freeEvents = append(s.freeEvents, e)
}

// idle reports whether nothing remains to simulate.
func (s *Simulator) idle() bool {
	return s.arrivalsLeft == 0 && len(s.pending) == 0 && len(s.running) == 0 &&
		len(s.retrying) == 0
}

// stallTicks is how many consecutive no-progress ticks (with nothing
// running and no arrivals left) the simulator tolerates before declaring
// the pending jobs permanently unplaceable. The grace period lets stateful
// schedulers that defer work across ticks (e.g. requeue-after-preempt) act.
const stallTicks = 10

// stalled reports a permanent wedge: jobs pend, but no arrivals remain,
// nothing runs, and stallTicks consecutive ticks started nothing.
func (s *Simulator) stalled() bool {
	if s.arrivalsLeft != 0 || len(s.running) != 0 || len(s.pending) == 0 {
		s.stallCount = 0
		return false
	}
	if s.faultsLeft > 0 || len(s.retrying) > 0 {
		// A pending fault (e.g. a node recovery) or a backoff resubmission
		// can still change what is placeable: not a permanent wedge.
		s.stallCount = 0
		return false
	}
	s.stallCount++
	return s.stallCount >= stallTicks
}

// maxEvents bounds runaway simulations (well above any legitimate run).
const maxEvents = 200_000_000

// Run executes the simulation to completion and returns the results. When
// fault injection kills the controller (and ExitOnControllerKill is set) it
// returns ErrControllerKilled without finalizing; the caller restarts from
// the latest checkpoint via Resume.
func (s *Simulator) Run() (*Result, error) {
	s.bootstrap()

	for steps := 0; s.events.len() > 0; steps++ {
		if steps > maxEvents {
			return nil, fmt.Errorf("sim: exceeded %d events at t=%v (scheduler wedged?)", maxEvents, s.now)
		}
		e := s.events.pop()
		if e == nil {
			return nil, errors.New("sim: corrupt event queue")
		}
		if s.opts.MaxVirtualTime > 0 && e.at > s.opts.MaxVirtualTime {
			break
		}
		if s.dispatch(e) {
			// No arrivals remain, nothing runs, and the tick started
			// nothing: the pending jobs are unplaceable and no future
			// event can change that. Stop instead of spinning forever.
			s.finalize()
			return s.results, nil
		}
		if err := s.postEvent(e.kind); err != nil {
			return nil, err
		}
		s.recycleEvent(e)
		if s.idle() {
			break
		}
	}
	s.finalize()
	return s.results, nil
}

// bootstrap pushes the initial tick/sample cadence events exactly once per
// process. A resumed run carries its tick/sample events inside the restored
// heap; re-pushing them would double the cadence streams.
func (s *Simulator) bootstrap() {
	if s.resumed || s.bootstrapped {
		return
	}
	s.bootstrapped = true
	if s.opts.TickInterval > 0 {
		s.pushEvent(event{at: s.opts.TickInterval, kind: evTick})
	}
	s.pushEvent(event{at: 0, kind: evSample})
}

// dispatch advances virtual time to e.at and applies the event. It reports
// whether a tick proved the run permanently wedged (batch mode only — a
// service idles between requests instead of stalling out).
func (s *Simulator) dispatch(e *event) (stalled bool) {
	s.now = e.at
	s.results.Events++

	switch e.kind {
	case evArrival:
		s.handleArrival(e.job)
	case evCompletion:
		s.handleCompletion(e.jobID, e.version)
	case evTick:
		s.scheduler.Tick()
		if !s.opts.Service && s.stalled() {
			return true
		}
		if s.opts.Service || !s.idle() {
			s.pushEvent(event{at: s.now + s.opts.TickInterval, kind: evTick})
		}
	case evSample:
		s.sample()
		if s.opts.Service || !s.idle() {
			s.pushEvent(event{at: s.now + s.opts.SampleInterval, kind: evSample})
		}
	case evFault:
		s.faultsLeft--
		s.handleFault(e.fault)
	case evResubmit:
		s.handleResubmit(e.jobID)
	case evJobFail:
		s.handleJobFailure(e.jobID, e.run)
	}
	return false
}

// postEvent runs the per-event epilogue shared by Run and RunUntil:
// invariant checking, touched-journal reset, the controller-kill latch, and
// the checkpoint cadence.
func (s *Simulator) postEvent(kind eventKind) error {
	if s.intakeErr != nil {
		return fmt.Errorf("sim: %w", s.intakeErr)
	}
	if s.opts.Invariants {
		if err := s.checkEventInvariants(); err != nil {
			return fmt.Errorf("sim: invariant violated after %v event at t=%v: %w", kind, s.now, err)
		}
	}
	// The touched journals only matter to the delta checker above;
	// resetting them unconditionally keeps them from growing when
	// checking is off.
	s.cluster.ResetTouched()
	s.touchedJobs = s.touchedJobs[:0]
	if s.killed {
		// Died mid-run: no finalize, no results. State up to the latest
		// checkpoint survives; everything after it is lost, exactly like
		// a real scheduler crash.
		return ErrControllerKilled
	}
	if err := s.maybeCheckpoint(); err != nil {
		return fmt.Errorf("sim: checkpoint at t=%v: %w", s.now, err)
	}
	return nil
}

func (s *Simulator) handleArrival(j *job.Job) {
	s.arrivalsLeft--
	s.pending[j.ID] = j
	s.touchJob(j.ID)
	// On-admit max-update: a no-op for the materialized path (New scanned
	// the whole slice up front) but load-bearing for streaming intake,
	// where nobody has seen the future arrivals yet.
	if j.Arrival > s.lastArrival {
		s.lastArrival = j.Arrival
		s.results.LastArrival = s.lastArrival
	}
	s.results.noteArrival(j, s.opts.MaxJobStats)
	s.scheduler.Submit(j)
	if s.source != nil {
		s.queueNextArrival()
	}
}

// touchJob journals a job whose lifecycle state the current event changed;
// the delta invariant checker audits exactly these.
func (s *Simulator) touchJob(id job.ID) { s.touchedJobs = append(s.touchedJobs, id) }

func (s *Simulator) handleCompletion(id job.ID, version int64) {
	r, ok := s.running[id]
	if !ok || r.version != version {
		return // stale event
	}
	s.advance(r)
	if r.remaining > time.Millisecond {
		// Numerical drift: reschedule instead of completing early.
		s.scheduleCompletion(r)
		return
	}
	s.stopJob(r)
	s.completedJobs++
	delete(s.startedOnce, id)
	s.results.noteCompletion(r, s.now)
	s.scheduler.OnJobCompleted(r.job)
}

// stopJob releases a running job's resources and refreshes neighbours.
func (s *Simulator) stopJob(r *runningJob) {
	id := r.job.ID
	if err := s.cluster.Release(id); err != nil {
		panic(fmt.Sprintf("sim: release job %d: %v", id, err))
	}
	s.touchJob(id)
	if !r.job.IsGPU() {
		for _, nid := range r.alloc.NodeIDs {
			s.cpuCoresOn[nid] -= r.alloc.CPUCores
		}
	}
	for _, nid := range r.alloc.NodeIDs {
		meter, err := s.monitor.Node(nid)
		if err == nil {
			_ = meter.Deregister(id)
		}
		if r.model != nil {
			pcie, perr := r.model.PCIeDemand(r.cfg())
			if perr == nil {
				s.pcieLoad[nid] -= pcie
				if s.pcieLoad[nid] < 0 {
					s.pcieLoad[nid] = 0
				}
			}
		}
	}
	delete(s.running, id)
	r.version++ // kill outstanding completion events
	s.refreshNodes(r.alloc.NodeIDs)
}

// advance integrates a job's progress up to now.
func (s *Simulator) advance(r *runningJob) {
	dt := s.now - r.lastUpdate
	if dt <= 0 {
		return
	}
	r.remaining -= time.Duration(float64(dt) * r.speed)
	if r.remaining < 0 {
		r.remaining = 0
	}
	r.lastUpdate = s.now
}

// scheduleCompletion queues the job's (re)computed completion event.
func (s *Simulator) scheduleCompletion(r *runningJob) {
	r.version++
	eta := time.Duration(float64(r.remaining) / r.speed)
	s.pushEvent(event{
		at:      s.now + eta,
		kind:    evCompletion,
		jobID:   r.job.ID,
		version: r.version,
	})
}

// contentionAt computes the shared-resource pressure on one node.
func (s *Simulator) contentionAt(nodeID int) perfmodel.Contention {
	meter, err := s.monitor.Node(nodeID)
	if err != nil {
		return perfmodel.Contention{}
	}
	n, err := s.cluster.Node(nodeID)
	pcieUtil, llc := 0.0, 0.0
	if err == nil {
		if n.PCIeGBs > 0 {
			pcieUtil = s.pcieLoad[nodeID] / n.PCIeGBs
		}
		// CPU jobs occupy last-level cache roughly in proportion to the
		// cores they run on. Fig. 7 shows every model shrugging this off;
		// modeling it keeps that claim testable end to end. cpuCoresOn is
		// maintained incrementally by StartJob/ResizeJob/stopJob so this
		// hot path never walks the node's job map.
		if n.Cores > 0 {
			llc = float64(s.cpuCoresOn[nodeID]) / float64(n.Cores)
		}
	}
	return perfmodel.Contention{
		BandwidthUtil: meter.Utilization(),
		LLCPressure:   llc,
		PCIeUtil:      pcieUtil,
	}
}

// worstContention returns the max-pressure view across a job's nodes
// (gradient synchronization waits for the slowest worker).
func (s *Simulator) worstContention(nodeIDs []int) perfmodel.Contention {
	var worst perfmodel.Contention
	for _, nid := range nodeIDs {
		c := s.contentionAt(nid)
		if c.BandwidthUtil > worst.BandwidthUtil {
			worst.BandwidthUtil = c.BandwidthUtil
		}
		if c.LLCPressure > worst.LLCPressure {
			worst.LLCPressure = c.LLCPressure
		}
		if c.PCIeUtil > worst.PCIeUtil {
			worst.PCIeUtil = c.PCIeUtil
		}
	}
	return worst
}

// slowdown returns the straggler multiplier for a job spanning nodeIDs:
// synchronous training paces at the slowest worker, so the job takes the
// minimum over its nodes of each node's product of active factors.
func (s *Simulator) slowdown(nodeIDs []int) float64 {
	if !s.chaosOn {
		return 1
	}
	worst := 1.0
	for _, nid := range nodeIDs {
		if nid < 0 || nid >= len(s.slowFactors) {
			continue
		}
		f := 1.0
		for _, sf := range s.slowFactors[nid] {
			f *= sf
		}
		if f < worst {
			worst = f
		}
	}
	return worst
}

// computeSpeed returns the job's progress rate at the current allocation
// and contention.
func (s *Simulator) computeSpeed(r *runningJob) float64 {
	speed := s.baseSpeed(r) * s.slowdown(r.alloc.NodeIDs)
	if speed < minSpeed {
		return minSpeed
	}
	return speed
}

// baseSpeed is the fault-free progress rate (allocation + contention only).
func (s *Simulator) baseSpeed(r *runningJob) float64 {
	if r.model != nil {
		speed, err := r.model.Speed(r.cfg(), r.job.BatchSize, r.alloc.CPUCores, s.worstContention(r.alloc.NodeIDs))
		if err != nil || speed < minSpeed {
			return minSpeed
		}
		return speed
	}
	// CPU jobs: slowed by bandwidth throttling and by core shrinkage.
	speed := 1.0
	if r.job.Bandwidth > 0 {
		meter, err := s.monitor.Node(r.alloc.NodeIDs[0])
		if err == nil {
			if eff, err := meter.JobBandwidth(r.job.ID); err == nil && r.bwDemand > 0 {
				speed *= eff / r.bwDemand
			}
		}
	}
	if req := r.job.Request.CPUCores; req > 0 && r.alloc.CPUCores < req {
		speed *= float64(r.alloc.CPUCores) / float64(req)
	}
	if speed < minSpeed {
		return minSpeed
	}
	return speed
}

// refreshNodes re-evaluates the speed of every job touching the nodes and
// reschedules their completions when the speed changed.
func (s *Simulator) refreshNodes(nodeIDs []int) {
	clear(s.refreshSeen)
	for _, nid := range nodeIDs {
		n, err := s.cluster.Node(nid)
		if err != nil {
			continue
		}
		// Collect into reusable scratch and sort: the per-node visit order
		// must stay identical to the Jobs() order this loop used to walk,
		// because scheduleCompletion hands out heap sequence numbers.
		s.refreshIDs = n.AppendJobs(s.refreshIDs[:0])
		slices.Sort(s.refreshIDs)
		for _, id := range s.refreshIDs {
			if s.refreshSeen[id] {
				continue
			}
			s.refreshSeen[id] = true
			r, ok := s.running[id]
			if !ok {
				continue
			}
			s.advance(r)
			newSpeed := s.computeSpeed(r)
			//coda:ordered-ok change detector; both sides come from the same deterministic computation
			if newSpeed != r.speed {
				r.speed = newSpeed
				s.scheduleCompletion(r)
			}
		}
	}
}
