package sim

import (
	"strings"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/trace"
)

// chaoticSpec builds a small CODA spec with a non-empty fault plan — the
// exact shape where the latent aliasing hazard lived: Options carries a
// chaos.Plan whose Faults slice would otherwise be shared across reuses.
func chaoticSpec(t *testing.T) RunSpec {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 40, 12
	cfg.Duration = 8 * time.Hour
	cfg.Seed = 5
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Seed = 9
	opts.Faults = chaos.Plan{
		Seed:    3,
		Horizon: cfg.Duration,
		Faults: []chaos.Fault{
			{At: time.Hour, Kind: chaos.KindNodeCrash, Node: 1},
			{At: 2 * time.Hour, Kind: chaos.KindNodeRecover, Node: 1},
		},
		JobFailureProb: 0.05,
	}
	return RunSpec{
		Name:    "chaotic",
		Options: opts,
		Jobs:    jobs,
		NewScheduler: func() (sched.Scheduler, error) {
			return core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
		},
	}
}

func TestPlanCloneSeversFaultSlice(t *testing.T) {
	orig := chaos.Plan{
		Seed:   1,
		Faults: []chaos.Fault{{At: time.Hour, Kind: chaos.KindNodeCrash, Node: 2}},
	}
	cp := orig.Clone()
	cp.Faults[0].At = 5 * time.Hour
	cp.Faults[0].Node = 7
	if orig.Faults[0].At != time.Hour || orig.Faults[0].Node != 2 {
		t.Fatalf("mutating the clone's fault reached the original: %+v", orig.Faults[0])
	}
}

func TestOptionsCloneSeversPlan(t *testing.T) {
	opts := testOptions()
	opts.Faults = chaos.Plan{
		Seed:   1,
		Faults: []chaos.Fault{{At: time.Hour, Kind: chaos.KindNodeCrash, Node: 0}},
	}
	cp := opts.Clone()
	cp.Faults.Faults[0].Kind = chaos.KindNodeDrain
	if opts.Faults.Faults[0].Kind != chaos.KindNodeCrash {
		t.Fatal("mutating the cloned options' plan reached the original")
	}
}

// TestSpecReuseIsIsolated is the satellite acceptance test for the sharing
// hazard: one spec seeds two runs, one run's plan is then mutated, and the
// other run must still reproduce the pristine baseline bit for bit.
func TestSpecReuseIsIsolated(t *testing.T) {
	spec := chaoticSpec(t)
	baselineRes, err := spec.Clone().Run()
	if err != nil {
		t.Fatal(err)
	}
	baseline := DumpResult(baselineRes)

	// Seed two runs from the same spec; sabotage B's copy of the plan the
	// way a sweep harness might (retarget the crash, change job-failure
	// odds) before running either.
	runA, runB := spec.Clone(), spec.Clone()
	runB.Options.Faults.Faults[0] = chaos.Fault{At: 30 * time.Minute, Kind: chaos.KindNodeCrash, Node: 3}
	runB.Options.Faults.Faults[1] = chaos.Fault{At: 4 * time.Hour, Kind: chaos.KindNodeRecover, Node: 3}
	runB.Options.Faults.JobFailureProb = 0.5
	runB.Jobs[0].Work += time.Hour

	resB, err := runB.Run()
	if err != nil {
		t.Fatal(err)
	}
	resA, err := runA.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := DumpResult(resA); got != baseline {
		t.Fatalf("run B's mutations perturbed run A; diverged at %s", FirstDiff(baseline, got))
	}
	if DumpResult(resB) == baseline {
		t.Error("sabotaged plan produced an identical run; the test lost its sensitivity")
	}
	// The source spec itself must also be untouched.
	if spec.Options.Faults.JobFailureProb != 0.05 || spec.Options.Faults.Faults[0].Node != 1 {
		t.Error("cloned run leaked mutations back into the source spec")
	}
}

// TestSimulatorSealsPlan: even without RunSpec, handing Options straight
// to New must not leave the simulator aliasing the caller's fault slice.
func TestSimulatorSealsPlan(t *testing.T) {
	spec := chaoticSpec(t)
	want, err := spec.Clone().Run() // pristine baseline, before any sabotage
	if err != nil {
		t.Fatal(err)
	}
	opts := spec.Options
	s, err := core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	simulator, err := New(opts, s, spec.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the caller's plan after construction, then run. opts shares
	// its Faults slice with spec, so only the simulator's sealed copy can
	// still match the baseline.
	opts.Faults.Faults[0] = chaos.Fault{At: time.Minute, Kind: chaos.KindNodeCrash, Node: 0}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := DumpResult(want), DumpResult(res); a != b {
		t.Fatalf("post-construction plan edit perturbed the run; diverged at %s", FirstDiff(a, b))
	}
}

func TestFirstDiff(t *testing.T) {
	got := FirstDiff("a\nb\nc", "a\nX\nc")
	if !strings.Contains(got, "line 2") || !strings.Contains(got, "run A: b") || !strings.Contains(got, "run B: X") {
		t.Errorf("diff did not locate line 2: %q", got)
	}
	if got := FirstDiff("a\nb", "a\nb\nc"); !strings.Contains(got, "different lengths") {
		t.Errorf("length mismatch not reported: %q", got)
	}
}

func TestRunSpecValidate(t *testing.T) {
	spec := chaoticSpec(t)
	if err := spec.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	noSched := spec.Clone()
	noSched.NewScheduler = nil
	if err := noSched.Validate(); err == nil {
		t.Error("spec without scheduler factory should fail validation")
	}
	if _, err := noSched.Run(); err == nil {
		t.Error("running a spec without scheduler factory should fail")
	}
	badOpts := spec.Clone()
	badOpts.Options.TickInterval = -time.Second
	if err := badOpts.Validate(); err == nil {
		t.Error("spec with invalid options should fail validation")
	}
}
