package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/metrics"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/trace"
)

// oneNodeOptions is testOptions shrunk to a single node so directed fault
// tests know exactly which node a job runs on.
func oneNodeOptions() Options {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	return opts
}

// TestCrashKillsRequeuesAndCompletes: a node crash kills the resident job,
// the job waits out its backoff, requeues when the node recovers and still
// finishes. Nothing is lost, every step is counted.
func TestCrashKillsRequeuesAndCompletes(t *testing.T) {
	opts := oneNodeOptions()
	opts.Faults = chaos.Plan{Faults: []chaos.Fault{
		{At: 10 * time.Minute, Kind: chaos.KindNodeCrash, Node: 0},
		{At: 40 * time.Minute, Kind: chaos.KindNodeRecover, Node: 0},
	}}
	res := mustRun(t, opts, sched.NewFIFO(), []*job.Job{cpuJob(1, 0, 8, time.Hour)})

	f := res.Faults
	if f.NodeCrashes != 1 || f.NodeRecoveries != 1 {
		t.Errorf("crashes=%d recoveries=%d, want 1/1", f.NodeCrashes, f.NodeRecoveries)
	}
	if f.JobKills != 1 || f.Requeues != 1 {
		t.Errorf("kills=%d requeues=%d, want 1/1", f.JobKills, f.Requeues)
	}
	if f.GoodputLost <= 0 {
		t.Errorf("goodput lost = %v, want > 0 (the job had 10m of progress)", f.GoodputLost)
	}
	js := res.Jobs[1]
	if js.Kills != 1 || js.Requeues != 1 {
		t.Errorf("job kills=%d requeues=%d, want 1/1", js.Kills, js.Requeues)
	}
	if !js.Completed {
		t.Fatal("killed job never completed after the node recovered")
	}
	// The node was down 10m..40m and the attempt restarted from scratch:
	// completion can be no earlier than recovery + full work.
	if js.CompletedAt < 40*time.Minute+time.Hour {
		t.Errorf("completed at %v, impossibly early for a from-scratch retry", js.CompletedAt)
	}
	if js.TerminallyFailed {
		t.Error("completed job marked terminally failed")
	}
}

// TestRetryBudgetExhaustionIsTerminal: a job killed more often than its
// retry budget allows is terminally reported — visible in the counters and
// its stats — never silently dropped.
func TestRetryBudgetExhaustionIsTerminal(t *testing.T) {
	opts := oneNodeOptions()
	opts.Faults = chaos.Plan{
		MaxRetries: 1,
		Faults: []chaos.Fault{
			{At: 10 * time.Minute, Kind: chaos.KindNodeCrash, Node: 0},
			{At: 12 * time.Minute, Kind: chaos.KindNodeRecover, Node: 0},
			{At: 30 * time.Minute, Kind: chaos.KindNodeCrash, Node: 0},
			{At: 32 * time.Minute, Kind: chaos.KindNodeRecover, Node: 0},
		},
	}
	res := mustRun(t, opts, sched.NewFIFO(), []*job.Job{cpuJob(1, 0, 8, 4*time.Hour)})

	if res.Faults.TerminalFailures != 1 {
		t.Fatalf("terminal failures = %d, want 1", res.Faults.TerminalFailures)
	}
	if res.Faults.JobKills != 2 {
		t.Errorf("kills = %d, want 2 (one per crash)", res.Faults.JobKills)
	}
	js := res.Jobs[1]
	if !js.TerminallyFailed {
		t.Fatal("job not marked terminally failed")
	}
	if js.Completed {
		t.Error("terminally failed job also marked completed")
	}
	if js.LostWork <= 0 {
		t.Errorf("lost work = %v, want > 0", js.LostWork)
	}
}

// TestDrainStopsPlacements: a drained node keeps running nothing new but
// kills nothing; undraining opens it again.
func TestDrainStopsPlacements(t *testing.T) {
	opts := oneNodeOptions()
	opts.Faults = chaos.Plan{Faults: []chaos.Fault{
		{At: 0, Kind: chaos.KindNodeDrain, Node: 0},
		{At: 30 * time.Minute, Kind: chaos.KindNodeUndrain, Node: 0},
	}}
	res := mustRun(t, opts, sched.NewFIFO(), []*job.Job{cpuJob(1, time.Minute, 8, time.Hour)})

	js := res.Jobs[1]
	if !js.Completed {
		t.Fatal("job never completed")
	}
	if js.FirstStart < 30*time.Minute {
		t.Errorf("job started at %v while the node was draining", js.FirstStart)
	}
	if js.Kills != 0 {
		t.Errorf("drain killed a job: kills=%d", js.Kills)
	}
}

// TestStragglerSlowsJob: a straggler window with factor 0.5 roughly doubles
// a resident job's runtime relative to a clean run.
func TestStragglerSlowsJob(t *testing.T) {
	clean := mustRun(t, oneNodeOptions(), sched.NewFIFO(),
		[]*job.Job{cpuJob(1, 0, 8, time.Hour)})

	opts := oneNodeOptions()
	opts.Faults = chaos.Plan{Faults: []chaos.Fault{
		{At: 0, Kind: chaos.KindStragglerStart, Node: 0, Factor: 0.5},
		{At: 10 * time.Hour, Kind: chaos.KindStragglerEnd, Node: 0, Factor: 0.5},
	}}
	slowed := mustRun(t, opts, sched.NewFIFO(), []*job.Job{cpuJob(1, 0, 8, time.Hour)})

	if res := slowed.Faults.Stragglers; res != 1 {
		t.Errorf("stragglers = %d, want 1", res)
	}
	ratio := float64(slowed.Jobs[1].EndToEnd()) / float64(clean.Jobs[1].EndToEnd())
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("straggler slowdown = %.2fx, want ~2x", ratio)
	}
}

// meterProbe reads node 0's bandwidth meter on every tick and records what
// came back.
type meterProbe struct {
	envScheduler
	reads    int
	darkErrs int
	lastErr  error
}

func (m *meterProbe) Tick() {
	m.reads++
	if _, err := m.env.Meter(0); err != nil {
		m.lastErr = err
		if errors.Is(err, ErrTelemetryDark) {
			m.darkErrs++
		}
	}
}

// TestMembwDarkMeterErrors: during a telemetry dropout the scheduler-facing
// meter fails with ErrTelemetryDark while the run itself proceeds, and the
// degraded exposure is measured.
func TestMembwDarkMeterErrors(t *testing.T) {
	opts := oneNodeOptions()
	opts.Faults = chaos.Plan{Faults: []chaos.Fault{
		{At: 0, Kind: chaos.KindMembwDark, Node: 0},
	}}
	probe := &meterProbe{envScheduler: envScheduler{auto: true}}
	res := mustRun(t, opts, probe, []*job.Job{cpuJob(1, 0, 8, time.Hour)})

	if probe.reads == 0 {
		t.Fatal("probe never ticked")
	}
	if probe.darkErrs != probe.reads {
		t.Errorf("%d of %d meter reads failed dark (last err: %v); dropout never ends, all should",
			probe.darkErrs, probe.reads, probe.lastErr)
	}
	if res.Faults.MembwDropouts != 1 {
		t.Errorf("dropouts = %d, want 1", res.Faults.MembwDropouts)
	}
	if res.Faults.DegradedSamples == 0 {
		t.Error("no degraded samples recorded during a run-long dropout")
	}
	if !res.Jobs[1].Completed {
		t.Error("job did not complete; dark telemetry must not stop the physics")
	}
}

// chaosRun runs the full CODA scheduler over a generated trace under a
// fault plan, with the invariant checker hot.
func chaosRun(t *testing.T, simSeed, traceSeed int64, plan chaos.Plan) *Result {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 60, 20
	cfg.Duration = 12 * time.Hour
	cfg.Seed = traceSeed
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Seed = simSeed
	opts.Faults = plan
	s, err := core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return mustRun(t, opts, s, jobs)
}

// TestChaosPropertyRandomPlans is the property-based suite: random fault
// plans over random workloads. For every seed combination the invariant
// checker must stay silent for the whole run (mustRun fails otherwise) and
// every admitted job must end accounted for — completed within its retry
// budget or terminally reported. No job may vanish.
func TestChaosPropertyRandomPlans(t *testing.T) {
	cases := []struct {
		name               string
		simSeed, traceSeed int64
		plan               chaos.Plan
	}{
		{"crash-heavy", 1, 101, chaos.Plan{
			Seed: 11, Horizon: 12 * time.Hour,
			NodeCrashesPerDay: 10, CrashDowntime: 20 * time.Minute,
		}},
		{"dropout-heavy", 2, 102, chaos.Plan{
			Seed: 12, Horizon: 12 * time.Hour,
			MembwDropsPerDay: 24, MembwDropDuration: 15 * time.Minute,
		}},
		{"straggler-heavy", 3, 103, chaos.Plan{
			Seed: 13, Horizon: 12 * time.Hour,
			StragglersPerDay: 12, StragglerFactor: 0.4, StragglerDuration: 45 * time.Minute,
		}},
		{"job-failures", 4, 104, chaos.Plan{
			Seed:           14,
			JobFailureProb: 0.3,
		}},
		{"everything", 5, 105, chaos.Plan{
			Seed: 15, Horizon: 12 * time.Hour,
			NodeCrashesPerDay: 6, CrashDowntime: 25 * time.Minute,
			MembwDropsPerDay: 12, MembwDropDuration: 10 * time.Minute,
			StragglersPerDay: 8, StragglerFactor: 0.5, StragglerDuration: 30 * time.Minute,
			JobFailureProb: 0.2, MaxRetries: 2, RetryBackoff: 2 * time.Minute,
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res := chaosRun(t, tc.simSeed, tc.traceSeed, tc.plan)
			completed, terminal := 0, 0
			for id, js := range res.Jobs {
				switch {
				case js.Completed && js.TerminallyFailed:
					t.Errorf("job %d is both completed and terminally failed", id)
				case js.Completed:
					completed++
				case js.TerminallyFailed:
					terminal++
				default:
					t.Errorf("job %d lost: started=%t kills=%d requeues=%d",
						id, js.Started, js.Kills, js.Requeues)
				}
				if js.Kills > 0 && !js.Completed && !js.TerminallyFailed {
					t.Errorf("killed job %d neither completed nor terminally reported", id)
				}
			}
			if completed+terminal != len(res.Jobs) {
				t.Errorf("%d completed + %d terminal != %d admitted", completed, terminal, len(res.Jobs))
			}
			if res.Faults.TerminalFailures != terminal {
				t.Errorf("terminal counter %d disagrees with per-job stats %d",
					res.Faults.TerminalFailures, terminal)
			}
		})
	}
}

// TestChaosSameSeedBitIdentical is the metamorphic determinism test's first
// half: the same sim seed, trace seed and fault plan must reproduce the
// whole run bit for bit — fault counters, kills and requeues included.
func TestChaosSameSeedBitIdentical(t *testing.T) {
	plan := chaos.Plan{
		Seed: 77, Horizon: 12 * time.Hour,
		NodeCrashesPerDay: 8, CrashDowntime: 20 * time.Minute,
		MembwDropsPerDay: 10, MembwDropDuration: 10 * time.Minute,
		StragglersPerDay: 6, StragglerDuration: 30 * time.Minute,
		JobFailureProb: 0.15,
	}
	a := dumpResult(chaosRun(t, 7, 42, plan))
	b := dumpResult(chaosRun(t, 7, 42, plan))
	if a != b {
		t.Fatalf("same-seed chaotic runs diverged at %s", firstDiff(a, b))
	}
	clean := dumpResult(chaosRun(t, 7, 42, chaos.Plan{}))
	if clean == a {
		t.Error("fault plan had no observable effect; the dump is not sensitive enough")
	}
}

// seriesPrefix renders a series' samples strictly before cutoff, bit-exact.
func seriesPrefix(s *metrics.Series, cutoff time.Duration) string {
	var b strings.Builder
	times, vals := s.Times(), s.Values()
	for i := range vals {
		if times[i] >= cutoff {
			break
		}
		fmt.Fprintf(&b, " %d=%s", times[i], hexFloat(vals[i]))
	}
	return b.String()
}

// TestDifferentFaultSeedDivergesOnlyAfterFirstFault is the second half of
// the metamorphic test: changing only the fault seed leaves the run
// bit-identical up to the first injected fault of either schedule, and
// visibly different after.
func TestDifferentFaultSeedDivergesOnlyAfterFirstFault(t *testing.T) {
	mk := func(seed int64) chaos.Plan {
		return chaos.Plan{
			Seed: seed, Horizon: 12 * time.Hour,
			NodeCrashesPerDay: 6, CrashDowntime: 30 * time.Minute,
		}
	}
	planA, planB := mk(1), mk(2)
	nodes := testOptions().Cluster.Nodes

	firstFault := func(p chaos.Plan) time.Duration {
		faults, err := p.Compile(nodes)
		if err != nil {
			t.Fatal(err)
		}
		if len(faults) == 0 {
			t.Fatalf("plan seed %d compiled to no faults; pick another seed", p.Seed)
		}
		return faults[0].At
	}
	cut := firstFault(planA)
	if b := firstFault(planB); b < cut {
		cut = b
	}

	resA := chaosRun(t, 7, 42, planA)
	resB := chaosRun(t, 7, 42, planB)

	series := []struct {
		name string
		a, b *metrics.Series
	}{
		{"gpuActive", &resA.GPUActive, &resB.GPUActive},
		{"gpuUtil", &resA.GPUUtilSeries, &resB.GPUUtilSeries},
		{"cpuActive", &resA.CPUActive, &resB.CPUActive},
		{"cpuUtil", &resA.CPUUtilSeries, &resB.CPUUtilSeries},
		{"frag", &resA.FragSeries, &resB.FragSeries},
		{"queuedGPU", &resA.QueuedGPU, &resB.QueuedGPU},
		{"queuedCPU", &resA.QueuedCPU, &resB.QueuedCPU},
	}
	for _, s := range series {
		pa, pb := seriesPrefix(s.a, cut), seriesPrefix(s.b, cut)
		if pa != pb {
			t.Errorf("series %s diverged BEFORE the first injected fault (t=%v):\n  A:%s\n  B:%s",
				s.name, cut, pa, pb)
		}
	}
	if dumpResult(resA) == dumpResult(resB) {
		t.Error("different fault seeds produced identical runs; injection is inert")
	}
}
