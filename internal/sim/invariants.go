package sim

import (
	"fmt"
	"sort"

	"github.com/coda-repro/coda/internal/job"
)

// invariantChecker is implemented by schedulers that can validate their own
// bookkeeping (core.Scheduler checks array budgets, fair-share accountants
// and queue/running disjointness). The simulator folds it into its
// per-event check when present.
type invariantChecker interface {
	CheckInvariants() error
}

// CheckInvariants validates the simulator's full accounting after an event:
//
//  1. Cluster capacity: no node over-committed on cores or GPUs, share
//     sums match counters, down nodes host nothing.
//  2. Job-state disjointness: no job is simultaneously pending, running
//     and/or waiting out a retry backoff.
//  3. Placement consistency: every running job holds a cluster placement
//     on exactly its allocation's nodes, and every job holding resources
//     on any node is running (no leaked allocations).
//  4. Bandwidth accounting: the set of jobs registered on each node's
//     memory-bandwidth meter equals the set of jobs occupying the node.
//     (Demand may exceed capacity — that is contention, the phenomenon
//     under study — but accounting must balance.)
//  5. PCIe load is never negative.
//  6. Job conservation: arrivals left + pending + running + retrying +
//     completed + terminally failed = admitted. No admitted job is ever
//     lost.
//
// Behind Options.Invariants it runs after every event; tests enable it
// everywhere, cmd/coda-sim behind -invariants.
func (s *Simulator) CheckInvariants() error {
	if err := s.cluster.CheckInvariants(); err != nil {
		return err
	}

	// Disjointness of the three job states.
	//coda:ordered-ok error reporting on already-broken invariants; any witness will do
	for id := range s.pending {
		if _, ok := s.running[id]; ok {
			return fmt.Errorf("job %d is pending and running simultaneously", id)
		}
	}
	//coda:ordered-ok error reporting on already-broken invariants; any witness will do
	for id := range s.retrying {
		if _, ok := s.pending[id]; ok {
			return fmt.Errorf("job %d is retrying and pending simultaneously", id)
		}
		if _, ok := s.running[id]; ok {
			return fmt.Errorf("job %d is retrying and running simultaneously", id)
		}
	}

	// Placement consistency, in sorted ID order for deterministic reports.
	ids := make([]job.ID, 0, len(s.running))
	//coda:ordered-ok collected IDs are fully ordered by the sort below
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := s.running[id]
		placed, ok := s.cluster.Placement(id)
		if !ok {
			return fmt.Errorf("running job %d holds no cluster placement", id)
		}
		if len(placed) != len(r.alloc.NodeIDs) {
			return fmt.Errorf("running job %d placed on %d nodes, allocation names %d",
				id, len(placed), len(r.alloc.NodeIDs))
		}
	}
	for _, n := range s.cluster.Nodes() {
		for _, id := range n.Jobs() {
			if _, ok := s.running[id]; !ok {
				return fmt.Errorf("node %d holds resources of job %d which is not running (leaked allocation)", n.ID, id)
			}
		}
		// Bandwidth accounting identity: meter registrations == occupancy.
		meter, err := s.monitor.Node(n.ID)
		if err != nil {
			return fmt.Errorf("node %d: %w", n.ID, err)
		}
		usages := meter.Jobs()
		if len(usages) != n.JobCount() {
			return fmt.Errorf("node %d: meter tracks %d jobs, node hosts %d", n.ID, len(usages), n.JobCount())
		}
		for _, u := range usages {
			if _, _, ok := n.JobShare(u.ID); !ok {
				return fmt.Errorf("node %d: meter tracks job %d which holds no share there", n.ID, u.ID)
			}
		}
	}

	for nid, load := range s.pcieLoad {
		if load < 0 {
			return fmt.Errorf("node %d: negative pcie load %g", nid, load)
		}
	}

	// Conservation: no admitted job is ever lost.
	accounted := s.arrivalsLeft + len(s.pending) + len(s.running) + len(s.retrying) +
		s.completedJobs + s.terminalJobs
	if accounted != s.admitted {
		return fmt.Errorf("job conservation broken: %d arrivals left + %d pending + %d running + %d retrying + %d completed + %d terminal = %d, admitted %d",
			s.arrivalsLeft, len(s.pending), len(s.running), len(s.retrying),
			s.completedJobs, s.terminalJobs, accounted, s.admitted)
	}

	if ic, ok := s.scheduler.(invariantChecker); ok {
		if err := ic.CheckInvariants(); err != nil {
			return fmt.Errorf("scheduler: %w", err)
		}
	}
	return nil
}
