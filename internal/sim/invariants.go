package sim

import (
	"fmt"
	"slices"

	"github.com/coda-repro/coda/internal/cluster"
)

// invariantChecker is implemented by schedulers that can validate their own
// bookkeeping (core.Scheduler checks array budgets, fair-share accountants
// and queue/running disjointness). The simulator folds it into its
// per-event check when present.
type invariantChecker interface {
	CheckInvariants() error
}

// checkEventInvariants is the per-event gate behind Options.Invariants:
// with InvariantsEvery unset it runs the full audit every time; with a
// positive cadence it runs the O(Δ) delta check — only the nodes and jobs
// the event's mutations journaled — and the full audit every N events.
// The delta check proves exactly the invariants an event can break:
// untouched nodes and jobs were audited when they last changed.
func (s *Simulator) checkEventInvariants() error {
	n := s.opts.InvariantsEvery
	if n <= 0 {
		return s.CheckInvariants()
	}
	s.eventsSinceAudit++
	if s.eventsSinceAudit >= n {
		s.eventsSinceAudit = 0
		return s.CheckInvariants()
	}
	return s.checkInvariantsDelta()
}

// checkInvariantsDelta verifies the invariants on the nodes and jobs the
// current event touched, plus the O(1) conservation identity. Anything the
// event did not touch cannot have changed since its own last check.
func (s *Simulator) checkInvariantsDelta() error {
	for _, nid := range s.cluster.TouchedNodes() {
		if err := s.cluster.CheckNodeInvariants(nid); err != nil {
			return err
		}
		n, err := s.cluster.Node(nid)
		if err != nil {
			return err
		}
		meter, err := s.monitor.Node(nid)
		if err != nil {
			return fmt.Errorf("node %d: %w", nid, err)
		}
		s.invUsages = meter.AppendJobs(s.invUsages[:0])
		usages := s.invUsages
		if len(usages) != n.JobCount() {
			return fmt.Errorf("node %d: meter tracks %d jobs, node hosts %d", nid, len(usages), n.JobCount())
		}
		for _, u := range usages {
			if _, _, ok := n.JobShare(u.ID); !ok {
				return fmt.Errorf("node %d: meter tracks job %d which holds no share there", nid, u.ID)
			}
		}
		s.invIDs = n.AppendJobs(s.invIDs[:0])
		cpuCores := 0
		for _, id := range s.invIDs {
			r, ok := s.running[id]
			if !ok {
				return fmt.Errorf("node %d holds resources of job %d which is not running (leaked allocation)", nid, id)
			}
			if !r.job.IsGPU() {
				if c, _, ok := n.JobShare(id); ok {
					cpuCores += c
				}
			}
		}
		if cpuCores != s.cpuCoresOn[nid] {
			return fmt.Errorf("node %d: cpu-core cache says %d, shares sum to %d", nid, s.cpuCoresOn[nid], cpuCores)
		}
		if s.pcieLoad[nid] < 0 {
			return fmt.Errorf("node %d: negative pcie load %g", nid, s.pcieLoad[nid])
		}
	}

	for _, id := range s.touchedJobs {
		_, pend := s.pending[id]
		r, run := s.running[id]
		_, retry := s.retrying[id]
		if pend && run {
			return fmt.Errorf("job %d is pending and running simultaneously", id)
		}
		if retry && pend {
			return fmt.Errorf("job %d is retrying and pending simultaneously", id)
		}
		if retry && run {
			return fmt.Errorf("job %d is retrying and running simultaneously", id)
		}
		if run {
			placed, ok := s.cluster.PlacementSize(id)
			if !ok {
				return fmt.Errorf("running job %d holds no cluster placement", id)
			}
			if placed != len(r.alloc.NodeIDs) {
				return fmt.Errorf("running job %d placed on %d nodes, allocation names %d",
					id, placed, len(r.alloc.NodeIDs))
			}
		}
	}

	return s.checkConservation()
}

// checkConservation is the O(1) job-conservation identity shared by the
// delta and full checks.
func (s *Simulator) checkConservation() error {
	accounted := s.arrivalsLeft + len(s.pending) + len(s.running) + len(s.retrying) +
		s.completedJobs + s.terminalJobs + s.cancelledJobs
	if accounted != s.admitted {
		return fmt.Errorf("job conservation broken: %d arrivals left + %d pending + %d running + %d retrying + %d completed + %d terminal + %d cancelled = %d, admitted %d",
			s.arrivalsLeft, len(s.pending), len(s.running), len(s.retrying),
			s.completedJobs, s.terminalJobs, s.cancelledJobs, accounted, s.admitted)
	}
	return nil
}

// CheckInvariants validates the simulator's full accounting after an event:
//
//  1. Cluster capacity: no node over-committed on cores or GPUs, share
//     sums match counters, down nodes host nothing.
//  2. Job-state disjointness: no job is simultaneously pending, running
//     and/or waiting out a retry backoff.
//  3. Placement consistency: every running job holds a cluster placement
//     on exactly its allocation's nodes, and every job holding resources
//     on any node is running (no leaked allocations).
//  4. Bandwidth accounting: the set of jobs registered on each node's
//     memory-bandwidth meter equals the set of jobs occupying the node.
//     (Demand may exceed capacity — that is contention, the phenomenon
//     under study — but accounting must balance.)
//  5. PCIe load is never negative.
//  6. Job conservation: arrivals left + pending + running + retrying +
//     completed + terminally failed + cancelled = admitted. No admitted
//     job is ever lost.
//
// Behind Options.Invariants it runs after every event; tests enable it
// everywhere, cmd/coda-sim behind -invariants.
func (s *Simulator) CheckInvariants() error {
	if err := s.cluster.CheckInvariants(); err != nil {
		return err
	}

	// Disjointness of the three job states.
	//coda:ordered-ok error reporting on already-broken invariants; any witness will do
	for id := range s.pending {
		if _, ok := s.running[id]; ok {
			return fmt.Errorf("job %d is pending and running simultaneously", id)
		}
	}
	//coda:ordered-ok error reporting on already-broken invariants; any witness will do
	for id := range s.retrying {
		if _, ok := s.pending[id]; ok {
			return fmt.Errorf("job %d is retrying and pending simultaneously", id)
		}
		if _, ok := s.running[id]; ok {
			return fmt.Errorf("job %d is retrying and running simultaneously", id)
		}
	}

	// First-start accounting: a running job has by definition started, and a
	// job marked started must still be in flight (the mark is dropped when
	// the job completes, fails terminally or is cancelled).
	//coda:ordered-ok error reporting on already-broken invariants; any witness will do
	for id := range s.running {
		if !s.startedOnce[id] {
			return fmt.Errorf("running job %d is not marked as started", id)
		}
	}
	//coda:ordered-ok error reporting on already-broken invariants; any witness will do
	for id := range s.startedOnce {
		_, p := s.pending[id]
		_, r := s.running[id]
		_, b := s.retrying[id]
		if !p && !r && !b {
			return fmt.Errorf("job %d is marked started but is not in flight", id)
		}
	}

	// Placement consistency, in sorted ID order for deterministic reports.
	s.invIDs = s.invIDs[:0]
	//coda:ordered-ok collected IDs are fully ordered by the sort below
	for id := range s.running {
		s.invIDs = append(s.invIDs, id)
	}
	slices.Sort(s.invIDs)
	for _, id := range s.invIDs {
		r := s.running[id]
		placed, ok := s.cluster.PlacementSize(id)
		if !ok {
			return fmt.Errorf("running job %d holds no cluster placement", id)
		}
		if placed != len(r.alloc.NodeIDs) {
			return fmt.Errorf("running job %d placed on %d nodes, allocation names %d",
				id, placed, len(r.alloc.NodeIDs))
		}
	}
	var nodeErr error
	s.cluster.EachNode(func(n *cluster.Node) bool {
		cpuCores := 0
		s.invIDs = n.AppendJobs(s.invIDs[:0])
		for _, id := range s.invIDs {
			r, ok := s.running[id]
			if !ok {
				nodeErr = fmt.Errorf("node %d holds resources of job %d which is not running (leaked allocation)", n.ID, id)
				return false
			}
			if !r.job.IsGPU() {
				if c, _, ok := n.JobShare(id); ok {
					cpuCores += c
				}
			}
		}
		if s.cpuCoresOn != nil && cpuCores != s.cpuCoresOn[n.ID] {
			nodeErr = fmt.Errorf("node %d: cpu-core cache says %d, shares sum to %d", n.ID, s.cpuCoresOn[n.ID], cpuCores)
			return false
		}
		// Bandwidth accounting identity: meter registrations == occupancy.
		meter, err := s.monitor.Node(n.ID)
		if err != nil {
			nodeErr = fmt.Errorf("node %d: %w", n.ID, err)
			return false
		}
		s.invUsages = meter.AppendJobs(s.invUsages[:0])
		usages := s.invUsages
		if len(usages) != n.JobCount() {
			nodeErr = fmt.Errorf("node %d: meter tracks %d jobs, node hosts %d", n.ID, len(usages), n.JobCount())
			return false
		}
		for _, u := range usages {
			if _, _, ok := n.JobShare(u.ID); !ok {
				nodeErr = fmt.Errorf("node %d: meter tracks job %d which holds no share there", n.ID, u.ID)
				return false
			}
		}
		return true
	})
	if nodeErr != nil {
		return nodeErr
	}

	for nid, load := range s.pcieLoad {
		if load < 0 {
			return fmt.Errorf("node %d: negative pcie load %g", nid, load)
		}
	}

	// Conservation: no admitted job is ever lost.
	if err := s.checkConservation(); err != nil {
		return err
	}

	if ic, ok := s.scheduler.(invariantChecker); ok {
		if err := ic.CheckInvariants(); err != nil {
			return fmt.Errorf("scheduler: %w", err)
		}
	}
	return nil
}
