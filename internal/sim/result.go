package sim

import (
	"slices"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/metrics"
)

// JobStats records one job's observed lifecycle.
type JobStats struct {
	// Job is the submitted job (the original arrival-time view).
	Job *job.Job
	// Arrival is the submission time.
	Arrival time.Duration
	// Started reports whether the job ever started; FirstStart is when.
	Started    bool
	FirstStart time.Duration
	// Completed reports whether the job finished; CompletedAt is when.
	Completed   bool
	CompletedAt time.Duration
	// FinalCores is the per-node core count the job last ran with.
	FinalCores int
	// Resizes counts allocator/eliminator core adjustments.
	Resizes int
	// Preemptions counts how often the job was aborted and requeued.
	Preemptions int
	// Kills counts fault-induced aborts (node crashes, injected failures);
	// Requeues counts post-backoff resubmissions.
	Kills, Requeues int
	// TerminallyFailed marks a job that exhausted its retry budget; LostWork
	// is the work still outstanding when it was given up on.
	TerminallyFailed bool
	LostWork         time.Duration
	// Cancelled marks a job removed by an explicit control-plane cancel
	// request (service mode only).
	Cancelled bool
}

// QueueTime returns the time from submission to first start (0 if the job
// never started).
func (js *JobStats) QueueTime() time.Duration {
	if !js.Started {
		return 0
	}
	return js.FirstStart - js.Arrival
}

// EndToEnd returns submission-to-completion latency (0 if incomplete).
func (js *JobStats) EndToEnd() time.Duration {
	if !js.Completed {
		return 0
	}
	return js.CompletedAt - js.Arrival
}

// Result aggregates everything one simulation run measured.
type Result struct {
	// Scheduler is the policy name.
	Scheduler string
	// LastArrival is the final submission time; means over [0, LastArrival]
	// avoid biasing comparisons with the post-trace drain tail.
	LastArrival time.Duration
	// EndTime is when the simulation went idle.
	EndTime time.Duration

	// GPUActive and CPUActive sample allocated/total resource fractions;
	// GPUUtilSeries and CPUUtilSeries sample per-active-resource
	// utilization; FragSeries samples the GPU fragmentation rate;
	// QueuedGPU and QueuedCPU sample pending-job counts.
	GPUActive, GPUUtilSeries metrics.Series
	CPUActive, CPUUtilSeries metrics.Series
	FragSeries               metrics.Series
	QueuedGPU, QueuedCPU     metrics.Series
	// QueuedGPUDemand samples the GPUs requested by pending GPU jobs as a
	// fraction of the cluster total: GPUActive + QueuedGPUDemand >= 1
	// marks demand-saturated periods ("when the jobs queue up for the
	// resource allocation", Fig. 10).
	QueuedGPUDemand metrics.Series

	// GPUQueue and CPUQueue collect queueing times by job class; PerTenant
	// collects queueing times by tenant (Fig. 12).
	GPUQueue, CPUQueue metrics.CDF
	PerTenant          *metrics.PerKeyCDF

	// Jobs maps submitted jobs to their stats. With Options.MaxJobStats set
	// only the first N admitted jobs are tracked here (the aggregate
	// counters and CDFs still see every job); 0 tracks all of them.
	Jobs map[job.ID]*JobStats

	// GPUJobsDone and CPUJobsDone count completions directly, independent
	// of the Jobs map, so Summarize stays exact when per-job history is
	// bounded by Options.MaxJobStats.
	GPUJobsDone, CPUJobsDone int

	// Throttles counts eliminator MBA interventions; Preemptions counts
	// cross-array preemptions.
	Throttles, Preemptions int

	// Cancellations counts jobs removed by explicit control-plane cancel
	// requests (service mode only; always 0 for batch runs).
	Cancellations int

	// Faults aggregates chaos activity: crashes, dropouts, kills, requeues,
	// terminal failures and goodput lost. All-zero for fault-free runs.
	Faults metrics.FaultCounters

	// Events counts processed simulator events and PlacementQueries counts
	// cluster placement scans — throughput counters for the benchmark
	// harness. Both are excluded from DumpResult: golden comparisons pin
	// the physics, not the engine's work accounting.
	Events           int64
	PlacementQueries int64
}

func newResult(scheduler string, compact bool) *Result {
	r := &Result{
		Scheduler: scheduler,
		PerTenant: metrics.NewPerKeyCDF(),
		Jobs:      make(map[job.ID]*JobStats),
	}
	if compact {
		r.GPUQueue.UseSketch()
		r.CPUQueue.UseSketch()
		r.PerTenant = metrics.NewPerKeyCDFSketch()
	}
	return r
}

// growSeries pre-allocates every sampled series for n samples.
func (r *Result) growSeries(n int) {
	r.GPUActive.Grow(n)
	r.GPUUtilSeries.Grow(n)
	r.CPUActive.Grow(n)
	r.CPUUtilSeries.Grow(n)
	r.FragSeries.Grow(n)
	r.QueuedGPU.Grow(n)
	r.QueuedCPU.Grow(n)
	r.QueuedGPUDemand.Grow(n)
}

func (r *Result) noteArrival(j *job.Job, maxJobs int) {
	if _, ok := r.Jobs[j.ID]; ok {
		return // preempted requeue keeps the original record
	}
	if maxJobs > 0 && len(r.Jobs) >= maxJobs {
		return // keep-first-N bound; aggregates still observe this job
	}
	r.Jobs[j.ID] = &JobStats{
		Job:        j,
		Arrival:    j.Arrival,
		FinalCores: j.Request.CPUCores,
	}
}

// noteStart records a start. The simulator computes first (from its
// startedOnce set, which outlives the bounded Jobs map) so the queue-time
// sample lands in the aggregate CDFs for every job, tracked or not.
func (r *Result) noteStart(j *job.Job, now time.Duration, first bool) {
	if !first {
		return // restart after a kill or preemption: queue time already recorded
	}
	q := now - j.Arrival
	if j.IsGPU() {
		r.GPUQueue.Add(q)
	} else {
		r.CPUQueue.Add(q)
	}
	r.PerTenant.Add(int(j.Tenant), q)
	if js, ok := r.Jobs[j.ID]; ok {
		js.Started = true
		js.FirstStart = now
	}
}

func (r *Result) noteCompletion(run *runningJob, now time.Duration) {
	if run.job.IsGPU() {
		r.GPUJobsDone++
	} else {
		r.CPUJobsDone++
	}
	js, ok := r.Jobs[run.job.ID]
	if !ok {
		return
	}
	js.Completed = true
	js.CompletedAt = now
	js.FinalCores = run.alloc.CPUCores
}

func (r *Result) noteResize(j *job.Job, cores int) {
	if js, ok := r.Jobs[j.ID]; ok {
		js.Resizes++
		js.FinalCores = cores
	}
}

func (r *Result) notePreemption(id job.ID) {
	r.Preemptions++
	if js, ok := r.Jobs[id]; ok {
		js.Preemptions++
	}
}

func (r *Result) noteThrottle(job.ID) { r.Throttles++ }

// noteKill records a fault-induced abort and the attempt progress it wiped.
func (r *Result) noteKill(id job.ID, lost time.Duration) {
	r.Faults.JobKills++
	r.Faults.GoodputLost += lost
	if js, ok := r.Jobs[id]; ok {
		js.Kills++
	}
}

func (r *Result) noteRequeue(id job.ID) {
	if js, ok := r.Jobs[id]; ok {
		js.Requeues++
	}
}

// noteCancel records an explicit control-plane cancellation.
func (r *Result) noteCancel(id job.ID) {
	r.Cancellations++
	if js, ok := r.Jobs[id]; ok {
		js.Cancelled = true
	}
}

// noteTerminal records a job that exhausted its retry budget: it is
// reported, never silently dropped.
func (r *Result) noteTerminal(id job.ID, remaining time.Duration) {
	r.Faults.TerminalFailures++
	if js, ok := r.Jobs[id]; ok {
		js.TerminallyFailed = true
		js.LostWork = remaining
	}
}

// coreBusyPeak is the OS-reported busy fraction of a fully-loaded
// allocated core (decode/transform threads stall on disk and DMA waits).
const coreBusyPeak = 0.55

// sample records one metrics tick.
func (s *Simulator) sample() {
	snap := s.cluster.Snapshot()
	res := s.results

	gpuActive := 0.0
	if snap.TotalGPUs > 0 {
		gpuActive = float64(snap.UsedGPUs) / float64(snap.TotalGPUs)
	}
	cpuActive := float64(snap.UsedCores) / float64(snap.TotalCores)

	// Per-active-GPU utilization and per-active-core busy fraction.
	// Iterate jobs in ID order: float accumulation is order-sensitive and
	// samples must reproduce bit-for-bit across runs.
	ids := s.sampleIDs[:0]
	//coda:ordered-ok collected IDs are fully ordered by the sort below
	for id := range s.running {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	s.sampleIDs = ids
	gpuUtilSum, gpuWeight := 0.0, 0.0
	cpuUtilSum, cpuWeight := 0.0, 0.0
	for _, id := range ids {
		r := s.running[id]
		cores := float64(r.alloc.TotalCPUCores())
		if r.model != nil {
			util, err := r.model.GPUUtil(r.cfg(), r.job.BatchSize, r.alloc.CPUCores, s.worstContention(r.alloc.NodeIDs))
			if err == nil {
				w := float64(r.alloc.TotalGPUs())
				gpuUtilSum += util * w
				gpuWeight += w
			}
			opt, err := r.model.OptimalCores(r.cfg(), r.job.BatchSize)
			if err == nil {
				// Data-preparation workers alternate between decode bursts
				// and I/O waits: an allocated core is busy well below 100%
				// even at the optimal allocation, and over-allocated cores
				// sit idle (Fig. 1 shows CPU utilization consistently below
				// GPU utilization).
				busy := coreBusyPeak
				if r.alloc.CPUCores > opt {
					busy = coreBusyPeak * float64(opt) / float64(r.alloc.CPUCores)
				}
				cpuUtilSum += busy * cores
				cpuWeight += cores
			}
		} else {
			cpuUtilSum += coreBusyPeak * r.speed * cores
			cpuWeight += cores
		}
	}
	gpuUtil := 0.0
	if gpuWeight > 0 {
		gpuUtil = gpuUtilSum / gpuWeight
	}
	cpuUtil := 0.0
	if cpuWeight > 0 {
		cpuUtil = cpuUtilSum / cpuWeight
	}

	pendGPU, pendCPU, pendGPUDemand := 0, 0, 0
	for _, j := range s.pending {
		if j.IsGPU() {
			pendGPU++
			pendGPUDemand += j.Request.GPUs
		} else {
			pendCPU++
		}
	}
	queuedDemand := 0.0
	if snap.TotalGPUs > 0 {
		queuedDemand = float64(pendGPUDemand) / float64(snap.TotalGPUs)
	}

	// Sampling must never fail on monotone time; errors are programming
	// bugs surfaced by tests via the series length invariants.
	_ = res.GPUActive.Add(s.now, gpuActive)
	_ = res.GPUUtilSeries.Add(s.now, gpuUtil)
	_ = res.CPUActive.Add(s.now, cpuActive)
	_ = res.CPUUtilSeries.Add(s.now, cpuUtil)
	_ = res.FragSeries.Add(s.now, s.fragRate())
	_ = res.QueuedGPU.Add(s.now, float64(pendGPU))
	_ = res.QueuedCPU.Add(s.now, float64(pendCPU))
	_ = res.QueuedGPUDemand.Add(s.now, queuedDemand)

	// Degraded-mode exposure: one count per dark node per sample.
	if s.chaosOn {
		for _, depth := range s.darkDepth {
			if depth > 0 {
				res.Faults.DegradedSamples++
			}
		}
	}
}

// fragRate returns the fraction of the cluster's GPUs that are free yet
// unable to serve any pending GPU job — the paper's fragmentation measure
// (§VI-C). Zero when no GPU job waits.
func (s *Simulator) fragRate() float64 {
	// minCores[g] = the smallest per-node core request among pending GPU
	// jobs wanting g GPUs per node. Reused across samples.
	if s.fragMinCores == nil {
		s.fragMinCores = make(map[int]int, 4)
	}
	minCores := s.fragMinCores
	clear(minCores)
	//coda:ordered-ok min-update per key; the final map is independent of visit order
	for _, j := range s.pending {
		if !j.IsGPU() {
			continue
		}
		g := j.Request.GPUsPerNode()
		if cur, ok := minCores[g]; !ok || j.Request.CPUCores < cur {
			minCores[g] = j.Request.CPUCores
		}
	}
	if len(minCores) == 0 {
		return 0
	}
	frag := 0
	s.cluster.EachNode(func(n *cluster.Node) bool {
		freeG := n.FreeGPUs()
		if freeG == 0 {
			return true
		}
		servable := false
		for g, cores := range minCores {
			if g <= freeG && cores <= n.FreeCores() {
				servable = true
				break
			}
		}
		if !servable {
			frag += freeG
		}
		return true
	})
	return float64(frag) / float64(s.cluster.TotalGPUs())
}

func (s *Simulator) finalize() {
	s.results.EndTime = s.now
	s.results.PlacementQueries = s.cluster.PlacementQueries()
}

// WindowMean averages a series over samples taken at or before cutoff.
func WindowMean(s *metrics.Series, cutoff time.Duration) float64 {
	sum, n := 0.0, 0
	for i := 0; i < s.Len(); i++ {
		t, v := s.At(i)
		if t > cutoff {
			break
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Summary condenses a run into the headline numbers of Fig. 10 and §VI-C.
type Summary struct {
	// Scheduler is the policy name.
	Scheduler string
	// GPUActiveRate, GPUUtil, CPUActiveRate, CPUUtil and FragRate are means
	// over the trace window [0, LastArrival].
	GPUActiveRate, GPUUtil float64
	CPUActiveRate, CPUUtil float64
	FragRate               float64
	// GPUJobsDone / CPUJobsDone count completions.
	GPUJobsDone, CPUJobsDone int
	// MakeSpan is the total simulated time.
	MakeSpan time.Duration
}

// Summarize computes the run's headline numbers.
func (r *Result) Summarize() Summary {
	sm := Summary{
		Scheduler:     r.Scheduler,
		GPUActiveRate: WindowMean(&r.GPUActive, r.LastArrival),
		GPUUtil:       WindowMean(&r.GPUUtilSeries, r.LastArrival),
		CPUActiveRate: WindowMean(&r.CPUActive, r.LastArrival),
		CPUUtil:       WindowMean(&r.CPUUtilSeries, r.LastArrival),
		FragRate:      WindowMean(&r.FragSeries, r.LastArrival),
		GPUJobsDone:   r.GPUJobsDone,
		CPUJobsDone:   r.CPUJobsDone,
		MakeSpan:      r.EndTime,
	}
	return sm
}
