package sim

import (
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/trace"
)

// chaoticRun runs a chaotic CODA simulation with the given invariant
// cadence and returns its dump.
func chaoticRun(t *testing.T, every int) string {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 100, 30
	cfg.Duration = 24 * time.Hour
	cfg.Seed = 42
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Seed = 7
	opts.InvariantsEvery = every
	opts.Faults = chaos.Plan{
		Seed:              99,
		Horizon:           24 * time.Hour,
		NodeCrashesPerDay: 6,
		StragglersPerDay:  4,
		MembwDropsPerDay:  4,
		JobFailureProb:    0.05,
	}
	s, err := core.New(core.DefaultConfig(), opts.Cluster.Nodes, opts.Cluster.CoresPerNode, opts.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return DumpResult(mustRun(t, opts, s, jobs))
}

// TestDeltaInvariantCadenceMatchesFullCheck: switching from a full audit
// after every event (InvariantsEvery=0) to the O(Δ) delta check with a
// periodic audit must neither reject a healthy chaotic run nor change one
// bit of its result — checking is observation, never behavior.
func TestDeltaInvariantCadenceMatchesFullCheck(t *testing.T) {
	full := chaoticRun(t, 0)
	for _, every := range []int{1, 7, 1000} {
		if delta := chaoticRun(t, every); delta != full {
			t.Fatalf("InvariantsEvery=%d changed the run: %s", every, FirstDiff(full, delta))
		}
	}
}

// TestDeltaCheckDetectsTouchedCorruption plants corruptions in state the
// current event touched and checks the O(Δ) path reports them.
func TestDeltaCheckDetectsTouchedCorruption(t *testing.T) {
	opts := testOptions()
	opts.InvariantsEvery = 1 << 30 // keep the full audit out of the way
	t.Run("node cache corruption", func(t *testing.T) {
		s, err := New(opts, sched.NewFIFO(), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Drain node 0 so it lands in the touched journal, then corrupt its
		// cpu-core cache: the delta check must cross-check it.
		if err := s.cluster.SetNodeState(0, cluster.NodeDraining); err != nil {
			t.Fatal(err)
		}
		s.cpuCoresOn[0] = 5
		if err := s.checkInvariantsDelta(); err == nil {
			t.Fatal("delta check missed a corrupted cpu-core cache on a touched node")
		}
	})
	t.Run("job state corruption", func(t *testing.T) {
		s, err := New(opts, sched.NewFIFO(), nil)
		if err != nil {
			t.Fatal(err)
		}
		// A job that is pending and running at once, journaled as touched.
		j := cpuJob(1, 0, 2, time.Hour)
		s.pending[j.ID] = j
		s.running[j.ID] = &runningJob{job: j}
		s.touchJob(j.ID)
		if err := s.checkInvariantsDelta(); err == nil {
			t.Fatal("delta check missed a job that is pending and running simultaneously")
		}
	})
	t.Run("untouched corruption caught by cadence audit", func(t *testing.T) {
		s, err := New(opts, sched.NewFIFO(), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt a node WITHOUT touching it: the delta check cannot see it
		// (that is the bargain), but the cadence audit must.
		s.cpuCoresOn[1] = 3
		if err := s.checkInvariantsDelta(); err != nil {
			t.Fatalf("delta check scanned untouched state: %v", err)
		}
		s.opts.InvariantsEvery = 1 // next event triggers the full audit
		if err := s.checkEventInvariants(); err == nil {
			t.Fatal("cadence audit missed a corrupted untouched node")
		}
	})
}
