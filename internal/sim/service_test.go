package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
)

// serviceOptions is testOptions with the control-plane surface switched on.
func serviceOptions() Options {
	opts := testOptions()
	opts.Service = true
	return opts
}

func newService(t *testing.T, opts Options, s sched.Scheduler) *Simulator {
	t.Helper()
	simulator, err := New(opts, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	return simulator
}

func mustRunUntil(t *testing.T, s *Simulator, at time.Duration) {
	t.Helper()
	if err := s.RunUntil(at); err != nil {
		t.Fatalf("RunUntil(%v): %v", at, err)
	}
}

func mustInject(t *testing.T, s *Simulator, j *job.Job) {
	t.Helper()
	if err := s.InjectArrival(j); err != nil {
		t.Fatalf("InjectArrival(job %d): %v", j.ID, err)
	}
}

// TestServiceCallsRejectBatchSimulator pins the guard on every service-mode
// entry point: a simulator built without Options.Service refuses them all
// with ErrNotService instead of silently corrupting a batch run.
func TestServiceCallsRejectBatchSimulator(t *testing.T) {
	s, err := New(testOptions(), sched.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(time.Minute); !errors.Is(err, ErrNotService) {
		t.Errorf("RunUntil on batch sim: err = %v, want ErrNotService", err)
	}
	if err := s.InjectArrival(cpuJob(1, 0, 2, time.Minute)); !errors.Is(err, ErrNotService) {
		t.Errorf("InjectArrival on batch sim: err = %v, want ErrNotService", err)
	}
	if err := s.InjectFault(chaos.Fault{Kind: chaos.KindNodeDrain}); !errors.Is(err, ErrNotService) {
		t.Errorf("InjectFault on batch sim: err = %v, want ErrNotService", err)
	}
	if err := s.CancelJob(1); !errors.Is(err, ErrNotService) {
		t.Errorf("CancelJob on batch sim: err = %v, want ErrNotService", err)
	}
	if _, err := s.Finish(); !errors.Is(err, ErrNotService) {
		t.Errorf("Finish on batch sim: err = %v, want ErrNotService", err)
	}
}

// TestServiceLifecycle walks one job population through every lifecycle
// phase the control plane can observe — pending, running, cancelled (both
// queued and running), completed, unknown — checking JobPhase, JobPlacement,
// duplicate-ID rejection in each state, and the Stats counters along the way.
func TestServiceLifecycle(t *testing.T) {
	opts := serviceOptions()
	opts.Cluster.Nodes = 1 // one 28-core node, so a second 28-core job must queue
	s := newService(t, opts, sched.NewFIFO())

	if got := s.Stats(); got.Now != 0 || got.Pending != 0 || got.Running != 0 || got.Retrying != 0 {
		t.Fatalf("fresh service stats = %+v, want all-zero", got)
	}
	if err := s.InjectArrival(nil); err == nil {
		t.Error("InjectArrival(nil) succeeded, want error")
	}
	if err := s.InjectArrival(&job.Job{ID: 9, Kind: job.KindCPU, Tenant: 1}); err == nil {
		t.Error("InjectArrival with zero resource request succeeded, want validation error")
	}

	mustInject(t, s, cpuJob(1, 0, 28, 12*time.Hour))
	mustRunUntil(t, s, time.Minute)
	if got := s.JobPhase(1); got != PhaseRunning {
		t.Fatalf("JobPhase(1) = %q, want %q", got, PhaseRunning)
	}
	if nodes := s.JobPlacement(1); len(nodes) != 1 {
		t.Fatalf("JobPlacement(1) = %v, want exactly one node", nodes)
	}
	if err := s.InjectArrival(cpuJob(1, 0, 2, time.Minute)); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate inject of running job: err = %v, want already-exists", err)
	}

	mustInject(t, s, cpuJob(2, 0, 28, time.Hour))
	mustRunUntil(t, s, 2*time.Minute)
	if got := s.JobPhase(2); got != PhasePending {
		t.Fatalf("JobPhase(2) = %q, want %q", got, PhasePending)
	}
	if nodes := s.JobPlacement(2); nodes != nil {
		t.Errorf("JobPlacement of a queued job = %v, want nil", nodes)
	}
	if err := s.InjectArrival(cpuJob(2, 0, 2, time.Minute)); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate inject of queued job: err = %v, want already-exists", err)
	}
	if err := s.RunUntil(time.Minute); err == nil {
		t.Error("RunUntil into the past succeeded, want error")
	}

	// Cancel the queued job (FIFO implements sched.Canceller) and then the
	// running one; both must report PhaseCancelled, and a second cancel of
	// an already-final job must be a deterministic rejection.
	if err := s.CancelJob(2); err != nil {
		t.Fatalf("CancelJob(queued 2): %v", err)
	}
	if got := s.JobPhase(2); got != PhaseCancelled {
		t.Errorf("JobPhase(2) after cancel = %q, want %q", got, PhaseCancelled)
	}
	if err := s.CancelJob(1); err != nil {
		t.Fatalf("CancelJob(running 1): %v", err)
	}
	if got := s.JobPhase(1); got != PhaseCancelled {
		t.Errorf("JobPhase(1) after cancel = %q, want %q", got, PhaseCancelled)
	}
	if err := s.CancelJob(1); err == nil {
		t.Error("second CancelJob(1) succeeded, want error")
	}
	if err := s.CancelJob(77); err == nil {
		t.Error("CancelJob of unknown job succeeded, want error")
	}
	if got := s.JobPhase(77); got != PhaseUnknown {
		t.Errorf("JobPhase(77) = %q, want PhaseUnknown", got)
	}

	// With the node free again, a short job runs to completion; its ID then
	// stays burned for the rest of the run.
	mustInject(t, s, cpuJob(3, 0, 4, time.Minute))
	mustRunUntil(t, s, 3*time.Hour)
	if got := s.JobPhase(3); got != PhaseCompleted {
		t.Fatalf("JobPhase(3) = %q, want %q", got, PhaseCompleted)
	}
	if err := s.InjectArrival(cpuJob(3, 0, 2, time.Minute)); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("re-inject of completed job: err = %v, want already-exists", err)
	}

	stats := s.Stats()
	if stats.Now != 3*time.Hour || stats.Pending != 0 || stats.Running != 0 ||
		stats.Completed != 1 || stats.Cancelled != 2 {
		t.Errorf("final stats = %+v, want now=3h completed=1 cancelled=2", stats)
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if len(res.Jobs) != 3 {
		t.Errorf("Finish reported %d jobs, want 3", len(res.Jobs))
	}
}

// TestServiceFaultValidation pins InjectFault's request validation: node
// targets are range-checked per kind, straggler factors must sit in (0, 1),
// unknown kinds are rejected, and process-level kills take no node target.
// Every accepted fault must then deliver cleanly with invariants hot.
func TestServiceFaultValidation(t *testing.T) {
	s := newService(t, serviceOptions(), sched.NewFIFO()) // 4 nodes

	bad := []chaos.Fault{
		{Kind: chaos.KindNodeDrain, Node: -1},
		{Kind: chaos.KindNodeCrash, Node: 4},
		{Kind: chaos.KindMembwDark, Node: 99},
		{Kind: chaos.KindStragglerStart, Node: -1},
		{Kind: chaos.KindStragglerStart, Node: 0, Factor: 0},
		{Kind: chaos.KindStragglerStart, Node: 0, Factor: 1},
		{Kind: chaos.Kind(250)},
	}
	for _, f := range bad {
		if err := s.InjectFault(f); err == nil {
			t.Errorf("InjectFault(%+v) succeeded, want error", f)
		}
	}

	good := []chaos.Fault{
		{Kind: chaos.KindNodeDrain, Node: 0},
		{Kind: chaos.KindNodeUndrain, Node: 0},
		{Kind: chaos.KindMembwDark, Node: 1},
		{Kind: chaos.KindMembwRestore, Node: 1},
		{Kind: chaos.KindStragglerStart, Node: 2, Factor: 0.5},
		{Kind: chaos.KindStragglerEnd, Node: 2, Factor: 0.5},
		{Kind: chaos.KindControllerKill},
		{Kind: chaos.KindServeKill},
	}
	for _, f := range good {
		if err := s.InjectFault(f); err != nil {
			t.Errorf("InjectFault(%+v): %v", f, err)
		}
	}
	mustRunUntil(t, s, time.Minute)
	if _, err := s.Finish(); err != nil {
		t.Fatalf("Finish after fault delivery: %v", err)
	}
}

// TestServiceCrashSendsJobToRetry crashes the only node under a running job:
// the job must surface as PhaseRetrying while it waits out its backoff, its
// ID must stay burned, and cancelling it mid-backoff must stick.
func TestServiceCrashSendsJobToRetry(t *testing.T) {
	opts := serviceOptions()
	opts.Cluster.Nodes = 1
	s := newService(t, opts, sched.NewFIFO())

	mustInject(t, s, cpuJob(1, 0, 4, 10*time.Hour))
	mustRunUntil(t, s, time.Minute)
	if got := s.JobPhase(1); got != PhaseRunning {
		t.Fatalf("JobPhase(1) = %q, want %q", got, PhaseRunning)
	}
	if err := s.InjectFault(chaos.Fault{Kind: chaos.KindNodeCrash, Node: 0}); err != nil {
		t.Fatalf("InjectFault(crash): %v", err)
	}
	// The crash is queued at now; one more second of virtual time delivers
	// it, and the retry backoff (a minute at minimum) keeps the killed job
	// in PhaseRetrying well past that.
	mustRunUntil(t, s, time.Minute+time.Second)
	if got := s.JobPhase(1); got != PhaseRetrying {
		t.Fatalf("JobPhase(1) after crash = %q, want %q", got, PhaseRetrying)
	}
	if err := s.InjectArrival(cpuJob(1, 0, 2, time.Minute)); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("re-inject of retrying job: err = %v, want already-exists", err)
	}
	if err := s.CancelJob(1); err != nil {
		t.Fatalf("CancelJob(retrying 1): %v", err)
	}
	if got := s.JobPhase(1); got != PhaseCancelled {
		t.Errorf("JobPhase(1) after cancel = %q, want %q", got, PhaseCancelled)
	}
	if got := s.Stats(); got.Retrying != 0 || got.Cancelled != 1 {
		t.Errorf("stats after cancelling retrying job = %+v, want retrying=0 cancelled=1", got)
	}
}

// TestServiceCancelQueuedNeedsCanceller pins the deterministic rejection when
// the backing scheduler cannot remove queued jobs: DRF does not implement
// sched.Canceller, so cancelling a pending job must fail without mutating it.
func TestServiceCancelQueuedNeedsCanceller(t *testing.T) {
	opts := serviceOptions()
	opts.Cluster.Nodes = 1
	d, err := sched.NewDRF(opts.Cluster.TotalNodes()*opts.Cluster.CoresPerNode,
		opts.Cluster.TotalNodes()*opts.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	s := newService(t, opts, d)

	mustInject(t, s, cpuJob(1, 0, 28, 10*time.Hour))
	mustInject(t, s, cpuJob(2, 0, 28, time.Hour))
	mustRunUntil(t, s, time.Minute)
	if got := s.JobPhase(2); got != PhasePending {
		t.Fatalf("JobPhase(2) = %q, want %q", got, PhasePending)
	}
	if err := s.CancelJob(2); err == nil || !strings.Contains(err.Error(), "cannot cancel queued jobs") {
		t.Fatalf("CancelJob under DRF: err = %v, want cannot-cancel rejection", err)
	}
	if got := s.JobPhase(2); got != PhasePending {
		t.Errorf("JobPhase(2) after rejected cancel = %q, want still %q", got, PhasePending)
	}
}

// TestServiceRunUntilSplitBitIdentical is the documented RunUntil contract:
// the event stream, not the call boundaries, determines the run, so chopping
// the same horizon into arbitrary RunUntil steps must reproduce the single-
// call result bit for bit.
func TestServiceRunUntilSplitBitIdentical(t *testing.T) {
	run := func(steps []time.Duration) string {
		s := newService(t, serviceOptions(), sched.NewFIFO())
		mustInject(t, s, gpuJob(1, 0, "resnet", 8, 2, 30*time.Minute))
		mustInject(t, s, cpuJob(2, 0, 16, 20*time.Minute))
		mustInject(t, s, hogJob(3, 0, 8, 40, 15*time.Minute))
		for _, at := range steps {
			mustRunUntil(t, s, at)
		}
		res, err := s.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return DumpResult(res)
	}
	whole := run([]time.Duration{2 * time.Hour})
	split := run([]time.Duration{7 * time.Minute, 13 * time.Minute, 41 * time.Minute, 2 * time.Hour})
	if whole != split {
		t.Fatalf("split RunUntil diverged from single call: %s", FirstDiff(whole, split))
	}
}
