package sim

import (
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
)

// multiNodeGPUJob builds a 2-node training job.
func multiNodeGPUJob(id job.ID, model string, coresPerNode int, work time.Duration) *job.Job {
	j := gpuJob(id, 0, model, coresPerNode, 8, work)
	j.Request.Nodes = 2
	return j
}

// TestMultiNodeStragglerContention: a hog on ONE of a 2-node job's nodes
// slows the whole job (gradient sync waits for the slowest worker).
func TestMultiNodeStragglerContention(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 2

	clean := mustRun(t, opts, sched.NewFIFO(),
		[]*job.Job{multiNodeGPUJob(1, "bat", 2, time.Hour)})

	// The hog lands on whichever node has cores; with the 2-node job on
	// both nodes, it co-locates with one of them.
	contended := mustRun(t, opts, sched.NewFIFO(), []*job.Job{
		multiNodeGPUJob(1, "bat", 2, time.Hour),
		hogJob(2, 0, 16, 130, 4*time.Hour),
	})
	if contended.Jobs[1].EndToEnd() <= clean.Jobs[1].EndToEnd() {
		t.Errorf("straggler contention had no effect: %v vs %v",
			contended.Jobs[1].EndToEnd(), clean.Jobs[1].EndToEnd())
	}
}

// resizeBandwidthScheduler shrinks a GPU job and reads the meter.
type resizeBandwidthScheduler struct {
	envScheduler
	done      bool
	before    float64
	after     float64
	resizeErr error
}

func (r *resizeBandwidthScheduler) Tick() {
	if r.done {
		return
	}
	r.done = true
	meter, err := r.env.Meter(0)
	if err != nil {
		r.resizeErr = err
		return
	}
	r.before = meter.Total()
	if err := r.env.ResizeJob(1, 1); err != nil {
		r.resizeErr = err
		return
	}
	r.after = meter.Total()
}

// TestResizeUpdatesBandwidthDemand: shrinking a training job's cores slows
// its data preparation and must shrink its registered bandwidth demand.
func TestResizeUpdatesBandwidthDemand(t *testing.T) {
	rs := &resizeBandwidthScheduler{envScheduler: envScheduler{auto: true}}
	jobs := []*job.Job{gpuJob(1, 0, "alexnet", 6, 1, 2*time.Hour)}
	simulator, err := New(testOptions(), rs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
	if rs.resizeErr != nil {
		t.Fatal(rs.resizeErr)
	}
	if rs.before <= 0 {
		t.Fatal("no bandwidth registered before resize")
	}
	if rs.after >= rs.before {
		t.Errorf("bandwidth demand did not shrink: %.1f -> %.1f GB/s", rs.before, rs.after)
	}
}

// throttleCycleScheduler throttles the hog then unthrottles it.
type throttleCycleScheduler struct {
	envScheduler
	step int
	errs []error
}

func (s *throttleCycleScheduler) Tick() {
	s.step++
	switch s.step {
	case 1:
		s.errs = append(s.errs, s.env.ThrottleJob(2, 5))
	case 3:
		s.errs = append(s.errs, s.env.UnthrottleJob(2))
	}
}

// TestUnthrottleRestoresSpeed: a throttled hog released early finishes
// much sooner than one throttled for its whole run.
func TestUnthrottleRestoresSpeed(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	mk := func() []*job.Job {
		return []*job.Job{hogJob(2, 0, 16, 80, time.Hour)}
	}
	cycle := &throttleCycleScheduler{envScheduler: envScheduler{auto: true}}
	simulator, err := New(opts, cycle, mk())
	if err != nil {
		t.Fatal(err)
	}
	released, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range cycle.errs {
		if e != nil {
			t.Fatal(e)
		}
	}

	hold := &throttleOnTick{envScheduler: envScheduler{auto: true}}
	simulator, err = New(opts, hold, mk())
	if err != nil {
		t.Fatal(err)
	}
	heldRes, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if released.Jobs[2].EndToEnd() >= heldRes.Jobs[2].EndToEnd() {
		t.Errorf("unthrottle did not speed the hog up: released %v vs held %v",
			released.Jobs[2].EndToEnd(), heldRes.Jobs[2].EndToEnd())
	}
}

// TestCPUJobHalvedCoresRunsSlower: the eliminator's MBA-less fallback
// semantics at the simulator level.
func TestCPUJobHalvedCoresRunsSlower(t *testing.T) {
	full := mustRun(t, testOptions(), &envScheduler{auto: true},
		[]*job.Job{cpuJob(1, 0, 8, time.Hour)})

	halver := &resizeOnTick{envScheduler: envScheduler{auto: true}, target: 1, cores: 4}
	simulator, err := New(testOptions(), halver, []*job.Job{cpuJob(1, 0, 8, time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	halved, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if halver.err != nil {
		t.Fatal(halver.err)
	}
	// Half the cores -> roughly half the speed -> roughly twice the time.
	ratio := float64(halved.Jobs[1].EndToEnd()) / float64(full.Jobs[1].EndToEnd())
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("halved-core slowdown = %.2fx, want ~2x", ratio)
	}
}
