package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/metrics"
)

// hexFloat renders a float bit-exactly so dumps catch accumulation-order
// differences that %g rounding would hide.
func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func dumpSeries(b *strings.Builder, name string, s *metrics.Series) {
	fmt.Fprintf(b, "%s:", name)
	times, vals := s.Times(), s.Values()
	for i := range vals {
		fmt.Fprintf(b, " %d=%s", times[i], hexFloat(vals[i]))
	}
	b.WriteByte('\n')
}

func dumpCDF(b *strings.Builder, name string, c *metrics.CDF) {
	fmt.Fprintf(b, "%s:", name)
	for _, p := range c.Points() {
		fmt.Fprintf(b, " %d=%s", p.Value, hexFloat(p.Fraction))
	}
	b.WriteByte('\n')
}

// DumpResult serializes everything a Result measured into one
// deterministic string: if two runs produce the same dump they observed
// the same schedule, sample for sample and bit for bit. Floats are printed
// in hex so no rounding can mask a divergence. It is the currency of the
// determinism golden tests (same-seed replay, checkpoint resume, parallel
// vs sequential execution).
func DumpResult(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler=%s lastArrival=%d endTime=%d throttles=%d preemptions=%d cancellations=%d\n",
		r.Scheduler, r.LastArrival, r.EndTime, r.Throttles, r.Preemptions, r.Cancellations)
	f := r.Faults
	fmt.Fprintf(&b, "faults: crashes=%d recoveries=%d dropouts=%d stragglers=%d kills=%d jobFailures=%d requeues=%d terminal=%d degraded=%d goodputLost=%d controllerKills=%d serveKills=%d\n",
		f.NodeCrashes, f.NodeRecoveries, f.MembwDropouts, f.Stragglers, f.JobKills,
		f.JobFailures, f.Requeues, f.TerminalFailures, f.DegradedSamples, f.GoodputLost, f.ControllerKills, f.ServeKills)
	dumpSeries(&b, "gpuActive", &r.GPUActive)
	dumpSeries(&b, "gpuUtil", &r.GPUUtilSeries)
	dumpSeries(&b, "cpuActive", &r.CPUActive)
	dumpSeries(&b, "cpuUtil", &r.CPUUtilSeries)
	dumpSeries(&b, "frag", &r.FragSeries)
	dumpSeries(&b, "queuedGPU", &r.QueuedGPU)
	dumpSeries(&b, "queuedCPU", &r.QueuedCPU)
	dumpSeries(&b, "queuedGPUDemand", &r.QueuedGPUDemand)
	dumpCDF(&b, "gpuQueue", &r.GPUQueue)
	dumpCDF(&b, "cpuQueue", &r.CPUQueue)
	for _, k := range r.PerTenant.Keys() {
		dumpCDF(&b, fmt.Sprintf("tenant%d", k), r.PerTenant.Get(k))
	}
	ids := make([]job.ID, 0, len(r.Jobs))
	//coda:ordered-ok collected IDs are fully ordered by the sort below
	for id := range r.Jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		js := r.Jobs[id]
		fmt.Fprintf(&b, "job %d: arrival=%d started=%t firstStart=%d completed=%t completedAt=%d cores=%d resizes=%d preemptions=%d kills=%d requeues=%d terminal=%t cancelled=%t\n",
			id, js.Arrival, js.Started, js.FirstStart, js.Completed, js.CompletedAt,
			js.FinalCores, js.Resizes, js.Preemptions, js.Kills, js.Requeues, js.TerminallyFailed, js.Cancelled)
	}
	return b.String()
}

// FirstDiff locates the first line where two dumps diverge, for readable
// golden-test failure output.
func FirstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  run A: %s\n  run B: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("dumps have different lengths (%d vs %d lines)", len(la), len(lb))
}
