package sim

import (
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/trace"
)

func testOptions() Options {
	opts := DefaultOptions()
	opts.Cluster = cluster.Config{
		Nodes: 4, CoresPerNode: 28, GPUsPerNode: 4,
		BandwidthGBs: 120, PCIeGBs: 16,
	}
	opts.SampleInterval = time.Minute
	// Every sim test runs with the invariant checker hot: a bookkeeping bug
	// anywhere fails the nearest test, not just the dedicated chaos suite.
	opts.Invariants = true
	return opts
}

func gpuJob(id job.ID, arrival time.Duration, model string, cores, gpus int, work time.Duration) *job.Job {
	var cat job.Category
	switch model {
	case "bat", "transformer":
		cat = job.CategoryNLP
	case "wavenet", "deepspeech":
		cat = job.CategorySpeech
	default:
		cat = job.CategoryCV
	}
	return &job.Job{
		ID: id, Kind: job.KindGPUTraining, Tenant: 1, Category: cat,
		Model: model, Request: job.Request{CPUCores: cores, GPUs: gpus, Nodes: 1},
		Arrival: arrival, Work: work,
	}
}

func cpuJob(id job.ID, arrival time.Duration, cores int, work time.Duration) *job.Job {
	return &job.Job{
		ID: id, Kind: job.KindCPU, Tenant: 2,
		Request: job.Request{CPUCores: cores, Nodes: 1},
		Arrival: arrival, Work: work, Bandwidth: 0.3 * float64(cores),
	}
}

func hogJob(id job.ID, arrival time.Duration, cores int, bw float64, work time.Duration) *job.Job {
	return &job.Job{
		ID: id, Kind: job.KindBandwidthHog, Tenant: 3,
		Request: job.Request{CPUCores: cores, Nodes: 1},
		Arrival: arrival, Work: work, Bandwidth: bw,
	}
}

func mustRun(t *testing.T, opts Options, s sched.Scheduler, jobs []*job.Job) *Result {
	t.Helper()
	simulator, err := New(opts, s, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOptionsValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Options)
		wantErr bool
	}{
		{"default ok", func(o *Options) {}, false},
		{"bad cluster", func(o *Options) { o.Cluster.Nodes = 0 }, true},
		{"zero tick", func(o *Options) { o.TickInterval = 0 }, true},
		{"zero sample", func(o *Options) { o.SampleInterval = 0 }, true},
		{"huge noise", func(o *Options) { o.UtilNoise = 0.5 }, true},
		{"negative cap", func(o *Options) { o.MaxVirtualTime = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			opts := DefaultOptions()
			tt.mutate(&opts)
			err := opts.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultOptions(), nil, nil); err == nil {
		t.Error("nil scheduler should fail")
	}
	bad := &job.Job{ID: 1, Kind: job.KindCPU, Request: job.Request{CPUCores: 0, Nodes: 1}}
	if _, err := New(DefaultOptions(), sched.NewFIFO(), []*job.Job{bad}); err == nil {
		t.Error("invalid job should fail")
	}
}

func TestSingleJobCompletes(t *testing.T) {
	j := gpuJob(1, 0, "resnet50", 3, 1, time.Hour)
	res := mustRun(t, testOptions(), sched.NewFIFO(), []*job.Job{j})

	js := res.Jobs[1]
	if js == nil || !js.Completed {
		t.Fatalf("job did not complete: %+v", js)
	}
	if js.QueueTime() != 0 {
		t.Errorf("QueueTime = %v, want 0 (empty cluster)", js.QueueTime())
	}
	// 3 cores is resnet50's 1N1G optimum: the job runs at full speed.
	if got := js.EndToEnd(); got < time.Hour || got > time.Hour+time.Minute {
		t.Errorf("EndToEnd = %v, want ~1h", got)
	}
	if res.EndTime < time.Hour {
		t.Errorf("EndTime = %v", res.EndTime)
	}
}

func TestStarvedJobRunsSlower(t *testing.T) {
	// 1 core vs the 3-core optimum: resnet50's ramp floor stretches the run.
	fast := mustRun(t, testOptions(), sched.NewFIFO(),
		[]*job.Job{gpuJob(1, 0, "resnet50", 3, 1, time.Hour)})
	slow := mustRun(t, testOptions(), sched.NewFIFO(),
		[]*job.Job{gpuJob(1, 0, "resnet50", 1, 1, time.Hour)})
	if slow.Jobs[1].EndToEnd() <= fast.Jobs[1].EndToEnd()*3/2 {
		t.Errorf("starved run %v not much slower than optimal %v",
			slow.Jobs[1].EndToEnd(), fast.Jobs[1].EndToEnd())
	}
}

func TestQueueTimeRecorded(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	opts.Cluster.GPUsPerNode = 1
	jobs := []*job.Job{
		gpuJob(1, 0, "resnet50", 3, 1, time.Hour),
		gpuJob(2, 0, "resnet50", 3, 1, time.Hour),
	}
	res := mustRun(t, opts, sched.NewFIFO(), jobs)
	if got := res.Jobs[2].QueueTime(); got < 50*time.Minute {
		t.Errorf("job 2 QueueTime = %v, want ~1h (waits for job 1)", got)
	}
	if res.GPUQueue.Len() != 2 {
		t.Errorf("GPUQueue samples = %d, want 2", res.GPUQueue.Len())
	}
}

func TestDeterminism(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 300, 100
	cfg.Duration = 24 * time.Hour
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() Summary {
		jobsCopy := make([]*job.Job, len(jobs))
		for i, j := range jobs {
			jobsCopy[i] = j.Clone()
		}
		return mustRun(t, testOptions(), sched.NewFIFO(), jobsCopy).Summarize()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic summaries:\n%+v\n%+v", a, b)
	}
}

func TestAllJobsEventuallyComplete(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 400, 150
	cfg.Duration = 48 * time.Hour
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Cluster.Nodes = 8
	d, err := sched.NewDRF(opts.Cluster.Nodes*opts.Cluster.CoresPerNode,
		opts.Cluster.Nodes*opts.Cluster.GPUsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, opts, d, jobs)
	for id, js := range res.Jobs {
		if !js.Completed {
			t.Errorf("job %d never completed (started=%v)", id, js.Started)
		}
		if js.Started && js.FirstStart < js.Arrival {
			t.Errorf("job %d started before arrival", id)
		}
	}
	sm := res.Summarize()
	if sm.GPUJobsDone != 150 || sm.CPUJobsDone != 400 {
		t.Errorf("completions = %+v", sm)
	}
}

func TestSeriesSampled(t *testing.T) {
	jobs := []*job.Job{gpuJob(1, 0, "vgg16", 4, 1, 30*time.Minute)}
	res := mustRun(t, testOptions(), sched.NewFIFO(), jobs)
	if res.GPUActive.Len() == 0 || res.GPUUtilSeries.Len() == 0 {
		t.Fatal("series not sampled")
	}
	// With one 1-GPU job on 16 GPUs, active rate is 1/16 while running.
	if got := res.GPUActive.Max(); got < 1.0/16-1e-9 || got > 1.0/16+1e-9 {
		t.Errorf("GPUActive.Max = %g, want 1/16", got)
	}
	// vgg16 at its optimum should show its peak utilization (~0.97).
	if got := res.GPUUtilSeries.Max(); got < 0.9 {
		t.Errorf("GPUUtilSeries.Max = %g, want ~0.97", got)
	}
}

func TestContentionSlowsTrainingJob(t *testing.T) {
	// A BAT job (bandwidth-sensitive) co-located with a huge hog must run
	// slower than alone.
	opts := testOptions()
	opts.Cluster.Nodes = 1
	alone := mustRun(t, opts, sched.NewFIFO(),
		[]*job.Job{gpuJob(1, 0, "bat", 5, 1, time.Hour)})
	contended := mustRun(t, opts, sched.NewFIFO(), []*job.Job{
		gpuJob(1, 0, "bat", 5, 1, time.Hour),
		hogJob(2, 0, 16, 130, 4*time.Hour),
	})
	if contended.Jobs[1].EndToEnd() <= alone.Jobs[1].EndToEnd()+10*time.Minute {
		t.Errorf("contended run %v not slower than alone %v",
			contended.Jobs[1].EndToEnd(), alone.Jobs[1].EndToEnd())
	}
}

// envScheduler exposes the Env to the test for direct API exercises.
type envScheduler struct {
	env  sched.Env
	auto bool // start every submitted job first-fit
}

func (e *envScheduler) Name() string            { return "env-test" }
func (e *envScheduler) Bind(env sched.Env)      { e.env = env }
func (e *envScheduler) OnJobCompleted(*job.Job) {}
func (e *envScheduler) OnJobKilled(*job.Job)    {}
func (e *envScheduler) Tick()                   {}
func (e *envScheduler) Submit(j *job.Job) {
	if !e.auto {
		return
	}
	alloc, ok := sched.PlaceRequest(e.env.Cluster(), j.Request, false)
	if !ok {
		return
	}
	_ = e.env.StartJob(j.ID, alloc)
}

func TestEnvResizeJob(t *testing.T) {
	es := &envScheduler{auto: true}
	jobs := []*job.Job{gpuJob(1, 0, "alexnet", 2, 1, 2*time.Hour)}
	simulator, err := New(testOptions(), es, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Drive manually: run a few events, then resize mid-flight.
	done := make(chan *Result, 1)
	go func() {
		res, err := simulator.Run()
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	res := <-done
	// Job ran at 2 cores the whole time (no resize here): alexnet's
	// 2-core speed is poor, so the run takes much longer than 2h.
	if got := res.Jobs[1].EndToEnd(); got < 4*time.Hour {
		t.Errorf("EndToEnd = %v, want slow 2-core run", got)
	}
}

// resizeOnTick grows a job's cores on the first tick.
type resizeOnTick struct {
	envScheduler
	resized bool
	target  job.ID
	cores   int
	err     error
}

func (r *resizeOnTick) Tick() {
	if r.resized {
		return
	}
	r.resized = true
	r.err = r.env.ResizeJob(r.target, r.cores)
}

func TestEnvResizeSpeedsUpJob(t *testing.T) {
	rs := &resizeOnTick{envScheduler: envScheduler{auto: true}, target: 1, cores: 6}
	jobs := []*job.Job{gpuJob(1, 0, "alexnet", 2, 1, 2*time.Hour)}
	simulator, err := New(testOptions(), rs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rs.err != nil {
		t.Fatalf("resize failed: %v", rs.err)
	}
	// With 6 cores (the optimum) from t=30s on, the job finishes near 2h.
	if got := res.Jobs[1].EndToEnd(); got > 2*time.Hour+10*time.Minute {
		t.Errorf("EndToEnd = %v, want ~2h after resize", got)
	}
	if res.Jobs[1].Resizes != 1 || res.Jobs[1].FinalCores != 6 {
		t.Errorf("stats = %+v", res.Jobs[1])
	}
}

// preemptOnTick preempts a CPU job on the first tick and never requeues it
// until the second tick.
type preemptOnTick struct {
	envScheduler
	target    job.ID
	preempted *job.Job
	err       error
	step      int
}

func (p *preemptOnTick) Tick() {
	p.step++
	switch p.step {
	case 1:
		p.preempted, p.err = p.env.PreemptJob(p.target)
	case 2:
		if p.preempted != nil {
			alloc, ok := sched.PlaceRequest(p.env.Cluster(), p.preempted.Request, false)
			if ok {
				_ = p.env.StartJob(p.preempted.ID, alloc)
			}
		}
	}
}

func TestEnvPreemptJob(t *testing.T) {
	ps := &preemptOnTick{envScheduler: envScheduler{auto: true}, target: 1}
	jobs := []*job.Job{cpuJob(1, 0, 2, 10*time.Minute)}
	simulator, err := New(testOptions(), ps, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ps.err != nil {
		t.Fatalf("preempt failed: %v", ps.err)
	}
	if ps.preempted == nil || ps.preempted.Work >= 10*time.Minute {
		t.Fatalf("preempted clone = %+v", ps.preempted)
	}
	js := res.Jobs[1]
	if !js.Completed || js.Preemptions != 1 {
		t.Errorf("stats = %+v", js)
	}
	if res.Preemptions != 1 {
		t.Errorf("Preemptions = %d", res.Preemptions)
	}
}

// preemptGPU tries to preempt a training job (must fail).
type preemptGPU struct {
	envScheduler
	tried bool
	err   error
}

func (p *preemptGPU) Tick() {
	if p.tried {
		return
	}
	p.tried = true
	_, p.err = p.env.PreemptJob(1)
}

func TestEnvPreemptRejectsGPUJobs(t *testing.T) {
	pg := &preemptGPU{envScheduler: envScheduler{auto: true}}
	jobs := []*job.Job{gpuJob(1, 0, "resnet50", 3, 1, 10*time.Minute)}
	simulator, err := New(testOptions(), pg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
	if pg.err == nil {
		t.Error("preempting a GPU job should fail")
	}
}

// throttleOnTick throttles a hog once.
type throttleOnTick struct {
	envScheduler
	done bool
	err  error
}

func (th *throttleOnTick) Tick() {
	if th.done {
		return
	}
	th.done = true
	th.err = th.env.ThrottleJob(2, 10)
}

func TestEnvThrottleSlowsHog(t *testing.T) {
	opts := testOptions()
	opts.Cluster.Nodes = 1
	base := mustRun(t, opts, &envScheduler{auto: true},
		[]*job.Job{hogJob(2, 0, 16, 80, time.Hour)})
	th := &throttleOnTick{envScheduler: envScheduler{auto: true}}
	simulator, err := New(opts, th, []*job.Job{hogJob(2, 0, 16, 80, time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulator.Run()
	if err != nil {
		t.Fatal(err)
	}
	if th.err != nil {
		t.Fatalf("throttle failed: %v", th.err)
	}
	if res.Throttles != 1 {
		t.Errorf("Throttles = %d", res.Throttles)
	}
	// Capped at 10 of 80 GB/s demand, the hog runs ~8x slower.
	if res.Jobs[2].EndToEnd() < base.Jobs[2].EndToEnd()*4 {
		t.Errorf("throttled run %v vs base %v: not slowed enough",
			res.Jobs[2].EndToEnd(), base.Jobs[2].EndToEnd())
	}
}

// gpuUtilReader samples GPUUtil on each tick.
type gpuUtilReader struct {
	envScheduler
	samples []float64
}

func (g *gpuUtilReader) Tick() {
	if u, err := g.env.GPUUtil(1); err == nil {
		g.samples = append(g.samples, u)
	}
}

func TestEnvGPUUtilObservation(t *testing.T) {
	gr := &gpuUtilReader{envScheduler: envScheduler{auto: true}}
	jobs := []*job.Job{gpuJob(1, 0, "vgg16", 4, 1, 30*time.Minute)}
	simulator, err := New(testOptions(), gr, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
	if len(gr.samples) == 0 {
		t.Fatal("no GPU util samples")
	}
	for _, u := range gr.samples {
		// vgg16 at optimum: peak util 0.97 ± 1% noise.
		if u < 0.94 || u > 1.0 {
			t.Errorf("util sample = %g, want ~0.97", u)
		}
	}
}

func TestFragmentationMetric(t *testing.T) {
	// One node: a running job takes all cores but leaves GPUs free; a
	// pending GPU job cannot be served -> fragmentation.
	opts := testOptions()
	opts.Cluster.Nodes = 1
	opts.Cluster.CoresPerNode = 8
	jobs := []*job.Job{
		gpuJob(1, 0, "resnet50", 8, 1, 2*time.Hour), // hogs all cores
		gpuJob(2, time.Minute, "resnet50", 2, 1, time.Hour),
	}
	res := mustRun(t, opts, sched.NewFIFO(), jobs)
	if res.FragSeries.Max() <= 0 {
		t.Error("expected non-zero fragmentation while job 2 waits")
	}
}

func TestMaxVirtualTimeCap(t *testing.T) {
	opts := testOptions()
	opts.MaxVirtualTime = 10 * time.Minute
	jobs := []*job.Job{gpuJob(1, 0, "resnet50", 3, 1, 5*time.Hour)}
	res := mustRun(t, opts, sched.NewFIFO(), jobs)
	if res.Jobs[1].Completed {
		t.Error("job should not complete under the time cap")
	}
	if res.EndTime > 11*time.Minute {
		t.Errorf("EndTime = %v, want <= cap", res.EndTime)
	}
}

func TestStartJobValidation(t *testing.T) {
	es := &envScheduler{}
	simulator, err := New(testOptions(), es, []*job.Job{gpuJob(1, 0, "resnet50", 3, 2, time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	// Run one arrival by hand: Run() processes the arrival, scheduler does
	// nothing, job stays pending, sim hits idle-never state... use the cap.
	simulator.opts.MaxVirtualTime = time.Minute
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
	// Not pending anymore? It is: scheduler never started it.
	if err := simulator.StartJob(99, job.Allocation{NodeIDs: []int{0}, CPUCores: 1}); err == nil {
		t.Error("starting unknown job should fail")
	}
	// Wrong node count for the request.
	if err := simulator.StartJob(1, job.Allocation{NodeIDs: []int{0, 1}, CPUCores: 3, GPUs: 1}); err == nil {
		t.Error("node-count mismatch should fail")
	}
	// Wrong GPU share.
	if err := simulator.StartJob(1, job.Allocation{NodeIDs: []int{0}, CPUCores: 3, GPUs: 1}); err == nil {
		t.Error("GPU mismatch should fail (wants 2 per node)")
	}
	// Correct allocation works.
	if err := simulator.StartJob(1, job.Allocation{NodeIDs: []int{0}, CPUCores: 3, GPUs: 2}); err != nil {
		t.Errorf("valid start failed: %v", err)
	}
}

func TestClusterInvariantsAfterRun(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.CPUJobs, cfg.GPUJobs = 200, 80
	cfg.Duration = 24 * time.Hour
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	simulator, err := New(testOptions(), sched.NewFIFO(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulator.Run(); err != nil {
		t.Fatal(err)
	}
	if err := simulator.cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if used := simulator.cluster.UsedCores(); used != 0 {
		t.Errorf("cluster still holds %d cores after drain", used)
	}
}

func TestWindowMean(t *testing.T) {
	var s Result
	_ = s.GPUActive.Add(0, 1)
	_ = s.GPUActive.Add(time.Hour, 3)
	_ = s.GPUActive.Add(2*time.Hour, 100)
	if got := WindowMean(&s.GPUActive, time.Hour); got != 2 {
		t.Errorf("WindowMean = %g, want 2", got)
	}
	if got := WindowMean(&s.GPUActive, -time.Second); got != 0 {
		t.Errorf("WindowMean(empty window) = %g, want 0", got)
	}
}
