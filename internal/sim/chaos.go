package sim

import (
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/job"
)

// This file is the simulator side of the fault injector: it applies the
// pre-compiled chaos schedule (node crashes, telemetry dropouts,
// stragglers), arms per-job injected failures, and runs the kill →
// backoff → requeue → terminal-failure lifecycle. Everything happens in
// sim-time through the ordinary event heap, so chaotic runs stay
// bit-reproducible under the same seeds.

// handleFault applies one compiled fault.
func (s *Simulator) handleFault(f chaos.Fault) {
	switch f.Kind {
	case chaos.KindNodeCrash:
		s.crashNode(f.Node)
	case chaos.KindNodeRecover:
		if s.downDepth[f.Node] > 0 {
			s.downDepth[f.Node]--
		}
		if s.downDepth[f.Node] == 0 {
			s.setNodeState(f.Node, cluster.NodeUp)
			s.results.Faults.NodeRecoveries++
			// Capacity returned: let the scheduler place waiting work now
			// instead of at the next cadence tick.
			s.scheduler.Tick()
		}
	case chaos.KindNodeDrain:
		// Draining keeps resident jobs; it only stops new placements. An
		// already-down node stays down (crash wins until recovery).
		if s.downDepth[f.Node] == 0 {
			s.setNodeState(f.Node, cluster.NodeDraining)
		}
	case chaos.KindNodeUndrain:
		if s.downDepth[f.Node] == 0 {
			s.setNodeState(f.Node, cluster.NodeUp)
			s.scheduler.Tick()
		}
	case chaos.KindMembwDark:
		s.darkDepth[f.Node]++
		if s.darkDepth[f.Node] == 1 {
			s.results.Faults.MembwDropouts++
		}
	case chaos.KindMembwRestore:
		if s.darkDepth[f.Node] > 0 {
			s.darkDepth[f.Node]--
		}
	case chaos.KindStragglerStart:
		s.slowFactors[f.Node] = append(s.slowFactors[f.Node], f.Factor)
		s.results.Faults.Stragglers++
		s.refreshNodes([]int{f.Node})
	case chaos.KindStragglerEnd:
		s.dropSlowFactor(f.Node, f.Factor)
		s.refreshNodes([]int{f.Node})
	case chaos.KindControllerKill:
		// Kills replay deterministically from a checkpoint, so count ordinals:
		// only a kill beyond the ones this process already survived is fatal.
		// The counter itself always advances — a baseline run with
		// ExitOnControllerKill off tallies the same kills an interrupted-and-
		// resumed run does, which is what makes the two Results comparable
		// byte for byte.
		s.results.Faults.ControllerKills++
		if s.opts.ExitOnControllerKill && s.results.Faults.ControllerKills > s.killsSurvived {
			s.killed = true
		}
	case chaos.KindServeKill:
		// Count-only inside the engine: the control-plane drill harness
		// decides at which request ordinals the serving process actually
		// dies. Baseline and killed-and-recovered runs tally the same kills,
		// which keeps their Results byte-comparable.
		s.results.Faults.ServeKills++
	}
}

// crashNode takes a node down, killing every job with a share on it.
func (s *Simulator) crashNode(nid int) {
	s.downDepth[nid]++
	if s.downDepth[nid] > 1 {
		return // already down: nothing left to kill
	}
	s.results.Faults.NodeCrashes++
	n, err := s.cluster.Node(nid)
	if err != nil {
		return
	}
	// Mark the node down BEFORE killing its jobs: each kill notifies the
	// scheduler, which may immediately try to place pending work — and must
	// not land it on the node that is going away.
	s.setNodeState(nid, cluster.NodeDown)
	// Jobs spanning several nodes die entirely — a distributed training job
	// does not survive losing a worker. Node.Jobs() is sorted, so the kill
	// order (and therefore every downstream requeue) is deterministic.
	for _, id := range n.Jobs() {
		if r, ok := s.running[id]; ok {
			s.killJob(r)
		}
	}
}

// setNodeState transitions a node, panicking on impossible IDs (the
// schedule was validated against the cluster size at compile time).
func (s *Simulator) setNodeState(nid int, st cluster.NodeState) {
	if err := s.cluster.SetNodeState(nid, st); err != nil {
		panic(fmt.Sprintf("sim: set node %d %v: %v", nid, st, err))
	}
}

// dropSlowFactor removes one instance of a straggler factor from a node.
func (s *Simulator) dropSlowFactor(nid int, factor float64) {
	fs := s.slowFactors[nid]
	for i, f := range fs {
		//coda:ordered-ok exact match of a factor stored verbatim at straggler start
		if f == factor {
			s.slowFactors[nid] = append(fs[:i], fs[i+1:]...)
			return
		}
	}
}

// killJob aborts a running attempt: progress made in the attempt is lost
// goodput, resources are released, the scheduler drops its bookkeeping, and
// the job either waits out a backoff before requeuing or — past its retry
// budget — is terminally reported. Nothing is ever silently dropped.
func (s *Simulator) killJob(r *runningJob) {
	id := r.job.ID
	s.advance(r)
	lost := r.job.Work - r.remaining
	if lost < 0 {
		lost = 0
	}
	remaining := r.remaining
	s.stopJob(r)
	s.results.noteKill(id, lost)
	s.scheduler.OnJobKilled(r.job)

	s.retries[id]++
	if s.retries[id] > s.opts.Faults.Retries() {
		s.terminalJobs++
		delete(s.startedOnce, id)
		s.results.noteTerminal(id, remaining)
		return
	}
	// Retry from scratch: the attempt's progress is gone, so the clone
	// carries the full work of the killed attempt.
	clone := r.job.Clone()
	clone.Work = r.job.Work
	s.retrying[id] = clone
	s.touchJob(id)
	s.pushEvent(event{
		at:    s.now + s.opts.Faults.Backoff(s.retries[id]),
		kind:  evResubmit,
		jobID: id,
	})
}

// handleResubmit moves a killed job from backoff back into the pending
// queue at its scheduler's array head.
func (s *Simulator) handleResubmit(id job.ID) {
	j, ok := s.retrying[id]
	if !ok {
		return
	}
	delete(s.retrying, id)
	s.pending[id] = j
	s.touchJob(id)
	s.results.Faults.Requeues++
	s.results.noteRequeue(id)
	s.scheduler.Submit(j)
}

// armJobFailure schedules the injected mid-run failure of a doomed job's
// current attempt, a fixed fraction of the attempt's work in. The draw is a
// pure hash of (plan seed, job ID): whether a job is doomed never depends
// on scheduling. The failure fires once per job — attempts after the first
// strike run clean.
func (s *Simulator) armJobFailure(r *runningJob) {
	if !s.chaosOn || s.failedOnce[r.job.ID] {
		return
	}
	frac, doomed := s.opts.Faults.JobFailure(r.job.ID)
	if !doomed {
		return
	}
	// Delay in wall-clock sim time at the current speed; if the job speeds
	// up later the failure still lands before completion because progress
	// can only take longer than frac*Work at speeds <= 1.
	delay := time.Duration(frac * float64(r.job.Work))
	if delay < time.Millisecond {
		delay = time.Millisecond
	}
	s.pushEvent(event{at: s.now + delay, kind: evJobFail, jobID: r.job.ID, run: r})
}

// handleJobFailure delivers an injected failure if the pinned attempt is
// still the one running.
func (s *Simulator) handleJobFailure(id job.ID, run *runningJob) {
	r, ok := s.running[id]
	if !ok || r != run {
		return // attempt already over (completed, preempted, crash-killed)
	}
	s.failedOnce[id] = true
	s.results.Faults.JobFailures++
	s.killJob(r)
}
