package sim

import (
	"errors"
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/sched"
)

// This file is the simulator's control-plane surface (Options.Service): an
// online scheduler service drives the engine incrementally with RunUntil,
// injects arrivals/faults/cancellations at the current virtual time, and
// finalizes explicitly with Finish. Every mutation happens between events on
// the single-threaded engine, so a WAL replay of the same call sequence at
// the same virtual times reproduces the run bit for bit.

// ErrNotService is returned by every service-mode entry point when the
// simulator was built without Options.Service.
var ErrNotService = errors.New("sim: service-mode call on a batch simulator")

// RunUntil processes every queued event with timestamp <= t, then advances
// virtual time to exactly t. Calling RunUntil(t1) then RunUntil(t2) is
// bit-identical to calling RunUntil(t2) once: the event stream, not the
// call boundaries, determines the run. t must not be in the past.
func (s *Simulator) RunUntil(t time.Duration) error {
	if !s.opts.Service {
		return ErrNotService
	}
	if t < s.now {
		return fmt.Errorf("sim: RunUntil(%v) is in the past (now %v)", t, s.now)
	}
	s.bootstrap()
	for {
		next := s.events.peek()
		if next == nil || next.at > t {
			break
		}
		e := s.events.pop()
		if e == nil {
			return errors.New("sim: corrupt event queue")
		}
		s.dispatch(e)
		if err := s.postEvent(e.kind); err != nil {
			return err
		}
		s.recycleEvent(e)
	}
	s.now = t
	return nil
}

// InjectArrival admits a job at the current virtual time. The job's Arrival
// is overwritten with now; its ID must be new to the run. The arrival event
// is queued at now and delivered by the next RunUntil.
func (s *Simulator) InjectArrival(j *job.Job) error {
	if !s.opts.Service {
		return ErrNotService
	}
	if j == nil {
		return errors.New("sim: inject arrival: nil job")
	}
	j.Arrival = s.now
	if err := j.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if s.jobKnown(j.ID) {
		return fmt.Errorf("sim: inject arrival: job %d already exists", j.ID)
	}
	s.arrivalsLeft++
	s.admitted++
	if j.Arrival > s.lastArrival {
		s.lastArrival = j.Arrival
		s.results.LastArrival = s.lastArrival
	}
	s.pushEvent(event{at: s.now, kind: evArrival, job: j})
	return nil
}

// jobKnown reports whether any lifecycle state (live or historical) already
// uses the ID.
func (s *Simulator) jobKnown(id job.ID) bool {
	if _, ok := s.pending[id]; ok {
		return true
	}
	if _, ok := s.running[id]; ok {
		return true
	}
	if _, ok := s.retrying[id]; ok {
		return true
	}
	_, ok := s.results.Jobs[id]
	return ok
}

// InjectFault queues one fault at the current virtual time; the node
// drain/leave/join API routes through this. Node-scoped kinds are validated
// against the cluster size.
func (s *Simulator) InjectFault(f chaos.Fault) error {
	if !s.opts.Service {
		return ErrNotService
	}
	switch f.Kind {
	case chaos.KindNodeCrash, chaos.KindNodeRecover, chaos.KindNodeDrain,
		chaos.KindNodeUndrain, chaos.KindMembwDark, chaos.KindMembwRestore:
		if f.Node < 0 || f.Node >= s.opts.Cluster.TotalNodes() {
			return fmt.Errorf("sim: inject fault: node %d out of range [0, %d)", f.Node, s.opts.Cluster.TotalNodes())
		}
	case chaos.KindStragglerStart, chaos.KindStragglerEnd:
		if f.Node < 0 || f.Node >= s.opts.Cluster.TotalNodes() {
			return fmt.Errorf("sim: inject fault: node %d out of range [0, %d)", f.Node, s.opts.Cluster.TotalNodes())
		}
		if f.Factor <= 0 || f.Factor >= 1 {
			return fmt.Errorf("sim: inject fault: straggler factor %g out of (0, 1)", f.Factor)
		}
	case chaos.KindControllerKill, chaos.KindServeKill:
		// Process-level: no node target.
	default:
		return fmt.Errorf("sim: inject fault: unknown kind %v", f.Kind)
	}
	f.At = s.now
	s.faultsLeft++
	s.pushEvent(event{at: s.now, kind: evFault, fault: f})
	return nil
}

// CancelJob removes a job from the run at the current virtual time. A
// running job is stopped (its resources released, the scheduler notified via
// OnJobKilled); a queued job additionally requires the scheduler to
// implement sched.Canceller; a job waiting out a retry backoff is simply
// forgotten (its evResubmit event goes stale). Cancelling a finished or
// unknown job is a deterministic error — the same WAL replays to the same
// rejection.
func (s *Simulator) CancelJob(id job.ID) error {
	if !s.opts.Service {
		return ErrNotService
	}
	if r, ok := s.running[id]; ok {
		s.advance(r)
		s.stopJob(r)
		s.cancelledJobs++
		delete(s.startedOnce, id)
		s.results.noteCancel(id)
		s.scheduler.OnJobKilled(r.job)
		return nil
	}
	if j, ok := s.pending[id]; ok {
		c, ok := s.scheduler.(sched.Canceller)
		if !ok {
			return fmt.Errorf("sim: scheduler %q cannot cancel queued jobs", s.scheduler.Name())
		}
		delete(s.pending, id)
		s.touchJob(id)
		s.cancelledJobs++
		delete(s.startedOnce, id)
		s.results.noteCancel(id)
		c.OnJobCancelled(j)
		return nil
	}
	if _, ok := s.retrying[id]; ok {
		delete(s.retrying, id)
		s.touchJob(id)
		s.cancelledJobs++
		delete(s.startedOnce, id)
		s.results.noteCancel(id)
		return nil
	}
	return fmt.Errorf("sim: cancel job %d: not pending, running or retrying", id)
}

// Job lifecycle phases reported by JobPhase.
const (
	PhaseUnknown   = ""
	PhasePending   = "pending"
	PhaseRunning   = "running"
	PhaseRetrying  = "retrying"
	PhaseCompleted = "completed"
	PhaseTerminal  = "terminal"
	PhaseCancelled = "cancelled"
)

// JobPhase reports where a job currently is in its lifecycle, or
// PhaseUnknown for an ID the run has never seen.
func (s *Simulator) JobPhase(id job.ID) string {
	if _, ok := s.pending[id]; ok {
		return PhasePending
	}
	if _, ok := s.running[id]; ok {
		return PhaseRunning
	}
	if _, ok := s.retrying[id]; ok {
		return PhaseRetrying
	}
	if js, ok := s.results.Jobs[id]; ok {
		switch {
		case js.Cancelled:
			return PhaseCancelled
		case js.Completed:
			return PhaseCompleted
		case js.TerminallyFailed:
			return PhaseTerminal
		}
	}
	return PhaseUnknown
}

// JobPlacement returns a copy of a running job's node IDs (nil when the job
// is not running).
func (s *Simulator) JobPlacement(id job.ID) []int {
	r, ok := s.running[id]
	if !ok {
		return nil
	}
	return append([]int(nil), r.alloc.NodeIDs...)
}

// ServiceStats is a point-in-time snapshot of the service's lifecycle
// counters, for /metrics.
type ServiceStats struct {
	Now       time.Duration
	Pending   int
	Running   int
	Retrying  int
	Completed int
	Terminal  int
	Cancelled int
	Events    int64
}

// Stats snapshots the current lifecycle counters.
func (s *Simulator) Stats() ServiceStats {
	return ServiceStats{
		Now:       s.now,
		Pending:   len(s.pending),
		Running:   len(s.running),
		Retrying:  len(s.retrying),
		Completed: s.completedJobs,
		Terminal:  s.terminalJobs,
		Cancelled: s.cancelledJobs,
		Events:    s.results.Events,
	}
}

// Finish finalizes the run and returns its results. Unlike Run, it does not
// wait for idleness — the service decides when the run is over.
func (s *Simulator) Finish() (*Result, error) {
	if !s.opts.Service {
		return nil, ErrNotService
	}
	s.finalize()
	return s.results, nil
}
