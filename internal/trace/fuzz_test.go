package trace

import (
	"bytes"
	"testing"
)

// FuzzRead drives the JSON-lines trace parser with arbitrary input. Two
// properties must hold for every input:
//
//  1. Read never panics — malformed traces fail with an error.
//  2. Anything Read accepts survives a Write/Read round trip unchanged in
//     count and validity (the codec is self-consistent).
func FuzzRead(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"id":1,"kind":"cpu","tenant":2,"cpuCores":8,"nodes":1,"arrivalMillis":0,"workMillis":3600000,"bandwidthGBs":2.4}`),
		[]byte(`{"id":2,"kind":"gpu-training","tenant":1,"category":"cv","model":"resnet50","batchSize":64,"cpuCores":6,"gpus":2,"nodes":1,"arrivalMillis":60000,"workMillis":7200000}`),
		[]byte(`{"id":3,"kind":"bandwidth-hog","tenant":3,"cpuCores":16,"nodes":1,"arrivalMillis":0,"workMillis":1000,"bandwidthGBs":120}`),
		[]byte("{\"id\":1,\"kind\":\"cpu\",\"tenant\":1,\"cpuCores\":1,\"nodes\":1,\"arrivalMillis\":0,\"workMillis\":1}\n{\"id\":2,\"kind\":\"cpu\",\"tenant\":1,\"cpuCores\":1,\"nodes\":1,\"arrivalMillis\":5,\"workMillis\":1}"),
		[]byte(`{"id":"not-a-number","kind":"cpu"}`),
		[]byte(`{"id":4,"kind":"quantum","tenant":1,"cpuCores":1,"nodes":1}`),
		[]byte(`{"id":5,"kind":"cpu","tenant":1,"category":"astrology","cpuCores":1,"nodes":1}`),
		[]byte(`{"id":6,"kind":"cpu","tenant":1,"cpuCores":-3,"nodes":1,"arrivalMillis":0,"workMillis":1}`),
		[]byte(`{"id":7,"kind":"cpu","tenant":1,"cpuCores":1,"nodes":1,"arrivalMillis":-9223372036854775808,"workMillis":9223372036854775807}`),
		[]byte(`not json at all`),
		[]byte(`[]`),
		[]byte(`{}`),
		[]byte(``),
		[]byte("\x00\xff\xfe"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		var buf bytes.Buffer
		if err := Write(&buf, jobs); err != nil {
			t.Fatalf("Write rejected jobs Read accepted: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again) != len(jobs) {
			t.Fatalf("round trip changed job count: %d -> %d", len(jobs), len(again))
		}
		for i := range jobs {
			if *again[i] != *jobs[i] {
				t.Fatalf("round trip changed job %d: %+v -> %+v", jobs[i].ID, *jobs[i], *again[i])
			}
		}
	})
}
