package trace

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

func TestSourceMatchesGenerate(t *testing.T) {
	cfg := smallConfig()
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := src.Total(), cfg.CPUJobs+cfg.GPUJobs; got != want {
		t.Fatalf("Total() = %d, want %d", got, want)
	}
	for i := 0; ; i++ {
		j, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if j == nil {
			if i != len(jobs) {
				t.Fatalf("source drained after %d jobs, Generate returned %d", i, len(jobs))
			}
			break
		}
		if i >= len(jobs) {
			t.Fatalf("source yielded more than Generate's %d jobs", len(jobs))
		}
		if !reflect.DeepEqual(j, jobs[i]) {
			t.Fatalf("job %d differs:\nsource:   %+v\ngenerate: %+v", i, j, jobs[i])
		}
	}
	if src.Remaining() != 0 {
		t.Errorf("Remaining() = %d after drain, want 0", src.Remaining())
	}
}

func TestSourceCursorResumeMidStream(t *testing.T) {
	cfg := smallConfig()
	cfg.CPUJobs, cfg.GPUJobs = 400, 150
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Emit part of the stream, checkpoint, then verify the resumed source
	// yields the identical remainder.
	for i := 0; i < 137; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	cur := src.CheckpointState()
	resumed, err := Resume(cur)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Remaining() != src.Remaining() {
		t.Fatalf("resumed Remaining() = %d, original %d", resumed.Remaining(), src.Remaining())
	}
	for i := 0; ; i++ {
		want, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		got, err := resumed.Next()
		if err != nil {
			t.Fatal(err)
		}
		if (want == nil) != (got == nil) {
			t.Fatalf("streams drained at different positions (job %d)", i)
		}
		if want == nil {
			break
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resumed job %d differs:\nresumed:  %+v\noriginal: %+v", i, got, want)
		}
	}
}

func TestSourceCursorJSONRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.CPUJobs, cfg.GPUJobs = 50, 20
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	cur := src.CheckpointState()
	data, err := json.Marshal(cur)
	if err != nil {
		t.Fatal(err)
	}
	var back Cursor
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, cur) {
		t.Fatalf("cursor JSON round trip changed state:\nbefore: %+v\nafter:  %+v", cur, back)
	}
	resumed, err := Resume(back)
	if err != nil {
		t.Fatal(err)
	}
	want, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-round-trip job differs: %+v vs %+v", got, want)
	}
}

func TestResumeRejectsBadCursors(t *testing.T) {
	cfg := smallConfig()
	cfg.CPUJobs, cfg.GPUJobs = 30, 10
	fresh := func() Cursor {
		src, err := NewSource(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := src.Next(); err != nil {
				t.Fatal(err)
			}
		}
		return src.CheckpointState()
	}
	tests := []struct {
		name   string
		mutate func(*Cursor)
	}{
		{"bad config", func(c *Cursor) { c.Config.Duration = 0 }},
		{"negative gpu left", func(c *Cursor) { c.GPULeft = -1 }},
		{"gpu left over total", func(c *Cursor) { c.GPULeft = cfg.GPUJobs + 1 }},
		{"inconsistent next id", func(c *Cursor) { c.NextID += 3 }},
		{"draws below fresh", func(c *Cursor) { c.GPUDraws = 0 }},
		{"fraction out of range", func(c *Cursor) { c.CPUFrac = 1.5 }},
		{"arrival past duration", func(c *Cursor) { c.GPUNext = cfg.Duration + time.Hour }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cur := fresh()
			tt.mutate(&cur)
			if _, err := Resume(cur); err == nil {
				t.Error("Resume accepted a corrupt cursor")
			}
		})
	}
}

func TestNewSourceRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 0
	if _, err := NewSource(cfg); err == nil {
		t.Error("NewSource accepted a zero-duration config")
	}
}

func TestSummarizeSourceMatchesSlice(t *testing.T) {
	cfg := smallConfig()
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SummarizeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if want := Summarize(jobs); !reflect.DeepEqual(got, want) {
		t.Fatalf("SummarizeSource = %+v\nSummarize      = %+v", got, want)
	}
}

func TestHourlyArrivalsSourceMatchesSlice(t *testing.T) {
	cfg := smallConfig()
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := HourlyArrivalsSource(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := HourlyArrivals(jobs, cfg.Duration, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("hourly bins differ:\nsource: %v\nslice:  %v", got, want)
	}

	// And with a filter: GPU jobs only.
	gpuOnly := func(j *job.Job) bool { return j.IsGPU() }
	src2, err := NewSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := HourlyArrivalsSource(src2, gpuOnly)
	if err != nil {
		t.Fatal(err)
	}
	if want2 := HourlyArrivals(jobs, cfg.Duration, gpuOnly); !reflect.DeepEqual(got2, want2) {
		t.Fatalf("filtered hourly bins differ:\nsource: %v\nslice:  %v", got2, want2)
	}
}
