// Streaming trace analysis: incremental accumulators behind Summarize and
// HourlyArrivals, plus Source-draining variants of both, so summarizing a
// 25M-job config never materializes a job slice. coda-trace's -count-only
// mode feeds one drain through both accumulators in a single pass.
package trace

import (
	"time"

	"github.com/coda-repro/coda/internal/job"
)

// StatsAccum incrementally accumulates the Stats of a job stream. The zero
// value is ready to use; call Observe per job, then Stats for the totals.
type StatsAccum struct {
	stats                        Stats
	multiNode, overHour, overTwo int
	req12, req310, reqOver       int
}

// Observe folds one job into the accumulator.
func (a *StatsAccum) Observe(j *job.Job) {
	a.stats.Jobs++
	switch j.Kind {
	case job.KindGPUTraining:
		a.stats.GPUJobs++
		if int(j.Tenant) <= NumTenants {
			a.stats.GPUJobsPerTenant[j.Tenant]++
		}
		switch c := j.Request.CPUCores; {
		case c <= 2:
			a.req12++
		case c <= 10:
			a.req310++
		default:
			a.reqOver++
		}
		if j.Request.Nodes > 1 {
			a.multiNode++
		}
		if j.Work > time.Hour {
			a.overHour++
		}
		if j.Work > 2*time.Hour {
			a.overTwo++
		}
	default:
		a.stats.CPUJobs++
		if j.Kind == job.KindBandwidthHog {
			a.stats.HogJobs++
		}
		if int(j.Tenant) <= NumTenants {
			a.stats.CPUJobsPerTenant[j.Tenant]++
		}
	}
}

// Stats finalizes and returns the accumulated statistics.
func (a *StatsAccum) Stats() Stats {
	s := a.stats
	if s.GPUJobs > 0 {
		n := float64(s.GPUJobs)
		s.ReqCores12 = float64(a.req12) / n
		s.ReqCores310 = float64(a.req310) / n
		s.ReqCoresOver10 = float64(a.reqOver) / n
		s.MultiNodeFraction = float64(a.multiNode) / n
		s.GPUJobsOverHour = float64(a.overHour) / n
		s.GPUJobsOverTwoHours = float64(a.overTwo) / n
	}
	return s
}

// HourlyBins incrementally accumulates HourlyArrivals histograms.
type HourlyBins struct {
	bins []int
}

// NewHourlyBins sizes a histogram for a trace span.
func NewHourlyBins(duration time.Duration) *HourlyBins {
	hours := int(duration / time.Hour)
	if duration%time.Hour != 0 {
		hours++
	}
	return &HourlyBins{bins: make([]int, hours)}
}

// Observe counts one job if it matches filter (nil counts all).
func (b *HourlyBins) Observe(j *job.Job, filter func(*job.Job) bool) {
	if filter != nil && !filter(j) {
		return
	}
	h := int(j.Arrival / time.Hour)
	if h >= 0 && h < len(b.bins) {
		b.bins[h]++
	}
}

// Bins returns the histogram (the accumulator's backing slice).
func (b *HourlyBins) Bins() []int { return b.bins }

// SummarizeSource drains src through a StatsAccum: Summarize without the
// slice. The source is consumed.
func SummarizeSource(src *Source) (Stats, error) {
	var a StatsAccum
	for {
		j, err := src.Next()
		if err != nil {
			return Stats{}, err
		}
		if j == nil {
			return a.Stats(), nil
		}
		a.Observe(j)
	}
}

// HourlyArrivalsSource drains src into an hourly arrival histogram over the
// source's configured duration. The source is consumed.
func HourlyArrivalsSource(src *Source, filter func(*job.Job) bool) ([]int, error) {
	b := NewHourlyBins(src.Config().Duration)
	for {
		j, err := src.Next()
		if err != nil {
			return nil, err
		}
		if j == nil {
			return b.Bins(), nil
		}
		b.Observe(j, filter)
	}
}
