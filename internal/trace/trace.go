// Package trace generates and serializes synthetic job traces matching the
// statistics the paper reports for its production cluster (§III, §VI-A):
// 100,000 jobs per month (75,000 CPU jobs, 25,000 DNN training jobs),
// diurnal CPU-job burstiness (Fig. 1), a requested-core distribution where
// 76.1% of GPU jobs ask for 1-2 cores and 15.3% ask for more than 10
// (Fig. 2d), mostly-NLP/Speech training jobs, 20 tenants with skewed
// submission counts (Fig. 12), and GPU-job runtimes where 68.5% exceed one
// hour and 39.6% exceed two (§VI-F). A fraction of CPU jobs are
// memory-bandwidth hogs standing in for the paper's HEAT benchmark (§VI-E
// evaluates with 0.5% bandwidth-intensive CPU jobs).
package trace

import (
	"fmt"
	"math"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

// Tenant roles (Fig. 2a: the research lab submits most GPU jobs, the AI
// companies most CPU jobs; §VI-C: users 15-20 submit only CPU jobs).
const (
	// NumTenants is the tenant count of Fig. 12.
	NumTenants = 20
	// FirstCPUOnlyTenant is the first tenant that submits only CPU jobs.
	FirstCPUOnlyTenant = 15
)

// Config parameterizes trace generation. The zero value is invalid; start
// from DefaultConfig.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Duration is the trace span (the paper uses one month).
	Duration time.Duration
	// CPUJobs and GPUJobs are the job counts.
	CPUJobs, GPUJobs int
	// HogFraction is the fraction of CPU jobs that are bandwidth hogs.
	HogFraction float64
	// DiurnalAmplitude in [0,1) shapes CPU-job arrival burstiness: 0 is a
	// flat rate; 0.9 concentrates arrivals around the daily peak.
	DiurnalAmplitude float64
	// GPUDiurnalAmplitude in [0,1) shapes GPU-job arrival burstiness (the
	// research lab submits during working hours; milder than CPU jobs'
	// user-facing burstiness).
	GPUDiurnalAmplitude float64
	// WeekendFactor in (0,1] scales arrival density on days 6 and 7 of
	// each week (Fig. 1 spans a week of a working cluster; weekends are
	// quieter). 1 disables the effect.
	WeekendFactor float64
	// UnderRequestFraction, MidRequestFraction, OverRequestFraction slice
	// GPU jobs into 1-2 core requesters, 3-10 core requesters and >10 core
	// requesters (must sum to 1).
	UnderRequestFraction, MidRequestFraction, OverRequestFraction float64
	// MaxBatchFraction is the fraction of training jobs using the model's
	// maximum batch size.
	MaxBatchFraction float64
	// NoCategoryFraction is the fraction of training jobs whose owner
	// discloses nothing (§V-B1 worst case).
	NoCategoryFraction float64
	// HintsFraction is the fraction of category-disclosing jobs that also
	// provide the optional hints.
	HintsFraction float64
	// MaxRequestCores caps per-node core requests at the node size so every
	// generated job is placeable on an empty node.
	MaxRequestCores int
}

// DefaultConfig reproduces the paper's one-month trace shape.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Duration:             30 * 24 * time.Hour,
		CPUJobs:              75000,
		GPUJobs:              25000,
		HogFraction:          0.005,
		DiurnalAmplitude:     0.7,
		GPUDiurnalAmplitude:  0.30,
		WeekendFactor:        0.75,
		UnderRequestFraction: 0.761,
		MidRequestFraction:   0.086,
		OverRequestFraction:  0.153,
		MaxBatchFraction:     0.2,
		NoCategoryFraction:   0.15,
		HintsFraction:        0.4,
		MaxRequestCores:      28,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("trace config: duration must be positive, got %v", c.Duration)
	}
	if c.CPUJobs < 0 || c.GPUJobs < 0 {
		return fmt.Errorf("trace config: negative job counts (%d cpu, %d gpu)", c.CPUJobs, c.GPUJobs)
	}
	if c.CPUJobs+c.GPUJobs == 0 {
		return fmt.Errorf("trace config: no jobs requested")
	}
	if c.HogFraction < 0 || c.HogFraction > 1 {
		return fmt.Errorf("trace config: hog fraction %g out of [0,1]", c.HogFraction)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("trace config: diurnal amplitude %g out of [0,1)", c.DiurnalAmplitude)
	}
	if c.GPUDiurnalAmplitude < 0 || c.GPUDiurnalAmplitude >= 1 {
		return fmt.Errorf("trace config: gpu diurnal amplitude %g out of [0,1)", c.GPUDiurnalAmplitude)
	}
	if c.WeekendFactor <= 0 || c.WeekendFactor > 1 {
		return fmt.Errorf("trace config: weekend factor %g out of (0,1]", c.WeekendFactor)
	}
	sum := c.UnderRequestFraction + c.MidRequestFraction + c.OverRequestFraction
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("trace config: request fractions sum to %g, want 1", sum)
	}
	for _, f := range []float64{c.MaxBatchFraction, c.NoCategoryFraction, c.HintsFraction} {
		if f < 0 || f > 1 {
			return fmt.Errorf("trace config: fraction %g out of [0,1]", f)
		}
	}
	if c.MaxRequestCores < 2 {
		return fmt.Errorf("trace config: max request cores must be >= 2, got %d", c.MaxRequestCores)
	}
	return nil
}

// modelMix weights the training-job model distribution: "Most of the GPU
// jobs are training NLP and SPEECH models" (§VI-A).
var modelMix = []struct {
	name   string
	weight float64
}{
	{"bat", 0.17},
	{"transformer", 0.20},
	{"wavenet", 0.15},
	{"deepspeech", 0.18},
	{"alexnet", 0.07},
	{"vgg16", 0.07},
	{"inception3", 0.08},
	{"resnet50", 0.08},
}

// configMix weights the training configurations.
var configMix = []struct {
	nodes, gpus int
	weight      float64
}{
	{1, 1, 0.48},
	{1, 2, 0.25},
	{1, 4, 0.17},
	{2, 8, 0.10},
}

// tenantGPUWeights skews GPU-job submissions: tenant 1 is the research lab
// (Fig. 2a) and dominates; tenants 15-20 never submit GPU jobs.
func tenantGPUWeights() []float64 {
	w := make([]float64, NumTenants)
	for i := 1; i <= NumTenants; i++ {
		if i >= FirstCPUOnlyTenant {
			continue
		}
		// Zipf-like decay over the GPU-submitting tenants.
		w[i-1] = 1 / math.Pow(float64(i), 0.8)
	}
	return w
}

// tenantCPUWeights skews CPU-job submissions toward the AI companies.
func tenantCPUWeights() []float64 {
	w := make([]float64, NumTenants)
	for i := 1; i <= NumTenants; i++ {
		// Companies (higher IDs) submit relatively more CPU work.
		w[i-1] = 0.4 + 0.6*float64(i)/NumTenants
	}
	return w
}

// gpuRuntime samples a training-job runtime matching §VI-F: 31.5% under an
// hour, 28.9% in one to two hours, 39.6% above two hours.
func gpuRuntime(st *stream) time.Duration {
	u := st.f64()
	logUniform := func(lo, hi time.Duration) time.Duration {
		l, h := math.Log(float64(lo)), math.Log(float64(hi))
		return time.Duration(math.Exp(l + st.f64()*(h-l)))
	}
	switch {
	case u < 0.315:
		return logUniform(6*time.Minute, time.Hour)
	case u < 0.315+0.289:
		return logUniform(time.Hour, 2*time.Hour)
	default:
		return logUniform(2*time.Hour, 12*time.Hour)
	}
}

// cpuRuntime samples a CPU-job runtime. The paper's CPU jobs are inference
// services and auxiliary processing whose load saturates the cluster's CPUs
// at the daily peak (Fig. 1 shows the CPU active rate reaching 100%), so
// they run minutes to hours, not seconds.
func cpuRuntime(st *stream) time.Duration {
	l, h := math.Log(float64(10*time.Minute)), math.Log(float64(4*time.Hour))
	return time.Duration(math.Exp(l + st.f64()*(h-l)))
}

// requestedCores samples the owner's per-node core request for a training
// job with the given per-node GPU count, following Fig. 2d's three bands.
// Requests are clamped to the node size so every job is placeable.
func requestedCores(st *stream, cfg Config, gpusPerNode int) int {
	u := st.f64()
	var cores int
	switch {
	case u < cfg.UnderRequestFraction:
		cores = 1 + st.intBelow(2) // 1-2 cores
	case u < cfg.UnderRequestFraction+cfg.MidRequestFraction:
		cores = 3 + st.intBelow(8) // 3-10 cores
	default:
		// Over-requesters scale their excess with the job size.
		cores = 11 + st.intBelow(8) + 2*gpusPerNode
	}
	if cores > cfg.MaxRequestCores {
		cores = cfg.MaxRequestCores
	}
	return cores
}

// Generate builds a deterministic synthetic trace by draining a streaming
// Source. Jobs are returned sorted by arrival time with IDs assigned in
// arrival order — byte-identical to iterating NewSource(cfg) manually.
func Generate(cfg Config) ([]*job.Job, error) {
	src, err := NewSource(cfg)
	if err != nil {
		return nil, err
	}
	jobs := make([]*job.Job, 0, src.Total())
	for {
		j, err := src.Next()
		if err != nil {
			return nil, err
		}
		if j == nil {
			return jobs, nil
		}
		jobs = append(jobs, j)
	}
}

// Stats summarizes a trace the way Fig. 2 does.
type Stats struct {
	// Jobs is the total count; CPUJobs/GPUJobs/HogJobs break it down.
	Jobs, CPUJobs, GPUJobs, HogJobs int
	// ReqCores12, ReqCores310, ReqCoresOver10 are the Fig. 2d fractions of
	// GPU jobs requesting 1-2, 3-10, and >10 cores.
	ReqCores12, ReqCores310, ReqCoresOver10 float64
	// GPUJobsPerTenant and CPUJobsPerTenant index by tenant ID (1-based;
	// index 0 unused).
	GPUJobsPerTenant, CPUJobsPerTenant [NumTenants + 1]int
	// MultiNodeFraction is the fraction of GPU jobs spanning nodes.
	MultiNodeFraction float64
	// GPUJobsOverHour / GPUJobsOverTwoHours are §VI-F's runtime fractions.
	GPUJobsOverHour, GPUJobsOverTwoHours float64
}

// Summarize computes trace statistics.
func Summarize(jobs []*job.Job) Stats {
	var a StatsAccum
	for _, j := range jobs {
		a.Observe(j)
	}
	return a.Stats()
}

// HourlyArrivals bins job arrivals into hours for Fig. 1-style plots.
// Only jobs matching filter are counted (nil counts all).
func HourlyArrivals(jobs []*job.Job, duration time.Duration, filter func(*job.Job) bool) []int {
	b := NewHourlyBins(duration)
	for _, j := range jobs {
		b.Observe(j, filter)
	}
	return b.Bins()
}
