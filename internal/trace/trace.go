// Package trace generates and serializes synthetic job traces matching the
// statistics the paper reports for its production cluster (§III, §VI-A):
// 100,000 jobs per month (75,000 CPU jobs, 25,000 DNN training jobs),
// diurnal CPU-job burstiness (Fig. 1), a requested-core distribution where
// 76.1% of GPU jobs ask for 1-2 cores and 15.3% ask for more than 10
// (Fig. 2d), mostly-NLP/Speech training jobs, 20 tenants with skewed
// submission counts (Fig. 12), and GPU-job runtimes where 68.5% exceed one
// hour and 39.6% exceed two (§VI-F). A fraction of CPU jobs are
// memory-bandwidth hogs standing in for the paper's HEAT benchmark (§VI-E
// evaluates with 0.5% bandwidth-intensive CPU jobs).
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/perfmodel"
)

// Tenant roles (Fig. 2a: the research lab submits most GPU jobs, the AI
// companies most CPU jobs; §VI-C: users 15-20 submit only CPU jobs).
const (
	// NumTenants is the tenant count of Fig. 12.
	NumTenants = 20
	// FirstCPUOnlyTenant is the first tenant that submits only CPU jobs.
	FirstCPUOnlyTenant = 15
)

// Config parameterizes trace generation. The zero value is invalid; start
// from DefaultConfig.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Duration is the trace span (the paper uses one month).
	Duration time.Duration
	// CPUJobs and GPUJobs are the job counts.
	CPUJobs, GPUJobs int
	// HogFraction is the fraction of CPU jobs that are bandwidth hogs.
	HogFraction float64
	// DiurnalAmplitude in [0,1) shapes CPU-job arrival burstiness: 0 is a
	// flat rate; 0.9 concentrates arrivals around the daily peak.
	DiurnalAmplitude float64
	// GPUDiurnalAmplitude in [0,1) shapes GPU-job arrival burstiness (the
	// research lab submits during working hours; milder than CPU jobs'
	// user-facing burstiness).
	GPUDiurnalAmplitude float64
	// WeekendFactor in (0,1] scales arrival density on days 6 and 7 of
	// each week (Fig. 1 spans a week of a working cluster; weekends are
	// quieter). 1 disables the effect.
	WeekendFactor float64
	// UnderRequestFraction, MidRequestFraction, OverRequestFraction slice
	// GPU jobs into 1-2 core requesters, 3-10 core requesters and >10 core
	// requesters (must sum to 1).
	UnderRequestFraction, MidRequestFraction, OverRequestFraction float64
	// MaxBatchFraction is the fraction of training jobs using the model's
	// maximum batch size.
	MaxBatchFraction float64
	// NoCategoryFraction is the fraction of training jobs whose owner
	// discloses nothing (§V-B1 worst case).
	NoCategoryFraction float64
	// HintsFraction is the fraction of category-disclosing jobs that also
	// provide the optional hints.
	HintsFraction float64
	// MaxRequestCores caps per-node core requests at the node size so every
	// generated job is placeable on an empty node.
	MaxRequestCores int
}

// DefaultConfig reproduces the paper's one-month trace shape.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Duration:             30 * 24 * time.Hour,
		CPUJobs:              75000,
		GPUJobs:              25000,
		HogFraction:          0.005,
		DiurnalAmplitude:     0.7,
		GPUDiurnalAmplitude:  0.30,
		WeekendFactor:        0.75,
		UnderRequestFraction: 0.761,
		MidRequestFraction:   0.086,
		OverRequestFraction:  0.153,
		MaxBatchFraction:     0.2,
		NoCategoryFraction:   0.15,
		HintsFraction:        0.4,
		MaxRequestCores:      28,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("trace config: duration must be positive, got %v", c.Duration)
	}
	if c.CPUJobs < 0 || c.GPUJobs < 0 {
		return fmt.Errorf("trace config: negative job counts (%d cpu, %d gpu)", c.CPUJobs, c.GPUJobs)
	}
	if c.CPUJobs+c.GPUJobs == 0 {
		return fmt.Errorf("trace config: no jobs requested")
	}
	if c.HogFraction < 0 || c.HogFraction > 1 {
		return fmt.Errorf("trace config: hog fraction %g out of [0,1]", c.HogFraction)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("trace config: diurnal amplitude %g out of [0,1)", c.DiurnalAmplitude)
	}
	if c.GPUDiurnalAmplitude < 0 || c.GPUDiurnalAmplitude >= 1 {
		return fmt.Errorf("trace config: gpu diurnal amplitude %g out of [0,1)", c.GPUDiurnalAmplitude)
	}
	if c.WeekendFactor <= 0 || c.WeekendFactor > 1 {
		return fmt.Errorf("trace config: weekend factor %g out of (0,1]", c.WeekendFactor)
	}
	sum := c.UnderRequestFraction + c.MidRequestFraction + c.OverRequestFraction
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("trace config: request fractions sum to %g, want 1", sum)
	}
	for _, f := range []float64{c.MaxBatchFraction, c.NoCategoryFraction, c.HintsFraction} {
		if f < 0 || f > 1 {
			return fmt.Errorf("trace config: fraction %g out of [0,1]", f)
		}
	}
	if c.MaxRequestCores < 2 {
		return fmt.Errorf("trace config: max request cores must be >= 2, got %d", c.MaxRequestCores)
	}
	return nil
}

// modelMix weights the training-job model distribution: "Most of the GPU
// jobs are training NLP and SPEECH models" (§VI-A).
var modelMix = []struct {
	name   string
	weight float64
}{
	{"bat", 0.17},
	{"transformer", 0.20},
	{"wavenet", 0.15},
	{"deepspeech", 0.18},
	{"alexnet", 0.07},
	{"vgg16", 0.07},
	{"inception3", 0.08},
	{"resnet50", 0.08},
}

// configMix weights the training configurations.
var configMix = []struct {
	nodes, gpus int
	weight      float64
}{
	{1, 1, 0.48},
	{1, 2, 0.25},
	{1, 4, 0.17},
	{2, 8, 0.10},
}

// tenantGPUWeights skews GPU-job submissions: tenant 1 is the research lab
// (Fig. 2a) and dominates; tenants 15-20 never submit GPU jobs.
func tenantGPUWeights() []float64 {
	w := make([]float64, NumTenants)
	for i := 1; i <= NumTenants; i++ {
		if i >= FirstCPUOnlyTenant {
			continue
		}
		// Zipf-like decay over the GPU-submitting tenants.
		w[i-1] = 1 / math.Pow(float64(i), 0.8)
	}
	return w
}

// tenantCPUWeights skews CPU-job submissions toward the AI companies.
func tenantCPUWeights() []float64 {
	w := make([]float64, NumTenants)
	for i := 1; i <= NumTenants; i++ {
		// Companies (higher IDs) submit relatively more CPU work.
		w[i-1] = 0.4 + 0.6*float64(i)/NumTenants
	}
	return w
}

// pick samples an index from weights.
func pick(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// diurnalArrival samples an arrival time whose daily profile follows
// 1 + amplitude*sin(2π(t/day - 1/4)) — peaking at midday — scaled by
// weekendFactor on days 6-7 of each week, via rejection sampling
// (Fig. 1's CPU activity pattern).
func diurnalArrival(rng *rand.Rand, duration time.Duration, amplitude, weekendFactor float64) time.Duration {
	//coda:ordered-ok fast-path gate on a config constant, not a computed float
	if amplitude == 0 && weekendFactor >= 1 {
		return time.Duration(rng.Int63n(int64(duration)))
	}
	day := float64(24 * time.Hour)
	for {
		t := rng.Float64() * float64(duration)
		phase := t/day - 0.25
		density := (1 + amplitude*math.Sin(2*math.Pi*phase)) / (1 + amplitude)
		if dayOfWeek := int(t/day) % 7; dayOfWeek >= 5 {
			density *= weekendFactor
		}
		if rng.Float64() <= density {
			return time.Duration(t)
		}
	}
}

// gpuRuntime samples a training-job runtime matching §VI-F: 31.5% under an
// hour, 28.9% in one to two hours, 39.6% above two hours.
func gpuRuntime(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	logUniform := func(lo, hi time.Duration) time.Duration {
		l, h := math.Log(float64(lo)), math.Log(float64(hi))
		return time.Duration(math.Exp(l + rng.Float64()*(h-l)))
	}
	switch {
	case u < 0.315:
		return logUniform(6*time.Minute, time.Hour)
	case u < 0.315+0.289:
		return logUniform(time.Hour, 2*time.Hour)
	default:
		return logUniform(2*time.Hour, 12*time.Hour)
	}
}

// cpuRuntime samples a CPU-job runtime. The paper's CPU jobs are inference
// services and auxiliary processing whose load saturates the cluster's CPUs
// at the daily peak (Fig. 1 shows the CPU active rate reaching 100%), so
// they run minutes to hours, not seconds.
func cpuRuntime(rng *rand.Rand) time.Duration {
	l, h := math.Log(float64(10*time.Minute)), math.Log(float64(4*time.Hour))
	return time.Duration(math.Exp(l + rng.Float64()*(h-l)))
}

// requestedCores samples the owner's per-node core request for a training
// job with the given per-node GPU count, following Fig. 2d's three bands.
// Requests are clamped to the node size so every job is placeable.
func requestedCores(rng *rand.Rand, cfg Config, gpusPerNode int) int {
	u := rng.Float64()
	var cores int
	switch {
	case u < cfg.UnderRequestFraction:
		cores = 1 + rng.Intn(2) // 1-2 cores
	case u < cfg.UnderRequestFraction+cfg.MidRequestFraction:
		cores = 3 + rng.Intn(8) // 3-10 cores
	default:
		// Over-requesters scale their excess with the job size.
		cores = 11 + rng.Intn(8) + 2*gpusPerNode
	}
	if cores > cfg.MaxRequestCores {
		cores = cfg.MaxRequestCores
	}
	return cores
}

// Generate builds a deterministic synthetic trace. Jobs are returned sorted
// by arrival time with IDs assigned in arrival order.
func Generate(cfg Config) ([]*job.Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]*job.Job, 0, cfg.CPUJobs+cfg.GPUJobs)

	gpuWeights := tenantGPUWeights()
	cpuWeights := tenantCPUWeights()

	modelWeights := make([]float64, len(modelMix))
	for i, m := range modelMix {
		modelWeights[i] = m.weight
	}
	configWeights := make([]float64, len(configMix))
	for i, c := range configMix {
		configWeights[i] = c.weight
	}

	for i := 0; i < cfg.GPUJobs; i++ {
		mi := pick(rng, modelWeights)
		model, err := perfmodel.Lookup(modelMix[mi].name)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		ci := pick(rng, configWeights)
		nodes, gpus := configMix[ci].nodes, configMix[ci].gpus

		batch := model.DefaultBatch
		if rng.Float64() < cfg.MaxBatchFraction {
			batch = model.MaxBatch
		}
		category := model.Category
		var hints job.Hints
		if rng.Float64() < cfg.NoCategoryFraction {
			category = job.CategoryNone
		} else if rng.Float64() < cfg.HintsFraction {
			hints = job.Hints{
				HasPipeline:       rng.Float64() < 0.5,
				LargeWeights:      model.Name == "vgg16" || model.Name == "transformer",
				ComplexPreprocess: model.Category == job.CategoryNLP,
			}
		}

		j := &job.Job{
			Kind:      job.KindGPUTraining,
			Tenant:    job.TenantID(pick(rng, gpuWeights) + 1),
			Category:  category,
			Model:     model.Name,
			BatchSize: batch,
			Hints:     hints,
			Request: job.Request{
				CPUCores: requestedCores(rng, cfg, gpus/nodes),
				GPUs:     gpus,
				Nodes:    nodes,
			},
			Arrival: diurnalArrival(rng, cfg.Duration, cfg.GPUDiurnalAmplitude, cfg.WeekendFactor),
			Work:    gpuRuntime(rng),
		}
		jobs = append(jobs, j)
	}

	for i := 0; i < cfg.CPUJobs; i++ {
		j := &job.Job{
			Kind:    job.KindCPU,
			Tenant:  job.TenantID(pick(rng, cpuWeights) + 1),
			Request: job.Request{CPUCores: 2 + rng.Intn(5), Nodes: 1},
			Arrival: diurnalArrival(rng, cfg.Duration, cfg.DiurnalAmplitude, cfg.WeekendFactor),
			Work:    cpuRuntime(rng),
		}
		j.Bandwidth = 0.3 * float64(j.Request.CPUCores)
		if rng.Float64() < cfg.HogFraction {
			j.Kind = job.KindBandwidthHog
			j.Request.CPUCores = 8 + rng.Intn(9) // 8-16 threads of HEAT
			// A STREAM-like kernel saturates a DDR4 channel per thread:
			// one hog can push a node past the 75% contention knee alone.
			j.Bandwidth = 8 * float64(j.Request.CPUCores)
			j.Work = cpuRuntime(rng) * 2
		}
		jobs = append(jobs, j)
	}

	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	for i, j := range jobs {
		j.ID = job.ID(i + 1)
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: generated invalid job: %w", err)
		}
	}
	return jobs, nil
}

// Stats summarizes a trace the way Fig. 2 does.
type Stats struct {
	// Jobs is the total count; CPUJobs/GPUJobs/HogJobs break it down.
	Jobs, CPUJobs, GPUJobs, HogJobs int
	// ReqCores12, ReqCores310, ReqCoresOver10 are the Fig. 2d fractions of
	// GPU jobs requesting 1-2, 3-10, and >10 cores.
	ReqCores12, ReqCores310, ReqCoresOver10 float64
	// GPUJobsPerTenant and CPUJobsPerTenant index by tenant ID (1-based;
	// index 0 unused).
	GPUJobsPerTenant, CPUJobsPerTenant [NumTenants + 1]int
	// MultiNodeFraction is the fraction of GPU jobs spanning nodes.
	MultiNodeFraction float64
	// GPUJobsOverHour / GPUJobsOverTwoHours are §VI-F's runtime fractions.
	GPUJobsOverHour, GPUJobsOverTwoHours float64
}

// Summarize computes trace statistics.
func Summarize(jobs []*job.Job) Stats {
	var s Stats
	s.Jobs = len(jobs)
	multiNode, overHour, overTwo := 0, 0, 0
	req12, req310, reqOver := 0, 0, 0
	for _, j := range jobs {
		switch j.Kind {
		case job.KindGPUTraining:
			s.GPUJobs++
			if int(j.Tenant) <= NumTenants {
				s.GPUJobsPerTenant[j.Tenant]++
			}
			switch c := j.Request.CPUCores; {
			case c <= 2:
				req12++
			case c <= 10:
				req310++
			default:
				reqOver++
			}
			if j.Request.Nodes > 1 {
				multiNode++
			}
			if j.Work > time.Hour {
				overHour++
			}
			if j.Work > 2*time.Hour {
				overTwo++
			}
		default:
			s.CPUJobs++
			if j.Kind == job.KindBandwidthHog {
				s.HogJobs++
			}
			if int(j.Tenant) <= NumTenants {
				s.CPUJobsPerTenant[j.Tenant]++
			}
		}
	}
	if s.GPUJobs > 0 {
		n := float64(s.GPUJobs)
		s.ReqCores12 = float64(req12) / n
		s.ReqCores310 = float64(req310) / n
		s.ReqCoresOver10 = float64(reqOver) / n
		s.MultiNodeFraction = float64(multiNode) / n
		s.GPUJobsOverHour = float64(overHour) / n
		s.GPUJobsOverTwoHours = float64(overTwo) / n
	}
	return s
}

// HourlyArrivals bins job arrivals into hours for Fig. 1-style plots.
// Only jobs matching filter are counted (nil counts all).
func HourlyArrivals(jobs []*job.Job, duration time.Duration, filter func(*job.Job) bool) []int {
	hours := int(duration / time.Hour)
	if duration%time.Hour != 0 {
		hours++
	}
	bins := make([]int, hours)
	for _, j := range jobs {
		if filter != nil && !filter(j) {
			continue
		}
		h := int(j.Arrival / time.Hour)
		if h >= 0 && h < hours {
			bins[h]++
		}
	}
	return bins
}
