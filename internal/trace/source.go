// Streaming trace generation. Source yields the exact same job population
// as Generate — Generate is now a thin wrapper that drains one — but lazily,
// in arrival order, with O(days) state instead of O(jobs). That is what lets
// the simulator ingest a 25M-job warehouse trace without ever materializing
// it: arrivals are pulled one at a time, and the generator's whole position
// is a Cursor (seed, per-stream draw counts, order-statistic fractions) that
// checkpoints in a few dozen bytes.
//
// Sampling scheme: arrivals must come out sorted, so instead of sampling
// each job's arrival independently and sorting (the old algorithm), each
// sub-stream (CPU and GPU jobs have different diurnal amplitudes) walks the
// sorted uniform order statistics sequentially — with m points left, the
// minimum of m uniforms on (u, 1) is u + (1-u)·(1-(1-v)^(1/m)) — and maps
// each fraction through the inverse CDF of the diurnal density
// 1 + a·sin(2π(t/day − 1/4)), weekend-scaled per day. The per-day cumulative
// mass table is closed-form (the sine integrates exactly), so inversion is a
// binary search over days plus a fixed-iteration bisection within the day.
// The two sub-streams merge on the fly with a deterministic tie-break.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/perfmodel"
)

// cpuSeedOffset separates the CPU sub-stream's RNG from the GPU one: two
// independent deterministic streams derived from one trace seed.
const cpuSeedOffset int64 = 1 << 32

// invertIterations is the fixed bisection depth for within-day inversion:
// 48 halvings of a 24h day land below half a nanosecond, under Duration's
// resolution. Fixed (not tolerance-driven) so every platform and every
// resume replays the identical float operation sequence.
const invertIterations = 48

// arrivalSampler inverts the diurnal arrival CDF: frac in [0,1) to a time in
// [0, duration). Pure and stateless after construction.
type arrivalSampler struct {
	duration  float64 // ns
	amplitude float64
	weekend   float64
	uniform   bool // amplitude 0 and weekend factor 1: identity mapping
	// cum[d] is the unnormalized arrival mass before day d; cum[len-1] is
	// the total. dayLens[d] is day d's length in ns (only the last day of a
	// non-whole-day duration is partial).
	cum     []float64
	dayLens []float64
}

const nsPerDay = float64(24 * time.Hour)

// dayMass is the closed-form arrival mass of day d's first x nanoseconds
// (before weekend scaling): the antiderivative of 1 + a·sin(2π(t/day − 1/4))
// from the day boundary, where the cosine term vanishes.
func (a *arrivalSampler) dayMass(x float64) float64 {
	c := a.amplitude * nsPerDay / (2 * math.Pi)
	return x - c*math.Cos(2*math.Pi*(x/nsPerDay-0.25))
}

func newArrivalSampler(duration time.Duration, amplitude, weekendFactor float64) *arrivalSampler {
	a := &arrivalSampler{
		duration:  float64(duration),
		amplitude: amplitude,
		weekend:   weekendFactor,
	}
	//coda:ordered-ok fast-path gate on config constants, not computed floats
	if amplitude == 0 && weekendFactor >= 1 {
		a.uniform = true
		return a
	}
	days := int(math.Ceil(a.duration / nsPerDay))
	a.cum = make([]float64, days+1)
	a.dayLens = make([]float64, days)
	for d := 0; d < days; d++ {
		dlen := a.duration - float64(d)*nsPerDay
		if dlen > nsPerDay {
			dlen = nsPerDay
		}
		w := 1.0
		if d%7 >= 5 {
			w = weekendFactor
		}
		a.dayLens[d] = dlen
		a.cum[d+1] = a.cum[d] + w*a.dayMass(dlen)
	}
	return a
}

// at maps a sorted-uniform fraction to its arrival time. Monotone in frac up
// to sub-nanosecond bisection wobble; callers clamp to enforce exact
// non-decreasing output.
func (a *arrivalSampler) at(frac float64) time.Duration {
	var t float64
	if a.uniform {
		t = frac * a.duration
	} else {
		total := a.cum[len(a.cum)-1]
		target := frac * total
		// Largest d with cum[d] <= target.
		lo, hi := 0, len(a.cum)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if a.cum[mid] <= target {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		d := lo
		if d >= len(a.dayLens) {
			d = len(a.dayLens) - 1
		}
		w := 1.0
		if d%7 >= 5 {
			w = a.weekend
		}
		rem := (target - a.cum[d]) / w
		// Bisect dayMass(x) = rem on [0, dayLens[d]].
		xlo, xhi := 0.0, a.dayLens[d]
		for i := 0; i < invertIterations; i++ {
			mid := (xlo + xhi) / 2
			if a.dayMass(mid) <= rem {
				xlo = mid
			} else {
				xhi = mid
			}
		}
		t = float64(d)*nsPerDay + (xlo+xhi)/2
	}
	if t < 0 {
		t = 0
	}
	if t >= a.duration {
		t = a.duration - 1
	}
	return time.Duration(t)
}

// stream is one sub-stream (all CPU jobs or all GPU jobs) of a Source: a
// seeded RNG with a draw counter, the count of jobs not yet emitted, and the
// already-drawn arrival of the next job.
type stream struct {
	rng     *rand.Rand
	sampler *arrivalSampler
	draws   int64
	left    int
	frac    float64       // sorted-uniform position of the next arrival
	next    time.Duration // arrival time of the next job (valid when left > 0)
}

// f64 is the stream's only RNG primitive: every draw is one Float64, so a
// cursor restore fast-forwards by calling Float64 exactly draws times.
func (st *stream) f64() float64 {
	st.draws++
	return st.rng.Float64()
}

// intBelow returns a uniform int in [0, n) from one f64 draw.
func (st *stream) intBelow(n int) int {
	v := int(st.f64() * float64(n))
	if v >= n { // guard the (impossible in practice) f64 == 1-ulp edge
		v = n - 1
	}
	return v
}

// pick samples an index from weights.
func (st *stream) pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	r := st.f64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// prime draws the arrival time of the stream's next job via the sorted
// uniform order-statistic recurrence. left must count that job.
func (st *stream) prime() {
	v := st.f64()
	st.frac += (1 - st.frac) * (1 - math.Pow(1-v, 1/float64(st.left)))
	if st.frac >= 1 {
		st.frac = math.Nextafter(1, 0)
	}
	at := st.sampler.at(st.frac)
	if at < st.next { // enforce exact monotonicity across bisection wobble
		at = st.next
	}
	st.next = at
}

// Cursor is a Source's complete resumable position: the config plus, per
// sub-stream, the RNG draw count (fast-forwarded on restore), the jobs not
// yet emitted, and the already-drawn next arrival. Byte-identical resume:
// Resume(src.CheckpointState()) yields the exact job sequence src would
// have yielded.
type Cursor struct {
	Config   Config        `json:"config"`
	NextID   int64         `json:"nextID"`
	GPUDraws int64         `json:"gpuDraws"`
	CPUDraws int64         `json:"cpuDraws"`
	GPULeft  int           `json:"gpuLeft"`
	CPULeft  int           `json:"cpuLeft"`
	GPUFrac  float64       `json:"gpuFrac"`
	CPUFrac  float64       `json:"cpuFrac"`
	GPUNext  time.Duration `json:"gpuNext"`
	CPUNext  time.Duration `json:"cpuNext"`
}

// Source yields a trace's jobs lazily in arrival order with IDs assigned in
// yield order. It is pure (no wall clock, no global rand, no goroutines) and
// deterministic: NewSource(cfg) always yields the identical sequence, which
// is also exactly what Generate(cfg) returns as a slice.
type Source struct {
	cfg      Config
	gpu, cpu stream
	nextID   int64

	gpuWeights, cpuWeights       []float64
	modelWeights, configWeights  []float64
}

// NewSource validates cfg and positions a fresh Source at the first job.
func NewSource(cfg Config) (*Source, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Source{
		cfg:        cfg,
		nextID:     1,
		gpuWeights: tenantGPUWeights(),
		cpuWeights: tenantCPUWeights(),
	}
	s.modelWeights = make([]float64, len(modelMix))
	for i, m := range modelMix {
		s.modelWeights[i] = m.weight
	}
	s.configWeights = make([]float64, len(configMix))
	for i, c := range configMix {
		s.configWeights[i] = c.weight
	}
	s.gpu = stream{
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		sampler: newArrivalSampler(cfg.Duration, cfg.GPUDiurnalAmplitude, cfg.WeekendFactor),
		left:    cfg.GPUJobs,
	}
	s.cpu = stream{
		rng:     rand.New(rand.NewSource(cfg.Seed + cpuSeedOffset)),
		sampler: newArrivalSampler(cfg.Duration, cfg.DiurnalAmplitude, cfg.WeekendFactor),
		left:    cfg.CPUJobs,
	}
	if s.gpu.left > 0 {
		s.gpu.prime()
	}
	if s.cpu.left > 0 {
		s.cpu.prime()
	}
	return s, nil
}

// Config returns the source's configuration.
func (s *Source) Config() Config { return s.cfg }

// Remaining is how many jobs Next has yet to yield.
func (s *Source) Remaining() int { return s.gpu.left + s.cpu.left }

// Total is the trace's full job count, emitted or not.
func (s *Source) Total() int { return s.cfg.CPUJobs + s.cfg.GPUJobs }

// Next yields the next job in arrival order, or (nil, nil) when the trace is
// drained. The returned job is freshly allocated and owned by the caller.
func (s *Source) Next() (*job.Job, error) {
	gpuTurn := s.gpu.left > 0 && (s.cpu.left == 0 || s.gpu.next <= s.cpu.next)
	var j *job.Job
	var err error
	switch {
	case gpuTurn:
		j, err = s.nextGPU()
	case s.cpu.left > 0:
		j = s.nextCPU()
	default:
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	j.ID = job.ID(s.nextID)
	s.nextID++
	if err := j.Validate(); err != nil {
		return nil, fmt.Errorf("trace: generated invalid job: %w", err)
	}
	return j, nil
}

// nextGPU emits the GPU sub-stream's next job. Attribute draw order is fixed
// and part of the format: model, config, batch, category/hints, tenant,
// cores, runtime.
func (s *Source) nextGPU() (*job.Job, error) {
	st := &s.gpu
	arrival := st.next
	cfg := s.cfg

	mi := st.pick(s.modelWeights)
	model, err := perfmodel.Lookup(modelMix[mi].name)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	ci := st.pick(s.configWeights)
	nodes, gpus := configMix[ci].nodes, configMix[ci].gpus

	batch := model.DefaultBatch
	if st.f64() < cfg.MaxBatchFraction {
		batch = model.MaxBatch
	}
	category := model.Category
	var hints job.Hints
	if st.f64() < cfg.NoCategoryFraction {
		category = job.CategoryNone
	} else if st.f64() < cfg.HintsFraction {
		hints = job.Hints{
			HasPipeline:       st.f64() < 0.5,
			LargeWeights:      model.Name == "vgg16" || model.Name == "transformer",
			ComplexPreprocess: model.Category == job.CategoryNLP,
		}
	}

	j := &job.Job{
		Kind:      job.KindGPUTraining,
		Tenant:    job.TenantID(st.pick(s.gpuWeights) + 1),
		Category:  category,
		Model:     model.Name,
		BatchSize: batch,
		Hints:     hints,
		Request: job.Request{
			CPUCores: requestedCores(st, cfg, gpus/nodes),
			GPUs:     gpus,
			Nodes:    nodes,
		},
		Arrival: arrival,
		Work:    gpuRuntime(st),
	}
	st.left--
	if st.left > 0 {
		st.prime()
	}
	return j, nil
}

// nextCPU emits the CPU sub-stream's next job (a bandwidth hog with
// probability HogFraction).
func (s *Source) nextCPU() *job.Job {
	st := &s.cpu
	arrival := st.next

	j := &job.Job{
		Kind:    job.KindCPU,
		Tenant:  job.TenantID(st.pick(s.cpuWeights) + 1),
		Request: job.Request{CPUCores: 2 + st.intBelow(5), Nodes: 1},
		Arrival: arrival,
		Work:    cpuRuntime(st),
	}
	j.Bandwidth = 0.3 * float64(j.Request.CPUCores)
	if st.f64() < s.cfg.HogFraction {
		j.Kind = job.KindBandwidthHog
		j.Request.CPUCores = 8 + st.intBelow(9) // 8-16 threads of HEAT
		// A STREAM-like kernel saturates a DDR4 channel per thread:
		// one hog can push a node past the 75% contention knee alone.
		j.Bandwidth = 8 * float64(j.Request.CPUCores)
		j.Work = cpuRuntime(st) * 2
	}
	st.left--
	if st.left > 0 {
		st.prime()
	}
	return j
}

// CheckpointState captures the source's resumable position.
func (s *Source) CheckpointState() Cursor {
	return Cursor{
		Config:   s.cfg,
		NextID:   s.nextID,
		GPUDraws: s.gpu.draws,
		CPUDraws: s.cpu.draws,
		GPULeft:  s.gpu.left,
		CPULeft:  s.cpu.left,
		GPUFrac:  s.gpu.frac,
		CPUFrac:  s.cpu.frac,
		GPUNext:  s.gpu.next,
		CPUNext:  s.cpu.next,
	}
}

// Resume rebuilds a Source at the cursor's position: it re-seeds both
// sub-stream RNGs and fast-forwards them by the recorded draw counts, so the
// resumed source yields byte-identical jobs to the one that was captured.
func Resume(cur Cursor) (*Source, error) {
	s, err := NewSource(cur.Config)
	if err != nil {
		return nil, fmt.Errorf("trace: resume: %w", err)
	}
	if cur.GPULeft < 0 || cur.GPULeft > cur.Config.GPUJobs ||
		cur.CPULeft < 0 || cur.CPULeft > cur.Config.CPUJobs {
		return nil, fmt.Errorf("trace: resume: jobs left (%d gpu, %d cpu) out of range (%d gpu, %d cpu configured)",
			cur.GPULeft, cur.CPULeft, cur.Config.GPUJobs, cur.Config.CPUJobs)
	}
	emitted := (cur.Config.GPUJobs - cur.GPULeft) + (cur.Config.CPUJobs - cur.CPULeft)
	if cur.NextID != int64(emitted)+1 {
		return nil, fmt.Errorf("trace: resume: next ID %d inconsistent with %d emitted jobs", cur.NextID, emitted)
	}
	if cur.GPUDraws < s.gpu.draws || cur.CPUDraws < s.cpu.draws {
		return nil, fmt.Errorf("trace: resume: draw counts (%d gpu, %d cpu) below a fresh source's", cur.GPUDraws, cur.CPUDraws)
	}
	if cur.GPUFrac < 0 || cur.GPUFrac >= 1 || cur.CPUFrac < 0 || cur.CPUFrac >= 1 {
		return nil, fmt.Errorf("trace: resume: order-statistic fractions (%g, %g) out of [0,1)", cur.GPUFrac, cur.CPUFrac)
	}
	if cur.GPUNext < 0 || cur.GPUNext >= cur.Config.Duration || cur.CPUNext < 0 || cur.CPUNext >= cur.Config.Duration {
		return nil, fmt.Errorf("trace: resume: next arrivals (%v, %v) outside the trace span %v", cur.GPUNext, cur.CPUNext, cur.Config.Duration)
	}
	fastForward(&s.gpu, cur.GPUDraws)
	fastForward(&s.cpu, cur.CPUDraws)
	s.nextID = cur.NextID
	s.gpu.left, s.cpu.left = cur.GPULeft, cur.CPULeft
	s.gpu.frac, s.cpu.frac = cur.GPUFrac, cur.CPUFrac
	s.gpu.next, s.cpu.next = cur.GPUNext, cur.CPUNext
	return s, nil
}

// fastForward replays discarded draws to move st's RNG to the cursor's
// stream position. O(draws) — a few hundred million Float64 calls at the
// largest scale, seconds, not minutes.
func fastForward(st *stream, draws int64) {
	for st.draws < draws {
		st.f64()
	}
}
