package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

// smallConfig keeps test generation fast while preserving the shape.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.CPUJobs = 3000
	cfg.GPUJobs = 1000
	cfg.Duration = 7 * 24 * time.Hour
	return cfg
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"default ok", func(c *Config) {}, false},
		{"zero duration", func(c *Config) { c.Duration = 0 }, true},
		{"negative cpu jobs", func(c *Config) { c.CPUJobs = -1 }, true},
		{"no jobs", func(c *Config) { c.CPUJobs, c.GPUJobs = 0, 0 }, true},
		{"bad hog fraction", func(c *Config) { c.HogFraction = 1.5 }, true},
		{"bad amplitude", func(c *Config) { c.DiurnalAmplitude = 1 }, true},
		{"fractions do not sum", func(c *Config) { c.OverRequestFraction = 0.5 }, true},
		{"bad batch fraction", func(c *Config) { c.MaxBatchFraction = -0.1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("job %d differs between runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if !reflect.DeepEqual(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("Generate(zero config) should fail")
	}
}

func TestGenerateShape(t *testing.T) {
	jobs, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(jobs)

	if s.Jobs != 4000 || s.GPUJobs != 1000 || s.CPUJobs != 3000 {
		t.Fatalf("counts = %+v", s)
	}
	// Fig. 2d fractions within sampling tolerance.
	if math.Abs(s.ReqCores12-0.761) > 0.05 {
		t.Errorf("ReqCores12 = %g, want ~0.761", s.ReqCores12)
	}
	if math.Abs(s.ReqCoresOver10-0.153) > 0.04 {
		t.Errorf("ReqCoresOver10 = %g, want ~0.153", s.ReqCoresOver10)
	}
	// §VI-F runtime fractions.
	if math.Abs(s.GPUJobsOverHour-0.685) > 0.05 {
		t.Errorf("GPUJobsOverHour = %g, want ~0.685", s.GPUJobsOverHour)
	}
	if math.Abs(s.GPUJobsOverTwoHours-0.396) > 0.05 {
		t.Errorf("GPUJobsOverTwoHours = %g, want ~0.396", s.GPUJobsOverTwoHours)
	}
	// ~0.5% bandwidth hogs.
	hogFrac := float64(s.HogJobs) / float64(s.CPUJobs)
	if hogFrac < 0.001 || hogFrac > 0.012 {
		t.Errorf("hog fraction = %g, want ~0.005", hogFrac)
	}
}

func TestGenerateJobsSortedAndValid(t *testing.T) {
	jobs, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if j.ID != job.ID(i+1) {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if i > 0 && jobs[i-1].Arrival > j.Arrival {
			t.Fatalf("jobs not sorted at %d", i)
		}
	}
}

func TestTenantRoles(t *testing.T) {
	jobs, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(jobs)
	for tenant := FirstCPUOnlyTenant; tenant <= NumTenants; tenant++ {
		if s.GPUJobsPerTenant[tenant] != 0 {
			t.Errorf("tenant %d submitted %d GPU jobs, want 0", tenant, s.GPUJobsPerTenant[tenant])
		}
		if s.CPUJobsPerTenant[tenant] == 0 {
			t.Errorf("tenant %d submitted no CPU jobs", tenant)
		}
	}
	// Tenant 1 (the research lab) must dominate GPU submissions.
	for tenant := 2; tenant < FirstCPUOnlyTenant; tenant++ {
		if s.GPUJobsPerTenant[tenant] > s.GPUJobsPerTenant[1] {
			t.Errorf("tenant %d out-submitted the research lab", tenant)
		}
	}
}

func TestModelMixFavorsNLPAndSpeech(t *testing.T) {
	jobs, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	byCat := map[job.Category]int{}
	total := 0
	for _, j := range jobs {
		if j.Kind != job.KindGPUTraining {
			continue
		}
		// Category may be withheld; classify by model instead.
		switch j.Model {
		case "bat", "transformer":
			byCat[job.CategoryNLP]++
		case "wavenet", "deepspeech":
			byCat[job.CategorySpeech]++
		default:
			byCat[job.CategoryCV]++
		}
		total++
	}
	nlpSpeech := float64(byCat[job.CategoryNLP]+byCat[job.CategorySpeech]) / float64(total)
	if nlpSpeech < 0.6 {
		t.Errorf("NLP+Speech fraction = %g, want most of the GPU jobs", nlpSpeech)
	}
}

func TestDiurnalPattern(t *testing.T) {
	cfg := smallConfig()
	cfg.CPUJobs = 20000
	cfg.GPUJobs = 0
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bins := HourlyArrivals(jobs, cfg.Duration, nil)
	// Aggregate by hour of day: midday hours must clearly beat nighttime.
	var byHour [24]float64
	for i, n := range bins {
		byHour[i%24] += float64(n)
	}
	day := (byHour[10] + byHour[11] + byHour[12] + byHour[13]) / 4
	night := (byHour[22] + byHour[23] + byHour[0] + byHour[1]) / 4
	if day < night*1.5 {
		t.Errorf("diurnal pattern too weak: day=%g night=%g", day, night)
	}
}

func TestDiurnalDisabled(t *testing.T) {
	cfg := smallConfig()
	cfg.DiurnalAmplitude = 0
	if _, err := Generate(cfg); err != nil {
		t.Fatalf("flat-rate generation failed: %v", err)
	}
}

func TestHourlyArrivalsFilter(t *testing.T) {
	jobs := []*job.Job{
		{Kind: job.KindCPU, Arrival: 30 * time.Minute},
		{Kind: job.KindGPUTraining, Arrival: 90 * time.Minute},
	}
	bins := HourlyArrivals(jobs, 2*time.Hour, func(j *job.Job) bool {
		return j.Kind == job.KindGPUTraining
	})
	if len(bins) != 2 || bins[0] != 0 || bins[1] != 1 {
		t.Errorf("bins = %v, want [0 1]", bins)
	}
	// Ragged duration rounds the bin count up.
	bins = HourlyArrivals(jobs, 90*time.Minute, nil)
	if len(bins) != 2 {
		t.Errorf("ragged bins = %d, want 2", len(bins))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Jobs != 0 || s.ReqCores12 != 0 {
		t.Errorf("empty Summarize = %+v", s)
	}
}

func TestRoundTripCodec(t *testing.T) {
	cfg := smallConfig()
	cfg.CPUJobs, cfg.GPUJobs = 200, 100
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("round trip length %d, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		// Durations survive at millisecond resolution.
		want := *jobs[i]
		want.Arrival = want.Arrival.Truncate(time.Millisecond)
		want.Work = want.Work.Truncate(time.Millisecond)
		if !reflect.DeepEqual(&want, got[i]) {
			t.Fatalf("job %d mismatch:\nwant %+v\ngot  %+v", i, &want, got[i])
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"garbage", "not json"},
		{"unknown kind", `{"id":"1","kind":"quantum","tenant":1,"cpuCores":1,"nodes":1,"workMillis":1000}`},
		{"unknown category", `{"id":"1","kind":"cpu","tenant":1,"category":"bio","cpuCores":1,"nodes":1,"workMillis":1000}`},
		{"invalid job", `{"id":"1","kind":"cpu","tenant":1,"cpuCores":0,"nodes":1,"workMillis":1000}`},
		{"bad id", `{"id":"xyz","kind":"cpu","tenant":1,"cpuCores":1,"nodes":1,"workMillis":1000}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.input)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadEmpty(t *testing.T) {
	jobs, err := Read(strings.NewReader(""))
	if err != nil || jobs != nil {
		t.Errorf("Read(empty) = %v, %v", jobs, err)
	}
}

func TestWriteRejectsUnknownKind(t *testing.T) {
	j := &job.Job{ID: 1, Kind: job.Kind(99)}
	var buf bytes.Buffer
	if err := Write(&buf, []*job.Job{j}); err == nil {
		t.Error("Write(unknown kind) should fail")
	}
}
