package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

// record is the JSON-lines wire form of one job. Durations are serialized
// in milliseconds because encoding/json has no native time.Duration form.
type record struct {
	ID                json.Number `json:"id"`
	Kind              string      `json:"kind"`
	Tenant            int         `json:"tenant"`
	Category          string      `json:"category,omitempty"`
	Model             string      `json:"model,omitempty"`
	BatchSize         int         `json:"batchSize,omitempty"`
	HasPipeline       bool        `json:"hasPipeline,omitempty"`
	LargeWeights      bool        `json:"largeWeights,omitempty"`
	ComplexPreprocess bool        `json:"complexPreprocess,omitempty"`
	CPUCores          int         `json:"cpuCores"`
	GPUs              int         `json:"gpus,omitempty"`
	Nodes             int         `json:"nodes"`
	ArrivalMillis     int64       `json:"arrivalMillis"`
	WorkMillis        int64       `json:"workMillis"`
	BandwidthGBs      float64     `json:"bandwidthGBs,omitempty"`
}

var kindNames = map[job.Kind]string{
	job.KindCPU:          "cpu",
	job.KindGPUTraining:  "gpu-training",
	job.KindBandwidthHog: "bandwidth-hog",
}

var kindValues = reverseKinds()

func reverseKinds() map[string]job.Kind {
	m := make(map[string]job.Kind, len(kindNames))
	for k, v := range kindNames {
		m[v] = k
	}
	return m
}

var categoryNames = map[job.Category]string{
	job.CategoryNone:   "",
	job.CategoryCV:     "cv",
	job.CategoryNLP:    "nlp",
	job.CategorySpeech: "speech",
}

var categoryValues = reverseCategories()

func reverseCategories() map[string]job.Category {
	m := make(map[string]job.Category, len(categoryNames))
	for k, v := range categoryNames {
		m[v] = k
	}
	return m
}

// An Encoder writes jobs to a JSON-lines trace one at a time, so a
// Source can be spooled to disk without ever materializing the slice.
type Encoder struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewEncoder returns an Encoder writing to w. Call Flush when done.
func NewEncoder(w io.Writer) *Encoder {
	bw := bufio.NewWriter(w)
	return &Encoder{bw: bw, enc: json.NewEncoder(bw)}
}

// Encode appends one job to the trace.
func (e *Encoder) Encode(j *job.Job) error {
	kind, ok := kindNames[j.Kind]
	if !ok {
		return fmt.Errorf("trace: job %d has unknown kind %v", j.ID, j.Kind)
	}
	rec := record{
		ID:                json.Number(fmt.Sprintf("%d", j.ID)),
		Kind:              kind,
		Tenant:            int(j.Tenant),
		Category:          categoryNames[j.Category],
		Model:             j.Model,
		BatchSize:         j.BatchSize,
		HasPipeline:       j.Hints.HasPipeline,
		LargeWeights:      j.Hints.LargeWeights,
		ComplexPreprocess: j.Hints.ComplexPreprocess,
		CPUCores:          j.Request.CPUCores,
		GPUs:              j.Request.GPUs,
		Nodes:             j.Request.Nodes,
		ArrivalMillis:     j.Arrival.Milliseconds(),
		WorkMillis:        j.Work.Milliseconds(),
		BandwidthGBs:      j.Bandwidth,
	}
	if err := e.enc.Encode(rec); err != nil {
		return fmt.Errorf("trace: encode job %d: %w", j.ID, err)
	}
	return nil
}

// Flush writes any buffered output to the underlying writer.
func (e *Encoder) Flush() error { return e.bw.Flush() }

// Write serializes jobs as JSON lines.
func Write(w io.Writer, jobs []*job.Job) error {
	enc := NewEncoder(w)
	for _, j := range jobs {
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// Read parses a JSON-lines trace and validates every job.
func Read(r io.Reader) ([]*job.Job, error) {
	dec := json.NewDecoder(r)
	var jobs []*job.Job
	for {
		var rec record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		kind, ok := kindValues[rec.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: unknown kind %q", rec.Kind)
		}
		category, ok := categoryValues[rec.Category]
		if !ok {
			return nil, fmt.Errorf("trace: unknown category %q", rec.Category)
		}
		id, err := rec.ID.Int64()
		if err != nil {
			return nil, fmt.Errorf("trace: bad id %q: %w", rec.ID, err)
		}
		j := &job.Job{
			ID:        job.ID(id),
			Kind:      kind,
			Tenant:    job.TenantID(rec.Tenant),
			Category:  category,
			Model:     rec.Model,
			BatchSize: rec.BatchSize,
			Hints: job.Hints{
				HasPipeline:       rec.HasPipeline,
				LargeWeights:      rec.LargeWeights,
				ComplexPreprocess: rec.ComplexPreprocess,
			},
			Request: job.Request{
				CPUCores: rec.CPUCores,
				GPUs:     rec.GPUs,
				Nodes:    rec.Nodes,
			},
			Arrival:   time.Duration(rec.ArrivalMillis) * time.Millisecond,
			Work:      time.Duration(rec.WorkMillis) * time.Millisecond,
			Bandwidth: rec.BandwidthGBs,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}
