package checkpoint

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

type payload struct {
	Name  string
	Value float64
	Items []int
}

func sample() payload {
	return payload{Name: "ck", Value: 0.1 + 0.2, Items: []int{3, 1, 4, 1, 5}}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := Decode(data, &got); err != nil {
		t.Fatal(err)
	}
	want := sample()
	if got.Name != want.Name || got.Value != want.Value || len(got.Items) != len(want.Items) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	var got payload
	err = Decode(data, &got)
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("want bad-magic error, got %v", err)
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	data, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(data[8:], Version+7)
	var got payload
	err = Decode(data, &got)
	if err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Fatalf("want future-version error, got %v", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 5, headerSize - 1, headerSize + 3, len(data) - 1} {
		var got payload
		err := Decode(data[:cut], &got)
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("cut=%d: want truncation error, got %v", cut, err)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	data, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, []byte("extra")...)
	var got payload
	err = Decode(data, &got)
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

func TestDecodeRejectsFlippedPayloadByte(t *testing.T) {
	data, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0x40
	var got payload
	err = Decode(data, &got)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum error, got %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName(time.Hour))
	if err := WriteFile(path, sample()); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := ReadFile(path, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "ck" {
		t.Fatalf("got %+v", got)
	}
	if err := ReadFile(filepath.Join(dir, "missing.ckpt"), &got); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLatest(t *testing.T) {
	dir := t.TempDir()
	if _, err := Latest(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty dir: want ErrNotExist, got %v", err)
	}
	for _, at := range []time.Duration{3 * time.Hour, time.Hour, 2 * time.Hour} {
		if err := WriteFile(filepath.Join(dir, FileName(at)), sample()); err != nil {
			t.Fatal(err)
		}
	}
	// Decoys that must not be picked up.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != FileName(3*time.Hour) {
		t.Fatalf("Latest = %s, want %s", filepath.Base(got), FileName(3*time.Hour))
	}
}
