// Package atomicio writes files crash-atomically: the bytes land in a
// temporary file in the destination directory, are fsynced, and only then
// renamed over the target path. A crash at any point leaves either the old
// file or the new file — never a torn half-write. The history log and every
// checkpoint in this repo persist through this path.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is created
// in path's directory so the final rename cannot cross filesystems. On any
// error the temporary file is removed (best effort) and the target is left
// untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-")
	if err != nil {
		return fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	// Sync before rename: a rename that lands before the data would
	// reintroduce exactly the torn-write window this package exists to close.
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("atomicio: fsync %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("atomicio: rename over %s: %w", path, err)
	}
	// Durability of the rename itself needs a directory fsync. Failure here
	// is not fatal to correctness (the file content is intact either way),
	// so it is best-effort: some filesystems reject fsync on directories.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
