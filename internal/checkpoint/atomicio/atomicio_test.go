package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")

	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("content = %q, want %q", got, "first")
	}

	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content after replace = %q, want %q", got, "second")
	}
}

func TestWriteFileLeavesNoTempOnSuccess(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
}

func TestWriteFileErrorLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep.txt")
	if err := WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Make the directory unwritable so CreateTemp fails; the existing file
	// must survive untouched.
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chmod(dir, 0o700); err != nil {
			t.Error(err)
		}
	}()
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	if err := WriteFile(path, []byte("clobbered"), 0o644); err == nil {
		t.Fatal("write into unwritable dir should fail")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("target changed on failed write: %q", got)
	}
}

func TestWriteFileRelativePathNoDir(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Error(err)
		}
	}()
	if err := WriteFile("bare.txt", []byte("ok"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("bare.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" {
		t.Fatalf("content = %q", got)
	}
}
