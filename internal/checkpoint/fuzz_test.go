package checkpoint

import (
	"testing"
)

// FuzzDecode hammers the envelope decoder with arbitrary bytes. The decoder
// must never panic, and anything it accepts must re-encode to an envelope the
// decoder accepts again (round-trip stability).
func FuzzDecode(f *testing.F) {
	valid, err := Encode(map[string]any{"k": 1.5, "s": "x"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CODACKPT"))
	f.Add([]byte("CODACKPT\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x02"))
	truncated := append([]byte(nil), valid...)
	f.Add(truncated[:len(truncated)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		var v any
		if err := Decode(data, &v); err != nil {
			return
		}
		re, err := Encode(v)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		var v2 any
		if err := Decode(re, &v2); err != nil {
			t.Fatalf("re-encoded envelope rejected: %v", err)
		}
	})
}
