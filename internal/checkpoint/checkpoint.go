// Package checkpoint frames scheduler+simulator state for crash-consistent
// persistence. The envelope is deliberately paranoid: a fixed magic, a
// big-endian version, the payload length, and a SHA-256 checksum precede the
// JSON payload, so a truncated, corrupted, or version-skewed file is rejected
// with a specific error instead of resuming a run from poisoned state.
//
// Layout (all integers big-endian):
//
//	offset  size  field
//	0       8     magic "CODACKPT"
//	8       4     format version (currently 1)
//	12      8     payload length in bytes
//	20      32    SHA-256 of the payload
//	52      n     JSON payload
//
// Files are written through internal/checkpoint/atomicio, so a crash during a
// checkpoint leaves the previous checkpoint intact.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/coda-repro/coda/internal/checkpoint/atomicio"
)

// Version is the current checkpoint format version. Decoders reject files
// stamped with a later version rather than guessing at their layout.
const Version uint32 = 1

// magic identifies a CODA checkpoint file.
const magic = "CODACKPT"

const headerSize = len(magic) + 4 + 8 + sha256.Size

// Encode frames v as a checkpoint: header, checksum, JSON payload.
func Encode(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode payload: %w", err)
	}
	buf := make([]byte, headerSize+len(payload))
	copy(buf, magic)
	binary.BigEndian.PutUint32(buf[8:], Version)
	binary.BigEndian.PutUint64(buf[12:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[20:], sum[:])
	copy(buf[headerSize:], payload)
	return buf, nil
}

// Decode validates the envelope around data and unmarshals the payload into v.
// It fails loudly and specifically: bad magic, future version (reporting found
// vs supported), truncation, and checksum mismatch each get their own error.
func Decode(data []byte, v any) error {
	if len(data) < headerSize {
		return fmt.Errorf("checkpoint: truncated: %d bytes, need at least %d for the header", len(data), headerSize)
	}
	if !bytes.Equal(data[:8], []byte(magic)) {
		return fmt.Errorf("checkpoint: bad magic %q (not a CODA checkpoint)", data[:8])
	}
	version := binary.BigEndian.Uint32(data[8:12])
	if version > Version {
		return fmt.Errorf("checkpoint: version %d is newer than supported version %d", version, Version)
	}
	length := binary.BigEndian.Uint64(data[12:20])
	rest := data[headerSize:]
	if uint64(len(rest)) < length {
		return fmt.Errorf("checkpoint: truncated payload: header says %d bytes, file has %d", length, len(rest))
	}
	if uint64(len(rest)) > length {
		return fmt.Errorf("checkpoint: %d trailing bytes after payload", uint64(len(rest))-length)
	}
	sum := sha256.Sum256(rest)
	if !bytes.Equal(sum[:], data[20:20+sha256.Size]) {
		return fmt.Errorf("checkpoint: checksum mismatch (file is corrupt)")
	}
	if err := json.Unmarshal(rest, v); err != nil {
		return fmt.Errorf("checkpoint: decode payload: %w", err)
	}
	return nil
}

// WriteFile encodes v and writes it crash-atomically to path.
func WriteFile(path string, v any) error {
	data, err := Encode(v)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, data, 0o644)
}

// ReadFile reads and decodes the checkpoint at path into v.
func ReadFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return Decode(data, v)
}

// FileName returns the canonical checkpoint file name for a simulated time.
// The zero-padded nanosecond count makes lexicographic order equal sim-time
// order, so Latest needs no parsing and no wall clock.
func FileName(at time.Duration) string {
	return fmt.Sprintf("checkpoint-%020d.ckpt", int64(at))
}

// Latest returns the path of the newest checkpoint (by sim time encoded in
// the file name) in dir. It returns os.ErrNotExist if the directory holds no
// checkpoints.
func Latest(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && len(name) == len(FileName(0)) &&
			filepath.Ext(name) == ".ckpt" && name[:11] == "checkpoint-" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("checkpoint: no checkpoints in %s: %w", dir, os.ErrNotExist)
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}
