package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The transitive-purity pass proves that no function reachable from the
// engine's entry points can observe the host: no wall clock, no global
// math/rand stream, no filesystem/network/process APIs, no goroutines. The
// per-file no-wall-clock rule catches a `time.Now()` written directly into
// an engine package; this pass catches the helper three calls deep in
// another package that reaches the same clock, and reports the full witness
// call chain so the finding is actionable without re-deriving the path.
//
// Unlike the per-file rules, purity findings are NOT suppressible with
// //coda:ordered-ok: a hidden impurity breaks resume-equivalence no matter
// how good the reason sounds. The escape hatches are structural — move the
// code into an exempt package (internal/runner, cmd/*) or allowlist a
// specific qualified name in VetConfig.PurityAllow.

// purityTimeFuncs are the time-package functions that observe or wait on the
// host clock. Superset of the per-file rule's wallClockFuncs: a transitive
// time.Sleep or timer is just as fatal to replay-equivalence.
var purityTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// puritySinkFor classifies a qualified selector as an impurity sink.
func puritySinkFor(info *types.Info, sel *ast.SelectorExpr, cfg VetConfig) (string, bool) {
	path, ok := importedPackage(info, sel)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	qualified := path + "." + name
	for _, allow := range cfg.PurityAllow {
		if qualified == allow {
			return "", false
		}
	}
	switch {
	case path == "time" && purityTimeFuncs[name]:
		return fmt.Sprintf("reads the wall clock (time.%s)", name), true
	case (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[name]:
		return fmt.Sprintf("draws from the global rand stream (rand.%s)", name), true
	}
	for _, impure := range cfg.ImpurePkgs {
		if path != impure && !strings.HasPrefix(path, impure+"/") {
			continue
		}
		// Only functions and variables are effects; referencing a type or a
		// constant from an impure package is harmless.
		switch info.Uses[sel.Sel].(type) {
		case *types.Func:
			return fmt.Sprintf("calls into %s (%s)", path, qualified), true
		case *types.Var:
			return fmt.Sprintf("touches %s state (%s)", path, qualified), true
		}
	}
	return "", false
}

// checkPurity builds the module call graph, walks it breadth-first from
// every function declared in a PurityRoots package, and reports each
// reachable sink once with the (shortest) witness chain from a root.
func checkPurity(m *Module, cfg VetConfig, keep func(Finding)) {
	g := buildCallGraph(m, cfg.PurityExempt, cfg)

	// parent[n] records how n was first reached; roots have no parent.
	parent := make(map[*graphNode]graphEdge)
	visited := make(map[*graphNode]bool)
	var queue []*graphNode
	for _, node := range g.order {
		if matchScope(cfg.PurityRoots, node.pkg.RelPath) {
			visited[node] = true
			queue = append(queue, node)
		}
	}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, sink := range node.sinks {
			chain := witnessChain(g, parent, node)
			keep(Finding{
				Pos:     sink.pos,
				Rule:    RulePurity,
				Message: fmt.Sprintf("%s %s [reached via %s]", g.funcDisplayName(node.fn), sink.desc, strings.Join(chain, " -> ")),
				Chain:   chain,
			})
		}
		for _, e := range node.edges {
			next := g.byFn[e.to]
			if next == nil || visited[next] {
				continue
			}
			visited[next] = true
			parent[next] = graphEdge{to: node.fn, pos: e.pos, via: e.via}
			queue = append(queue, next)
		}
	}
}

// witnessChain renders the root-to-node call chain recorded by the BFS.
func witnessChain(g *callGraph, parent map[*graphNode]graphEdge, node *graphNode) []string {
	var rev []string
	for {
		name := g.funcDisplayName(node.fn)
		p, ok := parent[node]
		if ok && p.via != "" {
			name += " (interface dispatch)"
		}
		rev = append(rev, name)
		if !ok {
			break
		}
		node = g.byFn[p.to]
	}
	chain := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		chain = append(chain, rev[i])
	}
	return chain
}
