package lint

import "testing"

// TestRepositoryIsLintClean is the self-enforcing pass: the analyzer runs
// over the repository's own internal/ and cmd/ trees with the production
// config, and any finding fails the build. New code either satisfies the
// determinism invariants or carries a reviewed //coda:ordered-ok reason.
func TestRepositoryIsLintClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := LintTrees(root, []string{"internal", "cmd"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the sites above or annotate them with %s <reason> (see DESIGN.md)", AnnotationPrefix)
	}
}
