package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCkpt(t *testing.T, m *Module, scope []string) []Finding {
	t.Helper()
	var findings []Finding
	checkCkptComplete(m, VetConfig{CheckpointScope: scope},
		func(f Finding) { findings = append(findings, f) })
	SortFindings(findings)
	return findings
}

// TestCkptFixtures seeds the three completeness failures — field missing
// from the encode path (through a helper, so the closure matters), field
// missing from the decode path, encoder with no decoder at all — and
// requires the clean round-tripping pair to stay silent.
func TestCkptFixtures(t *testing.T) {
	m, dirs := vetFixture(t, "ckpt", "example.com/ckpt", "internal/store")
	findings := runCkpt(t, m, []string{"internal/store"})
	matchFindingsToWants(t, findings, dirs)

	assertOne := func(substr string) {
		t.Helper()
		for _, f := range findings {
			if strings.Contains(f.Message, substr) {
				return
			}
		}
		t.Errorf("no finding mentions %q; got %v", substr, findings)
	}
	assertOne("never set in the encode path")  // dropState.Dropped
	assertOne("never read in the decode path") // orphanState.Leak
	assertOne("no matching decoder")           // Solo.CheckpointState
}

// TestCkptScope: a package outside CheckpointScope is not analyzed, however
// broken its serializers are.
func TestCkptScope(t *testing.T) {
	m, _ := vetFixture(t, "ckpt", "example.com/ckpt", "internal/store")
	if findings := runCkpt(t, m, []string{"internal/elsewhere"}); len(findings) != 0 {
		t.Fatalf("out-of-scope package produced findings: %v", findings)
	}
}

// TestEncoderFieldDeletionDetected is the acceptance-criteria mutation test:
// a round-tripping encoder/decoder pair passes clean, and deleting a single
// field assignment from the encoder flips the pass to failing, pointing at
// the exact field that would arrive zero-valued after a resume.
func TestEncoderFieldDeletionDetected(t *testing.T) {
	const src = `// Package acct mirrors the repository's checkpoint serializer shape.
package acct

// Accountant is live engine state.
type Accountant struct{ credit, debt int }

type acctState struct {
	Credit int
	Debt   int
}

// CheckpointState snapshots the accountant.
func (a *Accountant) CheckpointState() acctState {
	return acctState{
		Credit: a.credit,
%s	}
}

// RestoreCheckpoint rebuilds the accountant from a snapshot.
func (a *Accountant) RestoreCheckpoint(st acctState) {
	a.credit = st.Credit
	a.debt = st.Debt
}
`
	run := func(debtLine string) []Finding {
		t.Helper()
		root := t.TempDir()
		dir := filepath.Join(root, "internal", "acct")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		code := fmt.Sprintf(src, debtLine)
		if err := os.WriteFile(filepath.Join(dir, "acct.go"), []byte(code), 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := LoadDirs(root, "example.com/acct", []string{dir})
		if err != nil {
			t.Fatal(err)
		}
		return runCkpt(t, m, []string{"internal/"})
	}

	if got := run("\t\tDebt: a.debt,\n"); len(got) != 0 {
		t.Fatalf("intact encoder must be clean, got %v", got)
	}
	got := run("")
	if len(got) != 1 {
		t.Fatalf("deleting a field from the encoder must produce exactly one finding, got %v", got)
	}
	if !strings.Contains(got[0].Message, "Debt") ||
		!strings.Contains(got[0].Message, "never set in the encode path") {
		t.Fatalf("finding must name the dropped field: %s", got[0])
	}
}

// TestCkptUnkeyedLiteralCountsAllFields: a positional struct literal sets
// every field, so it must satisfy the encode side without false positives.
func TestCkptUnkeyedLiteralCountsAllFields(t *testing.T) {
	const src = `// Package pos uses a positional state literal.
package pos

// Box is live state.
type Box struct{ a, b int }

type boxState struct {
	A int
	B int
}

// CheckpointState snapshots positionally.
func (x *Box) CheckpointState() boxState { return boxState{x.a, x.b} }

// RestoreCheckpoint reads both fields.
func (x *Box) RestoreCheckpoint(st boxState) { x.a, x.b = st.A, st.B }
`
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "pos")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pos.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadDirs(root, "example.com/pos", []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if findings := runCkpt(t, m, []string{"internal/"}); len(findings) != 0 {
		t.Fatalf("positional literal round trip must be clean, got %v", findings)
	}
}
