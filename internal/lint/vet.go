// coda-vet: whole-program determinism proofs layered on top of the per-file
// coda-lint rules. Three passes (see DESIGN.md "Static analysis & layering"):
//
//	transitive-purity    no function reachable from the engine touches the
//	                     wall clock, the global rand stream, os/net/syscall,
//	                     or spawns goroutines — with witness call chains
//	import-layering      the package DAG follows a declarative layer spec
//	checkpoint-complete  every checkpoint state field is set by its encoder
//	                     and read by its decoder
//
// Vet findings carry no //coda:ordered-ok escape hatch: they are proofs
// about the whole program, and the fixes are structural (move code across
// the layer boundary, serialize the field) rather than reviewable one-line
// exceptions. Config-level allowlists (PurityAllow, PurityExempt, the layer
// spec itself) are the only knobs, and they live in reviewed code.

package lint

// VetConfig scopes the whole-program passes.
type VetConfig struct {
	// PurityRoots are the engine packages: every function declared in them,
	// and everything transitively reachable, must be pure.
	PurityRoots []string
	// PurityExempt packages are outside the proof: they may be impure and
	// are excluded from the call graph entirely. The layer spec must
	// independently guarantee the engine cannot import them.
	PurityExempt []string
	// ImpurePkgs are import path prefixes whose functions and variables are
	// impurity sinks (filesystem, network, process control).
	ImpurePkgs []string
	// PurityAllow lists exact qualified names ("os.IsNotExist") exempt from
	// ImpurePkgs classification.
	PurityAllow []string

	// Layers is the declarative import-layering spec.
	Layers []Layer

	// CheckpointScope are the packages holding CODACKPT serializers.
	CheckpointScope []string
	// EncodeNames / DecodeNames override the recognized serializer names;
	// nil means the defaults (CheckpointState/Checkpoint and
	// RestoreCheckpoint/RestoreCheckpointState/Resume).
	EncodeNames []string
	DecodeNames []string
}

// DefaultVetConfig is the CODA repository policy.
func DefaultVetConfig() VetConfig {
	return VetConfig{
		// The sealed engine: the sim event loop, every sched.Policy
		// implementation (sched's FIFO/DRF/Static and core's CODA
		// scheduler), the streaming trace source the event loop pulls
		// arrivals from, and the state machines they drive.
		PurityRoots: []string{
			"internal/sim", "internal/sched", "internal/core",
			"internal/cluster", "internal/membw", "internal/fair",
			"internal/perfmodel", "internal/chaos", "internal/trace",
		},
		// The runner (worker pool), the control plane (whose WAL fsyncs and
		// HTTP surface are host-facing by design) and the CLIs are the only
		// places allowed to touch the host; they are out of the proof, and
		// the layer spec below makes them unimportable from the engine.
		PurityExempt: []string{"internal/runner", "internal/ctl/", "cmd/"},
		ImpurePkgs:   []string{"os", "net", "syscall"},
		PurityAllow:  nil,

		Layers: DefaultLayers(),

		CheckpointScope: []string{
			"internal/sched", "internal/core", "internal/sim",
			"internal/cluster", "internal/fair", "internal/membw",
			"internal/ctl", "internal/trace",
		},
	}
}

// DefaultLayers is the repository's import-layering spec, low layers first.
// The two load-bearing prohibitions: no engine layer may reach "runner" (the
// sole goroutine-capable package) or "cmd", and only the persistence layers
// (atomicio, persist) and tooling may import os — the engine observes the
// host exclusively through values handed to it.
func DefaultLayers() []Layer {
	engineDeny := []string{"os", "net", "sync", "syscall"}
	return []Layer{
		{
			Name:     "base",
			Packages: []string{"internal/job", "internal/metrics"},
			DenyStd:  engineDeny,
		},
		{
			Name: "domain",
			Packages: []string{
				"internal/chaos", "internal/cluster", "internal/fair",
				"internal/membw", "internal/perfmodel",
			},
			Allow:   []string{"base"},
			DenyStd: engineDeny,
		},
		{
			// The one file-writing primitive (temp file + fsync + rename).
			Name:     "atomicio",
			Packages: []string{"internal/checkpoint/atomicio"},
			DenyStd:  []string{"net", "sync", "syscall"},
		},
		{
			// Persistence: the CODACKPT envelope and the history log (whose
			// RWMutex is the one vetted sync use outside the runner).
			Name:     "persist",
			Packages: []string{"internal/checkpoint", "internal/history"},
			Allow:    []string{"base", "atomicio"},
			DenyStd:  []string{"net", "syscall"},
		},
		{
			// The control-plane WAL: append-fsync framed records plus the
			// checkpoint store, both built on the atomicio primitive.
			Name:     "wal",
			Packages: []string{"internal/ctl/wal"},
			Allow:    []string{"atomicio"},
			DenyStd:  []string{"net", "sync", "syscall"},
		},
		{
			Name:     "sched",
			Packages: []string{"internal/sched", "internal/trace"},
			Allow:    []string{"base", "domain"},
			DenyStd:  engineDeny,
		},
		{
			Name:     "policy",
			Packages: []string{"internal/core"},
			Allow:    []string{"base", "domain", "persist", "sched"},
			DenyStd:  engineDeny,
		},
		{
			Name:     "engine",
			Packages: []string{"internal/sim"},
			Allow:    []string{"base", "domain", "sched"},
			DenyStd:  engineDeny,
		},
		{
			// The sole goroutine-capable package: overlaps independent runs.
			Name:     "runner",
			Packages: []string{"internal/runner"},
			Allow:    []string{"base", "domain", "sched", "policy", "engine"},
			DenyStd:  []string{"os", "net", "syscall"},
		},
		{
			// The control plane: the WAL-backed machine, the HTTP server in
			// front of it, and the client backoff helper. It may not reach
			// os/syscall directly — durability flows only through the wal
			// layer, so every write is a framed, fsync'd record. net stays
			// open for net/http; sync is vetted by GoroutineAllow.
			Name:     "serve",
			Packages: []string{"internal/ctl", "internal/ctl/retry"},
			Allow:    []string{"base", "domain", "persist", "sched", "engine", "wal"},
			DenyStd:  []string{"os", "syscall"},
		},
		{
			// The soak harness: recipes composing engine runs through the
			// runner, still host-free — the coda-soak CLI owns all I/O.
			Name:     "soak",
			Packages: []string{"internal/soak"},
			Allow:    []string{"base", "domain", "persist", "sched", "policy", "engine", "runner", "serve"},
			DenyStd:  engineDeny,
		},
		{
			Name:     "tooling",
			Packages: []string{"internal/lint"},
			DenyStd:  []string{"net", "sync", "syscall"},
		},
		{
			Name:     "apps",
			Packages: []string{"internal/experiments"},
			Allow:    []string{"base", "domain", "persist", "sched", "policy", "engine", "runner"},
			DenyStd:  engineDeny,
		},
		{
			Name:     "cmd",
			Packages: []string{"cmd/"},
			Allow: []string{
				"base", "domain", "atomicio", "persist", "sched", "policy",
				"engine", "runner", "wal", "serve", "soak", "tooling", "apps",
			},
		},
	}
}

// RunVet executes the three whole-program passes over the module and returns
// the findings sorted by position.
func RunVet(m *Module, cfg VetConfig) []Finding {
	var out []Finding
	keep := func(f Finding) { out = append(out, f) }
	checkPurity(m, cfg, keep)
	checkLayers(m, cfg, keep)
	checkCkptComplete(m, cfg, keep)
	SortFindings(out)
	return out
}

// VetTrees loads root's package trees and runs the whole-program passes —
// the entry point shared by the coda-vet CLI and the self-enforcing test.
func VetTrees(root string, trees []string, cfg VetConfig) ([]Finding, error) {
	m, err := LoadModule(root, trees)
	if err != nil {
		return nil, err
	}
	return RunVet(m, cfg), nil
}
