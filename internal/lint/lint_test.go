package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureConfig puts the whole fixture tree in every rule's scope, with
// internal/allowed on the goroutine allowlist.
func fixtureConfig() Config {
	return Config{
		DecisionPath:   []string{"internal/"},
		WallClockFree:  []string{"internal/"},
		Deterministic:  []string{"internal/"},
		GoroutineAllow: []string{"internal/allowed"},
		FloatEqScope:   []string{"internal/"},
		ErrCheckScope:  []string{"internal/"},
	}
}

var wantRe = regexp.MustCompile(`// want "([a-z-]+)"`)

// collectWants scans the fixture sources for `// want "<rule>"` markers and
// returns the expected findings as "file:line: rule" strings.
func collectWants(t *testing.T, dirs []string) map[string]bool {
	t.Helper()
	wants := make(map[string]bool)
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for line := 1; sc.Scan(); line++ {
				for _, match := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
					wants[fmt.Sprintf("%s:%d: %s", path, line, match[1])] = true
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}
	return wants
}

// TestFixtures runs the analyzer over the testdata module and requires the
// findings to match the `// want` expectations exactly — every seeded
// violation fires, every annotated variant stays quiet.
func TestFixtures(t *testing.T) {
	fixtureRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{
		filepath.Join(fixtureRoot, "internal", "api"),
		filepath.Join(fixtureRoot, "internal", "allowed"),
		filepath.Join(fixtureRoot, "internal", "fixture"),
	}
	m, err := LoadDirs(fixtureRoot, "example.com/m", dirs)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, fixtureConfig())

	got := make(map[string]bool, len(findings))
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Rule)
		if got[key] {
			t.Errorf("duplicate finding: %s", f)
		}
		got[key] = true
	}
	want := collectWants(t, dirs)
	for key := range want {
		if !got[key] {
			t.Errorf("missing finding: %s", key)
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Rule)
		if !want[key] {
			t.Errorf("unexpected finding: %s", f)
		}
	}

	// Each of the five rules must appear at least once, or the fixture has
	// stopped exercising part of the analyzer.
	rules := map[string]bool{}
	for _, f := range findings {
		rules[f.Rule] = true
	}
	for _, r := range []string{RuleOrderedMap, RuleWallClock, RuleGoroutines, RuleFloatEq, RuleUncheckedErr} {
		if !rules[r] {
			t.Errorf("fixture never triggered rule %s", r)
		}
	}
}

func TestMatchScope(t *testing.T) {
	cases := []struct {
		scope []string
		rel   string
		want  bool
	}{
		{[]string{"internal/core"}, "internal/core", true},
		{[]string{"internal/core"}, "internal/cores", false},
		{[]string{"internal/"}, "internal/core", true},
		{[]string{"internal/"}, "internal", true},
		{[]string{"internal/"}, "cmd/coda-sim", false},
		{[]string{"cmd/"}, "cmd/coda-sim", true},
		{nil, "internal/core", false},
	}
	for _, c := range cases {
		if got := matchScope(c.scope, c.rel); got != c.want {
			t.Errorf("matchScope(%v, %q) = %t, want %t", c.scope, c.rel, got, c.want)
		}
	}
}

// TestFindingsSorted pins the report order: findings come back sorted by
// file, line, rule so CLI output and test failures are stable.
func TestFindingsSorted(t *testing.T) {
	fixtureRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadDirs(fixtureRoot, "example.com/m", []string{
		filepath.Join(fixtureRoot, "internal", "api"),
		filepath.Join(fixtureRoot, "internal", "allowed"),
		filepath.Join(fixtureRoot, "internal", "fixture"),
	})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, fixtureConfig())
	if len(findings) < 2 {
		t.Fatalf("need at least two findings to check ordering, got %d", len(findings))
	}
	sorted := sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Rule < findings[j].Rule
	})
	if !sorted {
		t.Error("findings are not sorted by position")
	}
}
