package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lineOf returns the 1-based line of the first occurrence of substr in the
// file, failing the test if it is absent.
func lineOf(t *testing.T, path, substr string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if strings.Contains(sc.Text(), substr) {
			return line
		}
	}
	t.Fatalf("sentinel %q not found in %s", substr, path)
	return 0
}

// TestBadAnnotations covers the escape hatch's own failure modes: a bare
// annotation, stacked annotations, and an annotation on the wrong line are
// each rejected with a bad-annotation finding — and none of them suppress
// anything. The expectations are sentinel-based because a bare annotation
// cannot carry a `// want` marker without the marker becoming its reason.
func TestBadAnnotations(t *testing.T) {
	fixtureRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(fixtureRoot, "internal", "badann")
	m, err := LoadDirs(fixtureRoot, "example.com/m", []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, Config{DecisionPath: []string{"internal/"}})

	path := filepath.Join(dir, "badann.go")
	type exp struct {
		line    int
		rule    string
		msgPart string
	}
	wants := []exp{
		// The bare annotation (the line above the loop it fails to cover) is
		// reported, and the loop below it still fires.
		{lineOf(t, path, "sentinel: loop-after-bare") - 1, RuleBadAnnotation, "carries no reason"},
		{lineOf(t, path, "sentinel: loop-after-bare"), RuleOrderedMap, "map iteration"},
		// The upper of two stacked annotations is ambiguous and reported; the
		// lower one validly suppresses the loop, which therefore stays silent.
		{lineOf(t, path, "sentinel: the upper annotation"), RuleBadAnnotation, "stacked suppression annotations"},
		// The drifted annotation suppresses nothing: both it and the loop two
		// lines below are reported.
		{lineOf(t, path, "sentinel: drifted annotation"), RuleBadAnnotation, "suppresses no finding"},
		{lineOf(t, path, "sentinel: loop-after-drift"), RuleOrderedMap, "map iteration"},
	}

	if len(findings) != len(wants) {
		t.Errorf("want %d findings, got %d: %v", len(wants), len(findings), findings)
	}
	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || f.Pos.Line != w.line || f.Rule != w.rule {
				continue
			}
			if !strings.Contains(f.Message, w.msgPart) {
				t.Errorf("finding at line %d (%s): message %q lacks %q", w.line, w.rule, f.Message, w.msgPart)
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("missing finding: line %d rule %s (%s)", w.line, w.rule, w.msgPart)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestAnnotationWhitespaceReason: a reason of pure whitespace is still no
// reason. Built from a temp module because gofmt would strip the trailing
// whitespace out of a checked-in fixture.
func TestAnnotationWhitespaceReason(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "ws")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package ws\n\nfunc f(m map[string]int) int {\n" +
		"\t//coda:ordered-ok \t \n" + // whitespace-only "reason"
		"\tfor k := range m {\n\t\treturn len(k)\n\t}\n\treturn 0\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "ws.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadDirs(root, "example.com/ws", []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, Config{DecisionPath: []string{"internal/"}})
	if len(findings) != 2 {
		t.Fatalf("want bad-annotation + unsuppressed loop, got %v", findings)
	}
	var rules []string
	for _, f := range findings {
		rules = append(rules, f.Rule)
	}
	got := fmt.Sprintf("%v", rules)
	if !strings.Contains(got, RuleBadAnnotation) || !strings.Contains(got, RuleOrderedMap) {
		t.Fatalf("want one %s and one %s, got %v", RuleBadAnnotation, RuleOrderedMap, findings)
	}
}

// TestValidAnnotationStaysValid pins the contract the whole repository
// depends on: a reason-bearing annotation on the line above a finding
// suppresses it and produces no hygiene noise.
func TestValidAnnotationStaysValid(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "ok")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package ok\n\nfunc f(m map[string]int) int {\n" +
		"\t//coda:ordered-ok any-match probe; outcome independent of order\n" +
		"\tfor k := range m {\n\t\treturn len(k)\n\t}\n\treturn 0\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "ok.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadDirs(root, "example.com/ok", []string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if findings := Run(m, Config{DecisionPath: []string{"internal/"}}); len(findings) != 0 {
		t.Fatalf("valid annotation should suppress cleanly, got %v", findings)
	}
}
