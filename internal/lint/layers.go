package lint

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"
)

// The import-layering pass turns the repository's layering conventions into
// a checked DAG. Each module package belongs to exactly one named layer; a
// layer declares which other layers it may import and which stdlib subtrees
// are off limits. The spec is data, so "the engine must not know about the
// runner" and "only the persistence layer touches os" are enforced by CI
// instead of review vigilance.

// Layer is one stratum of the layer spec.
type Layer struct {
	// Name identifies the layer in findings and in Allow lists.
	Name string
	// Packages are the matchScope patterns assigning packages to this layer.
	Packages []string
	// Allow names the layers whose packages this layer may import. A layer
	// never imports itself or anything unlisted.
	Allow []string
	// DenyStd lists stdlib (or external) import path prefixes this layer
	// must not import; "os" covers "os" and "os/...".
	DenyStd []string
	// AllowStd lists exceptions to DenyStd, matched the same way.
	AllowStd []string
}

// pathHasPrefix reports whether import path p equals prefix or sits under it.
func pathHasPrefix(p, prefix string) bool {
	return p == prefix || strings.HasPrefix(p, prefix+"/")
}

// layerOf finds the unique layer for a package, reporting spec gaps.
func layerOf(layers []Layer, relPath string) (*Layer, error) {
	var found *Layer
	for i := range layers {
		if !matchScope(layers[i].Packages, relPath) {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("package %s matches layers %q and %q; the layer spec must be a partition",
				relPath, found.Name, layers[i].Name)
		}
		found = &layers[i]
	}
	if found == nil {
		return nil, fmt.Errorf("package %s is not covered by the layer spec; add it to a layer", relPath)
	}
	return found, nil
}

// validateLayerSpec rejects malformed specs: duplicate layer names, Allow
// entries naming unknown layers or the layer itself, and cycles in the
// layer-allow graph (the spec must be a DAG or "checked layering" means
// nothing).
func validateLayerSpec(layers []Layer) error {
	byName := make(map[string]*Layer, len(layers))
	for i := range layers {
		if _, dup := byName[layers[i].Name]; dup {
			return fmt.Errorf("layer %q declared twice", layers[i].Name)
		}
		byName[layers[i].Name] = &layers[i]
	}
	for i := range layers {
		for _, a := range layers[i].Allow {
			if a == layers[i].Name {
				return fmt.Errorf("layer %q allows itself; intra-layer imports are always forbidden", a)
			}
			if _, ok := byName[a]; !ok {
				return fmt.Errorf("layer %q allows unknown layer %q", layers[i].Name, a)
			}
		}
	}
	const (
		white = iota
		gray
		black
	)
	state := make(map[string]int, len(layers))
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("layer-allow cycle through %q; the spec must be a DAG", name)
		}
		state[name] = gray
		for _, dep := range byName[name].Allow {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[name] = black
		return nil
	}
	for i := range layers {
		if err := visit(layers[i].Name); err != nil {
			return err
		}
	}
	return nil
}

// checkLayers enforces the layer spec over every loaded package.
func checkLayers(m *Module, cfg VetConfig, keep func(Finding)) {
	layers := cfg.Layers
	if err := validateLayerSpec(layers); err != nil {
		// A broken spec is reported once, anchored at the module root.
		keep(Finding{Rule: RuleLayering, Message: "invalid layer spec: " + err.Error()})
		return
	}
	for _, pkg := range m.Packages {
		layer, err := layerOf(layers, pkg.RelPath)
		if err != nil {
			keep(Finding{
				Pos:     m.Fset.Position(pkg.Files[0].Package),
				Rule:    RuleLayering,
				Message: err.Error(),
			})
			continue
		}
		allowed := make(map[string]bool, len(layer.Allow))
		for _, a := range layer.Allow {
			allowed[a] = true
		}
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				checkImport(m, layers, layer, allowed, pkg, imp, path, keep)
			}
		}
	}
}

// checkImport validates one import declaration against the importing
// package's layer.
func checkImport(m *Module, layers []Layer, layer *Layer, allowed map[string]bool,
	pkg *Package, imp *ast.ImportSpec, path string, keep func(Finding)) {
	if pathHasPrefix(path, m.Path) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, m.Path), "/")
		target, err := layerOf(layers, rel)
		if err != nil {
			keep(Finding{
				Pos:     m.Fset.Position(imp.Pos()),
				Rule:    RuleLayering,
				Message: fmt.Sprintf("import of %s: %v", rel, err),
			})
			return
		}
		if target.Name == layer.Name {
			keep(Finding{
				Pos:  m.Fset.Position(imp.Pos()),
				Rule: RuleLayering,
				Message: fmt.Sprintf("%s imports %s within layer %q; intra-layer imports are forbidden — split the layer",
					pkg.RelPath, rel, layer.Name),
			})
			return
		}
		if !allowed[target.Name] {
			keep(Finding{
				Pos:  m.Fset.Position(imp.Pos()),
				Rule: RuleLayering,
				Message: fmt.Sprintf("%s (layer %q) imports %s (layer %q), which the layer spec does not allow",
					pkg.RelPath, layer.Name, rel, target.Name),
			})
		}
		return
	}
	for _, deny := range layer.DenyStd {
		if !pathHasPrefix(path, deny) {
			continue
		}
		exempt := false
		for _, allow := range layer.AllowStd {
			if pathHasPrefix(path, allow) {
				exempt = true
				break
			}
		}
		if !exempt {
			keep(Finding{
				Pos:  m.Fset.Position(imp.Pos()),
				Rule: RuleLayering,
				Message: fmt.Sprintf("%s (layer %q) imports %q, which is denied in this layer",
					pkg.RelPath, layer.Name, path),
			})
		}
		return
	}
}
