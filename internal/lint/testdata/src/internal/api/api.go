// Package api supplies a module-internal error-returning function for the
// unchecked-error fixtures.
package api

import "errors"

// Do fails unconditionally.
func Do() error { return errors.New("api: boom") }
