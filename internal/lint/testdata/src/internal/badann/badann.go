// Package badann seeds malformed suppression annotations: bare (no reason),
// stacked, and drifted onto the wrong line. It is checked by
// annotations_test.go with explicit sentinel-based expectations instead of
// `// want` markers — a bare annotation cannot carry a marker without the
// marker text becoming its reason.
package badann

// noReason: a bare annotation is void — it suppresses nothing and is itself
// reported.
func noReason(m map[string]int) int {
	//coda:ordered-ok
	for k := range m { // sentinel: loop-after-bare
		return len(k)
	}
	return 0
}

// stacked: two annotations in a row are ambiguous; the upper one is reported
// and only the lower one suppresses.
func stacked(m map[string]int) int {
	//coda:ordered-ok sentinel: the upper annotation
	//coda:ordered-ok sentinel: the lower annotation carries the real reason
	for k := range m {
		return len(k)
	}
	return 0
}

// wrongLine: the annotation drifted two lines above the loop, so it covers
// nothing — the loop is reported, and so is the annotation.
func wrongLine(m map[string]int) int {
	//coda:ordered-ok sentinel: drifted annotation

	for k := range m { // sentinel: loop-after-drift
		return len(k)
	}
	return 0
}
