// Package fixture seeds one violation and one suppressed variant of every
// coda-lint rule. Each `// want "<rule>"` comment marks a line the linter
// must flag; every other line must stay clean.
package fixture

import (
	"math/rand"
	"sync"
	"time"

	"example.com/m/internal/api"
)

// counters exercises ordered-map-iteration and its escape hatches.
func counters(m map[string]int) []string {
	var keys []string
	for k := range m { // want "ordered-map-iteration"
		keys = append(keys, k)
	}

	//coda:ordered-ok fixture: a reason-bearing annotation suppresses the finding
	for k := range m {
		keys = append(keys, k)
	}

	total := 0
	for _, v := range m { // integer accumulation commutes: no finding
		total += v
	}
	if total > 0 {
		keys = append(keys, "positive")
	}
	return keys
}

// clocks exercises no-wall-clock for both the host clock and global rand.
func clocks(rng *rand.Rand) (time.Time, int) {
	now := time.Now() // want "no-wall-clock"

	//coda:ordered-ok fixture: the annotation works for every rule
	later := time.Now()
	_ = later

	n := rand.Intn(10) // want "no-wall-clock"
	n += rng.Intn(10)  // explicitly seeded generator: no finding
	return now, n
}

// spawn exercises no-stray-goroutines.
func spawn(done chan struct{}) {
	go func() { close(done) }() // want "no-stray-goroutines"

	//coda:ordered-ok fixture: annotated goroutine
	go func() {}()
}

var mu sync.Mutex // want "no-stray-goroutines"

//coda:ordered-ok fixture: annotated mutex
var mu2 sync.Mutex

// floats exercises float-eq. The mutex method calls are legal: only the
// sync package qualifier itself is flagged, not values of sync types.
func floats(a, b float64) bool {
	mu.Lock()
	mu2.Lock()
	if a == b { // want "float-eq"
		return true
	}
	//coda:ordered-ok fixture: annotated exact comparison
	if a != b {
		return a > b // ordering comparisons stay legal
	}
	return false
}

// errs exercises unchecked-error.
func errs() {
	api.Do() // want "unchecked-error"

	//coda:ordered-ok fixture: annotated discard
	api.Do()

	_ = api.Do() // explicit discard: no finding

	if err := api.Do(); err != nil { // handled: no finding
		_ = err
	}

	defer api.Do() // want "unchecked-error"
}
