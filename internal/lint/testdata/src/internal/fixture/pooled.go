// pooled.go seeds the allocation-discipline idioms the simulator's fast
// path leans on — an instance-owned event free list, scratch-slice reuse,
// and clear()-based map recycling — and checks the linter stays quiet on
// the idioms themselves while still firing on real violations written
// inside pooled code.
package fixture

// pooledEvent mirrors the simulator's heap entry shape.
type pooledEvent struct {
	at  int64
	seq int64
}

// eventPool is an instance-owned free list (never a sync.Pool: recycle
// order must be deterministic) plus per-pass scratch.
type eventPool struct {
	free    []*pooledEvent
	scratch []int64
	seen    map[int64]bool
}

// get pops a recycled event or allocates; the zeroing write must not trip
// any rule.
func (p *eventPool) get() *pooledEvent {
	if n := len(p.free); n > 0 {
		ev := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*ev = pooledEvent{}
		return ev
	}
	return new(pooledEvent)
}

// put recycles an event into the free list.
func (p *eventPool) put(ev *pooledEvent) {
	p.free = append(p.free, ev)
}

// drainPending exercises the scratch-reuse pattern: clear() keeps the map
// allocation, buf[:0] keeps the slice allocation, and map iteration inside
// pooled code is held to the same ordered-iteration standard as anywhere
// else.
func (p *eventPool) drainPending(pending map[int64]*pooledEvent) []int64 {
	if p.seen == nil {
		p.seen = make(map[int64]bool)
	}
	clear(p.seen)
	out := p.scratch[:0]
	for seq := range pending { // want "ordered-map-iteration"
		out = append(out, seq)
	}
	//coda:ordered-ok fixture: collected seqs are fully ordered by the caller's sort
	for seq := range pending {
		if !p.seen[seq] {
			p.seen[seq] = true
			out = append(out, seq)
		}
	}
	p.scratch = out
	return out
}
