// Package allowed sits on the goroutine allowlist: concurrency here is
// legal and must produce no findings.
package allowed

import "sync"

// Counter is a mutex-guarded counter like internal/history's log.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc bumps the counter from any goroutine.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Spawn increments asynchronously.
func (c *Counter) Spawn(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		c.Inc()
	}()
}
