// Package store seeds checkpoint-completeness violations. Good round-trips
// every field; Drop forgets one in the encoder, Orphan forgets one in the
// decoder, and Solo has an encoder with no decoder at all.
package store

import "encoding/json"

// Good round-trips every field: no findings.
type Good struct{ a, b int }

type goodState struct {
	A int
	B int
}

// CheckpointState encodes both fields.
func (g *Good) CheckpointState() ([]byte, error) {
	return json.Marshal(goodState{A: g.a, B: g.b})
}

// RestoreCheckpoint decodes both fields.
func (g *Good) RestoreCheckpoint(data []byte) error {
	var st goodState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	g.a = st.A
	g.b = st.B
	return nil
}

// Drop's encoder forgets Dropped: the field would arrive zero-valued after
// every resume. The encoder also delegates to a same-package helper, so the
// pass must follow the encode closure, not just the method body.
type Drop struct{ a, d int }

type dropState struct {
	A       int
	Dropped int // want "checkpoint-complete"
}

// CheckpointState builds the state through a helper and never sets Dropped.
func (x *Drop) CheckpointState() ([]byte, error) {
	st := dropState{}
	fillA(&st, x.a)
	return json.Marshal(st)
}

func fillA(st *dropState, a int) { st.A = a }

// RestoreCheckpoint reads both fields.
func (x *Drop) RestoreCheckpoint(data []byte) error {
	var st dropState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	x.a = st.A
	x.d = st.Dropped
	return nil
}

// Orphan's decoder forgets Leak: the encoder persists it, the decoder
// silently drops it.
type Orphan struct{ a, l int }

type orphanState struct {
	A    int
	Leak int // want "checkpoint-complete"
}

// CheckpointState encodes both fields.
func (o *Orphan) CheckpointState() ([]byte, error) {
	return json.Marshal(orphanState{A: o.a, Leak: o.l})
}

// RestoreCheckpoint reads only A.
func (o *Orphan) RestoreCheckpoint(data []byte) error {
	var st orphanState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	o.a = st.A
	return nil
}

// Solo has an encoder and no decoder anywhere in the package: write-only
// checkpoint state.
type Solo struct{ a int }

type soloState struct{ A int }

// CheckpointState persists state nothing can restore.
func (s *Solo) CheckpointState() ([]byte, error) { // want "checkpoint-complete"
	return json.Marshal(soloState{A: s.a})
}
