// Package orch is the top layer: importing base is allowed, so this file is
// clean.
package orch

import "example.com/layers/internal/base"

// M delegates downward, which the spec permits.
func M() int { return base.N() }
