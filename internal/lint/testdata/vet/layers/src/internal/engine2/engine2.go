// Package engine2 shares engine's layer and imports it sideways: intra-layer
// imports are forbidden even between packages of the same layer.
package engine2

import "example.com/layers/internal/engine" // want "import-layering"

// U delegates sideways, which the spec forbids.
func U() int { return engine.Use() }
