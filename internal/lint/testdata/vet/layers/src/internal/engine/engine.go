// Package engine sits in the middle layer and violates the spec twice: it
// imports a denied stdlib package and reaches up into the orchestration
// layer above it.
package engine

import (
	"os" // want "import-layering"

	"example.com/layers/internal/base"
	"example.com/layers/internal/orch" // want "import-layering"
)

// Use exercises every import so the file type-checks.
func Use() int { return base.N() + orch.M() + len(os.Args) }
