// Package stray is assigned to no layer: the spec must reject uncovered
// packages instead of silently skipping them.
package stray // want "import-layering"

// S exists so the package is non-empty.
func S() int { return 0 }
