// Package base is the bottom layer of the layering fixture: it may import
// nothing from the module.
package base

// N is a leaf helper.
func N() int { return 1 }
