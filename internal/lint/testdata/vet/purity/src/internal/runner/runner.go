// Package runner is the fixture's exempt package: impure on purpose, and it
// must stay silent — it is outside the proof and outside the call graph.
package runner

import "os"

// Hammer does everything the engine must never do.
func Hammer() {
	go func() { _ = os.Getenv("HOME") }()
}
