// Package engine is the purity fixture's root package: every function here,
// and everything transitively reachable, must be pure. The impurities live
// in internal/util, several calls deep, so every finding must carry the
// witness chain from a function in this package to the sink line.
package engine

import "example.com/vet/internal/util"

// Run drives the fixture event loop through a helper chain that ends at a
// wall-clock read three calls deep.
func Run() int { return step() }

func step() int { return util.Tick() }

// Spawn reaches a goroutine spawn hidden in a helper.
func Spawn() { util.Fork() }

// Draw reaches the global rand stream through a helper.
func Draw() int { return util.Draw() }

// Env reaches the host environment through a helper.
func Env() string { return util.Env() }

// MethodValue takes a method value and calls it later: the reference alone
// must create the reachability edge, even though the call site is opaque.
func MethodValue() int {
	var c util.Clock
	f := c.Read
	return f()
}

// Ticker is a module-declared interface; calls through it must dispatch
// conservatively over every module implementation.
type Ticker interface{ Tick() int }

// Dispatch reaches util.BadTicker.Tick only via interface dispatch.
func Dispatch(t Ticker) int { return t.Tick() }

// hooks carries a function-typed field; storing an impure function into it
// must create the edge at the storage site.
type hooks struct{ fn func() string }

// FieldCall stores util.Env2 into a func-typed field and calls it through
// the field.
func FieldCall() string {
	h := hooks{fn: util.Env2}
	return h.fn()
}

// Pure is the control: pure helpers produce no findings.
func Pure() int { return util.Add(1, 2) }
