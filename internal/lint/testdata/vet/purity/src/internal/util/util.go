// Package util holds helpers reachable from the engine fixture — some pure,
// some not. Purity findings anchor at the sink lines in this file; each
// carries the witness chain from the engine root that reached it.
package util

import (
	"math/rand"
	"os"
	"time"
)

// Tick -> clock -> time.Now is the three-deep wall-clock chain.
func Tick() int { return clock() }

func clock() int {
	return int(time.Now().UnixNano()) // want "transitive-purity"
}

// Fork spawns a goroutine.
func Fork() {
	go func() {}() // want "transitive-purity"
}

// Draw uses the global rand stream.
func Draw() int {
	return rand.Intn(10) // want "transitive-purity"
}

// Env touches the host environment.
func Env() string {
	return os.Getenv("HOME") // want "transitive-purity"
}

// Env2 is reached only through a func-typed struct field in the engine.
func Env2() string {
	return os.Getenv("PATH") // want "transitive-purity"
}

// Clock.Read is reached only as a method value.
type Clock struct{}

// Read observes the wall clock.
func (Clock) Read() int {
	return int(time.Since(time.Time{})) // want "transitive-purity"
}

// GoodTicker implements engine.Ticker purely: dispatch reaches it too, but
// there is nothing to report.
type GoodTicker struct{}

// Tick is pure.
func (GoodTicker) Tick() int { return 1 }

// BadTicker implements engine.Ticker impurely: it is reachable only through
// conservative interface dispatch.
type BadTicker struct{}

// Tick observes the wall clock.
func (BadTicker) Tick() int {
	return int(time.Now().Unix()) // want "transitive-purity"
}

// Add is pure.
func Add(a, b int) int { return a + b }
