// Package sim is a production-policy fixture: the engine package must stay
// single-threaded, so a goroutine here has to fail no-stray-goroutines
// under the repository's DefaultConfig even though internal/runner is
// allowlisted.
package sim

func fanOut(ch chan int) {
	go func() { ch <- 1 }() // want "no-stray-goroutines"
}

var _ = fanOut
