// Package core is a production-policy fixture: the scheduler package may
// not reach for sync primitives under the repository's DefaultConfig.
package core

import "sync"

var mu sync.Mutex // want "no-stray-goroutines"

func critical(f func()) {
	mu.Lock()
	defer mu.Unlock()
	f()
}

var _ = critical
