// Package runner is a production-policy fixture: the worker-pool package
// is the one deterministic-adjacent package the repository's DefaultConfig
// allowlists, so its goroutines and sync use must produce zero findings.
package runner

import "sync"

func pool(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(w func()) {
			defer wg.Done()
			w()
		}(w)
	}
	wg.Wait()
}

var _ = pool
