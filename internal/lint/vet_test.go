package lint

import (
	"strings"
	"testing"
)

// TestRepositoryIsVetClean is the whole-program self-enforcing pass: the
// three vet passes run over the repository's own internal/ and cmd/ trees
// with the production config, and any finding fails the build. This is the
// proof the engine advertises — no reachable wall clock, rand, host I/O, or
// goroutine; the layer DAG holds; every checkpoint field round-trips.
func TestRepositoryIsVetClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := VetTrees(root, []string{"internal", "cmd"}, DefaultVetConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Log("vet findings have no annotation escape hatch; fix structurally or adjust the reviewed spec in vet.go (see DESIGN.md)")
	}
}

// TestDefaultVetConfigCoversEngine pins the policy itself: the purity roots
// must include the engine and every scheduling package, and the exempt list
// must stay exactly the host-facing pair. Loosening the proof is a reviewed
// change here, not a quiet config drift.
func TestDefaultVetConfigCoversEngine(t *testing.T) {
	cfg := DefaultVetConfig()
	for _, pkg := range []string{
		"internal/sim", "internal/sched", "internal/core", "internal/cluster",
		"internal/membw", "internal/fair", "internal/perfmodel", "internal/chaos",
	} {
		if !matchScope(cfg.PurityRoots, pkg) {
			t.Errorf("purity roots no longer cover %s", pkg)
		}
	}
	for _, pkg := range []string{"internal/runner", "cmd/coda-sim"} {
		if !matchScope(cfg.PurityExempt, pkg) {
			t.Errorf("purity exemptions no longer cover %s", pkg)
		}
	}
	if matchScope(cfg.PurityExempt, "internal/sim") {
		t.Error("the engine must never be purity-exempt")
	}
}

// TestVetFindingsSorted: RunVet output is ordered by (file, line, rule) so
// CI artifacts diff clean between runs.
func TestVetFindingsSorted(t *testing.T) {
	m, _ := vetFixture(t, "layers", "example.com/layers",
		"internal/base", "internal/engine", "internal/engine2",
		"internal/orch", "internal/stray")
	findings := RunVet(m, VetConfig{
		Layers:          layersFixtureSpec(),
		PurityRoots:     []string{"internal/engine"},
		ImpurePkgs:      []string{"net", "syscall"}, // not os: layer findings only
		CheckpointScope: nil,
	})
	if len(findings) < 2 {
		t.Fatalf("need at least two findings to check ordering, got %d", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("findings out of order: %s before %s", a, b)
		}
	}
}

// BenchmarkVet measures analyzer wall time over the real module, split into
// the load/type-check phase and each pass, so the CI time budget documented
// in .github/workflows/ci.yml has a measured basis. Run with:
//
//	go test ./internal/lint -bench BenchmarkVet -benchtime 3x
func BenchmarkVet(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	trees := []string{"internal", "cmd"}

	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LoadModule(root, trees); err != nil {
				b.Fatal(err)
			}
		}
	})

	m, err := LoadModule(root, trees)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultVetConfig()
	b.Run("passes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if findings := RunVet(m, cfg); len(findings) != 0 {
				b.Fatalf("module not vet-clean: %v", findings[0])
			}
		}
	})
	b.Run("lint", func(b *testing.B) {
		lintCfg := DefaultConfig()
		for i := 0; i < b.N; i++ {
			Run(m, lintCfg)
		}
	})
}

// TestVetMessagesAreActionable: every finding names its rule's fix surface —
// purity messages embed the chain, layer messages name both layers or the
// spec, checkpoint messages name the field's fate.
func TestVetMessagesAreActionable(t *testing.T) {
	m, _ := vetFixture(t, "purity", "example.com/vet",
		"internal/engine", "internal/util", "internal/runner")
	for _, f := range runPurity(t, m, purityFixtureConfig()) {
		if !strings.Contains(f.Message, " -> ") && len(f.Chain) > 1 {
			t.Errorf("multi-hop purity finding without a rendered chain: %s", f.Message)
		}
	}
}
