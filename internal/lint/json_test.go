package lint

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestMarshalFindings pins the JSON artifact contract: an array (never
// null), stable field order, module-relative slash paths, and the witness
// chain present exactly when a finding has one.
func TestMarshalFindings(t *testing.T) {
	base := filepath.Join("/", "repo")
	findings := []Finding{
		{
			Pos:     token.Position{Filename: filepath.Join(base, "internal", "a.go"), Line: 3},
			Rule:    RulePurity,
			Message: "x reads the wall clock",
			Chain:   []string{"internal/sim.Run", "internal/util.clock"},
		},
		{
			Pos:     token.Position{Filename: filepath.Join(base, "internal", "b.go"), Line: 9},
			Rule:    RuleLayering,
			Message: "bad import",
		},
	}
	data, err := MarshalFindings(findings, base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("JSON output must end with a newline")
	}
	var got []FindingJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %d", len(got))
	}
	if got[0].File != "internal/a.go" || got[1].File != "internal/b.go" {
		t.Errorf("paths not relativized: %q, %q", got[0].File, got[1].File)
	}
	if len(got[0].Chain) != 2 || got[0].Chain[1] != "internal/util.clock" {
		t.Errorf("chain not preserved: %v", got[0].Chain)
	}
	if got[1].Chain != nil {
		t.Errorf("chainless finding must omit the chain, got %v", got[1].Chain)
	}
	if strings.Contains(string(data), `"chain": null`) {
		t.Error("chain must be omitted, not null")
	}
}

// TestMarshalFindingsEmpty: a clean run serializes as [] so CI artifact
// consumers never see null.
func TestMarshalFindingsEmpty(t *testing.T) {
	data, err := MarshalFindings(nil, "/repo")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "[]" {
		t.Fatalf("clean run must serialize as [], got %q", data)
	}
}

// TestRelPath covers the display-path fallbacks.
func TestRelPath(t *testing.T) {
	abs := filepath.Join("/", "other", "x.go")
	cases := []struct{ base, path, want string }{
		{filepath.Join("/", "repo"), filepath.Join("/", "repo", "a", "x.go"), "a/x.go"},
		{filepath.Join("/", "repo"), abs, abs}, // escapes base: stays absolute
		{"", abs, abs},
		{filepath.Join("/", "repo"), "", ""},
	}
	for _, c := range cases {
		if got := RelPath(c.base, c.path); got != c.want {
			t.Errorf("RelPath(%q, %q) = %q, want %q", c.base, c.path, got, c.want)
		}
	}
}
