package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// JSON findings output for CI: stable field order, findings pre-sorted by
// (file, line, rule), file paths relative to a base directory so two runs of
// the same tree from different checkouts diff clean. Both CLIs expose it as
// -json; the CI vet job uploads the result as an artifact.

// FindingJSON is the serialized form of one finding.
type FindingJSON struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Rule    string   `json:"rule"`
	Message string   `json:"message"`
	Chain   []string `json:"chain,omitempty"`
}

// MarshalFindings renders findings as an indented JSON array (never null:
// a clean run is []). Paths are relativized against baseDir when possible.
func MarshalFindings(findings []Finding, baseDir string) ([]byte, error) {
	out := make([]FindingJSON, 0, len(findings))
	for _, f := range findings {
		out = append(out, FindingJSON{
			File:    RelPath(baseDir, f.Pos.Filename),
			Line:    f.Pos.Line,
			Rule:    f.Rule,
			Message: f.Message,
			Chain:   f.Chain,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// RelPath relativizes path against base for display, falling back to the
// absolute path when it escapes base.
func RelPath(base, path string) string {
	if base == "" || path == "" {
		return path
	}
	rel, err := filepath.Rel(base, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}
