package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds the module-wide call graph the transitive-purity pass
// walks. Nodes are function and method declarations; edges are conservative
// "may call or may hold a reference to" relations:
//
//   - a direct call adds an edge to the callee;
//   - a method value or function value (f := x.M; handlers[k] = fn; a
//     function-typed struct field assignment) adds an edge at the point the
//     reference is taken, so a function stored now and invoked later through
//     a func-typed field is still reachable from whoever stored it;
//   - a call through an interface declared in this module adds an edge to
//     the matching method of every module type implementing the interface
//     (conservative over all implementations).
//
// Calls through interfaces declared outside the module (io.Writer, error,
// sort.Interface...) are not expanded: the engine passes only module or
// stdlib values through them, and expanding fmt.Stringer/error over every
// module type would drown the graph in phantom edges. The import-layering
// pass independently guarantees the engine cannot even import the packages
// whose behavior such an expansion would need to track.

// graphNode is one declared function or method in the call graph.
type graphNode struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl

	// edges are outgoing may-call edges in first-occurrence source order
	// (the graph walk must be deterministic for stable witness chains).
	edges []graphEdge
	// sinks are the impurity sites found directly inside this function.
	sinks []puritySink
}

// graphEdge is one may-call edge.
type graphEdge struct {
	to  *types.Func
	pos token.Position
	// via notes interface dispatch: the interface method the edge came
	// through, "" for static calls and references.
	via string
}

// puritySink is one direct impurity inside a function body.
type puritySink struct {
	pos  token.Position
	desc string
}

// callGraph is the whole-module graph plus the index needed to walk it.
type callGraph struct {
	m *Module
	// order lists nodes deterministically: package load order, then file
	// order, then declaration order.
	order []*graphNode
	byFn  map[*types.Func]*graphNode
}

// funcDisplayName renders fn for witness chains: "internal/sim.(*Simulator).Run"
// or "internal/fair.NewAccountant".
func (g *callGraph) funcDisplayName(fn *types.Func) string {
	node := g.byFn[fn]
	pkgPath := fn.Pkg().Path()
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, g.m.Path), "/")
	if rel == "" {
		rel = pkgPath
	}
	if node != nil && node.decl.Recv != nil {
		sig := fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			return fmt.Sprintf("%s.(%s).%s", rel, types.TypeString(recv.Type(), func(p *types.Package) string { return "" }), fn.Name())
		}
	}
	return rel + "." + fn.Name()
}

// buildCallGraph constructs the graph over every package not matched by the
// exempt scope. sinkScan, when non-nil, is invoked on every AST node of each
// function body and may record impurity sinks on the node.
func buildCallGraph(m *Module, exempt []string, cfg VetConfig) *callGraph {
	g := &callGraph{m: m, byFn: make(map[*types.Func]*graphNode)}

	// First pass: register every declared function in a non-exempt package.
	for _, pkg := range m.Packages {
		if matchScope(exempt, pkg.RelPath) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &graphNode{fn: fn, pkg: pkg, decl: fd}
				g.order = append(g.order, node)
				g.byFn[fn] = node
			}
		}
	}

	impls := buildImplIndex(m, g)

	// Second pass: edges and sinks.
	for _, node := range g.order {
		g.scanBody(node, impls, cfg)
	}
	return g
}

// scanBody records node's outgoing edges and direct sinks.
func (g *callGraph) scanBody(node *graphNode, impls *implIndex, cfg VetConfig) {
	info := node.pkg.Info
	seen := make(map[*types.Func]bool)
	addEdge := func(to *types.Func, pos token.Pos, via string) {
		if to == nil || seen[to] {
			return
		}
		if _, inGraph := g.byFn[to]; !inGraph {
			return // exempt or bodyless (declared via assembly/stubs)
		}
		seen[to] = true
		node.edges = append(node.edges, graphEdge{to: to, pos: g.m.Fset.Position(pos), via: via})
	}

	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			node.sinks = append(node.sinks, puritySink{
				pos:  g.m.Fset.Position(x.Pos()),
				desc: "spawns a goroutine (go statement)",
			})
		case *ast.SelectorExpr:
			// Qualified references into impure packages (os, net, syscall,
			// wall clock, global rand) are sinks; see purity.go.
			if sink, ok := puritySinkFor(info, x, cfg); ok {
				node.sinks = append(node.sinks, puritySink{pos: g.m.Fset.Position(x.Pos()), desc: sink})
			}
		case *ast.CallExpr:
			// Interface dispatch: a call whose callee is an abstract method
			// fans out to every module implementation.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && isInterfaceMethod(fn) {
					for _, impl := range impls.resolve(fn) {
						addEdge(impl, x.Pos(), g.funcDisplayName(impl))
					}
				}
			}
		case *ast.Ident:
			// Any use of a function identifier — call, method value, func
			// value stored into a field or passed along — is an edge.
			if fn, ok := info.Uses[x].(*types.Func); ok && !isInterfaceMethod(fn) {
				addEdge(fn, x.Pos(), "")
			}
		}
		return true
	})
}

// isInterfaceMethod reports whether fn is declared on an interface type.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// implIndex maps module-declared interface methods to the concrete module
// methods that may stand behind them at a dispatch site.
type implIndex struct {
	g *callGraph
	// namedTypes are the module's concrete named types, in deterministic
	// (package, then scope-name) order.
	namedTypes []*types.Named
	cache      map[*types.Func][]*types.Func
}

// buildImplIndex collects every concrete named type declared in a non-exempt
// module package.
func buildImplIndex(m *Module, g *callGraph) *implIndex {
	idx := &implIndex{g: g, cache: make(map[*types.Func][]*types.Func)}
	for _, pkg := range m.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			idx.namedTypes = append(idx.namedTypes, named)
		}
	}
	return idx
}

// resolve returns the concrete module methods a call to abstract method fn
// may dispatch to. Only interfaces declared inside the module are expanded.
func (idx *implIndex) resolve(fn *types.Func) []*types.Func {
	if impls, ok := idx.cache[fn]; ok {
		return impls
	}
	var impls []*types.Func
	idx.cache[fn] = nil
	if fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), idx.g.m.Path) {
		return nil // interface declared outside the module: not expanded
	}
	recv := fn.Type().(*types.Signature).Recv()
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	for _, named := range idx.namedTypes {
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, named.Obj().Pkg(), fn.Name())
		method, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if _, inGraph := idx.g.byFn[method]; inGraph {
			impls = append(impls, method)
		}
	}
	idx.cache[fn] = impls
	return impls
}
