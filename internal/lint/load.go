package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the linted module.
type Package struct {
	// RelPath is the package path relative to the module root, e.g.
	// "internal/core" or "cmd/coda-sim".
	RelPath string
	// Dir is the absolute directory the files came from.
	Dir string
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Info carries the type-checker's expression and identifier facts.
	Info *types.Info
	// Types is the checked package object.
	Types *types.Package
}

// Module is the full unit the linter runs over.
type Module struct {
	// Path is the module import path from go.mod.
	Path string
	// Root is the module root directory.
	Root string
	// Fset positions every file in the module.
	Fset *token.FileSet
	// Packages are the loaded packages in dependency order.
	Packages []*Package
}

// FindModuleRoot walks upward from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs lists directories under root/<tree> that contain at least one
// non-test .go file, skipping testdata and hidden directories.
func packageDirs(root string, trees []string) ([]string, error) {
	var dirs []string
	for _, tree := range trees {
		base := filepath.Join(root, tree)
		if _, err := os.Stat(base); err != nil {
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if isLintableGoFile(e.Name()) {
					dirs = append(dirs, path)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// isLintableGoFile reports whether name is a non-test Go source file.
func isLintableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// LoadModule parses and type-checks every package under root's trees
// (e.g. "internal", "cmd"). Type-checking is fully offline: stdlib imports
// resolve from GOROOT source, module-internal imports resolve from the
// packages being loaded.
func LoadModule(root string, trees []string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root, trees)
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Root: root, Fset: token.NewFileSet()}
	if err := m.loadDirs(dirs); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadDirs builds a Module from an explicit directory set, assigning each
// directory the import path modPath + "/" + its path relative to root.
// Used by the fixture tests to lint testdata packages under a fake module.
func LoadDirs(root, modPath string, dirs []string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Root: root, Fset: token.NewFileSet()}
	if err := m.loadDirs(dirs); err != nil {
		return nil, err
	}
	return m, nil
}

// FilterToDirs restricts findings to the requested package patterns ("./...",
// "./internal/sim", "internal/sched/..."), resolved relative to dir. With no
// arguments or a bare "./..." everything stays. A pattern naming a directory
// that does not exist is an error — a typo'd path must not look like a clean
// run. Shared by the coda-lint and coda-vet CLIs.
func FilterToDirs(findings []Finding, args []string, dir string) ([]Finding, error) {
	var prefixes []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return findings, nil
		}
		pat, _ := strings.CutSuffix(a, "/...") // a dir prefix covers both the exact and recursive case
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(dir, pat)
		}
		if st, err := os.Stat(abs); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", a)
		}
		prefixes = append(prefixes, abs+string(filepath.Separator))
	}
	if len(prefixes) == 0 {
		return findings, nil
	}
	out := []Finding{}
	for _, f := range findings {
		for _, p := range prefixes {
			if strings.HasPrefix(f.Pos.Filename, p) {
				out = append(out, f)
				break
			}
		}
	}
	return out, nil
}

// rawPkg is a parsed-but-unchecked package.
type rawPkg struct {
	relPath string
	dir     string
	files   []*ast.File
	imports map[string]bool
}

func (m *Module) loadDirs(dirs []string) error {
	raw := make(map[string]*rawPkg) // import path -> parsed package
	for _, dir := range dirs {
		dir, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(m.Root, dir)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		rp := &rawPkg{relPath: rel, dir: dir, imports: make(map[string]bool)}
		ents, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !isLintableGoFile(e.Name()) {
				continue
			}
			file, err := parser.ParseFile(m.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("lint: %w", err)
			}
			rp.files = append(rp.files, file)
			for _, imp := range file.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil {
					rp.imports[p] = true
				}
			}
		}
		if len(rp.files) > 0 {
			raw[m.importPath(rel)] = rp
		}
	}

	order, err := topoSort(raw)
	if err != nil {
		return err
	}

	imp := &moduleImporter{
		module:  m,
		std:     importer.ForCompiler(m.Fset, "source", nil),
		checked: make(map[string]*types.Package),
	}
	for _, path := range order {
		pkg, err := m.check(path, raw[path], imp)
		if err != nil {
			return err
		}
		imp.checked[path] = pkg.Types
		m.Packages = append(m.Packages, pkg)
	}
	return nil
}

// importPath maps a module-relative package path to its import path.
func (m *Module) importPath(rel string) string {
	if rel == "." || rel == "" {
		return m.Path
	}
	return m.Path + "/" + rel
}

// topoSort orders the packages so every module-internal import is checked
// before its importers.
func topoSort(raw map[string]*rawPkg) ([]string, error) {
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		white = iota // unvisited
		gray         // on the current DFS path
		black        // done
	)
	state := make(map[string]int, len(raw))
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle through %s", p)
		}
		state[p] = gray
		deps := make([]string, 0, len(raw[p].imports))
		for dep := range raw[p].imports {
			if _, ok := raw[dep]; ok {
				deps = append(deps, dep)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the already-checked
// set and everything else (the stdlib) from GOROOT source.
type moduleImporter struct {
	module  *Module
	std     types.Importer
	checked map[string]*types.Package
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := mi.checked[path]; ok {
		return pkg, nil
	}
	if path == mi.module.Path || strings.HasPrefix(path, mi.module.Path+"/") {
		return nil, fmt.Errorf("lint: module package %s imported but not loaded (is it outside the linted trees?)", path)
	}
	return mi.std.Import(path)
}

// check type-checks one parsed package.
func (m *Module) check(path string, rp *rawPkg, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, m.Fset, rp.files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{
		RelPath: rp.relPath,
		Dir:     rp.dir,
		Files:   rp.files,
		Info:    info,
		Types:   tpkg,
	}, nil
}
