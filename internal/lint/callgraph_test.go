package lint

import (
	"strings"
	"testing"
)

// These tests pin the call-graph builder's hard cases: the purity proof is
// only as strong as the edges, so each indirection idiom — plain helper
// chains, method values, conservative interface dispatch, function-typed
// struct fields — must produce a finding whose witness chain names the exact
// route from the engine root to the sink.
func TestCallGraphWitnessChains(t *testing.T) {
	m, _ := vetFixture(t, "purity", "example.com/vet",
		"internal/engine", "internal/util", "internal/runner")
	findings := runPurity(t, m, purityFixtureConfig())

	chains := make(map[string]bool, len(findings))
	for _, f := range findings {
		chains[strings.Join(f.Chain, " -> ")] = true
	}
	for _, want := range []struct{ why, chain string }{
		{"three-deep helper chain",
			"internal/engine.step -> internal/util.Tick -> internal/util.clock"},
		{"goroutine spawn behind a helper",
			"internal/engine.Spawn -> internal/util.Fork"},
		{"method value (f := c.Read; f())",
			"internal/engine.MethodValue -> internal/util.(Clock).Read"},
		{"interface dispatch over module implementations",
			"internal/engine.Dispatch -> internal/util.(BadTicker).Tick (interface dispatch)"},
		{"function stored into a func-typed struct field",
			"internal/engine.FieldCall -> internal/util.Env2"},
	} {
		if !chains[want.chain] {
			t.Errorf("%s: no finding with witness chain %q; got chains %v", want.why, want.chain, keys(chains))
		}
	}

	// The pure implementation reached by the same dispatch site must not
	// produce a finding.
	for _, f := range findings {
		if strings.Contains(f.Message, "GoodTicker") {
			t.Errorf("pure interface implementation was reported: %s", f)
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestCallGraphExemptPackages: exempt packages are outside the graph, so
// even a direct call from a root into them cannot create edges or sinks.
func TestCallGraphExemptPackages(t *testing.T) {
	m, _ := vetFixture(t, "purity", "example.com/vet",
		"internal/engine", "internal/util", "internal/runner")
	g := buildCallGraph(m, []string{"internal/runner"}, purityFixtureConfig())
	for _, node := range g.order {
		if node.pkg.RelPath == "internal/runner" {
			t.Errorf("exempt package function %s present in the call graph", g.funcDisplayName(node.fn))
		}
	}
	// util.clock must be in the graph with its wall-clock sink attached.
	var clockSinks int
	for _, node := range g.order {
		if g.funcDisplayName(node.fn) == "internal/util.clock" {
			clockSinks = len(node.sinks)
		}
	}
	if clockSinks != 1 {
		t.Errorf("internal/util.clock should carry exactly one sink, got %d", clockSinks)
	}
}
