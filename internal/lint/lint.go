// Package lint is coda-lint: a stdlib-only static analyzer enforcing the
// determinism and concurrency invariants CODA's reproduction rests on.
// Identical seeds must replay identical schedules — otherwise the paper's
// JCT and utilization numbers are unreproducible noise — so the decision
// path must never consume Go's randomized map iteration order, wall-clock
// time, the global math/rand stream, stray goroutines, or exact float
// equality where accumulation order can leak in.
//
// Five named rules (see DESIGN.md "Determinism invariants"):
//
//	ordered-map-iteration  range over a map in a decision-path package
//	no-wall-clock          time.Now/Since/Until or global math/rand use
//	no-stray-goroutines    go statements / sync primitives outside allowlist
//	float-eq               ==/!= between floating-point expressions
//	unchecked-error        discarded error results from module-internal APIs
//
// A finding is suppressed by a `//coda:ordered-ok <reason>` annotation on
// the flagged line or the line above; the reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Rule names, as reported in findings and matched by fixture expectations.
const (
	RuleOrderedMap   = "ordered-map-iteration"
	RuleWallClock    = "no-wall-clock"
	RuleGoroutines   = "no-stray-goroutines"
	RuleFloatEq      = "float-eq"
	RuleUncheckedErr = "unchecked-error"
	// RuleBadAnnotation rejects malformed //coda:ordered-ok annotations: a
	// missing reason, stacked annotations, or an annotation that suppresses
	// nothing (usually on the wrong line).
	RuleBadAnnotation = "bad-annotation"
)

// Whole-program (coda-vet) rule names; see vet.go.
const (
	RulePurity       = "transitive-purity"
	RuleLayering     = "import-layering"
	RuleCkptComplete = "checkpoint-complete"
)

// Config scopes each rule to package sets. Paths are module-relative
// package paths ("internal/core"); an entry ending in "/" matches as a
// prefix, otherwise it matches exactly.
type Config struct {
	// DecisionPath packages are scheduling-decision code where map
	// iteration order can leak into placements (ordered-map-iteration).
	DecisionPath []string
	// WallClockFree packages may not read wall-clock time or the global
	// math/rand stream (no-wall-clock).
	WallClockFree []string
	// Deterministic packages may not start goroutines or use sync
	// primitives (no-stray-goroutines) ...
	Deterministic []string
	// ... except those in GoroutineAllow.
	GoroutineAllow []string
	// FloatEqScope packages are checked for exact float comparisons.
	FloatEqScope []string
	// ErrCheckScope packages are checked for silently discarded errors.
	ErrCheckScope []string
}

// DefaultConfig is the CODA repository policy.
func DefaultConfig() Config {
	return Config{
		// The packages whose iteration order reaches DRF tie-breaking,
		// placement scans, or metric accumulation.
		DecisionPath: []string{
			"internal/core", "internal/sched", "internal/fair",
			"internal/cluster", "internal/sim", "internal/membw",
		},
		// Everything simulator-driven runs on virtual time and seeded rngs.
		WallClockFree: []string{"internal/"},
		// Goroutines and locks are confined to the history log (guarded by
		// a vetted RWMutex), the runner's worker pool — the one place the
		// repository is allowed to overlap independent simulation runs —
		// and the control-plane server, whose mutex serializes HTTP
		// handlers in front of the single-threaded machine. internal/ctl
		// still may not start goroutines of its own: the allowlist admits
		// sync primitives, and the absence of `go` statements is asserted
		// by the package's own tests plus the cmd-layer ownership of the
		// ticker loop. internal/experiments is deliberately NOT here: its
		// old replay fan-out moved into internal/runner, and it must stay
		// sync-free.
		Deterministic:  []string{"internal/"},
		GoroutineAllow: []string{"internal/history", "internal/runner", "internal/ctl"},
		FloatEqScope:   []string{"internal/", "cmd/"},
		ErrCheckScope:  []string{"internal/", "cmd/"},
	}
}

// Finding is one rule violation.
type Finding struct {
	// Pos locates the violation.
	Pos token.Position
	// Rule is the rule name (Rule* constants).
	Rule string
	// Message explains the violation.
	Message string
	// Chain is the witness call chain for transitive findings (root first,
	// offending function last); empty for per-file rules.
	Chain []string
}

// String formats the finding as "file:line: rule: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// matchScope reports whether relPath falls in the scope list.
func matchScope(scope []string, relPath string) bool {
	for _, s := range scope {
		if strings.HasSuffix(s, "/") {
			if strings.HasPrefix(relPath, s) || relPath == strings.TrimSuffix(s, "/") {
				return true
			}
		} else if relPath == s {
			return true
		}
	}
	return false
}

// AnnotationPrefix marks an intentional, reviewed exception. The text after
// the prefix is the mandatory justification.
const AnnotationPrefix = "//coda:ordered-ok"

// annotation is one //coda:ordered-ok comment, valid or not.
type annotation struct {
	pos       token.Position
	hasReason bool
	used      bool // suppressed at least one finding this run
}

// annotations indexes every suppression annotation in the module. Only
// well-formed (reason-bearing, unstacked) annotations suppress; the rest are
// reported as bad-annotation findings by validate.
type annotations struct {
	byLine map[string]map[int]*annotation
	all    []*annotation // in scan order (file, then position)
}

func newAnnotations() *annotations {
	return &annotations{byLine: make(map[string]map[int]*annotation)}
}

// collect scans a file's comments for suppression annotations.
func (a *annotations) collect(fset *token.FileSet, file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, AnnotationPrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			ann := &annotation{pos: pos, hasReason: strings.TrimSpace(rest) != ""}
			lines, found := a.byLine[pos.Filename]
			if !found {
				lines = make(map[int]*annotation)
				a.byLine[pos.Filename] = lines
			}
			lines[pos.Line] = ann
			a.all = append(a.all, ann)
		}
	}
}

// stacked reports whether ann sits directly above another annotation, which
// makes its target ambiguous: an annotation covers only its own line and the
// line below, and the line below is already an annotation.
func (a *annotations) stacked(ann *annotation) bool {
	_, below := a.byLine[ann.pos.Filename][ann.pos.Line+1]
	return below
}

// valid reports whether ann is allowed to suppress findings.
func (a *annotations) valid(ann *annotation) bool {
	return ann.hasReason && !a.stacked(ann)
}

// suppressed reports whether a finding at pos carries a valid annotation on
// the same line or the line directly above, and marks that annotation used.
func (a *annotations) suppressed(pos token.Position) bool {
	lines := a.byLine[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if ann, ok := lines[line]; ok && a.valid(ann) {
			ann.used = true
			return true
		}
	}
	return false
}

// validate reports malformed and ineffective annotations: a missing reason,
// stacked annotations, and annotations that suppressed nothing (usually an
// annotation drifted onto the wrong line). Call after every rule has run so
// usage is fully accounted.
func (a *annotations) validate(keep func(Finding)) {
	for _, ann := range a.all {
		switch {
		case !ann.hasReason:
			keep(Finding{
				Pos:  ann.pos,
				Rule: RuleBadAnnotation,
				Message: "suppression annotation carries no reason; write " +
					AnnotationPrefix + " <why this site is safe>",
			})
		case a.stacked(ann):
			keep(Finding{
				Pos:  ann.pos,
				Rule: RuleBadAnnotation,
				Message: "stacked suppression annotations: an annotation covers only its own line " +
					"and the line below, and the line below is another annotation — merge them " +
					"into one annotation with one reason",
			})
		case !ann.used:
			keep(Finding{
				Pos:  ann.pos,
				Rule: RuleBadAnnotation,
				Message: "suppression annotation suppresses no finding; delete it or move it onto " +
					"the flagged line (or the line directly above it)",
			})
		}
	}
}

// Run executes every rule over the module and returns the surviving
// findings sorted by position.
func Run(m *Module, cfg Config) []Finding {
	ann := newAnnotations()
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			ann.collect(m.Fset, file)
		}
	}

	var out []Finding
	keep := func(f Finding) {
		if !ann.suppressed(f.Pos) {
			out = append(out, f)
		}
	}
	for _, pkg := range m.Packages {
		if matchScope(cfg.DecisionPath, pkg.RelPath) {
			checkOrderedMapIteration(m, pkg, keep)
		}
		if matchScope(cfg.WallClockFree, pkg.RelPath) {
			checkWallClock(m, pkg, keep)
		}
		if matchScope(cfg.Deterministic, pkg.RelPath) && !matchScope(cfg.GoroutineAllow, pkg.RelPath) {
			checkGoroutines(m, pkg, keep)
		}
		if matchScope(cfg.FloatEqScope, pkg.RelPath) {
			checkFloatEq(m, pkg, keep)
		}
		if matchScope(cfg.ErrCheckScope, pkg.RelPath) {
			checkUncheckedError(m, pkg, keep)
		}
	}
	// Annotation hygiene runs after every rule so usage is fully accounted.
	// Bad-annotation findings are appended directly: an annotation must not
	// be able to suppress the finding about itself.
	ann.validate(func(f Finding) { out = append(out, f) })
	SortFindings(out)
	return out
}

// SortFindings orders findings by file, line, then rule — the stable report
// order shared by Run, RunVet, the CLIs and the JSON output.
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Rule < out[j].Rule
	})
}

// LintTrees loads root's package trees and runs the default-config rules —
// the entry point shared by the CLI and the self-enforcing test.
func LintTrees(root string, trees []string, cfg Config) ([]Finding, error) {
	m, err := LoadModule(root, trees)
	if err != nil {
		return nil, err
	}
	return Run(m, cfg), nil
}
