package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// vetFixture loads one testdata/vet/<name>/src tree as a fake module rooted
// at modPath.
func vetFixture(t *testing.T, name, modPath string, pkgs ...string) (*Module, []string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "vet", name, "src"))
	if err != nil {
		t.Fatal(err)
	}
	dirs := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		dirs = append(dirs, filepath.Join(root, filepath.FromSlash(p)))
	}
	m, err := LoadDirs(root, modPath, dirs)
	if err != nil {
		t.Fatal(err)
	}
	return m, dirs
}

// matchFindingsToWants requires findings to match the fixture's `// want`
// markers exactly — every seeded violation fires, nothing else does.
func matchFindingsToWants(t *testing.T, findings []Finding, dirs []string) {
	t.Helper()
	got := make(map[string]bool, len(findings))
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Rule)
		if got[key] {
			t.Errorf("duplicate finding: %s", f)
		}
		got[key] = true
	}
	want := collectWants(t, dirs)
	for key := range want {
		if !got[key] {
			t.Errorf("missing finding: %s", key)
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Rule)
		if !want[key] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

func purityFixtureConfig() VetConfig {
	return VetConfig{
		PurityRoots:  []string{"internal/engine"},
		PurityExempt: []string{"internal/runner"},
		ImpurePkgs:   []string{"os", "net", "syscall"},
	}
}

func runPurity(t *testing.T, m *Module, cfg VetConfig) []Finding {
	t.Helper()
	var findings []Finding
	checkPurity(m, cfg, func(f Finding) { findings = append(findings, f) })
	SortFindings(findings)
	return findings
}

// TestPurityFixtures seeds every sink class — wall clock, goroutine spawn,
// global rand, os calls — behind helper indirection and requires each to be
// found with a witness chain rooted in the engine package. The exempt
// internal/runner package is impure on purpose and must stay silent.
func TestPurityFixtures(t *testing.T) {
	m, dirs := vetFixture(t, "purity", "example.com/vet",
		"internal/engine", "internal/util", "internal/runner")
	findings := runPurity(t, m, purityFixtureConfig())
	matchFindingsToWants(t, findings, dirs)
	for _, f := range findings {
		if len(f.Chain) < 2 {
			t.Errorf("finding lacks a root-to-sink witness chain: %s", f)
			continue
		}
		if !strings.HasPrefix(f.Chain[0], "internal/engine.") {
			t.Errorf("witness chain does not start at an engine root: %v", f.Chain)
		}
		if !strings.Contains(f.Message, "[reached via ") {
			t.Errorf("message does not embed the witness chain: %s", f.Message)
		}
	}
}

// TestPurityAllow pins the one sanctioned escape hatch: an exact qualified
// name in PurityAllow stops being a sink, and nothing else changes.
func TestPurityAllow(t *testing.T) {
	m, _ := vetFixture(t, "purity", "example.com/vet",
		"internal/engine", "internal/util", "internal/runner")
	cfg := purityFixtureConfig()
	cfg.PurityAllow = []string{"os.Getenv"}
	findings := runPurity(t, m, cfg)
	for _, f := range findings {
		if strings.Contains(f.Message, "os.Getenv") {
			t.Errorf("allowlisted qualified name still reported: %s", f)
		}
	}
	// The fixture seeds 7 sinks, 2 of which are os.Getenv.
	if len(findings) != 5 {
		t.Errorf("expected 5 findings with os.Getenv allowlisted, got %d: %v", len(findings), findings)
	}
}

// TestPurityRootsAreSelfChecked: impurity written directly into a root
// package function is reported with a single-element chain, not skipped.
func TestPurityRootsAreSelfChecked(t *testing.T) {
	m, _ := vetFixture(t, "purity", "example.com/vet",
		"internal/engine", "internal/util", "internal/runner")
	// Flip the fixture around: util is the root, so its sinks are direct.
	cfg := VetConfig{
		PurityRoots: []string{"internal/util"},
		ImpurePkgs:  []string{"os", "net", "syscall"},
	}
	findings := runPurity(t, m, cfg)
	if len(findings) == 0 {
		t.Fatal("expected direct sinks when util itself is the root")
	}
	for _, f := range findings {
		if len(f.Chain) != 1 {
			t.Errorf("direct sink should have a single-element chain, got %v", f.Chain)
		}
		if !strings.HasPrefix(f.Chain[0], "internal/util.") {
			t.Errorf("chain should start in internal/util: %v", f.Chain)
		}
	}
}
