package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestProductionGoroutinePolicy pins the DefaultConfig goroutine
// allowlist against a fixture tree shaped like the real repository: a
// goroutine in internal/sim and a sync primitive in internal/core must
// fail no-stray-goroutines, while the identical concurrency in
// internal/runner — the one allowlisted deterministic-adjacent package —
// produces zero findings. This is the test that would catch someone
// quietly widening the allowlist.
func TestProductionGoroutinePolicy(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "prodpolicy", "src"))
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{
		filepath.Join(root, "internal", "sim"),
		filepath.Join(root, "internal", "core"),
		filepath.Join(root, "internal", "runner"),
	}
	m, err := LoadDirs(root, "example.com/prod", dirs)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, DefaultConfig())

	got := make(map[string]bool, len(findings))
	for _, f := range findings {
		if f.Rule != RuleGoroutines {
			t.Errorf("unexpected non-goroutine finding: %s", f)
			continue
		}
		if strings.Contains(f.Pos.Filename, filepath.Join("internal", "runner")) {
			t.Errorf("allowlisted internal/runner was flagged: %s", f)
			continue
		}
		got[fmt.Sprintf("%s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Rule)] = true
	}
	want := collectWants(t, dirs)
	if len(want) == 0 {
		t.Fatal("prodpolicy fixtures carry no want markers; the test checks nothing")
	}
	for key := range want {
		if !got[key] {
			t.Errorf("missing finding: %s", key)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d findings, want %d", len(got), len(want))
	}
}

// TestDefaultConfigAllowlist pins the allowlist itself: exactly
// internal/history (wall-clock-exempt log), internal/runner (worker
// pool) and internal/ctl (the control-plane server's vetted mutex and
// reply channels; its ticker goroutine lives in cmd/coda-serve) — in
// particular internal/experiments must NOT be there anymore.
func TestDefaultConfigAllowlist(t *testing.T) {
	got := DefaultConfig().GoroutineAllow
	want := []string{"internal/history", "internal/runner", "internal/ctl"}
	if len(got) != len(want) {
		t.Fatalf("GoroutineAllow = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GoroutineAllow = %v, want %v", got, want)
		}
	}
}
