package lint

import (
	"strings"
	"testing"
)

// layersFixtureSpec is the three-layer spec the fixture violates: engine may
// import base only (and never os/net); orch sits on top.
func layersFixtureSpec() []Layer {
	return []Layer{
		{Name: "base", Packages: []string{"internal/base"}},
		{Name: "engine", Packages: []string{"internal/engine", "internal/engine2"},
			Allow: []string{"base"}, DenyStd: []string{"os", "net"}},
		{Name: "orch", Packages: []string{"internal/orch"},
			Allow: []string{"base", "engine"}},
	}
}

func runLayers(t *testing.T, m *Module, layers []Layer) []Finding {
	t.Helper()
	var findings []Finding
	checkLayers(m, VetConfig{Layers: layers}, func(f Finding) { findings = append(findings, f) })
	SortFindings(findings)
	return findings
}

// TestLayerFixtures seeds the four violation classes — upward import, denied
// stdlib import, intra-layer import, uncovered package — and requires each
// to fire exactly where marked while the clean packages stay silent.
func TestLayerFixtures(t *testing.T) {
	m, dirs := vetFixture(t, "layers", "example.com/layers",
		"internal/base", "internal/engine", "internal/engine2",
		"internal/orch", "internal/stray")
	findings := runLayers(t, m, layersFixtureSpec())
	matchFindingsToWants(t, findings, dirs)

	assertOne := func(substr string) {
		t.Helper()
		for _, f := range findings {
			if strings.Contains(f.Message, substr) {
				return
			}
		}
		t.Errorf("no finding mentions %q; got %v", substr, findings)
	}
	assertOne("which the layer spec does not allow") // engine -> orch
	assertOne("denied in this layer")                // engine -> os
	assertOne("intra-layer imports are forbidden")   // engine2 -> engine
	assertOne("not covered by the layer spec")       // internal/stray
}

// TestAllowStdOverridesDeny: AllowStd carves an exception out of DenyStd, so
// the denied-import finding disappears without loosening anything else.
func TestAllowStdOverridesDeny(t *testing.T) {
	m, _ := vetFixture(t, "layers", "example.com/layers",
		"internal/base", "internal/engine", "internal/engine2",
		"internal/orch", "internal/stray")
	spec := layersFixtureSpec()
	spec[1].AllowStd = []string{"os"}
	findings := runLayers(t, m, spec)
	for _, f := range findings {
		if strings.Contains(f.Message, "denied in this layer") {
			t.Errorf("AllowStd should have exempted the os import: %s", f)
		}
	}
}

// TestLayerSpecValidation rejects malformed specs outright: duplicate names,
// self-allows, unknown layers, and allow-graph cycles all mean the "checked
// DAG" guarantee is void, so they are hard errors, not skipped layers.
func TestLayerSpecValidation(t *testing.T) {
	cases := []struct {
		name    string
		layers  []Layer
		wantErr string
	}{
		{"duplicate name",
			[]Layer{{Name: "a"}, {Name: "a"}},
			"declared twice"},
		{"self allow",
			[]Layer{{Name: "a", Allow: []string{"a"}}},
			"allows itself"},
		{"unknown allow",
			[]Layer{{Name: "a", Allow: []string{"ghost"}}},
			"unknown layer"},
		{"cycle",
			[]Layer{{Name: "a", Allow: []string{"b"}}, {Name: "b", Allow: []string{"a"}}},
			"cycle"},
		{"valid DAG",
			[]Layer{{Name: "a"}, {Name: "b", Allow: []string{"a"}}, {Name: "c", Allow: []string{"a", "b"}}},
			""},
	}
	for _, c := range cases {
		err := validateLayerSpec(c.layers)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.wantErr, err)
		}
	}
}

// TestBrokenSpecIsOneFinding: a spec that fails validation produces a single
// invalid-layer-spec finding instead of a misleading per-package cascade.
func TestBrokenSpecIsOneFinding(t *testing.T) {
	m, _ := vetFixture(t, "layers", "example.com/layers", "internal/base")
	findings := runLayers(t, m, []Layer{{Name: "a", Allow: []string{"a"}}})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "invalid layer spec") {
		t.Fatalf("want exactly one invalid-spec finding, got %v", findings)
	}
}

// TestDefaultLayersValid: the shipped repository spec must itself be a valid
// partition DAG, or the self-enforcing vet test proves nothing.
func TestDefaultLayersValid(t *testing.T) {
	if err := validateLayerSpec(DefaultLayers()); err != nil {
		t.Fatal(err)
	}
}
