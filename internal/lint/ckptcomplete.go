package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// The checkpoint-completeness pass closes the classic crash-recovery trap:
// engine state grows a field, the checkpoint state struct grows with it, but
// one side of the round trip forgets it — and every resumed run silently
// diverges from its uninterrupted twin. For every package in scope the pass
// pairs checkpoint encoders (CheckpointState / Checkpoint) with decoders
// (RestoreCheckpoint / RestoreCheckpointState / Resume), computes each
// side's same-package call closure, and requires every field of every state
// struct built by an encoder to be referenced in BOTH closures. Deleting a
// field reference from either side fails CI at the field's declaration.
//
// Pairing: a receiver type with both an encoder and a decoder forms its own
// pair (FIFO.CheckpointState ↔ FIFO.RestoreCheckpoint); everything left
// over pools into one package-level pair, which is how a method encoder
// meets a function decoder (sim.(*Simulator).Checkpoint ↔ sim.Resume). An
// encoder with no decoder anywhere is itself a finding: write-only
// checkpoint state is exactly the bug this pass exists to catch.

// defaultEncodeNames / defaultDecodeNames are the recognized serializer
// names; override via VetConfig.
var (
	defaultEncodeNames = []string{"CheckpointState", "Checkpoint"}
	defaultDecodeNames = []string{"RestoreCheckpoint", "RestoreCheckpointState", "Resume"}
)

// ckptSide is one side (encode or decode) of a checkpoint pair.
type ckptSide struct {
	decls []*ast.FuncDecl
}

// ckptPair is a matched encoder/decoder group.
type ckptPair struct {
	label  string // receiver type name, or "package" for the pooled pair
	encode ckptSide
	decode ckptSide
}

// checkCkptComplete runs the pass over every package in scope.
func checkCkptComplete(m *Module, cfg VetConfig, keep func(Finding)) {
	encodeNames := cfg.EncodeNames
	if encodeNames == nil {
		encodeNames = defaultEncodeNames
	}
	decodeNames := cfg.DecodeNames
	if decodeNames == nil {
		decodeNames = defaultDecodeNames
	}
	for _, pkg := range m.Packages {
		if !matchScope(cfg.CheckpointScope, pkg.RelPath) {
			continue
		}
		checkPackageCkpt(m, pkg, encodeNames, decodeNames, keep)
	}
}

func nameIn(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// recvTypeName returns the base type name of a method's receiver, "" for
// plain functions.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func checkPackageCkpt(m *Module, pkg *Package, encodeNames, decodeNames []string, keep func(Finding)) {
	type group struct{ encode, decode []*ast.FuncDecl }
	byRecv := make(map[string]*group)
	var recvOrder []string
	add := func(recv string, fd *ast.FuncDecl, enc bool) {
		grp := byRecv[recv]
		if grp == nil {
			grp = &group{}
			byRecv[recv] = grp
			recvOrder = append(recvOrder, recv)
		}
		if enc {
			grp.encode = append(grp.encode, fd)
		} else {
			grp.decode = append(grp.decode, fd)
		}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch {
			case nameIn(encodeNames, fd.Name.Name):
				add(recvTypeName(fd), fd, true)
			case nameIn(decodeNames, fd.Name.Name):
				add(recvTypeName(fd), fd, false)
			}
		}
	}
	if len(byRecv) == 0 {
		return
	}

	// Receiver groups with both sides pair up; the rest pool.
	var pairs []*ckptPair
	pool := &ckptPair{label: "package"}
	for _, recv := range recvOrder {
		grp := byRecv[recv]
		if recv != "" && len(grp.encode) > 0 && len(grp.decode) > 0 {
			pairs = append(pairs, &ckptPair{
				label:  recv,
				encode: ckptSide{decls: grp.encode},
				decode: ckptSide{decls: grp.decode},
			})
			continue
		}
		pool.encode.decls = append(pool.encode.decls, grp.encode...)
		pool.decode.decls = append(pool.decode.decls, grp.decode...)
	}
	if len(pool.encode.decls) > 0 || len(pool.decode.decls) > 0 {
		pairs = append(pairs, pool)
	}

	calls := packageCallMap(pkg)
	for _, pair := range pairs {
		checkPair(m, pkg, pair, calls, keep)
	}
}

// packageCallMap maps each declared function to the same-package functions
// it references, for closure computation.
func packageCallMap(pkg *Package) map[*ast.FuncDecl][]*ast.FuncDecl {
	declOf := make(map[*types.Func]*ast.FuncDecl)
	var decls []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					declOf[fn] = fd
				}
			}
		}
	}
	calls := make(map[*ast.FuncDecl][]*ast.FuncDecl, len(decls))
	for _, fd := range decls {
		seen := make(map[*ast.FuncDecl]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
				if callee, ok := declOf[fn]; ok && !seen[callee] {
					seen[callee] = true
					calls[fd] = append(calls[fd], callee)
				}
			}
			return true
		})
	}
	return calls
}

// sideClosure expands a side's declarations with every same-package function
// transitively reachable from them.
func sideClosure(side ckptSide, calls map[*ast.FuncDecl][]*ast.FuncDecl) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	seen := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if seen[fd] {
			return
		}
		seen[fd] = true
		out = append(out, fd)
		for _, callee := range calls[fd] {
			visit(callee)
		}
	}
	for _, fd := range side.decls {
		visit(fd)
	}
	return out
}

// fieldRefs collects every struct field object referenced in the closure —
// composite-literal keys, selector reads and writes — plus, for unkeyed
// struct literals, every field of the literal's type.
func fieldRefs(pkg *Package, closure []*ast.FuncDecl) map[*types.Var]bool {
	refs := make(map[*types.Var]bool)
	markAll := func(st *types.Struct) {
		for i := 0; i < st.NumFields(); i++ {
			refs[st.Field(i)] = true
		}
	}
	for _, fd := range closure {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if v, ok := pkg.Info.Uses[x].(*types.Var); ok && v.IsField() {
					refs[v] = true
				}
			case *ast.CompositeLit:
				// An unkeyed struct literal positionally sets every field.
				if len(x.Elts) == 0 {
					return true
				}
				if _, keyed := x.Elts[0].(*ast.KeyValueExpr); keyed {
					return true
				}
				if t := pkg.Info.TypeOf(x); t != nil {
					if st, ok := t.Underlying().(*types.Struct); ok {
						markAll(st)
					}
				}
			}
			return true
		})
	}
	return refs
}

// encodedStructs finds the named struct types declared in pkg that an encode
// closure constructs via composite literal — these are the checkpoint state
// types whose fields must round-trip.
func encodedStructs(pkg *Package, closure []*ast.FuncDecl) []*types.Named {
	seen := make(map[*types.Named]bool)
	var out []*types.Named
	for _, fd := range closure {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(cl)
			if t == nil {
				return true
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() != pkg.Types {
				return true
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				return true
			}
			if !seen[named] {
				seen[named] = true
				out = append(out, named)
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj().Name() < out[j].Obj().Name() })
	return out
}

// checkPair verifies one encoder/decoder pair.
func checkPair(m *Module, pkg *Package, pair *ckptPair, calls map[*ast.FuncDecl][]*ast.FuncDecl, keep func(Finding)) {
	if len(pair.encode.decls) == 0 {
		return // decoder-only pools (e.g. a Restore helper package) have nothing to prove
	}
	if len(pair.decode.decls) == 0 {
		for _, fd := range pair.encode.decls {
			keep(Finding{
				Pos:  m.Fset.Position(fd.Name.Pos()),
				Rule: RuleCkptComplete,
				Message: fmt.Sprintf("checkpoint encoder %s.%s has no matching decoder (%v) in package %s; "+
					"write-only checkpoint state cannot be restored",
					pair.label, fd.Name.Name, defaultDecodeNames, pkg.RelPath),
			})
		}
		return
	}
	encClosure := sideClosure(pair.encode, calls)
	decClosure := sideClosure(pair.decode, calls)
	encRefs := fieldRefs(pkg, encClosure)
	decRefs := fieldRefs(pkg, decClosure)
	for _, named := range encodedStructs(pkg, encClosure) {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !encRefs[field] {
				keep(Finding{
					Pos:  m.Fset.Position(field.Pos()),
					Rule: RuleCkptComplete,
					Message: fmt.Sprintf("checkpoint state field %s.%s is never set in the encode path of %s "+
						"(pair %s); a resumed run would silently lose it",
						named.Obj().Name(), field.Name(), pkg.RelPath, pair.label),
				})
			}
			if !decRefs[field] {
				keep(Finding{
					Pos:  m.Fset.Position(field.Pos()),
					Rule: RuleCkptComplete,
					Message: fmt.Sprintf("checkpoint state field %s.%s is never read in the decode path of %s "+
						"(pair %s); a resumed run would silently drop it",
						named.Obj().Name(), field.Name(), pkg.RelPath, pair.label),
				})
			}
		}
	}
}
