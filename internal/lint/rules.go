package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// --- rule: ordered-map-iteration -----------------------------------------

// checkOrderedMapIteration flags `for range` over map types unless the loop
// body provably aggregates order-insensitively (sums into integer
// accumulators, sets booleans, deletes keys, returns literals).
func checkOrderedMapIteration(m *Module, pkg *Package, keep func(Finding)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBlock(pkg.Info, rs.Body) {
				return true
			}
			keep(Finding{
				Pos:  m.Fset.Position(rs.Pos()),
				Rule: RuleOrderedMap,
				Message: "map iteration order is randomized; sort the keys, prove the loop " +
					"order-insensitive, or annotate with " + AnnotationPrefix + " <reason>",
			})
			return true
		})
	}
}

// orderInsensitiveBlock reports whether every statement in the block has the
// same effect regardless of iteration order. The test is deliberately
// conservative: integer accumulation, boolean-literal assignment, key
// deletion, literal returns, and control flow among those. Anything else —
// appends, float accumulation, calls — is assumed order-sensitive.
func orderInsensitiveBlock(info *types.Info, block *ast.BlockStmt) bool {
	for _, stmt := range block.List {
		if !orderInsensitiveStmt(info, stmt) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(info *types.Info, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case nil, *ast.EmptyStmt, *ast.DeclStmt:
		return true
	case *ast.BranchStmt:
		// break / continue (goto would carry a label).
		return s.Label == nil
	case *ast.IncDecStmt:
		// x++ / x-- on integers commutes exactly.
		return isIntegral(info.TypeOf(s.X))
	case *ast.AssignStmt:
		return orderInsensitiveAssign(info, s)
	case *ast.ReturnStmt:
		// Returning a constant from inside the loop is "any element
		// matches" semantics: the result is the same whichever element
		// triggers it first.
		for _, res := range s.Results {
			if !isConstExpr(info, res) {
				return false
			}
		}
		return true
	case *ast.ExprStmt:
		// delete(m, k) removes distinct keys; order cannot matter.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if !orderInsensitiveBlock(info, s.Body) {
			return false
		}
		if s.Else != nil && !orderInsensitiveStmt(info, s.Else) {
			return false
		}
		return true
	case *ast.BlockStmt:
		return orderInsensitiveBlock(info, s)
	default:
		return false
	}
}

// orderInsensitiveAssign accepts integer compound accumulation (+=, -=, |=,
// &=, ^=) and plain assignment of boolean literals (flag = true).
func orderInsensitiveAssign(info *types.Info, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		for _, lhs := range s.Lhs {
			if !isIntegral(info.TypeOf(lhs)) {
				return false
			}
		}
		return true
	case token.ASSIGN, token.DEFINE:
		for _, rhs := range s.Rhs {
			if !isBoolLiteral(info, rhs) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// isIntegral reports whether t is an integer type (float accumulation is
// order-sensitive and never passes).
func isIntegral(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isBoolLiteral reports whether e is the predeclared true or false.
func isBoolLiteral(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	return ok && c.Parent() == types.Universe && (id.Name == "true" || id.Name == "false")
}

// isConstExpr reports whether e is a basic literal or universe constant
// (true/false/iota-free named constants also qualify).
func isConstExpr(info *types.Info, e ast.Expr) bool {
	if _, ok := e.(*ast.BasicLit); ok {
		return true
	}
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// --- rule: no-wall-clock --------------------------------------------------

// globalRandFuncs are the math/rand package-level functions drawing from the
// process-global (unseeded or once-seeded) source. Constructors for
// explicitly seeded generators (New, NewSource, NewZipf) stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true, "N": true,
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// checkWallClock flags wall-clock reads and global math/rand draws: the
// simulator owns virtual time (sched.Env.Now) and every random stream must
// be an explicitly seeded *rand.Rand.
func checkWallClock(m *Module, pkg *Package, keep func(Finding)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, ok := importedPackage(pkg.Info, sel)
			if !ok {
				return true
			}
			switch {
			case path == "time" && wallClockFuncs[sel.Sel.Name]:
				keep(Finding{
					Pos:  m.Fset.Position(sel.Pos()),
					Rule: RuleWallClock,
					Message: fmt.Sprintf("time.%s reads the wall clock; simulator-driven code must use "+
						"the environment's virtual time (sched.Env.Now)", sel.Sel.Name),
				})
			case (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[sel.Sel.Name]:
				keep(Finding{
					Pos:  m.Fset.Position(sel.Pos()),
					Rule: RuleWallClock,
					Message: fmt.Sprintf("rand.%s draws from the global source; use an explicitly "+
						"seeded *rand.Rand so runs replay identically", sel.Sel.Name),
				})
			}
			return true
		})
	}
}

// importedPackage resolves sel's qualifier to an imported package path.
func importedPackage(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// --- rule: no-stray-goroutines -------------------------------------------

// checkGoroutines flags `go` statements and any use of sync / sync/atomic
// in deterministic packages: concurrent interleavings are a second source
// of schedule nondeterminism on top of map ordering.
func checkGoroutines(m *Module, pkg *Package, keep func(Finding)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GoStmt:
				keep(Finding{
					Pos:  m.Fset.Position(node.Pos()),
					Rule: RuleGoroutines,
					Message: "goroutine in a deterministic package; simulator-driven code is " +
						"single-threaded by design",
				})
			case *ast.SelectorExpr:
				if path, ok := importedPackage(pkg.Info, node); ok {
					if path == "sync" || path == "sync/atomic" {
						keep(Finding{
							Pos:  m.Fset.Position(node.Pos()),
							Rule: RuleGoroutines,
							Message: fmt.Sprintf("%s.%s in a deterministic package; concurrency "+
								"primitives belong in the allowlisted packages only", path, node.Sel.Name),
						})
					}
				}
			}
			return true
		})
	}
}

// --- rule: float-eq -------------------------------------------------------

// checkFloatEq flags == and != between floating-point expressions: float
// accumulation is order- and optimization-sensitive, so exact equality
// encodes a hidden determinism assumption. Use a tolerance, restructure the
// comparison over integers, or annotate the intent.
func checkFloatEq(m *Module, pkg *Package, keep func(Finding)) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(pkg.Info.TypeOf(be.X)) && isFloat(pkg.Info.TypeOf(be.Y)) {
				keep(Finding{
					Pos:  m.Fset.Position(be.OpPos),
					Rule: RuleFloatEq,
					Message: fmt.Sprintf("exact float %s comparison; accumulation order makes this "+
						"fragile — compare with a tolerance or annotate the intent", be.Op),
				})
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// --- rule: unchecked-error ------------------------------------------------

// checkUncheckedError flags expression statements (and go/defer statements)
// that call a module-internal function returning an error and drop the
// result on the floor. Explicit `_ =` discards are visible and stay legal.
func checkUncheckedError(m *Module, pkg *Package, keep func(Finding)) {
	check := func(call *ast.CallExpr, how string) {
		fn := calleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if !strings.HasPrefix(fn.Pkg().Path(), m.Path) {
			return // only module-internal APIs: stdlib error styles vary
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || !resultsIncludeError(sig.Results()) {
			return
		}
		keep(Finding{
			Pos:  m.Fset.Position(call.Pos()),
			Rule: RuleUncheckedErr,
			Message: fmt.Sprintf("%s discards the error from %s.%s; handle it or discard "+
				"explicitly with _ =", how, fn.Pkg().Name(), fn.Name()),
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "call")
				}
			case *ast.DeferStmt:
				check(s.Call, "defer")
			case *ast.GoStmt:
				check(s.Call, "go")
			}
			return true
		})
	}
}

// calleeFunc resolves a call's target to a function or method object.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// resultsIncludeError reports whether any result is the error type.
func resultsIncludeError(results *types.Tuple) bool {
	for i := 0; i < results.Len(); i++ {
		if types.Identical(results.At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}
