// Package chaos is the deterministic fault injector for the CODA
// simulator. A Plan describes the failure model of a run — node crashes,
// memory-bandwidth telemetry dropouts, straggler slowdowns and mid-run job
// failures — as a mix of fixed schedules and per-day rates. Compile expands
// the plan into an explicit, fully ordered fault schedule using only the
// plan's own seed, so the same plan always produces the same faults and a
// fault-free plan costs nothing: chaos never touches the simulator's noise
// stream, which keeps same-seed runs bit-reproducible with or without
// faults (the determinism contract DESIGN.md documents).
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

// Kind enumerates the injectable fault events. Window-shaped faults
// (crashes, telemetry dropouts, stragglers) appear as explicit start/end
// pairs so the simulator never needs its own timers.
type Kind int

const (
	// KindNodeCrash takes a node down: every job with a share on it is
	// killed and the node accepts no placements until it recovers.
	KindNodeCrash Kind = iota + 1
	// KindNodeRecover returns a crashed node to service.
	KindNodeRecover
	// KindNodeDrain stops new placements on a node without killing the
	// jobs already on it (planned maintenance).
	KindNodeDrain
	// KindNodeUndrain returns a drained node to service.
	KindNodeUndrain
	// KindMembwDark blinds the memory-bandwidth telemetry of one node: the
	// scheduler's meter reads fail while the underlying physics continue.
	KindMembwDark
	// KindMembwRestore brings a node's bandwidth telemetry back.
	KindMembwRestore
	// KindStragglerStart slows every job touching the node by Factor.
	KindStragglerStart
	// KindStragglerEnd lifts a straggler slowdown.
	KindStragglerEnd
	// KindControllerKill kills the scheduler process itself. The cluster and
	// its jobs are unaffected; whether the run dies or shrugs the kill off
	// depends on the simulator's crash-recovery configuration (a run resumed
	// from a checkpoint has already survived the kills before the
	// checkpoint). Node and Factor are unused.
	KindControllerKill
	// KindServeKill kills the serving process wrapping the scheduler (the
	// control plane's HTTP front end), not the scheduler state machine: the
	// engine only counts it, and the control-plane drill harness decides at
	// which request ordinals the process actually dies and recovers from its
	// write-ahead log. Node and Factor are unused.
	KindServeKill
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNodeCrash:
		return "node-crash"
	case KindNodeRecover:
		return "node-recover"
	case KindNodeDrain:
		return "node-drain"
	case KindNodeUndrain:
		return "node-undrain"
	case KindMembwDark:
		return "membw-dark"
	case KindMembwRestore:
		return "membw-restore"
	case KindStragglerStart:
		return "straggler-start"
	case KindStragglerEnd:
		return "straggler-end"
	case KindControllerKill:
		return "controller-kill"
	case KindServeKill:
		return "serve-kill"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one injected event, in simulation time.
type Fault struct {
	// At is the injection time.
	At time.Duration
	// Kind is the fault class.
	Kind Kind
	// Node is the target node ID.
	Node int
	// Factor is the straggler speed multiplier in (0, 1); unused otherwise.
	Factor float64
}

// Defaults for window lengths and the retry policy, used when the
// corresponding Plan field is zero.
const (
	// DefaultCrashDowntime is how long a crashed node stays down.
	DefaultCrashDowntime = 30 * time.Minute
	// DefaultMembwDropDuration is how long a telemetry dropout lasts.
	DefaultMembwDropDuration = 10 * time.Minute
	// DefaultStragglerDuration is how long a straggler window lasts.
	DefaultStragglerDuration = time.Hour
	// DefaultStragglerFactor is the default straggler speed multiplier.
	DefaultStragglerFactor = 0.5
	// DefaultMaxRetries is the per-job retry budget after fault kills.
	DefaultMaxRetries = 3
	// DefaultRetryBackoff is the base of the sim-time exponential backoff
	// between a fault kill and the requeue.
	DefaultRetryBackoff = time.Minute
)

// Plan is a run's failure model. The zero value injects nothing. Rates are
// expected event counts per simulated day across the whole cluster; fixed
// Faults are injected verbatim on top (pair your own recover events — an
// unpaired crash models a node that never comes back).
type Plan struct {
	// Seed drives fault-schedule generation and per-job failure draws. It
	// is independent of the simulator's measurement-noise seed so the two
	// randomness sources never entangle.
	Seed int64
	// Horizon bounds rate-based generation: faults start in [0, Horizon).
	// Required whenever any rate is positive.
	Horizon time.Duration

	// Faults is a fixed schedule injected verbatim.
	Faults []Fault

	// NodeCrashesPerDay is the cluster-wide crash rate; CrashDowntime is
	// how long each crashed node stays down.
	NodeCrashesPerDay float64
	CrashDowntime     time.Duration

	// MembwDropsPerDay is the telemetry-dropout rate; MembwDropDuration is
	// how long each dropout lasts.
	MembwDropsPerDay  float64
	MembwDropDuration time.Duration

	// StragglersPerDay is the slowdown-window rate; StragglerFactor is the
	// speed multiplier in (0, 1); StragglerDuration is the window length.
	StragglersPerDay  float64
	StragglerFactor   float64
	StragglerDuration time.Duration

	// JobFailureProb is each job's probability of one injected mid-run
	// failure, decided by a per-job hash of Seed so the doomed set does not
	// depend on scheduling decisions.
	JobFailureProb float64

	// ControllerKillsPerDay is the rate of scheduler-process kills. A kill
	// does not touch the cluster; it tests the checkpoint/restore path.
	ControllerKillsPerDay float64

	// MaxRetries is the per-job retry budget after fault kills (crashes
	// and injected failures); 0 means DefaultMaxRetries. A job killed more
	// than MaxRetries times is terminally failed and reported, never
	// silently lost.
	MaxRetries int
	// RetryBackoff is the base sim-time backoff before a killed job is
	// requeued; the delay doubles with each retry. 0 means
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
}

// Clone returns a deep copy of the plan. Plan is a value type except for
// the fixed Faults slice: a shallow copy of a Plan still aliases that
// backing array, so two runs built from one spec would see each other's
// schedule edits. Clone severs that link.
func (p Plan) Clone() Plan {
	p.Faults = append([]Fault(nil), p.Faults...)
	return p
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return len(p.Faults) == 0 &&
		p.NodeCrashesPerDay <= 0 &&
		p.MembwDropsPerDay <= 0 &&
		p.StragglersPerDay <= 0 &&
		p.JobFailureProb <= 0 &&
		p.ControllerKillsPerDay <= 0
}

// Retries returns the effective retry budget.
func (p Plan) Retries() int {
	if p.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return p.MaxRetries
}

// Backoff returns the sim-time delay before requeuing a job killed for the
// n-th time (n counts from 1): base backoff doubling per retry.
func (p Plan) Backoff(n int) time.Duration {
	base := p.RetryBackoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	if n < 1 {
		n = 1
	}
	const maxBackoff = 24 * time.Hour
	for i := 1; i < n; i++ {
		base *= 2
		if base >= maxBackoff {
			return maxBackoff
		}
	}
	if base > maxBackoff {
		return maxBackoff
	}
	return base
}

// Validate checks the plan against a cluster of the given node count.
func (p Plan) Validate(nodes int) error {
	if nodes <= 0 {
		return fmt.Errorf("chaos: node count must be positive, got %d", nodes)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"node crash rate", p.NodeCrashesPerDay},
		{"membw dropout rate", p.MembwDropsPerDay},
		{"straggler rate", p.StragglersPerDay},
		{"controller kill rate", p.ControllerKillsPerDay},
	} {
		if r.v < 0 || math.IsNaN(r.v) || math.IsInf(r.v, 0) {
			return fmt.Errorf("chaos: %s %g must be a finite non-negative rate", r.name, r.v)
		}
	}
	if p.JobFailureProb < 0 || p.JobFailureProb > 1 {
		return fmt.Errorf("chaos: job failure probability %g out of [0,1]", p.JobFailureProb)
	}
	hasRates := p.NodeCrashesPerDay > 0 || p.MembwDropsPerDay > 0 || p.StragglersPerDay > 0 ||
		p.ControllerKillsPerDay > 0
	if hasRates && p.Horizon <= 0 {
		return fmt.Errorf("chaos: rate-based faults need a positive horizon, got %v", p.Horizon)
	}
	// StragglerFactor zero means "use the default"; anything else must be a
	// genuine slowdown in (0, 1).
	if p.StragglersPerDay > 0 && (p.StragglerFactor < 0 || p.StragglerFactor >= 1) {
		return fmt.Errorf("chaos: straggler factor %g out of (0,1)", p.StragglerFactor)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"crash downtime", p.CrashDowntime},
		{"membw drop duration", p.MembwDropDuration},
		{"straggler duration", p.StragglerDuration},
		{"retry backoff", p.RetryBackoff},
	} {
		if d.v < 0 {
			return fmt.Errorf("chaos: %s must be non-negative, got %v", d.name, d.v)
		}
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("chaos: max retries must be non-negative, got %d", p.MaxRetries)
	}
	for i, f := range p.Faults {
		if f.At < 0 {
			return fmt.Errorf("chaos: fixed fault %d at negative time %v", i, f.At)
		}
		// Controller and serve kills target a process, not a node.
		if f.Kind != KindControllerKill && f.Kind != KindServeKill && (f.Node < 0 || f.Node >= nodes) {
			return fmt.Errorf("chaos: fixed fault %d targets node %d out of [0,%d)", i, f.Node, nodes)
		}
		switch f.Kind {
		case KindNodeCrash, KindNodeRecover, KindNodeDrain, KindNodeUndrain,
			KindMembwDark, KindMembwRestore, KindStragglerEnd, KindControllerKill,
			KindServeKill:
		case KindStragglerStart:
			if f.Factor <= 0 || f.Factor >= 1 {
				return fmt.Errorf("chaos: fixed fault %d straggler factor %g out of (0,1)", i, f.Factor)
			}
		default:
			return fmt.Errorf("chaos: fixed fault %d has unknown kind %v", i, f.Kind)
		}
	}
	return p.validateFixedWindows()
}

// validateFixedWindows replays the fixed faults in schedule order (stable
// sort by At, exactly as Compile orders them) and rejects end events that
// close no open window on their node: a recover with no prior crash, an
// undrain with no drain, a telemetry restore with no dark window, and a
// straggler end whose factor matches no open straggler start. The engine
// tolerates such events at runtime by ignoring them, which silently turns a
// mis-specified plan into a weaker one — the soak builder would rather hear
// about it. Unpaired STARTS stay legal: an unpaired crash models a node
// that never comes back. Rate-generated windows are outside this check; the
// engine composes overlapping fixed and rate windows with per-node depth
// counters, so that combination is valid by design.
func (p Plan) validateFixedWindows() error {
	idx := make([]int, len(p.Faults))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return p.Faults[idx[a]].At < p.Faults[idx[b]].At })
	type windows struct {
		crash, drain, dark int
		slow               []float64
	}
	open := make(map[int]*windows)
	at := func(n int) *windows {
		w := open[n]
		if w == nil {
			w = &windows{}
			open[n] = w
		}
		return w
	}
	for _, i := range idx {
		f := p.Faults[i]
		w := at(f.Node)
		switch f.Kind {
		case KindNodeCrash:
			w.crash++
		case KindNodeRecover:
			if w.crash == 0 {
				return fmt.Errorf("chaos: fixed fault %d recovers node %d at %v with no open crash window", i, f.Node, f.At)
			}
			w.crash--
		case KindNodeDrain:
			w.drain++
		case KindNodeUndrain:
			if w.drain == 0 {
				return fmt.Errorf("chaos: fixed fault %d undrains node %d at %v with no open drain window", i, f.Node, f.At)
			}
			w.drain--
		case KindMembwDark:
			w.dark++
		case KindMembwRestore:
			if w.dark == 0 {
				return fmt.Errorf("chaos: fixed fault %d restores telemetry on node %d at %v with no open dark window", i, f.Node, f.At)
			}
			w.dark--
		case KindStragglerStart:
			w.slow = append(w.slow, f.Factor)
		case KindStragglerEnd:
			closed := false
			for j, factor := range w.slow {
				//coda:ordered-ok straggler ends match the factor stored verbatim at start, same as the engine
				if factor == f.Factor {
					w.slow = append(w.slow[:j], w.slow[j+1:]...)
					closed = true
					break
				}
			}
			if !closed {
				return fmt.Errorf("chaos: fixed fault %d ends a straggler with factor %g on node %d at %v, but no open straggler window has that factor",
					i, f.Factor, f.Node, f.At)
			}
		}
	}
	return nil
}

// poisson draws a Poisson-distributed count with the given mean (Knuth's
// method; fault rates are small enough that the linear cost is irrelevant).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1_000_000 {
			return k // unreachable for sane rates; bounds a corrupted mean
		}
	}
}

// Compile expands the plan into an explicit fault schedule for a cluster of
// the given node count, ordered by time with a deterministic tie-break.
// Every generated window fault carries its paired end event, even when the
// end lands past the horizon, so rate-generated crashes always recover.
func (p Plan) Compile(nodes int) ([]Fault, error) {
	if err := p.Validate(nodes); err != nil {
		return nil, err
	}
	faults := append([]Fault(nil), p.Faults...)

	rng := rand.New(rand.NewSource(p.Seed))
	days := float64(p.Horizon) / float64(24*time.Hour)
	window := func(rate float64, dur time.Duration, start, end Kind, factor float64) {
		if dur <= 0 {
			switch start {
			case KindNodeCrash:
				dur = DefaultCrashDowntime
			case KindMembwDark:
				dur = DefaultMembwDropDuration
			default:
				dur = DefaultStragglerDuration
			}
		}
		for i := 0; i < poisson(rng, rate*days); i++ {
			at := time.Duration(rng.Int63n(int64(p.Horizon)))
			nid := rng.Intn(nodes)
			faults = append(faults,
				Fault{At: at, Kind: start, Node: nid, Factor: factor},
				Fault{At: at + dur, Kind: end, Node: nid, Factor: factor},
			)
		}
	}
	window(p.NodeCrashesPerDay, p.CrashDowntime, KindNodeCrash, KindNodeRecover, 0)
	window(p.MembwDropsPerDay, p.MembwDropDuration, KindMembwDark, KindMembwRestore, 0)
	factor := p.StragglerFactor
	if factor <= 0 {
		factor = DefaultStragglerFactor
	}
	window(p.StragglersPerDay, p.StragglerDuration, KindStragglerStart, KindStragglerEnd, factor)
	// Controller kills draw after the window faults so adding a kill rate to
	// an existing plan never perturbs the node-fault schedule (and a zero
	// rate draws nothing, keeping existing plans byte-identical).
	for i := 0; i < poisson(rng, p.ControllerKillsPerDay*days); i++ {
		at := time.Duration(rng.Int63n(int64(p.Horizon)))
		faults = append(faults, Fault{At: at, Kind: KindControllerKill})
	}

	// Stable sort: equal-time faults keep generation order, which is itself
	// deterministic, so the schedule is fully reproducible.
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
	return faults, nil
}

// splitmix64 is the SplitMix64 mixing function: a high-quality, allocation-
// free hash used for per-job failure draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit converts a hash to a float in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// JobFailure reports whether the plan dooms job id to one injected mid-run
// failure and, if so, at which fraction of the attempt's work the failure
// strikes. The draw hashes (Seed, id) so the doomed set is a pure function
// of the plan — independent of scheduling order, which keeps the
// metamorphic determinism properties simple to state and test.
func (p Plan) JobFailure(id job.ID) (frac float64, fails bool) {
	if p.JobFailureProb <= 0 {
		return 0, false
	}
	h := splitmix64(uint64(p.Seed) ^ splitmix64(uint64(id)))
	if unit(h) >= p.JobFailureProb {
		return 0, false
	}
	// Strike somewhere in the middle 60% of the attempt so the failure is
	// neither instant (degenerate requeue loop) nor at the finish line.
	return 0.2 + 0.6*unit(splitmix64(h)), true
}
