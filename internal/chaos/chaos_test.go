package chaos

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

func TestEmptyPlan(t *testing.T) {
	var p Plan
	if !p.Empty() {
		t.Error("zero plan should be empty")
	}
	faults, err := p.Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 0 {
		t.Errorf("empty plan compiled to %d faults", len(faults))
	}
	if _, fails := p.JobFailure(1); fails {
		t.Error("empty plan dooms a job")
	}
	for _, q := range []Plan{
		{NodeCrashesPerDay: 0.1, Horizon: time.Hour},
		{Faults: []Fault{{Kind: KindNodeCrash}}},
		{JobFailureProb: 0.5},
	} {
		if q.Empty() {
			t.Errorf("plan %+v should not be empty", q)
		}
	}
}

func TestPlanCloneIsDeep(t *testing.T) {
	p := Plan{
		Seed:    7,
		Horizon: time.Hour,
		Faults:  []Fault{{Kind: KindNodeCrash, At: time.Minute, Node: 1}},
	}
	c := p.Clone()
	if !reflect.DeepEqual(c, p) {
		t.Fatalf("clone differs: %+v vs %+v", c, p)
	}
	c.Faults[0].Node = 99
	if p.Faults[0].Node != 1 {
		t.Error("mutating the clone's fault slice reached the original")
	}
	if got := (Plan{}).Clone(); got.Faults != nil && len(got.Faults) != 0 {
		t.Errorf("cloning an empty plan grew faults: %+v", got)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
	}{
		{"negative rate", Plan{NodeCrashesPerDay: -1, Horizon: time.Hour}},
		{"rate without horizon", Plan{NodeCrashesPerDay: 1}},
		{"probability above one", Plan{JobFailureProb: 1.5}},
		{"negative probability", Plan{JobFailureProb: -0.1}},
		{"straggler factor one", Plan{StragglersPerDay: 1, StragglerFactor: 1, Horizon: time.Hour}},
		{"negative downtime", Plan{CrashDowntime: -time.Minute}},
		{"negative retries", Plan{MaxRetries: -1}},
		{"fault at negative time", Plan{Faults: []Fault{{At: -1, Kind: KindNodeCrash}}}},
		{"fault on unknown node", Plan{Faults: []Fault{{Kind: KindNodeCrash, Node: 99}}}},
		{"fault with unknown kind", Plan{Faults: []Fault{{Kind: Kind(42)}}}},
		{"straggler fault without factor", Plan{Faults: []Fault{{Kind: KindStragglerStart}}}},
		{"recover without crash", Plan{Faults: []Fault{{At: time.Hour, Kind: KindNodeRecover, Node: 1}}}},
		{"undrain without drain", Plan{Faults: []Fault{{At: time.Hour, Kind: KindNodeUndrain, Node: 0}}}},
		{"restore without dark window", Plan{Faults: []Fault{{At: time.Hour, Kind: KindMembwRestore, Node: 2}}}},
		{"recover before the crash", Plan{Faults: []Fault{
			{At: 2 * time.Hour, Kind: KindNodeCrash, Node: 1},
			{At: time.Hour, Kind: KindNodeRecover, Node: 1},
		}}},
		{"recover on the wrong node", Plan{Faults: []Fault{
			{At: time.Hour, Kind: KindNodeCrash, Node: 1},
			{At: 2 * time.Hour, Kind: KindNodeRecover, Node: 2},
		}}},
		{"double recover for one crash", Plan{Faults: []Fault{
			{At: time.Hour, Kind: KindNodeCrash, Node: 1},
			{At: 2 * time.Hour, Kind: KindNodeRecover, Node: 1},
			{At: 3 * time.Hour, Kind: KindNodeRecover, Node: 1},
		}}},
		{"straggler end with mismatched factor", Plan{Faults: []Fault{
			{At: time.Hour, Kind: KindStragglerStart, Node: 0, Factor: 0.5},
			{At: 2 * time.Hour, Kind: KindStragglerEnd, Node: 0, Factor: 0.25},
		}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(4); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.p)
		}
	}
	if err := (Plan{}).Validate(0); err == nil {
		t.Error("Validate accepted a zero-node cluster")
	}
}

// TestValidateAcceptsWindowShapes: legal window shapes must keep validating —
// unpaired starts (a node that never comes back), nested and interleaved
// windows of different classes on one node, and same-time pairs in
// declaration order.
func TestValidateAcceptsWindowShapes(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
	}{
		{"unpaired crash", Plan{Faults: []Fault{{At: time.Hour, Kind: KindNodeCrash, Node: 1}}}},
		{"crash then recover", Plan{Faults: []Fault{
			{At: time.Hour, Kind: KindNodeCrash, Node: 1},
			{At: 2 * time.Hour, Kind: KindNodeRecover, Node: 1},
		}}},
		{"interleaved classes on one node", Plan{Faults: []Fault{
			{At: time.Hour, Kind: KindNodeDrain, Node: 0},
			{At: 90 * time.Minute, Kind: KindMembwDark, Node: 0},
			{At: 2 * time.Hour, Kind: KindNodeUndrain, Node: 0},
			{At: 3 * time.Hour, Kind: KindMembwRestore, Node: 0},
		}}},
		{"nested crash windows", Plan{Faults: []Fault{
			{At: time.Hour, Kind: KindNodeCrash, Node: 2},
			{At: 2 * time.Hour, Kind: KindNodeCrash, Node: 2},
			{At: 3 * time.Hour, Kind: KindNodeRecover, Node: 2},
			{At: 4 * time.Hour, Kind: KindNodeRecover, Node: 2},
		}}},
		{"same-time pair in declaration order", Plan{Faults: []Fault{
			{At: time.Hour, Kind: KindNodeCrash, Node: 3},
			{At: time.Hour, Kind: KindNodeRecover, Node: 3},
		}}},
		{"distinct straggler factors close independently", Plan{Faults: []Fault{
			{At: time.Hour, Kind: KindStragglerStart, Node: 0, Factor: 0.5},
			{At: 90 * time.Minute, Kind: KindStragglerStart, Node: 0, Factor: 0.25},
			{At: 2 * time.Hour, Kind: KindStragglerEnd, Node: 0, Factor: 0.25},
			{At: 3 * time.Hour, Kind: KindStragglerEnd, Node: 0, Factor: 0.5},
		}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(4); err != nil {
			t.Errorf("%s: Validate rejected a legal plan: %v", tc.name, err)
		}
	}
}

// TestValidateFixedPlusRateSameWindow: a fixed crash window and rate-based
// crash generation over the same node and time range is a legal, meaningful
// plan (the engine composes overlap with per-node depth counters), and it
// must compile deterministically with the fixed pair preserved verbatim.
func TestValidateFixedPlusRateSameWindow(t *testing.T) {
	p := Plan{
		Seed:              7,
		Horizon:           24 * time.Hour,
		NodeCrashesPerDay: 8,
		CrashDowntime:     2 * time.Hour,
		Faults: []Fault{
			{At: 6 * time.Hour, Kind: KindNodeCrash, Node: 0},
			{At: 9 * time.Hour, Kind: KindNodeRecover, Node: 0},
		},
	}
	if err := p.Validate(4); err != nil {
		t.Fatalf("Validate rejected fixed+rate overlap: %v", err)
	}
	a, err := p.Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fixed+rate plan compiled to different schedules")
	}
	var fixedCrash, fixedRecover bool
	for _, f := range a {
		if f.At == 6*time.Hour && f.Kind == KindNodeCrash && f.Node == 0 {
			fixedCrash = true
		}
		if f.At == 9*time.Hour && f.Kind == KindNodeRecover && f.Node == 0 {
			fixedRecover = true
		}
	}
	if !fixedCrash || !fixedRecover {
		t.Fatalf("fixed pair missing from compiled schedule (crash=%v recover=%v)", fixedCrash, fixedRecover)
	}
	// The rate must have contributed its own events on top of the fixed pair.
	if len(a) <= 2 {
		t.Fatalf("expected rate-generated faults on top of the fixed pair, got %d total", len(a))
	}
}

func TestCompileIsDeterministic(t *testing.T) {
	p := Plan{
		Seed:              11,
		Horizon:           7 * 24 * time.Hour,
		NodeCrashesPerDay: 0.5,
		MembwDropsPerDay:  1.5,
		StragglersPerDay:  1,
		Faults:            []Fault{{At: time.Hour, Kind: KindNodeDrain, Node: 2}},
	}
	a, err := p.Compile(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Compile(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan compiled to different schedules")
	}
	if len(a) < 3 {
		t.Fatalf("expected a non-trivial schedule, got %d faults", len(a))
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].At < a[j].At }) {
		t.Error("schedule is not time-ordered")
	}

	q := p
	q.Seed = 12
	c, err := q.Compile(8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds compiled to identical schedules")
	}
}

// TestCompilePairsWindows: every rate-generated window fault must carry its
// end event so crashed nodes always recover and dark telemetry always
// returns — otherwise chaotic runs could wedge forever.
func TestCompilePairsWindows(t *testing.T) {
	p := Plan{
		Seed:              3,
		Horizon:           10 * 24 * time.Hour,
		NodeCrashesPerDay: 1,
		MembwDropsPerDay:  2,
		StragglersPerDay:  1,
	}
	faults, err := p.Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	opens := map[Kind]Kind{
		KindNodeCrash:      KindNodeRecover,
		KindMembwDark:      KindMembwRestore,
		KindStragglerStart: KindStragglerEnd,
	}
	for start, end := range opens {
		starts, ends := 0, 0
		for _, f := range faults {
			switch f.Kind {
			case start:
				starts++
			case end:
				ends++
			}
		}
		if starts == 0 {
			t.Errorf("%v: rate produced no events over 10 days", start)
		}
		if starts != ends {
			t.Errorf("%v: %d starts but %d ends", start, starts, ends)
		}
	}
}

func TestJobFailureDraw(t *testing.T) {
	p := Plan{Seed: 5, JobFailureProb: 0.3}
	doomed := 0
	const n = 10_000
	for id := job.ID(1); id <= n; id++ {
		frac, fails := p.JobFailure(id)
		f2, again := p.JobFailure(id)
		if fails != again || frac != f2 {
			t.Fatalf("job %d: failure draw is not deterministic", id)
		}
		if fails {
			doomed++
			if frac < 0.2 || frac > 0.8 {
				t.Fatalf("job %d: failure fraction %g out of [0.2, 0.8]", id, frac)
			}
		}
	}
	got := float64(doomed) / n
	if got < 0.25 || got > 0.35 {
		t.Errorf("doomed fraction %.3f far from configured 0.3", got)
	}
}

func TestBackoffDoubles(t *testing.T) {
	p := Plan{RetryBackoff: time.Minute}
	for n, want := range map[int]time.Duration{
		1: time.Minute,
		2: 2 * time.Minute,
		3: 4 * time.Minute,
	} {
		if got := p.Backoff(n); got != want {
			t.Errorf("Backoff(%d) = %v, want %v", n, got, want)
		}
	}
	if got := (Plan{}).Backoff(1); got != DefaultRetryBackoff {
		t.Errorf("default Backoff(1) = %v, want %v", got, DefaultRetryBackoff)
	}
	if (Plan{}).Retries() != DefaultMaxRetries {
		t.Error("zero MaxRetries should fall back to the default budget")
	}
	// The shift clamp must keep huge retry counts finite and positive.
	if got := (Plan{}).Backoff(500); got <= 0 {
		t.Errorf("Backoff(500) = %v, want positive", got)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{
		KindNodeCrash, KindNodeRecover, KindNodeDrain, KindNodeUndrain,
		KindMembwDark, KindMembwRestore, KindStragglerStart, KindStragglerEnd,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
