package history

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/coda-repro/coda/internal/checkpoint/atomicio"
	"github.com/coda-repro/coda/internal/job"
)

// snapshot is the serialized form of the log's aggregates. Per-job records
// are folded into aggregates at Add time, so persistence is O(tenants),
// not O(jobs).
type snapshot struct {
	ByOwnerCategory []ownerCategoryEntry `json:"byOwnerCategory"`
	ByOwner         []ownerEntry         `json:"byOwner"`
	GPUJobCount     int                  `json:"gpuJobCount"`
	CPUJobCount     int                  `json:"cpuJobCount"`
	MaxJobGPUs      int                  `json:"maxJobGPUs"`
	LargeJobGPUs    int                  `json:"largeJobGPUs"`
	SumGPUJobCore   int                  `json:"sumGPUJobCore"`
	SumGPUJobGPUs   int                  `json:"sumGPUJobGPUs"`
	SumLargeGPUs    int                  `json:"sumLargeGPUs"`
}

type ownerCategoryEntry struct {
	Tenant    int     `json:"tenant"`
	Category  int     `json:"category"`
	MaxCores  int     `json:"maxCores"`
	MaxPerGPU float64 `json:"maxPerGPU"`
	Count     int     `json:"count"`
}

type ownerEntry struct {
	Tenant    int     `json:"tenant"`
	MaxCores  int     `json:"maxCores"`
	MaxPerGPU float64 `json:"maxPerGPU"`
	Count     int     `json:"count"`
}

// Save serializes the log so a restarted scheduler keeps its Nstart
// seeding and array statistics (§V-A step 5: records are kept "for future
// use").
func (l *Log) Save(w io.Writer) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	snap := snapshot{
		GPUJobCount:   l.gpuJobCount,
		CPUJobCount:   l.cpuJobCount,
		MaxJobGPUs:    l.maxJobGPUs,
		LargeJobGPUs:  l.largeJobGPUs,
		SumGPUJobCore: l.sumGPUJobCore,
		SumGPUJobGPUs: l.sumGPUJobGPUs,
		SumLargeGPUs:  l.sumLargeGPUs,
	}
	// Entries are sorted so the serialized snapshot is byte-identical across
	// runs (map iteration order would otherwise leak into the output).
	for k, agg := range l.byOwnerCategory {
		snap.ByOwnerCategory = append(snap.ByOwnerCategory, ownerCategoryEntry{
			Tenant:    int(k.tenant),
			Category:  int(k.category),
			MaxCores:  agg.maxCores,
			MaxPerGPU: agg.maxPerGPU,
			Count:     agg.count,
		})
	}
	sort.Slice(snap.ByOwnerCategory, func(i, j int) bool {
		a, b := snap.ByOwnerCategory[i], snap.ByOwnerCategory[j]
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Category < b.Category
	})
	for t, agg := range l.byOwner {
		snap.ByOwner = append(snap.ByOwner, ownerEntry{
			Tenant:    int(t),
			MaxCores:  agg.maxCores,
			MaxPerGPU: agg.maxPerGPU,
			Count:     agg.count,
		})
	}
	sort.Slice(snap.ByOwner, func(i, j int) bool {
		return snap.ByOwner[i].Tenant < snap.ByOwner[j].Tenant
	})
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(snap); err != nil {
		return fmt.Errorf("history: encode: %w", err)
	}
	return bw.Flush()
}

// SaveFile writes the log crash-atomically to path: a crash mid-save leaves
// the previous snapshot intact instead of a torn half-write.
func (l *Log) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		return err
	}
	return atomicio.WriteFile(path, buf.Bytes(), 0o644)
}

// validMaxPerGPU rejects the values a per-GPU core maximum can never take:
// NaN, negative, and ±Inf (0 is legal — CPU-only tenants record no per-GPU
// maximum).
func validMaxPerGPU(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// Load restores a log saved with Save.
func Load(r io.Reader) (*Log, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("history: decode: %w", err)
	}
	if snap.GPUJobCount < 0 || snap.CPUJobCount < 0 || snap.SumGPUJobCore < 0 {
		return nil, fmt.Errorf("history: corrupt snapshot (negative counters)")
	}
	l := NewLog()
	l.gpuJobCount = snap.GPUJobCount
	l.cpuJobCount = snap.CPUJobCount
	l.maxJobGPUs = snap.MaxJobGPUs
	l.largeJobGPUs = snap.LargeJobGPUs
	l.sumGPUJobCore = snap.SumGPUJobCore
	l.sumGPUJobGPUs = snap.SumGPUJobGPUs
	l.sumLargeGPUs = snap.SumLargeGPUs
	for _, e := range snap.ByOwnerCategory {
		if e.MaxCores <= 0 || e.Count <= 0 || !validMaxPerGPU(e.MaxPerGPU) {
			return nil, fmt.Errorf("history: corrupt owner-category entry %+v", e)
		}
		l.byOwnerCategory[key{
			tenant:   job.TenantID(e.Tenant),
			category: job.Category(e.Category),
		}] = aggregate{maxCores: e.MaxCores, maxPerGPU: e.MaxPerGPU, count: e.Count}
	}
	for _, e := range snap.ByOwner {
		if e.MaxCores <= 0 || e.Count <= 0 || !validMaxPerGPU(e.MaxPerGPU) {
			return nil, fmt.Errorf("history: corrupt owner entry %+v", e)
		}
		l.byOwner[job.TenantID(e.Tenant)] = aggregate{maxCores: e.MaxCores, maxPerGPU: e.MaxPerGPU, count: e.Count}
	}
	return l, nil
}
