package history

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/coda-repro/coda/internal/job"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	l := NewLog()
	records := []Record{
		gpuRecord(1, 1, job.CategoryCV, 3, 1),
		gpuRecord(2, 1, job.CategoryCV, 6, 4),
		gpuRecord(3, 2, job.CategoryNLP, 5, 8),
		{JobID: 4, Tenant: 3, Kind: job.KindCPU, CPUCores: 2},
	}
	for _, r := range records {
		if err := l.Add(r); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := restored.Stats(), l.Stats(); got != want {
		t.Errorf("Stats after load = %+v, want %+v", got, want)
	}
	cores, ok := restored.LargestCores(1, job.CategoryCV)
	if !ok || cores != 6 {
		t.Errorf("LargestCores = %d, %v; want 6, true", cores, ok)
	}
	cores, ok = restored.LargestCoresAnyCategory(2)
	if !ok || cores != 5 {
		t.Errorf("LargestCoresAnyCategory = %d, %v; want 5, true", cores, ok)
	}
	// The restored log keeps accepting records.
	if err := restored.Add(gpuRecord(5, 1, job.CategoryCV, 9, 1)); err != nil {
		t.Fatal(err)
	}
	if cores, _ := restored.LargestCores(1, job.CategoryCV); cores != 9 {
		t.Errorf("post-load LargestCores = %d, want 9", cores)
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewLog().Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats() != (Stats{}) {
		t.Errorf("empty round trip = %+v", restored.Stats())
	}
}

func TestSaveFileAtomic(t *testing.T) {
	l := NewLog()
	if err := l.Add(gpuRecord(1, 1, job.CategoryCV, 4, 2)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "history.json")
	if err := l.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats() != l.Stats() {
		t.Errorf("Stats after SaveFile/Load = %+v, want %+v", restored.Stats(), l.Stats())
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	tests := []struct {
		name, input string
	}{
		{"garbage", "not json"},
		{"negative counter", `{"gpuJobCount":-1}`},
		{"corrupt owner entry", `{"byOwner":[{"tenant":1,"maxCores":0,"count":1}]}`},
		{"corrupt category entry", `{"byOwnerCategory":[{"tenant":1,"category":1,"maxCores":3,"count":0}]}`},
		{"negative maxPerGPU owner", `{"byOwner":[{"tenant":1,"maxCores":4,"maxPerGPU":-2,"count":1}]}`},
		{"negative maxPerGPU category", `{"byOwnerCategory":[{"tenant":1,"category":1,"maxCores":4,"maxPerGPU":-0.5,"count":1}]}`},
		{"inf maxPerGPU", `{"byOwner":[{"tenant":1,"maxCores":4,"maxPerGPU":1e999,"count":1}]}`},
		{"nan maxPerGPU", `{"byOwner":[{"tenant":1,"maxCores":4,"maxPerGPU":"NaN","count":1}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tt.input)); err == nil {
				t.Error("expected error")
			}
		})
	}
}
