package history

import (
	"bytes"
	"testing"

	"github.com/coda-repro/coda/internal/job"
)

// FuzzLoad hammers the snapshot decoder with arbitrary bytes. Load must
// never panic, and any snapshot it accepts must save and re-load to the same
// aggregate statistics (round-trip stability).
func FuzzLoad(f *testing.F) {
	l := NewLog()
	for i, rec := range []Record{
		{JobID: 1, Tenant: 1, Kind: job.KindGPUTraining, Category: job.CategoryCV, Model: "resnet50", CPUCores: 6, GPUs: 2, Nodes: 1},
		{JobID: 2, Tenant: 2, Kind: job.KindGPUTraining, Category: job.CategoryNLP, Model: "transformer", CPUCores: 10, GPUs: 4, Nodes: 1},
		{JobID: 3, Tenant: 1, Kind: job.KindCPU, CPUCores: 4},
	} {
		if err := l.Add(rec); err != nil {
			f.Fatalf("seed record %d: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"gpuJobCount":-1}`))
	f.Add([]byte(`{"byOwner":[{"tenant":1,"maxCores":4,"maxPerGPU":2,"count":1}]}`))
	f.Add([]byte(`{"byOwner":[{"tenant":1,"maxCores":4,"maxPerGPU":-3,"count":1}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := loaded.Save(&first); err != nil {
			t.Fatalf("accepted snapshot failed to save: %v", err)
		}
		firstBytes := append([]byte(nil), first.Bytes()...)
		again, err := Load(&first)
		if err != nil {
			t.Fatalf("saved snapshot rejected on re-load: %v", err)
		}
		var second bytes.Buffer
		if err := again.Save(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(firstBytes, second.Bytes()) {
			t.Fatalf("save/load/save not stable:\nfirst:  %s\nsecond: %s", firstBytes, second.Bytes())
		}
	})
}
