package history

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

func gpuRecord(id job.ID, tenant job.TenantID, cat job.Category, cores, gpus int) Record {
	return Record{
		JobID:    id,
		Tenant:   tenant,
		Kind:     job.KindGPUTraining,
		Category: cat,
		Model:    "resnet50",
		CPUCores: cores,
		GPUs:     gpus,
		RunTime:  time.Hour,
	}
}

func TestAddValidation(t *testing.T) {
	l := NewLog()
	if err := l.Add(Record{JobID: 1, CPUCores: 0}); err == nil {
		t.Error("zero cores should fail")
	}
	if err := l.Add(gpuRecord(1, 1, job.CategoryCV, 4, 1)); err != nil {
		t.Errorf("valid record: %v", err)
	}
}

func TestLargestCores(t *testing.T) {
	l := NewLog()
	if _, ok := l.LargestCores(1, job.CategoryCV); ok {
		t.Error("empty log should report !ok")
	}
	must := func(rec Record) {
		t.Helper()
		if err := l.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(gpuRecord(1, 1, job.CategoryCV, 3, 1))
	must(gpuRecord(2, 1, job.CategoryCV, 6, 1))
	must(gpuRecord(3, 1, job.CategoryNLP, 9, 1))
	must(gpuRecord(4, 2, job.CategoryCV, 12, 1))

	got, ok := l.LargestCores(1, job.CategoryCV)
	if !ok || got != 6 {
		t.Errorf("LargestCores(1, CV) = %d, %v; want 6, true", got, ok)
	}
	got, ok = l.LargestCores(1, job.CategoryNLP)
	if !ok || got != 9 {
		t.Errorf("LargestCores(1, NLP) = %d, %v; want 9, true", got, ok)
	}
	if _, ok := l.LargestCores(1, job.CategorySpeech); ok {
		t.Error("LargestCores(1, Speech) should report !ok")
	}
	if _, ok := l.LargestCores(3, job.CategoryCV); ok {
		t.Error("LargestCores(unknown tenant) should report !ok")
	}
}

func TestLargestCoresAnyCategory(t *testing.T) {
	l := NewLog()
	if _, ok := l.LargestCoresAnyCategory(1); ok {
		t.Error("empty log should report !ok")
	}
	if err := l.Add(gpuRecord(1, 1, job.CategoryCV, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(gpuRecord(2, 1, job.CategorySpeech, 8, 1)); err != nil {
		t.Fatal(err)
	}
	got, ok := l.LargestCoresAnyCategory(1)
	if !ok || got != 8 {
		t.Errorf("LargestCoresAnyCategory = %d, %v; want 8, true", got, ok)
	}
}

func TestCPUJobsDoNotSeedNstart(t *testing.T) {
	l := NewLog()
	if err := l.Add(Record{JobID: 1, Tenant: 1, Kind: job.KindCPU, CPUCores: 16}); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.LargestCoresAnyCategory(1); ok {
		t.Error("CPU job should not contribute to training-job history")
	}
	s := l.Stats()
	if s.CPUJobs != 1 || s.GPUJobs != 0 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestStats(t *testing.T) {
	l := NewLog()
	records := []Record{
		gpuRecord(1, 1, job.CategoryCV, 2, 1),
		gpuRecord(2, 1, job.CategoryCV, 4, 4),
		gpuRecord(3, 2, job.CategoryNLP, 6, 8),
		{JobID: 4, Tenant: 3, Kind: job.KindCPU, CPUCores: 2},
		{JobID: 5, Tenant: 3, Kind: job.KindBandwidthHog, CPUCores: 8},
	}
	for _, r := range records {
		if err := l.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	s := l.Stats()
	if s.GPUJobs != 3 || s.CPUJobs != 2 {
		t.Errorf("counts = %d gpu, %d cpu", s.GPUJobs, s.CPUJobs)
	}
	if s.MaxJobGPUs != 8 {
		t.Errorf("MaxJobGPUs = %d, want 8", s.MaxJobGPUs)
	}
	if s.MaxLargeJobGPUs != 8 {
		t.Errorf("MaxLargeJobGPUs = %d, want 8", s.MaxLargeJobGPUs)
	}
	if want := (2.0 + 4 + 6) / 3; s.MeanGPUJobCores != want {
		t.Errorf("MeanGPUJobCores = %g, want %g", s.MeanGPUJobCores, want)
	}
}

func TestStatsEmptyLog(t *testing.T) {
	s := NewLog().Stats()
	if s != (Stats{}) {
		t.Errorf("empty Stats = %+v", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec := gpuRecord(job.ID(w*1000+i+1), job.TenantID(w), job.CategoryCV, 1+i%10, 1)
				if err := l.Add(rec); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				l.LargestCores(job.TenantID(w), job.CategoryCV)
				l.Stats()
			}
		}()
	}
	wg.Wait()
	s := l.Stats()
	if s.GPUJobs != 800 {
		t.Errorf("GPUJobs = %d, want 800", s.GPUJobs)
	}
}

// TestLargestCoresProperty: LargestCores always returns the max of the
// cores added for that (tenant, category).
func TestLargestCoresProperty(t *testing.T) {
	f := func(cores []uint8) bool {
		l := NewLog()
		max := 0
		for i, c := range cores {
			n := int(c)%16 + 1
			if err := l.Add(gpuRecord(job.ID(i+1), 1, job.CategoryCV, n, 1)); err != nil {
				return false
			}
			if n > max {
				max = n
			}
		}
		got, ok := l.LargestCores(1, job.CategoryCV)
		if len(cores) == 0 {
			return !ok
		}
		return ok && got == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
