// Package history is CODA's backend job log (§V-A step 5: "When J
// completes, its resource usage, scheduling information, and owner
// information are recorded in a log for future use"). The adaptive CPU
// allocator seeds its search from the owner's historical jobs in the same
// category (§V-B1), and the multi-array scheduler sizes its resource split
// from historical statistics (§V-C).
package history

import (
	"fmt"
	"sync"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

// Record is one completed job's log entry.
type Record struct {
	// JobID identifies the job.
	JobID job.ID
	// Tenant owned the job.
	Tenant job.TenantID
	// Kind is the job class.
	Kind job.Kind
	// Category is the DNN domain (CategoryNone for CPU jobs).
	Category job.Category
	// Model is the DNN model name (empty for CPU jobs).
	Model string
	// CPUCores is the per-node core count the job finally ran with (the
	// allocator's tuned value for training jobs).
	CPUCores int
	// GPUs is the total GPU count held.
	GPUs int
	// Nodes is the node count the job spanned (per-GPU normalization of
	// the Nstart statistics needs the per-node GPU share).
	Nodes int
	// QueueTime and RunTime are the observed durations.
	QueueTime, RunTime time.Duration
	// CompletedAt is the virtual completion time.
	CompletedAt time.Duration
}

// key groups records for Nstart lookups.
type key struct {
	tenant   job.TenantID
	category job.Category
}

// aggregate is the compact per-key statistic the allocator needs.
type aggregate struct {
	maxCores int
	// maxPerGPU is the largest per-node cores divided by per-node GPUs —
	// the per-GPU demand the allocator scales to a new job's GPU count.
	// Seeding from raw maxCores would let a single multi-GPU job ratchet
	// every later small job's Nstart upward.
	maxPerGPU float64
	count     int
}

// Log is the cluster-wide job history. It is safe for concurrent use.
type Log struct {
	mu sync.RWMutex
	// byOwnerCategory powers Nstart seeding.
	byOwnerCategory map[key]aggregate
	// byOwner powers the worst-case seeding (owner gave no category).
	byOwner map[job.TenantID]aggregate
	// GPU-demand statistics for the multi-array split.
	gpuJobCount   int
	cpuJobCount   int
	maxJobGPUs    int
	largeJobGPUs  int // max GPUs among jobs requesting >= LargeJobGPUs
	sumGPUJobCore int
	sumGPUJobGPUs int
	sumLargeGPUs  int // GPUs demanded by jobs with >= LargeJobGPUs GPUs
}

// LargeJobGPUs is the 4-GPU sub-array threshold: jobs requesting this many
// GPUs or more go to the 4-GPU sub-array (§V-C).
const LargeJobGPUs = 4

// NewLog builds an empty history log.
func NewLog() *Log {
	return &Log{
		byOwnerCategory: make(map[key]aggregate),
		byOwner:         make(map[job.TenantID]aggregate),
	}
}

// Add appends a completed job's record.
func (l *Log) Add(rec Record) error {
	if rec.CPUCores <= 0 {
		return fmt.Errorf("history: record for job %d has %d cores", rec.JobID, rec.CPUCores)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.Kind == job.KindGPUTraining {
		nodes := rec.Nodes
		if nodes < 1 {
			nodes = 1
		}
		gpusPerNode := rec.GPUs / nodes
		if gpusPerNode < 1 {
			gpusPerNode = 1
		}
		perGPU := float64(rec.CPUCores) / float64(gpusPerNode)
		// Multi-node jobs run in a different regime (<= 2 cores per node,
		// §IV-B2) and would drag the owner's statistics down; they are
		// counted in the totals but not in the Nstart aggregates.
		if nodes == 1 {
			k := key{tenant: rec.Tenant, category: rec.Category}
			agg := l.byOwnerCategory[k]
			if rec.CPUCores > agg.maxCores {
				agg.maxCores = rec.CPUCores
			}
			if perGPU > agg.maxPerGPU {
				agg.maxPerGPU = perGPU
			}
			agg.count++
			l.byOwnerCategory[k] = agg

			own := l.byOwner[rec.Tenant]
			if rec.CPUCores > own.maxCores {
				own.maxCores = rec.CPUCores
			}
			if perGPU > own.maxPerGPU {
				own.maxPerGPU = perGPU
			}
			own.count++
			l.byOwner[rec.Tenant] = own
		}

		l.gpuJobCount++
		l.sumGPUJobCore += rec.CPUCores
		l.sumGPUJobGPUs += rec.GPUs
		if rec.GPUs > l.maxJobGPUs {
			l.maxJobGPUs = rec.GPUs
		}
		if rec.GPUs >= LargeJobGPUs {
			l.sumLargeGPUs += rec.GPUs
			if rec.GPUs > l.largeJobGPUs {
				l.largeJobGPUs = rec.GPUs
			}
		}
	} else {
		l.cpuJobCount++
	}
	return nil
}

// LargestCores returns the largest tuned core count among the owner's
// historical jobs in the given category; ok is false with no history.
// The paper: "we choose the largest core number to be Nstart" (§V-B1).
func (l *Log) LargestCores(t job.TenantID, c job.Category) (cores int, ok bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	agg, found := l.byOwnerCategory[key{tenant: t, category: c}]
	if !found || agg.count == 0 {
		return 0, false
	}
	return agg.maxCores, true
}

// LargestCoresAnyCategory returns the largest tuned core count among all of
// the owner's historical training jobs — the worst-case seed when the owner
// provides no category (§V-B1).
func (l *Log) LargestCoresAnyCategory(t job.TenantID) (cores int, ok bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	agg, found := l.byOwner[t]
	if !found || agg.count == 0 {
		return 0, false
	}
	return agg.maxCores, true
}

// LargestCoresPerGPU returns the largest per-GPU tuned core demand among
// the owner's single-node jobs in the category; ok is false with no
// history.
func (l *Log) LargestCoresPerGPU(t job.TenantID, c job.Category) (perGPU float64, ok bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	agg, found := l.byOwnerCategory[key{tenant: t, category: c}]
	if !found || agg.count == 0 {
		return 0, false
	}
	return agg.maxPerGPU, true
}

// LargestCoresPerGPUAnyCategory is the category-free fallback (§V-B1
// worst case).
func (l *Log) LargestCoresPerGPUAnyCategory(t job.TenantID) (perGPU float64, ok bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	agg, found := l.byOwner[t]
	if !found || agg.count == 0 {
		return 0, false
	}
	return agg.maxPerGPU, true
}

// Stats summarizes the log for the multi-array scheduler's resource split.
type Stats struct {
	// GPUJobs and CPUJobs count recorded completions.
	GPUJobs, CPUJobs int
	// MaxJobGPUs is the largest GPU request seen.
	MaxJobGPUs int
	// MaxLargeJobGPUs is the largest GPU request among >=4-GPU jobs; the
	// paper designates it the 4-GPU sub-array's initial size (§V-C).
	MaxLargeJobGPUs int
	// MeanGPUJobCores is the average tuned core count of training jobs,
	// which sizes the CPU reservation of the GPU resource array.
	MeanGPUJobCores float64
	// MeanCoresPerGPU is the average tuned per-node core count divided by
	// the per-job GPU count — the per-GPU CPU demand that sizes the GPU
	// array's per-node reserve.
	MeanCoresPerGPU float64
	// LargeGPUShare is the fraction of total GPU demand coming from jobs
	// with >= LargeJobGPUs GPUs; it sizes the 4-GPU sub-array (§V-C).
	LargeGPUShare float64
}

// Stats returns the aggregate statistics.
func (l *Log) Stats() Stats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := Stats{
		GPUJobs:         l.gpuJobCount,
		CPUJobs:         l.cpuJobCount,
		MaxJobGPUs:      l.maxJobGPUs,
		MaxLargeJobGPUs: l.largeJobGPUs,
	}
	if l.gpuJobCount > 0 {
		s.MeanGPUJobCores = float64(l.sumGPUJobCore) / float64(l.gpuJobCount)
	}
	if l.sumGPUJobGPUs > 0 {
		s.MeanCoresPerGPU = float64(l.sumGPUJobCore) / float64(l.sumGPUJobGPUs)
		s.LargeGPUShare = float64(l.sumLargeGPUs) / float64(l.sumGPUJobGPUs)
	}
	return s
}
