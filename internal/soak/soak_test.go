package soak

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryIsWellFormed(t *testing.T) {
	rs := Recipes()
	if len(rs) < 6 {
		t.Fatalf("registry has %d recipes, the soak wall promises at least 6", len(rs))
	}
	seen := make(map[string]bool)
	for _, r := range rs {
		if err := r.Validate(); err != nil {
			t.Errorf("recipe %q invalid: %v", r.Name, err)
		}
		if seen[r.Name] {
			t.Errorf("recipe name %q registered twice", r.Name)
		}
		seen[r.Name] = true
	}
	want := []string{
		"quiet-baseline", "crash-heavy-diurnal-month", "controller-kill-storm",
		"drain-half-cluster-midmonth", "telemetry-dark-week", "straggler-cascade",
	}
	names := Names()
	for i, w := range want {
		if names[i] != w {
			t.Errorf("registry order changed: position %d is %q, want %q (golden reports depend on this order)", i, names[i], w)
		}
	}
}

func TestLookup(t *testing.T) {
	r, err := Lookup("controller-kill-storm")
	if err != nil || r.Name != "controller-kill-storm" {
		t.Fatalf("Lookup(controller-kill-storm) = %q, %v", r.Name, err)
	}
	if _, err := Lookup("no-such-recipe"); err == nil {
		t.Fatal("Lookup accepted an unknown recipe")
	} else if !strings.Contains(err.Error(), "quiet-baseline") {
		t.Errorf("unknown-recipe error should list the registry, got: %v", err)
	}
}

func TestRecipesBuildAtEveryScale(t *testing.T) {
	// Every recipe must build at every preset scale: fixed fault schedules
	// are scale-relative and must survive chaos.Plan.Validate at each size.
	// Specs stream their traces, so building even the warehouse cell is
	// cheap — nothing is materialized until the run.
	for _, sc := range []Scale{TinyScale(), SmallScale(), FullScale(), WarehouseScale()} {
		for _, r := range Recipes() {
			sp, err := r.Build(7, sc)
			if err != nil {
				t.Errorf("%s at %s: %v", r.Name, sc.Name, err)
				continue
			}
			if err := sp.Validate(); err != nil {
				t.Errorf("%s at %s: built spec invalid: %v", r.Name, sc.Name, err)
			}
			if sp.Trace == nil {
				t.Errorf("%s at %s: spec materializes its trace instead of streaming", r.Name, sc.Name)
				continue
			}
			if sp.JobCount() != sc.CPUJobs+sc.GPUJobs {
				t.Errorf("%s at %s: %d jobs, want %d", r.Name, sc.Name, sp.JobCount(), sc.CPUJobs+sc.GPUJobs)
			}
		}
	}
}

func TestParseCondition(t *testing.T) {
	good := map[string]Condition{
		"completion-floor=0.97":  {Check: CheckCompletionFloor, Threshold: 0.97},
		" queue-p99-ceiling=600": {Check: CheckQueueP99Ceiling, Threshold: 600},
		"resume-equivalence=3":   {Check: CheckResumeEquivalence, Threshold: 3},
		"fault-counters-sane=1":  {Check: CheckFaultCountersSane, Threshold: 1},
	}
	for in, want := range good {
		got, err := ParseCondition(in)
		if err != nil {
			t.Errorf("ParseCondition(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseCondition(%q) = %+v, want %+v", in, got, want)
		}
	}

	bad := []string{
		"",
		"completion-floor",
		"completion-floor=",
		"=0.5",
		"no-such-check=1",
		"completion-floor=NaN",
		"completion-floor=nan",
		"queue-p99-ceiling=+Inf",
		"queue-p99-ceiling=-Inf",
		"completion-floor=1.5",  // ratio above 1
		"completion-floor=-0.1", // negative threshold
		"node-crashes-floor=-2",
		"completion-floor=abc",
	}
	for _, in := range bad {
		if c, err := ParseCondition(in); err == nil {
			t.Errorf("ParseCondition(%q) accepted: %+v", in, c)
		}
	}
}

func TestConditionRoundTrip(t *testing.T) {
	for _, k := range CheckKinds() {
		c := Condition{Check: k, Threshold: 0.5}
		rt, err := ParseCondition(c.String())
		if err != nil {
			t.Errorf("%s: round trip failed: %v", k, err)
			continue
		}
		if rt != c {
			t.Errorf("%s: round trip changed %+v into %+v", k, c, rt)
		}
	}
}

func TestParseScale(t *testing.T) {
	for _, name := range []string{"tiny", "small", "full"} {
		sc, err := ParseScale(name)
		if err != nil {
			t.Fatalf("ParseScale(%q): %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("ParseScale(%q).Name = %q", name, sc.Name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("preset %q fails its own validation: %v", name, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted an unknown preset")
	}
}

func TestScaleValidateRejectsDegenerate(t *testing.T) {
	base := TinyScale()
	cases := []struct {
		name string
		mut  func(*Scale)
	}{
		{"no name", func(s *Scale) { s.Name = "" }},
		{"zero days", func(s *Scale) { s.Days = 0 }},
		{"negative days", func(s *Scale) { s.Days = -1 }},
		{"NaN days", func(s *Scale) { s.Days = math.NaN() }},
		{"infinite days", func(s *Scale) { s.Days = math.Inf(1) }},
		{"negative cpu jobs", func(s *Scale) { s.CPUJobs = -1 }},
		{"negative gpu jobs", func(s *Scale) { s.GPUJobs = -1 }},
		{"no jobs at all", func(s *Scale) { s.CPUJobs, s.GPUJobs = 0, 0 }},
		{"zero nodes", func(s *Scale) { s.Nodes = 0 }},
		{"negative nodes", func(s *Scale) { s.Nodes = -4 }},
	}
	for _, tc := range cases {
		sc := base
		tc.mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, sc)
		}
		if _, err := (Recipe{
			Name: "x", Description: "x",
			Conditions: []Condition{{Check: CheckCompletionFloor, Threshold: 1}},
			build:      quietBaseline().build,
		}).Build(1, sc); err == nil {
			t.Errorf("%s: Build accepted degenerate scale %+v", tc.name, sc)
		}
	}
}

func TestRecipeValidateRejectsMalformed(t *testing.T) {
	ok := Recipe{
		Name:        "x",
		Description: "y",
		Conditions:  []Condition{{Check: CheckCompletionFloor, Threshold: 0.9}},
		build:       quietBaseline().build,
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid recipe rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Recipe)
	}{
		{"no name", func(r *Recipe) { r.Name = "" }},
		{"no description", func(r *Recipe) { r.Description = "" }},
		{"no builder", func(r *Recipe) { r.build = nil }},
		{"no conditions", func(r *Recipe) { r.Conditions = nil }},
		{"bad condition", func(r *Recipe) { r.Conditions = []Condition{{Check: "bogus", Threshold: 1}} }},
		{"NaN threshold", func(r *Recipe) {
			r.Conditions = []Condition{{Check: CheckCompletionFloor, Threshold: math.NaN()}}
		}},
	}
	for _, tc := range cases {
		r := ok
		tc.mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the recipe", tc.name)
		}
	}
}

func TestMatrixSpecValidate(t *testing.T) {
	ok := MatrixSpec{Recipes: Recipes()[:1], Seeds: []int64{1}, Scale: TinyScale()}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	cases := []struct {
		name string
		ms   MatrixSpec
	}{
		{"no recipes", MatrixSpec{Seeds: []int64{1}, Scale: TinyScale()}},
		{"no seeds", MatrixSpec{Recipes: Recipes()[:1], Scale: TinyScale()}},
		{"bad scale", MatrixSpec{Recipes: Recipes()[:1], Seeds: []int64{1}, Scale: Scale{Name: "x", Days: -1, CPUJobs: 1, Nodes: 1}}},
		{"duplicate recipe", MatrixSpec{Recipes: []Recipe{quietBaseline(), quietBaseline()}, Seeds: []int64{1}, Scale: TinyScale()}},
		{"bad extra condition", MatrixSpec{
			Recipes: Recipes()[:1], Seeds: []int64{1}, Scale: TinyScale(),
			ExtraConditions: []Condition{{Check: "bogus", Threshold: 1}},
		}},
	}
	for _, tc := range cases {
		if err := tc.ms.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the matrix", tc.name)
		}
	}
}
