package soak

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/metrics"
	"github.com/coda-repro/coda/internal/sim"
)

// TestSameInputsBitIdentical is the first metamorphic claim: the same
// (recipe, seed, scale) triple built and run twice produces bit-identical
// results — every series sample, CDF point and job lifecycle.
func TestSameInputsBitIdentical(t *testing.T) {
	for _, r := range Recipes() {
		a, err := r.Build(1, TinyScale())
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		b, err := r.Build(1, TinyScale())
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		resA, err := a.Run()
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		resB, err := b.Run()
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		da, db := sim.DumpResult(resA), sim.DumpResult(resB)
		if da != db {
			t.Errorf("%s: same inputs diverged at %s", r.Name, sim.FirstDiff(da, db))
		}
	}
}

// TestReportBytesStable: the same grid encoded twice is byte-identical —
// the property the golden verdict file and CI diffing rest on.
func TestReportBytesStable(t *testing.T) {
	encode := func() []byte {
		rep, err := Grid(context.Background(), []string{"quiet-baseline", "controller-kill-storm"},
			[]int64{1}, TinyScale(), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := encode(), encode()
	if string(a) != string(b) {
		t.Fatal("the same grid encoded to different report bytes")
	}
}

// hexFloat renders a float bit-exactly (mirrors the dump format's idiom).
func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// seriesPrefix renders a series' samples strictly before cutoff, bit-exact.
func seriesPrefix(s *metrics.Series, cutoff time.Duration) string {
	var b strings.Builder
	times, vals := s.Times(), s.Values()
	for i := range vals {
		if times[i] >= cutoff {
			break
		}
		fmt.Fprintf(&b, " %d=%s", times[i], hexFloat(vals[i]))
	}
	return b.String()
}

// TestDifferentChaosSeedDivergesOnlyAfterFirstFault is the second
// metamorphic claim, in the shape of the chaos-layer divergence test:
// changing only the fault-plan seed of a built recipe leaves the run
// bit-identical strictly before the first injected fault of either
// schedule, and visibly different overall. straggler-cascade is the
// subject because its chaos is purely schedule-driven (no per-job failure
// draws whose kill times depend on job execution).
func TestDifferentChaosSeedDivergesOnlyAfterFirstFault(t *testing.T) {
	r, err := Lookup("straggler-cascade")
	if err != nil {
		t.Fatal(err)
	}
	specA, err := r.Build(1, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	specB := specA.Clone()
	specB.Options.Faults.Seed = 99 // the ONLY difference

	nodes := specA.Options.Cluster.TotalNodes()
	firstFault := func(sp sim.RunSpec) time.Duration {
		faults, err := sp.Options.Faults.Compile(nodes)
		if err != nil {
			t.Fatal(err)
		}
		if len(faults) == 0 {
			t.Fatal("plan compiled to no faults; the recipe no longer injects anything")
		}
		return faults[0].At
	}
	cut := firstFault(specA)
	if b := firstFault(specB); b < cut {
		cut = b
	}

	resA, err := specA.Run()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := specB.Run()
	if err != nil {
		t.Fatal(err)
	}

	series := []struct {
		name string
		a, b *metrics.Series
	}{
		{"gpuActive", &resA.GPUActive, &resB.GPUActive},
		{"gpuUtil", &resA.GPUUtilSeries, &resB.GPUUtilSeries},
		{"cpuActive", &resA.CPUActive, &resB.CPUActive},
		{"cpuUtil", &resA.CPUUtilSeries, &resB.CPUUtilSeries},
		{"frag", &resA.FragSeries, &resB.FragSeries},
		{"queuedGPU", &resA.QueuedGPU, &resB.QueuedGPU},
		{"queuedCPU", &resA.QueuedCPU, &resB.QueuedCPU},
	}
	for _, s := range series {
		pa, pb := seriesPrefix(s.a, cut), seriesPrefix(s.b, cut)
		if pa != pb {
			t.Errorf("series %s diverged BEFORE the first injected fault (t=%v):\n  A:%s\n  B:%s",
				s.name, cut, pa, pb)
		}
	}
	if sim.DumpResult(resA) == sim.DumpResult(resB) {
		t.Error("different fault seeds produced identical runs; injection is inert")
	}
}
