package soak

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseCondition: whatever the input, ParseCondition either rejects it
// or returns a Condition that validates, round-trips through String, and
// carries a finite, in-domain threshold. The CLI feeds -conditions
// straight through this parser, so "parse implies valid" is what keeps a
// typo'd soak wall from silently disarming itself.
func FuzzParseCondition(f *testing.F) {
	for _, s := range []string{
		"completion-floor=0.97",
		"queue-p99-ceiling=14400",
		"queue-p99-ratio-ceiling=0.12",
		"terminal-failure-ratio-ceiling=0.05",
		"fault-counters-sane=1",
		"invariants-clean=1",
		"node-crashes-floor=1",
		"stragglers-floor=4",
		"degraded-samples-floor=1",
		"controller-kills-floor=3",
		"resume-equivalence=3",
		"no-such-check=1",
		"completion-floor=NaN",
		"completion-floor=+Inf",
		"completion-floor=-1",
		"completion-floor=1.5",
		"completion-floor=1e309",
		"=1",
		"completion-floor=",
		"completion-floor",
		" completion-floor = 0.5 ",
		"completion-floor=0x1p-2",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCondition(s)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("ParseCondition(%q) returned a condition its own Validate rejects: %v", s, err)
		}
		if math.IsNaN(c.Threshold) || math.IsInf(c.Threshold, 0) || c.Threshold < 0 {
			t.Fatalf("ParseCondition(%q) let threshold %g through", s, c.Threshold)
		}
		if strings.TrimSpace(string(c.Check)) != string(c.Check) || c.Check == "" {
			t.Fatalf("ParseCondition(%q) kept an unnormalized check name %q", s, c.Check)
		}
		rt, err := ParseCondition(c.String())
		if err != nil {
			t.Fatalf("round trip of %q failed: ParseCondition(%q): %v", s, c.String(), err)
		}
		if rt != c {
			t.Fatalf("round trip of %q changed %+v into %+v", s, c, rt)
		}
	})
}

// FuzzScaleValidate: Scale.Validate must reject every degenerate shape —
// non-finite or non-positive durations, negative job counts, empty traces,
// non-positive clusters — and accept the rest.
func FuzzScaleValidate(f *testing.F) {
	f.Add("tiny", 0.5, 300, 100, 16)
	f.Add("full", 30.0, 75000, 25000, 80)
	f.Add("bad", -1.0, 10, 10, 4)
	f.Add("", 1.0, 10, 10, 4)
	f.Add("nan", math.NaN(), 10, 10, 4)
	f.Add("inf", math.Inf(1), 10, 10, 4)
	f.Add("empty", 1.0, 0, 0, 4)
	f.Add("nonodes", 1.0, 10, 10, 0)
	f.Fuzz(func(t *testing.T, name string, days float64, cpu, gpu, nodes int) {
		sc := Scale{Name: name, Days: days, CPUJobs: cpu, GPUJobs: gpu, Nodes: nodes}
		err := sc.Validate()
		degenerate := name == "" ||
			math.IsNaN(days) || math.IsInf(days, 0) || days <= 0 ||
			cpu < 0 || gpu < 0 || cpu+gpu == 0 || nodes <= 0
		if degenerate && err == nil {
			t.Fatalf("Validate accepted degenerate scale %+v", sc)
		}
		if !degenerate && err != nil {
			t.Fatalf("Validate rejected healthy scale %+v: %v", sc, err)
		}
	})
}
