package soak

import (
	"errors"
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/checkpoint"
	"github.com/coda-repro/coda/internal/ctl"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

// Outcome is one executed matrix cell: the pristine spec it was built
// from and the result (or error) the runner produced. The spec must be
// the unexecuted original — resume-equivalence re-runs it, and a spec
// whose jobs a previous run already mutated would poison the replay.
type Outcome struct {
	Spec   sim.RunSpec
	Result *sim.Result
	Err    error
}

// Verdict is one evaluated condition, JSON-shaped for the report.
type Verdict struct {
	// Check and Threshold restate the condition.
	Check     string  `json:"check"`
	Threshold float64 `json:"threshold"`
	// Measured is the value the check reduced the run to.
	Measured float64 `json:"measured"`
	// Pass is the comparison outcome.
	Pass bool `json:"pass"`
	// Detail explains a failure (first divergence, counter insanity, ...).
	Detail string `json:"detail,omitempty"`
}

// Eval evaluates one condition against an outcome. A cell that errored
// fails every condition with the run error as detail.
func Eval(c Condition, o *Outcome) Verdict {
	v := Verdict{Check: string(c.Check), Threshold: c.Threshold}
	if err := c.Validate(); err != nil {
		v.Detail = err.Error()
		return v
	}
	if o.Err != nil {
		v.Detail = "run failed: " + o.Err.Error()
		return v
	}
	if o.Result == nil {
		v.Detail = "run produced no result"
		return v
	}
	if c.Check == CheckResumeEquivalence {
		return evalResumeEquivalence(c, o)
	}
	if c.Check == CheckServeKillEquivalence {
		return evalServeKillEquivalence(c, o)
	}

	res := o.Result
	switch c.Check {
	case CheckCompletionFloor:
		v.Measured = completionRatio(res)
	case CheckQueueP99Ceiling:
		v.Measured = res.GPUQueue.Percentile(99).Seconds()
	case CheckQueueP99RatioCeiling:
		if res.LastArrival > 0 {
			v.Measured = res.GPUQueue.Percentile(99).Seconds() / res.LastArrival.Seconds()
		}
	case CheckTerminalFailureRatioCeiling:
		total, _, failed := jobCounts(res)
		if total > 0 {
			v.Measured = float64(failed) / float64(total)
		}
	case CheckFaultCountersSane:
		if err := res.Faults.Sane(); err != nil {
			v.Detail = err.Error()
		} else {
			v.Measured = 1
		}
	case CheckInvariantsClean:
		// An invariant violation fails the run itself, so reaching this
		// point with the checker enabled means every audit passed.
		if o.Spec.Options.Invariants {
			v.Measured = 1
		} else {
			v.Detail = "run executed without the invariant checker enabled"
		}
	case CheckNodeCrashesFloor:
		v.Measured = float64(res.Faults.NodeCrashes)
	case CheckStragglersFloor:
		v.Measured = float64(res.Faults.Stragglers)
	case CheckDegradedSamplesFloor:
		v.Measured = float64(res.Faults.DegradedSamples)
	case CheckControllerKillsFloor:
		v.Measured = float64(res.Faults.ControllerKills)
	default:
		v.Detail = fmt.Sprintf("check %q has no evaluator", c.Check)
		return v
	}
	v.Pass = compare(c, v.Measured)
	return v
}

// EvalAll evaluates every condition in order.
func EvalAll(conds []Condition, o *Outcome) []Verdict {
	out := make([]Verdict, len(conds))
	for i, c := range conds {
		out[i] = Eval(c, o)
	}
	return out
}

// compare applies the check's direction.
func compare(c Condition, measured float64) bool {
	if checkByName[c.Check].ceiling {
		return measured <= c.Threshold
	}
	return measured >= c.Threshold
}

// completionRatio is completed jobs over all generated jobs.
func completionRatio(res *sim.Result) float64 {
	total, completed, _ := jobCounts(res)
	if total == 0 {
		return 0
	}
	return float64(completed) / float64(total)
}

// jobCounts tallies job dispositions. Iterating the map is sound here:
// integer counting is order-insensitive.
func jobCounts(res *sim.Result) (total, completed, failed int) {
	for _, js := range res.Jobs {
		total++
		if js.Completed {
			completed++
		}
		if js.TerminallyFailed {
			failed++
		}
	}
	return total, completed, failed
}

// maxRecoveryRestarts bounds the replay loop: a recipe whose plan kills
// the controller more often than this is a configuration bug, not a soak.
const maxRecoveryRestarts = 64

// evalResumeEquivalence replays the cell with ExitOnControllerKill set,
// checkpointing as it goes and restarting from the latest checkpoint after
// every kill — the crash-recovery discipline a real deployment would run
// under. The replayed result must be byte-identical to the uninterrupted
// baseline (the cell's own result), and the controller must actually have
// died at least Threshold times, so a plan without kills cannot pass
// vacuously. sim.FirstDiff names the first divergent dump line on failure.
func evalResumeEquivalence(c Condition, o *Outcome) Verdict {
	v := Verdict{Check: string(c.Check), Threshold: c.Threshold}
	want := sim.DumpResult(o.Result)

	template := o.Spec.Clone()
	template.Options.ExitOnControllerKill = true
	every := template.Options.Faults.Horizon / 24
	if every <= 0 {
		every = time.Hour
	}
	template.Options.CheckpointEvery = every

	// The sink keeps only the latest checkpoint, round-tripped through the
	// CODACKPT envelope so the replay exercises real serialization.
	var latest []byte
	sink := func(ck *sim.Checkpoint) error {
		data, err := checkpoint.Encode(ck)
		if err != nil {
			return err
		}
		latest = data
		return nil
	}
	template.Options.CheckpointSink = sink

	deaths := 0
	var res *sim.Result
	for restarts := 0; ; restarts++ {
		if restarts > maxRecoveryRestarts {
			v.Measured = float64(deaths)
			v.Detail = fmt.Sprintf("gave up after %d restarts; the plan kills faster than it checkpoints", restarts)
			return v
		}
		s, err := startOrResume(template, latest, sink)
		if err != nil {
			v.Measured = float64(deaths)
			v.Detail = err.Error()
			return v
		}
		s.SetSurvivedKills(deaths)
		r, err := s.Run()
		if errors.Is(err, sim.ErrControllerKilled) {
			deaths++
			continue
		}
		if err != nil {
			v.Measured = float64(deaths)
			v.Detail = "replay failed: " + err.Error()
			return v
		}
		res = r
		break
	}
	v.Measured = float64(deaths)

	got := sim.DumpResult(res)
	if got != want {
		v.Detail = "kill-and-resume diverged from the uninterrupted run at " + sim.FirstDiff(want, got)
		return v
	}
	if !compare(c, v.Measured) {
		v.Detail = fmt.Sprintf("controller died %d times; the condition demands at least %g to prove anything", deaths, c.Threshold)
		return v
	}
	v.Pass = true
	return v
}

// evalServeKillEquivalence runs the control-plane drill over the cell's
// spec: its trace becomes a scripted request stream (with drop/dup/swap
// client chaos and periodic cancels), served once uninterrupted and once
// through Threshold seeded process kills, each recovered from the latest
// machine checkpoint plus a WAL suffix replay. Measured is the number of
// kills survived; byte-identity of the two final dumps is mandatory.
func evalServeKillEquivalence(c Condition, o *Outcome) Verdict {
	v := Verdict{Check: string(c.Check), Threshold: c.Threshold}
	spec := o.Spec
	drill := ctl.DrillConfig{
		Seed:            spec.Options.Seed,
		Chaos:           ctl.RequestChaos{DropProb: 0.05, DupProb: 0.05, SwapProb: 0.1},
		Kills:           int(c.Threshold),
		CancelEvery:     10,
		Tick:            5 * time.Minute,
		CheckpointEvery: 20,
		Horizon:         spec.Options.MaxVirtualTime,
	}
	// The drill scripts a request stream from explicit jobs; a streaming
	// spec materializes them here, where the drill's own memory needs
	// (request log, WAL) are O(jobs) anyway.
	jobs := spec.Jobs
	if spec.Trace != nil {
		var err error
		jobs, err = trace.Generate(*spec.Trace)
		if err != nil {
			v.Detail = "drill trace: " + err.Error()
			return v
		}
	}
	rep, err := ctl.RunKillDrill(spec.Options, spec.NewScheduler, jobs, drill)
	if err != nil {
		v.Detail = "drill failed: " + err.Error()
		return v
	}
	v.Measured = float64(rep.Kills)
	if rep.Diff != "" {
		v.Detail = "kill-and-recover diverged from the uninterrupted serve at " + rep.Diff
		return v
	}
	if !compare(c, v.Measured) {
		v.Detail = fmt.Sprintf("serving process died %d times; the condition demands at least %g to prove anything", rep.Kills, c.Threshold)
		return v
	}
	v.Pass = true
	return v
}

// startOrResume builds the next simulator attempt: from the latest
// checkpoint when one exists, cold otherwise. Cold starts clone the
// template so every attempt begins from pristine jobs.
func startOrResume(template sim.RunSpec, latest []byte, sink sim.CheckpointSink) (*sim.Simulator, error) {
	scheduler, err := template.NewScheduler()
	if err != nil {
		return nil, fmt.Errorf("replay scheduler: %w", err)
	}
	if latest == nil {
		fresh := template.Clone()
		if fresh.Trace != nil {
			src, err := trace.NewSource(*fresh.Trace)
			if err != nil {
				return nil, fmt.Errorf("replay trace source: %w", err)
			}
			s, err := sim.NewStreaming(fresh.Options, scheduler, src)
			if err != nil {
				return nil, fmt.Errorf("replay cold start: %w", err)
			}
			return s, nil
		}
		s, err := sim.New(fresh.Options, scheduler, fresh.Jobs)
		if err != nil {
			return nil, fmt.Errorf("replay cold start: %w", err)
		}
		return s, nil
	}
	var ck sim.Checkpoint
	if err := checkpoint.Decode(latest, &ck); err != nil {
		return nil, fmt.Errorf("replay checkpoint decode: %w", err)
	}
	s, err := sim.Resume(&ck, scheduler, sink)
	if err != nil {
		return nil, fmt.Errorf("replay resume: %w", err)
	}
	return s, nil
}
