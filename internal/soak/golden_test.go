package soak

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenVerdicts pins the full tiny-scale recipe matrix at seeds 1 and
// 2 to testdata/soak/golden.json, byte for byte. Any behavioral drift in
// the engine, the chaos layer, the trace generator, a recipe definition or
// a condition evaluator changes the report bytes and fails loudly here.
//
// Regenerate intentionally with:
//
//	SOAK_UPDATE_GOLDEN=1 go test ./internal/soak -run TestGoldenVerdicts
func TestGoldenVerdicts(t *testing.T) {
	rep, err := RunMatrix(context.Background(), MatrixSpec{
		Recipes: Recipes(),
		Seeds:   []int64{1, 2},
		Scale:   TinyScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("tiny-scale matrix no longer passes its own conditions (%d failing cells)", rep.Failed)
	}

	golden := filepath.Join("testdata", "soak", "golden.json")
	if os.Getenv("SOAK_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden verdicts (regenerate with SOAK_UPDATE_GOLDEN=1): %v", err)
	}
	if string(got) == string(want) {
		return
	}
	// Find the first divergent line so the failure names what moved.
	gl, wl := splitLines(string(got)), splitLines(string(want))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("verdict report drifted at line %d:\n  got:  %s\n  want: %s\n(intentional? regenerate with SOAK_UPDATE_GOLDEN=1)",
				i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("verdict report drifted: got %d lines, want %d (intentional? regenerate with SOAK_UPDATE_GOLDEN=1)",
		len(gl), len(wl))
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
