package soak

import (
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/core"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
	"github.com/coda-repro/coda/internal/trace"
)

// Recipes returns the recipe registry in canonical matrix order. The order
// is part of the report contract: golden verdict files and CI diffs depend
// on it, so append new recipes at the end.
func Recipes() []Recipe {
	return []Recipe{
		quietBaseline(),
		crashHeavyDiurnalMonth(),
		controllerKillStorm(),
		drainHalfClusterMidmonth(),
		telemetryDarkWeek(),
		stragglerCascade(),
		serveKillStorm(),
	}
}

// cond is shorthand for a Condition literal.
func cond(k CheckKind, threshold float64) Condition {
	return Condition{Check: k, Threshold: threshold}
}

// buildSpec assembles the common run shape every recipe shares: a diurnal
// trace sized by the scale, the CODA scheduler on the scale's cluster, the
// always-on invariant checker, and the recipe's chaos plan — validated
// here, so a malformed plan fails at build time with the recipe's name
// attached instead of surfacing mid-run.
//
// Seed discipline: the trace generator and the fault plan consume the cell
// seed directly; the simulator's measurement-noise stream gets seed+1000,
// matching the offset convention in internal/experiments, so the noise and
// fault streams never collide.
func buildSpec(recipe string, seed int64, sc Scale, plan chaos.Plan) (sim.RunSpec, error) {
	cfg := trace.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = sc.Duration()
	cfg.CPUJobs = sc.CPUJobs
	cfg.GPUJobs = sc.GPUJobs
	if err := cfg.Validate(); err != nil {
		return sim.RunSpec{}, fmt.Errorf("soak: recipe %s: trace: %w", recipe, err)
	}

	opts := sim.DefaultOptions()
	opts.Cluster.Nodes = sc.Nodes
	opts.Seed = seed + 1000
	opts.SampleInterval = 10 * time.Minute
	opts.MaxVirtualTime = sc.Duration() + 4*24*time.Hour
	opts.Invariants = true
	opts.InvariantsEvery = 256

	plan.Seed = seed
	if !plan.Empty() {
		if err := plan.Validate(opts.Cluster.TotalNodes()); err != nil {
			return sim.RunSpec{}, fmt.Errorf("soak: recipe %s: %w", recipe, err)
		}
	}
	opts.Faults = plan

	cc := opts.Cluster
	return sim.RunSpec{
		Name:    fmt.Sprintf("%s/seed=%d", recipe, seed),
		Options: opts,
		// Streaming intake: each run constructs its own seeded source from
		// this config, so a month-scale cell never materializes its jobs.
		Trace: &cfg,
		NewScheduler: func() (sched.Scheduler, error) {
			return core.New(core.DefaultConfig(), cc.Nodes, cc.CoresPerNode, cc.GPUsPerNode)
		},
	}, nil
}

// quietBaseline is the control: no injected faults at all. Its conditions
// pin the healthy envelope, so if the quiet world degrades, every chaotic
// verdict is suspect.
func quietBaseline() Recipe {
	return Recipe{
		Name:        "quiet-baseline",
		Description: "fault-free control run pinning the healthy completion and queueing envelope",
		Conditions: []Condition{
			cond(CheckCompletionFloor, 0.99),
			cond(CheckQueueP99RatioCeiling, 0.08),
			cond(CheckTerminalFailureRatioCeiling, 0),
			cond(CheckFaultCountersSane, 1),
			cond(CheckInvariantsClean, 1),
		},
		build: func(seed int64, sc Scale) (sim.RunSpec, error) {
			return buildSpec("quiet-baseline", seed, sc, chaos.Plan{})
		},
	}
}

// crashHeavyDiurnalMonth drives the diurnal trace through a sustained
// crash regime: a steady rate of node crashes with 45-minute downtimes,
// background stragglers, and a 2% injected job-failure probability. One
// fixed crash/recover pair rides on top of the rate so the crash floor is
// deterministic at every seed — and so the fixed-plus-rate-on-one-node
// composition chaos.Plan.Validate now vouches for is exercised daily.
func crashHeavyDiurnalMonth() Recipe {
	return Recipe{
		Name:        "crash-heavy-diurnal-month",
		Description: "sustained node-crash rate with stragglers and injected job failures over the diurnal trace",
		Conditions: []Condition{
			cond(CheckCompletionFloor, 0.9),
			cond(CheckNodeCrashesFloor, 1),
			cond(CheckTerminalFailureRatioCeiling, 0.05),
			cond(CheckQueueP99RatioCeiling, 0.12),
			cond(CheckFaultCountersSane, 1),
			cond(CheckInvariantsClean, 1),
		},
		build: func(seed int64, sc Scale) (sim.RunSpec, error) {
			h := sc.Duration()
			plan := chaos.Plan{
				Horizon:           h,
				NodeCrashesPerDay: 6,
				CrashDowntime:     45 * time.Minute,
				StragglersPerDay:  2,
				StragglerFactor:   0.5,
				StragglerDuration: time.Hour,
				JobFailureProb:    0.02,
				Faults: []chaos.Fault{
					{At: 3 * h / 10, Kind: chaos.KindNodeCrash, Node: 0},
					{At: 3*h/10 + 45*time.Minute, Kind: chaos.KindNodeRecover, Node: 0},
				},
			}
			return buildSpec("crash-heavy-diurnal-month", seed, sc, plan)
		},
	}
}

// controllerKillStorm kills the scheduler process at fixed points through
// the run while background crashes and job failures keep the cluster
// churning. Its resume-equivalence condition is the harness's hardest
// claim: replaying the run through every kill, restarting from the latest
// checkpoint each time, must reproduce the uninterrupted result bit for
// bit (sim.FirstDiff pinpoints the first divergent line otherwise).
func controllerKillStorm() Recipe {
	return Recipe{
		Name:        "controller-kill-storm",
		Description: "fixed mid-run controller kills over background churn; proves kill-and-resume byte-identity",
		Conditions: []Condition{
			cond(CheckControllerKillsFloor, 3),
			cond(CheckResumeEquivalence, 3),
			cond(CheckCompletionFloor, 0.9),
			cond(CheckFaultCountersSane, 1),
			cond(CheckInvariantsClean, 1),
		},
		build: func(seed int64, sc Scale) (sim.RunSpec, error) {
			h := sc.Duration()
			plan := chaos.Plan{
				Horizon:           h,
				NodeCrashesPerDay: 2,
				CrashDowntime:     30 * time.Minute,
				JobFailureProb:    0.01,
				Faults: []chaos.Fault{
					{At: h / 4, Kind: chaos.KindControllerKill},
					{At: h / 2, Kind: chaos.KindControllerKill},
					{At: 3 * h / 4, Kind: chaos.KindControllerKill},
				},
			}
			return buildSpec("controller-kill-storm", seed, sc, plan)
		},
	}
}

// drainHalfClusterMidmonth drains the lower half of the cluster for the
// middle third of the run — planned maintenance at the worst possible
// time — with a light crash rate underneath. The verdict asserts the
// scheduler absorbs the capacity loss without losing jobs, at the price of
// a wider queueing ceiling.
func drainHalfClusterMidmonth() Recipe {
	return Recipe{
		Name:        "drain-half-cluster-midmonth",
		Description: "drains half the nodes for the middle third of the run under a light crash rate",
		Conditions: []Condition{
			cond(CheckCompletionFloor, 0.9),
			cond(CheckQueueP99RatioCeiling, 0.35),
			cond(CheckTerminalFailureRatioCeiling, 0.05),
			cond(CheckFaultCountersSane, 1),
			cond(CheckInvariantsClean, 1),
		},
		build: func(seed int64, sc Scale) (sim.RunSpec, error) {
			h := sc.Duration()
			plan := chaos.Plan{
				Horizon:           h,
				NodeCrashesPerDay: 1,
				CrashDowntime:     30 * time.Minute,
			}
			for n := 0; n < sc.Nodes/2; n++ {
				plan.Faults = append(plan.Faults,
					chaos.Fault{At: 2 * h / 5, Kind: chaos.KindNodeDrain, Node: n},
					chaos.Fault{At: 7 * h / 10, Kind: chaos.KindNodeUndrain, Node: n})
			}
			return buildSpec("drain-half-cluster-midmonth", seed, sc, plan)
		},
	}
}

// telemetryDarkWeek blinds the memory-bandwidth telemetry of the whole
// cluster for just under a quarter of the run (a week of the month), plus
// a rate of shorter per-node dropouts. The eliminator must hold its last
// decisions rather than flail, and the degraded-samples floor proves the
// dark window actually happened.
func telemetryDarkWeek() Recipe {
	return Recipe{
		Name:        "telemetry-dark-week",
		Description: "cluster-wide bandwidth-telemetry blackout for ~23% of the run plus rate-based dropouts",
		Conditions: []Condition{
			cond(CheckDegradedSamplesFloor, 1),
			cond(CheckCompletionFloor, 0.93),
			cond(CheckQueueP99RatioCeiling, 0.08),
			cond(CheckFaultCountersSane, 1),
			cond(CheckInvariantsClean, 1),
		},
		build: func(seed int64, sc Scale) (sim.RunSpec, error) {
			h := sc.Duration()
			start := 2 * h / 5
			end := start + 23*h/100
			plan := chaos.Plan{
				Horizon:           h,
				MembwDropsPerDay:  4,
				MembwDropDuration: 10 * time.Minute,
			}
			for n := 0; n < sc.Nodes; n++ {
				plan.Faults = append(plan.Faults,
					chaos.Fault{At: start, Kind: chaos.KindMembwDark, Node: n},
					chaos.Fault{At: end, Kind: chaos.KindMembwRestore, Node: n})
			}
			return buildSpec("telemetry-dark-week", seed, sc, plan)
		},
	}
}

// serveKillStorm is the control-plane analog of controllerKillStorm: fixed
// serve-process kills punctuate the run while light node churn and job
// failures keep the cluster moving. The in-sim ServeKill faults only count
// (the engine never dies); the serve-kill-equivalence condition runs the
// actual drill — the same request stream served through real process kills
// recovered from the write-ahead log must match the uninterrupted serve
// byte for byte.
func serveKillStorm() Recipe {
	return Recipe{
		Name:        "serve-kill-storm",
		Description: "fixed serve-process kills over light churn; proves WAL kill-and-recover byte-identity",
		Conditions: []Condition{
			cond(CheckServeKillEquivalence, 3),
			cond(CheckCompletionFloor, 0.9),
			cond(CheckFaultCountersSane, 1),
			cond(CheckInvariantsClean, 1),
		},
		build: func(seed int64, sc Scale) (sim.RunSpec, error) {
			h := sc.Duration()
			plan := chaos.Plan{
				Horizon:           h,
				NodeCrashesPerDay: 2,
				CrashDowntime:     30 * time.Minute,
				JobFailureProb:    0.01,
				Faults: []chaos.Fault{
					{At: h / 4, Kind: chaos.KindServeKill},
					{At: h / 2, Kind: chaos.KindServeKill},
					{At: 3 * h / 4, Kind: chaos.KindServeKill},
				},
			}
			return buildSpec("serve-kill-storm", seed, sc, plan)
		},
	}
}

// stragglerCascade rolls overlapping slowdown windows across a band of
// nodes through the middle half of the run — each window opens before the
// previous one closes — on top of a high background straggler rate. The
// fixed windows make the straggler floor deterministic.
func stragglerCascade() Recipe {
	return Recipe{
		Name:        "straggler-cascade",
		Description: "rolling overlapped slowdown windows across a node band plus a high background straggler rate",
		Conditions: []Condition{
			cond(CheckStragglersFloor, 4),
			cond(CheckCompletionFloor, 0.9),
			cond(CheckQueueP99RatioCeiling, 0.25),
			cond(CheckFaultCountersSane, 1),
			cond(CheckInvariantsClean, 1),
		},
		build: func(seed int64, sc Scale) (sim.RunSpec, error) {
			h := sc.Duration()
			band := sc.Nodes / 2
			if band > 8 {
				band = 8
			}
			if band < 1 {
				band = 1
			}
			plan := chaos.Plan{
				Horizon:           h,
				StragglersPerDay:  8,
				StragglerFactor:   0.5,
				StragglerDuration: time.Hour,
			}
			// Window i opens at 1/4 + i/(2*band) of the run and stays open
			// for h/4, so window i+1 starts while window i is still active.
			for i := 0; i < band; i++ {
				at := h/4 + time.Duration(i)*h/time.Duration(2*band)
				plan.Faults = append(plan.Faults,
					chaos.Fault{At: at, Kind: chaos.KindStragglerStart, Node: i, Factor: 0.45},
					chaos.Fault{At: at + h/4, Kind: chaos.KindStragglerEnd, Node: i, Factor: 0.45})
			}
			return buildSpec("straggler-cascade", seed, sc, plan)
		},
	}
}
