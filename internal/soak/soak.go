// Package soak turns the repository's chaos machinery into named,
// repeatable month-scale scenarios with machine-checked verdicts. A Recipe
// is a description of a hostile world — a composed chaos.Plan plus the
// trace and cluster shape it runs against — and a list of declarative
// Conditions evaluated against the sim.Result: goodput floors, queueing-
// time ceilings, fault-counter sanity, invariants-clean, and a resume-
// equivalence spot check that replays the run through mid-run controller
// kills and proves byte-identity via sim.FirstDiff. RunMatrix fans the
// recipe × seed grid through internal/runner and reports verdicts in
// matrix order, so the same grid always produces the same report bytes.
//
// The package is deliberately below cmd in the layer spec and free of
// os/sync/wall-clock use: everything host-facing (flags, JSON encoding to
// stdout, exit codes) lives in cmd/coda-soak.
package soak

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"github.com/coda-repro/coda/internal/sim"
)

// Scale sizes a recipe: how long the simulated month-analog lasts and how
// big the cluster and trace are. Recipes express their fault schedules as
// fractions of the scale's duration, so one recipe definition works at
// every scale.
type Scale struct {
	// Name is the preset name ("tiny", "small", "full", "warehouse").
	Name string `json:"name"`
	// Days is the trace duration in simulated days.
	Days float64 `json:"days"`
	// CPUJobs and GPUJobs size the generated trace.
	CPUJobs int `json:"cpuJobs"`
	GPUJobs int `json:"gpuJobs"`
	// Nodes is the GPU-node count of the simulated cluster.
	Nodes int `json:"nodes"`
}

// The scale presets. Tiny is sized for CI under -race: half a simulated
// day on a 24-node cluster — 120 GPUs against ~675 expected GPU-hours of
// demand, enough headroom that verdicts measure the scheduler, not the
// luck of one 100-job sample path (a heavy draw can reach ~800 GPU-hours
// with a 100-GPU instantaneous peak). Full is the paper-shaped month on
// the 80-node cluster, matching trace.DefaultConfig.
func TinyScale() Scale  { return Scale{Name: "tiny", Days: 0.5, CPUJobs: 300, GPUJobs: 100, Nodes: 24} }
func SmallScale() Scale { return Scale{Name: "small", Days: 3, CPUJobs: 7500, GPUJobs: 2500, Nodes: 80} }
func FullScale() Scale  { return Scale{Name: "full", Days: 30, CPUJobs: 75000, GPUJobs: 25000, Nodes: 80} }

// WarehouseScale is the streaming-intake stress shape: a 5,000-node
// warehouse serving a million jobs in a simulated week. Only viable since
// specs stream their traces — materializing a warehouse trace up front is
// exactly the O(jobs) intake memory the streaming refactor removed. The
// full 25M-job month (Days: 30, CPUJobs: 18_750_000, GPUJobs: 6_250_000)
// uses the same preset shape; see DESIGN.md "Scale architecture".
func WarehouseScale() Scale {
	return Scale{Name: "warehouse", Days: 7, CPUJobs: 750_000, GPUJobs: 250_000, Nodes: 5000}
}

// ParseScale resolves a preset name.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "tiny":
		return TinyScale(), nil
	case "small":
		return SmallScale(), nil
	case "full":
		return FullScale(), nil
	case "warehouse":
		return WarehouseScale(), nil
	}
	return Scale{}, fmt.Errorf("soak: unknown scale %q (want tiny, small, full or warehouse)", name)
}

// Validate rejects degenerate scales before any trace generation happens.
func (sc Scale) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("soak: scale has no name")
	}
	if math.IsNaN(sc.Days) || math.IsInf(sc.Days, 0) || sc.Days <= 0 {
		return fmt.Errorf("soak: scale %q duration %g days must be finite and positive", sc.Name, sc.Days)
	}
	if sc.CPUJobs < 0 || sc.GPUJobs < 0 {
		return fmt.Errorf("soak: scale %q has negative job counts (%d cpu, %d gpu)", sc.Name, sc.CPUJobs, sc.GPUJobs)
	}
	if sc.CPUJobs+sc.GPUJobs == 0 {
		return fmt.Errorf("soak: scale %q generates no jobs", sc.Name)
	}
	if sc.Nodes <= 0 {
		return fmt.Errorf("soak: scale %q node count %d must be positive", sc.Name, sc.Nodes)
	}
	return nil
}

// Duration converts the scale's day count to simulated time.
func (sc Scale) Duration() time.Duration {
	return time.Duration(sc.Days * float64(24*time.Hour))
}

// CheckKind names one verdict check. Every check reduces the run to a
// single float64 measurement and compares it against the condition's
// threshold: floor checks pass when measured >= threshold, ceiling checks
// when measured <= threshold. Boolean checks (sanity, invariants) measure
// 1 for healthy and 0 otherwise, so "check=1" demands health.
type CheckKind string

const (
	// CheckCompletionFloor measures the fraction of generated jobs that
	// completed (terminally failed and never-finished jobs both count
	// against it).
	CheckCompletionFloor CheckKind = "completion-floor"
	// CheckQueueP99Ceiling measures the p99 GPU queueing time in seconds.
	// Absolute ceilings only make sense at one known scale; recipes use the
	// ratio form below so one threshold holds from tiny to full.
	CheckQueueP99Ceiling CheckKind = "queue-p99-ceiling"
	// CheckQueueP99RatioCeiling measures the p99 GPU queueing time as a
	// fraction of the trace window (LastArrival): 0.1 means the slowest
	// percentile waited a tenth of the run. Scale-invariant by
	// construction, so recipes can pin one threshold for every preset.
	CheckQueueP99RatioCeiling CheckKind = "queue-p99-ratio-ceiling"
	// CheckTerminalFailureRatioCeiling measures terminally-failed jobs as a
	// fraction of all generated jobs.
	CheckTerminalFailureRatioCeiling CheckKind = "terminal-failure-ratio-ceiling"
	// CheckFaultCountersSane measures 1 when the run's fault counters pass
	// metrics.FaultCounters.Sane, 0 otherwise.
	CheckFaultCountersSane CheckKind = "fault-counters-sane"
	// CheckInvariantsClean measures 1 when the run executed with the
	// always-on invariant checker enabled (a violation would have failed
	// the run outright), 0 when invariants were off.
	CheckInvariantsClean CheckKind = "invariants-clean"
	// CheckNodeCrashesFloor measures the injected node-crash count — a
	// chaos recipe that injected nothing proves nothing.
	CheckNodeCrashesFloor CheckKind = "node-crashes-floor"
	// CheckStragglersFloor measures the injected straggler-window count.
	CheckStragglersFloor CheckKind = "stragglers-floor"
	// CheckDegradedSamplesFloor measures samples taken while bandwidth
	// telemetry was dark — the eliminator's degraded-mode exposure.
	CheckDegradedSamplesFloor CheckKind = "degraded-samples-floor"
	// CheckControllerKillsFloor measures injected controller kills.
	CheckControllerKillsFloor CheckKind = "controller-kills-floor"
	// CheckResumeEquivalence replays the whole run with ExitOnControllerKill
	// set, restarting from the latest checkpoint after each kill, and
	// measures the number of controller deaths survived. It fails unless
	// the replayed result is byte-identical to the uninterrupted run
	// (proven via sim.FirstDiff) AND at least threshold kills were
	// survived, so a kill-free run cannot vacuously pass.
	CheckResumeEquivalence CheckKind = "resume-equivalence"
	// CheckServeKillEquivalence runs the control-plane kill-and-recover
	// drill (ctl.RunKillDrill) over the cell's spec: the same scripted
	// request stream is served once uninterrupted and once through seeded
	// process kills recovered from checkpoint + WAL suffix replay. It
	// measures the number of kills survived and fails unless the two final
	// dumps are byte-identical AND at least threshold kills happened.
	CheckServeKillEquivalence CheckKind = "serve-kill-equivalence"
)

// checkInfo is the per-check metadata: direction and threshold domain.
type checkInfo struct {
	kind    CheckKind
	ceiling bool // pass when measured <= threshold; otherwise >= threshold
	ratio   bool // threshold must lie in [0, 1]
}

// checkTable fixes the canonical check order (used by listings); lookups
// go through checkByName.
var checkTable = []checkInfo{
	{kind: CheckCompletionFloor, ratio: true},
	{kind: CheckQueueP99Ceiling, ceiling: true},
	{kind: CheckQueueP99RatioCeiling, ceiling: true},
	{kind: CheckTerminalFailureRatioCeiling, ceiling: true, ratio: true},
	{kind: CheckFaultCountersSane},
	{kind: CheckInvariantsClean},
	{kind: CheckNodeCrashesFloor},
	{kind: CheckStragglersFloor},
	{kind: CheckDegradedSamplesFloor},
	{kind: CheckControllerKillsFloor},
	{kind: CheckResumeEquivalence},
	{kind: CheckServeKillEquivalence},
}

var checkByName = func() map[CheckKind]checkInfo {
	m := make(map[CheckKind]checkInfo, len(checkTable))
	for _, ci := range checkTable {
		m[ci.kind] = ci
	}
	return m
}()

// CheckKinds lists every known check in canonical order.
func CheckKinds() []CheckKind {
	out := make([]CheckKind, len(checkTable))
	for i, ci := range checkTable {
		out[i] = ci.kind
	}
	return out
}

// Condition is one declarative pass/fail criterion: a check plus its
// threshold. Conditions serialize as "check=threshold" (the CLI's
// -conditions syntax) and round-trip through ParseCondition.
type Condition struct {
	Check     CheckKind `json:"check"`
	Threshold float64   `json:"threshold"`
}

// String renders the condition in ParseCondition syntax.
func (c Condition) String() string {
	return string(c.Check) + "=" + strconv.FormatFloat(c.Threshold, 'g', -1, 64)
}

// Validate rejects unknown checks and out-of-domain thresholds. NaN and
// infinite thresholds are always rejected: a NaN floor silently passes
// nothing and a NaN ceiling everything, which is exactly the kind of
// self-disarming config a soak wall must refuse to load.
func (c Condition) Validate() error {
	ci, ok := checkByName[c.Check]
	if !ok {
		return fmt.Errorf("soak: unknown check %q (known: %s)", c.Check, knownChecks())
	}
	if math.IsNaN(c.Threshold) || math.IsInf(c.Threshold, 0) {
		return fmt.Errorf("soak: condition %s: threshold must be finite, got %g", c.Check, c.Threshold)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("soak: condition %s: threshold must be non-negative, got %g", c.Check, c.Threshold)
	}
	if ci.ratio && c.Threshold > 1 {
		return fmt.Errorf("soak: condition %s: threshold is a ratio in [0,1], got %g", c.Check, c.Threshold)
	}
	return nil
}

// knownChecks renders the known check names for error messages.
func knownChecks() string {
	names := make([]string, len(checkTable))
	for i, ci := range checkTable {
		names[i] = string(ci.kind)
	}
	return strings.Join(names, ", ")
}

// ParseCondition parses "check=threshold" into a validated Condition.
func ParseCondition(s string) (Condition, error) {
	name, val, ok := strings.Cut(s, "=")
	name, val = strings.TrimSpace(name), strings.TrimSpace(val)
	if !ok || name == "" || val == "" {
		return Condition{}, fmt.Errorf("soak: condition %q is not of the form check=threshold", s)
	}
	th, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return Condition{}, fmt.Errorf("soak: condition %q: bad threshold: %v", s, err)
	}
	c := Condition{Check: CheckKind(name), Threshold: th}
	if err := c.Validate(); err != nil {
		return Condition{}, err
	}
	return c, nil
}

// Recipe is one named soak scenario: a builder from (seed, scale) to a
// complete sim.RunSpec with its composed chaos plan, plus the conditions
// its result must satisfy. Recipes are values; the registry in recipes.go
// is the single source of truth for what exists.
type Recipe struct {
	// Name identifies the recipe on the CLI and in reports.
	Name string
	// Description is the one-line story of what the recipe stresses.
	Description string
	// Conditions are the verdict criteria, evaluated in order.
	Conditions []Condition
	// build composes the run spec. It must derive every random stream
	// (trace, measurement noise, fault schedule) from the seed alone.
	build func(seed int64, sc Scale) (sim.RunSpec, error)
}

// Build composes the recipe's run spec for one (seed, scale) cell.
func (r Recipe) Build(seed int64, sc Scale) (sim.RunSpec, error) {
	if r.build == nil {
		return sim.RunSpec{}, fmt.Errorf("soak: recipe %q has no builder", r.Name)
	}
	if err := sc.Validate(); err != nil {
		return sim.RunSpec{}, err
	}
	return r.build(seed, sc)
}

// Validate checks the recipe definition itself.
func (r Recipe) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("soak: recipe has no name")
	}
	if r.Description == "" {
		return fmt.Errorf("soak: recipe %q has no description", r.Name)
	}
	if r.build == nil {
		return fmt.Errorf("soak: recipe %q has no builder", r.Name)
	}
	if len(r.Conditions) == 0 {
		return fmt.Errorf("soak: recipe %q has no conditions; a soak without a verdict is a warmer", r.Name)
	}
	for _, c := range r.Conditions {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("soak: recipe %q: %w", r.Name, err)
		}
	}
	return nil
}

// Names lists the registry's recipe names in canonical (matrix) order.
func Names() []string {
	rs := Recipes()
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name
	}
	return names
}

// Lookup resolves a recipe by name.
func Lookup(name string) (Recipe, error) {
	for _, r := range Recipes() {
		if r.Name == name {
			return r, nil
		}
	}
	return Recipe{}, fmt.Errorf("soak: unknown recipe %q (known: %s)", name, strings.Join(Names(), ", "))
}
