package soak

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/coda-repro/coda/internal/runner"
	"github.com/coda-repro/coda/internal/sim"
)

// MatrixSpec describes one recipe × seed grid.
type MatrixSpec struct {
	// Recipes are the scenarios to run, in matrix (row) order.
	Recipes []Recipe
	// Seeds are the per-recipe seeds, in column order.
	Seeds []int64
	// Scale sizes every cell.
	Scale Scale
	// Parallel is the runner worker-pool width (0 = GOMAXPROCS).
	Parallel int
	// ExtraConditions are appended to every recipe's condition list —
	// the CLI's -conditions override.
	ExtraConditions []Condition
}

// Validate rejects malformed grids before anything runs.
func (ms MatrixSpec) Validate() error {
	if len(ms.Recipes) == 0 {
		return fmt.Errorf("soak: matrix has no recipes")
	}
	if len(ms.Seeds) == 0 {
		return fmt.Errorf("soak: matrix has no seeds")
	}
	if err := ms.Scale.Validate(); err != nil {
		return err
	}
	seen := make(map[string]bool, len(ms.Recipes))
	for _, r := range ms.Recipes {
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.Name] {
			return fmt.Errorf("soak: recipe %q appears twice in the matrix", r.Name)
		}
		seen[r.Name] = true
	}
	for _, c := range ms.ExtraConditions {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CellVerdict is one (recipe, seed) cell's verdict in the report.
type CellVerdict struct {
	// Recipe and Seed identify the cell; Name is the run-spec name
	// ("<recipe>/seed=<seed>").
	Recipe string `json:"recipe"`
	Seed   int64  `json:"seed"`
	Name   string `json:"name"`
	// Pass is the conjunction of every condition verdict; a cell whose run
	// errored fails with Error set.
	Pass  bool   `json:"pass"`
	Error string `json:"error,omitempty"`
	// Jobs, GPUJobsDone and CPUJobsDone summarize throughput; MakespanNs
	// is the simulated end time in nanoseconds (an integer, so the report
	// bytes stay platform-stable).
	Jobs        int   `json:"jobs"`
	GPUJobsDone int   `json:"gpuJobsDone"`
	CPUJobsDone int   `json:"cpuJobsDone"`
	MakespanNs  int64 `json:"makespanNs"`
	// Faults restates the run's fault counters.
	Faults FaultSummary `json:"faults"`
	// Conditions are the per-condition verdicts, in recipe order (extra
	// matrix-level conditions follow the recipe's own).
	Conditions []Verdict `json:"conditions"`
}

// FaultSummary is the report-facing projection of metrics.FaultCounters,
// with explicit JSON names so the report schema is independent of the
// metrics struct's field order.
type FaultSummary struct {
	NodeCrashes      int   `json:"nodeCrashes"`
	NodeRecoveries   int   `json:"nodeRecoveries"`
	MembwDropouts    int   `json:"membwDropouts"`
	Stragglers       int   `json:"stragglers"`
	JobKills         int   `json:"jobKills"`
	JobFailures      int   `json:"jobFailures"`
	Requeues         int   `json:"requeues"`
	TerminalFailures int   `json:"terminalFailures"`
	DegradedSamples  int   `json:"degradedSamples"`
	ControllerKills  int   `json:"controllerKills"`
	GoodputLostNs    int64 `json:"goodputLostNs"`
}

// Report is the full matrix verdict, shaped for stable JSON encoding: the
// field order is fixed by the struct, map-free, and every number is either
// an integer or a float produced by deterministic arithmetic, so the same
// grid at the same scale always serializes to the same bytes.
type Report struct {
	// Scale and Seeds restate the grid.
	Scale Scale   `json:"scale"`
	Seeds []int64 `json:"seeds"`
	// Recipes are the row names in matrix order.
	Recipes []string `json:"recipes"`
	// Pass is the conjunction of every cell verdict; Failed counts the
	// failing cells.
	Pass   bool `json:"pass"`
	Failed int  `json:"failed"`
	// Cells are the per-cell verdicts, recipe-major, seed-minor.
	Cells []CellVerdict `json:"cells"`
}

// Encode renders the report as indented JSON with a trailing newline —
// the byte format the golden test pins and CI artifacts diff.
func (r *Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("soak: encode report: %w", err)
	}
	return append(data, '\n'), nil
}

// RunMatrix builds every (recipe, seed) cell, executes the grid through
// the runner's worker pool without failing fast, and evaluates each
// recipe's conditions against its cells in matrix order. The error return
// is reserved for grid-level problems (validation, a recipe that fails to
// build); per-cell run failures become failing cells in the report.
func RunMatrix(ctx context.Context, ms MatrixSpec) (*Report, error) {
	if err := ms.Validate(); err != nil {
		return nil, err
	}

	// Build every cell up front, keeping the pristine spec: the runner
	// executes a clone, so the kept copy stays unmutated for condition
	// evaluation (resume-equivalence replays it from scratch).
	type cell struct {
		recipe Recipe
		seed   int64
		spec   sim.RunSpec
	}
	cells := make([]cell, 0, len(ms.Recipes)*len(ms.Seeds))
	var m runner.Matrix
	for _, r := range ms.Recipes {
		for _, seed := range ms.Seeds {
			sp, err := r.Build(seed, ms.Scale)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{recipe: r, seed: seed, spec: sp})
			m.Add(sp)
		}
	}

	results, errs := runner.RunAll(ctx, &m, runner.Options{Parallel: ms.Parallel})

	rep := &Report{
		Scale:   ms.Scale,
		Seeds:   append([]int64(nil), ms.Seeds...),
		Recipes: make([]string, len(ms.Recipes)),
		Pass:    true,
	}
	for i, r := range ms.Recipes {
		rep.Recipes[i] = r.Name
	}
	for i, c := range cells {
		cv := CellVerdict{
			Recipe: c.recipe.Name,
			Seed:   c.seed,
			Name:   c.spec.Name,
			Jobs:   c.spec.JobCount(),
		}
		outcome := &Outcome{Spec: c.spec, Result: results[i], Err: errs[i]}
		if errs[i] != nil {
			cv.Error = errs[i].Error()
		}
		conds := append(append([]Condition(nil), c.recipe.Conditions...), ms.ExtraConditions...)
		cv.Conditions = EvalAll(conds, outcome)
		cv.Pass = errs[i] == nil
		for _, v := range cv.Conditions {
			if !v.Pass {
				cv.Pass = false
			}
		}
		if res := results[i]; res != nil {
			sm := res.Summarize()
			cv.GPUJobsDone = sm.GPUJobsDone
			cv.CPUJobsDone = sm.CPUJobsDone
			cv.MakespanNs = int64(res.EndTime)
			cv.Faults = FaultSummary{
				NodeCrashes:      res.Faults.NodeCrashes,
				NodeRecoveries:   res.Faults.NodeRecoveries,
				MembwDropouts:    res.Faults.MembwDropouts,
				Stragglers:       res.Faults.Stragglers,
				JobKills:         res.Faults.JobKills,
				JobFailures:      res.Faults.JobFailures,
				Requeues:         res.Faults.Requeues,
				TerminalFailures: res.Faults.TerminalFailures,
				DegradedSamples:  res.Faults.DegradedSamples,
				ControllerKills:  res.Faults.ControllerKills,
				GoodputLostNs:    int64(res.Faults.GoodputLost),
			}
		}
		if !cv.Pass {
			rep.Failed++
			rep.Pass = false
		}
		rep.Cells = append(rep.Cells, cv)
	}
	return rep, nil
}

// Grid is a convenience for the CLI: resolve recipe names (empty means
// the whole registry), build the MatrixSpec, and run it.
func Grid(ctx context.Context, names []string, seeds []int64, sc Scale, parallel int, extra []Condition) (*Report, error) {
	var recipes []Recipe
	if len(names) == 0 {
		recipes = Recipes()
	} else {
		for _, name := range names {
			r, err := Lookup(name)
			if err != nil {
				return nil, err
			}
			recipes = append(recipes, r)
		}
	}
	return RunMatrix(ctx, MatrixSpec{
		Recipes:         recipes,
		Seeds:           seeds,
		Scale:           sc,
		Parallel:        parallel,
		ExtraConditions: extra,
	})
}
