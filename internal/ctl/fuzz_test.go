package ctl

import (
	"bytes"
	"testing"
)

// FuzzParseRequest hammers the shared HTTP/WAL request parser. It must
// never panic, and anything it accepts must re-encode to a payload it
// accepts again, identically — the WAL replay path depends on that
// fixed point.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte(`{"op":"submit","job":{"kind":"cpu","tenant":1,"cpuCores":4,"workSeconds":60}}`))
	f.Add([]byte(`{"op":"cancel","jobId":7}`))
	f.Add([]byte(`{"op":"node-drain","node":2}`))
	f.Add([]byte(`{"op":"node-join","node":0}`))
	f.Add([]byte(`{"op":"cancel","jobId":1,"bogus":true}`))
	f.Add([]byte(`{"op":"cancel","jobId":1}{"op":"cancel","jobId":2}`))
	f.Add([]byte(`{"op":"explode"}`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add(bytes.Repeat([]byte(`9`), 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		payload, err := req.Encode()
		if err != nil {
			t.Fatalf("accepted request %+v does not encode: %v", req, err)
		}
		again, err := ParseRequest(payload)
		if err != nil {
			t.Fatalf("re-encoded payload %s rejected: %v", payload, err)
		}
		second, err := again.Encode()
		if err != nil {
			t.Fatalf("second encode: %v", err)
		}
		if !bytes.Equal(payload, second) {
			t.Fatalf("encode is not a fixed point: %s vs %s", payload, second)
		}
	})
}
