package ctl

import (
	"errors"
	"fmt"
	"time"

	"github.com/coda-repro/coda/internal/chaos"
	"github.com/coda-repro/coda/internal/checkpoint"
	"github.com/coda-repro/coda/internal/cluster"
	"github.com/coda-repro/coda/internal/ctl/wal"
	"github.com/coda-repro/coda/internal/job"
	"github.com/coda-repro/coda/internal/metrics"
	"github.com/coda-repro/coda/internal/sched"
	"github.com/coda-repro/coda/internal/sim"
)

// Config assembles a Machine: the engine options, the durable stores, and a
// scheduler factory (Resume needs a fresh instance to restore into, so a
// factory rather than an instance).
type Config struct {
	// Options configures the wrapped simulator. Service is forced on.
	Options sim.Options
	// NewScheduler builds a fresh scheduler of the serving policy. It must
	// construct identically every call — scheduler state is restored from
	// checkpoints, never carried over.
	NewScheduler func() (sched.Scheduler, error)
	// Jobs optionally preloads a trace (arrivals at their recorded times).
	Jobs []*job.Job
	// Log is the write-ahead request log.
	Log wal.Log
	// Store persists machine checkpoints.
	Store wal.CheckpointStore
	// CheckpointEvery takes a machine checkpoint each time this many WAL
	// records have been applied; 0 disables checkpointing.
	CheckpointEvery int
}

func (c *Config) validate() error {
	if c.NewScheduler == nil {
		return errors.New("ctl: config needs a scheduler factory")
	}
	if c.Log == nil {
		return errors.New("ctl: config needs a WAL")
	}
	if c.Store == nil {
		return errors.New("ctl: config needs a checkpoint store")
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("ctl: negative checkpoint cadence %d", c.CheckpointEvery)
	}
	return nil
}

// Machine is the single-threaded deterministic core of the control plane:
// WAL records in, state transitions out. It owns the service-mode simulator
// and is the only code that mutates it. Machine itself is not safe for
// concurrent use — the Server serializes access.
type Machine struct {
	cfg       Config
	sim       *sim.Simulator
	applied   uint64
	nextJobID int64
	counters  metrics.FaultCounters
}

// NewMachine builds a fresh machine (empty WAL position). The engine is
// advanced through its bootstrap events so the first checkpoint, whenever
// it comes, already contains them.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	scheduler, err := cfg.NewScheduler()
	if err != nil {
		return nil, fmt.Errorf("ctl: build scheduler: %w", err)
	}
	opts := cfg.Options
	opts.Service = true
	s, err := sim.New(opts, scheduler, cfg.Jobs)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, sim: s}
	for _, j := range cfg.Jobs {
		if int64(j.ID) > m.nextJobID {
			m.nextJobID = int64(j.ID)
		}
	}
	if err := s.RunUntil(0); err != nil {
		return nil, err
	}
	return m, nil
}

// Now returns the machine's virtual time.
func (m *Machine) Now() time.Duration { return m.sim.Now() }

// Applied returns how many WAL records the machine has applied.
func (m *Machine) Applied() uint64 { return m.applied }

// Counters returns the serve-side fault counters (WAL syncs, accepted and
// replayed records, recoveries), merged with the engine's own.
func (m *Machine) Counters() metrics.FaultCounters {
	c := m.counters
	// The engine counters live in the (not yet finalized) results; Stats
	// exposes the service-relevant subset, and the merged view is what
	// /metrics reports and Sane() cross-checks.
	return c
}

// Stats snapshots the engine's lifecycle counters.
func (m *Machine) Stats() sim.ServiceStats { return m.sim.Stats() }

// ApplyBatch makes one admission batch durable — a single WAL append, a
// single fsync — and then applies each record in order at virtual time at
// (clamped up to the machine's current time, and recorded in each frame, so
// a replay needs no clock). The returned responses are positional.
func (m *Machine) ApplyBatch(at time.Duration, reqs []Request) ([]Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if at < m.sim.Now() {
		at = m.sim.Now()
	}
	frames := make([][]byte, len(reqs))
	for i := range reqs {
		payload, err := reqs[i].Encode()
		if err != nil {
			return nil, err
		}
		frames[i] = wal.EncodeRecord(m.applied+uint64(i)+1, at, payload)
	}
	if err := m.cfg.Log.Append(frames); err != nil {
		return nil, err
	}
	m.counters.WALFsyncs++
	resps := make([]Response, len(reqs))
	for i := range reqs {
		resp, err := m.applyRecord(reqs[i], at, false)
		if err != nil {
			return nil, err
		}
		resps[i] = resp
	}
	return resps, nil
}

// Apply is ApplyBatch for a single request.
func (m *Machine) Apply(at time.Duration, req Request) (Response, error) {
	resps, err := m.ApplyBatch(at, []Request{req})
	if err != nil {
		return Response{}, err
	}
	return resps[0], nil
}

// applyRecord applies one durable record. Semantic rejections (cancel of an
// unknown job, an impossible node transition) come back in Response.Err and
// are themselves deterministic: the record is in the WAL either way, and a
// replay reproduces the same rejection. An error return means the engine
// itself failed (invariant violation, checkpoint failure) — not replayable,
// fatal.
func (m *Machine) applyRecord(req Request, at time.Duration, replay bool) (Response, error) {
	if err := m.sim.RunUntil(at); err != nil {
		return Response{}, err
	}
	resp := Response{Seq: m.applied + 1}
	switch req.Op {
	case OpSubmit:
		id := job.ID(m.nextJobID + 1)
		j, err := req.Job.ToJob(id)
		if err == nil {
			err = m.sim.InjectArrival(j)
		}
		if err != nil {
			resp.Err = err.Error()
		} else {
			m.nextJobID = int64(id)
			resp.JobID = int64(id)
		}
	case OpCancel:
		if err := m.sim.CancelJob(job.ID(req.JobID)); err != nil {
			resp.Err = err.Error()
		}
	case OpNodeJoin, OpNodeDrain, OpNodeUndrain, OpNodeLeave:
		if err := m.applyNodeOp(req.Op, req.Node); err != nil {
			resp.Err = err.Error()
		}
	default:
		resp.Err = fmt.Sprintf("ctl: unknown op %q", req.Op)
	}
	// Drain everything the operation queued at the current instant (the
	// arrival or fault event) so queries made before the next batch see the
	// operation's effect.
	if err := m.sim.RunUntil(at); err != nil {
		return Response{}, err
	}
	m.applied++
	if replay {
		m.counters.ServeReplayed++
	} else {
		m.counters.ServeAccepted++
	}
	if !replay && m.cfg.CheckpointEvery > 0 && m.applied%uint64(m.cfg.CheckpointEvery) == 0 {
		data, err := m.Checkpoint()
		if err != nil {
			return Response{}, err
		}
		if err := m.cfg.Store.Save(data, m.applied); err != nil {
			return Response{}, err
		}
	}
	return resp, nil
}

// applyNodeOp validates a node lifecycle transition against the node's
// current state and routes it through the engine's fault machinery. The
// validation is what keeps the engine's crash/recovery depth accounting
// (and FaultCounters.Sane) consistent: a join of an up node or a drain of a
// down node is a client error, not a fault.
func (m *Machine) applyNodeOp(op Op, nid int) error {
	n, err := m.sim.Cluster().Node(nid)
	if err != nil {
		return err
	}
	var kind chaos.Kind
	switch op {
	case OpNodeDrain:
		if n.State() != cluster.NodeUp {
			return fmt.Errorf("ctl: node %d is %v, not up: cannot drain", nid, n.State())
		}
		kind = chaos.KindNodeDrain
	case OpNodeUndrain:
		if n.State() != cluster.NodeDraining {
			return fmt.Errorf("ctl: node %d is %v, not draining: cannot undrain", nid, n.State())
		}
		kind = chaos.KindNodeUndrain
	case OpNodeLeave:
		if n.State() == cluster.NodeDown {
			return fmt.Errorf("ctl: node %d is already down: cannot leave", nid)
		}
		kind = chaos.KindNodeCrash
	case OpNodeJoin:
		if n.State() != cluster.NodeDown {
			return fmt.Errorf("ctl: node %d is %v, not down: cannot join", nid, n.State())
		}
		kind = chaos.KindNodeRecover
	default:
		return fmt.Errorf("ctl: %q is not a node op", op)
	}
	return m.sim.InjectFault(chaos.Fault{Kind: kind, Node: nid})
}

// JobStatus is the API view of one job.
type JobStatus struct {
	ID int64 `json:"id"`
	// Phase is one of sim's lifecycle phases; empty for unknown IDs.
	Phase string `json:"phase"`
	// Nodes is the current placement (running jobs only).
	Nodes []int `json:"nodes,omitempty"`
}

// JobStatus reports one job's phase and placement.
func (m *Machine) JobStatus(id int64) JobStatus {
	return JobStatus{
		ID:    id,
		Phase: m.sim.JobPhase(job.ID(id)),
		Nodes: m.sim.JobPlacement(job.ID(id)),
	}
}

// NodeStatus is the API view of one node.
type NodeStatus struct {
	ID        int    `json:"id"`
	State     string `json:"state"`
	UsedCores int    `json:"usedCores"`
	UsedGPUs  int    `json:"usedGpus"`
	Jobs      int    `json:"jobs"`
}

// NodeStatuses reports every node in ID order.
func (m *Machine) NodeStatuses() []NodeStatus {
	c := m.sim.Cluster()
	out := make([]NodeStatus, 0, c.Size())
	for id := 0; id < c.Size(); id++ {
		n, err := c.Node(id)
		if err != nil {
			continue
		}
		out = append(out, NodeStatus{
			ID:        id,
			State:     n.State().String(),
			UsedCores: n.UsedCores(),
			UsedGPUs:  n.UsedGPUs(),
			Jobs:      n.JobCount(),
		})
	}
	return out
}

// AdvanceTo moves virtual time forward, delivering every due engine event
// (ticks, completions, retries). The server calls this once per tick with
// no batch to keep the cluster making progress between requests.
func (m *Machine) AdvanceTo(t time.Duration) error { return m.sim.RunUntil(t) }

// Finish finalizes the wrapped run and returns its results, folding the
// machine's serve-side counters into the result's fault counters so
// Sane() sees one coherent set.
func (m *Machine) Finish() (*sim.Result, error) {
	res, err := m.sim.Finish()
	if err != nil {
		return nil, err
	}
	res.Faults.ServeAccepted += m.counters.ServeAccepted
	res.Faults.ServeShed += m.counters.ServeShed
	res.Faults.ServeReplayed += m.counters.ServeReplayed
	res.Faults.WALFsyncs += m.counters.WALFsyncs
	res.Faults.ServeRecoveries += m.counters.ServeRecoveries
	return res, nil
}

// NoteShed records one request bounced with backpressure before touching
// the WAL.
func (m *Machine) NoteShed() { m.counters.ServeShed++ }

// MachineCheckpoint is the durable machine state: the WAL position, the ID
// allocator, the serve counters, and the full engine checkpoint.
type MachineCheckpoint struct {
	Applied   uint64
	NextJobID int64
	Counters  metrics.FaultCounters
	Sim       *sim.Checkpoint
}

// Checkpoint serializes the machine into a CODACKPT envelope.
func (m *Machine) Checkpoint() ([]byte, error) {
	simCk, err := m.sim.Checkpoint()
	if err != nil {
		return nil, err
	}
	ck := &MachineCheckpoint{
		Applied:   m.applied,
		NextJobID: m.nextJobID,
		Counters:  m.counters,
		Sim:       simCk,
	}
	return checkpoint.Encode(ck)
}

// Resume rebuilds a machine from cfg's durable state: the latest
// checkpoint in cfg.Store (or a fresh machine when the store is empty)
// plus a strict replay of the WAL suffix past it. The WAL must decode
// cleanly and cover at least the checkpoint's position — a log shorter
// than the checkpoint means durability was violated and recovery refuses.
// The second return reports whether any prior state was actually
// recovered (false for a cold start with empty store and WAL).
func Resume(cfg Config) (*Machine, bool, error) {
	if err := cfg.validate(); err != nil {
		return nil, false, err
	}
	image, err := cfg.Log.Bytes()
	if err != nil {
		return nil, false, err
	}
	recs, err := wal.DecodeAll(image)
	if err != nil {
		return nil, false, err
	}
	data, err := cfg.Store.Latest()
	if err != nil {
		return nil, false, err
	}

	var m *Machine
	if data == nil {
		m, err = NewMachine(cfg)
		if err != nil {
			return nil, false, err
		}
	} else {
		var ck MachineCheckpoint
		if err := checkpoint.Decode(data, &ck); err != nil {
			return nil, false, err
		}
		if ck.Sim == nil {
			return nil, false, errors.New("ctl: checkpoint carries no engine state")
		}
		scheduler, err := cfg.NewScheduler()
		if err != nil {
			return nil, false, fmt.Errorf("ctl: build scheduler: %w", err)
		}
		s, err := sim.Resume(ck.Sim, scheduler, nil)
		if err != nil {
			return nil, false, err
		}
		m = &Machine{
			cfg:       cfg,
			sim:       s,
			applied:   ck.Applied,
			nextJobID: ck.NextJobID,
			counters:  ck.Counters,
		}
	}

	if uint64(len(recs)) < m.applied {
		return nil, false, fmt.Errorf("ctl: WAL holds %d records but the checkpoint was taken at %d (log truncated?)",
			len(recs), m.applied)
	}
	recovered := data != nil || len(recs) > 0
	if recovered {
		m.counters.ServeRecoveries++
	}
	for _, rec := range recs[m.applied:] {
		req, err := ParseRequest(rec.Payload)
		if err != nil {
			return nil, false, fmt.Errorf("ctl: WAL record %d: %w", rec.Seq, err)
		}
		if _, err := m.applyRecord(req, rec.At, true); err != nil {
			return nil, false, fmt.Errorf("ctl: replay record %d: %w", rec.Seq, err)
		}
	}
	return m, recovered, nil
}
