// Package ctl is the deterministic control plane wrapping the sealed
// engine: an HTTP/JSON API whose handlers never touch the simulator
// directly. Every mutating request is appended to a crash-consistent
// write-ahead log (internal/ctl/wal) and fsync'd before the client is
// acknowledged, then applied as a batch through the single-threaded Machine
// once per tick — so parallel clients still yield one canonical event
// order, and recovery (latest checkpoint + WAL suffix replay) reproduces
// the served state byte for byte.
package ctl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

// Op enumerates the mutating control-plane operations. Every Op is one WAL
// record; queries never enter the log.
type Op string

const (
	// OpSubmit admits a new job described by Request.Job.
	OpSubmit Op = "submit"
	// OpCancel removes a pending/running/retrying job by ID.
	OpCancel Op = "cancel"
	// OpNodeJoin returns a departed node to service.
	OpNodeJoin Op = "node-join"
	// OpNodeDrain stops new placements on a node, keeping resident jobs.
	OpNodeDrain Op = "node-drain"
	// OpNodeUndrain reopens a draining node for placements.
	OpNodeUndrain Op = "node-undrain"
	// OpNodeLeave removes a node from service, killing resident jobs (they
	// requeue through the ordinary retry path).
	OpNodeLeave Op = "node-leave"
)

// JobSpec is the client-side job description carried by a submit request.
// The server assigns the job ID (sequential in canonical WAL order), so a
// spec is location-independent: the same script replays to the same IDs.
type JobSpec struct {
	// Kind is "cpu", "gpu-training" or "bandwidth-hog".
	Kind string `json:"kind"`
	// Tenant is the owning tenant ID.
	Tenant int `json:"tenant"`
	// Category is "", "none", "cv", "nlp" or "speech" (training jobs).
	Category string `json:"category,omitempty"`
	// Model is the DNN model name (training jobs).
	Model string `json:"model,omitempty"`
	// BatchSize is the training batch size; 0 means the model default.
	BatchSize int `json:"batchSize,omitempty"`
	// CPUCores is the per-node core request.
	CPUCores int `json:"cpuCores"`
	// GPUs is the total GPU request (training jobs).
	GPUs int `json:"gpus,omitempty"`
	// Nodes is the node span; 0 means 1.
	Nodes int `json:"nodes,omitempty"`
	// WorkSeconds is the job's work in seconds-at-full-speed.
	WorkSeconds float64 `json:"workSeconds"`
	// BandwidthGBs is a CPU job's peak memory-bandwidth demand.
	BandwidthGBs float64 `json:"bandwidthGBs,omitempty"`
}

// ToJob materializes the spec as an engine job with the given ID. Full
// validation happens through job.Validate at injection; this only maps the
// enum strings.
func (s *JobSpec) ToJob(id job.ID) (*job.Job, error) {
	var kind job.Kind
	switch s.Kind {
	case "cpu":
		kind = job.KindCPU
	case "gpu-training":
		kind = job.KindGPUTraining
	case "bandwidth-hog":
		kind = job.KindBandwidthHog
	default:
		return nil, fmt.Errorf("ctl: unknown job kind %q", s.Kind)
	}
	var cat job.Category
	switch s.Category {
	case "", "none":
		cat = job.CategoryNone
	case "cv":
		cat = job.CategoryCV
	case "nlp":
		cat = job.CategoryNLP
	case "speech":
		cat = job.CategorySpeech
	default:
		return nil, fmt.Errorf("ctl: unknown job category %q", s.Category)
	}
	nodes := s.Nodes
	if nodes == 0 {
		nodes = 1
	}
	if s.WorkSeconds <= 0 {
		return nil, fmt.Errorf("ctl: workSeconds must be positive, got %g", s.WorkSeconds)
	}
	return &job.Job{
		ID:        id,
		Kind:      kind,
		Tenant:    job.TenantID(s.Tenant),
		Category:  cat,
		Model:     s.Model,
		BatchSize: s.BatchSize,
		Request: job.Request{
			CPUCores: s.CPUCores,
			GPUs:     s.GPUs,
			Nodes:    nodes,
		},
		Work:      time.Duration(s.WorkSeconds * float64(time.Second)),
		Bandwidth: s.BandwidthGBs,
	}, nil
}

// Request is one mutating control-plane operation — the WAL payload and the
// HTTP request body share this encoding.
type Request struct {
	// Op selects the operation.
	Op Op `json:"op"`
	// Job describes the job to submit (OpSubmit only).
	Job *JobSpec `json:"job,omitempty"`
	// JobID targets a cancel (OpCancel only).
	JobID int64 `json:"jobId,omitempty"`
	// Node targets the node operations.
	Node int `json:"node"`
}

// maxRequestBytes bounds a single request body (and WAL payload) so a
// hostile length cannot demand an outsized allocation.
const maxRequestBytes = 1 << 20

// Validate checks the per-op field discipline: stray fields on the wrong op
// are rejected, so a WAL payload says exactly one thing.
func (r *Request) Validate() error {
	switch r.Op {
	case OpSubmit:
		if r.Job == nil {
			return errors.New("ctl: submit request carries no job")
		}
		if r.JobID != 0 || r.Node != 0 {
			return errors.New("ctl: submit request must not set jobId or node")
		}
	case OpCancel:
		if r.JobID <= 0 {
			return fmt.Errorf("ctl: cancel request needs a positive jobId, got %d", r.JobID)
		}
		if r.Job != nil || r.Node != 0 {
			return errors.New("ctl: cancel request must not set job or node")
		}
	case OpNodeJoin, OpNodeDrain, OpNodeUndrain, OpNodeLeave:
		if r.Node < 0 {
			return fmt.Errorf("ctl: %s request needs a non-negative node, got %d", r.Op, r.Node)
		}
		if r.Job != nil || r.JobID != 0 {
			return fmt.Errorf("ctl: %s request must not set job or jobId", r.Op)
		}
	default:
		return fmt.Errorf("ctl: unknown op %q", r.Op)
	}
	return nil
}

// Encode serializes the request as a WAL payload.
func (r *Request) Encode() ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("ctl: encode request: %w", err)
	}
	return data, nil
}

// ParseRequest strictly decodes one request from data: unknown fields,
// trailing values, oversized bodies and per-op field violations are all
// loud errors. The HTTP handlers and the WAL replay path share this parser,
// so nothing the server refused can ever replay differently.
func ParseRequest(data []byte) (Request, error) {
	var req Request
	if len(data) > maxRequestBytes {
		return req, fmt.Errorf("ctl: request of %d bytes exceeds cap %d", len(data), maxRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("ctl: parse request: %w", err)
	}
	if dec.More() {
		return Request{}, errors.New("ctl: trailing data after request")
	}
	if _, err := dec.Token(); err != io.EOF {
		return Request{}, errors.New("ctl: trailing data after request")
	}
	if err := req.Validate(); err != nil {
		return Request{}, err
	}
	return req, nil
}

// Response is the API's answer to one mutating request.
type Response struct {
	// Seq is the request's WAL sequence number: proof of durability and the
	// request's position in the canonical order.
	Seq uint64 `json:"seq"`
	// JobID is the ID assigned to a submitted job.
	JobID int64 `json:"jobId,omitempty"`
	// Err is the deterministic semantic rejection, if any (the request is
	// still in the WAL: a replay reproduces the same rejection).
	Err string `json:"error,omitempty"`
}
