package ctl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ServerConfig tunes the HTTP facade.
type ServerConfig struct {
	// QueueDepth bounds the admission queue; a full queue sheds requests
	// with 429 + Retry-After instead of letting latency grow without bound.
	// 0 means DefaultQueueDepth.
	QueueDepth int
	// RetryAfter is the backoff hint attached to shed requests; 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// MaxWait caps how long a handler waits for its batch to be applied
	// before giving up with 503 (the request may still apply — it is queued
	// and, once ticked, durable). 0 means DefaultMaxWait.
	MaxWait time.Duration
}

// Defaults for ServerConfig zero fields.
const (
	DefaultQueueDepth = 256
	DefaultRetryAfter = time.Second
	DefaultMaxWait    = 5 * time.Second
)

// pending is one queued mutating request awaiting the next tick.
type pending struct {
	req   Request
	reply chan outcome
}

// outcome is what Tick delivers back to a waiting handler.
type outcome struct {
	resp Response
	err  error
}

// Server is the HTTP facade over a Machine. Handlers never touch the
// machine's engine directly: mutating requests go into a bounded queue and
// are drained as one WAL batch by Tick — so parallel clients still yield
// one canonical event order. Server itself starts no goroutines; the
// owning process drives Tick (and tests drive it manually).
type Server struct {
	cfg ServerConfig

	mu      sync.Mutex // guards machine access and stopped/failed below
	machine *Machine
	stopped bool
	failed  error

	queue chan pending
	done  chan struct{} // closed by Stop: wakes waiting handlers

	mux *http.ServeMux
}

// NewServer wraps a machine.
func NewServer(m *Machine, cfg ServerConfig) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultMaxWait
	}
	s := &Server{
		cfg:     cfg,
		machine: m,
		queue:   make(chan pending, cfg.QueueDepth),
		done:    make(chan struct{}),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/nodes/{id}/{action}", s.handleNodeOp)
	s.mux.HandleFunc("GET /v1/nodes", s.handleNodes)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Tick advances the machine to virtual time at and applies everything
// queued since the last tick as one WAL batch (one fsync). It is the only
// path that mutates the machine, and it runs the batch synchronously in
// the caller's goroutine. A machine error (engine invariant violation,
// WAL write failure) poisons the server: every queued and future request
// is answered 503.
func (s *Server) Tick(at time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	var batch []pending
	for {
		select {
		case p := <-s.queue:
			batch = append(batch, p)
			continue
		default:
		}
		break
	}

	if s.failed != nil || s.stopped {
		err := s.failed
		if err == nil {
			err = errors.New("ctl: server stopped")
		}
		for _, p := range batch {
			p.reply <- outcome{err: err}
		}
		return err
	}

	if len(batch) == 0 {
		return s.machine.AdvanceTo(maxDuration(at, s.machine.Now()))
	}
	reqs := make([]Request, len(batch))
	for i, p := range batch {
		reqs[i] = p.req
	}
	resps, err := s.machine.ApplyBatch(at, reqs)
	if err != nil {
		s.failed = err
		for _, p := range batch {
			p.reply <- outcome{err: err}
		}
		return err
	}
	for i, p := range batch {
		p.reply <- outcome{resp: resps[i]}
	}
	return nil
}

// Stop refuses all future mutations (503) and wakes every waiting handler.
// Queries keep working — a draining server can still be inspected.
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	close(s.done)
}

// Machine returns the wrapped machine (the caller must not race Tick).
func (s *Server) Machine() *Machine { return s.machine }

// enqueue queues one mutating request and waits for its tick. Every
// rejection is typed: 429 + Retry-After when the queue is full (the client
// should back off and retry), 503 when the server is stopped or poisoned
// or the wait deadline passes (the outcome is unknown: the request may
// still be applied once queued).
func (s *Server) enqueue(w http.ResponseWriter, r *http.Request, req Request) {
	s.mu.Lock()
	stopped, failed := s.stopped, s.failed
	s.mu.Unlock()
	if failed != nil {
		httpError(w, http.StatusServiceUnavailable, failed.Error())
		return
	}
	if stopped {
		httpError(w, http.StatusServiceUnavailable, "server stopped")
		return
	}

	p := pending{req: req, reply: make(chan outcome, 1)}
	select {
	case s.queue <- p:
	default:
		s.mu.Lock()
		s.machine.NoteShed()
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		httpError(w, http.StatusTooManyRequests, "admission queue full, retry later")
		return
	}

	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	select {
	case out := <-p.reply:
		if out.err != nil {
			httpError(w, http.StatusServiceUnavailable, out.err.Error())
			return
		}
		writeJSON(w, http.StatusOK, out.resp)
	case <-r.Context().Done():
		httpError(w, http.StatusServiceUnavailable, "request abandoned before its tick (outcome unknown)")
	case <-s.done:
		httpError(w, http.StatusServiceUnavailable, "server stopped before the request's tick (outcome unknown)")
	case <-timer.C:
		httpError(w, http.StatusServiceUnavailable, "tick deadline passed (outcome unknown)")
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := parseJobSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	req := Request{Op: OpSubmit, Job: spec}
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.enqueue(w, r, req)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil || id <= 0 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad job id %q", r.PathValue("id")))
		return
	}
	s.enqueue(w, r, Request{Op: OpCancel, JobID: id})
}

func (s *Server) handleNodeOp(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad node id %q", r.PathValue("id")))
		return
	}
	var op Op
	switch action := r.PathValue("action"); action {
	case "drain":
		op = OpNodeDrain
	case "undrain":
		op = OpNodeUndrain
	case "join":
		op = OpNodeJoin
	case "leave":
		op = OpNodeLeave
	default:
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown node action %q", action))
		return
	}
	s.enqueue(w, r, Request{Op: op, Node: id})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil || id <= 0 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad job id %q", r.PathValue("id")))
		return
	}
	s.mu.Lock()
	st := s.machine.JobStatus(id)
	s.mu.Unlock()
	if st.Phase == "" {
		httpError(w, http.StatusNotFound, fmt.Sprintf("job %d is unknown", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	nodes := s.machine.NodeStatuses()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, nodes)
}

// handleMetrics renders the serve counters and engine lifecycle stats in
// the text exposition format scrapers expect: one "name value" per line.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	c := s.machine.Counters()
	st := s.machine.Stats()
	queued := len(s.queue)
	s.mu.Unlock()

	var buf bytes.Buffer
	for _, m := range []struct {
		name  string
		value int64
	}{
		{"coda_serve_accepted_total", int64(c.ServeAccepted)},
		{"coda_serve_shed_total", int64(c.ServeShed)},
		{"coda_serve_replayed_total", int64(c.ServeReplayed)},
		{"coda_serve_wal_fsyncs_total", int64(c.WALFsyncs)},
		{"coda_serve_recoveries_total", int64(c.ServeRecoveries)},
		{"coda_serve_queue_depth", int64(queued)},
		{"coda_virtual_time_seconds", int64(st.Now / time.Second)},
		{"coda_jobs_pending", int64(st.Pending)},
		{"coda_jobs_running", int64(st.Running)},
		{"coda_jobs_retrying", int64(st.Retrying)},
		{"coda_jobs_completed_total", int64(st.Completed)},
		{"coda_jobs_terminal_total", int64(st.Terminal)},
		{"coda_jobs_cancelled_total", int64(st.Cancelled)},
		{"coda_engine_events_total", int64(st.Events)},
	} {
		fmt.Fprintf(&buf, "%s %d\n", m.name, m.value)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	failed := s.failed
	body := struct {
		Status  string        `json:"status"`
		Now     time.Duration `json:"now"`
		Applied uint64        `json:"applied"`
		Queued  int           `json:"queued"`
		Err     string        `json:"error,omitempty"`
	}{
		Status:  "ok",
		Now:     s.machine.Now(),
		Applied: s.machine.Applied(),
		Queued:  len(s.queue),
	}
	s.mu.Unlock()
	code := http.StatusOK
	if failed != nil {
		body.Status = "failed"
		body.Err = failed.Error()
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// parseJobSpec strictly decodes a submit body, mirroring ParseRequest's
// discipline: unknown fields, trailing data and oversized bodies are loud.
func parseJobSpec(body io.Reader) (*JobSpec, error) {
	data, err := io.ReadAll(io.LimitReader(body, maxRequestBytes+1))
	if err != nil {
		return nil, fmt.Errorf("ctl: read body: %w", err)
	}
	if len(data) > maxRequestBytes {
		return nil, fmt.Errorf("ctl: body exceeds cap %d", maxRequestBytes)
	}
	var spec JobSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("ctl: parse job spec: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("ctl: trailing data after job spec")
	}
	return &spec, nil
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Err string `json:"error"`
	}{msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(data, '\n'))
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
