package ctl

import (
	"strings"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/job"
)

func TestParseRequestAccepts(t *testing.T) {
	cases := []struct {
		name string
		body string
		want Op
	}{
		{"submit", `{"op":"submit","job":{"kind":"cpu","tenant":1,"cpuCores":4,"workSeconds":60}}`, OpSubmit},
		{"cancel", `{"op":"cancel","jobId":7}`, OpCancel},
		{"drain", `{"op":"node-drain","node":2}`, OpNodeDrain},
		{"undrain", `{"op":"node-undrain","node":0}`, OpNodeUndrain},
		{"join", `{"op":"node-join","node":1}`, OpNodeJoin},
		{"leave", `{"op":"node-leave","node":3}`, OpNodeLeave},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := ParseRequest([]byte(tc.body))
			if err != nil {
				t.Fatalf("ParseRequest: %v", err)
			}
			if req.Op != tc.want {
				t.Fatalf("op %q, want %q", req.Op, tc.want)
			}
			// Round-trip: what the server accepts must re-encode to a WAL
			// payload that parses back to the same request.
			data, err := req.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			again, err := ParseRequest(data)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if again.Op != req.Op || again.JobID != req.JobID || again.Node != req.Node {
				t.Fatalf("round-trip changed the request: %+v vs %+v", req, again)
			}
		})
	}
}

func TestParseRequestRejects(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		wantSub string
	}{
		{"empty", ``, "parse request"},
		{"not json", `hello`, "parse request"},
		{"unknown field", `{"op":"cancel","jobId":1,"bogus":true}`, "parse request"},
		{"trailing data", `{"op":"cancel","jobId":1}{"op":"cancel","jobId":2}`, "trailing data"},
		{"trailing garbage", `{"op":"cancel","jobId":1}xyz`, "trailing data"},
		{"unknown op", `{"op":"explode"}`, "unknown op"},
		{"submit without job", `{"op":"submit"}`, "carries no job"},
		{"submit with jobId", `{"op":"submit","job":{"kind":"cpu","tenant":1,"cpuCores":1,"workSeconds":1},"jobId":4}`, "must not set"},
		{"cancel without id", `{"op":"cancel"}`, "needs a positive jobId"},
		{"cancel negative id", `{"op":"cancel","jobId":-2}`, "needs a positive jobId"},
		{"cancel with job", `{"op":"cancel","jobId":1,"job":{"kind":"cpu","tenant":1,"cpuCores":1,"workSeconds":1}}`, "must not set"},
		{"node op negative node", `{"op":"node-drain","node":-1}`, "non-negative node"},
		{"node op with jobId", `{"op":"node-leave","node":1,"jobId":5}`, "must not set"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseRequest([]byte(tc.body))
			if err == nil {
				t.Fatalf("ParseRequest accepted %q", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseRequestSizeCap(t *testing.T) {
	huge := `{"op":"cancel","jobId":1,` + strings.Repeat(" ", maxRequestBytes) + `}`
	if _, err := ParseRequest([]byte(huge)); err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("oversized request not capped: %v", err)
	}
}

func TestJobSpecToJob(t *testing.T) {
	spec := JobSpec{
		Kind: "gpu-training", Tenant: 3, Category: "nlp", Model: "transformer",
		CPUCores: 4, GPUs: 2, WorkSeconds: 90,
	}
	j, err := spec.ToJob(5)
	if err != nil {
		t.Fatalf("ToJob: %v", err)
	}
	if j.ID != 5 || j.Kind != job.KindGPUTraining || j.Category != job.CategoryNLP {
		t.Fatalf("mapped job %+v wrong", j)
	}
	if j.Request.Nodes != 1 {
		t.Fatalf("zero Nodes should default to 1, got %d", j.Request.Nodes)
	}
	if j.Work != 90*time.Second {
		t.Fatalf("work %v, want 90s", j.Work)
	}

	for _, bad := range []JobSpec{
		{Kind: "quantum", Tenant: 1, CPUCores: 1, WorkSeconds: 1},
		{Kind: "cpu", Category: "astrology", Tenant: 1, CPUCores: 1, WorkSeconds: 1},
		{Kind: "cpu", Tenant: 1, CPUCores: 1, WorkSeconds: 0},
		{Kind: "cpu", Tenant: 1, CPUCores: 1, WorkSeconds: -3},
	} {
		if _, err := bad.ToJob(1); err == nil {
			t.Errorf("ToJob(%+v) accepted a bad spec", bad)
		}
	}
}

func TestSpecFromJobRoundTrip(t *testing.T) {
	for _, j := range testTrace(8) {
		spec, err := specFromJob(j)
		if err != nil {
			t.Fatalf("specFromJob(%d): %v", j.ID, err)
		}
		back, err := spec.ToJob(j.ID)
		if err != nil {
			t.Fatalf("ToJob(%d): %v", j.ID, err)
		}
		if back.Kind != j.Kind || back.Category != j.Category || back.Model != j.Model ||
			back.Request != j.Request || back.Work != j.Work || back.Bandwidth != j.Bandwidth {
			t.Fatalf("job %d did not round-trip:\n  in:  %+v\n  out: %+v", j.ID, j, back)
		}
	}
}
