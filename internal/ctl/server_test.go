package ctl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/coda-repro/coda/internal/sim"
)

func newTestServer(t *testing.T, cfg Config, scfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	s := NewServer(m, scfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestServerParallelClientsReplayEquivalence is the API-layer determinism
// drill: many goroutine clients race their submissions in, the server
// serializes them through the WAL, and a second machine rebuilt from that
// WAL alone must agree with the served one byte for byte.
func TestServerParallelClientsReplayEquivalence(t *testing.T) {
	cfg := memConfig(testOptions())
	s, ts := newTestServer(t, cfg, ServerConfig{})

	const clients = 8
	var wg sync.WaitGroup
	ids := make([]int64, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"kind":"cpu","tenant":%d,"cpuCores":2,"workSeconds":1200}`, 1+i%3)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				data, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var r Response
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				errs[i] = err
				return
			}
			ids[i] = r.JobID
		}(i)
	}

	// Drive ticks until every client is answered; handlers block on their
	// batch, so the test owns the tick cadence just like cmd/coda-serve.
	donech := make(chan struct{})
	go func() { wg.Wait(); close(donech) }()
	at := time.Duration(0)
	for {
		select {
		case <-donech:
		default:
			at += time.Second
			if err := s.Tick(at); err != nil {
				t.Errorf("Tick: %v", err)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	seen := map[int64]bool{}
	for i, id := range ids {
		if id < 1 || id > clients || seen[id] {
			t.Fatalf("client %d got ID %d (all: %v) — IDs must be 1..%d and unique", i, id, ids, clients)
		}
		seen[id] = true
	}

	// Queries see the served state.
	resp, err := http.Get(ts.URL + "/v1/jobs/1")
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Phase == sim.PhaseUnknown {
		t.Fatalf("served job 1 reported unknown phase")
	}

	// The WAL alone rebuilds the same machine.
	horizon := 2 * time.Hour
	served := s.Machine()
	if err := served.AdvanceTo(horizon); err != nil {
		t.Fatal(err)
	}
	rebuilt, recovered, err := Resume(cfg)
	if err != nil {
		t.Fatalf("Resume from served WAL: %v", err)
	}
	if !recovered {
		t.Fatal("Resume of a non-empty WAL did not report recovery")
	}
	if err := rebuilt.AdvanceTo(horizon); err != nil {
		t.Fatal(err)
	}
	wantRes, err := served.Finish()
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := rebuilt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want, got := sim.DumpResult(wantRes), sim.DumpResult(gotRes)
	if want != got {
		t.Fatalf("replayed machine diverged from served one at %s", sim.FirstDiff(want, got))
	}
	if err := gotRes.Faults.Sane(); err != nil {
		t.Fatalf("replayed counters: %v", err)
	}
}

func TestServerBackpressure(t *testing.T) {
	cfg := memConfig(testOptions())
	s, ts := newTestServer(t, cfg, ServerConfig{QueueDepth: 1, RetryAfter: 2 * time.Second})

	// Fill the queue from inside (no tick runs, so it stays full).
	s.queue <- pending{req: Request{Op: OpCancel, JobID: 1}, reply: make(chan outcome, 1)}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"cpu","tenant":1,"cpuCores":1,"workSeconds":60}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", ra)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	if !bytes.Contains(body, []byte("coda_serve_shed_total 1")) {
		t.Fatalf("metrics do not count the shed request:\n%s", body)
	}
}

func TestServerDeadline(t *testing.T) {
	cfg := memConfig(testOptions())
	_, ts := newTestServer(t, cfg, ServerConfig{MaxWait: 5 * time.Millisecond})

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"cpu","tenant":1,"cpuCores":1,"workSeconds":60}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with no tick before the deadline, want 503", resp.StatusCode)
	}
	data, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(data, []byte("outcome unknown")) {
		t.Fatalf("deadline response %s does not flag the unknown outcome", data)
	}
}

func TestServerStop(t *testing.T) {
	cfg := memConfig(testOptions())
	s, ts := newTestServer(t, cfg, ServerConfig{})
	s.Stop()
	s.Stop() // idempotent

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"cpu","tenant":1,"cpuCores":1,"workSeconds":60}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d after Stop, want 503", resp.StatusCode)
	}
	// Queries still work on a stopped server.
	nresp, err := http.Get(ts.URL + "/v1/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	if nresp.StatusCode != http.StatusOK {
		t.Fatalf("nodes query status %d on a stopped server, want 200", nresp.StatusCode)
	}
}

func TestServerBadRequests(t *testing.T) {
	cfg := memConfig(testOptions())
	_, ts := newTestServer(t, cfg, ServerConfig{})
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad submit body", "POST", "/v1/jobs", `{"kind":`, http.StatusBadRequest},
		{"unknown submit field", "POST", "/v1/jobs", `{"kind":"cpu","tenant":1,"cpuCores":1,"workSeconds":1,"color":"red"}`, http.StatusBadRequest},
		{"trailing submit data", "POST", "/v1/jobs", `{"kind":"cpu","tenant":1,"cpuCores":1,"workSeconds":1} extra`, http.StatusBadRequest},
		{"bad cancel id", "DELETE", "/v1/jobs/zero", "", http.StatusBadRequest},
		{"negative cancel id", "DELETE", "/v1/jobs/-4", "", http.StatusBadRequest},
		{"bad status id", "GET", "/v1/jobs/xyz", "", http.StatusBadRequest},
		{"unknown job", "GET", "/v1/jobs/12345", "", http.StatusNotFound},
		{"unknown node action", "POST", "/v1/nodes/1/reboot", "", http.StatusNotFound},
		{"bad node id", "POST", "/v1/nodes/banana/drain", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				data, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.want, data)
			}
		})
	}
}

func TestServerHealthz(t *testing.T) {
	cfg := memConfig(testOptions())
	s, ts := newTestServer(t, cfg, ServerConfig{})
	if err := s.Tick(time.Minute); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body struct {
		Status  string        `json:"status"`
		Now     time.Duration `json:"now"`
		Applied uint64        `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Now != time.Minute {
		t.Fatalf("healthz body %+v", body)
	}
}
