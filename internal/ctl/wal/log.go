package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/coda-repro/coda/internal/checkpoint/atomicio"
)

// Log is an append-only durable byte log of framed records. Append takes a
// whole admission batch and performs exactly one durability sync for it —
// the amortization that keeps batch admission cheap — and must not return
// until the batch is durable. Bytes returns the complete log image for
// replay.
type Log interface {
	// Append durably appends the frames as one batch: one sync covers them
	// all. An empty batch is a no-op and performs no sync.
	Append(frames [][]byte) error
	// Bytes returns the full log contents for replay.
	Bytes() ([]byte, error)
	// Syncs reports how many durability syncs the log has performed.
	Syncs() int
}

// MemLog is the pure in-memory Log used by drills and tests: "durability"
// is just the buffer, but sync accounting matches FileLog exactly so
// counter cross-checks hold in both.
type MemLog struct {
	buf   []byte
	syncs int
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements Log.
func (l *MemLog) Append(frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	for _, f := range frames {
		l.buf = append(l.buf, f...)
	}
	l.syncs++
	return nil
}

// Bytes implements Log; the returned slice is a copy.
func (l *MemLog) Bytes() ([]byte, error) { return append([]byte(nil), l.buf...), nil }

// Syncs implements Log.
func (l *MemLog) Syncs() int { return l.syncs }

// Corrupt flips one byte of the in-memory image (for recovery tests).
func (l *MemLog) Corrupt(off int) error {
	if off < 0 || off >= len(l.buf) {
		return fmt.Errorf("wal: corrupt offset %d out of [0, %d)", off, len(l.buf))
	}
	l.buf[off] ^= 0xff
	return nil
}

// Truncate drops the log image past n bytes (for recovery tests).
func (l *MemLog) Truncate(n int) error {
	if n < 0 || n > len(l.buf) {
		return fmt.Errorf("wal: truncate length %d out of [0, %d]", n, len(l.buf))
	}
	l.buf = l.buf[:n]
	return nil
}

// FileLog is the production Log: an O_APPEND file fsync'd once per batch.
type FileLog struct {
	f     *os.File
	path  string
	syncs int
}

// OpenFileLog opens (creating if absent) the log file at path for
// appending.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	return &FileLog{f: f, path: path}, nil
}

// Append implements Log: all frames are written, then one fsync makes the
// batch durable before any client is acknowledged.
func (l *FileLog) Append(frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	for _, fr := range frames {
		if _, err := l.f.Write(fr); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.syncs++
	return nil
}

// Bytes implements Log by reading the file back.
func (l *FileLog) Bytes() ([]byte, error) {
	data, err := os.ReadFile(l.path)
	if err != nil {
		return nil, fmt.Errorf("wal: read log: %w", err)
	}
	return data, nil
}

// Syncs implements Log.
func (l *FileLog) Syncs() int { return l.syncs }

// Close closes the underlying file.
func (l *FileLog) Close() error { return l.f.Close() }

// CheckpointStore persists encoded machine checkpoints keyed by the number
// of WAL records applied when each was taken.
type CheckpointStore interface {
	// Save durably stores one encoded checkpoint taken after applying seq
	// records.
	Save(data []byte, seq uint64) error
	// Latest returns the newest stored checkpoint, or (nil, nil) when the
	// store is empty.
	Latest() ([]byte, error)
}

// MemStore is the in-memory CheckpointStore for drills and tests.
type MemStore struct {
	data []byte
	seq  uint64
	has  bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements CheckpointStore; the data is copied.
func (s *MemStore) Save(data []byte, seq uint64) error {
	s.data = append(s.data[:0], data...)
	s.seq = seq
	s.has = true
	return nil
}

// Latest implements CheckpointStore; the returned slice is a copy.
func (s *MemStore) Latest() ([]byte, error) {
	if !s.has {
		return nil, nil
	}
	return append([]byte(nil), s.data...), nil
}

// ckptPrefix/ckptExt frame FileStore file names; the zero-padded sequence
// number makes lexicographic order equal apply order, so Latest needs no
// parsing and no wall clock.
const (
	ckptPrefix = "ckpt-"
	ckptExt    = ".ckpt"
)

// FileStore is the production CheckpointStore: one crash-atomically written
// file per checkpoint in a dedicated directory.
type FileStore struct {
	dir string
}

// NewFileStore creates (if needed) and opens a checkpoint directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: checkpoint dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Save implements CheckpointStore via atomicio, so a crash mid-save leaves
// the previous checkpoint intact.
func (s *FileStore) Save(data []byte, seq uint64) error {
	name := fmt.Sprintf("%s%020d%s", ckptPrefix, seq, ckptExt)
	if err := atomicio.WriteFile(filepath.Join(s.dir, name), data, 0o644); err != nil {
		return fmt.Errorf("wal: save checkpoint: %w", err)
	}
	return nil
}

// Latest implements CheckpointStore: the lexicographically-largest
// well-formed file name wins.
func (s *FileStore) Latest() ([]byte, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && len(name) == len(ckptPrefix)+20+len(ckptExt) &&
			strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ckptExt) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	data, err := os.ReadFile(filepath.Join(s.dir, names[len(names)-1]))
	if err != nil {
		return nil, fmt.Errorf("wal: read checkpoint: %w", err)
	}
	return data, nil
}
