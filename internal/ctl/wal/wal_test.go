package wal

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func encodeLog(t *testing.T, payloads ...string) []byte {
	t.Helper()
	var buf []byte
	for i, p := range payloads {
		buf = append(buf, EncodeRecord(uint64(i+1), time.Duration(i)*time.Second, []byte(p))...)
	}
	return buf
}

func TestRoundTrip(t *testing.T) {
	data := encodeLog(t, "alpha", "", "gamma")
	recs, err := DecodeAll(data)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, want := range []string{"alpha", "", "gamma"} {
		r := recs[i]
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if r.At != time.Duration(i)*time.Second {
			t.Errorf("record %d: at %v, want %v", i, r.At, time.Duration(i)*time.Second)
		}
		if string(r.Payload) != want {
			t.Errorf("record %d: payload %q, want %q", i, r.Payload, want)
		}
	}
}

func TestDecodeEmpty(t *testing.T) {
	recs, err := DecodeAll(nil)
	if err != nil || len(recs) != 0 {
		t.Fatalf("DecodeAll(nil) = %v, %v; want empty, nil", recs, err)
	}
}

// TestDecodeRejections drives every loud-rejection path: corruption must
// never decode to a shorter-but-plausible log.
func TestDecodeRejections(t *testing.T) {
	base := encodeLog(t, "alpha", "beta")
	single := encodeLog(t, "alpha")

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"short header", func(d []byte) []byte { return d[:20] }, "need 68 for the header"},
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xff; return d }, "bad magic"},
		{"future version", func(d []byte) []byte {
			binary.BigEndian.PutUint32(d[8:], Version+1)
			return d
		}, "newer than supported"},
		{"payload corrupt", func(d []byte) []byte { d[len(d)-1] ^= 0xff; return d }, "checksum mismatch"},
		{"header field corrupt", func(d []byte) []byte {
			// Flip the timestamp: the checksum covers header fields too.
			d[21] ^= 0xff
			return d
		}, "checksum mismatch"},
		{"truncated payload", func(d []byte) []byte { return d[:len(d)-2] }, "truncated payload"},
		{"oversized length", func(d []byte) []byte {
			binary.BigEndian.PutUint64(d[28:], maxPayload+1)
			// Re-seal the checksum so the cap check is what fires.
			return reseal(d)
		}, "exceeds cap"},
		{"seq gap", func(d []byte) []byte {
			binary.BigEndian.PutUint64(d[12:], 7)
			return reseal(d)
		}, "want contiguous 1"},
		{"duplicate seq", func([]byte) []byte {
			// Two copies of record 1: the second repeats sequence 1.
			return append(append([]byte(nil), single...), single...)
		}, "want contiguous 2"},
		{"backwards time", func([]byte) []byte {
			a := EncodeRecord(1, 5*time.Second, []byte("a"))
			b := EncodeRecord(2, 2*time.Second, []byte("b"))
			return append(a, b...)
		}, "runs backwards"},
		{"negative time", func([]byte) []byte {
			return EncodeRecord(1, -time.Second, []byte("a"))
		}, "negative timestamp"},
		{"trailing garbage", func(d []byte) []byte { return append(d, 0xde, 0xad) }, "truncated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			_, err := DecodeAll(data)
			if err == nil {
				t.Fatalf("DecodeAll accepted a %s log", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// reseal recomputes the first record's checksum after a header mutation so
// the test exercises the intended validation, not the checksum.
func reseal(d []byte) []byte {
	length := binary.BigEndian.Uint64(d[28:36])
	end := headerSize
	if length <= maxPayload && headerSize+int(length) <= len(d) {
		end = headerSize + int(length)
	}
	payload := d[headerSize:end]
	rec := EncodeRecord(binary.BigEndian.Uint64(d[12:20]),
		time.Duration(int64(binary.BigEndian.Uint64(d[20:28]))), payload)
	copy(d[36:36+32], rec[36:36+32])
	return d
}

func TestLogsAgree(t *testing.T) {
	mem := NewMemLog()
	file, err := OpenFileLog(filepath.Join(t.TempDir(), "requests.wal"))
	if err != nil {
		t.Fatalf("OpenFileLog: %v", err)
	}
	defer file.Close()

	batches := [][][]byte{
		{EncodeRecord(1, 0, []byte("a"))},
		{}, // empty batch: no-op, no sync
		{EncodeRecord(2, time.Second, []byte("b")), EncodeRecord(3, time.Second, []byte("c"))},
	}
	for _, batch := range batches {
		if err := mem.Append(batch); err != nil {
			t.Fatalf("MemLog.Append: %v", err)
		}
		if err := file.Append(batch); err != nil {
			t.Fatalf("FileLog.Append: %v", err)
		}
	}
	if mem.Syncs() != 2 || file.Syncs() != 2 {
		t.Errorf("syncs mem=%d file=%d, want 2 each (one per non-empty batch)", mem.Syncs(), file.Syncs())
	}
	mb, _ := mem.Bytes()
	fb, err := file.Bytes()
	if err != nil {
		t.Fatalf("FileLog.Bytes: %v", err)
	}
	if !bytes.Equal(mb, fb) {
		t.Fatalf("mem and file log images differ (%d vs %d bytes)", len(mb), len(fb))
	}
	recs, err := DecodeAll(fb)
	if err != nil || len(recs) != 3 {
		t.Fatalf("DecodeAll(file image) = %d records, %v; want 3, nil", len(recs), err)
	}
}

func TestStores(t *testing.T) {
	for _, tc := range []struct {
		name  string
		store CheckpointStore
	}{
		{"mem", NewMemStore()},
		{"file", mustFileStore(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if data, err := tc.store.Latest(); err != nil || data != nil {
				t.Fatalf("empty store Latest = %q, %v; want nil, nil", data, err)
			}
			if err := tc.store.Save([]byte("first"), 3); err != nil {
				t.Fatalf("Save: %v", err)
			}
			if err := tc.store.Save([]byte("second"), 10); err != nil {
				t.Fatalf("Save: %v", err)
			}
			data, err := tc.store.Latest()
			if err != nil {
				t.Fatalf("Latest: %v", err)
			}
			if string(data) != "second" {
				t.Fatalf("Latest = %q, want the highest-seq save", data)
			}
		})
	}
}

func mustFileStore(t *testing.T) *FileStore {
	t.Helper()
	s, err := NewFileStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	return s
}
