// Package wal is the control plane's crash-consistent write-ahead request
// log. Every mutating API request becomes one framed record, appended and
// fsync'd before the client is acknowledged; recovery replays the suffix of
// records past the latest checkpoint. The framing is deliberately paranoid,
// in the style of internal/checkpoint: a fixed magic, a big-endian version,
// the record's sequence number and virtual timestamp, the payload length,
// and a SHA-256 checksum precede every payload, so a truncated, corrupted,
// reordered, or version-skewed log is rejected with a specific error
// instead of replaying poisoned state.
//
// Record layout (all integers big-endian):
//
//	offset  size  field
//	0       8     magic "CODAWAL1"
//	8       4     format version (currently 1)
//	12      8     sequence number (contiguous from 1)
//	20      8     virtual timestamp in nanoseconds
//	28      8     payload length in bytes
//	36      32    SHA-256 of bytes 12..36 followed by the payload
//	68      n     payload
package wal

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"
)

// Magic identifies a CODA WAL record.
const Magic = "CODAWAL1"

// Version is the current record format version. Decoders reject records
// stamped with a later version rather than guessing at their layout.
const Version uint32 = 1

const headerSize = len(Magic) + 4 + 8 + 8 + 8 + sha256.Size

// maxPayload bounds a single record's payload so a corrupted (or fuzzed)
// length field cannot demand a multi-gigabyte allocation.
const maxPayload = 1 << 30

// Record is one decoded WAL entry.
type Record struct {
	// Seq is the record's position in the log, contiguous from 1.
	Seq uint64
	// At is the virtual time the request was admitted at.
	At time.Duration
	// Payload is the serialized request.
	Payload []byte
}

// EncodeRecord frames one record. The checksum covers the sequence number,
// timestamp and length as well as the payload, so splicing records between
// logs is detected, not just payload corruption.
func EncodeRecord(seq uint64, at time.Duration, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf, Magic)
	binary.BigEndian.PutUint32(buf[8:], Version)
	binary.BigEndian.PutUint64(buf[12:], seq)
	binary.BigEndian.PutUint64(buf[20:], uint64(int64(at)))
	binary.BigEndian.PutUint64(buf[28:], uint64(len(payload)))
	h := sha256.New()
	h.Write(buf[12:36])
	h.Write(payload)
	h.Sum(buf[36:36])
	copy(buf[headerSize:], payload)
	return buf
}

// DecodeAll strictly decodes an entire log image. Any defect — short
// header, bad magic, future version, oversized or truncated payload,
// checksum mismatch, a sequence gap or duplicate, a negative or
// backwards-running timestamp — fails the whole decode with a specific
// error naming the offending record. A crashed process must refuse a log
// it cannot prove intact rather than resume from a guess.
func DecodeAll(data []byte) ([]Record, error) {
	var recs []Record
	off := 0
	var prevAt int64
	for off < len(data) {
		rest := data[off:]
		n := len(recs) + 1
		if len(rest) < headerSize {
			return nil, fmt.Errorf("wal: record %d truncated at offset %d: %d bytes left, need %d for the header",
				n, off, len(rest), headerSize)
		}
		if !bytes.Equal(rest[:8], []byte(Magic)) {
			return nil, fmt.Errorf("wal: bad magic %q at offset %d (not a CODA WAL record)", rest[:8], off)
		}
		version := binary.BigEndian.Uint32(rest[8:12])
		if version > Version {
			return nil, fmt.Errorf("wal: record %d: version %d is newer than supported version %d", n, version, Version)
		}
		seq := binary.BigEndian.Uint64(rest[12:20])
		at := int64(binary.BigEndian.Uint64(rest[20:28]))
		length := binary.BigEndian.Uint64(rest[28:36])
		if length > maxPayload {
			return nil, fmt.Errorf("wal: record %d: payload length %d exceeds cap %d", n, length, int64(maxPayload))
		}
		if uint64(len(rest)-headerSize) < length {
			return nil, fmt.Errorf("wal: record %d: truncated payload: header says %d bytes, %d left",
				n, length, len(rest)-headerSize)
		}
		payload := rest[headerSize : headerSize+int(length)]
		h := sha256.New()
		h.Write(rest[12:36])
		h.Write(payload)
		if !bytes.Equal(h.Sum(nil), rest[36:36+sha256.Size]) {
			return nil, fmt.Errorf("wal: record %d: checksum mismatch (log is corrupt)", n)
		}
		if seq != uint64(n) {
			return nil, fmt.Errorf("wal: record %d carries sequence %d, want contiguous %d", n, seq, n)
		}
		if at < 0 {
			return nil, fmt.Errorf("wal: record %d: negative timestamp %d", n, at)
		}
		if at < prevAt {
			return nil, fmt.Errorf("wal: record %d: timestamp %v runs backwards from %v (log reordered?)",
				n, time.Duration(at), time.Duration(prevAt))
		}
		prevAt = at
		recs = append(recs, Record{Seq: seq, At: time.Duration(at), Payload: append([]byte(nil), payload...)})
		off += headerSize + int(length)
	}
	return recs, nil
}
