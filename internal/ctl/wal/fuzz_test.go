package wal

import (
	"bytes"
	"testing"
	"time"
)

// FuzzWALDecode hammers the strict decoder with arbitrary bytes. The
// decoder must never panic or over-allocate, must reject any mutation of a
// valid log, and must round-trip whatever it accepts.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(1, 0, []byte(`{"op":"submit"}`)))
	two := append(EncodeRecord(1, 0, []byte("a")), EncodeRecord(2, time.Second, []byte("bb"))...)
	f.Add(two)
	f.Add(two[:len(two)-1])
	corrupt := append([]byte(nil), two...)
	corrupt[40] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte(Magic))
	f.Add(bytes.Repeat([]byte{0xff}, 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeAll(data)
		if err != nil {
			return
		}
		// Accepted: re-encoding every record must reproduce the input
		// exactly (the format has no slack bytes).
		var out []byte
		for _, r := range recs {
			out = append(out, EncodeRecord(r.Seq, r.At, r.Payload)...)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted log does not round-trip: %d bytes in, %d bytes re-encoded", len(data), len(out))
		}
	})
}
