package retry

import (
	"testing"
	"time"
)

func TestDeterministic(t *testing.T) {
	a, err := New(Policy{Seed: 42})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, _ := New(Policy{Seed: 42})
	for i := 0; i < 20; i++ {
		if da, db := a.Next(0), b.Next(0); da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, da, db)
		}
	}
	c, _ := New(Policy{Seed: 43})
	d := a
	d.Reset()
	same := 0
	for i := 0; i < 10; i++ {
		if c.Next(0) == d.Next(0) {
			same++
		}
	}
	if same == 10 {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestGrowthAndCap(t *testing.T) {
	b, err := New(Policy{Base: time.Second, Max: 8 * time.Second, Factor: 2, Jitter: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second}
	for i, w := range want {
		if got := b.Next(0); got != w {
			t.Fatalf("attempt %d: delay %v, want %v", i, got, w)
		}
	}
	b.Reset()
	if got := b.Next(0); got != time.Second {
		t.Fatalf("after Reset: delay %v, want %v", got, time.Second)
	}
}

func TestJitterBounds(t *testing.T) {
	b, err := New(Policy{Base: time.Second, Max: time.Second, Jitter: 0.5, Seed: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 100; i++ {
		d := b.Next(0)
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("attempt %d: delay %v outside [500ms, 1s]", i, d)
		}
	}
}

func TestHonorsRetryAfter(t *testing.T) {
	b, err := New(Policy{Base: 10 * time.Millisecond, Max: time.Second, Jitter: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := b.Next(3 * time.Second); got != 3*time.Second {
		t.Fatalf("delay %v undercuts Retry-After 3s", got)
	}
	// Once backoff exceeds the hint, backoff wins.
	b2, _ := New(Policy{Base: 10 * time.Second, Max: 10 * time.Second, Jitter: -1})
	if got := b2.Next(3 * time.Second); got != 10*time.Second {
		t.Fatalf("delay %v, want the larger backoff 10s", got)
	}
}

func TestRejectsBadPolicies(t *testing.T) {
	for _, p := range []Policy{
		{Base: time.Second, Max: time.Millisecond},
		{Factor: 0.5},
		{Jitter: 1.5},
		{Base: -time.Second},
	} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%+v) accepted a bad policy", p)
		}
	}
}
